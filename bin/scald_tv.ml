(* The SCALD Timing Verifier command-line driver.

   Reads a design in the textual SCALD HDL, runs the Macro Expander and
   the Timing Verifier, and prints the error listing — optionally the
   timing summary (Figure 3-10), the cross-reference listings, and
   per-case results from a case-analysis file (§2.7.1). *)

open Scald_core

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run file case_file jobs sched corners summary xref quiet paths corr_advice prob
    slack diagram vcd_out phys lint lint_only lint_fatal lint_json profile_out
    metrics_out explain trace_buffer no_prune classes no_window_prune merge_cases
    windows =
  (* The observability layer is built only when asked for; with every
     obs flag off the verifier sees no probe and the evaluator's event
     hook stays None (the zero-overhead contract of doc/OBSERVABILITY.md). *)
  let obs =
    if profile_out <> None || metrics_out <> None || explain then
      Some
        (Scald_obs.Obs.create
           ~trace_buffer:(if explain then max 1 trace_buffer else trace_buffer)
           ())
    else None
  in
  let span name f =
    match obs with None -> f () | Some o -> Scald_obs.Obs.span o name f
  in
  let src = span "read" (fun () -> read_file file) in
  let expanded =
    match span "parse" (fun () -> Scald_sdl.Parser.parse src) with
    | Error e -> Error e
    | Ok ast -> span "expand" (fun () -> Scald_sdl.Expander.expand ast)
  in
  match expanded with
  | Error msg ->
    Format.eprintf "%s: %s@." file msg;
    1
  | Ok { Scald_sdl.Expander.e_netlist = nl; e_summary; _ } ->
    if classes then begin
      (* Static listing only: classify and exit without evaluating, so
         the dump also works on designs that would not converge. *)
      Format.printf "%a@." Flow.pp_classes (Flow.analyse nl);
      exit 0
    end;
    if windows then begin
      (* Same contract as --classes: the arrival-window listing is
         static, so it also works on designs that would not converge. *)
      Format.printf "%a@." Window.pp_windows (Window.analyse nl);
      exit 0
    end;
    if not quiet then
      Format.printf "expanded %s: %a@." file Scald_sdl.Expander.pp_summary e_summary;
    (* The static design-rule audit (lint) runs before any evaluation,
       so it also works on incomplete designs (--lint-only). *)
    let want_lint = lint || lint_only || lint_fatal || lint_json <> None in
    let lint_report =
      if want_lint then Some (span "lint" (fun () -> Scald_lint.Lint.audit nl))
      else None
    in
    (match lint_report with
    | None -> ()
    | Some lr ->
      Format.printf "@.%a@." Scald_lint.Lint_report.pp lr;
      (match lint_json with
      | None -> ()
      | Some path ->
        let oc = open_out_bin path in
        let ppf = Format.formatter_of_out_channel oc in
        Scald_lint.Lint_report.pp_jsonl ppf lr;
        Format.pp_print_flush ppf ();
        close_out oc;
        if not quiet then Format.printf "wrote lint findings to %s@." path));
    let lint_failed =
      lint_fatal
      && (match lint_report with
         | Some lr -> not (Scald_lint.Lint_report.clean lr)
         | None -> false)
    in
    if lint_only then begin
      (match obs, profile_out with
      | Some o, Some path ->
        Scald_obs.Obs.write_profile o path;
        if not quiet then Format.printf "wrote phase profile to %s@." path
      | _ -> ());
      if lint_failed then 3 else 0
    end
    else begin
    (* The packaged-design mode (§2.5.3): compute interconnection
       delays from placement and routing before verifying. *)
    let phys_violations = ref [] in
    if phys then begin
      let pr = Physical.apply nl in
      Format.printf "@.%a@." Physical.pp pr;
      phys_violations := Physical.violations pr
    end;
    let cases =
      match case_file with
      | None -> []
      | Some cf -> Case_analysis.parse_exn (read_file cf)
    in
    let report =
      Verifier.verify
        ?probe:(Option.map Scald_obs.Obs.probe obs)
        ?corners ~cases ~jobs:(max 0 jobs) ~sched ~prune:(not no_prune)
        ~window_prune:(not no_window_prune) ~merge_cases nl
    in
    if summary then Format.printf "@.%a@." Report.pp_summary report.Verifier.r_eval;
    if diagram then
      Format.printf "@.%a@." (fun ppf -> Timing_diagram.pp ppf) report.Verifier.r_eval;
    if slack then begin
      let ev = report.Verifier.r_eval in
      if Eval.n_corners ev = 1 then
        Format.printf "@.%a@." Slack.pp (Slack.compute ev)
      else
        Array.iteri
          (fun lane (c : Corner.t) ->
            Format.printf "@.CORNER %a@.%a@." Corner.pp c Slack.pp
              (Slack.compute ~lane ev))
          (Eval.corners ev)
    end;
    (match vcd_out with
    | None -> ()
    | Some path ->
      Vcd.write_file report.Verifier.r_eval path;
      if not quiet then Format.printf "wrote waveforms to %s@." path);
    if xref then begin
      Format.printf "@.%a@." Scald_sdl.Xref.pp (Scald_sdl.Xref.build nl);
      Format.printf "@.%a@." Report.pp_cross_reference nl
    end;
    if paths then Format.printf "@.%a@." Path_analysis.pp (Path_analysis.analyze nl);
    (match prob with
    | None -> ()
    | Some correlation ->
      let r = Prob_analysis.analyze ~correlation nl in
      Format.printf "@.%a@." Prob_analysis.pp r;
      Format.printf "min/max cycle: %.1f ns   3-sigma cycle: %.1f ns@."
        (Prob_analysis.minmax_cycle_ns r)
        (Prob_analysis.predicted_cycle_ns r ~z:3.0));
    if corr_advice then begin
      let advice = Path_analysis.Corr.advise nl in
      Format.printf "@.CORR ADVISOR (clock-skew correlation, see thesis 4.2.3)@.";
      if advice = [] then Format.printf "  no fictitious delays needed@."
      else
        List.iter (fun a -> Format.printf "  %a@." Path_analysis.Corr.pp_advice a) advice
    end;
    span "report" (fun () ->
        Format.printf "@.%a@." Report.pp_violations
          (!phys_violations @ report.Verifier.r_violations));
    (* The error listing above is the reference corner's; on a
       multi-corner run follow it with the per-corner tally and the full
       listing of the worst corner (when it is not the reference). *)
    (match report.Verifier.r_corners with
    | [] | [ _ ] -> ()
    | rcs ->
      Format.printf "@.MULTI-CORNER SUMMARY@.";
      List.iter
        (fun (cr : Verifier.corner_result) ->
          let n = List.length cr.Verifier.co_violations in
          Format.printf "  %-24s %d error%s@."
            (Format.asprintf "%a" Corner.pp cr.Verifier.co_corner)
            n (if n = 1 then "" else "s"))
        rcs;
      (match Verifier.worst_corner report with
      | Some cr when cr != List.hd rcs && cr.Verifier.co_violations <> [] ->
        Format.printf "@.WORST CORNER %a@."
          Corner.pp cr.Verifier.co_corner;
        List.iter
          (fun v -> Format.printf "%a@." Check.pp v)
          cr.Verifier.co_violations
      | _ -> ()));
    if not quiet then
      Format.printf "@.cases: %d  events: %d  evaluations: %d@."
        (List.length report.Verifier.r_cases)
        report.Verifier.r_events report.Verifier.r_evaluations;
    (match obs with
    | None -> ()
    | Some o ->
      if explain then
        Format.printf "@.%s@."
          (Scald_obs.Obs.explain_all o nl report.Verifier.r_violations);
      (match metrics_out with
      | None -> ()
      | Some path ->
        Scald_obs.Obs.write_metrics o ~report path;
        if not quiet then
          Format.printf "wrote run metrics to %s (%s)@." path
            Scald_obs.Counters.schema_version);
      (match profile_out with
      | None -> ()
      | Some path ->
        Scald_obs.Obs.write_profile ~report o path;
        if not quiet then Format.printf "wrote phase profile to %s@." path));
    (* Exit-code contract: 0 clean, 2 timing violations, 3 lint errors
       under --lint-fatal (lint errors take precedence). *)
    if lint_failed then 3
    else if Verifier.clean report && !phys_violations = [] then 0
    else 2
    end

open Cmdliner

let file =
  let doc = "Design source in the textual SCALD HDL." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DESIGN" ~doc)

let case_file =
  let doc = "Case-analysis specification file (e.g. \"CONTROL = 0; CONTROL = 1;\")." in
  Arg.(value & opt (some file) None & info [ "c"; "cases" ] ~docv:"CASES" ~doc)

let sched =
  let doc =
    "Evaluation scheduling discipline: $(b,level) (the default) orders the \
     work list by topological level so each instance outside a feedback loop \
     is evaluated at most once per settled wavefront; $(b,fifo) is the \
     historical first-in-first-out relaxation.  Both produce the same \
     violations and waveforms; they differ only in evaluation counts."
  in
  Arg.(
    value
    & opt (enum [ ("level", Scald_core.Eval.Level); ("fifo", Scald_core.Eval.Fifo) ])
        Scald_core.Eval.Level
    & info [ "sched" ] ~docv:"DISCIPLINE" ~doc)

let corners =
  let doc =
    "Evaluate $(docv) delay corners in one packed traversal: a \
     comma-separated list of $(i,name[=dscale[/wscale]]) entries, e.g. \
     $(b,slow,typ,fast) or $(b,typ,hot=1.4/1.2).  Bare names must be one \
     of the presets (slow=1.25, typ=1.0, fast=0.8).  The first corner is \
     the reference: its violations, ordering and convergence flags are \
     bit-identical to a run without this option.  Overrides any CORNERS \
     directive in the design source."
  in
  let spec_conv =
    let parse s =
      match Scald_core.Corner.of_spec s with
      | tbl -> Ok tbl
      | exception Invalid_argument m -> Error (`Msg m)
    in
    Arg.conv (parse, Scald_core.Corner.pp_table)
  in
  Arg.(value & opt (some spec_conv) None & info [ "corners" ] ~docv:"SPEC" ~doc)

let jobs =
  let doc =
    "Evaluate the cases on $(docv) parallel domains (0 = one per available \
     core).  Any value produces the identical report; above 1 the case list \
     is sharded over private evaluator copies, each warm-started from its \
     shard's predecessor case."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let summary =
  let doc = "Print the signal-value timing summary (Figure 3-10 style)." in
  Arg.(value & flag & info [ "s"; "summary" ] ~doc)

let xref =
  let doc = "Print the cross-reference listings." in
  Arg.(value & flag & info [ "x"; "xref" ] ~doc)

let quiet =
  let doc = "Only print the error listing." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let paths =
  let doc = "Also run the worst-case path analysis (GRASP/RAS baseline)." in
  Arg.(value & flag & info [ "p"; "paths" ] ~doc)

let corr_advice =
  let doc =
    "Run the CORR advisor: find same-clock feedback paths that need a      fictitious delay to suppress false hold errors."
  in
  Arg.(value & flag & info [ "corr-advice" ] ~doc)

let slack =
  let doc = "Print the slack (margin) table, most critical constraint first." in
  Arg.(value & flag & info [ "slack" ] ~doc)

let diagram =
  let doc = "Print an ASCII timing diagram of every signal." in
  Arg.(value & flag & info [ "d"; "diagram" ] ~doc)

let vcd_out =
  let doc = "Write the evaluated waveforms to a VCD file." in
  Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE" ~doc)

let phys =
  let doc =
    "Run the physical-design subsystem first: compute interconnection delays \
     from placement/routing and flag reflection-prone edge-sensitive runs."
  in
  Arg.(value & flag & info [ "physical" ] ~doc)

let prob =
  let doc =
    "Also run the probability-based path analysis with the given component      correlation coefficient (0 = independent, 1 = same production run)."
  in
  Arg.(value & opt (some float) None & info [ "prob" ] ~docv:"RHO" ~doc)

let lint =
  let doc =
    "Run the static constraint lint (design-rule audit) over the expanded \
     netlist before evaluation and print its listing."
  in
  Arg.(value & flag & info [ "lint" ] ~doc)

let lint_only =
  let doc =
    "Run only the constraint lint and skip evaluation entirely — usable on \
     incomplete designs that would not evaluate cleanly."
  in
  Arg.(value & flag & info [ "lint-only" ] ~doc)

let lint_fatal =
  let doc =
    "Treat lint errors as fatal: exit with status 3 when the lint reports \
     any ERROR-severity finding (implies $(b,--lint))."
  in
  Arg.(value & flag & info [ "lint-fatal" ] ~doc)

let lint_json =
  let doc = "Write the lint findings as JSON lines (one object per finding) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "lint-json" ] ~docv:"FILE" ~doc)

let profile_out =
  let doc =
    "Write a phase profile (parse, expand, lint, per-case evaluate, check, \
     report) as Chrome trace-event JSON to $(docv) — open it in \
     chrome://tracing or https://ui.perfetto.dev."
  in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let metrics_out =
  let doc =
    "Write flat run metrics (events, evaluations, queue high-water mark, \
     per-kind evaluation counts, per-phase wall times) as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let explain =
  let doc =
    "After the error listing, print a causal trace for every violation: the \
     chain of evaluator events that produced the failing edge (implies event \
     tracing with the current $(b,--trace-buffer))."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let trace_buffer =
  let doc =
    "Capacity of the causal event ring buffer used by $(b,--explain); 0 \
     disables event tracing."
  in
  Arg.(value & opt int 4096 & info [ "trace-buffer" ] ~docv:"N" ~doc)

let no_prune =
  let doc =
    "Disable stable-cone pruning: evaluate every instance on every pass \
     instead of freezing the instances whose entire input support the static \
     signal-class analysis proved constant or stable.  Pruning never changes \
     the verdict; this flag exists to measure it and to rule it out."
  in
  Arg.(value & flag & info [ "no-prune" ] ~doc)

let classes =
  let doc =
    "Print the signal class listing — every net's statically inferred class \
     ($(b,const), $(b,stable), $(b,clock), $(b,data), $(b,unknown)) with its \
     clock domains and the witness that produced it — and exit without \
     evaluating."
  in
  Arg.(value & flag & info [ "classes" ] ~doc)

let no_window_prune =
  let doc =
    "Disable window pruning: evaluate and check every checker dynamically \
     instead of serving the verdicts the static arrival-window analysis \
     proved at every corner (doc/WINDOWS.md).  Window pruning never changes \
     the verdict; this flag exists to measure it and to rule it out."
  in
  Arg.(value & flag & info [ "no-window-prune" ] ~doc)

let merge_cases =
  let doc =
    "Partition the case list by window signature and evaluate one \
     representative per equivalence class — two cases with equal signatures \
     provably produce identical waveforms on every net (doc/WINDOWS.md).  \
     The per-case listing then holds the representatives only."
  in
  Arg.(value & flag & info [ "merge-cases" ] ~doc)

let windows =
  let doc =
    "Print the arrival-window listing — every net's conservative transition \
     windows at the reference corner with the witness that seeded them, and \
     the static proof summary (checkers proven, guaranteed violations, \
     asserted nets proven) — and exit without evaluating."
  in
  Arg.(value & flag & info [ "windows" ] ~doc)

let verify_term =
  Term.(
    const run $ file $ case_file $ jobs $ sched $ corners $ summary $ xref $ quiet $ paths
    $ corr_advice $ prob $ slack $ diagram $ vcd_out $ phys $ lint $ lint_only
    $ lint_fatal $ lint_json $ profile_out $ metrics_out $ explain $ trace_buffer
    $ no_prune $ classes $ no_window_prune $ merge_cases $ windows)

let verify_cmd =
  let doc = "verify one design and print the error listing (the default command)" in
  Cmd.v (Cmd.info "verify" ~doc) verify_term

let serve_metrics =
  let doc =
    "On shutdown, write the final run metrics (scald-metrics/5, with the \
     $(b,incr_*)/$(b,svc_*)/$(b,mem_*) service counters) as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let serve_slow_ms =
  let doc =
    "Mark requests whose wall-clock exceeds $(docv) milliseconds as slow: \
     flagged in the request log, counted in $(b,slow_requests)."
  in
  Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS" ~doc)

let serve_log =
  let doc =
    "Append one JSON line per request (trace id, op, duration, slow flag) to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE" ~doc)

let serve_prom =
  let doc =
    "Maintain a Prometheus text-format exposition of the service metrics in \
     $(docv), atomically rewritten after every request."
  in
  Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"FILE" ~doc)

let serve_trace =
  let doc =
    "On shutdown, write a Chrome trace of the whole run to $(docv), one named \
     track per request."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let serve_no_telemetry =
  let doc =
    "Disable per-request telemetry (latency histograms, trace lanes, memory \
     snapshots).  $(b,stats)/$(b,health) then report zeros for those fields."
  in
  Arg.(value & flag & info [ "no-telemetry" ] ~doc)

let serve_run metrics slow_ms log prom trace no_telemetry =
  Scald_incr.Serve.run ?metrics ?slow_ms ?log ?prom ?trace
    ~telemetry:(not no_telemetry) stdin stdout

let serve_cmd =
  let doc = "run the persistent incremental verification service" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reads one JSON request per line on standard input and writes one JSON \
         response per line on standard output (doc/SERVICE.md).  Requests are \
         dispatched on their \"op\" field: $(b,load) a design into a \
         content-addressed session, stage $(b,delta) edits against it, \
         $(b,verify) by re-evaluating only the dirty cone of the staged edits, \
         query $(b,stats) or $(b,health) (per-kind latency quantiles, cache \
         hit rate, memory accounting), and $(b,shutdown).";
      `S Manpage.s_examples;
      `P
        "printf '%s\\n%s\\n' \
         '{\"op\":\"load\",\"file\":\"examples/register_file.sdl\"}' \
         '{\"op\":\"shutdown\"}' | $(tname)";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(
      const serve_run $ serve_metrics $ serve_slow_ms $ serve_log $ serve_prom
      $ serve_trace $ serve_no_telemetry)

let cmd =
  let doc = "verify the timing constraints of a synchronous digital design" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Reproduction of the SCALD Timing Verifier (T. M. McWilliams, \
         \"Verification of Timing Constraints on Large Digital Systems\", 1980): \
         a seven-value symbolic timing simulation of one clock period that checks \
         set-up, hold, minimum-pulse-width and clock-gating constraints against \
         min/max component delays, interconnect delays and clock skew.";
      `P
        "With no command, behaves as $(tname) $(b,verify).  The $(b,serve) \
         command instead starts the persistent incremental verification \
         service (doc/SERVICE.md).";
      `S Manpage.s_examples;
      `P "$(tname) examples/register_file.sdl --summary";
    ]
  in
  Cmd.group ~default:verify_term
    (Cmd.info "scald_tv" ~version:Scald_core.Version.version ~doc ~man)
    [ verify_cmd; serve_cmd ]

(* Backward compatibility: [scald_tv design.sdl ...] predates the
   command group and must keep working.  When the first argument names
   neither a command nor a group-level option, route it to [verify]. *)
let argv =
  let argv = Sys.argv in
  if
    Array.length argv > 1
    && not (List.mem argv.(1) [ "serve"; "verify"; "--help"; "--version" ])
  then Array.concat [ [| argv.(0); "verify" |]; Array.sub argv 1 (Array.length argv - 1) ]
  else argv

let () = exit (Cmd.eval' ~argv cmd)
