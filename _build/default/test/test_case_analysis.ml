open Scald_core

let tv = Alcotest.testable Tvalue.pp Tvalue.equal

let test_parse_two_cases () =
  (* the thesis's §2.7.1 specification *)
  let cases = Case_analysis.parse_exn "CONTROL SIGNAL = 0;\nCONTROL SIGNAL = 1;\n" in
  match cases with
  | [ [ (n1, v1) ]; [ (n2, v2) ] ] ->
    Alcotest.(check string) "name" "CONTROL SIGNAL" n1;
    Alcotest.(check string) "name" "CONTROL SIGNAL" n2;
    Alcotest.check tv "case 1" Tvalue.V0 v1;
    Alcotest.check tv "case 2" Tvalue.V1 v2
  | _ -> Alcotest.fail "expected two one-signal cases"

let test_parse_multi_assignment_case () =
  let cases = Case_analysis.parse_exn "A = 0, B = 1;\nA = 1, B = 0;" in
  Alcotest.(check int) "two cases" 2 (List.length cases);
  Alcotest.(check int) "two assignments each" 2 (List.length (List.hd cases))

let test_parse_empty_and_whitespace () =
  Alcotest.(check int) "empty" 0 (List.length (Case_analysis.parse_exn ""));
  Alcotest.(check int) "blank groups" 1 (List.length (Case_analysis.parse_exn ";;A = 1;;"))

let test_parse_errors () =
  let fails s =
    match Case_analysis.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %S to fail" s
  in
  fails "A = 2;";
  fails "A;";
  fails "= 0;"

let test_complete () =
  let cases = Case_analysis.complete [ "A"; "B" ] in
  Alcotest.(check int) "2^2 cases" 4 (List.length cases);
  let distinct = List.sort_uniq compare cases in
  Alcotest.(check int) "all distinct" 4 (List.length distinct)

let test_resolve () =
  let nl = Netlist.create (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25) in
  let id = Netlist.signal nl "CTL .S0-8" in
  let resolved = Case_analysis.resolve nl [ ("CTL .S0-8", Tvalue.V1) ] in
  Alcotest.(check (list (pair int (Alcotest.testable Tvalue.pp Tvalue.equal))))
    "resolved" [ (id, Tvalue.V1) ] resolved;
  match Case_analysis.resolve nl [ ("MISSING", Tvalue.V0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown signal should fail"

(* End-to-end: the Figure 2-6 circuit. *)
let test_bypass_delays () =
  let bp = Scald_cells.Circuits.bypass_example () in
  let nl = bp.Scald_cells.Circuits.bp_netlist in
  let r0 = Verifier.verify nl in
  Alcotest.(check (float 0.01)) "40 ns without cases" 40.0
    (Scald_cells.Circuits.bypass_path_ns r0 bp);
  let cases =
    Case_analysis.parse_exn
      (Printf.sprintf "%s = 0;%s = 1;" bp.Scald_cells.Circuits.bp_control
         bp.Scald_cells.Circuits.bp_control)
  in
  let r1 = Verifier.verify ~cases nl in
  Alcotest.(check (float 0.01)) "30 ns with cases" 30.0
    (Scald_cells.Circuits.bypass_path_ns r1 bp)

let suite =
  [
    Alcotest.test_case "parse two cases" `Quick test_parse_two_cases;
    Alcotest.test_case "parse multi assignment" `Quick test_parse_multi_assignment_case;
    Alcotest.test_case "parse empty" `Quick test_parse_empty_and_whitespace;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "resolve" `Quick test_resolve;
    Alcotest.test_case "bypass delays 40 vs 30" `Quick test_bypass_delays;
  ]
