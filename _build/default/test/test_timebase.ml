open Scald_core

let test_make () =
  let tb = Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25 in
  Alcotest.(check int) "period ps" 50_000 (Timebase.period tb);
  Alcotest.(check int) "clock unit ps" 6_250 (Timebase.clock_unit tb);
  Alcotest.(check (float 1e-9)) "units per period" 8.0 (Timebase.units_per_period tb)

let test_make_invalid () =
  Alcotest.check_raises "zero period" (Invalid_argument "Timebase: period must be positive")
    (fun () -> ignore (Timebase.make ~period_ns:0. ~clock_unit_ns:1.));
  Alcotest.check_raises "zero unit"
    (Invalid_argument "Timebase: clock unit must be positive") (fun () ->
      ignore (Timebase.make ~period_ns:10. ~clock_unit_ns:0.))

let test_conversions () =
  Alcotest.(check int) "ns to ps" 6250 (Timebase.ps_of_ns 6.25);
  Alcotest.(check int) "rounding up" 1001 (Timebase.ps_of_ns 1.0005);
  Alcotest.(check int) "negative" (-1500) (Timebase.ps_of_ns (-1.5));
  Alcotest.(check (float 1e-9)) "ps to ns" 6.25 (Timebase.ns_of_ps 6250)

let test_units () =
  let tb = Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25 in
  Alcotest.(check int) "4 units" 25_000 (Timebase.ps_of_units tb 4.0);
  Alcotest.(check int) "half unit" 3_125 (Timebase.ps_of_units tb 0.5);
  Alcotest.(check (float 1e-9)) "back" 4.0 (Timebase.units_of_ps tb 25_000)

let test_wrap () =
  let tb = Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25 in
  Alcotest.(check int) "inside" 10_000 (Timebase.wrap tb 10_000);
  Alcotest.(check int) "exact period" 0 (Timebase.wrap tb 50_000);
  Alcotest.(check int) "beyond" 6_250 (Timebase.wrap tb 56_250);
  Alcotest.(check int) "negative" 48_000 (Timebase.wrap tb (-2_000))

let test_pp () =
  Alcotest.(check string) "format" "25.5" (Format.asprintf "%a" Timebase.pp_ns 25_500);
  Alcotest.(check string) "negative" "-1.0" (Format.asprintf "%a" Timebase.pp_ns (-1_000))

let suite =
  [
    Alcotest.test_case "make" `Quick test_make;
    Alcotest.test_case "make invalid" `Quick test_make_invalid;
    Alcotest.test_case "conversions" `Quick test_conversions;
    Alcotest.test_case "units" `Quick test_units;
    Alcotest.test_case "wrap" `Quick test_wrap;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
