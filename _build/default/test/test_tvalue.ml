open Scald_core

let v = Alcotest.testable Tvalue.pp Tvalue.equal

let check_v msg expected actual = Alcotest.check v msg expected actual

let test_char_roundtrip () =
  List.iter
    (fun x ->
      match Tvalue.of_char (Tvalue.to_char x) with
      | Some y -> check_v "roundtrip" x y
      | None -> Alcotest.fail "of_char failed")
    Tvalue.all

let test_not_involution () =
  List.iter (fun x -> check_v "not(not x) = x" x Tvalue.(lnot (lnot x))) Tvalue.all

let test_or_table () =
  let open Tvalue in
  check_v "1 or U" V1 (lor_ V1 Unknown);
  check_v "0 or R" Rise (lor_ V0 Rise);
  check_v "S or R" Rise (lor_ Stable Rise);
  check_v "S or F" Fall (lor_ Stable Fall);
  check_v "R or F" Change (lor_ Rise Fall);
  check_v "C or R" Change (lor_ Change Rise);
  check_v "S or U" Unknown (lor_ Stable Unknown);
  check_v "S or S" Stable (lor_ Stable Stable);
  check_v "0 or 0" V0 (lor_ V0 V0);
  check_v "0 or 1" V1 (lor_ V0 V1)

let test_and_table () =
  let open Tvalue in
  check_v "0 and U" V0 (land_ V0 Unknown);
  check_v "1 and R" Rise (land_ V1 Rise);
  check_v "S and C" Change (land_ Stable Change);
  check_v "R and F" Change (land_ Rise Fall);
  check_v "1 and 1" V1 (land_ V1 V1);
  check_v "S and U" Unknown (land_ Stable Unknown)

let test_xor_table () =
  let open Tvalue in
  check_v "U xor 1" Unknown (lxor_ Unknown V1);
  check_v "0 xor R" Rise (lxor_ V0 Rise);
  check_v "1 xor R" Fall (lxor_ V1 Rise);
  check_v "1 xor 1" V0 (lxor_ V1 V1);
  check_v "S xor R" Change (lxor_ Stable Rise);
  check_v "R xor R" Change (lxor_ Rise Rise)

let test_chg () =
  let open Tvalue in
  check_v "chg S S" Stable (chg Stable Stable);
  check_v "chg 0 1" Stable (chg V0 V1);
  check_v "chg S R" Change (chg Stable Rise);
  check_v "chg C U" Unknown (chg Change Unknown);
  check_v "chg1 F" Change (chg1 Fall);
  check_v "chg1 1" Stable (chg1 V1)

let test_worst_edge () =
  let open Tvalue in
  check_v "0->1" Rise (worst_edge ~before:V0 ~after:V1);
  check_v "1->0" Fall (worst_edge ~before:V1 ~after:V0);
  check_v "S->C" Change (worst_edge ~before:Stable ~after:Change);
  check_v "U->1" Unknown (worst_edge ~before:Unknown ~after:V1)

let test_predicates () =
  let open Tvalue in
  Alcotest.(check bool) "V0 stable" true (is_stable V0);
  Alcotest.(check bool) "S stable" true (is_stable Stable);
  Alcotest.(check bool) "C not stable" false (is_stable Change);
  Alcotest.(check bool) "U not stable" false (is_stable Unknown);
  Alcotest.(check bool) "R changing" true (is_changing Rise);
  Alcotest.(check bool) "U not changing" false (is_changing Unknown);
  Alcotest.(check bool) "U undefined" false (is_defined Unknown)

(* ---- properties --------------------------------------------------------- *)

let gen_tvalue = QCheck.make ~print:(fun x -> String.make 1 (Tvalue.to_char x)) QCheck.Gen.(oneofl Tvalue.all)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:500 ~name gen f)

let commutative op (a, b) = Tvalue.equal (op a b) (op b a)

let associative op (a, b, c) = Tvalue.equal (op a (op b c)) (op (op a b) c)

let properties =
  [
    prop "or commutative" QCheck.(pair gen_tvalue gen_tvalue) (commutative Tvalue.lor_);
    prop "and commutative" QCheck.(pair gen_tvalue gen_tvalue) (commutative Tvalue.land_);
    prop "xor commutative" QCheck.(pair gen_tvalue gen_tvalue) (commutative Tvalue.lxor_);
    prop "chg commutative" QCheck.(pair gen_tvalue gen_tvalue) (commutative Tvalue.chg);
    prop "or associative" QCheck.(triple gen_tvalue gen_tvalue gen_tvalue)
      (associative Tvalue.lor_);
    prop "and associative" QCheck.(triple gen_tvalue gen_tvalue gen_tvalue)
      (associative Tvalue.land_);
    prop "chg associative" QCheck.(triple gen_tvalue gen_tvalue gen_tvalue)
      (associative Tvalue.chg);
    prop "de morgan" QCheck.(pair gen_tvalue gen_tvalue) (fun (a, b) ->
        Tvalue.(equal (lnot (lor_ a b)) (land_ (lnot a) (lnot b))));
    prop "or identity" gen_tvalue (fun a -> Tvalue.(equal (lor_ V0 a) a));
    prop "and identity" gen_tvalue (fun a -> Tvalue.(equal (land_ V1 a) a));
    prop "or dominance" gen_tvalue (fun a -> Tvalue.(equal (lor_ V1 a) V1));
    prop "and dominance" gen_tvalue (fun a -> Tvalue.(equal (land_ V0 a) V0));
    prop "xor unknown propagates" gen_tvalue (fun a ->
        Tvalue.(equal (lxor_ Unknown a) Unknown));
    prop "chg never edge-valued" QCheck.(pair gen_tvalue gen_tvalue) (fun (a, b) ->
        match Tvalue.chg a b with
        | Tvalue.Stable | Tvalue.Change | Tvalue.Unknown -> true
        | Tvalue.V0 | Tvalue.V1 | Tvalue.Rise | Tvalue.Fall -> false);
  ]

let suite =
  [
    Alcotest.test_case "char roundtrip" `Quick test_char_roundtrip;
    Alcotest.test_case "not involution" `Quick test_not_involution;
    Alcotest.test_case "or table" `Quick test_or_table;
    Alcotest.test_case "and table" `Quick test_and_table;
    Alcotest.test_case "xor table" `Quick test_xor_table;
    Alcotest.test_case "chg" `Quick test_chg;
    Alcotest.test_case "worst edge" `Quick test_worst_edge;
    Alcotest.test_case "predicates" `Quick test_predicates;
  ]
  @ properties
