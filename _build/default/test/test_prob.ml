(* §4.2.4 extension: probability-based analysis, and the §4.2.3 CORR
   advisor. *)

open Scald_core
module Dist = Prob_analysis.Dist

let make_nl () =
  Netlist.create
    (Timebase.make ~period_ns:100.0 ~clock_unit_ns:10.0)
    ~default_wire_delay:Delay.zero

let buf delay = Primitive.Buf { invert = false; delay }

(* a chain of n buffers from an asserted input to a checker sink *)
let chain n delay =
  let nl = make_nl () in
  let input = Netlist.signal nl "IN .S0-10" in
  let rec go i current =
    if i = n then current
    else begin
      let next = Netlist.signal nl (Printf.sprintf "N%d" i) in
      ignore (Netlist.add nl (buf delay) ~inputs:[ Netlist.conn current ] ~output:(Some next));
      go (i + 1) next
    end
  in
  let out = go 0 input in
  ignore
    (Netlist.add nl
       (Primitive.Setup_hold_check { setup = 0; hold = 0 })
       ~inputs:[ Netlist.conn out; Netlist.conn input ]
       ~output:None);
  (nl, input, out)

let test_dist_of_delay () =
  let d = Dist.of_delay (Delay.of_ns 1.0 4.0) in
  Alcotest.(check (float 1e-6)) "mean at midpoint" 2500. d.Dist.mean;
  Alcotest.(check (float 1e-6)) "sigma = range/6" 500. (sqrt d.Dist.variance)

let test_dist_add_uncorrelated () =
  let d = Dist.of_delay (Delay.of_ns 1.0 4.0) in
  let s = Dist.add d d in
  Alcotest.(check (float 1e-6)) "means add" 5000. s.Dist.mean;
  (* variances add: sigma grows by sqrt 2, not 2 *)
  Alcotest.(check (float 1e-3)) "sigma sqrt2" (500. *. sqrt 2.) (sqrt s.Dist.variance)

let test_dist_add_fully_correlated () =
  let d = Dist.of_delay (Delay.of_ns 1.0 4.0) in
  let s = Dist.add ~correlation:1.0 d d in
  Alcotest.(check (float 1e-3)) "sigma doubles" 1000. (sqrt s.Dist.variance)

let test_quantile () =
  let d = { Dist.mean = 1000.; variance = 10000. } in
  Alcotest.(check (float 1e-6)) "3 sigma" 1300. (Dist.quantile d ~z:3.

)

let test_uncorrelated_beats_minmax () =
  (* §1.4.1.1: "a real design usually could be made to run faster than
     [the min/max] system will predict" — for a 10-element chain the
     3-sigma quantile is well below the sum of maxima. *)
  let nl, _, _ = chain 10 (Delay.of_ns 1.0 4.0) in
  let r = Prob_analysis.analyze nl in
  let minmax = Prob_analysis.minmax_cycle_ns r in
  let prob = Prob_analysis.predicted_cycle_ns r ~z:3.0 in
  Alcotest.(check (float 1e-6)) "minmax = 10 * 4" 40.0 minmax;
  Alcotest.(check bool)
    (Printf.sprintf "3-sigma %.2f < minmax %.2f" prob minmax)
    true (prob < minmax);
  (* mean 2.5 each: 25 + 3 * 0.5 * sqrt 10 = 29.74 *)
  Alcotest.(check (float 0.01)) "analytic value" (25. +. (3. *. 0.5 *. sqrt 10.)) prob

let test_fully_correlated_equals_minmax () =
  (* §4.2.4: with components from one production run the correlated
     prediction converges to the min/max bound. *)
  let nl, _, _ = chain 10 (Delay.of_ns 1.0 4.0) in
  let r = Prob_analysis.analyze ~correlation:1.0 nl in
  let prob = Prob_analysis.predicted_cycle_ns r ~z:3.0 in
  Alcotest.(check (float 0.01)) "3-sigma = sum of maxima" 40.0 prob

let test_correlation_bounds () =
  match Prob_analysis.analyze ~correlation:1.5 (make_nl ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "correlation > 1 should be rejected"

(* ---- CORR advisor ----------------------------------------------------------- *)

let test_advisor_flags_feedback () =
  let fb = Scald_cells.Circuits.correlation_example ~corr_delay_ns:0. in
  let advice = Path_analysis.Corr.advise fb.Scald_cells.Circuits.fb_netlist in
  match advice with
  | [ a ] ->
    Alcotest.(check string) "destination" "FEEDBACK REG" a.Path_analysis.Corr.a_register;
    (* clock spread: buffer 1.0/5.0 ns = 4 ns of uncertainty *)
    Alcotest.(check int) "clock spread 4 ns" 4_000 a.Path_analysis.Corr.a_clock_spread;
    Alcotest.(check int) "hold 1.5 ns" 1_500 a.Path_analysis.Corr.a_hold;
    (* min path: reg 1.5 + mux 1.2 = 2.7 -> required 4 + 1.5 - 2.7 = 2.8 *)
    Alcotest.(check int) "required delay" 2_800 a.Path_analysis.Corr.a_required_delay
  | l -> Alcotest.failf "expected one advice, got %d" (List.length l)

let test_advisor_satisfied_with_corr () =
  let fb = Scald_cells.Circuits.correlation_example ~corr_delay_ns:4.0 in
  Alcotest.(check int) "no advice needed" 0
    (List.length (Path_analysis.Corr.advise fb.Scald_cells.Circuits.fb_netlist))

let test_advisor_recommendation_suffices () =
  (* applying exactly the recommended delay removes the false error *)
  let fb0 = Scald_cells.Circuits.correlation_example ~corr_delay_ns:0. in
  match Path_analysis.Corr.advise fb0.Scald_cells.Circuits.fb_netlist with
  | [ a ] ->
    let ns = Timebase.ns_of_ps a.Path_analysis.Corr.a_required_delay in
    let fb1 = Scald_cells.Circuits.correlation_example ~corr_delay_ns:ns in
    let report = Verifier.verify fb1.Scald_cells.Circuits.fb_netlist in
    Alcotest.(check int) "false error suppressed" 0
      (List.length (Verifier.violations_of_kind Check.Hold_violation report))
  | _ -> Alcotest.fail "expected one advice"

let test_clock_spread () =
  let fb = Scald_cells.Circuits.correlation_example ~corr_delay_ns:0. in
  let nl = fb.Scald_cells.Circuits.fb_netlist in
  match Netlist.find nl "REG CK" with
  | Some id ->
    Alcotest.(check int) "buffered clock spread" 4_000 (Path_analysis.Corr.clock_spread nl id)
  | None -> Alcotest.fail "REG CK missing"

let suite =
  [
    Alcotest.test_case "dist of delay" `Quick test_dist_of_delay;
    Alcotest.test_case "dist add uncorrelated" `Quick test_dist_add_uncorrelated;
    Alcotest.test_case "dist add fully correlated" `Quick test_dist_add_fully_correlated;
    Alcotest.test_case "quantile" `Quick test_quantile;
    Alcotest.test_case "uncorrelated beats minmax" `Quick test_uncorrelated_beats_minmax;
    Alcotest.test_case "fully correlated equals minmax" `Quick
      test_fully_correlated_equals_minmax;
    Alcotest.test_case "correlation bounds" `Quick test_correlation_bounds;
    Alcotest.test_case "advisor flags feedback" `Quick test_advisor_flags_feedback;
    Alcotest.test_case "advisor satisfied with CORR" `Quick test_advisor_satisfied_with_corr;
    Alcotest.test_case "advisor recommendation suffices" `Quick
      test_advisor_recommendation_suffices;
    Alcotest.test_case "clock spread" `Quick test_clock_spread;
  ]
