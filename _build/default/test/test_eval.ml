open Scald_core

(* Small-circuit harness: 50 ns cycle, 6.25 ns clock units, zero default
   wire delay so the numbers below are exact. *)

let ps = Timebase.ps_of_ns

let tv = Alcotest.testable Tvalue.pp Tvalue.equal

let make_nl () =
  Netlist.create
    (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
    ~default_wire_delay:Delay.zero

let gate fn n ?(invert = false) ?(delay = Delay.zero) () =
  Primitive.Gate { fn; n_inputs = n; invert; delay }

let run nl =
  let ev = Eval.create nl in
  Eval.run ev;
  ev

let value_at ev net t = Waveform.value_at (Waveform.materialize (Eval.value ev net)) t

(* ---- gates ---------------------------------------------------------------- *)

let test_and_clock_with_high () =
  let nl = make_nl () in
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  let one = Netlist.signal nl "ONE" in
  ignore (Netlist.add nl (Primitive.Const Tvalue.V1) ~inputs:[] ~output:(Some one));
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl (gate Primitive.And 2 ())
       ~inputs:[ Netlist.conn ck; Netlist.conn one ]
       ~output:(Some q));
  let ev = run nl in
  Alcotest.check tv "pulse passes" Tvalue.V1 (value_at ev q (ps 15.));
  Alcotest.check tv "low outside" Tvalue.V0 (value_at ev q (ps 5.))

let test_or_stable_with_clock () =
  (* Worst-case combination: a stable control ORed with a clock is the
     clock where the clock is 1 and Stable does not dominate. *)
  let nl = make_nl () in
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  let s = Netlist.signal nl "CTL .S0-8" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl (gate Primitive.Or 2 ())
       ~inputs:[ Netlist.conn ck; Netlist.conn s ]
       ~output:(Some q));
  let ev = run nl in
  Alcotest.check tv "high dominates" Tvalue.V1 (value_at ev q (ps 15.));
  Alcotest.check tv "stable elsewhere" Tvalue.Stable (value_at ev q (ps 40.))

let test_gate_delay_and_skew () =
  let nl = make_nl () in
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Buf { invert = false; delay = Delay.of_ns 5.0 10.0 })
       ~inputs:[ Netlist.conn ck ] ~output:(Some q));
  let ev = run nl in
  let wf = Eval.value ev q in
  (* value list delayed by dmin, spread in the skew (Figure 2-8) *)
  Alcotest.check tv "nominal shifted" Tvalue.V1
    (Waveform.value_at wf (ps 18.));
  Alcotest.(check (pair int int)) "skew" (0, ps 5.) (Waveform.skew wf)

let test_inverter () =
  let nl = make_nl () in
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Buf { invert = true; delay = Delay.zero })
       ~inputs:[ Netlist.conn ck ] ~output:(Some q));
  let ev = run nl in
  Alcotest.check tv "inverted high" Tvalue.V0 (value_at ev q (ps 15.));
  Alcotest.check tv "inverted low" Tvalue.V1 (value_at ev q (ps 5.))

let test_input_complement () =
  let nl = make_nl () in
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Buf { invert = false; delay = Delay.zero })
       ~inputs:[ Netlist.conn ~invert:true ck ]
       ~output:(Some q));
  let ev = run nl in
  Alcotest.check tv "complemented input" Tvalue.V0 (value_at ev q (ps 15.))

let test_chg_gate () =
  let nl = make_nl () in
  let a = Netlist.signal nl "A .S2-6" in
  let b = Netlist.signal nl "B .S0-8" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl (gate Primitive.Chg 2 ())
       ~inputs:[ Netlist.conn a; Netlist.conn b ]
       ~output:(Some q));
  let ev = run nl in
  Alcotest.check tv "changing when a changes" Tvalue.Change (value_at ev q (ps 5.));
  Alcotest.check tv "stable when both stable" Tvalue.Stable (value_at ev q (ps 20.))

let test_undriven_inputs_stable () =
  (* Undriven signals with no assertions are taken to be always stable
     (§2.5). *)
  let nl = make_nl () in
  let a = Netlist.signal nl "NOWHERE" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl (gate Primitive.Chg 1 ()) ~inputs:[ Netlist.conn a ] ~output:(Some q));
  let ev = run nl in
  Alcotest.check tv "stable" Tvalue.Stable (value_at ev q 0)

(* ---- wire delay --------------------------------------------------------------- *)

let test_wire_delay_applied () =
  let nl =
    Netlist.create
      (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
      ~default_wire_delay:(Delay.of_ns 0.0 2.0)
  in
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Buf { invert = false; delay = Delay.zero })
       ~inputs:[ Netlist.conn ck ] ~output:(Some q));
  let ev = run nl in
  Alcotest.(check (pair int int)) "wire spread as skew" (0, ps 2.)
    (Waveform.skew (Eval.value ev q))

let test_directive_w_zeroes_wire () =
  let nl =
    Netlist.create
      (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
      ~default_wire_delay:(Delay.of_ns 0.0 2.0)
  in
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Buf { invert = false; delay = Delay.zero })
       ~inputs:[ Netlist.conn ~directive:[ Directive.W ] ck ]
       ~output:(Some q));
  let ev = run nl in
  Alcotest.(check (pair int int)) "no skew" (0, 0) (Waveform.skew (Eval.value ev q))

let test_directive_z_zeroes_gate () =
  let nl = make_nl () in
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Buf { invert = false; delay = Delay.of_ns 3.0 7.0 })
       ~inputs:[ Netlist.conn ~directive:[ Directive.Z ] ck ]
       ~output:(Some q));
  let ev = run nl in
  Alcotest.check tv "no gate delay: edge still at 12.5" Tvalue.V1 (value_at ev q (ps 13.));
  Alcotest.(check (pair int int)) "no spread" (0, 0) (Waveform.skew (Eval.value ev q))

let test_directive_h_assumes_enabling () =
  (* &H on the clock input of a gated clock: the control is assumed to
     enable the gate, so the output follows the clock alone (§2.6). *)
  let nl = make_nl () in
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  let ctl = Netlist.signal nl "CTL .S0-8" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl (gate Primitive.And 2 ())
       ~inputs:[ Netlist.conn ~directive:[ Directive.H ] ck; Netlist.conn ctl ]
       ~output:(Some q));
  let ev = run nl in
  Alcotest.check tv "clock passes" Tvalue.V1 (value_at ev q (ps 15.));
  Alcotest.check tv "solid zero outside" Tvalue.V0 (value_at ev q (ps 40.))

let test_eval_string_propagates () =
  (* "&HZ": the first gate consumes H, the second consumes Z (§2.8). *)
  let nl = make_nl () in
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  let ctl = Netlist.signal nl "CTL .S0-8" in
  let mid = Netlist.signal nl "MID" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl (gate Primitive.And 2 ~delay:(Delay.of_ns 1.0 2.0) ())
       ~inputs:
         [ Netlist.conn ~directive:[ Directive.H; Directive.Z ] ck; Netlist.conn ctl ]
       ~output:(Some mid));
  ignore
    (Netlist.add nl
       (Primitive.Buf { invert = false; delay = Delay.of_ns 3.0 8.0 })
       ~inputs:[ Netlist.conn mid ] ~output:(Some q));
  let ev = run nl in
  (* H zeroes the first gate's delay; the carried Z zeroes the second's. *)
  Alcotest.check tv "both levels zero-delay" Tvalue.V1 (value_at ev q (ps 13.));
  Alcotest.(check (pair int int)) "no accumulated spread" (0, 0)
    (Waveform.skew (Eval.value ev q))

(* ---- multiplexer ----------------------------------------------------------------- *)

let test_mux_constant_select () =
  let nl = make_nl () in
  let a = Netlist.signal nl "A .S0-8" in
  let b = Netlist.signal nl "B .S2-6" in
  let zero = Netlist.signal nl "GND" in
  ignore (Netlist.add nl (Primitive.Const Tvalue.V0) ~inputs:[] ~output:(Some zero));
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Mux2 { delay = Delay.zero; select_extra = Delay.zero })
       ~inputs:[ Netlist.conn a; Netlist.conn b; Netlist.conn zero ]
       ~output:(Some q));
  let ev = run nl in
  (* select = 0 picks A, which is stable all cycle *)
  Alcotest.check tv "picks a" Tvalue.Stable (value_at ev q (ps 5.))

let test_mux_select_edges_change_output () =
  (* Both data inputs stable (at unknown values): select transitions
     still make the output change. *)
  let nl = make_nl () in
  let a = Netlist.signal nl "A .S0-8" in
  let b = Netlist.signal nl "B .S0-8" in
  let sel = Netlist.signal nl "CK .P(0,0)0-4" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Mux2 { delay = Delay.of_ns 1.0 3.0; select_extra = Delay.zero })
       ~inputs:[ Netlist.conn a; Netlist.conn b; Netlist.conn sel ]
       ~output:(Some q));
  let ev = run nl in
  Alcotest.check tv "changing after select edge at 25" Tvalue.Change
    (value_at ev q (ps 27.));
  Alcotest.check tv "stable between edges" Tvalue.Stable (value_at ev q (ps 15.))

(* ---- registers ---------------------------------------------------------------------- *)

let test_reg_basic () =
  let nl = make_nl () in
  let d = Netlist.signal nl "D .S0-6" in
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Reg { delay = Delay.of_ns 1.0 3.8; has_set_reset = false })
       ~inputs:[ Netlist.conn d; Netlist.conn ck ]
       ~output:(Some q));
  let ev = run nl in
  (* clocked at 12.5: changing [13.5, 16.3], stable elsewhere *)
  Alcotest.check tv "stable before" Tvalue.Stable (value_at ev q (ps 10.));
  Alcotest.check tv "changing after edge" Tvalue.Change (value_at ev q (ps 15.));
  Alcotest.check tv "stable after" Tvalue.Stable (value_at ev q (ps 20.))

let test_reg_samples_constant () =
  (* If the data input is a constant 0/1 during the clock edge, the
     output takes that value (§2.4.3). *)
  let nl = make_nl () in
  let d = Netlist.signal nl "ONE" in
  ignore (Netlist.add nl (Primitive.Const Tvalue.V1) ~inputs:[] ~output:(Some d));
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Reg { delay = Delay.of_ns 1.0 2.0; has_set_reset = false })
       ~inputs:[ Netlist.conn d; Netlist.conn ck ]
       ~output:(Some q));
  let ev = run nl in
  Alcotest.check tv "takes sampled value" Tvalue.V1 (value_at ev q (ps 30.))

let test_reg_unknown_clock () =
  let nl = make_nl () in
  let d = Netlist.signal nl "D .S0-6" in
  let ck = Netlist.signal nl "CKX" in
  (* drive the clock from an undefined source: a buffer of an undefined
     driven net *)
  let u = Netlist.signal nl "U" in
  ignore
    (Netlist.add nl (gate Primitive.Xor 2 ())
       ~inputs:[ Netlist.conn u; Netlist.conn u ]
       ~output:(Some ck));
  ignore
    (Netlist.add nl (gate Primitive.Xor 2 ())
       ~inputs:[ Netlist.conn d; Netlist.conn d ]
       ~output:(Some u));
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Reg { delay = Delay.of_ns 1.0 2.0; has_set_reset = false })
       ~inputs:[ Netlist.conn d; Netlist.conn ck ]
       ~output:(Some q));
  let ev = run nl in
  ignore ev;
  (* the XOR of a stable-with-changing region is C/S, so the clock is
     never a clean edge: the register must not invent one *)
  Alcotest.(check bool) "no crash" true true

let test_reg_never_clocked () =
  let nl = make_nl () in
  let d = Netlist.signal nl "D .S0-6" in
  let gnd = Netlist.signal nl "GND" in
  ignore (Netlist.add nl (Primitive.Const Tvalue.V0) ~inputs:[] ~output:(Some gnd));
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Reg { delay = Delay.of_ns 1.0 2.0; has_set_reset = false })
       ~inputs:[ Netlist.conn d; Netlist.conn gnd ]
       ~output:(Some q));
  let ev = run nl in
  Alcotest.check tv "holds stable" Tvalue.Stable (value_at ev q (ps 25.))

let test_reg_set_reset () =
  let nl = make_nl () in
  let d = Netlist.signal nl "D .S0-6" in
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  let one = Netlist.signal nl "VCC" in
  ignore (Netlist.add nl (Primitive.Const Tvalue.V1) ~inputs:[] ~output:(Some one));
  let gnd = Netlist.signal nl "GND" in
  ignore (Netlist.add nl (Primitive.Const Tvalue.V0) ~inputs:[] ~output:(Some gnd));
  let q_set = Netlist.signal nl "QS" in
  ignore
    (Netlist.add nl
       (Primitive.Reg { delay = Delay.of_ns 1.0 2.0; has_set_reset = true })
       ~inputs:[ Netlist.conn d; Netlist.conn ck; Netlist.conn one; Netlist.conn gnd ]
       ~output:(Some q_set));
  let q_both = Netlist.signal nl "QB" in
  ignore
    (Netlist.add nl
       (Primitive.Reg { delay = Delay.of_ns 1.0 2.0; has_set_reset = true })
       ~inputs:[ Netlist.conn d; Netlist.conn ck; Netlist.conn one; Netlist.conn one ]
       ~output:(Some q_both));
  let q_off = Netlist.signal nl "QO" in
  ignore
    (Netlist.add nl
       (Primitive.Reg { delay = Delay.of_ns 1.0 2.0; has_set_reset = true })
       ~inputs:[ Netlist.conn d; Netlist.conn ck; Netlist.conn gnd; Netlist.conn gnd ]
       ~output:(Some q_off));
  let ev = run nl in
  Alcotest.check tv "set forces 1" Tvalue.V1 (value_at ev q_set (ps 30.));
  Alcotest.check tv "both force undefined" Tvalue.Unknown (value_at ev q_both (ps 30.));
  Alcotest.check tv "inactive behaves normally" Tvalue.Stable (value_at ev q_off (ps 30.))

(* ---- latches ---------------------------------------------------------------------------- *)

let test_latch_transparent () =
  let nl = make_nl () in
  let d = Netlist.signal nl "D .S0-4" in
  (* data changing 25..50, enable high 12.5..25 while data stable *)
  let e = Netlist.signal nl "E .P(0,0)2-4" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Latch { delay = Delay.of_ns 1.0 2.0; has_set_reset = false })
       ~inputs:[ Netlist.conn d; Netlist.conn e ]
       ~output:(Some q));
  let ev = run nl in
  (* opening edge at 12.5 may change the output *)
  Alcotest.check tv "changing at open" Tvalue.Change (value_at ev q (ps 14.));
  (* transparent with stable data: stable *)
  Alcotest.check tv "stable while open" Tvalue.Stable (value_at ev q (ps 20.));
  (* closed with stable capture: stays stable even while D changes *)
  Alcotest.check tv "holds while closed" Tvalue.Stable (value_at ev q (ps 40.))

let test_latch_open_data_changing () =
  let nl = make_nl () in
  let d = Netlist.signal nl "D .S5-7" in
  (* data changing 0..31.25 while enable high 12.5..25 *)
  let e = Netlist.signal nl "E .P(0,0)2-4" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Latch { delay = Delay.zero; has_set_reset = false })
       ~inputs:[ Netlist.conn d; Netlist.conn e ]
       ~output:(Some q));
  let ev = run nl in
  Alcotest.check tv "changes propagate while open" Tvalue.Change (value_at ev q (ps 20.))

(* ---- convergence --------------------------------------------------------------------------- *)

let test_combinational_loop_flagged () =
  (* A NOR-latch style feedback loop without storage elements: the
     relaxation is bounded and reported (§2.9 assumes synchronous
     designs). *)
  let nl = make_nl () in
  let s = Netlist.signal nl "S .S0-4" in
  let r = Netlist.signal nl "R .S0-4" in
  let a = Netlist.signal nl "A" in
  let b = Netlist.signal nl "B" in
  ignore
    (Netlist.add nl
       (gate Primitive.Or 2 ~invert:true ~delay:(Delay.of_ns 1.0 2.0) ())
       ~inputs:[ Netlist.conn s; Netlist.conn b ]
       ~output:(Some a));
  ignore
    (Netlist.add nl
       (gate Primitive.Or 2 ~invert:true ~delay:(Delay.of_ns 1.0 2.0) ())
       ~inputs:[ Netlist.conn r; Netlist.conn a ]
       ~output:(Some b));
  let ev = Eval.create nl in
  Eval.run ev;
  let checks = Eval.check ev in
  if Eval.converged ev then () (* fixpoint found: also acceptable *)
  else
    Alcotest.(check bool) "non-convergence reported" true
      (List.exists (fun (v : Check.t) -> v.Check.v_kind = Check.No_convergence) checks)

(* ---- incremental case analysis ---------------------------------------------------------------- *)

let test_incremental_case () =
  let nl = make_nl () in
  let ctl = Netlist.signal nl "CTL .S0-8" in
  let other = Netlist.signal nl "OTHER .S0-8" in
  let q = Netlist.signal nl "Q" in
  let q2 = Netlist.signal nl "Q2" in
  ignore
    (Netlist.add nl (gate Primitive.And 2 ())
       ~inputs:[ Netlist.conn ctl; Netlist.conn ctl ]
       ~output:(Some q));
  ignore
    (Netlist.add nl (gate Primitive.Or 2 ())
       ~inputs:[ Netlist.conn other; Netlist.conn other ]
       ~output:(Some q2));
  let ev = Eval.create nl in
  Eval.run ev;
  Alcotest.check tv "base: stable" Tvalue.Stable (value_at ev q 0);
  let evals_before = Eval.evaluations ev in
  Eval.run ~case:[ (ctl, Tvalue.V0) ] ev;
  Alcotest.check tv "case: forced 0" Tvalue.V0 (value_at ev q 0);
  Alcotest.check tv "unrelated gate untouched" Tvalue.Stable (value_at ev q2 0);
  (* only the AND gate re-evaluated *)
  Alcotest.(check int) "one re-evaluation" 1 (Eval.evaluations ev - evals_before);
  (* switching to the other value and back is still incremental *)
  Eval.run ~case:[ (ctl, Tvalue.V1) ] ev;
  Alcotest.check tv "case 2: forced 1" Tvalue.V1 (value_at ev q 0);
  Eval.run ev;
  Alcotest.check tv "cleared: stable again" Tvalue.Stable (value_at ev q 0)

let suite =
  [
    Alcotest.test_case "and clock with high" `Quick test_and_clock_with_high;
    Alcotest.test_case "or stable with clock" `Quick test_or_stable_with_clock;
    Alcotest.test_case "gate delay and skew" `Quick test_gate_delay_and_skew;
    Alcotest.test_case "inverter" `Quick test_inverter;
    Alcotest.test_case "input complement" `Quick test_input_complement;
    Alcotest.test_case "chg gate" `Quick test_chg_gate;
    Alcotest.test_case "undriven inputs stable" `Quick test_undriven_inputs_stable;
    Alcotest.test_case "wire delay applied" `Quick test_wire_delay_applied;
    Alcotest.test_case "directive W zeroes wire" `Quick test_directive_w_zeroes_wire;
    Alcotest.test_case "directive Z zeroes gate" `Quick test_directive_z_zeroes_gate;
    Alcotest.test_case "directive H assumes enabling" `Quick test_directive_h_assumes_enabling;
    Alcotest.test_case "eval string propagates" `Quick test_eval_string_propagates;
    Alcotest.test_case "mux constant select" `Quick test_mux_constant_select;
    Alcotest.test_case "mux select edges" `Quick test_mux_select_edges_change_output;
    Alcotest.test_case "reg basic" `Quick test_reg_basic;
    Alcotest.test_case "reg samples constant" `Quick test_reg_samples_constant;
    Alcotest.test_case "reg unknown clock" `Quick test_reg_unknown_clock;
    Alcotest.test_case "reg never clocked" `Quick test_reg_never_clocked;
    Alcotest.test_case "reg set/reset" `Quick test_reg_set_reset;
    Alcotest.test_case "latch transparent" `Quick test_latch_transparent;
    Alcotest.test_case "latch open data changing" `Quick test_latch_open_data_changing;
    Alcotest.test_case "combinational loop flagged" `Quick test_combinational_loop_flagged;
    Alcotest.test_case "incremental case" `Quick test_incremental_case;
  ]
