test/test_properties.ml: Array Check Delay Eval Format Int List Netlist Primitive Printf QCheck QCheck_alcotest Scald_core Timebase Tvalue Waveform
