test/test_delay.ml: Alcotest Delay Format Scald_core
