test/test_circuits.ml: Alcotest Case_analysis Check Delay Eval Format List Netlist Scald_cells Scald_core Timebase Tvalue Verifier Waveform
