test/test_path_analysis.ml: Alcotest Case_analysis Delay List Netlist Path_analysis Primitive Printf Scald_cells Scald_core Timebase Verifier
