test/test_waveform.ml: Alcotest Format Int List QCheck QCheck_alcotest Scald_core Timebase Tvalue Waveform
