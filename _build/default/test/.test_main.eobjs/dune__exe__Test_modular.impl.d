test/test_modular.ml: Alcotest Delay List Modular Netlist Scald_cells Scald_core Timebase
