test/test_case_analysis.ml: Alcotest Case_analysis List Netlist Printf Scald_cells Scald_core Timebase Tvalue Verifier
