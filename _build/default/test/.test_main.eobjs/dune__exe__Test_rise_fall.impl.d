test/test_rise_fall.ml: Alcotest Check Delay Eval Format List Netlist Primitive Scald_core Scald_sdl Timebase Tvalue Waveform
