test/test_signal_name.ml: Alcotest Assertion List Scald_core Signal_name
