test/test_golden.ml: Alcotest Buffer Eval Format List Report Scald_cells Scald_core Slack String Verifier
