test/test_prob.ml: Alcotest Check Delay List Netlist Path_analysis Primitive Printf Prob_analysis Scald_cells Scald_core Timebase Verifier
