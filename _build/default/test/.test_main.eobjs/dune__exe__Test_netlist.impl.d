test/test_netlist.ml: Alcotest Delay List Netlist Primitive Scald_core Timebase
