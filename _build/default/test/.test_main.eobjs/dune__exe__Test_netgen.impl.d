test/test_netgen.ml: Alcotest Check Eval Format List Netgen Printf Scald_core Scald_sdl Stats Verifier
