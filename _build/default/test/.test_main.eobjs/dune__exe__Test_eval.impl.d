test/test_eval.ml: Alcotest Check Delay Directive Eval List Netlist Primitive Scald_core Timebase Tvalue Waveform
