test/test_logic_sim.ml: Alcotest Array Delay Eval List Logic_sim Netlist Primitive Printf Scald_core Timebase Tvalue Waveform
