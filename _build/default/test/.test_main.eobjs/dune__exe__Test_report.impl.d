test/test_report.ml: Alcotest Format List Report Scald_cells Scald_core String Verifier
