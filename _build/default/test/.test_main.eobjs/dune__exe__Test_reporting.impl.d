test/test_reporting.ml: Alcotest Delay Eval Format List Netlist Primitive Scald_cells Scald_core Slack String Timebase Timing_diagram Tvalue Vcd Verifier Waveform
