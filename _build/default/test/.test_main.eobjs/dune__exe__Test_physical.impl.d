test/test_physical.ml: Alcotest Check Delay Format List Netlist Physical Primitive Printf Scald_core Timebase Verifier
