test/test_directive.ml: Alcotest Directive Scald_core
