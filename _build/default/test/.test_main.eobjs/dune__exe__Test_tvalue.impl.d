test/test_tvalue.ml: Alcotest List QCheck QCheck_alcotest Scald_core String Tvalue
