test/test_cells.ml: Alcotest Array Delay Eval List Netlist Path_analysis Primitive Scald_cells Scald_core Timebase Tvalue Verifier Waveform
