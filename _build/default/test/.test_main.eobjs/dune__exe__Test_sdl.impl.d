test/test_sdl.ml: Alcotest Case_analysis Check Delay Eval Format List Netlist Option Path_analysis Primitive Scald_cells Scald_core Scald_sdl Timebase Tvalue Verifier Waveform
