test/test_wire_rule.ml: Alcotest Delay List Netlist Primitive Printf Scald_core Timebase Verifier Wire_rule
