test/test_ecl10k.ml: Alcotest Check Delay Eval Format List Netlist Path_analysis Primitive Scald_cells Scald_core Timebase Tvalue Verifier Waveform
