test/test_assertion.ml: Alcotest Assertion List QCheck QCheck_alcotest Scald_core Timebase Tvalue Waveform
