test/test_check.ml: Alcotest Assertion Check Fmt List Scald_core Timebase Tvalue Waveform
