test/test_stats.ml: Alcotest Array List Netlist Printf Scald_cells Scald_core Stats Verifier
