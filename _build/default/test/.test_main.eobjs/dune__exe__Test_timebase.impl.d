test/test_timebase.ml: Alcotest Format Scald_core Timebase
