(* §3.3 refined interconnection rules. *)

open Scald_core

let make_nl () =
  Netlist.create (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)

let gate2 = Primitive.Gate { fn = Primitive.And; n_inputs = 2; invert = false; delay = Delay.of_ns 1.0 2.0 }

let test_flat_rule () =
  let r = Wire_rule.s1_default in
  Alcotest.(check bool) "fanout irrelevant" true
    (Delay.equal (Wire_rule.delay_for r ~fanout:1) (Wire_rule.delay_for r ~fanout:8));
  Alcotest.(check bool) "is 0/2" true
    (Delay.equal (Wire_rule.delay_for r ~fanout:3) (Delay.of_ns 0.0 2.0))

let test_loaded_rule () =
  let r = Wire_rule.loaded ~base:(Delay.of_ns 0.0 1.0) ~per_load:(Delay.of_ns 0.1 0.5) in
  Alcotest.(check bool) "one load = base" true
    (Delay.equal (Wire_rule.delay_for r ~fanout:1) (Delay.of_ns 0.0 1.0));
  Alcotest.(check bool) "four loads add three increments" true
    (Delay.equal (Wire_rule.delay_for r ~fanout:4) (Delay.of_ns 0.3 2.5));
  Alcotest.(check bool) "zero fanout treated as one" true
    (Delay.equal (Wire_rule.delay_for r ~fanout:0) (Delay.of_ns 0.0 1.0))

let test_apply_sets_unset_nets_only () =
  let nl = make_nl () in
  let a = Netlist.signal nl "A .S0-6" in
  let b = Netlist.signal nl "B .S0-6" in
  let q = Netlist.signal nl "Q" in
  (* A fans out to two gates, B to one *)
  ignore (Netlist.add nl gate2 ~inputs:[ Netlist.conn a; Netlist.conn b ] ~output:(Some q));
  let q2 = Netlist.signal nl "Q2" in
  ignore (Netlist.add nl gate2 ~inputs:[ Netlist.conn a; Netlist.conn a ] ~output:(Some q2));
  (* an explicit designer delay survives *)
  Netlist.set_wire_delay nl b (Delay.of_ns 0.0 6.0);
  let rule = Wire_rule.loaded ~base:(Delay.of_ns 0.0 1.0) ~per_load:(Delay.of_ns 0.0 1.0) in
  let n_set = Wire_rule.apply nl rule in
  Alcotest.(check int) "three nets filled (A, Q, Q2)" 3 n_set;
  (match (Netlist.net nl a).Netlist.n_wire_delay with
  | Some d -> Alcotest.(check bool) "A loaded twice" true (Delay.equal d (Delay.of_ns 0.0 2.0))
  | None -> Alcotest.fail "A not set");
  match (Netlist.net nl b).Netlist.n_wire_delay with
  | Some d -> Alcotest.(check bool) "B untouched" true (Delay.equal d (Delay.of_ns 0.0 6.0))
  | None -> Alcotest.fail "B lost its delay"

let test_loading_changes_verification () =
  (* the same circuit passes under the flat rule and fails when the
     refined rule charges its heavy fan-out (§3.3: "it is easy to vary
     the rule that is used") *)
  let build rule =
    let nl = make_nl () in
    let d = Netlist.signal nl "D .S0-7.5" in
    let ck = Netlist.signal nl "CK .P1-2" in
    Netlist.set_wire_delay nl ck Delay.zero;
    let q = Netlist.signal nl "Q" in
    ignore
      (Netlist.add nl
         (Primitive.Reg { delay = Delay.of_ns 1.5 4.5; has_set_reset = false })
         ~inputs:[ Netlist.conn d; Netlist.conn ck ]
         ~output:(Some q));
    ignore
      (Netlist.add nl
         (Primitive.Setup_hold_check
            { setup = Timebase.ps_of_ns 2.5; hold = Timebase.ps_of_ns 1.5 })
         ~inputs:[ Netlist.conn d; Netlist.conn ck ]
         ~output:None);
    (* give D ten loads *)
    for i = 0 to 9 do
      let s = Netlist.signal nl (Printf.sprintf "SINK%d" i) in
      ignore
        (Netlist.add nl
           (Primitive.Buf { invert = false; delay = Delay.of_ns 1.0 1.0 })
           ~inputs:[ Netlist.conn d ] ~output:(Some s))
    done;
    ignore (Wire_rule.apply nl rule);
    Verifier.verify nl
  in
  let flat = build Wire_rule.s1_default in
  let heavy =
    build (Wire_rule.loaded ~base:(Delay.of_ns 0.0 1.0) ~per_load:(Delay.of_ns 0.0 0.6))
  in
  Alcotest.(check int) "flat rule passes" 0 (List.length flat.Verifier.r_violations);
  Alcotest.(check bool) "loaded rule flags the heavy run" true
    (heavy.Verifier.r_violations <> [])

let suite =
  [
    Alcotest.test_case "flat rule" `Quick test_flat_rule;
    Alcotest.test_case "loaded rule" `Quick test_loaded_rule;
    Alcotest.test_case "apply sets unset nets only" `Quick test_apply_sets_unset_nets_only;
    Alcotest.test_case "loading changes verification" `Quick
      test_loading_changes_verification;
  ]
