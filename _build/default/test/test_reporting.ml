(* Slack reporting, ASCII timing diagrams, VCD export. *)

open Scald_core
module Circuits = Scald_cells.Circuits

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let evaluated () =
  let c = Circuits.register_file_example () in
  let report = Verifier.verify c.Circuits.rf_netlist in
  (c, report.Verifier.r_eval)

(* ---- slack ------------------------------------------------------------------- *)

let test_slack_sorted_and_signed () =
  let _, ev = evaluated () in
  let entries = Slack.compute ev in
  Alcotest.(check bool) "non-empty" true (entries <> []);
  (* sorted ascending *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Slack.e_slack <= b.Slack.e_slack && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "ascending slack" true (sorted entries);
  (* the two known violations are the negative-slack entries *)
  let negative = List.filter (fun e -> e.Slack.e_slack < 0) entries in
  Alcotest.(check int) "two negative" 2 (List.length negative)

let test_slack_values_match_fig_3_11 () =
  let _, ev = evaluated () in
  match Slack.worst ev with
  | Some e ->
    (* the address checker misses its 3.5 ns set-up by the full amount *)
    Alcotest.(check bool) "setup kind" true (e.Slack.e_kind = Slack.Setup);
    Alcotest.(check int) "slack -3.5 ns" (-3_500) e.Slack.e_slack
  | None -> Alcotest.fail "no entries"

let test_slack_on_clean_design () =
  let ar = Circuits.arithmetic_example () in
  let report = Verifier.verify ar.Circuits.ar_netlist in
  let entries = Slack.compute report.Verifier.r_eval in
  Alcotest.(check bool) "all positive" true
    (List.for_all (fun e -> e.Slack.e_slack >= 0) entries);
  (* the critical filter keeps the tight ones *)
  let critical = Slack.critical report.Verifier.r_eval ~below_ns:100.0 in
  Alcotest.(check int) "all below a huge bound" (List.length entries) (List.length critical)

let test_slack_min_pulse () =
  let nl =
    Netlist.create
      (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
      ~default_wire_delay:Delay.zero
  in
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  ignore
    (Netlist.add nl
       (Primitive.Min_pulse_width { high = Timebase.ps_of_ns 4.0; low = 0 })
       ~inputs:[ Netlist.conn ck ] ~output:None);
  let ev = Eval.create nl in
  Eval.run ev;
  match Slack.compute ev with
  | [ e ] ->
    Alcotest.(check bool) "min-high kind" true (e.Slack.e_kind = Slack.Min_high);
    (* 6.25 ns pulse against a 4.0 ns requirement *)
    Alcotest.(check int) "slack 2.25" 2_250 e.Slack.e_slack
  | l -> Alcotest.failf "expected one entry, got %d" (List.length l)

(* ---- timing diagram ------------------------------------------------------------- *)

let test_diagram_row () =
  let period = Timebase.ps_of_ns 50.0 in
  let pulse =
    Waveform.of_intervals ~period ~inside:Tvalue.V1 ~outside:Tvalue.V0
      [ (Timebase.ps_of_ns 12.5, Timebase.ps_of_ns 25.) ]
  in
  let s = Format.asprintf "%a" (Timing_diagram.pp_waveform ~columns:8) pulse in
  Alcotest.(check string) "low-high-low" "__^^____" s

let test_diagram_skew_marks () =
  let period = Timebase.ps_of_ns 50.0 in
  let w =
    Waveform.with_skew ~early:(-3_000) ~late:3_000
      (Waveform.of_intervals ~period ~inside:Tvalue.V1 ~outside:Tvalue.V0
         [ (Timebase.ps_of_ns 12.5, Timebase.ps_of_ns 25.) ])
  in
  let s = Format.asprintf "%a" (Timing_diagram.pp_waveform ~columns:25) w in
  Alcotest.(check bool) "rise mark present" true (String.contains s '/');
  Alcotest.(check bool) "fall mark present" true (String.contains s '\\')

let test_diagram_full () =
  let _, ev = evaluated () in
  let s = Format.asprintf "%a" (fun ppf -> Timing_diagram.pp ~columns:40 ppf) ev in
  Alcotest.(check bool) "has ADR row" true (contains s "ADR<0:3>");
  Alcotest.(check bool) "has marks" true (String.contains s '=')

let test_diagram_selected_signals () =
  let _, ev = evaluated () in
  let s =
    Format.asprintf "%a"
      (fun ppf -> Timing_diagram.pp ~columns:40 ~signals:[ "WRITE EN" ] ppf)
      ev
  in
  Alcotest.(check bool) "only the requested signal" true
    (contains s "WRITE EN" && not (contains s "ADR<0:3>"))

(* ---- VCD -------------------------------------------------------------------------- *)

let test_vcd_structure () =
  let _, ev = evaluated () in
  let s = Vcd.to_string ev in
  Alcotest.(check bool) "header" true (contains s "$timescale 1ps $end");
  Alcotest.(check bool) "ADR declared" true (contains s "ADR<0:3>[4]");
  Alcotest.(check bool) "dumpvars" true (contains s "$dumpvars");
  Alcotest.(check bool) "final timestamp at the period" true (contains s "#50000");
  (* spaces in names are sanitized *)
  Alcotest.(check bool) "sanitized name" true (contains s "WRITE_EN")

let test_vcd_value_mapping () =
  let nl =
    Netlist.create
      (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
      ~default_wire_delay:Delay.zero
  in
  ignore (Netlist.signal nl "D .S2-6");
  let ev = Eval.create nl in
  Eval.run ev;
  let s = Vcd.to_string ev in
  (* the stable region maps to z, the changing region to x *)
  Alcotest.(check bool) "has z" true (String.contains s 'z');
  Alcotest.(check bool) "has x" true (String.contains s 'x')

let suite =
  [
    Alcotest.test_case "slack sorted and signed" `Quick test_slack_sorted_and_signed;
    Alcotest.test_case "slack matches fig 3-11" `Quick test_slack_values_match_fig_3_11;
    Alcotest.test_case "slack on clean design" `Quick test_slack_on_clean_design;
    Alcotest.test_case "slack min pulse" `Quick test_slack_min_pulse;
    Alcotest.test_case "diagram row" `Quick test_diagram_row;
    Alcotest.test_case "diagram skew marks" `Quick test_diagram_skew_marks;
    Alcotest.test_case "diagram full" `Quick test_diagram_full;
    Alcotest.test_case "diagram selected signals" `Quick test_diagram_selected_signals;
    Alcotest.test_case "vcd structure" `Quick test_vcd_structure;
    Alcotest.test_case "vcd value mapping" `Quick test_vcd_value_mapping;
  ]
