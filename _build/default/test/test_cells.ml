open Scald_core
module Cells = Scald_cells.Cells

let make_nl () =
  Netlist.create
    (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
    ~default_wire_delay:Delay.zero

let prim_count nl mnemonic =
  let n = ref 0 in
  Netlist.iter_insts nl (fun i ->
      if Primitive.mnemonic i.Netlist.i_prim = mnemonic then incr n);
  !n

let test_register_chip () =
  let nl = make_nl () in
  let d = Netlist.signal nl "D .S0-6" in
  let ck = Netlist.signal nl "CK .P2-3" in
  let q = Netlist.signal nl "Q" in
  Cells.register nl ~data:(Netlist.conn d) ~clock:(Netlist.conn ck) q;
  Alcotest.(check int) "one reg" 1 (prim_count nl "REG");
  Alcotest.(check int) "one checker" 1 (prim_count nl "SETUP HOLD CHK");
  Alcotest.(check int) "two primitives" 2 (Netlist.n_insts nl)

let test_ram_chip () =
  let nl = make_nl () in
  let d = Netlist.signal nl "I .S0-6" in
  let a = Netlist.signal nl "A .S0-6" in
  let cs = Netlist.signal nl "CS" in
  let we = Netlist.signal nl "WE .P2-3" in
  let dout = Netlist.signal nl "DO" in
  Cells.ram16 nl ~size:32 ~data:(Netlist.conn d) ~adr:(Netlist.conn a)
    ~cs:(Netlist.conn cs) ~we:(Netlist.conn we) dout;
  Alcotest.(check int) "two checkers vs -WE" 2 (prim_count nl "SETUP HOLD CHK");
  Alcotest.(check int) "address checker" 1 (prim_count nl "SETUP RISE HOLD FALL CHK");
  Alcotest.(check int) "pulse checker" 1 (prim_count nl "MIN PULSE WIDTH");
  Alcotest.(check int) "two CHG stages" 2 (prim_count nl "3 CHG" + prim_count nl "1 CHG");
  (* the output width follows the SIZE parameter via the internal net *)
  Alcotest.(check int) "six primitives" 6 (Netlist.n_insts nl)

let test_ram_checker_polarity () =
  (* the data checker clocks on the complement of WE (its falling
     edge) *)
  let nl = make_nl () in
  let d = Netlist.signal nl "I .S0-6" in
  let a = Netlist.signal nl "A .S0-6" in
  let cs = Netlist.signal nl "CS" in
  let we = Netlist.signal nl "WE .P2-3" in
  let dout = Netlist.signal nl "DO" in
  Cells.ram16 nl ~size:16 ~data:(Netlist.conn d) ~adr:(Netlist.conn a)
    ~cs:(Netlist.conn cs) ~we:(Netlist.conn we) dout;
  let found = ref false in
  Netlist.iter_insts nl (fun i ->
      match i.Netlist.i_prim with
      | Primitive.Setup_hold_check _ ->
        if i.Netlist.i_inputs.(0).Netlist.c_net = d then begin
          found := true;
          Alcotest.(check bool) "clock input complemented" true
            i.Netlist.i_inputs.(1).Netlist.c_invert
        end
      | _ -> ());
  Alcotest.(check bool) "data checker present" true !found

let test_mux_timing () =
  (* Figure 3-6: 1.2/3.3 plus 0.3/1.2 extra on the select *)
  let nl = make_nl () in
  let a = Netlist.signal nl "A .S0-8" in
  let b = Netlist.signal nl "B .S0-8" in
  let s = Netlist.signal nl "CK .P(0,0)0-4" in
  let q = Netlist.signal nl "Q" in
  Cells.mux2 nl ~a:(Netlist.conn a) ~b:(Netlist.conn b) ~sel:(Netlist.conn s) q;
  let ev = Eval.create nl in
  Eval.run ev;
  let m = Waveform.materialize (Eval.value ev q) in
  let changing = Waveform.intervals_where Tvalue.is_changing m in
  (* select edge at 25 ns: output changes [25+1.5, 25+4.5] *)
  Alcotest.(check bool) "change window at select edge" true
    (List.exists (fun (st, w) -> st = 26_500 && st + w = 29_500) changing)

let test_latch_chip () =
  let nl = make_nl () in
  let d = Netlist.signal nl "D .S0-4" in
  let e = Netlist.signal nl "E .P2-4" in
  let q = Netlist.signal nl "Q" in
  Cells.latch nl ~data:(Netlist.conn d) ~enable:(Netlist.conn e) q;
  Alcotest.(check int) "latch + checker" 2 (Netlist.n_insts nl);
  (* the checker watches the complement (closing edge) of the enable *)
  let ok = ref false in
  Netlist.iter_insts nl (fun i ->
      match i.Netlist.i_prim with
      | Primitive.Setup_hold_check _ ->
        ok := i.Netlist.i_inputs.(1).Netlist.c_invert
      | _ -> ());
  Alcotest.(check bool) "closing-edge polarity" true !ok

let test_internal_nets_zero_wire () =
  let nl = make_nl () in
  let id = Cells.internal nl "T" in
  match (Netlist.net nl id).Netlist.n_wire_delay with
  | Some d -> Alcotest.(check bool) "zero" true (Delay.equal d Delay.zero)
  | None -> Alcotest.fail "internal net should have explicit zero wire delay"

let test_internal_nets_unique () =
  let nl = make_nl () in
  let a = Cells.internal nl "T" in
  let b = Cells.internal nl "T" in
  Alcotest.(check bool) "distinct" true (a <> b)

let test_alu_latch () =
  let nl = make_nl () in
  let a = Netlist.signal nl "A .S0-6" in
  let b = Netlist.signal nl "B .S0-6" in
  let cin = Netlist.signal nl "C1 .S0-6" in
  let s = Netlist.signal nl "S .S0-6" in
  let e = Netlist.signal nl "E .P5-6" in
  let f = Netlist.signal nl "F" in
  Cells.alu_latch nl ~size:36 ~a:(Netlist.conn a) ~b:(Netlist.conn b)
    ~carry_in:(Netlist.conn cin) ~fn_select:(Netlist.conn s) ~enable:(Netlist.conn e) f;
  Alcotest.(check int) "chg + latch + checker" 3 (Netlist.n_insts nl);
  Alcotest.(check int) "one 4-input CHG" 1 (prim_count nl "4 CHG")

let test_parity_tree () =
  let nl = make_nl () in
  let a = Netlist.signal nl "A .S0-6" in
  let out = Netlist.signal nl "PAR" in
  Cells.parity_tree nl ~inputs:(List.init 8 (fun _ -> Netlist.conn a)) out;
  (* 8 inputs reduce through 7 XORs plus the output buffer *)
  Alcotest.(check int) "7 xors" 7 (prim_count nl "2 XOR");
  Alcotest.(check int) "one buffer" 1 (prim_count nl "BUF");
  let ev = Eval.create nl in
  Eval.run ev;
  (* 3 levels of 1.5/3.5 xor: changes [37.5 + 3*1.5, wrap + 3*3.5] *)
  let m = Waveform.materialize (Eval.value ev out) in
  Alcotest.(check bool) "changing after input changes" true
    (Tvalue.is_changing (Waveform.value_at m (Timebase.ps_of_ns 45.)))

let test_adder () =
  let nl = make_nl () in
  let a = Netlist.signal nl "A .S0-6" in
  let b = Netlist.signal nl "B .S0-6" in
  let cin = Netlist.signal nl "CIN .S0-6" in
  let sum = Netlist.signal nl "SUM" in
  let cout = Netlist.signal nl "COUT" in
  Cells.adder nl ~size:16 ~a:(Netlist.conn a) ~b:(Netlist.conn b)
    ~carry_in:(Netlist.conn cin) ~sum ~carry_out:cout ();
  Alcotest.(check int) "two chg paths" 2 (prim_count nl "3 CHG");
  Alcotest.(check int) "sum width" 16 (Netlist.net nl sum).Netlist.n_width;
  let ev = Eval.create nl in
  Eval.run ev;
  (* carry settles before the sum *)
  let settle net =
    Waveform.intervals_where (fun v -> not (Tvalue.is_stable v)) (Eval.value ev net)
    |> List.fold_left (fun acc (s, w) -> max acc (s + w)) 0
  in
  Alcotest.(check bool) "carry earlier than sum" true (settle cout < settle sum)

let test_counter_protected () =
  (* the built-in CORR delay protects the feedback against the clock
     skew: no advice, no violations *)
  let nl = make_nl () in
  let ck = Netlist.signal nl "CK .P7-8" in
  Netlist.set_wire_delay nl ck Delay.zero;
  let en = Netlist.signal nl "EN .S0-8" in
  let pc = Netlist.signal nl "PC" in
  Cells.counter nl ~clock:(Netlist.conn ck) ~enable:(Netlist.conn en) pc;
  let report = Verifier.verify nl in
  Alcotest.(check int) "no violations" 0 (List.length report.Verifier.r_violations);
  Alcotest.(check int) "no corr advice" 0 (List.length (Path_analysis.Corr.advise nl))

let test_counter_unprotected_flagged () =
  let nl = make_nl () in
  (* a non-precision clock: +-5 ns of skew, far more than the counter's
     minimum feedback delay can cover without its CORR element *)
  let ck = Netlist.signal nl "CK .C7-8" in
  Netlist.set_wire_delay nl ck Delay.zero;
  let en = Netlist.signal nl "EN .S0-8" in
  let pc = Netlist.signal nl "PC" in
  Cells.counter nl ~corr_ns:0.1 ~clock:(Netlist.conn ck) ~enable:(Netlist.conn en) pc;
  match Path_analysis.Corr.advise nl with
  | [ a ] ->
    Alcotest.(check int) "10 ns clock spread" 10_000 a.Path_analysis.Corr.a_clock_spread;
    (* required = 10 + 1.5 - (1.5 + 0.1 + 2.0) *)
    Alcotest.(check int) "required delay" 7_900 a.Path_analysis.Corr.a_required_delay
  | l -> Alcotest.failf "expected one advice, got %d" (List.length l)

let test_shift_register () =
  let nl = make_nl () in
  let ck = Netlist.signal nl "CK .P7-8" in
  Netlist.set_wire_delay nl ck Delay.zero;
  let d = Netlist.signal nl "D .S0-7.6" in
  let out = Netlist.signal nl "TAP" in
  Cells.shift_register nl ~stages:4 ~data:(Netlist.conn d) ~clock:(Netlist.conn ck) out;
  Alcotest.(check int) "four registers" 4 (prim_count nl "REG");
  Alcotest.(check int) "four checkers" 4 (prim_count nl "SETUP HOLD CHK");
  Alcotest.(check int) "three corr delays" 3 (prim_count nl "BUF");
  let report = Verifier.verify nl in
  Alcotest.(check int) "clean" 0 (List.length report.Verifier.r_violations)

let test_decoder () =
  let nl = make_nl () in
  let sel = Netlist.signal nl "OP .S0-6" in
  let out = Netlist.signal nl "LINES" in
  Cells.decoder nl ~select:(Netlist.conn sel) out;
  Alcotest.(check int) "one chg" 1 (prim_count nl "1 CHG")

let suite =
  [
    Alcotest.test_case "register chip" `Quick test_register_chip;
    Alcotest.test_case "ram chip" `Quick test_ram_chip;
    Alcotest.test_case "ram checker polarity" `Quick test_ram_checker_polarity;
    Alcotest.test_case "mux timing" `Quick test_mux_timing;
    Alcotest.test_case "latch chip" `Quick test_latch_chip;
    Alcotest.test_case "internal nets zero wire" `Quick test_internal_nets_zero_wire;
    Alcotest.test_case "internal nets unique" `Quick test_internal_nets_unique;
    Alcotest.test_case "alu latch" `Quick test_alu_latch;
    Alcotest.test_case "parity tree" `Quick test_parity_tree;
    Alcotest.test_case "adder" `Quick test_adder;
    Alcotest.test_case "counter protected" `Quick test_counter_protected;
    Alcotest.test_case "counter unprotected flagged" `Quick test_counter_unprotected_flagged;
    Alcotest.test_case "shift register" `Quick test_shift_register;
    Alcotest.test_case "decoder" `Quick test_decoder;
  ]
