(* The simplified Physical Design Subsystem (§2.5.3, §1.3.2). *)

open Scald_core

let make_nl () =
  Netlist.create (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)

(* creation-order placement makes the geometry predictable in tests *)
let by_id = { Physical.default_config with Physical.placement = Physical.By_id }

let buf = Primitive.Buf { invert = false; delay = Delay.of_ns 1.0 2.0 }

(* a chain long enough that consecutive instances land far apart *)
let spread_chain nl n =
  let input = Netlist.signal nl "IN .S0-6" in
  let rec go i current =
    if i = n then current
    else begin
      let next = Netlist.signal nl (Printf.sprintf "N%d" i) in
      ignore (Netlist.add nl buf ~inputs:[ Netlist.conn current ] ~output:(Some next));
      go (i + 1) next
    end
  in
  (input, go 0 input)

let test_route_lengths () =
  let nl = make_nl () in
  let _ = spread_chain nl 3 in
  let r = Physical.place_and_route ~config:by_id nl in
  (* adjacent chips on the grid: each two-pin net spans one 2 cm pitch *)
  List.iter
    (fun (rt : Physical.route) ->
      if rt.Physical.r_fanout = 1 && rt.Physical.r_length_cm > 0. then
        Alcotest.(check (float 1e-6)) "one pitch" 2.0 rt.Physical.r_length_cm)
    r.Physical.p_routes;
  Alcotest.(check bool) "total wire positive" true (r.Physical.p_total_wire_cm > 0.)

let test_delay_from_length () =
  let nl = make_nl () in
  let _ = spread_chain nl 2 in
  let r = Physical.place_and_route ~config:by_id nl in
  let rt =
    List.find (fun (x : Physical.route) -> x.Physical.r_length_cm > 0.) r.Physical.p_routes
  in
  (* 2 cm at 15 cm/ns = 0.133 ns plus the 0.2/0.5 intrinsic *)
  Alcotest.(check int) "min" (Timebase.ps_of_ns (0.2 +. (2. /. 15.)))
    rt.Physical.r_delay.Delay.dmin;
  Alcotest.(check int) "max with detour" (Timebase.ps_of_ns (0.5 +. (1.8 *. 2. /. 15.)))
    rt.Physical.r_delay.Delay.dmax

let test_apply_respects_overrides () =
  let nl = make_nl () in
  let input, last = spread_chain nl 2 in
  ignore last;
  Netlist.set_wire_delay nl input (Delay.of_ns 0.0 6.0);
  let r = Physical.apply ~config:by_id nl in
  Alcotest.(check bool) "some applied" true (r.Physical.p_applied > 0);
  match (Netlist.net nl input).Netlist.n_wire_delay with
  | Some d -> Alcotest.(check bool) "designer delay kept" true (Delay.equal d (Delay.of_ns 0.0 6.0))
  | None -> Alcotest.fail "override lost"

let test_long_run_needs_line_analysis () =
  (* two consumers 79 grid slots apart: tens of cm of wire, well over a
     quarter rise time of propagation *)
  let nl = make_nl () in
  let a = Netlist.signal nl "A .S0-6" in
  let q0 = Netlist.signal nl "NEAR Q" in
  ignore (Netlist.add nl buf ~inputs:[ Netlist.conn a ] ~output:(Some q0));
  (* pad with unrelated instances to push the second consumer far away *)
  for i = 0 to 77 do
    let x = Netlist.signal nl (Printf.sprintf "PAD %d .S0-6" i) in
    let y = Netlist.signal nl (Printf.sprintf "PADQ %d" i) in
    ignore (Netlist.add nl buf ~inputs:[ Netlist.conn x ] ~output:(Some y))
  done;
  let q = Netlist.signal nl "FAR Q" in
  ignore (Netlist.add nl buf ~inputs:[ Netlist.conn a ] ~output:(Some q));
  let r = Physical.place_and_route ~config:by_id nl in
  let rt = List.find (fun (x : Physical.route) -> x.Physical.r_net = "A .S0-6") r.Physical.p_routes in
  Alcotest.(check bool)
    (Printf.sprintf "long run (%.1f cm) screened" rt.Physical.r_length_cm)
    true rt.Physical.r_needs_line_analysis

let test_reflection_flagging () =
  (* a heavily loaded clock run: receivers in parallel mismatch the
     line, and the consumers are edge-sensitive register clocks *)
  let nl = make_nl () in
  let ck = Netlist.signal nl "CK .P2-3" in
  for i = 0 to 60 do
    let d = Netlist.signal nl (Printf.sprintf "D%d .S0-6" i) in
    let q = Netlist.signal nl (Printf.sprintf "Q%d" i) in
    ignore
      (Netlist.add nl
         (Primitive.Reg { delay = Delay.of_ns 1.5 4.5; has_set_reset = false })
         ~inputs:[ Netlist.conn d; Netlist.conn ck ]
         ~output:(Some q))
  done;
  let r = Physical.place_and_route ~config:by_id nl in
  let rt = List.find (fun (x : Physical.route) -> x.Physical.r_net = "CK .P2-3") r.Physical.p_routes in
  Alcotest.(check bool) "edge sensitive" true rt.Physical.r_edge_sensitive;
  Alcotest.(check bool) "significant reflection" true (rt.Physical.r_reflection > 0.25);
  Alcotest.(check bool) "flagged" true rt.Physical.r_flagged;
  Alcotest.(check bool) "in the flagged list" true
    (List.exists (fun (x : Physical.route) -> x.Physical.r_net = "CK .P2-3") r.Physical.p_flagged)

let test_data_run_not_flagged () =
  (* the same heavy loading on a data input is not edge-sensitive *)
  let nl = make_nl () in
  let d = Netlist.signal nl "BUS .S0-6" in
  for i = 0 to 60 do
    let q = Netlist.signal nl (Printf.sprintf "Q%d" i) in
    ignore (Netlist.add nl buf ~inputs:[ Netlist.conn d ] ~output:(Some q))
  done;
  let r = Physical.place_and_route ~config:by_id nl in
  let rt = List.find (fun (x : Physical.route) -> x.Physical.r_net = "BUS .S0-6") r.Physical.p_routes in
  Alcotest.(check bool) "not flagged" false rt.Physical.r_flagged

let test_computed_delays_change_verification () =
  (* §2.5.3's workflow: once the packaged delays exist they replace the
     default rule; a short-run design verifies with tighter windows *)
  let nl = make_nl () in
  let d = Netlist.signal nl "D .S0-7" in
  (* the clock rises at 4.5 ns +- 1: the set-up window starts 1.0 ns
     into the cycle, between the computed (0.5 ns) and default (2 ns)
     settling of D *)
  let ck = Netlist.signal nl "CK .P(-1,1)0.72-2" in
  Netlist.set_wire_delay nl ck Delay.zero;
  ignore
    (Netlist.add nl
       (Primitive.Setup_hold_check
          { setup = Timebase.ps_of_ns 2.5; hold = Timebase.ps_of_ns 1.5 })
       ~inputs:[ Netlist.conn d; Netlist.conn ck ]
       ~output:None);
  let with_default = Verifier.verify nl in
  let r = Physical.apply ~config:by_id nl in
  Alcotest.(check bool) "applied" true (r.Physical.p_applied > 0);
  let with_computed = Verifier.verify nl in
  (* the computed short-run delay (<= 1 ns) is tighter than the 2 ns
     default: the marginal hold check now passes *)
  Alcotest.(check bool) "default rule marginal or failing" true
    (with_default.Verifier.r_violations <> []);
  Alcotest.(check (list string)) "computed delays pass" []
    (List.map (fun (v : Check.t) -> Format.asprintf "%a" Check.pp v)
       with_computed.Verifier.r_violations)

let test_violations_conversion () =
  let nl = make_nl () in
  let ck = Netlist.signal nl "CK .P2-3" in
  for i = 0 to 60 do
    let d = Netlist.signal nl (Printf.sprintf "D%d .S0-6" i) in
    let q = Netlist.signal nl (Printf.sprintf "Q%d" i) in
    ignore
      (Netlist.add nl
         (Primitive.Reg { delay = Delay.of_ns 1.5 4.5; has_set_reset = false })
         ~inputs:[ Netlist.conn d; Netlist.conn ck ]
         ~output:(Some q))
  done;
  let r = Physical.place_and_route ~config:by_id nl in
  let vs = Physical.violations r in
  Alcotest.(check int) "one violation per flagged run" (List.length r.Physical.p_flagged)
    (List.length vs);
  List.iter
    (fun (v : Check.t) ->
      Alcotest.(check bool) "reflection kind" true (v.Check.v_kind = Check.Reflection_hazard))
    vs

let suite =
  [
    Alcotest.test_case "route lengths" `Quick test_route_lengths;
    Alcotest.test_case "delay from length" `Quick test_delay_from_length;
    Alcotest.test_case "apply respects overrides" `Quick test_apply_respects_overrides;
    Alcotest.test_case "long run needs line analysis" `Quick
      test_long_run_needs_line_analysis;
    Alcotest.test_case "reflection flagging" `Quick test_reflection_flagging;
    Alcotest.test_case "data run not flagged" `Quick test_data_run_not_flagged;
    Alcotest.test_case "computed delays change verification" `Quick
      test_computed_delays_change_verification;
    Alcotest.test_case "violations conversion" `Quick test_violations_conversion;
  ]
