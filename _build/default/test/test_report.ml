open Scald_core
module Circuits = Scald_cells.Circuits

let rendered () =
  let c = Circuits.register_file_example () in
  let report = Verifier.verify c.Circuits.rf_netlist in
  (c, report)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_summary_lists_signals () =
  let _, report = rendered () in
  let s = Format.asprintf "%a" Report.pp_summary report.Verifier.r_eval in
  Alcotest.(check bool) "has header" true (contains s "TIMING VERIFIER SIGNAL VALUE SUMMARY");
  Alcotest.(check bool) "has ADR" true (contains s "ADR<0:3>");
  Alcotest.(check bool) "has the Figure 3-10 line" true
    (contains s "S 0.0  C 0.5  S 5.5  C 25.5  S 30.5")

let test_violation_listing () =
  let _, report = rendered () in
  let s = Format.asprintf "%a" Report.pp_violations report.Verifier.r_violations in
  Alcotest.(check bool) "setup error shown" true (contains s "SETUP TIME VIOLATED");
  Alcotest.(check bool) "miss amount shown" true (contains s "MISSED BY 1.0 NS")

let test_violation_with_values () =
  let _, report = rendered () in
  let v = List.hd report.Verifier.r_violations in
  let s =
    Format.asprintf "%a" (fun ppf -> Report.pp_violation_with_values ppf report.Verifier.r_eval) v
  in
  Alcotest.(check bool) "data input line" true (contains s "DATA INPUT");
  Alcotest.(check bool) "clock input line" true (contains s "CK INPUT")

let test_cross_reference () =
  let c, _ = rendered () in
  let s = Format.asprintf "%a" Report.pp_cross_reference c.Circuits.rf_netlist in
  Alcotest.(check bool) "CS flagged" true (contains s "CS")

let test_empty_violations () =
  let s = Format.asprintf "%a" Report.pp_violations [] in
  Alcotest.(check bool) "no errors note" true (contains s "(no errors)")

let suite =
  [
    Alcotest.test_case "summary lists signals" `Quick test_summary_lists_signals;
    Alcotest.test_case "violation listing" `Quick test_violation_listing;
    Alcotest.test_case "violation with values" `Quick test_violation_with_values;
    Alcotest.test_case "cross reference" `Quick test_cross_reference;
    Alcotest.test_case "empty violations" `Quick test_empty_violations;
  ]
