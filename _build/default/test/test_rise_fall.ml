(* §4.2.2 extension: different rising and falling delays. *)

open Scald_core

let ps = Timebase.ps_of_ns
let period = ps 50.0
let tv = Alcotest.testable Tvalue.pp Tvalue.equal

let pulse ~from_ns ~to_ns =
  Waveform.of_intervals ~period ~inside:Tvalue.V1 ~outside:Tvalue.V0
    [ (ps from_ns, ps to_ns) ]

let test_delay_constructors () =
  let d = Delay.of_rise_fall_ns ~rise:(1.0, 2.0) ~fall:(3.0, 6.0) in
  (* the envelope covers both edges: consumers ignoring the refinement
     stay conservative *)
  Alcotest.(check int) "envelope min" (ps 1.0) d.Delay.dmin;
  Alcotest.(check int) "envelope max" (ps 6.0) d.Delay.dmax;
  Alcotest.(check bool) "refinement present" true (Delay.rise_fall d <> None)

let test_delay_add_composes_edges () =
  let d1 = Delay.of_rise_fall_ns ~rise:(1.0, 1.0) ~fall:(3.0, 3.0) in
  let d2 = Delay.of_rise_fall_ns ~rise:(2.0, 2.0) ~fall:(1.0, 1.0) in
  match Delay.rise_fall (Delay.add d1 d2) with
  | Some ((r1, r2), (f1, f2)) ->
    Alcotest.(check (pair int int)) "rise sums" (ps 3.0, ps 3.0) (r1, r2);
    Alcotest.(check (pair int int)) "fall sums" (ps 4.0, ps 4.0) (f1, f2)
  | None -> Alcotest.fail "refinement lost in add"

let test_pulse_stretches () =
  (* slow fall: a high pulse gets wider (late trailing edge) *)
  let w = pulse ~from_ns:10. ~to_ns:20. in
  match
    Waveform.delay_rise_fall ~rise:(ps 2., ps 2.) ~fall:(ps 6., ps 6.) w
  with
  | Some d ->
    Alcotest.check tv "rises at 12" Tvalue.V1 (Waveform.value_at d (ps 13.));
    Alcotest.check tv "still high at 25" Tvalue.V1 (Waveform.value_at d (ps 25.));
    Alcotest.check tv "low at 27" Tvalue.V0 (Waveform.value_at d (ps 27.));
    (match Waveform.pulse_intervals Tvalue.V1 d with
    | [ (s, width) ] ->
      Alcotest.(check int) "starts at 12" (ps 12.) s;
      Alcotest.(check int) "width 14" (ps 14.) width
    | _ -> Alcotest.fail "expected one pulse")
  | None -> Alcotest.fail "clock waveform should be value-known"

let test_uncertain_edges_become_windows () =
  let w = pulse ~from_ns:10. ~to_ns:20. in
  match
    Waveform.delay_rise_fall ~rise:(ps 1., ps 3.) ~fall:(ps 1., ps 3.) w
  with
  | Some d ->
    Alcotest.check tv "rise window" Tvalue.Rise (Waveform.value_at d (ps 12.));
    Alcotest.check tv "fall window" Tvalue.Fall (Waveform.value_at d (ps 22.))
  | None -> Alcotest.fail "should be value-known"

let test_value_unknown_falls_back () =
  let w =
    Waveform.of_intervals ~period ~inside:Tvalue.Stable ~outside:Tvalue.Change
      [ (0, ps 30.) ]
  in
  Alcotest.(check bool) "None for stable/changing signals" true
    (Waveform.delay_rise_fall ~rise:(ps 1., ps 1.) ~fall:(ps 2., ps 2.) w = None)

let test_inverter_chain_restores_width () =
  (* The classic nMOS case: two inverters in series with rise 1 ns and
     fall 3 ns.  Each stage shifts the pulse, but after an even number
     of inversions the width is restored exactly — which the envelope
     (symmetric worst-case) model cannot see. *)
  let nl =
    Netlist.create
      (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
      ~default_wire_delay:Delay.zero
  in
  let d_asym = Delay.of_rise_fall_ns ~rise:(1.0, 1.0) ~fall:(3.0, 3.0) in
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  let n1 = Netlist.signal nl "N1" in
  let n2 = Netlist.signal nl "N2" in
  ignore
    (Netlist.add nl
       (Primitive.Buf { invert = true; delay = d_asym })
       ~inputs:[ Netlist.conn ck ] ~output:(Some n1));
  ignore
    (Netlist.add nl
       (Primitive.Buf { invert = true; delay = d_asym })
       ~inputs:[ Netlist.conn n1 ] ~output:(Some n2));
  let ev = Eval.create nl in
  Eval.run ev;
  (* input pulse: high 12.5..18.75 (6.25 wide) *)
  (match Waveform.pulse_intervals Tvalue.V1 (Eval.value ev n1) with
  | [ (_, width) ] ->
    (* after one inversion the (low) phase width changed; the high phase
       of n1 is the complement pulse *)
    Alcotest.(check bool) "intermediate width differs" true (width <> ps 6.25)
  | _ -> Alcotest.fail "n1 pulse");
  match Waveform.pulse_intervals Tvalue.V1 (Eval.value ev n2) with
  | [ (s, width) ] ->
    Alcotest.(check int) "width restored after two inversions" (ps 6.25) width;
    (* both edges shifted by rise+fall = 4 ns *)
    Alcotest.(check int) "pulse shifted by 4 ns" (ps 16.5) s
  | _ -> Alcotest.fail "n2 pulse"

let test_envelope_is_pessimistic () =
  (* the same chain with the refinement stripped: the 2 ns spread per
     stage accumulates as skew and the guaranteed width shrinks *)
  let nl =
    Netlist.create
      (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
      ~default_wire_delay:Delay.zero
  in
  let d_env = Delay.of_ns 1.0 3.0 in
  let ck = Netlist.signal nl "CK .P(0,0)2-3" in
  let n1 = Netlist.signal nl "N1" in
  let n2 = Netlist.signal nl "N2" in
  ignore
    (Netlist.add nl
       (Primitive.Buf { invert = true; delay = d_env })
       ~inputs:[ Netlist.conn ck ] ~output:(Some n1));
  ignore
    (Netlist.add nl
       (Primitive.Buf { invert = true; delay = d_env })
       ~inputs:[ Netlist.conn n1 ] ~output:(Some n2));
  let ev = Eval.create nl in
  Eval.run ev;
  let vs =
    Check.check_min_pulse_width ~inst:"MPW" ~signal:"N2" ~high:(ps 5.) ~low:0
      (Waveform.materialize (Eval.value ev n2))
  in
  Alcotest.(check bool) "envelope model flags a false runt" true (vs <> []);
  (* whereas the rise/fall-aware result keeps the full 6.25 ns *)
  let nl2 =
    Netlist.create
      (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
      ~default_wire_delay:Delay.zero
  in
  let d_asym = Delay.of_rise_fall_ns ~rise:(1.0, 1.0) ~fall:(3.0, 3.0) in
  let ck2 = Netlist.signal nl2 "CK .P(0,0)2-3" in
  let m1 = Netlist.signal nl2 "M1" in
  let m2 = Netlist.signal nl2 "M2" in
  ignore
    (Netlist.add nl2
       (Primitive.Buf { invert = true; delay = d_asym })
       ~inputs:[ Netlist.conn ck2 ] ~output:(Some m1));
  ignore
    (Netlist.add nl2
       (Primitive.Buf { invert = true; delay = d_asym })
       ~inputs:[ Netlist.conn m1 ] ~output:(Some m2));
  let ev2 = Eval.create nl2 in
  Eval.run ev2;
  let vs2 =
    Check.check_min_pulse_width ~inst:"MPW" ~signal:"M2" ~high:(ps 5.) ~low:0
      (Eval.value ev2 m2)
  in
  Alcotest.(check (list string)) "rise/fall-aware is exact" []
    (List.map (fun (v : Check.t) -> Format.asprintf "%a" Check.pp v) vs2)

let test_sdl_rise_fall_props () =
  (* the default +-1 ns precision skew is folded into the edge windows
     when the per-edge delays apply, so the guaranteed high width is the
     nominal 6.25 ns minus one 2 ns window *)
  let src =
    "PERIOD 50.0;\nWIRE DELAY (CK .P2-3) = 0.0/0.0;\n\
     NOT (RISE=1.0/1.0, FALL=3.0/3.0) (CK .P2-3) -> N1;\n\
     NOT (RISE=1.0/1.0, FALL=3.0/3.0) (N1) -> N2;\nWIRE DELAY (N1) = 0.0/0.0;\n"
  in
  match Scald_sdl.Expander.load src with
  | Error e -> Alcotest.fail e
  | Ok e ->
    let nl = e.Scald_sdl.Expander.e_netlist in
    let ev = Eval.create nl in
    Eval.run ev;
    (match Netlist.find nl "N2" with
    | Some n2 -> (
      match Waveform.pulse_intervals Tvalue.V1 (Eval.value ev n2) with
      | [ (_, width) ] -> Alcotest.(check int) "guaranteed width" (ps 4.25) width
      | _ -> Alcotest.fail "expected one pulse")
    | None -> Alcotest.fail "N2 missing")

let suite =
  [
    Alcotest.test_case "delay constructors" `Quick test_delay_constructors;
    Alcotest.test_case "delay add composes edges" `Quick test_delay_add_composes_edges;
    Alcotest.test_case "pulse stretches" `Quick test_pulse_stretches;
    Alcotest.test_case "uncertain edges become windows" `Quick
      test_uncertain_edges_become_windows;
    Alcotest.test_case "value-unknown falls back" `Quick test_value_unknown_falls_back;
    Alcotest.test_case "inverter chain restores width" `Quick
      test_inverter_chain_restores_width;
    Alcotest.test_case "envelope is pessimistic" `Quick test_envelope_is_pessimistic;
    Alcotest.test_case "sdl RISE/FALL props" `Quick test_sdl_rise_fall_props;
  ]
