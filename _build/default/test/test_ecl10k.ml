(* The extended ECL-10K component library. *)

open Scald_core
module E = Scald_cells.Ecl10k

let make_nl () =
  Netlist.create
    (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
    ~default_wire_delay:Delay.zero

let prim_count nl mnemonic =
  let n = ref 0 in
  Netlist.iter_insts nl (fun i ->
      if Primitive.mnemonic i.Netlist.i_prim = mnemonic then incr n);
  !n

let gnd nl =
  let g = Netlist.signal nl "GND" in
  (match (Netlist.net nl g).Netlist.n_driver with
  | None -> ignore (Netlist.add nl (Primitive.Const Tvalue.V0) ~inputs:[] ~output:(Some g))
  | Some _ -> ());
  Netlist.conn g

let test_dff_10131 () =
  let nl = make_nl () in
  let d = Netlist.signal nl "D .S0-6" in
  let ck = Netlist.signal nl "CK .P2-3" in
  Netlist.set_wire_delay nl ck Delay.zero;
  let q = Netlist.signal nl "Q" in
  E.dff_10131 nl ~data:(Netlist.conn d) ~clock:(Netlist.conn ck) ~set:(gnd nl)
    ~reset:(gnd nl) q;
  Alcotest.(check int) "reg rs" 1 (prim_count nl "REG RS");
  Alcotest.(check int) "checker" 1 (prim_count nl "SETUP HOLD CHK");
  Alcotest.(check int) "pulse width" 1 (prim_count nl "MIN PULSE WIDTH");
  let report = Verifier.verify nl in
  Alcotest.(check (list string)) "clean with inactive set/reset" []
    (List.map (fun (v : Check.t) -> Format.asprintf "%a" Check.pp v)
       report.Verifier.r_violations)

let test_dff_narrow_clock_flagged () =
  let nl = make_nl () in
  let d = Netlist.signal nl "D .S0-6" in
  (* a 2 ns clock pulse against the 3.3 ns requirement *)
  let ck = Netlist.signal nl "CK .P(0,0)2+2.0" in
  Netlist.set_wire_delay nl ck Delay.zero;
  let q = Netlist.signal nl "Q" in
  E.dff_10131 nl ~data:(Netlist.conn d) ~clock:(Netlist.conn ck) ~set:(gnd nl)
    ~reset:(gnd nl) q;
  let report = Verifier.verify nl in
  Alcotest.(check bool) "runt clock flagged" true
    (Verifier.violations_of_kind Check.Min_high_width report <> [])

let test_mux8_paths () =
  let nl = make_nl () in
  let d = Netlist.signal nl "D .S0-8" in
  let s = Netlist.signal nl "S .S2-6" in
  let e = Netlist.signal nl "EN .S0-8" in
  let q = Netlist.signal nl "Q" in
  E.mux8_10164 nl ~data:(Netlist.conn d) ~select:(Netlist.conn s)
    ~enable:(Netlist.conn e) q;
  let ev = Eval.create nl in
  Eval.run ev;
  (* the select changes 37.5..12.5; the output through the 3.0/6.5 path *)
  let m = Waveform.materialize (Eval.value ev q) in
  Alcotest.check (Alcotest.testable Tvalue.pp Tvalue.equal) "changing via select path"
    Tvalue.Change
    (Waveform.value_at m (Timebase.ps_of_ns 41.))

let test_shift_10141 () =
  let nl = make_nl () in
  let d = Netlist.signal nl "D .S0-7.6" in
  let ck = Netlist.signal nl "CK .P7-8" in
  Netlist.set_wire_delay nl ck Delay.zero;
  let q = Netlist.signal nl "Q" in
  E.shift_10141 nl ~data:(Netlist.conn d) ~clock:(Netlist.conn ck) q;
  Alcotest.(check int) "four stages" 4 (prim_count nl "REG");
  Alcotest.(check int) "four checkers" 4 (prim_count nl "SETUP HOLD CHK");
  let report = Verifier.verify nl in
  Alcotest.(check (list string)) "clean" []
    (List.map (fun (v : Check.t) -> Format.asprintf "%a" Check.pp v)
       report.Verifier.r_violations);
  Alcotest.(check int) "no corr advice needed" 0
    (List.length (Path_analysis.Corr.advise nl))

let test_counter_10136 () =
  let nl = make_nl () in
  let ck = Netlist.signal nl "CK .P7-8" in
  Netlist.set_wire_delay nl ck Delay.zero;
  let en = Netlist.signal nl "EN .S0-8" in
  let q = Netlist.signal nl "CNT" in
  E.counter_10136 nl ~clock:(Netlist.conn ck) ~enable:(Netlist.conn en) q;
  let report = Verifier.verify nl in
  Alcotest.(check (list string)) "clean" []
    (List.map (fun (v : Check.t) -> Format.asprintf "%a" Check.pp v)
       report.Verifier.r_violations)

let test_small_blocks () =
  let nl = make_nl () in
  let s = Netlist.signal nl "S .S0-6" in
  let e = Netlist.signal nl "EN .S0-8" in
  let dec = Netlist.signal nl "DEC" in
  E.decoder_10162 nl ~select:(Netlist.conn s) ~enable:(Netlist.conn e) dec;
  let par = Netlist.signal nl "PAR" in
  E.parity_10160 nl ~data:(Netlist.conn s) par;
  let g = Netlist.signal nl "G .S0-6" in
  let p = Netlist.signal nl "P .S0-6" in
  let cin = Netlist.signal nl "CIN .S0-6" in
  let cout = Netlist.signal nl "COUT" in
  E.carry_10179 nl ~g:(Netlist.conn g) ~p:(Netlist.conn p) ~carry_in:(Netlist.conn cin)
    cout;
  let ev = Eval.create nl in
  Eval.run ev;
  (* the carry block is the fastest path: it settles first *)
  let settle net =
    Waveform.intervals_where (fun v -> not (Tvalue.is_stable v)) (Eval.value ev net)
    |> List.fold_left (fun acc (st, w) -> max acc (st + w)) 0
  in
  Alcotest.(check bool) "carry faster than parity" true (settle cout < settle par);
  Alcotest.(check bool) "decoder between" true
    (settle dec <= settle par && settle dec >= settle cout)

let test_latch_10133 () =
  let nl = make_nl () in
  (* stable through the closing window plus hold *)
  let d = Netlist.signal nl "D .S0-4.5" in
  let e = Netlist.signal nl "E .P2-4" in
  Netlist.set_wire_delay nl e Delay.zero;
  let q = Netlist.signal nl "Q" in
  E.latch_10133 nl ~data:(Netlist.conn d) ~enable:(Netlist.conn e) q;
  let report = Verifier.verify nl in
  Alcotest.(check (list string)) "clean" []
    (List.map (fun (v : Check.t) -> Format.asprintf "%a" Check.pp v)
       report.Verifier.r_violations)

let suite =
  [
    Alcotest.test_case "dff 10131" `Quick test_dff_10131;
    Alcotest.test_case "dff narrow clock flagged" `Quick test_dff_narrow_clock_flagged;
    Alcotest.test_case "mux8 paths" `Quick test_mux8_paths;
    Alcotest.test_case "shift 10141" `Quick test_shift_10141;
    Alcotest.test_case "counter 10136" `Quick test_counter_10136;
    Alcotest.test_case "small blocks" `Quick test_small_blocks;
    Alcotest.test_case "latch 10133" `Quick test_latch_10133;
  ]
