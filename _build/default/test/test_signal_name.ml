open Scald_core

let parse = Signal_name.parse_exn

let test_plain () =
  let s = parse "WRITE EN" in
  Alcotest.(check string) "base" "WRITE EN" s.Signal_name.base;
  Alcotest.(check bool) "no complement" false s.Signal_name.complemented;
  Alcotest.(check bool) "no assertion" true (s.Signal_name.assertion = None);
  Alcotest.(check int) "scalar" 1 (Signal_name.width s)

let test_complement () =
  let s = parse "- WE" in
  Alcotest.(check bool) "complement" true s.Signal_name.complemented;
  Alcotest.(check string) "base" "WE" s.Signal_name.base

let test_vector () =
  let s = parse "A<0:3>" in
  Alcotest.(check (option (pair int int))) "vector" (Some (0, 3)) s.Signal_name.vector;
  Alcotest.(check int) "width" 4 (Signal_name.width s);
  let s2 = parse "ADR<0:31>" in
  Alcotest.(check int) "width 32" 32 (Signal_name.width s2)

let test_with_assertion () =
  let s = parse "W DATA .S0-6" in
  Alcotest.(check string) "base" "W DATA" s.Signal_name.base;
  (match s.Signal_name.assertion with
  | Some a -> Alcotest.(check bool) "stable kind" true (a.Assertion.kind = Assertion.Stable)
  | None -> Alcotest.fail "expected an assertion");
  let s2 = parse "CK .P2-3 L" in
  match s2.Signal_name.assertion with
  | Some a ->
    Alcotest.(check bool) "precision" true (a.Assertion.kind = Assertion.Precision_clock);
    Alcotest.(check bool) "low" true a.Assertion.low_active
  | None -> Alcotest.fail "expected an assertion"

let test_key_distinguishes_assertions () =
  (* The assertion is part of the signal name (§2.5.1): "CK .P2-3 L" and
     "CK .P0-4" are different signals. *)
  let a = parse "CK .P2-3 L" and b = parse "CK .P0-4" in
  Alcotest.(check bool) "different keys" true (Signal_name.key a <> Signal_name.key b);
  (* Complementation does not create a distinct signal. *)
  let c = parse "- CK .P2-3 L" in
  Alcotest.(check string) "complement same key" (Signal_name.key a) (Signal_name.key c)

let test_vector_with_assertion () =
  let s = parse "READ ADR<0:3> .S4-9" in
  Alcotest.(check int) "width" 4 (Signal_name.width s);
  Alcotest.(check bool) "has assertion" true (s.Signal_name.assertion <> None)

let test_multirange_assertion () =
  let s = parse "XYZ .C2-3,5-6" in
  match s.Signal_name.assertion with
  | Some a -> Alcotest.(check int) "two ranges" 2 (List.length a.Assertion.ranges)
  | None -> Alcotest.fail "expected an assertion"

let test_to_string () =
  Alcotest.(check string) "roundtrip text" "- WE" (Signal_name.to_string (parse "- WE"));
  Alcotest.(check string) "assertion kept" "CK .P2-3 L"
    (Signal_name.to_string (parse "CK .P2-3 L"))

let test_errors () =
  (match Signal_name.parse "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty should fail");
  match Signal_name.parse "X .Pzz" with
  | Error _ -> ()
  | Ok s ->
    (* ".Pzz" does not look like an assertion start, so it stays part of
       the base name. *)
    Alcotest.(check bool) "no assertion parsed" true (s.Signal_name.assertion = None)

let suite =
  [
    Alcotest.test_case "plain" `Quick test_plain;
    Alcotest.test_case "complement" `Quick test_complement;
    Alcotest.test_case "vector" `Quick test_vector;
    Alcotest.test_case "with assertion" `Quick test_with_assertion;
    Alcotest.test_case "key distinguishes assertions" `Quick test_key_distinguishes_assertions;
    Alcotest.test_case "vector with assertion" `Quick test_vector_with_assertion;
    Alcotest.test_case "multirange assertion" `Quick test_multirange_assertion;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "errors" `Quick test_errors;
  ]
