(* §2.5.2: modular, section-by-section verification. *)

open Scald_core

let tb () = Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25

let section name build =
  let nl = Netlist.create (tb ()) in
  build nl;
  { Modular.s_name = name; s_netlist = nl }

let producer nl =
  let d = Netlist.signal nl "RAW .S0-6" in
  let ck = Netlist.signal nl "CK A .P1-2" in
  Netlist.set_wire_delay nl ck Delay.zero;
  let q = Netlist.signal nl "XFER .S2-7" in
  Scald_cells.Cells.register nl ~name:"XFER REG" ~data:(Netlist.conn d)
    ~clock:(Netlist.conn ck) q

let consumer nl =
  let d = Netlist.signal nl "XFER .S2-7" in
  let ck = Netlist.signal nl "CK B .P4-5" in
  Netlist.set_wire_delay nl ck Delay.zero;
  let q = Netlist.signal nl "SINK" in
  Scald_cells.Cells.register nl ~name:"SINK REG" ~data:(Netlist.conn d)
    ~clock:(Netlist.conn ck) q

let test_interface_signals () =
  let sections = [ section "A" producer; section "B" consumer ] in
  match Modular.interface_signals sections with
  | [ (signal, secs) ] ->
    Alcotest.(check string) "the shared net" "XFER .S2-7" signal;
    Alcotest.(check (list string)) "both sections" [ "A"; "B" ] secs
  | l -> Alcotest.failf "expected one interface signal, got %d" (List.length l)

let test_clean_composition () =
  let r = Modular.verify [ section "A" producer; section "B" consumer ] in
  Alcotest.(check int) "no issues" 0 (List.length r.Modular.m_issues);
  Alcotest.(check bool) "whole design clean" true r.Modular.m_clean

let test_unasserted_interface_flagged () =
  (* the interface signal has no assertion: section B would silently
     treat it as always stable *)
  let producer' nl =
    let d = Netlist.signal nl "RAW .S0-6" in
    let ck = Netlist.signal nl "CK A .P1-2" in
    Netlist.set_wire_delay nl ck Delay.zero;
    let q = Netlist.signal nl "XFER BARE" in
    Scald_cells.Cells.register nl ~data:(Netlist.conn d) ~clock:(Netlist.conn ck) q
  in
  let consumer' nl =
    let d = Netlist.signal nl "XFER BARE" in
    let q = Netlist.signal nl "SINK" in
    let ck = Netlist.signal nl "CK B .P4-5" in
    Netlist.set_wire_delay nl ck Delay.zero;
    Scald_cells.Cells.register nl ~data:(Netlist.conn d) ~clock:(Netlist.conn ck) q
  in
  let r = Modular.verify [ section "A" producer'; section "B" consumer' ] in
  Alcotest.(check bool) "issue raised" true
    (List.exists
       (function Modular.Unasserted_interface _ -> true | _ -> false)
       r.Modular.m_issues);
  Alcotest.(check bool) "not clean" false r.Modular.m_clean

let test_multiply_driven_flagged () =
  let r = Modular.verify [ section "A" producer; section "B" producer ] in
  Alcotest.(check bool) "issue raised" true
    (List.exists
       (function Modular.Multiply_driven _ -> true | _ -> false)
       r.Modular.m_issues);
  Alcotest.(check bool) "not clean" false r.Modular.m_clean

let test_undriven_interface_reported_not_blocking () =
  (* two consumers of a not-yet-generated signal: the assertion stands
     in for future hardware (§1.1); reported but not an error *)
  let consumer2 nl =
    let d = Netlist.signal nl "XFER .S2-7" in
    let ck = Netlist.signal nl "CK C .P4-5" in
    Netlist.set_wire_delay nl ck Delay.zero;
    let q = Netlist.signal nl "SINK 2" in
    Scald_cells.Cells.register nl ~name:"SINK REG 2" ~data:(Netlist.conn d)
      ~clock:(Netlist.conn ck) q
  in
  let r = Modular.verify [ section "B1" consumer; section "B2" consumer2 ] in
  Alcotest.(check bool) "reported" true
    (List.exists
       (function Modular.Undriven_interface _ -> true | _ -> false)
       r.Modular.m_issues);
  Alcotest.(check bool) "still clean" true r.Modular.m_clean

let test_dirty_section_blocks () =
  let bad_consumer nl =
    consumer nl;
    (* add a register whose data changes through its clock edge *)
    let late = Netlist.signal nl "LATE .S4-6" in
    let ck = Netlist.signal nl "CK C .P4.8-6" in
    Netlist.set_wire_delay nl ck Delay.zero;
    let q = Netlist.signal nl "BAD SINK" in
    Scald_cells.Cells.register nl ~name:"BAD REG" ~data:(Netlist.conn late)
      ~clock:(Netlist.conn ck) q
  in
  let r = Modular.verify [ section "A" producer; section "B" bad_consumer ] in
  Alcotest.(check bool) "whole design not clean" false r.Modular.m_clean

let suite =
  [
    Alcotest.test_case "interface signals" `Quick test_interface_signals;
    Alcotest.test_case "clean composition" `Quick test_clean_composition;
    Alcotest.test_case "unasserted interface flagged" `Quick
      test_unasserted_interface_flagged;
    Alcotest.test_case "multiply driven flagged" `Quick test_multiply_driven_flagged;
    Alcotest.test_case "undriven interface reported" `Quick
      test_undriven_interface_reported_not_blocking;
    Alcotest.test_case "dirty section blocks" `Quick test_dirty_section_blocks;
  ]
