open Scald_core

let tb = Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25

let tv = Alcotest.testable Tvalue.pp Tvalue.equal

let parse_ok spec =
  match Assertion.parse spec with
  | Ok a -> a
  | Error e -> Alcotest.failf "parse %S failed: %s" spec e

let wf a = Assertion.to_waveform Assertion.s1_defaults tb a

(* ---- parsing the thesis's examples (§2.5.1) ----------------------------- *)

let test_clock_low_active () =
  (* "XYZ .C 4-6 L": high-to-low at 4, low-to-high at 6. *)
  let a = parse_ok "C 4-6 L" in
  Alcotest.(check bool) "low active" true a.Assertion.low_active;
  let w = wf a in
  Alcotest.check tv "low during range" Tvalue.V0 (Waveform.value_at w (Timebase.ps_of_ns 30.));
  Alcotest.check tv "high outside" Tvalue.V1 (Waveform.value_at w (Timebase.ps_of_ns 10.))

let test_clock_two_ranges () =
  (* "XYZ .C2-3,5-6": high from 2 to 3 and from 5 to 6. *)
  let a = parse_ok "C2-3,5-6" in
  let w = wf a in
  let at u = Waveform.value_at w (Timebase.ps_of_units tb u) in
  Alcotest.check tv "high 2-3" Tvalue.V1 (at 2.5);
  Alcotest.check tv "low 3-5" Tvalue.V0 (at 4.0);
  Alcotest.check tv "high 5-6" Tvalue.V1 (at 5.5);
  Alcotest.check tv "low elsewhere" Tvalue.V0 (at 1.0)

let test_single_times_one_unit () =
  (* "XYZ .C2,5" is equivalent to .C2-3,5-6: a single time is one clock
     unit wide. *)
  let a = parse_ok "C2,5" in
  let b = parse_ok "C2-3,5-6" in
  let wa = Waveform.materialize (wf a) and wb = Waveform.materialize (wf b) in
  Alcotest.(check bool) "equivalent" true (Waveform.equal wa wb)

let test_width_in_ns () =
  (* "XYZ .C2+10.0": high at clock unit 2 for 10.0 ns (does not scale
     with cycle time). *)
  let a = parse_ok "C2+10.0" in
  let w = wf a in
  let at_ps t = Waveform.value_at w t in
  Alcotest.check tv "start" Tvalue.V1 (at_ps (Timebase.ps_of_ns 13.));
  Alcotest.check tv "end inside" Tvalue.V1 (at_ps (Timebase.ps_of_ns 22.));
  Alcotest.check tv "after" Tvalue.V0 (at_ps (Timebase.ps_of_ns 23.))

let test_explicit_skew () =
  let a = parse_ok "P(-0.5,0.5)2-3" in
  Alcotest.(check (option (pair (float 1e-9) (float 1e-9))))
    "skew" (Some (-0.5, 0.5)) a.Assertion.skew_ns;
  let w = wf a in
  Alcotest.(check (pair int int)) "skew ps" (-500, 500) (Waveform.skew w)

let test_default_skews () =
  let p = wf (parse_ok "P2-3") in
  let c = wf (parse_ok "C2-3") in
  Alcotest.(check (pair int int)) "precision +-1ns" (-1000, 1000) (Waveform.skew p);
  Alcotest.(check (pair int int)) "non-precision +-5ns" (-5000, 5000) (Waveform.skew c)

let test_stable () =
  (* ".S4-8" stable from 4 to 8, changing the rest. *)
  let a = parse_ok "S4-8" in
  Alcotest.(check bool) "kind" true (a.Assertion.kind = Assertion.Stable);
  let w = wf a in
  let at u = Waveform.value_at w (Timebase.ps_of_units tb u) in
  Alcotest.check tv "stable inside" Tvalue.Stable (at 6.0);
  Alcotest.check tv "changing outside" Tvalue.Change (at 2.0);
  Alcotest.(check (pair int int)) "no skew" (0, 0) (Waveform.skew w)

let test_stable_modulo () =
  (* ".S4-9" on an 8-unit cycle: stable from 4 to 1 of the next cycle
     (§3.2). *)
  let a = parse_ok "S4-9" in
  let w = wf a in
  let at u = Waveform.value_at w (Timebase.ps_of_units tb u) in
  Alcotest.check tv "stable 4-8" Tvalue.Stable (at 6.0);
  Alcotest.check tv "stable wrap 0-1" Tvalue.Stable (at 0.5);
  Alcotest.check tv "changing 1-4" Tvalue.Change (at 2.0)

let test_roundtrip () =
  List.iter
    (fun spec ->
      let a = parse_ok spec in
      let b = parse_ok (Assertion.to_string a) in
      Alcotest.(check bool) (spec ^ " roundtrip") true (Assertion.equal a b))
    [ "P2-3 L"; "C 4-6 L"; "C2-3,5-6"; "C2,5"; "C2+10.0"; "S4-8"; "S0-6 L"; "P(-0.5,0.5)2-3" ]

let test_errors () =
  let fails spec =
    match Assertion.parse spec with
    | Ok _ -> Alcotest.failf "expected %S to fail" spec
    | Error _ -> ()
  in
  fails "";
  fails "Q2-3";
  fails "P";
  fails "P2-3 X";
  fails "S(0,1)2-3" (* skew only on clocks *);
  fails "Pabc"

let test_intervals () =
  let a = parse_ok "S4-9" in
  match Assertion.intervals tb a with
  | [ (s, e) ] ->
    Alcotest.(check int) "start" 25_000 s;
    Alcotest.(check int) "stop (unwrapped)" 56_250 e
  | l -> Alcotest.failf "expected one interval, got %d" (List.length l)

(* ---- property: parse . to_string is the identity ------------------------ *)

let gen_assertion =
  let open QCheck.Gen in
  let gen_range =
    let* kind = int_range 0 2 in
    let* a = int_range 0 15 in
    let a = float_of_int a /. 2. in
    match kind with
    | 0 -> return (Assertion.Unit_at a)
    | 1 ->
      let* b = int_range 1 8 in
      return (Assertion.Between (a, a +. (float_of_int b /. 2.)))
    | _ ->
      let* w = int_range 1 20 in
      return (Assertion.For_ns (a, float_of_int w /. 2.))
  in
  let gen =
    let* kind = oneofl [ Assertion.Precision_clock; Assertion.Nonprecision_clock; Assertion.Stable ] in
    let* n = int_range 1 3 in
    let* ranges = list_repeat n gen_range in
    let* low_active = bool in
    let* skew_ns =
      if kind = Assertion.Stable then return None
      else
        let* has = bool in
        if not has then return None
        else
          let* m = int_range 0 4 in
          let* p = int_range 0 4 in
          return (Some (-.float_of_int m /. 2., float_of_int p /. 2.))
    in
    return { Assertion.kind; skew_ns; ranges; low_active }
  in
  QCheck.make ~print:Assertion.to_string gen

let properties =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:500 ~name:"to_string/parse roundtrip" gen_assertion
         (fun a ->
           match Assertion.parse (Assertion.to_string a) with
           | Ok b -> Assertion.equal a b
           | Error _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300 ~name:"waveform widths sum to the period" gen_assertion
         (fun a ->
           let w = wf a in
           List.fold_left (fun acc (_, width) -> acc + width) 0 (Waveform.segments w)
           = Timebase.period tb));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300 ~name:"stable assertions use only S/C" gen_assertion
         (fun a ->
           match a.Assertion.kind with
           | Assertion.Stable ->
             List.for_all
               (fun (v, _) ->
                 match v with Tvalue.Stable | Tvalue.Change -> true | _ -> false)
               (Waveform.segments (wf a))
           | _ ->
             List.for_all
               (fun (v, _) -> match v with Tvalue.V0 | Tvalue.V1 -> true | _ -> false)
               (Waveform.segments (wf a))));
  ]

let suite =
  [
    Alcotest.test_case "clock low active" `Quick test_clock_low_active;
    Alcotest.test_case "clock two ranges" `Quick test_clock_two_ranges;
    Alcotest.test_case "single time = one unit" `Quick test_single_times_one_unit;
    Alcotest.test_case "width in ns" `Quick test_width_in_ns;
    Alcotest.test_case "explicit skew" `Quick test_explicit_skew;
    Alcotest.test_case "default skews" `Quick test_default_skews;
    Alcotest.test_case "stable" `Quick test_stable;
    Alcotest.test_case "stable modulo cycle" `Quick test_stable_modulo;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "intervals" `Quick test_intervals;
  ]
  @ properties
