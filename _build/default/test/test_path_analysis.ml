open Scald_core
module Circuits = Scald_cells.Circuits

let make_nl () =
  Netlist.create
    (Timebase.make ~period_ns:100.0 ~clock_unit_ns:10.0)
    ~default_wire_delay:Delay.zero

let buf delay = Primitive.Buf { invert = false; delay }

let test_single_path () =
  let nl = make_nl () in
  let a = Netlist.signal nl "A .S0-10" in
  let q = Netlist.signal nl "Q" in
  let ck = Netlist.signal nl "CK .P1-2" in
  ignore
    (Netlist.add nl (buf (Delay.of_ns 3.0 7.0)) ~inputs:[ Netlist.conn a ] ~output:(Some q));
  ignore
    (Netlist.add nl
       (Primitive.Reg { delay = Delay.of_ns 1.0 2.0; has_set_reset = false })
       ~inputs:[ Netlist.conn q; Netlist.conn ck ]
       ~output:(Some (Netlist.signal nl "R")));
  let r = Path_analysis.analyze nl in
  match
    List.find_opt (fun p -> p.Path_analysis.p_from = "A .S0-10" && p.Path_analysis.p_to = "Q")
      r.Path_analysis.r_paths
  with
  | Some p ->
    Alcotest.(check int) "min" 3_000 p.Path_analysis.p_min;
    Alcotest.(check int) "max" 7_000 p.Path_analysis.p_max
  | None -> Alcotest.fail "path A->Q not found"

let test_series_delays_add () =
  let nl = make_nl () in
  let a = Netlist.signal nl "A .S0-10" in
  let m = Netlist.signal nl "M" in
  let q = Netlist.signal nl "Q" in
  let ck = Netlist.signal nl "CK .P1-2" in
  ignore
    (Netlist.add nl (buf (Delay.of_ns 3.0 7.0)) ~inputs:[ Netlist.conn a ] ~output:(Some m));
  ignore
    (Netlist.add nl (buf (Delay.of_ns 2.0 4.0)) ~inputs:[ Netlist.conn m ] ~output:(Some q));
  ignore
    (Netlist.add nl
       (Primitive.Reg { delay = Delay.of_ns 1.0 2.0; has_set_reset = false })
       ~inputs:[ Netlist.conn q; Netlist.conn ck ]
       ~output:(Some (Netlist.signal nl "R")));
  let r = Path_analysis.analyze nl in
  match
    List.find_opt (fun p -> p.Path_analysis.p_from = "A .S0-10" && p.Path_analysis.p_to = "Q")
      r.Path_analysis.r_paths
  with
  | Some p ->
    Alcotest.(check int) "5 min" 5_000 p.Path_analysis.p_min;
    Alcotest.(check int) "11 max" 11_000 p.Path_analysis.p_max;
    Alcotest.(check int) "two hops" 2 (List.length p.Path_analysis.p_through)
  | None -> Alcotest.fail "path not found"

let test_wire_delay_counted () =
  let nl =
    Netlist.create
      (Timebase.make ~period_ns:100.0 ~clock_unit_ns:10.0)
      ~default_wire_delay:(Delay.of_ns 0.0 2.0)
  in
  let a = Netlist.signal nl "A .S0-10" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl (buf (Delay.of_ns 3.0 7.0)) ~inputs:[ Netlist.conn a ] ~output:(Some q));
  ignore
    (Netlist.add nl
       (Primitive.Setup_hold_check { setup = 0; hold = 0 })
       ~inputs:[ Netlist.conn q; Netlist.conn a ]
       ~output:None);
  let r = Path_analysis.analyze nl in
  match
    List.find_opt (fun p -> p.Path_analysis.p_to = "Q") r.Path_analysis.r_paths
  with
  | Some p -> Alcotest.(check int) "max includes wire" 9_000 p.Path_analysis.p_max
  | None -> Alcotest.fail "path not found"

let test_loop_cut () =
  (* A combinational loop hits the search limit, like GRASP's. *)
  let nl = make_nl () in
  let a = Netlist.signal nl "A .S0-10" in
  let x = Netlist.signal nl "X" in
  let y = Netlist.signal nl "Y" in
  ignore
    (Netlist.add nl
       (Primitive.Gate
          { fn = Primitive.Or; n_inputs = 2; invert = false; delay = Delay.of_ns 1.0 1.0 })
       ~inputs:[ Netlist.conn a; Netlist.conn y ]
       ~output:(Some x));
  ignore
    (Netlist.add nl (buf (Delay.of_ns 1.0 1.0)) ~inputs:[ Netlist.conn x ] ~output:(Some y));
  ignore
    (Netlist.add nl
       (Primitive.Setup_hold_check { setup = 0; hold = 0 })
       ~inputs:[ Netlist.conn x; Netlist.conn a ]
       ~output:None);
  let r = Path_analysis.analyze nl in
  Alcotest.(check bool) "loops reported" true (r.Path_analysis.r_loops_cut > 0)

let test_mux_select_extra () =
  let nl = make_nl () in
  let a = Netlist.signal nl "A .S0-10" in
  let b = Netlist.signal nl "B .S0-10" in
  let s = Netlist.signal nl "S .S0-10" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Mux2 { delay = Delay.of_ns 1.0 3.0; select_extra = Delay.of_ns 0.5 1.0 })
       ~inputs:[ Netlist.conn a; Netlist.conn b; Netlist.conn s ]
       ~output:(Some q));
  ignore
    (Netlist.add nl
       (Primitive.Setup_hold_check { setup = 0; hold = 0 })
       ~inputs:[ Netlist.conn q; Netlist.conn a ]
       ~output:None);
  let r = Path_analysis.analyze nl in
  let find src =
    List.find_opt (fun p -> p.Path_analysis.p_from = src) r.Path_analysis.r_paths
  in
  (match find "A .S0-10" with
  | Some p -> Alcotest.(check int) "data path max" 3_000 p.Path_analysis.p_max
  | None -> Alcotest.fail "data path missing");
  match find "S .S0-10" with
  | Some p -> Alcotest.(check int) "select path max" 4_000 p.Path_analysis.p_max
  | None -> Alcotest.fail "select path missing"

let test_spurious_on_bypass () =
  (* §4.1: the Figure 2-6 circuit — path analysis reports the impossible
     40 ns path; the verifier with case analysis knows it's 30 ns. *)
  let bp = Circuits.bypass_example () in
  let nl = bp.Circuits.bp_netlist in
  let r =
    Path_analysis.analyze ~sources:[ bp.Circuits.bp_input ]
      ~sinks:[ bp.Circuits.bp_output ] nl
  in
  (match Path_analysis.worst r with
  | Some p -> Alcotest.(check int) "worst = 40 ns" 40_000 p.Path_analysis.p_max
  | None -> Alcotest.fail "no path found");
  let spurious = Path_analysis.violations r ~max_delay:35_000 in
  Alcotest.(check int) "one spurious violation at a 35 ns limit" 1 (List.length spurious);
  (* the verifier with case analysis is clean at the same limit *)
  let cases =
    Case_analysis.parse_exn
      (Printf.sprintf "%s = 0;%s = 1;" bp.Circuits.bp_control bp.Circuits.bp_control)
  in
  let report = Verifier.verify ~cases nl in
  Alcotest.(check (float 0.01)) "true delay 30" 30.0 (Circuits.bypass_path_ns report bp)

let suite =
  [
    Alcotest.test_case "single path" `Quick test_single_path;
    Alcotest.test_case "series delays add" `Quick test_series_delays_add;
    Alcotest.test_case "wire delay counted" `Quick test_wire_delay_counted;
    Alcotest.test_case "loop cut" `Quick test_loop_cut;
    Alcotest.test_case "mux select extra" `Quick test_mux_select_extra;
    Alcotest.test_case "spurious on bypass" `Quick test_spurious_on_bypass;
  ]
