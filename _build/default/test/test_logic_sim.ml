(* Tests for the min/max logic-simulator baseline (§1.4.1.1). *)

let v = Alcotest.testable Logic_sim.pp_value Logic_sim.value_equal

let simple_gate kind =
  let c = Logic_sim.create () in
  let a = Logic_sim.add_net c "a" in
  let b = Logic_sim.add_net c "b" in
  let q = Logic_sim.add_net c "q" in
  Logic_sim.add_gate c kind ~dmin:10 ~dmax:10 ~inputs:[ a; b ] ~output:q;
  (c, a, b, q)

let drive c a b q va vb =
  let r =
    Logic_sim.simulate c
      ~stimuli:[ (a, [ (0, va) ]); (b, [ (0, vb) ]) ]
      ~horizon:100
  in
  r.Logic_sim.final.(q)

let test_and_table () =
  let c, a, b, q = simple_gate Logic_sim.And in
  Alcotest.check v "1 and 1" Logic_sim.L1 (drive c a b q Logic_sim.L1 Logic_sim.L1);
  Alcotest.check v "1 and 0" Logic_sim.L0 (drive c a b q Logic_sim.L1 Logic_sim.L0);
  Alcotest.check v "0 and X" Logic_sim.L0 (drive c a b q Logic_sim.L0 Logic_sim.LX);
  Alcotest.check v "1 and X" Logic_sim.LX (drive c a b q Logic_sim.L1 Logic_sim.LX)

let test_xor_table () =
  let c, a, b, q = simple_gate Logic_sim.Xor in
  Alcotest.check v "1 xor 1" Logic_sim.L0 (drive c a b q Logic_sim.L1 Logic_sim.L1);
  Alcotest.check v "1 xor 0" Logic_sim.L1 (drive c a b q Logic_sim.L1 Logic_sim.L0);
  Alcotest.check v "X xor 1" Logic_sim.LX (drive c a b q Logic_sim.LX Logic_sim.L1)

let test_nor_not () =
  let c, a, b, q = simple_gate Logic_sim.Nor in
  Alcotest.check v "0 nor 0" Logic_sim.L1 (drive c a b q Logic_sim.L0 Logic_sim.L0);
  let c2 = Logic_sim.create () in
  let x = Logic_sim.add_net c2 "x" and y = Logic_sim.add_net c2 "y" in
  Logic_sim.add_gate c2 Logic_sim.Not ~dmin:5 ~dmax:5 ~inputs:[ x ] ~output:y;
  let r = Logic_sim.simulate c2 ~stimuli:[ (x, [ (0, Logic_sim.L0) ]) ] ~horizon:50 in
  Alcotest.check v "not 0" Logic_sim.L1 r.Logic_sim.final.(y)

let test_transitional_values () =
  (* A gate with dmin<dmax shows U (rising) between the two. *)
  let c = Logic_sim.create () in
  let a = Logic_sim.add_net c "a" in
  let q = Logic_sim.add_net c "q" in
  Logic_sim.add_gate c Logic_sim.Buf ~dmin:10 ~dmax:20 ~inputs:[ a ] ~output:q;
  let r =
    Logic_sim.simulate c
      ~stimuli:[ (a, [ (0, Logic_sim.L0); (100, Logic_sim.L1) ]) ]
      ~horizon:200
  in
  (* trace on q: X->0 (at 20), 0->U (at 110), U->1 (at 120) *)
  let trace = r.Logic_sim.traces.(q) in
  Alcotest.(check bool) "rising marker present" true
    (List.exists (fun (_, x) -> Logic_sim.value_equal x Logic_sim.LU) trace);
  Alcotest.check v "final one" Logic_sim.L1 r.Logic_sim.final.(q)

let test_spike_marker () =
  (* Two changes in flight: the output may spike (E). *)
  let c = Logic_sim.create () in
  let a = Logic_sim.add_net c "a" in
  let q = Logic_sim.add_net c "q" in
  Logic_sim.add_gate c Logic_sim.Buf ~dmin:10 ~dmax:30 ~inputs:[ a ] ~output:q;
  let r =
    Logic_sim.simulate c
      ~stimuli:[ (a, [ (0, Logic_sim.L0); (100, Logic_sim.L1); (105, Logic_sim.L0) ]) ]
      ~horizon:300
  in
  Alcotest.(check bool) "potential spike flagged" true
    (List.exists (fun (_, x) -> Logic_sim.value_equal x Logic_sim.LE) r.Logic_sim.traces.(q))

let test_fig_1_5_runt_pulse () =
  (* The thesis's Figure 1-5, concretely: a 5 ns runt on the gated
     clock. *)
  let c = Logic_sim.create () in
  let clock = Logic_sim.add_net c "CLOCK" in
  let enable = Logic_sim.add_net c "ENABLE" in
  let q = Logic_sim.add_net c "REG CLOCK" in
  Logic_sim.add_gate c Logic_sim.And ~dmin:0 ~dmax:0 ~inputs:[ clock; enable ] ~output:q;
  let r =
    Logic_sim.simulate c
      ~stimuli:
        [
          (clock, [ (0, Logic_sim.L0); (200, Logic_sim.L1); (300, Logic_sim.L0) ]);
          (enable, [ (0, Logic_sim.L1); (250, Logic_sim.L0) ]);
        ]
      ~horizon:500
  in
  (match Logic_sim.pulses r.Logic_sim.traces.(q) ~at_least:Logic_sim.L1 with
  | [ (start, width) ] ->
    Alcotest.(check int) "starts at 20 ns" 200 start;
    Alcotest.(check int) "5 ns wide" 50 width
  | l -> Alcotest.failf "expected one pulse, got %d" (List.length l));
  Alcotest.(check int) "one runt below 6 ns" 1
    (Logic_sim.min_pulse_violations r.Logic_sim.traces.(q) ~level:Logic_sim.L1
       ~min_width:60 ~horizon:500)

let test_stimulus_on_driven_net_rejected () =
  let c, a, _, q = simple_gate Logic_sim.And in
  ignore a;
  match Logic_sim.simulate c ~stimuli:[ (q, [ (0, Logic_sim.L1) ]) ] ~horizon:10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "driving a gate output should be rejected"

let test_exhaustive_small () =
  (* 2-input AND: 4 Gray-coded vectors. *)
  let c, a, b, q = simple_gate Logic_sim.And in
  let ex = Logic_sim.verify_exhaustive c ~inputs:[ a; b ] ~outputs:[ q ] ~settle:100 in
  Alcotest.(check int) "4 vectors" 4 ex.Logic_sim.vectors_simulated;
  Alcotest.(check bool) "events happened" true (ex.Logic_sim.total_events > 0);
  Alcotest.(check bool) "settles within the gate delay" true
    (ex.Logic_sim.settle_max >= 10 && ex.Logic_sim.settle_max <= 20)

let test_exhaustive_grows_exponentially () =
  let cone n =
    let c = Logic_sim.create () in
    let ins = List.init n (fun i -> Logic_sim.add_net c (Printf.sprintf "i%d" i)) in
    let rec reduce = function
      | [ x ] -> x
      | x :: y :: rest ->
        let q = Logic_sim.add_net c "t" in
        Logic_sim.add_gate c Logic_sim.Xor ~dmin:5 ~dmax:10 ~inputs:[ x; y ] ~output:q;
        reduce (rest @ [ q ])
      | [] -> assert false
    in
    let out = reduce ins in
    (c, ins, out)
  in
  let cost n =
    let c, ins, out = cone n in
    (Logic_sim.verify_exhaustive c ~inputs:ins ~outputs:[ out ] ~settle:100)
      .Logic_sim.vectors_simulated
  in
  Alcotest.(check int) "2^4" 16 (cost 4);
  Alcotest.(check int) "2^8" 256 (cost 8)

(* Cross-validation: the Timing Verifier's worst-case settle time bounds
   what the logic simulator observes on any vector. *)
let test_tv_bounds_simulation () =
  let open Scald_core in
  (* chain of 3 xors, both worlds *)
  let c = Logic_sim.create () in
  let i0 = Logic_sim.add_net c "i0" and i1 = Logic_sim.add_net c "i1" in
  let i2 = Logic_sim.add_net c "i2" and i3 = Logic_sim.add_net c "i3" in
  let t0 = Logic_sim.add_net c "t0" and t1 = Logic_sim.add_net c "t1" in
  let out = Logic_sim.add_net c "out" in
  Logic_sim.add_gate c Logic_sim.Xor ~dmin:10 ~dmax:20 ~inputs:[ i0; i1 ] ~output:t0;
  Logic_sim.add_gate c Logic_sim.Xor ~dmin:10 ~dmax:20 ~inputs:[ i2; i3 ] ~output:t1;
  Logic_sim.add_gate c Logic_sim.Xor ~dmin:10 ~dmax:20 ~inputs:[ t0; t1 ] ~output:out;
  let ex =
    Logic_sim.verify_exhaustive c ~inputs:[ i0; i1; i2; i3 ] ~outputs:[ out ] ~settle:200
  in
  (* TV: same cone, inputs changing at time 0 *)
  let tb = Timebase.make ~period_ns:100.0 ~clock_unit_ns:10.0 in
  let nl = Netlist.create tb ~default_wire_delay:Delay.zero in
  let inp i = Netlist.signal nl (Printf.sprintf "i%d .S1-9" i) in
  let a = inp 0 and b = inp 1 and c2 = inp 2 and d = inp 3 in
  let xor2 x y out_name =
    let q = Netlist.signal nl out_name in
    ignore
      (Netlist.add nl
         (Primitive.Gate
            { fn = Primitive.Xor; n_inputs = 2; invert = false; delay = Delay.of_ns 1.0 2.0 })
         ~inputs:[ Netlist.conn x; Netlist.conn y ]
         ~output:(Some q));
    q
  in
  let u = xor2 a b "t0" in
  let w = xor2 c2 d "t1" in
  let o = xor2 u w "out" in
  let ev = Eval.create nl in
  Eval.run ev;
  (* TV: out changing ends at 10 (input change end) + 2 levels * 2 ns *)
  let wf = Eval.value ev o in
  let change_end =
    Waveform.intervals_where (fun v -> not (Tvalue.is_stable v)) wf
    |> List.fold_left (fun acc (s, w2) -> max acc (s + w2)) 0
  in
  let tv_settle_ns = Timebase.ns_of_ps change_end -. 10. in
  let sim_settle_ns = float_of_int ex.Logic_sim.settle_max /. 10. in
  Alcotest.(check bool)
    (Printf.sprintf "tv bound %.1f >= sim %.1f" tv_settle_ns sim_settle_ns)
    true
    (tv_settle_ns +. 1e-6 >= sim_settle_ns)

let test_register_element () =
  let c = Logic_sim.create () in
  let d = Logic_sim.add_net c "d" in
  let ck = Logic_sim.add_net c "ck" in
  let q = Logic_sim.add_net c "q" in
  Logic_sim.add_register c ~dmin:10 ~dmax:10 ~data:d ~clock:ck ~output:q ();
  let r =
    Logic_sim.simulate c
      ~stimuli:
        [
          (d, [ (0, Logic_sim.L1); (150, Logic_sim.L0) ]);
          (ck, [ (0, Logic_sim.L0); (100, Logic_sim.L1); (200, Logic_sim.L0);
                 (300, Logic_sim.L1) ]);
        ]
      ~horizon:400
  in
  (* first edge at 100 samples 1; second edge at 300 samples 0 *)
  let at t =
    List.fold_left (fun acc (tt, v) -> if tt <= t then v else acc) Logic_sim.LX
      r.Logic_sim.traces.(q)
  in
  Alcotest.check v "after first edge" Logic_sim.L1 (at 150);
  Alcotest.check v "after second edge" Logic_sim.L0 (at 350)

let test_register_holds_between_edges () =
  let c = Logic_sim.create () in
  let d = Logic_sim.add_net c "d" in
  let ck = Logic_sim.add_net c "ck" in
  let q = Logic_sim.add_net c "q" in
  Logic_sim.add_register c ~dmin:5 ~dmax:5 ~data:d ~clock:ck ~output:q ();
  let r =
    Logic_sim.simulate c
      ~stimuli:
        [
          (d, [ (0, Logic_sim.L1); (120, Logic_sim.L0); (140, Logic_sim.L1) ]);
          (ck, [ (0, Logic_sim.L0); (100, Logic_sim.L1) ]);
        ]
      ~horizon:300
  in
  (* data wiggles after the edge: the output must not follow *)
  Alcotest.check v "held" Logic_sim.L1 r.Logic_sim.final.(q);
  Alcotest.(check int) "only one output change" 1 (List.length r.Logic_sim.traces.(q))

let test_register_x_clock () =
  let c = Logic_sim.create () in
  let d = Logic_sim.add_net c "d" in
  let ck = Logic_sim.add_net c "ck" in
  let q = Logic_sim.add_net c "q" in
  Logic_sim.add_register c ~dmin:5 ~dmax:5 ~data:d ~clock:ck ~output:q ();
  let r =
    Logic_sim.simulate c
      ~stimuli:
        [ (d, [ (0, Logic_sim.L1) ]); (ck, [ (0, Logic_sim.L0); (100, Logic_sim.LX) ]) ]
      ~horizon:200
  in
  Alcotest.check v "uncertain clocking -> X" Logic_sim.LX r.Logic_sim.final.(q)

let test_latch_element () =
  let c = Logic_sim.create () in
  let d = Logic_sim.add_net c "d" in
  let e = Logic_sim.add_net c "e" in
  let q = Logic_sim.add_net c "q" in
  Logic_sim.add_latch c ~dmin:5 ~dmax:5 ~data:d ~enable:e ~output:q ();
  let r =
    Logic_sim.simulate c
      ~stimuli:
        [
          (d, [ (0, Logic_sim.L0); (120, Logic_sim.L1); (250, Logic_sim.L0) ]);
          (e, [ (0, Logic_sim.L1); (200, Logic_sim.L0) ]);
        ]
      ~horizon:400
  in
  let at t =
    List.fold_left (fun acc (tt, v) -> if tt <= t then v else acc) Logic_sim.LX
      r.Logic_sim.traces.(q)
  in
  (* transparent: follows d while e=1 *)
  Alcotest.check v "follows while open" Logic_sim.L1 (at 150);
  (* closed at 200 with d=1 captured; d's later fall must not pass *)
  Alcotest.check v "holds after close" Logic_sim.L1 (at 300)

let suite =
  [
    Alcotest.test_case "and table" `Quick test_and_table;
    Alcotest.test_case "xor table" `Quick test_xor_table;
    Alcotest.test_case "nor / not" `Quick test_nor_not;
    Alcotest.test_case "transitional values" `Quick test_transitional_values;
    Alcotest.test_case "spike marker" `Quick test_spike_marker;
    Alcotest.test_case "fig 1-5 runt pulse" `Quick test_fig_1_5_runt_pulse;
    Alcotest.test_case "stimulus on driven net rejected" `Quick
      test_stimulus_on_driven_net_rejected;
    Alcotest.test_case "exhaustive small" `Quick test_exhaustive_small;
    Alcotest.test_case "exhaustive exponential" `Quick test_exhaustive_grows_exponentially;
    Alcotest.test_case "tv bounds simulation" `Quick test_tv_bounds_simulation;
    Alcotest.test_case "register element" `Quick test_register_element;
    Alcotest.test_case "register holds between edges" `Quick
      test_register_holds_between_edges;
    Alcotest.test_case "register x clock" `Quick test_register_x_clock;
    Alcotest.test_case "latch element" `Quick test_latch_element;
  ]
