open Scald_core

let ps = Timebase.ps_of_ns
let period = ps 50.0

let pulse ?(skew = 0.) ~from_ns ~to_ns () =
  let w =
    Waveform.of_intervals ~period ~inside:Tvalue.V1 ~outside:Tvalue.V0
      [ (ps from_ns, ps to_ns) ]
  in
  if skew = 0. then w else Waveform.with_skew ~early:(-(ps skew)) ~late:(ps skew) w

let stable ~from_ns ~to_ns =
  Waveform.of_intervals ~period ~inside:Tvalue.Stable ~outside:Tvalue.Change
    [ (ps from_ns, ps to_ns) ]

let kinds vs = List.map (fun (v : Check.t) -> v.Check.v_kind) vs

let kind = Alcotest.testable (Fmt.of_to_string Check.kind_name) ( = )

(* ---- setup / hold -------------------------------------------------------------- *)

let test_setup_hold_clean () =
  let vs =
    Check.check_setup_hold ~inst:"R" ~signal:"D" ~clock:"CK" ~setup:(ps 2.5)
      ~hold:(ps 1.5)
      ~data:(stable ~from_ns:10. ~to_ns:40.)
      ~ck:(pulse ~from_ns:20. ~to_ns:30. ())
  in
  Alcotest.(check (list kind)) "clean" [] (kinds vs)

let test_setup_violated () =
  (* data stable only from 19: clock rises at 20, setup 2.5 -> margin 1.0 *)
  let vs =
    Check.check_setup_hold ~inst:"R" ~signal:"D" ~clock:"CK" ~setup:(ps 2.5)
      ~hold:(ps 1.5)
      ~data:(stable ~from_ns:19. ~to_ns:40.)
      ~ck:(pulse ~from_ns:20. ~to_ns:30. ())
  in
  match vs with
  | [ v ] ->
    Alcotest.check kind "setup" Check.Setup_violation v.Check.v_kind;
    Alcotest.(check (option int)) "margin 1.0 ns" (Some (ps 1.0)) v.Check.v_actual;
    Alcotest.(check (option int)) "at the edge" (Some (ps 20.)) v.Check.v_at
  | _ -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let test_hold_violated () =
  (* data stops being stable at 21: hold needs 1.5 after the 20 edge *)
  let vs =
    Check.check_setup_hold ~inst:"R" ~signal:"D" ~clock:"CK" ~setup:(ps 2.5)
      ~hold:(ps 1.5)
      ~data:(stable ~from_ns:10. ~to_ns:21.)
      ~ck:(pulse ~from_ns:20. ~to_ns:30. ())
  in
  match vs with
  | [ v ] ->
    Alcotest.check kind "hold" Check.Hold_violation v.Check.v_kind;
    Alcotest.(check (option int)) "margin 1.0 ns" (Some (ps 1.0)) v.Check.v_actual
  | _ -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let test_both_violated_when_changing_at_edge () =
  let vs =
    Check.check_setup_hold ~inst:"R" ~signal:"D" ~clock:"CK" ~setup:(ps 2.5)
      ~hold:(ps 1.5)
      ~data:(stable ~from_ns:30. ~to_ns:45.)
      ~ck:(pulse ~from_ns:20. ~to_ns:30. ())
  in
  Alcotest.(check (list kind)) "both"
    [ Check.Setup_violation; Check.Hold_violation ]
    (kinds vs)

let test_clock_skew_widens_window () =
  (* with +-2 ns skew the edge window is [18, 22]: stable-from-19 data
     now also fails during the window *)
  let vs =
    Check.check_setup_hold ~inst:"R" ~signal:"D" ~clock:"CK" ~setup:(ps 2.5)
      ~hold:(ps 1.5)
      ~data:(stable ~from_ns:19. ~to_ns:40.)
      ~ck:(pulse ~skew:2. ~from_ns:20. ~to_ns:30. ())
  in
  Alcotest.(check bool) "setup violated" true
    (List.mem Check.Setup_violation (kinds vs))

let test_negative_hold () =
  (* a -1.0 ns hold (as on the 10145A data inputs) narrows the window *)
  let vs =
    Check.check_setup_hold ~inst:"R" ~signal:"D" ~clock:"CK" ~setup:(ps 4.5)
      ~hold:(ps (-1.0))
      ~data:(stable ~from_ns:10. ~to_ns:19.5)
      ~ck:(pulse ~from_ns:20. ~to_ns:30. ())
  in
  (* data unstable at 19.5 < 20, but hold window ends at 19: the hold
     check passes; setup fails (needs stable 15.5..20). *)
  Alcotest.(check (list kind)) "setup only" [ Check.Setup_violation ] (kinds vs)

let test_two_edges_checked () =
  let ck =
    Waveform.of_intervals ~period ~inside:Tvalue.V1 ~outside:Tvalue.V0
      [ (ps 10., ps 15.); (ps 30., ps 35.) ]
  in
  let vs =
    Check.check_setup_hold ~inst:"R" ~signal:"D" ~clock:"CK" ~setup:(ps 2.)
      ~hold:(ps 2.)
      ~data:(stable ~from_ns:5. ~to_ns:20.)
      ~ck
  in
  (* the 30 ns edge sees changing data: setup and hold both fail there *)
  Alcotest.(check int) "two violations" 2 (List.length vs)

let test_undefined_clock () =
  let vs =
    Check.check_setup_hold ~inst:"R" ~signal:"D" ~clock:"CK" ~setup:(ps 2.)
      ~hold:(ps 2.)
      ~data:(stable ~from_ns:5. ~to_ns:20.)
      ~ck:(Waveform.const ~period Tvalue.Unknown)
  in
  Alcotest.(check (list kind)) "undefined clock" [ Check.Undefined_clock ] (kinds vs)

(* ---- setup rise / hold fall ------------------------------------------------------- *)

let test_rise_fall_clean () =
  let vs =
    Check.check_setup_rise_hold_fall ~inst:"M" ~signal:"A" ~clock:"WE" ~setup:(ps 3.5)
      ~hold:(ps 1.0)
      ~data:(stable ~from_ns:15. ~to_ns:35.)
      ~ck:(pulse ~from_ns:20. ~to_ns:30. ())
  in
  Alcotest.(check (list kind)) "clean" [] (kinds vs)

let test_rise_fall_stable_while_high () =
  (* data glitches while the write pulse is high *)
  let data =
    Waveform.of_intervals ~period ~inside:Tvalue.Change ~outside:Tvalue.Stable
      [ (ps 24., ps 26.) ]
  in
  let vs =
    Check.check_setup_rise_hold_fall ~inst:"M" ~signal:"A" ~clock:"WE" ~setup:(ps 3.5)
      ~hold:(ps 1.0) ~data
      ~ck:(pulse ~from_ns:20. ~to_ns:30. ())
  in
  Alcotest.(check bool) "stable-while-true violated" true
    (List.mem Check.Stable_high_violation (kinds vs))

let test_rise_fall_hold_after_fall () =
  (* data changes 0.5 ns after the falling edge: hold is 1.0 ns *)
  let vs =
    Check.check_setup_rise_hold_fall ~inst:"M" ~signal:"A" ~clock:"WE" ~setup:(ps 3.5)
      ~hold:(ps 1.0)
      ~data:(stable ~from_ns:15. ~to_ns:30.5)
      ~ck:(pulse ~from_ns:20. ~to_ns:30. ())
  in
  Alcotest.(check (list kind)) "hold after fall" [ Check.Hold_violation ] (kinds vs)

(* ---- minimum pulse width ------------------------------------------------------------ *)

let test_min_pulse_ok () =
  let vs =
    Check.check_min_pulse_width ~inst:"P" ~signal:"WE" ~high:(ps 4.) ~low:(ps 3.)
      (pulse ~from_ns:20. ~to_ns:30. ())
  in
  Alcotest.(check (list kind)) "clean" [] (kinds vs)

let test_min_pulse_high_violated () =
  let vs =
    Check.check_min_pulse_width ~inst:"P" ~signal:"WE" ~high:(ps 4.) ~low:0
      (pulse ~from_ns:20. ~to_ns:23. ())
  in
  match vs with
  | [ v ] ->
    Alcotest.check kind "high width" Check.Min_high_width v.Check.v_kind;
    Alcotest.(check (option int)) "actual 3 ns" (Some (ps 3.)) v.Check.v_actual
  | _ -> Alcotest.fail "expected one violation"

let test_min_pulse_low_violated () =
  (* low from 30 to 32 between two pulses *)
  let w =
    Waveform.of_intervals ~period ~inside:Tvalue.V1 ~outside:Tvalue.V0
      [ (ps 20., ps 30.); (ps 32., ps 40.) ]
  in
  let vs = Check.check_min_pulse_width ~inst:"P" ~signal:"WE" ~high:0 ~low:(ps 3.) w in
  Alcotest.(check (list kind)) "low runt" [ Check.Min_low_width ] (kinds vs)

let test_min_pulse_skew_separate () =
  (* §2.8: a common skew does not narrow the pulse *)
  let w = pulse ~skew:2. ~from_ns:20. ~to_ns:25. () in
  let vs = Check.check_min_pulse_width ~inst:"P" ~signal:"WE" ~high:(ps 4.5) ~low:0 w in
  Alcotest.(check (list kind)) "no false error" [] (kinds vs);
  let folded = Waveform.materialize w in
  let vs2 =
    Check.check_min_pulse_width ~inst:"P" ~signal:"WE" ~high:(ps 4.5) ~low:0 folded
  in
  Alcotest.(check (list kind)) "folded is pessimistic" [ Check.Min_high_width ] (kinds vs2)

(* ---- hazards -------------------------------------------------------------------------- *)

let test_hazard () =
  let clock = pulse ~from_ns:20. ~to_ns:30. () in
  let changing_ctl = stable ~from_ns:25. ~to_ns:10. in
  let vs =
    Check.check_stable_while ~inst:"G" ~signal:"ENABLE" ~clock:"CLOCK" ~gate_wf:clock
      changing_ctl
  in
  Alcotest.(check (list kind)) "hazard" [ Check.Hazard ] (kinds vs);
  let stable_ctl = stable ~from_ns:15. ~to_ns:35. in
  let vs2 =
    Check.check_stable_while ~inst:"G" ~signal:"ENABLE" ~clock:"CLOCK" ~gate_wf:clock
      stable_ctl
  in
  Alcotest.(check (list kind)) "no hazard" [] (kinds vs2)

(* ---- stable assertions ------------------------------------------------------------------ *)

let test_stable_assertion () =
  let tb = Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25 in
  let a =
    match Assertion.parse "S2-6" with Ok a -> a | Error e -> Alcotest.fail e
  in
  (* computed waveform stable 12.5..37.5 exactly meets the assertion *)
  let good = stable ~from_ns:12.5 ~to_ns:37.5 in
  Alcotest.(check (list kind)) "meets assertion" []
    (kinds (Check.check_stable_assertion ~signal:"X" ~tb a good));
  let bad = stable ~from_ns:20. ~to_ns:37.5 in
  Alcotest.(check (list kind)) "violates assertion" [ Check.Stable_assertion_violation ]
    (kinds (Check.check_stable_assertion ~signal:"X" ~tb a bad))

let test_clock_assertion_not_checked () =
  let tb = Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25 in
  let a = match Assertion.parse "P2-3" with Ok a -> a | Error e -> Alcotest.fail e in
  Alcotest.(check (list kind)) "clocks skip the stability check" []
    (kinds
       (Check.check_stable_assertion ~signal:"X" ~tb a (Waveform.const ~period Tvalue.Change)))

let suite =
  [
    Alcotest.test_case "setup/hold clean" `Quick test_setup_hold_clean;
    Alcotest.test_case "setup violated with margin" `Quick test_setup_violated;
    Alcotest.test_case "hold violated with margin" `Quick test_hold_violated;
    Alcotest.test_case "both when changing at edge" `Quick test_both_violated_when_changing_at_edge;
    Alcotest.test_case "clock skew widens window" `Quick test_clock_skew_widens_window;
    Alcotest.test_case "negative hold" `Quick test_negative_hold;
    Alcotest.test_case "two edges checked" `Quick test_two_edges_checked;
    Alcotest.test_case "undefined clock" `Quick test_undefined_clock;
    Alcotest.test_case "rise/fall clean" `Quick test_rise_fall_clean;
    Alcotest.test_case "rise/fall stable while high" `Quick test_rise_fall_stable_while_high;
    Alcotest.test_case "rise/fall hold after fall" `Quick test_rise_fall_hold_after_fall;
    Alcotest.test_case "min pulse ok" `Quick test_min_pulse_ok;
    Alcotest.test_case "min pulse high violated" `Quick test_min_pulse_high_violated;
    Alcotest.test_case "min pulse low violated" `Quick test_min_pulse_low_violated;
    Alcotest.test_case "min pulse skew separate" `Quick test_min_pulse_skew_separate;
    Alcotest.test_case "hazard" `Quick test_hazard;
    Alcotest.test_case "stable assertion" `Quick test_stable_assertion;
    Alcotest.test_case "clock assertion not checked" `Quick test_clock_assertion_not_checked;
  ]
