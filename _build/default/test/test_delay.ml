open Scald_core

let test_make () =
  let d = Delay.of_ns 1.0 3.8 in
  Alcotest.(check int) "dmin" 1000 d.Delay.dmin;
  Alcotest.(check int) "dmax" 3800 d.Delay.dmax;
  Alcotest.(check int) "spread" 2800 (Delay.spread d)

let test_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Delay.make: need 0 <= dmin <= dmax")
    (fun () -> ignore (Delay.make (-1) 0));
  Alcotest.check_raises "inverted" (Invalid_argument "Delay.make: need 0 <= dmin <= dmax")
    (fun () -> ignore (Delay.make 5 3))

let test_add () =
  let d = Delay.add (Delay.of_ns 1.0 2.0) (Delay.of_ns 0.5 1.5) in
  Alcotest.(check bool) "series" true (Delay.equal d (Delay.of_ns 1.5 3.5))

let test_zero () =
  Alcotest.(check bool) "zero" true (Delay.equal Delay.zero (Delay.make 0 0));
  Alcotest.(check int) "zero spread" 0 (Delay.spread Delay.zero)

let test_pp () =
  Alcotest.(check string) "format" "1.0/3.8" (Format.asprintf "%a" Delay.pp (Delay.of_ns 1.0 3.8))

let suite =
  [
    Alcotest.test_case "make" `Quick test_make;
    Alcotest.test_case "invalid" `Quick test_invalid;
    Alcotest.test_case "add" `Quick test_add;
    Alcotest.test_case "zero" `Quick test_zero;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
