(* Golden-output regression: the full rendered verification of the
   thesis's Figure 2-5 example, compared against a committed snapshot.
   Any change to waveform semantics, checker margins, listing formats or
   slack computation shows up here as a diff. *)

open Scald_core

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Chip-internal net names carry a process-global uniquifier ("$7");
   normalize it so the snapshot does not depend on how many cells other
   tests created first. *)
let normalize s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Buffer.contents buf
    else if s.[i] = '$' then begin
      Buffer.add_string buf "$N";
      let rec skip j = if j < n && s.[j] >= '0' && s.[j] <= '9' then skip (j + 1) else j in
      go (skip (i + 1))
    end
    else if s.[i] = ' ' then begin
      (* column padding depends on the uniquifier's digit count:
         collapse space runs *)
      Buffer.add_char buf ' ';
      let rec skip j = if j < n && s.[j] = ' ' then skip (j + 1) else j in
      go (skip i)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let render () =
  let c = Scald_cells.Circuits.register_file_example () in
  let report = Verifier.verify c.Scald_cells.Circuits.rf_netlist in
  let ev = report.Verifier.r_eval in
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "%a@.@.%a@." Report.pp_summary ev Report.pp_violations
    report.Verifier.r_violations;
  List.iter
    (fun v -> Format.fprintf ppf "@.%a@." (fun ppf -> Report.pp_violation_with_values ppf ev) v)
    report.Verifier.r_violations;
  Format.fprintf ppf "@.%a@." Report.pp_cross_reference (Eval.netlist ev);
  Format.fprintf ppf "@.%a@." Slack.pp (Slack.compute ev);
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_register_file_snapshot () =
  let golden = normalize (read_file "golden/register_file.txt") in
  let actual = normalize (render ()) in
  if golden <> actual then begin
    (* print a first-difference hint before failing *)
    let n = min (String.length golden) (String.length actual) in
    let rec first_diff i = if i < n && golden.[i] = actual.[i] then first_diff (i + 1) else i in
    let i = first_diff 0 in
    let ctx s =
      String.sub s (max 0 (i - 60)) (min 120 (String.length s - max 0 (i - 60)))
    in
    Alcotest.failf "golden mismatch at byte %d:\n--- golden ---\n%s\n--- actual ---\n%s" i
      (ctx golden) (ctx actual)
  end

let suite =
  [ Alcotest.test_case "register-file report snapshot" `Quick test_register_file_snapshot ]
