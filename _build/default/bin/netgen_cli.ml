(* Synthetic-design generator CLI: emits a netgen design (§3.3.2 shape)
   as SCALD HDL, for feeding scald_tv or external experiments. *)

let () =
  let chips = ref 1000 in
  let seed = ref 1 in
  let broken = ref 0 in
  let out = ref "" in
  let spec =
    [
      ("--chips", Arg.Set_int chips, "target chip count (default 1000)");
      ("--seed", Arg.Set_int seed, "PRNG seed (default 1)");
      ("--broken", Arg.Set_int broken, "registers with injected set-up violations");
      ("-o", Arg.Set_string out, "output file (default stdout)");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "netgen_cli [--chips N] [--seed N] [--broken N] [-o FILE]";
  let d =
    Netgen.generate
      (Netgen.scaled ~seed:!seed ~broken_registers:!broken ~chips:!chips ())
  in
  let sdl = Netgen.to_sdl d in
  if !out = "" then print_string sdl
  else begin
    let oc = open_out !out in
    output_string oc sdl;
    close_out oc;
    Printf.eprintf "wrote %d chips (%d bytes) to %s\n" (Netgen.n_chips d)
      (String.length sdl) !out
  end
