type gate_fn = And | Or | Xor | Chg

type t =
  | Gate of { fn : gate_fn; n_inputs : int; invert : bool; delay : Delay.t }
  | Buf of { invert : bool; delay : Delay.t }
  | Mux2 of { delay : Delay.t; select_extra : Delay.t }
  | Reg of { delay : Delay.t; has_set_reset : bool }
  | Latch of { delay : Delay.t; has_set_reset : bool }
  | Setup_hold_check of { setup : Timebase.ps; hold : Timebase.ps }
  | Setup_rise_hold_fall_check of { setup : Timebase.ps; hold : Timebase.ps }
  | Min_pulse_width of { high : Timebase.ps; low : Timebase.ps }
  | Const of Tvalue.t

let n_inputs = function
  | Gate { n_inputs; _ } -> n_inputs
  | Buf _ -> 1
  | Mux2 _ -> 3
  | Reg { has_set_reset; _ } | Latch { has_set_reset; _ } -> if has_set_reset then 4 else 2
  | Setup_hold_check _ | Setup_rise_hold_fall_check _ -> 2
  | Min_pulse_width _ -> 1
  | Const _ -> 0

let has_output = function
  | Gate _ | Buf _ | Mux2 _ | Reg _ | Latch _ | Const _ -> true
  | Setup_hold_check _ | Setup_rise_hold_fall_check _ | Min_pulse_width _ -> false

let is_checker p = not (has_output p)

let input_label p i =
  match p, i with
  | Gate _, _ -> Printf.sprintf "I%d" i
  | Buf _, _ -> "I"
  | Mux2 _, 0 -> "A"
  | Mux2 _, 1 -> "B"
  | Mux2 _, _ -> "S"
  | (Reg _ | Latch _), 0 -> "DATA"
  | Reg _, 1 -> "CLOCK"
  | Latch _, 1 -> "ENABLE"
  | (Reg _ | Latch _), 2 -> "SET"
  | (Reg _ | Latch _), _ -> "RESET"
  | (Setup_hold_check _ | Setup_rise_hold_fall_check _), 0 -> "I"
  | (Setup_hold_check _ | Setup_rise_hold_fall_check _), _ -> "CK"
  | Min_pulse_width _, _ -> "I"
  | Const _, _ -> "?"

let gate_name = function And -> "AND" | Or -> "OR" | Xor -> "XOR" | Chg -> "CHG"

let mnemonic = function
  | Gate { fn; n_inputs; invert; _ } ->
    Printf.sprintf "%d %s%s" n_inputs (if invert then "N" else "") (gate_name fn)
  | Buf { invert = false; _ } -> "BUF"
  | Buf { invert = true; _ } -> "NOT"
  | Mux2 _ -> "2 MUX"
  | Reg { has_set_reset = false; _ } -> "REG"
  | Reg { has_set_reset = true; _ } -> "REG RS"
  | Latch { has_set_reset = false; _ } -> "LATCH"
  | Latch { has_set_reset = true; _ } -> "LATCH RS"
  | Setup_hold_check _ -> "SETUP HOLD CHK"
  | Setup_rise_hold_fall_check _ -> "SETUP RISE HOLD FALL CHK"
  | Min_pulse_width _ -> "MIN PULSE WIDTH"
  | Const v -> (match v with Tvalue.V0 -> "ZERO" | Tvalue.V1 -> "ONE" | _ -> "CONST")

let pp ppf p = Format.pp_print_string ppf (mnemonic p)
