type kind =
  | Setup_violation
  | Hold_violation
  | Stable_high_violation
  | Min_high_width
  | Min_low_width
  | Hazard
  | Stable_assertion_violation
  | Undefined_clock
  | Reflection_hazard
  | No_convergence

type t = {
  v_kind : kind;
  v_inst : string;
  v_signal : string;
  v_clock : string option;
  v_required : Timebase.ps;
  v_actual : Timebase.ps option;
  v_at : Timebase.ps option;
  v_detail : string;
}

let kind_name = function
  | Setup_violation -> "SETUP TIME VIOLATED"
  | Hold_violation -> "HOLD TIME VIOLATED"
  | Stable_high_violation -> "INPUT CHANGING WHILE CLOCK TRUE"
  | Min_high_width -> "MINIMUM HIGH PULSE WIDTH VIOLATED"
  | Min_low_width -> "MINIMUM LOW PULSE WIDTH VIOLATED"
  | Hazard -> "POSSIBLE HAZARD ON GATED CLOCK"
  | Stable_assertion_violation -> "STABLE ASSERTION VIOLATED"
  | Undefined_clock -> "CLOCK INPUT UNDEFINED"
  | Reflection_hazard -> "POSSIBLE REFLECTIONS ON EDGE-SENSITIVE RUN"
  | No_convergence -> "EVALUATION DID NOT CONVERGE"

let pp ppf v =
  Format.fprintf ppf "%s: %s" v.v_inst (kind_name v.v_kind);
  Format.fprintf ppf "  SIGNAL = %s" v.v_signal;
  (match v.v_clock with None -> () | Some c -> Format.fprintf ppf "  CLOCK = %s" c);
  Format.fprintf ppf "  REQUIRED = %a NS" Timebase.pp_ns v.v_required;
  (match v.v_actual with
  | None -> ()
  | Some a ->
    Format.fprintf ppf "  ACTUAL = %a NS (MISSED BY %a NS)" Timebase.pp_ns a Timebase.pp_ns
      (v.v_required - a));
  (match v.v_at with None -> () | Some t -> Format.fprintf ppf "  AT %a NS" Timebase.pp_ns t);
  if v.v_detail <> "" then Format.fprintf ppf "  [%s]" v.v_detail

let wrap p x =
  let r = x mod p in
  if r < 0 then r + p else r

(* Margin between the start of the stable interval containing [t] and
   [t] itself; [None] when the signal is not even stable at [t]. *)
let setup_margin data t =
  match Waveform.stable_interval_around data t with
  | None -> None
  | Some (s, width) ->
    if width >= Waveform.period data then Some max_int else Some (wrap (Waveform.period data) (t - s))

let hold_margin data t =
  match Waveform.stable_interval_around data t with
  | None -> None
  | Some (s, width) ->
    if width >= Waveform.period data then Some max_int
    else Some (wrap (Waveform.period data) (s + width - t))

let clamp_margin required = function
  | None -> None
  | Some m -> Some (min m required)

let undefined_clock ~inst ~signal ~clock ck =
  if
    List.for_all
      (fun (v, _) -> match v with Tvalue.Unknown -> true | _ -> false)
      (Waveform.segments ck)
  then
    [
      {
        v_kind = Undefined_clock;
        v_inst = inst;
        v_signal = signal;
        v_clock = Some clock;
        v_required = 0;
        v_actual = None;
        v_at = None;
        v_detail = "clock input is undefined over the whole cycle";
      };
    ]
  else []

let check_setup_hold ~inst ~signal ~clock ~setup ~hold ~data ~ck =
  let windows = Waveform.rising_windows ck in
  if windows = [] then undefined_clock ~inst ~signal ~clock ck
  else
    List.concat_map
      (fun { Waveform.w_start = ws; w_stop = we } ->
        let win = we - ws in
        let setup_ok = Waveform.stable_over data ~start:(ws - setup) ~width:(setup + win) in
        let hold_ok = Waveform.stable_over data ~start:ws ~width:(win + hold) in
        let mk kind required actual =
          {
            v_kind = kind;
            v_inst = inst;
            v_signal = signal;
            v_clock = Some clock;
            v_required = required;
            v_actual = actual;
            v_at = Some (wrap (Waveform.period ck) ws);
            v_detail = "";
          }
        in
        let setup_err =
          if setup_ok then []
          else [ mk Setup_violation setup (clamp_margin setup (setup_margin data ws)) ]
        in
        let hold_err =
          if hold_ok then []
          else [ mk Hold_violation hold (clamp_margin hold (hold_margin data we)) ]
        in
        setup_err @ hold_err)
      windows

let pair_falling period rising fallings =
  (* The first falling window whose start follows the rising window's
     start (modulo the period). *)
  match fallings with
  | [] -> None
  | _ ->
    let dist f = wrap period (f.Waveform.w_start - rising.Waveform.w_start) in
    let best =
      List.fold_left
        (fun acc f ->
          match acc with
          | None -> Some f
          | Some g -> if dist f < dist g then Some f else acc)
        None fallings
    in
    best

let check_setup_rise_hold_fall ~inst ~signal ~clock ~setup ~hold ~data ~ck =
  let rising = Waveform.rising_windows ck in
  let falling = Waveform.falling_windows ck in
  if rising = [] then undefined_clock ~inst ~signal ~clock ck
  else
    let period = Waveform.period ck in
    List.concat_map
      (fun r ->
        match pair_falling period r falling with
        | None -> []
        | Some f ->
          let high = wrap period (f.Waveform.w_stop - r.Waveform.w_start) in
          let mk kind required actual at =
            {
              v_kind = kind;
              v_inst = inst;
              v_signal = signal;
              v_clock = Some clock;
              v_required = required;
              v_actual = actual;
              v_at = Some (wrap period at);
              v_detail = "";
            }
          in
          let setup_ok =
            Waveform.stable_over data ~start:(r.Waveform.w_start - setup) ~width:setup
          in
          let high_ok = Waveform.stable_over data ~start:r.Waveform.w_start ~width:high in
          let hold_ok = Waveform.stable_over data ~start:f.Waveform.w_stop ~width:hold in
          List.concat
            [
              (if setup_ok then []
               else
                 [
                   mk Setup_violation setup
                     (clamp_margin setup (setup_margin data r.Waveform.w_start))
                     r.Waveform.w_start;
                 ]);
              (if high_ok then [] else [ mk Stable_high_violation high None r.Waveform.w_start ]);
              (if hold_ok then []
               else
                 [
                   mk Hold_violation hold
                     (clamp_margin hold (hold_margin data f.Waveform.w_stop))
                     f.Waveform.w_stop;
                 ]);
            ])
      rising

let check_min_pulse_width ~inst ~signal ~high ~low wf =
  let period = Waveform.period wf in
  let mk kind required actual at =
    {
      v_kind = kind;
      v_inst = inst;
      v_signal = signal;
      v_clock = None;
      v_required = required;
      v_actual = Some actual;
      v_at = Some (wrap period at);
      v_detail = "";
    }
  in
  let check_runs kind required v =
    if required <= 0 then []
    else
      Waveform.pulse_intervals v wf
      |> List.filter_map (fun (s, width) ->
             if width >= period then None
             else if width < required then Some (mk kind required width s)
             else None)
  in
  check_runs Min_high_width high Tvalue.V1 @ check_runs Min_low_width low Tvalue.V0

let check_stable_while ~inst ~signal ~clock ~gate_wf wf =
  let asserted =
    Waveform.intervals_where (fun v -> not (Tvalue.equal v Tvalue.V0)) gate_wf
  in
  List.filter_map
    (fun (s, width) ->
      if Waveform.stable_over wf ~start:s ~width then None
      else
        Some
          {
            v_kind = Hazard;
            v_inst = inst;
            v_signal = signal;
            v_clock = Some clock;
            v_required = width;
            v_actual = None;
            v_at = Some s;
            v_detail = "control input may change while the clock is asserted";
          })
    asserted

let check_stable_assertion ~signal ~tb assertion wf =
  match assertion.Assertion.kind with
  | Assertion.Precision_clock | Assertion.Nonprecision_clock -> []
  | Assertion.Stable ->
    Assertion.intervals tb assertion
    |> List.filter_map (fun (s, e) ->
           let width = e - s in
           if width <= 0 then None
           else if Waveform.stable_over wf ~start:s ~width then None
           else
             Some
               {
                 v_kind = Stable_assertion_violation;
                 v_inst = signal;
                 v_signal = signal;
                 v_clock = None;
                 v_required = width;
                 v_actual = None;
                 v_at = Some (wrap (Timebase.period tb) s);
                 v_detail =
                   Printf.sprintf "signal asserted stable from %.1f to %.1f ns"
                     (Timebase.ns_of_ps s) (Timebase.ns_of_ps e);
               })
