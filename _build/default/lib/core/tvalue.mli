(** The seven-value system used to represent signals (§2.4.1).

    At any instant every signal has exactly one of seven values.  The
    combinational functions over these values are uniformly defined to
    give {e worst-case} results (§2.4.2): e.g. [Stable OR Rise = Rise]
    because the output is either stable or a rising edge, and the rising
    edge is the worst case. *)

type t =
  | V0      (** false, or 0 *)
  | V1      (** true, or 1 *)
  | Stable  (** signal is stable, not changing *)
  | Change  (** signal may be changing *)
  | Rise    (** signal is going from zero to one *)
  | Fall    (** signal is going from one to zero *)
  | Unknown (** initial value used for all signals *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_char : t -> char
(** One-letter code as in the thesis: ['0' '1' 'S' 'C' 'R' 'F' 'U']. *)

val of_char : char -> t option
(** Inverse of {!to_char} (case-insensitive). *)

val pp : Format.formatter -> t -> unit

val all : t list
(** All seven values, for exhaustive property tests. *)

val is_stable : t -> bool
(** [true] for [V0], [V1] and [Stable]: the signal is definitely not
    changing at this instant.  This is the predicate used by the set-up,
    hold and stable-assertion checkers. *)

val is_changing : t -> bool
(** [true] for [Change], [Rise] and [Fall]. *)

val is_defined : t -> bool
(** [false] only for [Unknown]. *)

val lnot : t -> t
(** Logical complement: swaps [V0]/[V1] and [Rise]/[Fall]. *)

val lor_ : t -> t -> t
(** Worst-case INCLUSIVE-OR.  [V1] is dominant. *)

val land_ : t -> t -> t
(** Worst-case AND.  [V0] is dominant. *)

val lxor_ : t -> t -> t
(** Worst-case EXCLUSIVE-OR.  Has no dominant value, so [Unknown]
    propagates from either input. *)

val chg : t -> t -> t
(** The CHANGE function used to model complex combinational logic
    (parity trees, adders) whose actual function is irrelevant to the
    verification: [Unknown] if any input is undefined, else [Change] if
    any input is changing, else [Stable]. *)

val chg1 : t -> t
(** Unary CHANGE. *)

val merge_uncertain : t -> t -> t
(** Combine two possible values of one signal over an uncertainty window
    (used when skew windows overlap while folding skew into the value
    list, §2.8): [Unknown] absorbs, equal values stay, anything else
    becomes [Change]. *)

val worst_edge : before:t -> after:t -> t
(** The value painted over a transition window when skew is folded into
    the signal representation: [V0 -> V1] gives [Rise], [V1 -> V0] gives
    [Fall], transitions involving [Unknown] give [Unknown], everything
    else gives [Change]. *)
