(** Evaluation directives (§2.6).

    Directives are given after a signal with an ["&"], e.g. ["&H"] or
    ["&HZZW"].  Each letter controls one subsequent level of gating: a
    gate consumes the first letter and passes the rest of the string,
    with its output value, to the next level (§2.8, the "EVAL STR PTR"
    field). *)

type letter =
  | E  (** evaluate the gate with no special action (default) *)
  | W  (** zero the wire delay going into the gate *)
  | Z  (** zero the gate delay and the wire going into it: the clock
           timing refers to the gate's output *)
  | A  (** check that the other inputs to the gate are not changing when
           this input is asserted, and assume they enable the gate *)
  | H  (** combined effects of [Z] and [A] *)

type t = letter list
(** An evaluation string; the head applies to the next level of gating. *)

val of_string : string -> (t, string) result
(** Parse a directive string such as ["HZZW"] (a leading ["&"] is
    allowed and ignored). *)

val of_string_exn : string -> t

val to_string : t -> string

val zero_wire : letter -> bool
(** [W], [Z] and [H] zero the incoming wire delay. *)

val zero_gate : letter -> bool
(** [Z] and [H] zero the gate delay. *)

val check_hazard : letter -> bool
(** [A] and [H] request the clock-gating hazard check and the
    assume-enabling evaluation. *)

val pp : Format.formatter -> t -> unit
