(** Value Change Dump (VCD) export.

    Writes the evaluated waveforms of one clock period in the standard
    VCD format, so they can be inspected in any waveform viewer.  The
    seven-value system maps onto the four VCD scalar states:

    {v
    0 -> 0          STABLE  -> z   (steady, value unknown)
    1 -> 1          CHANGE, RISE, FALL, UNKNOWN -> x
    v}

    Each net is exported as a 1-bit wire (the Timing Verifier's vector
    symmetry means all bits of a path share one waveform); the net's
    declared width is recorded in the wire name as [name[w]]. *)

val export : Eval.t -> Buffer.t -> unit
(** Append the dump for the current evaluation state. *)

val to_string : Eval.t -> string

val write_file : Eval.t -> string -> unit
(** @raise Sys_error on I/O failure. *)
