type t = V0 | V1 | Stable | Change | Rise | Fall | Unknown

let equal a b =
  match a, b with
  | V0, V0 | V1, V1 | Stable, Stable | Change, Change | Rise, Rise
  | Fall, Fall | Unknown, Unknown ->
    true
  | (V0 | V1 | Stable | Change | Rise | Fall | Unknown), _ -> false

let rank = function
  | V0 -> 0
  | V1 -> 1
  | Stable -> 2
  | Change -> 3
  | Rise -> 4
  | Fall -> 5
  | Unknown -> 6

let compare a b = Int.compare (rank a) (rank b)

let to_char = function
  | V0 -> '0'
  | V1 -> '1'
  | Stable -> 'S'
  | Change -> 'C'
  | Rise -> 'R'
  | Fall -> 'F'
  | Unknown -> 'U'

let of_char c =
  match Char.uppercase_ascii c with
  | '0' -> Some V0
  | '1' -> Some V1
  | 'S' -> Some Stable
  | 'C' -> Some Change
  | 'R' -> Some Rise
  | 'F' -> Some Fall
  | 'U' -> Some Unknown
  | _ -> None

let pp ppf v = Format.pp_print_char ppf (to_char v)

let all = [ V0; V1; Stable; Change; Rise; Fall; Unknown ]

let is_stable = function
  | V0 | V1 | Stable -> true
  | Change | Rise | Fall | Unknown -> false

let is_changing = function
  | Change | Rise | Fall -> true
  | V0 | V1 | Stable | Unknown -> false

let is_defined = function Unknown -> false | V0 | V1 | Stable | Change | Rise | Fall -> true

let lnot = function
  | V0 -> V1
  | V1 -> V0
  | Stable -> Stable
  | Change -> Change
  | Rise -> Fall
  | Fall -> Rise
  | Unknown -> Unknown

(* Worst-case OR: V1 dominates even over Unknown; V0 is the identity.
   Combining a definite edge with a stable value keeps the edge (the
   worst case); combining two distinct edge behaviours degrades to
   Change, whose value behaviour is unconstrained. *)
let lor_ a b =
  match a, b with
  | V1, _ | _, V1 -> V1
  | V0, x | x, V0 -> x
  | Unknown, _ | _, Unknown -> Unknown
  | Stable, x | x, Stable -> x
  | Rise, Rise -> Rise
  | Fall, Fall -> Fall
  | Change, (Change | Rise | Fall) | (Rise | Fall), Change -> Change
  | Rise, Fall | Fall, Rise -> Change

let land_ a b =
  match a, b with
  | V0, _ | _, V0 -> V0
  | V1, x | x, V1 -> x
  | Unknown, _ | _, Unknown -> Unknown
  | Stable, x | x, Stable -> x
  | Rise, Rise -> Rise
  | Fall, Fall -> Fall
  | Change, (Change | Rise | Fall) | (Rise | Fall), Change -> Change
  | Rise, Fall | Fall, Rise -> Change

(* XOR has no dominant value, so Unknown always propagates.  A changing
   input whose old/new values are unknown makes the output Change, except
   that a definite edge XORed with a constant is the edge (possibly
   complemented). *)
let lxor_ a b =
  match a, b with
  | Unknown, _ | _, Unknown -> Unknown
  | V0, x | x, V0 -> x
  | V1, x | x, V1 -> lnot x
  | Stable, Stable -> Stable
  | Stable, (Change | Rise | Fall) | (Change | Rise | Fall), Stable -> Change
  | (Change | Rise | Fall), (Change | Rise | Fall) -> Change

let chg a b =
  match a, b with
  | Unknown, _ | _, Unknown -> Unknown
  | (Change | Rise | Fall), _ | _, (Change | Rise | Fall) -> Change
  | (V0 | V1 | Stable), (V0 | V1 | Stable) -> Stable

let chg1 = function
  | Unknown -> Unknown
  | Change | Rise | Fall -> Change
  | V0 | V1 | Stable -> Stable

let merge_uncertain a b =
  if equal a b then a
  else
    match a, b with
    | Unknown, _ | _, Unknown -> Unknown
    | _, _ -> Change

let worst_edge ~before ~after =
  match before, after with
  | V0, V1 -> Rise
  | V1, V0 -> Fall
  | Unknown, _ | _, Unknown -> Unknown
  | _, _ -> Change
