(** The primitive functions built into the Timing Verifier (§2.4, §3.1).

    Circuits are described in terms of gates, registers, latches,
    set-up/hold checkers and minimum-pulse-width checkers; all more
    complex components (register files, multiplexer chips, ALUs) are
    defined as macros over these primitives.  Each primitive represents
    an arbitrarily wide data path — the width lives on the nets, and one
    primitive instance stands for the whole vector (§3.3.2). *)

type gate_fn =
  | And
  | Or
  | Xor
  | Chg  (** the CHANGE function: models complex combinational logic
             (adders, parity trees) whose Boolean function is irrelevant
             to timing (§2.4.2) *)

type t =
  | Gate of { fn : gate_fn; n_inputs : int; invert : bool; delay : Delay.t }
      (** [n_inputs >= 1]; [invert] gives NAND/NOR/XNOR *)
  | Buf of { invert : bool; delay : Delay.t }
      (** buffer or inverter; with [invert = false] also serves as an
          explicit delay element (e.g. the [CORR] fictitious delay of
          §4.2.3) *)
  | Mux2 of { delay : Delay.t; select_extra : Delay.t }
      (** 2-input multiplexer: inputs [A; B; S]; output follows [A] when
          [S = 0] and [B] when [S = 1].  The select input sees
          [select_extra] additional delay (Figure 3-6). *)
  | Reg of { delay : Delay.t; has_set_reset : bool }
      (** edge-triggered register: inputs [DATA; CLOCK] or
          [DATA; CLOCK; SET; RESET] (Figure 2-1) *)
  | Latch of { delay : Delay.t; has_set_reset : bool }
      (** transparent latch: inputs [DATA; ENABLE] or
          [DATA; ENABLE; SET; RESET]; output follows [DATA] while
          [ENABLE] is high (Figure 2-2) *)
  | Setup_hold_check of { setup : Timebase.ps; hold : Timebase.ps }
      (** inputs [I; CK]: [I] must be stable from [setup] before each
          rising edge of [CK] until [hold] after it (Figure 2-3) *)
  | Setup_rise_hold_fall_check of { setup : Timebase.ps; hold : Timebase.ps }
      (** inputs [I; CK]: set-up before the rising edge, stability while
          [CK] is true, hold after the falling edge — used for memory
          write-enable constraints (Figure 2-3) *)
  | Min_pulse_width of { high : Timebase.ps; low : Timebase.ps }
      (** input [I]: every high pulse at least [high] wide, every low
          pulse at least [low] wide; a zero bound disables that direction
          (Figure 2-4) *)
  | Const of Tvalue.t
      (** a source holding one value for the whole cycle — e.g. a
          grounded SET/RESET input, which must be a true [0] rather than
          merely "stable" for the register model to ignore it *)

val n_inputs : t -> int
val has_output : t -> bool
val is_checker : t -> bool

val input_label : t -> int -> string
(** Diagnostic name of input port [i], e.g. ["DATA"], ["CK"]. *)

val mnemonic : t -> string
(** Short type name used in listings and statistics, e.g. ["2 OR"],
    ["REG RS"], ["SETUP HOLD CHK"]. *)

val pp : Format.formatter -> t -> unit
