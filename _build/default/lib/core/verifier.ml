type case_result = {
  cr_case : Case_analysis.case;
  cr_violations : Check.t list;
  cr_events : int;
  cr_evaluations : int;
}

type report = {
  r_cases : case_result list;
  r_events : int;
  r_evaluations : int;
  r_violations : Check.t list;
  r_converged : bool;
  r_unasserted : string list;
  r_eval : Eval.t;
}

let dedup_violations vs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (v : Check.t) ->
      let key =
        Format.asprintf "%s/%s/%s/%d/%s" (Check.kind_name v.v_kind) v.v_inst v.v_signal
          v.v_required
          (match v.v_at with None -> "-" | Some t -> string_of_int t)
      in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    vs

let verify ?(cases = []) nl =
  let ev = Eval.create nl in
  let run_case case =
    let before_events = Eval.events ev and before_evals = Eval.evaluations ev in
    Eval.run ~case:(Case_analysis.resolve nl case) ev;
    let violations = Eval.check ev in
    {
      cr_case = case;
      cr_violations = violations;
      cr_events = Eval.events ev - before_events;
      cr_evaluations = Eval.evaluations ev - before_evals;
    }
  in
  let case_list = match cases with [] -> [ [] ] | cs -> cs in
  let results = List.map run_case case_list in
  let all = List.concat_map (fun r -> r.cr_violations) results in
  {
    r_cases = results;
    r_events = Eval.events ev;
    r_evaluations = Eval.evaluations ev;
    r_violations = dedup_violations all;
    r_converged = Eval.converged ev;
    r_unasserted =
      List.map (fun (n : Netlist.net) -> n.n_name) (Netlist.undriven_unasserted nl);
    r_eval = ev;
  }

let clean r = r.r_violations = []

let violations_of_kind kind r =
  List.filter (fun (v : Check.t) -> v.v_kind = kind) r.r_violations

let pp ppf r =
  Format.fprintf ppf "@[<v>TIMING VERIFICATION REPORT@,";
  Format.fprintf ppf "cases evaluated: %d   events: %d   evaluations: %d%s@,"
    (List.length r.r_cases) r.r_events r.r_evaluations
    (if r.r_converged then "" else "   (DID NOT CONVERGE)");
  List.iteri
    (fun i c ->
      Format.fprintf ppf "case %d [%a]: %d events, %d violations@," (i + 1) Case_analysis.pp
        c.cr_case c.cr_events
        (List.length c.cr_violations))
    r.r_cases;
  Format.fprintf ppf "%a@," Report.pp_violations r.r_violations;
  Report.pp_cross_reference ppf (Eval.netlist r.r_eval);
  Format.fprintf ppf "@]"
