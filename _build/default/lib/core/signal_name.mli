(** Signal names as used in the SCALD Hardware Description Language.

    A full signal name can include a complement prefix (["- WE"] means
    the complement of [WE]), a vector subscript (["A<0:3>"]), and a
    trailing assertion preceded by a period (["CK .P2-3 L"],
    ["W DATA .S0-6"]).  The assertion is considered part of the name by
    the rest of the SCALD system, which guarantees that all assertions
    for a given signal are consistent by definition (§2.5.1). *)

type t = {
  base : string;  (** name without complement prefix or assertion suffix,
                      but including any vector subscript *)
  vector : (int * int) option;  (** the [<lo:hi>] subscript, if present *)
  assertion : Assertion.t option;
  complemented : bool;
}

val parse : string -> (t, string) result
(** Parse a full signal name.  The assertion suffix is recognized as the
    last [" ."] or ["."] followed by [P], [C] or [S] and a valid
    assertion spec. *)

val parse_exn : string -> t
(** @raise Invalid_argument on a malformed name. *)

val width : t -> int
(** Number of bits: the vector width, or 1 for scalar signals. *)

val to_string : t -> string

val key : t -> string
(** Identity of the underlying net: the base name together with the
    assertion suffix.  The assertion is considered part of the signal
    name by the SCALD system, so ["CK .P2-3 L"] and ["CK .P0-4"] are two
    distinct signals; complementation does not create a distinct
    signal. *)

val pp : Format.formatter -> t -> unit
