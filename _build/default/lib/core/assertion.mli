(** Signal assertions (§2.5): clock assertions and stable assertions
    given at the end of signal names, preceded by a period.

    Grammar (from the thesis):
    {v
    <precision clock>     ::= <signal name> .P <assert spec>
    <non-precision clock> ::= <signal name> .C <assert spec>
    <stable assertion>    ::= <signal name> .S <value spec> <polarity>
    <assert spec>  ::= <skew spec>? <value spec> <polarity>?
    <value spec>   ::= <range> | <range> , <value spec>
    <range>        ::= <time> | <time> - <time> | <time> + <time>
    <skew spec>    ::= ( <minus skew> , <plus skew> )
    <polarity>     ::= L
    v}

    Times in a range are designer clock units; in the [<time> + <time>]
    form the second number is a width in {e nanoseconds} (it does not
    scale with the cycle time).  Skews are nanoseconds.  A single time
    denotes an interval of one clock unit.  Ranges are taken modulo the
    cycle time (§3.2), so [.S4-9] on an 8-unit cycle means stable from 4
    to 1 of the next cycle. *)

type kind =
  | Precision_clock      (** [.P] — clock de-skewed by hand adjustment *)
  | Nonprecision_clock   (** [.C] — clock with the larger default skew *)
  | Stable               (** [.S] — control/data signal stability window *)

type range =
  | Unit_at of float          (** a single clock-unit-wide interval *)
  | Between of float * float  (** \[start, stop) in clock units *)
  | For_ns of float * float   (** start in clock units, width in ns *)

type t = {
  kind : kind;
  skew_ns : (float * float) option;
      (** explicit [(minus, plus)] skew in ns; [None] takes the default *)
  ranges : range list;
  low_active : bool;  (** [L]: the listed ranges are the {e low} times *)
}

val parse : string -> (t, string) result
(** Parse the text after the period, e.g. ["P2-3 L"], ["C 4-6 L"],
    ["S0-6"], ["C2,5"], ["C2+10.0"], ["P(-0.5,0.5)2-3"]. *)

val to_string : t -> string
(** Canonical rendering, suitable for interface-consistency comparison of
    modular verification (§2.5.2). *)

val equal : t -> t -> bool

type defaults = {
  precision_skew : Timebase.ps * Timebase.ps;     (** (early <= 0, late >= 0) *)
  nonprecision_skew : Timebase.ps * Timebase.ps;
}

val s1_defaults : defaults
(** The S-1 Mark IIA design rules (§3.3): precision clocks ±1.0 ns,
    non-precision clocks ±5.0 ns. *)

val intervals : Timebase.t -> t -> (Timebase.ps * Timebase.ps) list
(** The asserted ranges as absolute [(start, stop)] picosecond pairs
    (half-open, not yet wrapped). *)

val to_waveform : defaults -> Timebase.t -> t -> Waveform.t
(** The waveform asserted for a signal over one clock period: clocks are
    [V1] during their ranges and [V0] outside (swapped for [L]), with the
    explicit or default skew; stable assertions are [Stable] during their
    ranges and [Change] outside, zero skew. *)

val pp : Format.formatter -> t -> unit
