(** Timing-constraint checks and their violation reports (§2.9, Figures
    2-3, 2-4, 3-11).

    All checkers work on the waveforms computed by the evaluator.  Times
    in reports are picoseconds from the start of the cycle. *)

type kind =
  | Setup_violation      (** data changing inside the set-up interval *)
  | Hold_violation       (** data changing inside the hold interval *)
  | Stable_high_violation
      (** data changing while the clock is true
          (SETUP RISE HOLD FALL CHK) *)
  | Min_high_width       (** high pulse narrower than its minimum *)
  | Min_low_width        (** low pulse narrower than its minimum *)
  | Hazard
      (** a control input of a gated clock changing while the clock is
          asserted ([&A]/[&H] directives, §2.6) *)
  | Stable_assertion_violation
      (** a generated signal changing inside its own [.S] window *)
  | Undefined_clock
      (** a checker clock input that never exhibits the required edge *)
  | Reflection_hazard
      (** a signal run flagged by the physical-design subsystem for
          voltage-wave reflections feeding an edge-sensitive input —
          possible extra clock transitions (§1.3.2) *)
  | No_convergence       (** the relaxation did not reach a fixpoint *)

type t = {
  v_kind : kind;
  v_inst : string;       (** instance reporting the violation *)
  v_signal : string;     (** signal being checked *)
  v_clock : string option;  (** clock input, if any *)
  v_required : Timebase.ps;  (** the constraint (set-up time, width...) *)
  v_actual : Timebase.ps option;
      (** the margin or width actually achieved, when measurable; the
          miss amount is [v_required - v_actual] *)
  v_at : Timebase.ps option;  (** cycle time at which it occurred *)
  v_detail : string;
}

val pp : Format.formatter -> t -> unit
(** One-line rendering in the style of the Figure 3-11 error listing. *)

val kind_name : kind -> string

val check_setup_hold :
  inst:string ->
  signal:string ->
  clock:string ->
  setup:Timebase.ps ->
  hold:Timebase.ps ->
  data:Waveform.t ->
  ck:Waveform.t ->
  t list
(** SETUP HOLD CHK: for every window in which the clock may rise, the
    data input must be stable from [setup] before the earliest rise
    until [hold] after the latest rise. *)

val check_setup_rise_hold_fall :
  inst:string ->
  signal:string ->
  clock:string ->
  setup:Timebase.ps ->
  hold:Timebase.ps ->
  data:Waveform.t ->
  ck:Waveform.t ->
  t list
(** SETUP RISE HOLD FALL CHK: set-up before the rising edge, stability
    for the whole interval the clock is true, hold after the falling
    edge (used for memory write constraints, §3.1). *)

val check_min_pulse_width :
  inst:string ->
  signal:string ->
  high:Timebase.ps ->
  low:Timebase.ps ->
  Waveform.t ->
  t list
(** MIN PULSE WIDTH: guaranteed widths are measured on the nominal value
    list, so that skew that merely delays a signal does not narrow its
    pulses (§2.8); skew already folded into [Rise]/[Fall] values does. *)

val check_stable_while :
  inst:string ->
  signal:string ->
  clock:string ->
  gate_wf:Waveform.t ->
  Waveform.t ->
  t list
(** Hazard check for the [&A]/[&H] directives: the signal must be stable
    whenever [gate_wf] (the gating clock, after complementation) is
    possibly asserted. *)

val check_stable_assertion :
  signal:string ->
  tb:Timebase.t ->
  Assertion.t ->
  Waveform.t ->
  t list
(** A generated signal carrying a [.S] assertion must actually be stable
    over the asserted ranges (§2.5.2). *)
