(** Event-driven circuit evaluation (§2.9).

    The evaluator computes, for one case, the value of every signal over
    the clock period: signals with assertions are initialized from them,
    undriven unasserted signals are taken to be always stable, everything
    else starts [Unknown]; then all primitives are evaluated and any
    whose output changed put their fanout back on the work list, until a
    fixpoint is reached.

    Case analysis is incremental: changing the case re-initializes only
    the mapped signals and re-evaluates only the affected cone, so
    additional cases cost time proportional to the events they cause
    (§2.7, §3.3.2). *)

type t

val create : Netlist.t -> t

val netlist : t -> Netlist.t

val run : ?case:(int * Tvalue.t) list -> t -> unit
(** Evaluate to a fixpoint under the given case mapping (net id to the
    value substituted for [Stable]; an empty list clears the mapping).
    Successive calls are incremental. *)

val check : t -> Check.t list
(** Run all checker primitives, [&A]/[&H] hazard checks and
    stable-assertion checks against the current signal values, plus a
    {!Check.No_convergence} report if the last {!run} hit the evaluation
    bound. *)

val value : t -> int -> Waveform.t
(** Current waveform of a net. *)

val input_waveform : t -> Netlist.inst -> int -> Waveform.t
(** The waveform a primitive instance actually sees on input [i]: the
    net value after complementation and interconnection delay, with
    evaluation directives applied.  Exposed for reporting (the Figure
    3-11 listing prints the values seen by the checker). *)

val events : t -> int
(** Number of events processed so far: an event is an output being given
    a new value, causing its consumers to be re-evaluated (§3.3.2). *)

val evaluations : t -> int
(** Number of primitive evaluations performed so far. *)

val converged : t -> bool

val reset_counters : t -> unit
