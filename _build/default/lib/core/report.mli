(** Output listings in the style of the thesis (Figures 3-10 and 3-11).

    The timing summary lists every signal's value over the cycle; the
    error listing shows each violation with the values seen by the
    checker on its data and clock inputs. *)

val pp_summary : Format.formatter -> Eval.t -> unit
(** Figure 3-10: one line per net, sorted by name, with the waveform
    rendered as [VALUE time] pairs (times in ns). *)

val pp_signal : Format.formatter -> Eval.t -> string -> unit
(** The summary line of one signal, by base name. *)

val pp_violations : Format.formatter -> Check.t list -> unit
(** Figure 3-11: the setup, hold and minimum-pulse-width error listing. *)

val pp_violation_with_values : Format.formatter -> Eval.t -> Check.t -> unit
(** One violation followed by the values seen on its data and clock
    inputs, as the thesis prints them. *)

val pp_cross_reference : Format.formatter -> Netlist.t -> unit
(** The special cross-reference listing of signals with neither a driver
    nor an assertion, which the verifier treats as always stable
    (§2.5). *)
