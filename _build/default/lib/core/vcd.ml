let vcd_char = function
  | Tvalue.V0 -> '0'
  | Tvalue.V1 -> '1'
  | Tvalue.Stable -> 'z'
  | Tvalue.Change | Tvalue.Rise | Tvalue.Fall | Tvalue.Unknown -> 'x'

(* short printable identifier codes, as VCD requires *)
let ident i =
  let base = 94 and first = 33 in
  let rec go i acc =
    let acc = String.make 1 (Char.chr (first + (i mod base))) ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let sanitize name =
  String.map (fun c -> if c = ' ' then '_' else c) name

let export ev buf =
  let nl = Eval.netlist ev in
  let period = Timebase.period (Netlist.timebase nl) in
  Buffer.add_string buf "$date exported by scald $end\n";
  Buffer.add_string buf "$version scald timing verifier $end\n";
  Buffer.add_string buf "$timescale 1ps $end\n";
  Buffer.add_string buf "$scope module design $end\n";
  Netlist.iter_nets nl (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire 1 %s %s[%d] $end\n" (ident n.Netlist.n_id)
           (sanitize n.Netlist.n_name) n.Netlist.n_width));
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  (* gather all change times *)
  let events : (int, (string * char) list) Hashtbl.t = Hashtbl.create 64 in
  let add t id c =
    let prev = Option.value ~default:[] (Hashtbl.find_opt events t) in
    Hashtbl.replace events t ((id, c) :: prev)
  in
  Netlist.iter_nets nl (fun n ->
      let m = Waveform.materialize n.Netlist.n_value in
      let id = ident n.Netlist.n_id in
      let rec go at = function
        | [] -> ()
        | (v, width) :: rest ->
          add at id (vcd_char v);
          go (at + width) rest
      in
      go 0 (Waveform.segments m));
  let times = Hashtbl.fold (fun t _ acc -> t :: acc) events [] |> List.sort Int.compare in
  Buffer.add_string buf "$dumpvars\n";
  List.iter
    (fun t ->
      if t > 0 then Buffer.add_string buf (Printf.sprintf "#%d\n" t);
      List.iter
        (fun (id, c) -> Buffer.add_string buf (Printf.sprintf "%c%s\n" c id))
        (List.rev (Hashtbl.find events t));
      if t = 0 then Buffer.add_string buf "$end\n")
    times;
  Buffer.add_string buf (Printf.sprintf "#%d\n" period)

let to_string ev =
  let buf = Buffer.create 4096 in
  export ev buf;
  Buffer.contents buf

let write_file ev path =
  let oc = open_out path in
  output_string oc (to_string ev);
  close_out oc
