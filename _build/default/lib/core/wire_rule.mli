(** Interconnection-delay rules (§2.5.3, §3.3).

    Until the physical design exists, interconnection delays come from a
    designer rule.  The S-1 Mark IIA used a flat 0.0/2.0 ns default;
    the thesis notes that "refined rules for future designs could take
    into account the number of loads on a run, and the size of the
    different loads", with the caveat that a rule must stay easy for the
    designer to apply by hand.  This module is that refinement: a base
    range plus an increment per load beyond the first.

    Applying a rule fills in every net that carries no explicit
    designer-specified wire delay; explicit delays (including the zero
    delays of chip-internal and de-skewed clock nets) are never
    overridden. *)

type t = {
  base : Delay.t;      (** delay of a minimal run with one load *)
  per_load : Delay.t;  (** added for each additional load *)
}

val flat : Delay.t -> t
(** The thesis's rule: the same range regardless of loading. *)

val s1_default : t
(** [flat (0.0/2.0 ns)] — the S-1 Mark IIA design rule. *)

val loaded : base:Delay.t -> per_load:Delay.t -> t

val delay_for : t -> fanout:int -> Delay.t
(** The rule evaluated for a run with the given number of loads. *)

val apply : Netlist.t -> t -> int
(** Set the wire delay of every net that has none, from its fanout
    count.  Returns the number of nets set. *)

val pp : Format.formatter -> t -> unit
