lib/core/waveform.ml: Array Format Int List Printf Timebase Tvalue
