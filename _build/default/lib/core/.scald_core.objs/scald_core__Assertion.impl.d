lib/core/assertion.ml: Float Format List Printf Result String Timebase Tvalue Waveform
