lib/core/waveform.mli: Format Timebase Tvalue
