lib/core/case_analysis.ml: Format List Netlist Printf String Tvalue
