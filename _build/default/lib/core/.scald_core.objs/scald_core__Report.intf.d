lib/core/report.mli: Check Eval Format Netlist
