lib/core/directive.mli: Format
