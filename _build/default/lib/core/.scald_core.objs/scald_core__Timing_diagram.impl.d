lib/core/timing_diagram.ml: Array Bytes Eval Format List Netlist Option Printf String Timebase Tvalue Waveform
