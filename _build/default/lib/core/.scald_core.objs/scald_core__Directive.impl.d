lib/core/directive.ml: Char Format List Printf String
