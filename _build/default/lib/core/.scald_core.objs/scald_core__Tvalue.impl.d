lib/core/tvalue.ml: Char Format Int
