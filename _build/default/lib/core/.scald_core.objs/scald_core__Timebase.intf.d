lib/core/timebase.mli: Format
