lib/core/eval.mli: Check Netlist Tvalue Waveform
