lib/core/assertion.mli: Format Timebase Waveform
