lib/core/delay.mli: Format Timebase
