lib/core/case_analysis.mli: Format Netlist Tvalue
