lib/core/stats.mli: Format Netlist
