lib/core/check.ml: Assertion Format List Printf Timebase Tvalue Waveform
