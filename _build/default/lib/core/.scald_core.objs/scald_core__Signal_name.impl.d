lib/core/signal_name.ml: Assertion Buffer Char Format Printf String
