lib/core/delay.ml: Format Timebase
