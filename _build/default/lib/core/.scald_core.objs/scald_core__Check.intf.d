lib/core/check.mli: Assertion Format Timebase Waveform
