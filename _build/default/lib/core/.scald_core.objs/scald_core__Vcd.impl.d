lib/core/vcd.ml: Buffer Char Eval Hashtbl Int List Netlist Option Printf String Timebase Tvalue Waveform
