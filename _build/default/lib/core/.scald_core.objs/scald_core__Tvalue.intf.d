lib/core/tvalue.mli: Format
