lib/core/stats.ml: Array Format Hashtbl List Netlist Primitive String Waveform
