lib/core/primitive.ml: Delay Format Printf Timebase Tvalue
