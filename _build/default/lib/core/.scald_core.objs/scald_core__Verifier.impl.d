lib/core/verifier.ml: Case_analysis Check Eval Format Hashtbl List Netlist Report
