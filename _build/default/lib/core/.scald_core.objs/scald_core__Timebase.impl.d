lib/core/timebase.ml: Float Format
