lib/core/slack.ml: Array Eval Format List Netlist Primitive Timebase Tvalue Waveform
