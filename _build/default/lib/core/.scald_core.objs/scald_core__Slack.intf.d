lib/core/slack.mli: Eval Format Timebase
