lib/core/report.ml: Array Check Eval Format List Netlist String Waveform
