lib/core/verifier.mli: Case_analysis Check Eval Format Netlist
