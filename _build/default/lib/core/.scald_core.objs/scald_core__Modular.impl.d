lib/core/modular.ml: Format Hashtbl List Netlist Option String Verifier
