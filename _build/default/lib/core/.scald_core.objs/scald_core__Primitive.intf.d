lib/core/primitive.mli: Delay Format Timebase Tvalue
