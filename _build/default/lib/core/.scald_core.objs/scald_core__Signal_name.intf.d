lib/core/signal_name.mli: Assertion Format
