lib/core/timing_diagram.mli: Eval Format Waveform
