lib/core/wire_rule.mli: Delay Format Netlist
