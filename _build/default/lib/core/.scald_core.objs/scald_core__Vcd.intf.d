lib/core/vcd.mli: Buffer Eval
