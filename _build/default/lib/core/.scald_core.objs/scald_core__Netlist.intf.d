lib/core/netlist.mli: Assertion Delay Directive Primitive Timebase Waveform
