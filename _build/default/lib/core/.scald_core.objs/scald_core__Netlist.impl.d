lib/core/netlist.ml: Array Assertion Delay Directive Hashtbl List Primitive Printf Signal_name Timebase Tvalue Waveform
