lib/core/eval.ml: Array Assertion Check Delay Directive List Netlist Primitive Queue Timebase Tvalue Waveform
