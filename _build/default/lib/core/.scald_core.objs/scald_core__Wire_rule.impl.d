lib/core/wire_rule.ml: Delay Format List Netlist
