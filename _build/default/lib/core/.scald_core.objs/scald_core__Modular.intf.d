lib/core/modular.mli: Format Netlist Verifier
