(** Designer-specified case analysis (§2.7).

    Reducing all possible operations of a circuit to one symbolic cycle
    is sometimes overly pessimistic; the designer then specifies cases,
    each mapping the [Stable] values of chosen control signals into [0]
    or [1].  Each case is one incremental re-simulation of the affected
    part of the circuit.

    Case-specification text, one case per [';']-terminated group, with
    [',']-separated assignments inside a group:
    {v
    CONTROL SIGNAL = 0;
    CONTROL SIGNAL = 1;
    v} *)

type case = (string * Tvalue.t) list
(** One case: signal base names and the value substituted for their
    [Stable] states. *)

val parse : string -> (case list, string) result
(** Parse a case-specification text. *)

val parse_exn : string -> case list

val resolve : Netlist.t -> case -> (int * Tvalue.t) list
(** Translate names to net ids.
    @raise Invalid_argument if a signal does not exist. *)

val complete : string list -> case list
(** All [2^n] cases over the given control signals — exhaustive case
    analysis over a small set of controls. *)

val pp : Format.formatter -> case -> unit
