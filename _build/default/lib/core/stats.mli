(** Execution and storage statistics (§3.3.2, Tables 3-1 … 3-3).

    The storage model mirrors the thesis's unpacked-PASCAL accounting:
    every record field takes four bytes except characters, which take
    one.  The value-list sizes reproduce the published averages (a base
    record of five fields plus one three-field record per value node,
    giving the 56-byte average at 2.97 value records per signal). *)

type storage = {
  circuit_description : int;
      (** per-primitive characterization + parameter bindings *)
  signal_values : int;  (** value-list base records and value records *)
  signal_names : int;   (** per-bit value pointers and define/use lists *)
  string_space : int;   (** text of all signal and instance names *)
  call_list : int;      (** which primitives to re-evaluate per signal *)
  miscellaneous : int;
}

val total : storage -> int

val storage_of : Netlist.t -> storage
(** Account for the data structures of a netlist in its current
    (evaluated) state — value-record counts are taken from the actual
    waveforms. *)

val n_value_lists : Netlist.t -> int
(** Total signal value lists stored: one per bit of every signal vector
    (thesis: 33 152). *)

val value_records_per_signal : Netlist.t -> float
(** Mean number of value records per signal value list (the thesis
    measured 2.97 for the 6357-chip example). *)

val bytes_per_signal_value : Netlist.t -> float
(** Mean bytes used to store one signal's value (thesis: 56). *)

val bytes_per_primitive : storage -> n_primitives:int -> float
(** Circuit-description bytes per primitive (thesis: 260). *)

type primitive_census = (string * int * float) list
(** Rows of Table 3-2: primitive type, instance count, mean bit width. *)

val primitive_census : Netlist.t -> primitive_census

val total_primitives : primitive_census -> int

val unvectored_count : Netlist.t -> int
(** Number of primitives that would be needed without exploiting vector
    symmetry: the sum over instances of their output (or checked-input)
    widths — the thesis's 53 833 vs 8 282 comparison. *)

val pp_storage : Format.formatter -> storage -> unit
(** Render in the layout of Table 3-3, with percentages. *)

val pp_census : Format.formatter -> primitive_census -> unit
(** Render in the layout of Table 3-2. *)
