type case = (string * Tvalue.t) list

let parse text =
  let groups = String.split_on_char ';' text in
  let parse_assignment s =
    match String.index_opt s '=' with
    | None -> Error (Printf.sprintf "case assignment missing '=': %S" (String.trim s))
    | Some i ->
      let name = String.trim (String.sub s 0 i) in
      let value = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      if name = "" then Error "case assignment with empty signal name"
      else (
        match value with
        | "0" -> Ok (name, Tvalue.V0)
        | "1" -> Ok (name, Tvalue.V1)
        | v -> Error (Printf.sprintf "case value must be 0 or 1, got %S" v))
  in
  let parse_group g =
    let parts =
      String.split_on_char ',' g |> List.map String.trim |> List.filter (fun s -> s <> "")
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
        match parse_assignment p with Ok a -> go (a :: acc) rest | Error e -> Error e)
    in
    go [] parts
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | g :: rest -> (
      if String.trim g = "" then go acc rest
      else
        match parse_group g with
        | Ok [] -> go acc rest
        | Ok c -> go (c :: acc) rest
        | Error e -> Error e)
  in
  go [] groups

let parse_exn text =
  match parse text with Ok cs -> cs | Error e -> invalid_arg ("Case_analysis.parse: " ^ e)

let resolve nl case =
  List.map
    (fun (name, v) ->
      match Netlist.find nl name with
      | Some id -> (id, v)
      | None -> invalid_arg (Printf.sprintf "Case_analysis.resolve: unknown signal %S" name))
    case

let complete names =
  let n = List.length names in
  if n > 16 then invalid_arg "Case_analysis.complete: too many control signals";
  List.init (1 lsl n) (fun bits ->
      List.mapi
        (fun i name -> (name, if bits land (1 lsl i) <> 0 then Tvalue.V1 else Tvalue.V0))
        names)

let pp ppf case =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (name, v) -> Format.fprintf ppf "%s = %a" name Tvalue.pp v)
    ppf case
