type ps = int

type t = { period : ps; clock_unit : ps }

let ps_of_ns ns = int_of_float (Float.round (ns *. 1000.))

let ns_of_ps ps = float_of_int ps /. 1000.

let of_period_ps ~period ~clock_unit =
  if period <= 0 then invalid_arg "Timebase: period must be positive";
  if clock_unit <= 0 then invalid_arg "Timebase: clock unit must be positive";
  { period; clock_unit }

let make ~period_ns ~clock_unit_ns =
  of_period_ps ~period:(ps_of_ns period_ns) ~clock_unit:(ps_of_ns clock_unit_ns)

let period tb = tb.period

let clock_unit tb = tb.clock_unit

let units_per_period tb = float_of_int tb.period /. float_of_int tb.clock_unit

let ps_of_units tb u = int_of_float (Float.round (u *. float_of_int tb.clock_unit))

let units_of_ps tb ps = float_of_int ps /. float_of_int tb.clock_unit

let wrap tb x =
  let r = x mod tb.period in
  if r < 0 then r + tb.period else r

let pp_ns ppf ps = Format.fprintf ppf "%.1f" (ns_of_ps ps)
