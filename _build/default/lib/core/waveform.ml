type t = {
  period : Timebase.ps;
  segs : (Tvalue.t * Timebase.ps) list;
  early : Timebase.ps; (* <= 0 *)
  late : Timebase.ps; (* >= 0 *)
}

let period w = w.period

let skew w = (w.early, w.late)

let segments w = w.segs

let wrap p x =
  let r = x mod p in
  if r < 0 then r + p else r

(* ---- normalized construction ---------------------------------------- *)

let merge_adjacent segs =
  let rec go = function
    | (v1, w1) :: (v2, w2) :: rest when Tvalue.equal v1 v2 -> go ((v1, w1 + w2) :: rest)
    | s :: rest -> s :: go rest
    | [] -> []
  in
  go segs

let create ~period segs =
  if period <= 0 then invalid_arg "Waveform.create: period must be positive";
  List.iter
    (fun (_, w) -> if w <= 0 then invalid_arg "Waveform.create: segment width must be positive")
    segs;
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 segs in
  if total <> period then
    invalid_arg
      (Printf.sprintf "Waveform.create: segment widths sum to %d, period is %d" total period);
  { period; segs = merge_adjacent segs; early = 0; late = 0 }

let const ~period v = create ~period [ (v, period) ]

let with_skew ~early ~late w =
  if early > 0 || late < 0 then invalid_arg "Waveform.with_skew: need early <= 0 <= late";
  { w with early; late }

let equal a b =
  a.period = b.period && a.early = b.early && a.late = b.late
  && List.length a.segs = List.length b.segs
  && List.for_all2 (fun (v1, w1) (v2, w2) -> Tvalue.equal v1 v2 && w1 = w2) a.segs b.segs

(* ---- pieces: absolute [start, stop) covering [0, period) ------------- *)

type piece = { p_start : Timebase.ps; p_stop : Timebase.ps; p_val : Tvalue.t }

let pieces_of w =
  let _, rev =
    List.fold_left
      (fun (t, acc) (v, width) ->
        (t + width, { p_start = t; p_stop = t + width; p_val = v } :: acc))
      (0, []) w.segs
  in
  List.rev rev

let of_pieces ~period ~early ~late pieces =
  let segs =
    List.filter_map
      (fun p ->
        let width = p.p_stop - p.p_start in
        if width <= 0 then None else Some (p.p_val, width))
      pieces
  in
  let segs = merge_adjacent segs in
  { period; segs; early; late }

let value_at w t =
  let t = wrap w.period t in
  let rec go at = function
    | [] -> assert false
    | (v, width) :: rest -> if t < at + width then v else go (at + width) rest
  in
  go 0 w.segs

(* ---- modular intervals ----------------------------------------------- *)

(* An interval is (start, width) with start in [0, period), 0 <= width <=
   period.  [covers] tests membership of an instant. *)

let iv_covers p (s, width) x =
  if width >= p then true else wrap p (x - s) < width

let iv_intersect p (s1, w1) (s2, w2) =
  if w1 = 0 || w2 = 0 then false
  else if w1 >= p || w2 >= p then true
  else wrap p (s2 - s1) < w1 || wrap p (s1 - s2) < w2

(* ---- sweep construction ---------------------------------------------- *)

(* Build a waveform by sampling a value function on the elementary
   regions delimited by a list of breakpoints. *)
let of_breakpoints ~period bps value_of =
  let bps = List.map (wrap period) bps in
  let bps = List.sort_uniq Int.compare (0 :: bps) in
  let rec regions = function
    | [] -> []
    | [ last ] -> [ (last, period) ]
    | a :: (b :: _ as rest) -> (a, b) :: regions rest
  in
  let pieces =
    List.map (fun (a, b) -> { p_start = a; p_stop = b; p_val = value_of a }) (regions bps)
  in
  of_pieces ~period ~early:0 ~late:0 pieces

let of_intervals ~period ~inside ~outside ivals =
  (* (start, stop): stop < start wraps; stop = start is empty. *)
  let norm (s, e) =
    let width =
      let d = e - s in
      if d = 0 then 0 else if d < 0 then d + period else min d period
    in
    (wrap period s, width)
  in
  let ivals = List.filter (fun (_, w) -> w > 0) (List.map norm ivals) in
  if ivals = [] then const ~period outside
  else
    let bps = List.concat_map (fun (s, w) -> [ s; s + w ]) ivals in
    of_breakpoints ~period bps (fun x ->
        if List.exists (fun iv -> iv_covers period iv x) ivals then inside else outside)

(* ---- rotation and delay ---------------------------------------------- *)

let rotate w d =
  let d = wrap w.period d in
  if d = 0 then w
  else
    let shifted =
      List.concat_map
        (fun p ->
          let s = p.p_start + d and e = p.p_stop + d in
          if e <= w.period then [ { p with p_start = s; p_stop = e } ]
          else if s >= w.period then
            [ { p with p_start = s - w.period; p_stop = e - w.period } ]
          else
            [ { p with p_start = s; p_stop = w.period };
              { p with p_start = 0; p_stop = e - w.period } ])
        (pieces_of w)
    in
    let sorted = List.sort (fun a b -> Int.compare a.p_start b.p_start) shifted in
    of_pieces ~period:w.period ~early:w.early ~late:w.late sorted

let delay ~dmin ~dmax w =
  if dmin < 0 || dmax < dmin then invalid_arg "Waveform.delay: need 0 <= dmin <= dmax";
  let w = rotate w dmin in
  { w with late = w.late + (dmax - dmin) }

(* ---- transitions ------------------------------------------------------ *)

(* Circular transition list: (time, before, after). *)
let transitions w =
  match pieces_of w with
  | [] | [ _ ] -> []
  | first :: _ as pieces ->
    let rec pairs prev = function
      | [] -> []
      | p :: rest -> (p.p_start, prev.p_val, p.p_val) :: pairs p rest
    in
    let last = List.nth pieces (List.length pieces - 1) in
    let inner = match pieces with [] -> [] | p :: rest -> pairs p rest in
    if Tvalue.equal last.p_val first.p_val then inner
    else (0, last.p_val, first.p_val) :: inner

(* ---- materialization --------------------------------------------------- *)

let materialize w =
  if w.early = 0 && w.late = 0 then w
  else
    let trans = transitions w in
    if trans = [] then { w with early = 0; late = 0 }
    else
      let p = w.period in
      let win_width = w.late - w.early in
      if win_width >= p then
        (* Uncertainty covers the whole cycle: every instant may be in
           some transition window. *)
        let v =
          List.fold_left
            (fun acc (_, before, after) ->
              Tvalue.merge_uncertain acc (Tvalue.worst_edge ~before ~after))
            (let _, before, after = List.hd trans in
             Tvalue.worst_edge ~before ~after)
            (List.tl trans)
        in
        const ~period:p v
      else
        let windows =
          List.map
            (fun (t, before, after) ->
              ((wrap p (t + w.early), win_width), Tvalue.worst_edge ~before ~after))
            trans
        in
        let bps =
          List.concat_map (fun ((s, width), _) -> [ s; s + width ]) windows
          @ List.map (fun pc -> pc.p_start) (pieces_of w)
        in
        let value_of x =
          let covering =
            List.filter_map
              (fun (iv, v) -> if iv_covers p iv x then Some v else None)
              windows
          in
          match covering with
          | [] -> value_at w x
          | v :: rest -> List.fold_left Tvalue.merge_uncertain v rest
        in
        of_breakpoints ~period:p bps value_of

(* ---- pointwise maps ---------------------------------------------------- *)

let map f w =
  let segs = merge_adjacent (List.map (fun (v, width) -> (f v, width)) w.segs) in
  { w with segs }

let is_const w = match w.segs with [ _ ] -> true | _ -> false

let check_periods ws =
  match ws with
  | [] -> invalid_arg "Waveform: empty input list"
  | w :: rest ->
    List.iter
      (fun w' -> if w'.period <> w.period then invalid_arg "Waveform: period mismatch")
      rest;
    w.period

let mapn f ws =
  let p = check_periods ws in
  (* If all inputs but (at most) one are constant, the combination cannot
     fold skews together, so the varying input's skew is preserved — this
     is what keeps pulse widths intact through gated clocks whose other
     inputs are stable (§2.8). *)
  let varying = List.filter (fun w -> not (is_const w)) ws in
  match varying with
  | [] -> const ~period:p (f (List.map (fun w -> List.hd w.segs |> fst) ws))
  | [ v ] ->
    let g x =
      f (List.map (fun w -> if w == v then x else List.hd w.segs |> fst) ws)
    in
    map g v
  | _ ->
    let ms = List.map materialize ws in
    let bps = List.concat_map (fun m -> List.map (fun pc -> pc.p_start) (pieces_of m)) ms in
    of_breakpoints ~period:p bps (fun x -> f (List.map (fun m -> value_at m x) ms))

let map2 f a b =
  mapn (function [ x; y ] -> f x y | _ -> assert false) [ a; b ]

let map3 f a b c =
  mapn (function [ x; y; z ] -> f x y z | _ -> assert false) [ a; b; c ]

(* ---- windows and stability -------------------------------------------- *)

type window = { w_start : Timebase.ps; w_stop : Timebase.ps }

(* Circular pieces: like [pieces_of] on the materialized waveform but
   with the wrap-spanning segment (equal first/last values) merged into a
   single piece whose stop exceeds the period. *)
let circular_pieces m =
  match pieces_of m with
  | [] -> []
  | [ p ] -> [ p ]
  | first :: _ as pieces ->
    let n = List.length pieces in
    let last = List.nth pieces (n - 1) in
    if Tvalue.equal first.p_val last.p_val then
      let merged =
        { p_start = last.p_start; p_stop = first.p_stop + m.period; p_val = first.p_val }
      in
      (match List.filteri (fun i _ -> i > 0 && i < n - 1) pieces with
      | [] -> [ merged ]
      | middle -> middle @ [ merged ])
    else pieces

let edge_windows ~from_v ~to_v m =
  let m = materialize m in
  let pieces = circular_pieces m in
  let n = List.length pieces in
  if n <= 1 then []
  else
    let arr = Array.of_list pieces in
    let get i = arr.((i + n) mod n) in
    let out = ref [] in
    for i = 0 to n - 1 do
      let p = arr.(i) in
      let prev = get (i - 1) and next = get (i + 1) in
      (match p.p_val with
      | Tvalue.Rise when Tvalue.equal from_v Tvalue.V0 && Tvalue.equal to_v Tvalue.V1 ->
        out := { w_start = p.p_start; w_stop = p.p_stop } :: !out
      | Tvalue.Fall when Tvalue.equal from_v Tvalue.V1 && Tvalue.equal to_v Tvalue.V0 ->
        out := { w_start = p.p_start; w_stop = p.p_stop } :: !out
      | Tvalue.Change | Tvalue.Unknown ->
        if Tvalue.equal prev.p_val from_v && Tvalue.equal next.p_val to_v then
          out := { w_start = p.p_start; w_stop = p.p_stop } :: !out
      | Tvalue.V0 | Tvalue.V1 | Tvalue.Stable | Tvalue.Rise | Tvalue.Fall -> ());
      (* Instantaneous from_v -> to_v boundary. *)
      if Tvalue.equal p.p_val from_v && Tvalue.equal next.p_val to_v then
        let t = wrap m.period p.p_stop in
        out := { w_start = t; w_stop = t } :: !out
    done;
    List.sort (fun a b -> Int.compare a.w_start b.w_start) !out

let rising_windows m = edge_windows ~from_v:Tvalue.V0 ~to_v:Tvalue.V1 m

let falling_windows m = edge_windows ~from_v:Tvalue.V1 ~to_v:Tvalue.V0 m

let change_windows w =
  let m = materialize w in
  let pieces = circular_pieces m in
  let n = List.length pieces in
  if n <= 1 then []
  else
    let arr = Array.of_list pieces in
    let out = ref [] in
    for i = 0 to n - 1 do
      let p = arr.(i) in
      let next = arr.((i + 1) mod n) in
      if Tvalue.is_changing p.p_val then
        out := { w_start = p.p_start; w_stop = p.p_stop } :: !out
      else if
        Tvalue.is_stable p.p_val && Tvalue.is_stable next.p_val
        && not (Tvalue.equal p.p_val next.p_val)
      then
        let t = wrap m.period p.p_stop in
        out := { w_start = t; w_stop = t } :: !out
    done;
    List.sort (fun a b -> Int.compare a.w_start b.w_start) !out

let runs_where pred ~period pieces =
  (* Group consecutive satisfying pieces into runs of (start, stop). *)
  let runs =
    List.fold_left
      (fun runs p ->
        if not (pred p.p_val) then runs
        else
          match runs with
          | (s, e) :: rest when e = p.p_start -> (s, p.p_stop) :: rest
          | _ -> (p.p_start, p.p_stop) :: runs)
      [] pieces
    |> List.rev
  in
  match runs with
  | [] -> []
  | [ (0, e) ] when e = period -> [ (0, period) ]
  | (0, e0) :: _ ->
    (* A run touching time 0 joins a run ending at the period (wrap). *)
    let last_s, last_e = List.nth runs (List.length runs - 1) in
    if last_e = period && List.length runs > 1 then
      let middle = List.filteri (fun i _ -> i > 0 && i < List.length runs - 1) runs in
      let joined = (last_s, last_e + e0) in
      List.map (fun (s, e) -> (s, e - s)) (middle @ [ joined ])
    else List.map (fun (s, e) -> (s, e - s)) runs
  | _ -> List.map (fun (s, e) -> (s, e - s)) runs

let intervals_where pred w =
  let m = materialize w in
  runs_where pred ~period:m.period (pieces_of m)

let delay_rise_fall ~rise:(rmin, rmax) ~fall:(fmin, fmax) w =
  if rmin < 0 || rmax < rmin || fmin < 0 || fmax < fmin then
    invalid_arg "Waveform.delay_rise_fall: bad delay ranges";
  let m = materialize w in
  let value_known =
    List.for_all
      (fun (v, _) ->
        match v with
        | Tvalue.V0 | Tvalue.V1 | Tvalue.Rise | Tvalue.Fall -> true
        | Tvalue.Stable | Tvalue.Change | Tvalue.Unknown -> false)
      m.segs
  in
  (* The per-edge reconstruction assumes a coherent signal: every Rise
     window sits between a 0 and a 1, every Fall window between a 1 and
     a 0.  Degenerate patterns (e.g. a Rise returning to 0) fall back to
     the conservative envelope. *)
  let coherent =
    let pieces = circular_pieces m in
    let n = List.length pieces in
    n <= 1
    ||
    let arr = Array.of_list pieces in
    let ok = ref true in
    for i = 0 to n - 1 do
      let prev = arr.((i + n - 1) mod n) and next = arr.((i + 1) mod n) in
      (match arr.(i).p_val with
      | Tvalue.Rise ->
        if not (Tvalue.equal prev.p_val Tvalue.V0 && Tvalue.equal next.p_val Tvalue.V1)
        then ok := false
      | Tvalue.Fall ->
        if not (Tvalue.equal prev.p_val Tvalue.V1 && Tvalue.equal next.p_val Tvalue.V0)
        then ok := false
      | Tvalue.V0 | Tvalue.V1 | Tvalue.Stable | Tvalue.Change | Tvalue.Unknown -> ())
    done;
    !ok
  in
  if not (value_known && coherent) then None
  else
    let p = m.period in
    let rising = rising_windows m and falling = falling_windows m in
    if rising = [] && falling = [] then Some m
    else
      (* Each transition window moves by its own edge delay; between
         windows the level is the post-value of the nearest preceding
         window.  Overlapping windows merge to Change. *)
      let windows =
        List.map
          (fun { w_start; w_stop } ->
            (wrap p (w_start + rmin), w_stop - w_start + (rmax - rmin), Tvalue.Rise,
             Tvalue.V1))
          rising
        @ List.map
            (fun { w_start; w_stop } ->
              (wrap p (w_start + fmin), w_stop - w_start + (fmax - fmin), Tvalue.Fall,
               Tvalue.V0))
            falling
      in
      (* The delayed windows must preserve the source's transition
         ordering: for every source-consecutive pair of edges
         (circularly, including the wrap), the earlier edge must finish
         its delayed window before the later edge's begins.  A slow fall
         completing after the next cycle's fast rise violates this, and
         the exact reconstruction below would be wrong — fall back to
         the conservative envelope instead. *)
      let ordered =
        let tagged =
          List.map (fun w -> (w, rmin, rmax)) rising
          @ List.map (fun w -> (w, fmin, fmax)) falling
        in
        let in_source_order =
          List.sort
            (fun ({ w_start = a; _ }, _, _) ({ w_start = b; _ }, _, _) ->
              Int.compare a b)
            tagged
        in
        let rec pairs_ok = function
          | ({ w_stop = e1; _ }, _, dmax1) :: (({ w_start = s2; _ }, dmin2, _) :: _ as rest)
            ->
            e1 + dmax1 <= s2 + dmin2 && pairs_ok rest
          | [ _ ] | [] -> true
        in
        match in_source_order with
        | [] | [ _ ] -> pairs_ok in_source_order
        | ({ w_start = s0; _ }, dmin0, _) :: _ ->
          let { w_stop = el; _ }, _, dmaxl =
            List.nth in_source_order (List.length in_source_order - 1)
          in
          pairs_ok in_source_order && el + dmaxl <= s0 + p + dmin0
      in
      if not ordered then None
      else
        let bps = List.concat_map (fun (s, width, _, _) -> [ s; s + width ]) windows in
        let value_of x =
          let covering =
            List.filter_map
              (fun (s, width, v, _) -> if iv_covers p (s, width) x then Some v else None)
              windows
          in
          match covering with
          | v :: rest -> List.fold_left Tvalue.merge_uncertain v rest
          | [] ->
            (* level after the nearest window ending before x; sound
               because the windows are disjoint and in source order *)
            let best =
              List.fold_left
                (fun acc (s, width, _, post) ->
                  let stop = wrap p (s + width) in
                  let d = wrap p (x - stop) in
                  match acc with
                  | Some (bd, _) when bd <= d -> acc
                  | _ -> Some (d, post))
                None windows
            in
            (match best with Some (_, post) -> post | None -> Tvalue.V0)
        in
        Some (of_breakpoints ~period:p bps value_of)

let pulse_intervals v w =
  runs_where (Tvalue.equal v) ~period:w.period (pieces_of w)

let stable_everywhere w =
  let m = materialize w in
  List.for_all (fun (v, _) -> Tvalue.is_stable v) m.segs

let stable_over w ~start ~width =
  if width <= 0 then true
  else if width >= w.period then stable_everywhere w
  else
    let unstable = intervals_where (fun v -> not (Tvalue.is_stable v)) w in
    let target = (wrap w.period start, width) in
    not (List.exists (fun iv -> iv_intersect w.period iv target) unstable)

let stable_interval_around w t =
  let t = wrap w.period t in
  let stable = intervals_where Tvalue.is_stable w in
  List.find_opt (fun iv -> iv_covers w.period iv t) stable

(* ---- printing ---------------------------------------------------------- *)

let pp ppf w =
  let rec go at = function
    | [] -> ()
    | (v, width) :: rest ->
      if at > 0 then Format.pp_print_string ppf "  ";
      Format.fprintf ppf "%a %a" Tvalue.pp v Timebase.pp_ns at;
      go (at + width) rest
  in
  go 0 w.segs;
  if w.early <> 0 || w.late <> 0 then
    Format.fprintf ppf "  (skew %a/+%a)" Timebase.pp_ns w.early Timebase.pp_ns w.late
