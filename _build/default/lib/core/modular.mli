(** Section-by-section (modular) verification (§2.5.2).

    Stable assertions on interface signals are the key to verifying a
    design in sections: each section assumes its inputs' assertions and
    must prove the assertions on the signals it generates.  "If no
    section of a design being verified has a timing error and if all of
    the interface signals of all such sections have consistent
    assertions on them, then the entire design must be free of timing
    errors."

    In this system an assertion is part of the signal name, so two
    sections that spell an interface signal identically agree by
    construction; what remains to check is that every interface signal
    {e carries} an assertion (otherwise one section silently treats
    another's output as always-stable), that exactly one section drives
    it, and that the driving section's computed waveform satisfies the
    assertion (the per-section stable-assertion check does that part). *)

type section = {
  s_name : string;
  s_netlist : Netlist.t;
}

type issue =
  | Unasserted_interface of { signal : string; sections : string list }
      (** a signal shared between sections with no assertion: its
          consumers would assume it always stable *)
  | Multiply_driven of { signal : string; sections : string list }
      (** more than one section generates the signal *)
  | Undriven_interface of { signal : string; sections : string list }
      (** an asserted interface signal that no section generates — legal
          during design (the assertion stands in for future hardware),
          reported so the designer tracks it *)

val interface_signals : section list -> (string * string list) list
(** Signals appearing in more than one section, with the sections using
    them.  Keyed by full signal name (assertions included). *)

val check_interfaces : section list -> issue list
(** The cross-section consistency check SCALD runs after each section is
    verified. *)

type result = {
  m_sections : (string * Verifier.report) list;
  m_issues : issue list;
  m_clean : bool;
      (** every section verified clean and no {!Unasserted_interface} or
          {!Multiply_driven} issues: the whole design is then free of
          timing errors *)
}

val verify : section list -> result
(** Verify every section independently and check the interfaces. *)

val pp_issue : Format.formatter -> issue -> unit
val pp : Format.formatter -> result -> unit
