type kind = Precision_clock | Nonprecision_clock | Stable

type range =
  | Unit_at of float
  | Between of float * float
  | For_ns of float * float

type t = {
  kind : kind;
  skew_ns : (float * float) option;
  ranges : range list;
  low_active : bool;
}

(* ---- parsing ----------------------------------------------------------- *)

(* A tiny cursor-based scanner; assertion specs are short strings. *)

type cursor = { text : string; mutable pos : int }

let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_spaces cur =
  while
    match peek cur with
    | Some (' ' | '\t') -> true
    | Some _ | None -> false
  do
    advance cur
  done

let scan_number cur =
  skip_spaces cur;
  let start = cur.pos in
  (match peek cur with Some '-' -> advance cur | Some _ | None -> ());
  let digits = ref 0 in
  let continue = ref true in
  while !continue do
    match peek cur with
    | Some ('0' .. '9') ->
      incr digits;
      advance cur
    | Some '.' -> advance cur
    | Some _ | None -> continue := false
  done;
  if !digits = 0 then Error (Printf.sprintf "expected a number at position %d" start)
  else
    match float_of_string_opt (String.sub cur.text start (cur.pos - start)) with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "malformed number at position %d" start)

let ( let* ) = Result.bind

let scan_skew cur =
  skip_spaces cur;
  match peek cur with
  | Some '(' ->
    advance cur;
    let* minus = scan_number cur in
    skip_spaces cur;
    (match peek cur with
    | Some ',' ->
      advance cur;
      let* plus = scan_number cur in
      skip_spaces cur;
      (match peek cur with
      | Some ')' ->
        advance cur;
        if minus > 0. then Error "skew: minus component must be <= 0"
        else if plus < 0. then Error "skew: plus component must be >= 0"
        else Ok (Some (minus, plus))
      | Some _ | None -> Error "skew: expected ')'")
    | Some _ | None -> Error "skew: expected ','")
  | Some _ | None -> Ok None

let scan_range cur =
  let* start = scan_number cur in
  skip_spaces cur;
  match peek cur with
  | Some '-' ->
    advance cur;
    let* stop = scan_number cur in
    Ok (Between (start, stop))
  | Some '+' ->
    advance cur;
    let* width = scan_number cur in
    Ok (For_ns (start, width))
  | Some _ | None -> Ok (Unit_at start)

let rec scan_ranges cur acc =
  let* r = scan_range cur in
  skip_spaces cur;
  match peek cur with
  | Some ',' ->
    advance cur;
    scan_ranges cur (r :: acc)
  | Some _ | None -> Ok (List.rev (r :: acc))

let parse spec =
  let cur = { text = spec; pos = 0 } in
  skip_spaces cur;
  let* kind =
    match peek cur with
    | Some ('P' | 'p') -> advance cur; Ok Precision_clock
    | Some ('C' | 'c') -> advance cur; Ok Nonprecision_clock
    | Some ('S' | 's') -> advance cur; Ok Stable
    | Some c -> Error (Printf.sprintf "expected P, C or S, found '%c'" c)
    | None -> Error "empty assertion"
  in
  let* skew_ns =
    match kind with
    | Stable -> Ok None
    | Precision_clock | Nonprecision_clock -> scan_skew cur
  in
  let* ranges = scan_ranges cur [] in
  skip_spaces cur;
  let* low_active =
    match peek cur with
    | Some ('L' | 'l') -> advance cur; Ok true
    | Some c -> Error (Printf.sprintf "trailing garbage '%c' in assertion" c)
    | None -> Ok false
  in
  skip_spaces cur;
  if cur.pos <> String.length spec then Error "trailing garbage in assertion"
  else Ok { kind; skew_ns; ranges; low_active }

(* ---- rendering --------------------------------------------------------- *)

let float_to_string f =
  if Float.is_integer f then string_of_int (int_of_float f) else Printf.sprintf "%g" f

let range_to_string = function
  | Unit_at a -> float_to_string a
  | Between (a, b) -> float_to_string a ^ "-" ^ float_to_string b
  | For_ns (a, w) -> float_to_string a ^ "+" ^ Printf.sprintf "%.1f" w

let to_string a =
  let kind = match a.kind with Precision_clock -> "P" | Nonprecision_clock -> "C" | Stable -> "S" in
  let skew =
    match a.skew_ns with
    | None -> ""
    | Some (m, p) -> Printf.sprintf "(%g,%g)" m p
  in
  let ranges = String.concat "," (List.map range_to_string a.ranges) in
  let pol = if a.low_active then " L" else "" in
  kind ^ skew ^ ranges ^ pol

let equal a b = to_string a = to_string b

let pp ppf a = Format.pp_print_string ppf (to_string a)

(* ---- waveform construction --------------------------------------------- *)

type defaults = {
  precision_skew : Timebase.ps * Timebase.ps;
  nonprecision_skew : Timebase.ps * Timebase.ps;
}

let s1_defaults =
  { precision_skew = (-1000, 1000); nonprecision_skew = (-5000, 5000) }

let range_interval tb = function
  | Unit_at a ->
    let s = Timebase.ps_of_units tb a in
    (s, s + Timebase.clock_unit tb)
  | Between (a, b) -> (Timebase.ps_of_units tb a, Timebase.ps_of_units tb b)
  | For_ns (a, w) ->
    let s = Timebase.ps_of_units tb a in
    (s, s + Timebase.ps_of_ns w)

let intervals tb a = List.map (range_interval tb) a.ranges

let to_waveform defaults tb a =
  let period = Timebase.period tb in
  let ivals = intervals tb a in
  match a.kind with
  | Stable ->
    Waveform.of_intervals ~period ~inside:Tvalue.Stable ~outside:Tvalue.Change ivals
  | Precision_clock | Nonprecision_clock ->
    let inside, outside =
      if a.low_active then (Tvalue.V0, Tvalue.V1) else (Tvalue.V1, Tvalue.V0)
    in
    let early, late =
      match a.skew_ns with
      | Some (m, p) -> (Timebase.ps_of_ns m, Timebase.ps_of_ns p)
      | None -> (
        match a.kind with
        | Precision_clock -> defaults.precision_skew
        | Nonprecision_clock -> defaults.nonprecision_skew
        | Stable -> assert false)
    in
    Waveform.of_intervals ~period ~inside ~outside ivals |> Waveform.with_skew ~early ~late
