type t = {
  base : string;
  vector : (int * int) option;
  assertion : Assertion.t option;
  complemented : bool;
}

let trim = String.trim

(* Find the start of an assertion suffix: the last '.' that is followed
   by P, C or S and then a character that can begin an assertion spec
   (digit, space, or '(').  This allows periods inside names and decimal
   points inside the spec itself. *)
let split_assertion s =
  let n = String.length s in
  let is_kind c = match Char.uppercase_ascii c with 'P' | 'C' | 'S' -> true | _ -> false in
  let can_start c =
    match c with '0' .. '9' | ' ' | '(' -> true | _ -> false
  in
  let rec find i best =
    if i >= n - 1 then best
    else if
      s.[i] = '.' && is_kind s.[i + 1]
      && (i + 2 >= n || can_start s.[i + 2])
      && (i = 0 || s.[i - 1] = ' ')
    then find (i + 1) (Some i)
    else find (i + 1) best
  in
  match find 0 None with
  | None -> (s, None)
  | Some i -> (String.sub s 0 i, Some (String.sub s (i + 1) (n - i - 1)))

let split_vector base =
  let n = String.length base in
  if n = 0 || base.[n - 1] <> '>' then (base, None)
  else
    match String.rindex_opt base '<' with
    | None -> (base, None)
    | Some lt ->
      let inside = String.sub base (lt + 1) (n - lt - 2) in
      (match String.index_opt inside ':' with
      | None -> (
        match int_of_string_opt (trim inside) with
        | Some b -> (base, Some (b, b))
        | None -> (base, None))
      | Some colon ->
        let lo = trim (String.sub inside 0 colon) in
        let hi = trim (String.sub inside (colon + 1) (String.length inside - colon - 1)) in
        (match int_of_string_opt lo, int_of_string_opt hi with
        | Some a, Some b -> (base, Some (a, b))
        | _, _ -> (base, None)))

let parse s =
  let s = trim s in
  if s = "" then Error "empty signal name"
  else
    let complemented, s =
      if String.length s >= 1 && s.[0] = '-' then
        (true, trim (String.sub s 1 (String.length s - 1)))
      else (false, s)
    in
    let body, assertion_text = split_assertion s in
    let body = trim body in
    if body = "" then Error "signal name has no base"
    else
      let base, vector = split_vector body in
      match assertion_text with
      | None -> Ok { base; vector; assertion = None; complemented }
      | Some spec -> (
        match Assertion.parse spec with
        | Ok a -> Ok { base; vector; assertion = Some a; complemented }
        | Error e -> Error (Printf.sprintf "%s: bad assertion: %s" base e))

let parse_exn s =
  match parse s with Ok t -> t | Error e -> invalid_arg ("Signal_name.parse: " ^ e)

let width t =
  match t.vector with
  | None -> 1
  | Some (a, b) -> abs (b - a) + 1

let to_string t =
  let buf = Buffer.create 32 in
  if t.complemented then Buffer.add_string buf "- ";
  Buffer.add_string buf t.base;
  (match t.assertion with
  | None -> ()
  | Some a ->
    Buffer.add_string buf " .";
    Buffer.add_string buf (Assertion.to_string a));
  Buffer.contents buf

let key t =
  match t.assertion with
  | None -> t.base
  | Some a -> t.base ^ " ." ^ Assertion.to_string a

let pp ppf t = Format.pp_print_string ppf (to_string t)
