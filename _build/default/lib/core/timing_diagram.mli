(** ASCII timing diagrams.

    A quick visual rendering of the evaluated waveforms over one clock
    period — the pictorial counterpart of the Figure 3-10 listing.
    Value marks:

    {v
    _  definitely 0          =  stable (value unknown)
    ^  definitely 1          x  possibly changing
    /  rising                ?  undefined
    \  falling               *  several values within one column
    v} *)

val pp_waveform : ?columns:int -> Format.formatter -> Waveform.t -> unit
(** One signal as a row of marks ([columns] defaults to 64).  The
    waveform is materialized first, so skew appears as [/], [\] or [x]
    regions. *)

val pp : ?columns:int -> ?signals:string list -> Format.formatter -> Eval.t -> unit
(** A full diagram: a time ruler in ns, then one labelled row per net
    (or per requested signal), sorted by name. *)
