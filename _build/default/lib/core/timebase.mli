(** Time representation for the Timing Verifier.

    The thesis uses two sets of units (§2.3): absolute time (nanoseconds)
    for component timing properties, and designer-chosen {e clock units}
    for clocks and assertions, which scale with the circuit period.

    Internally all times are exact integer picoseconds, so that modular
    arithmetic on the clock period is exact and value lists can be
    required to sum to the period precisely (§2.8). *)

type ps = int
(** A duration or instant in picoseconds. *)

type t
(** A timebase: the circuit clock period together with the size of one
    designer clock unit. *)

val make : period_ns:float -> clock_unit_ns:float -> t
(** [make ~period_ns ~clock_unit_ns] builds a timebase.

    @raise Invalid_argument if the period is not positive, the clock unit
    is not positive, or the period is not an integral number of
    picoseconds. *)

val of_period_ps : period:ps -> clock_unit:ps -> t
(** Exact constructor, picosecond granularity. *)

val period : t -> ps
(** Clock period in picoseconds. *)

val clock_unit : t -> ps
(** One designer clock unit in picoseconds. *)

val units_per_period : t -> float
(** Number of clock units in one period (need not be integral). *)

val ps_of_ns : float -> ps
(** Convert nanoseconds to picoseconds, rounding to the nearest ps. *)

val ns_of_ps : ps -> float
(** Convert picoseconds back to nanoseconds. *)

val ps_of_units : t -> float -> ps
(** Convert designer clock units to picoseconds. *)

val units_of_ps : t -> ps -> float
(** Convert picoseconds to designer clock units. *)

val wrap : t -> ps -> ps
(** [wrap tb x] reduces an instant modulo the period, yielding a value in
    [\[0, period)]. Assertions are taken modulo the cycle time (§3.2). *)

val pp_ns : Format.formatter -> ps -> unit
(** Print a time as nanoseconds with one fractional digit, e.g. ["25.5"]. *)
