(** Deterministic pseudo-random numbers (splitmix64).

    Benchmarks and tests need reproducible synthetic designs, so all
    randomness in {!Netgen} flows from one of these seeded generators —
    never from the global [Random] state. *)

type t

val create : int -> t
(** A generator seeded from an integer. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [\[0, n)].  @raise Invalid_argument
    if [n <= 0]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform choice.  @raise Invalid_argument on an empty array. *)

val weighted : t -> (int * 'a) list -> 'a
(** Choice weighted by the integer weights.  @raise Invalid_argument on
    an empty list or non-positive total weight. *)
