(** Synthetic pipelined-processor designs (the §3.3.2 workload).

    The thesis's execution statistics (Tables 3-1 … 3-3) were measured
    on a major portion of the S-1 Mark IIA: 6 357 MSI ECL chips
    expanding to 8 282 primitives of 22 types, about 1.3 primitives per
    chip, a mean vector width of 6.5 bits.  That design database is not
    available, so this generator produces deterministic synthetic
    designs with the same published shape:

    - a pipeline of stages, each with register banks, a combinational
      cloud of gates/multiplexers, occasional register files with gated
      write enables, and latches;
    - one chip = one macro call in the emitted SCALD HDL, so the macro
      expander sees the same chips-to-primitives structure;
    - timing-clean by construction (a CORR-style minimum delay after
      every register suppresses the §4.2.3 same-clock hold correlation,
      exactly as the S-1 designers did), with an optional knob to inject
      genuine set-up violations;
    - widths drawn to a ≈6.5-bit mean, exercising the vector symmetry
      that keeps one primitive per data path.

    The design is emitted as SCALD HDL text, so scaling benchmarks
    exercise the whole pipeline: parse, macro expansion (both passes)
    and verification. *)

module Rng = Rng
(** Re-exported so that downstream benchmarks can draw reproducible
    randomness from the same generator. *)

type config = {
  seed : int;
  chips : int;     (** target number of chips (macro calls) *)
  stages : int;    (** pipeline depth *)
  levels : int;    (** combinational levels per stage (1–5 keeps the
                       design timing-clean at a 50 ns cycle) *)
  broken_registers : int;
      (** number of registers given a deliberately slow data path, each
          producing a genuine set-up violation *)
}

val default_config : config
(** The thesis scale: seed 1, 6 357 chips, 16 stages, 4 levels, clean. *)

val scaled : ?seed:int -> ?broken_registers:int -> chips:int -> unit -> config
(** A smaller or larger design with proportional structure. *)

type design

val generate : config -> design

val n_chips : design -> int
(** Chips actually emitted (within a few of the target). *)

val to_sdl : design -> string
(** The design as SCALD HDL source text. *)

val to_netlist : design -> Scald_sdl.Expander.expansion
(** Parse and expand the emitted source (the full front-end pipeline).
    @raise Invalid_argument if expansion fails — a generator bug. *)
