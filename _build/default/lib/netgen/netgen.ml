module Rng = Rng

type config = {
  seed : int;
  chips : int;
  stages : int;
  levels : int;
  broken_registers : int;
}

let default_config =
  { seed = 1; chips = 6357; stages = 16; levels = 4; broken_registers = 0 }

let scaled ?(seed = 1) ?(broken_registers = 0) ~chips () =
  { seed; chips; stages = max 2 (chips / 400); levels = 4; broken_registers }

type design = { d_chips : int; d_sdl : string }

let n_chips d = d.d_chips
let to_sdl d = d.d_sdl

(* ---- fixed macro library ---------------------------------------------------- *)

let gate_kinds =
  (* (macro name, primitive head, n inputs, min/max delay ns) *)
  [|
    ("OR2 CHIP", "2 OR", 2, (1.0, 2.9));
    ("OR3 CHIP", "3 OR", 3, (1.0, 3.1));
    ("OR4 CHIP", "4 OR", 4, (1.1, 3.3));
    ("OR5 CHIP", "5 OR", 5, (1.2, 3.5));
    ("AND2 CHIP", "2 AND", 2, (1.0, 2.9));
    ("AND3 CHIP", "3 AND", 3, (1.0, 3.1));
    ("AND4 CHIP", "4 AND", 4, (1.1, 3.3));
    ("XOR2 CHIP", "2 XOR", 2, (1.5, 3.5));
    ("CHG1 CHIP", "1 CHG", 1, (1.5, 3.0));
    ("CHG2 CHIP", "2 CHG", 2, (2.0, 4.0));
    ("CHG3 CHIP", "3 CHG", 3, (2.5, 4.5));
    ("CHG4 CHIP", "4 CHG", 4, (3.0, 4.9));
    ("BUF CHIP", "BUF", 1, (1.0, 2.9));
    ("NOT CHIP", "NOT", 1, (1.0, 2.9));
  |]

let macro_library buf =
  let add = Buffer.add_string buf in
  Array.iter
    (fun (mname, head, n, (dmin, dmax)) ->
      let params = List.init n (fun i -> Printf.sprintf "A%d /P" i) in
      add
        (Printf.sprintf "MACRO %s;\nPARAMETER %s, Q /P;\nBODY\n  %s (DELAY=%g/%g) (%s) -> Q /P;\nEND;\n\n"
           mname
           (String.concat ", " params)
           head dmin dmax
           (String.concat ", " params)))
    gate_kinds;
  add
    "MACRO MUX CHIP;\nPARAMETER A /P, B /P, S /P, Q /P;\nBODY\n\
    \  2 MUX (DELAY=1.2/3.3, SELDELAY=0.3/1.2) (A /P, B /P, S /P) -> Q /P;\nEND;\n\n";
  add
    "MACRO REG CHIP;\nPARAMETER I /P, CK /P, Q /P;\nBODY\n\
    \  REG (DELAY=1.5/4.5) (I /P, CK /P) -> Q /P;\n\
    \  SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (I /P, CK /P);\nEND;\n\n";
  add
    "MACRO REG RS CHIP;\nPARAMETER I /P, CK /P, S /P, R /P, Q /P;\nBODY\n\
    \  REG RS (DELAY=1.5/4.5) (I /P, CK /P, S /P, R /P) -> Q /P;\n\
    \  SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (I /P, CK /P);\nEND;\n\n";
  add
    "MACRO LATCH CHIP;\nPARAMETER I /P, E /P, Q /P;\nBODY\n\
    \  LATCH (DELAY=1.0/3.5) (I /P, E /P) -> Q /P;\n\
    \  SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (I /P, - E /P);\nEND;\n\n";
  add
    "MACRO LATCH RS CHIP;\nPARAMETER I /P, E /P, S /P, R /P, Q /P;\nBODY\n\
    \  LATCH RS (DELAY=1.0/3.5) (I /P, E /P, S /P, R /P) -> Q /P;\n\
    \  SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (I /P, - E /P);\nEND;\n\n";
  add
    "MACRO CORR CHIP;\nPARAMETER I /P, Q /P;\nBODY\n\
    \  BUF (DELAY=4.0/4.0) (I /P) -> Q /P;\nEND;\n\n";
  add
    "MACRO SLOW CHIP;\nPARAMETER I /P, Q /P;\nBODY\n\
    \  BUF (DELAY=38.0/42.0) (I /P) -> Q /P;\nEND;\n\n";
  add
    "MACRO RAM CHIP;\nPARAMETER I /P, A /P, CS /P, WE /P, DO /P;\nBODY\n\
    \  3 CHG (DELAY=3.0/6.0) (A /P, CS /P, WE /P) -> RP /M;\n\
    \  1 CHG (DELAY=1.5/3.0) (RP /M) -> DO /P;\n\
    \  SETUP HOLD CHK (SETUP=4.5, HOLD=-1.0) (I /P, - WE /P);\n\
    \  SETUP HOLD CHK (SETUP=3.5, HOLD=1.0) (CS /P, - WE /P);\n\
    \  SETUP RISE HOLD FALL CHK (SETUP=3.5, HOLD=1.0) (A /P, WE /P);\n\
    \  MIN PULSE WIDTH (WIDTH=4.0/0.0) (WE /P);\nEND;\n\n";
  add
    "MACRO WE GATE CHIP;\nPARAMETER CK /P, EN /P, WE /P;\nBODY\n\
    \  2 AND (DELAY=1.0/2.9) (CK /P &H, EN /P) -> WE /P;\nEND;\n\n"

(* ---- width distribution (mean ~= 6.5 bits, §3.3.2) ----------------------------- *)

let draw_width rng =
  Rng.weighted rng
    [ (38, 1); (12, 2); (12, 4); (14, 8); (14, 16); (5, 32); (5, 36) ]

(* ---- signals --------------------------------------------------------------------- *)

(* A pool entry: (name with subscript, width, combinational depth). *)
type sig_entry = { s_name : string; s_width : int; s_depth : int }

let vec name width = if width = 1 then name else Printf.sprintf "%s<0:%d>" name (width - 1)

(* ---- generation -------------------------------------------------------------------- *)

let generate cfg =
  let rng = Rng.create cfg.seed in
  let buf = Buffer.create (cfg.chips * 64) in
  let add = Buffer.add_string buf in
  let chips = ref 0 in
  add "-- synthetic pipelined design (netgen)\n";
  add "PERIOD 50.0;\nCLOCK UNIT 6.25;\nDEFAULT WIRE DELAY 0.0/2.0;\n\n";
  macro_library buf;
  (* Global clocks and controls; clock runs are de-skewed, so their
     listed wire delay is zero. *)
  add "WIRE DELAY (CK MAIN .P7-8) = 0.0/0.0;\n";
  add "WIRE DELAY (CK WE .P2-3) = 0.0/0.0;\n";
  add "WIRE DELAY (LE .P3-4) = 0.0/0.0;\n";
  add "ZERO () -> GND;\n\n";
  let chips_per_stage = max 8 (cfg.chips / cfg.stages) in
  (* Stage chip mix chosen so that primitives/chips ~= 1.3 (§3.3.2):
     every register is followed by a CORR delay chip. *)
  let regs_per_stage = max 2 (27 * chips_per_stage / 100) in
  let latches_per_stage = max 1 (2 * chips_per_stage / 100) in
  let rams_per_stage = if chips_per_stage >= 200 then 1 else 0 in
  let gates_per_stage =
    max 2
      (chips_per_stage - (2 * regs_per_stage) - latches_per_stage - (2 * rams_per_stage))
  in
  (* Primary inputs: stable through the hold window of the first rank of
     registers (changing only 47.5..50 ns). *)
  let primary =
    List.init (max 4 (regs_per_stage / 2)) (fun i ->
        let width = draw_width rng in
        let name = Printf.sprintf "IN %d" i in
        add (Printf.sprintf "WIDTH (%s .S0-7.6) = %d;\n" (vec name width) width);
        { s_name = vec name width ^ " .S0-7.6"; s_width = width; s_depth = 0 })
  in
  add "\n";
  let broken_left = ref cfg.broken_registers in
  let stmts = ref [] in
  let pool = ref primary in
  for stage = 0 to cfg.stages - 1 do
    let pool_arr = Array.of_list !pool in
    let shallow =
      match List.filter (fun s -> s.s_depth = 0) !pool with
      | [] -> pool_arr
      | l -> Array.of_list l
    in
    add (Printf.sprintf "-- stage %d\n" stage);
    let add = fun line -> stmts := line :: !stmts in
    (* Combinational cloud. *)
    let cloud = ref [] in
    let all_here () =
      let extra = Array.of_list !cloud in
      Array.append pool_arr extra
    in
    for g = 0 to gates_per_stage - 1 do
      let is_mux = Rng.bool rng 0.08 in
      if is_mux then begin
        let a = Rng.choose rng (all_here ()) in
        let b = Rng.choose rng (all_here ()) in
        let s = Rng.choose rng (all_here ()) in
        let depth = 1 + max a.s_depth (max b.s_depth s.s_depth) in
        if depth <= cfg.levels then begin
          let name = vec (Printf.sprintf "P%d M%d" stage g) a.s_width in
          add
            (Printf.sprintf "MUX CHIP (%s, %s, %s) -> %s;\n" a.s_name b.s_name s.s_name
               name);
          incr chips;
          cloud := { s_name = name; s_width = a.s_width; s_depth = depth } :: !cloud
        end
      end
      else begin
        let mname, _, n, _ = Rng.choose rng gate_kinds in
        let ins = List.init n (fun _ -> Rng.choose rng (all_here ())) in
        let depth = 1 + List.fold_left (fun acc s -> max acc s.s_depth) 0 ins in
        if depth <= cfg.levels then begin
          let width = (List.hd ins).s_width in
          let name = vec (Printf.sprintf "P%d G%d" stage g) width in
          add
            (Printf.sprintf "%s (%s) -> %s;\n" mname
               (String.concat ", " (List.map (fun s -> s.s_name) ins))
               name);
          incr chips;
          cloud := { s_name = name; s_width = width; s_depth = depth } :: !cloud
        end
      end
    done;
    (* Register file with a gated write enable. *)
    let ram_outs = ref [] in
    for r = 0 to rams_per_stage - 1 do
      let we = Printf.sprintf "P%d WE%d" stage r in
      add (Printf.sprintf "WE GATE CHIP (CK WE .P2-3, WE EN .S0-8) -> %s;\n" we);
      let data = Rng.choose rng shallow in
      let adr = Rng.choose rng shallow in
      let cs = Rng.choose rng shallow in
      let out = vec (Printf.sprintf "P%d RAM%d" stage r) data.s_width in
      add
        (Printf.sprintf "RAM CHIP (%s, %s, %s, %s) -> %s;\n" data.s_name adr.s_name
           cs.s_name we out);
      chips := !chips + 2;
      ram_outs :=
        { s_name = out; s_width = data.s_width; s_depth = max 0 (cfg.levels - 2) }
        :: !ram_outs
    done;
    (* Latches: shallow data so they satisfy their closing-edge checks. *)
    let latch_outs = ref [] in
    for l = 0 to latches_per_stage - 1 do
      let data = Rng.choose rng shallow in
      let out = vec (Printf.sprintf "P%d L%d" stage l) data.s_width in
      let rs = Rng.bool rng 0.25 in
      if rs then
        add
          (Printf.sprintf "LATCH RS CHIP (%s, LE .P3-4, GND, GND) -> %s;\n" data.s_name
             out)
      else add (Printf.sprintf "LATCH CHIP (%s, LE .P3-4) -> %s;\n" data.s_name out);
      incr chips;
      latch_outs :=
        { s_name = out; s_width = data.s_width; s_depth = max 0 (cfg.levels - 1) }
        :: !latch_outs
    done;
    (* Stage registers + CORR minimum-delay chips; their outputs form
       the next stage's depth-0 pool. *)
    let sources = Array.concat [ all_here (); Array.of_list !ram_outs; Array.of_list !latch_outs ] in
    let next_pool = ref [] in
    for r = 0 to regs_per_stage - 1 do
      let src = Rng.choose rng sources in
      let data =
        if !broken_left > 0 && stage > 0 then begin
          (* Inject a genuine set-up violation via a slow path. *)
          decr broken_left;
          let slow = vec (Printf.sprintf "P%d SLOW%d" stage r) src.s_width in
          add (Printf.sprintf "SLOW CHIP (%s) -> %s;\n" src.s_name slow);
          incr chips;
          slow
        end
        else src.s_name
      in
      let q = vec (Printf.sprintf "P%d R%d" stage r) src.s_width in
      let rs = Rng.bool rng 0.12 in
      if rs then add (Printf.sprintf "REG RS CHIP (%s, CK MAIN .P7-8, GND, GND) -> %s;\n" data q)
      else add (Printf.sprintf "REG CHIP (%s, CK MAIN .P7-8) -> %s;\n" data q);
      let d = vec (Printf.sprintf "P%d N%d" (stage + 1) r) src.s_width in
      add (Printf.sprintf "CORR CHIP (%s) -> %s;\n" q d);
      chips := !chips + 2;
      next_pool := { s_name = d; s_width = src.s_width; s_depth = 0 } :: !next_pool
    done;
    pool := !next_pool
  done;
  (* Emit the chip statements in globally shuffled order: the real
     design database is not topologically sorted, and the initial
     work-list order determines how many relaxation passes (events per
     primitive) the verifier needs -- the thesis measured 2.4. *)
  let arr = Array.of_list !stmts in
  for i = Array.length arr - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.iter (Buffer.add_string buf) arr;
  { d_chips = !chips; d_sdl = Buffer.contents buf }

let to_netlist d =
  match Scald_sdl.Expander.load d.d_sdl with
  | Ok e -> e
  | Error msg -> invalid_arg ("Netgen.to_netlist: generator bug: " ^ msg)
