type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* splitmix64: fast, well distributed, trivially seedable. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let bool t p = float_of_int (int t 1_000_000) /. 1_000_000. < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted: non-positive total weight";
  let pick = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted: empty list"
    | (w, x) :: rest -> if pick < acc + w then x else go (acc + w) rest
  in
  go 0 choices
