lib/netgen/rng.mli:
