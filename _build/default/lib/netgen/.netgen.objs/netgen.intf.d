lib/netgen/netgen.mli: Rng Scald_sdl
