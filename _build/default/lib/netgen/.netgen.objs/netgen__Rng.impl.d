lib/netgen/rng.ml: Array Int64 List
