lib/netgen/netgen.ml: Array Buffer List Printf Rng Scald_sdl String
