(** Worst-case path searching (§1.4.2) — the GRASP / Race Analysis
    System class of timing checker the thesis compares against.

    Starting and terminating points are determined by the location of
    registers and latches (as in RAS) or given by hand (as in GRASP);
    the system searches every combinational path between them, summing
    minimum and maximum element delays, and reports paths outside the
    designer's limits.

    Its fundamental limitation (§4.1): it cannot take the value
    behaviour of control signals into account, so circuits whose timing
    is value-dependent — e.g. the complementary-select multiplexers of
    Figure 2-6 — produce spurious long paths and irrelevant error
    messages that the Timing Verifier's case analysis avoids. *)

open Scald_core

type path = {
  p_from : string;  (** source net *)
  p_to : string;    (** sink net *)
  p_min : Timebase.ps;
  p_max : Timebase.ps;
  p_through : string list;  (** instance names along the witness path *)
}

type report = {
  r_paths : path list;  (** aggregated per (source, sink): extreme
                            delays with a witness for the max *)
  r_sources : int;
  r_sinks : int;
  r_loops_cut : int;  (** feedback loops hit the search limit and were
                          cut, as GRASP requires the user to do *)
}

type full_path = {
  f_from : string;
  f_to : string;
  f_delays : Delay.t list;  (** every wire+element delay along the path,
                                in traversal order *)
  f_through : string list;
}

val enumerate :
  ?sources:int list -> ?sinks:int list -> ?limit:int -> Netlist.t -> full_path list
(** Every individual combinational path (not aggregated per endpoint
    pair), with its component delays — the input to probability-based
    analysis (§4.2.4).  At most [limit] paths (default 10 000) are
    returned. *)

val analyze : ?sources:int list -> ?sinks:int list -> Netlist.t -> report
(** Search all paths.  Default sources are register/latch outputs and
    asserted or undriven primary inputs; default sinks are the data
    inputs of registers, latches and checkers. *)

val worst : report -> path option
(** The path with the largest maximum delay. *)

val violations : report -> max_delay:Timebase.ps -> path list
(** Paths whose maximum delay exceeds the designer's limit — including
    any spurious ones through never-sensitized logic. *)

val pp_path : Format.formatter -> path -> unit
val pp : Format.formatter -> report -> unit

(** Automatic detection of the clock-skew correlation problem (§4.2.3).

    The Timing Verifier reasons in absolute times, so a register
    reloaded from its own output through a short path looks like a hold
    violation whenever the clock skew exceeds the feedback path's
    minimum delay — a {e false} error, because the clock edge and the
    output change move together.  The thesis's workaround is a designer-
    inserted [CORR] fictitious delay at least as long as the skew, and
    notes that an automatic method would be preferable.  This module is
    that method: it finds every same-clock register-to-register path
    whose minimum delay is less than the destination's clock uncertainty
    plus hold time, and computes the CORR delay that suppresses the
    false error. *)
module Corr : sig
  type advice = {
    a_register : string;    (** destination register/latch instance *)
    a_data_net : string;    (** its data input net *)
    a_source : string;      (** the same-clock source register *)
    a_min_path : Timebase.ps;      (** minimum feedback-path delay *)
    a_clock_spread : Timebase.ps;  (** clock-edge uncertainty at the pin *)
    a_hold : Timebase.ps;          (** hold requirement found on the pin *)
    a_required_delay : Timebase.ps;
        (** the CORR delay to insert: [clock_spread + hold - min_path] *)
  }

  val advise : Netlist.t -> advice list
  (** All register/latch data inputs that need a CORR delay. *)

  val clock_spread : Netlist.t -> int -> Timebase.ps
  (** Edge uncertainty of a clock net: assertion skew plus the delay
      spreads accumulated through its buffer/gate chain. *)

  val pp_advice : Format.formatter -> advice -> unit
end
