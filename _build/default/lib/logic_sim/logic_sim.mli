(** A minimum/maximum-based gate-level logic simulator (§1.4.1.1).

    This is the baseline the thesis compares against: a TEGAS/SAGE/LAMP
    class event-driven simulator that models each component with a
    min/max delay pair and uses extra signal states beyond true and
    false — [X] (unknown), [U] (signal rising), [D] (signal falling) and
    [E] (potential spike/hazard) — to represent uncertainty in when
    outputs change.

    Unlike the Timing Verifier it needs the full value behaviour of
    every signal, so exhaustively checking the timing of a circuit
    requires simulating every input pattern that exercises a distinct
    timing path — an exponentially large set.  {!verify_exhaustive}
    measures exactly that cost. *)

type value =
  | L0
  | L1
  | LX  (** unknown / uninitialized *)
  | LU  (** rising: between the minimum and maximum delay of a 0-to-1 change *)
  | LD  (** falling *)
  | LE  (** potential spike, hazard or race *)

val pp_value : Format.formatter -> value -> unit
val value_equal : value -> value -> bool

type gate_kind = And | Or | Xor | Nand | Nor | Not | Buf

type circuit
(** A mutable gate-level circuit under construction. *)

val create : unit -> circuit

val add_net : circuit -> string -> int
(** A named net; initial value [LX]. *)

val add_gate :
  circuit ->
  ?name:string ->
  gate_kind ->
  dmin:int ->
  dmax:int ->
  inputs:int list ->
  output:int ->
  unit
(** Delays in integer time units (e.g. tenths of a ns).
    @raise Invalid_argument on arity mismatch or a doubly driven net. *)

val n_gates : circuit -> int
val n_nets : circuit -> int
val find_net : circuit -> string -> int option

(** {1 Simulation} *)

type trace = (int * value) list
(** Chronological [(time, new value)] list for one net. *)

type result = {
  traces : trace array;        (** indexed by net id *)
  events : int;                (** value-change events processed *)
  final : value array;         (** value of every net at the horizon *)
}

val simulate : circuit -> stimuli:(int * (int * value) list) list -> horizon:int -> result
(** Drive the given nets with [(time, value)] waveforms and run the
    event wheel until [horizon].  Driven nets must not be gate
    outputs. *)

val pulses : trace -> at_least:value -> (int * int) list
(** [(start, width)] of every maximal interval in which the trace holds
    exactly the given value — used to detect runt pulses on clocks. *)

val min_pulse_violations : trace -> level:value -> min_width:int -> horizon:int -> int
(** Number of pulses of [level] narrower than [min_width]. *)

(** {1 Exhaustive timing verification by simulation} *)

type exhaustive = {
  vectors_simulated : int;  (** 2^n input transitions *)
  total_events : int;
  settle_min : int;  (** earliest time any vector's outputs settled *)
  settle_max : int;  (** latest settle time over all vectors — the
                         measured worst-case propagation delay *)
}

val verify_exhaustive :
  circuit -> inputs:int list -> outputs:int list -> settle:int -> exhaustive
(** Apply every one of the [2^n] input vectors in sequence (Gray-coded,
    so each step is a realistic single- or multi-bit transition), let
    the circuit settle for [settle] units after each, and measure when
    the outputs stop changing.  This is what complete timing
    verification via logic simulation costs; the Timing Verifier covers
    the same question in a single symbolic cycle (§2.1). *)

(** {1 Storage elements}

    Edge-triggered registers and transparent latches, so whole
    synchronous designs can be simulated — what checking timing by
    simulation actually requires (§1.4.1). *)

val add_register :
  circuit ->
  ?name:string ->
  dmin:int ->
  dmax:int ->
  data:int ->
  clock:int ->
  output:int ->
  unit ->
  unit
(** Rising-edge triggered: when [clock] goes from 0 to 1 the value then
    on [data] appears on [output] between [dmin] and [dmax] later.  A
    clock edge from/to [X] produces [X] — the simulator cannot tell
    whether the register clocked. *)

val add_latch :
  circuit ->
  ?name:string ->
  dmin:int ->
  dmax:int ->
  data:int ->
  enable:int ->
  output:int ->
  unit ->
  unit
(** Transparent while [enable] is 1; holds the captured value while 0. *)
