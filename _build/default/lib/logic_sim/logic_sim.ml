type value = L0 | L1 | LX | LU | LD | LE

let pp_value ppf v =
  Format.pp_print_char ppf
    (match v with L0 -> '0' | L1 -> '1' | LX -> 'X' | LU -> 'U' | LD -> 'D' | LE -> 'E')

let value_equal (a : value) b = a = b

type gate_kind = And | Or | Xor | Nand | Nor | Not | Buf

type element =
  | Gate of gate_kind
  | Register  (* inputs: [| data; clock |] *)
  | Latch     (* inputs: [| data; enable |] *)

type gate = {
  g_name : string;
  g_elem : element;
  g_dmin : int;
  g_dmax : int;
  g_inputs : int array;
  g_output : int;
  mutable g_state : value;  (* held value for storage elements *)
  mutable g_last_clock : value;
}

type circuit = {
  mutable nets : string array;
  mutable n_nets : int;
  mutable gates : gate array;
  mutable n_gates : int;
  mutable fanout : int list array;  (* net -> gate ids *)
  mutable driven : bool array;
  by_name : (string, int) Hashtbl.t;
}

let create () =
  {
    nets = [||];
    n_nets = 0;
    gates = [||];
    n_gates = 0;
    fanout = [||];
    driven = [||];
    by_name = Hashtbl.create 64;
  }

let grow arr n dummy =
  if n < Array.length arr then arr
  else Array.append arr (Array.make (max 16 (Array.length arr)) dummy)

let add_net c name =
  c.nets <- grow c.nets c.n_nets "";
  c.fanout <- grow c.fanout c.n_nets [];
  c.driven <- grow c.driven c.n_nets false;
  let id = c.n_nets in
  c.nets.(id) <- name;
  c.fanout.(id) <- [];
  c.driven.(id) <- false;
  c.n_nets <- c.n_nets + 1;
  Hashtbl.replace c.by_name name id;
  id

let arity = function
  | Not | Buf -> Some 1
  | And | Or | Xor | Nand | Nor -> None

let dummy_gate =
  { g_name = ""; g_elem = Gate Buf; g_dmin = 0; g_dmax = 0; g_inputs = [||];
    g_output = -1; g_state = LX; g_last_clock = LX }

let add_element c ?name elem ~dmin ~dmax ~inputs ~output =
  if dmin < 0 || dmax < dmin then invalid_arg "Logic_sim.add_gate: need 0 <= dmin <= dmax";
  (match elem with
  | Gate kind -> (
    match arity kind with
    | Some n when List.length inputs <> n ->
      invalid_arg "Logic_sim.add_gate: arity mismatch"
    | Some _ | None -> ())
  | Register | Latch ->
    if List.length inputs <> 2 then invalid_arg "Logic_sim: storage elements take 2 inputs");
  if inputs = [] then invalid_arg "Logic_sim.add_gate: no inputs";
  if c.driven.(output) then invalid_arg "Logic_sim.add_gate: net already driven";
  c.driven.(output) <- true;
  c.gates <- grow c.gates c.n_gates dummy_gate;
  let id = c.n_gates in
  let name = match name with Some n -> n | None -> Printf.sprintf "g%d" id in
  c.gates.(id) <-
    { g_name = name; g_elem = elem; g_dmin = dmin; g_dmax = dmax;
      g_inputs = Array.of_list inputs; g_output = output; g_state = LX;
      g_last_clock = LX };
  c.n_gates <- c.n_gates + 1;
  List.iter (fun i -> c.fanout.(i) <- id :: c.fanout.(i)) inputs;
  ignore id

let add_gate c ?name kind ~dmin ~dmax ~inputs ~output =
  add_element c ?name (Gate kind) ~dmin ~dmax ~inputs ~output

let add_register c ?name ~dmin ~dmax ~data ~clock ~output () =
  add_element c ?name Register ~dmin ~dmax ~inputs:[ data; clock ] ~output

let add_latch c ?name ~dmin ~dmax ~data ~enable ~output () =
  add_element c ?name Latch ~dmin ~dmax ~inputs:[ data; enable ] ~output

let n_gates c = c.n_gates
let n_nets c = c.n_nets
let find_net c name = Hashtbl.find_opt c.by_name name

(* ---- three-valued gate functions -------------------------------------------- *)

type tri = T0 | T1 | TX

let tri_of_value = function L0 -> T0 | L1 -> T1 | LX | LU | LD | LE -> TX

let tri_not = function T0 -> T1 | T1 -> T0 | TX -> TX

let tri_and a b =
  match a, b with
  | T0, _ | _, T0 -> T0
  | T1, T1 -> T1
  | TX, _ | _, TX -> TX

let tri_or a b =
  match a, b with
  | T1, _ | _, T1 -> T1
  | T0, T0 -> T0
  | TX, _ | _, TX -> TX

let tri_xor a b =
  match a, b with
  | TX, _ | _, TX -> TX
  | T0, x | x, T0 -> x
  | T1, T1 -> T0

let eval_gate kind ins =
  let fold f init = Array.fold_left (fun acc v -> f acc (tri_of_value v)) init ins in
  let v =
    match kind with
    | And -> fold tri_and T1
    | Nand -> tri_not (fold tri_and T1)
    | Or -> fold tri_or T0
    | Nor -> tri_not (fold tri_or T0)
    | Xor -> fold tri_xor T0
    | Not -> tri_not (tri_of_value ins.(0))
    | Buf -> tri_of_value ins.(0)
  in
  match v with T0 -> L0 | T1 -> L1 | TX -> LX

(* ---- event wheel --------------------------------------------------------------- *)

module Imap = Map.Make (Int)

type trace = (int * value) list

type result = { traces : trace array; events : int; final : value array }

type sim = {
  c : circuit;
  mutable wheel : (int * value) list Imap.t;  (* time -> (net, value) *)
  values : value array;
  target : value array;  (* last scheduled final value per net *)
  final_at : int array;  (* time of the last scheduled final transition *)
  trace_rev : (int * value) list array;
  mutable n_events : int;
}

let schedule s time net v =
  s.wheel <-
    Imap.update time
      (function None -> Some [ (net, v) ] | Some l -> Some ((net, v) :: l))
      s.wheel

(* A gate's inputs changed at [time]: decide what to do with its output
   (§1.4.1.1 — transitional values between dmin and dmax, E on potential
   spikes). *)
let update_gate s time (g : gate) =
  let ins = Array.map (fun i -> s.values.(i)) g.g_inputs in
  let v_new =
    match g.g_elem with
    | Gate kind -> eval_gate kind ins
    | Register ->
      let clock = ins.(1) in
      let prev = g.g_last_clock in
      g.g_last_clock <- clock;
      (match prev, clock with
      | L0, L1 ->
        (* a clean rising edge samples the data *)
        g.g_state <- (match ins.(0) with L0 -> L0 | L1 -> L1 | _ -> LX);
        g.g_state
      | (L0 | L1 | LX | LU | LD | LE), (LX | LU | LD | LE) ->
        (* the simulator cannot tell whether the register clocked *)
        g.g_state <- LX;
        LX
      | _, (L0 | L1) -> g.g_state)
    | Latch -> (
      match ins.(1) with
      | L1 ->
        g.g_state <- (match ins.(0) with L0 -> L0 | L1 -> L1 | _ -> LX);
        g.g_state
      | L0 -> g.g_state
      | LX | LU | LD | LE ->
        g.g_state <- LX;
        LX)
  in
  let out = g.g_output in
  if not (value_equal v_new s.target.(out)) then begin
    let t_min = time + g.g_dmin and t_max = time + g.g_dmax in
    (* If a previously scheduled change is still in flight, the output
       may glitch: mark the transitional region as a potential spike. *)
    let in_flight = s.final_at.(out) > t_min in
    let trans =
      if in_flight then LE
      else
        match s.target.(out), v_new with
        | L0, L1 -> LU
        | L1, L0 -> LD
        | _, _ -> LX
    in
    if g.g_dmin <> g.g_dmax || in_flight then schedule s t_min out trans;
    schedule s t_max out v_new;
    s.target.(out) <- v_new;
    s.final_at.(out) <- t_max
  end

let apply_event s time (net, v) =
  if not (value_equal s.values.(net) v) then begin
    s.values.(net) <- v;
    s.trace_rev.(net) <- (time, v) :: s.trace_rev.(net);
    s.n_events <- s.n_events + 1;
    List.iter (fun gid -> update_gate s time s.c.gates.(gid)) s.c.fanout.(net)
  end

let simulate c ~stimuli ~horizon =
  let s =
    {
      c;
      wheel = Imap.empty;
      values = Array.make (max 1 c.n_nets) LX;
      target = Array.make (max 1 c.n_nets) LX;
      final_at = Array.make (max 1 c.n_nets) min_int;
      trace_rev = Array.make (max 1 c.n_nets) [];
      n_events = 0;
    }
  in
  List.iter
    (fun (net, waveform) ->
      if c.driven.(net) then invalid_arg "Logic_sim.simulate: stimulus on a driven net";
      List.iter (fun (t, v) -> schedule s t net v) waveform)
    stimuli;
  let rec run () =
    match Imap.min_binding_opt s.wheel with
    | Some (t, evs) when t <= horizon ->
      s.wheel <- Imap.remove t s.wheel;
      List.iter (apply_event s t) (List.rev evs);
      run ()
    | Some _ | None -> ()
  in
  run ();
  {
    traces = Array.map List.rev s.trace_rev;
    events = s.n_events;
    final = Array.copy s.values;
  }

(* ---- pulse analysis --------------------------------------------------------------- *)

let pulses trace ~at_least =
  let rec go current_start acc = function
    | [] -> List.rev acc  (* an open pulse at the horizon is not counted *)
    | (t, v) :: rest -> (
      match current_start with
      | Some s when not (value_equal v at_least) -> go None ((s, t - s) :: acc) rest
      | Some _ -> go current_start acc rest
      | None -> if value_equal v at_least then go (Some t) acc rest else go None acc rest)
  in
  go None [] trace

let min_pulse_violations trace ~level ~min_width ~horizon =
  ignore horizon;
  pulses trace ~at_least:level
  |> List.filter (fun (_, w) -> w < min_width)
  |> List.length

(* ---- exhaustive verification --------------------------------------------------------- *)

type exhaustive = {
  vectors_simulated : int;
  total_events : int;
  settle_min : int;
  settle_max : int;
}

let verify_exhaustive c ~inputs ~outputs ~settle =
  let n = List.length inputs in
  if n > 24 then invalid_arg "Logic_sim.verify_exhaustive: too many inputs";
  let vectors = 1 lsl n in
  let gray k = k lxor (k lsr 1) in
  let stimuli =
    List.mapi
      (fun bit net ->
        let waveform =
          List.init vectors (fun k ->
              let v = if gray k land (1 lsl bit) <> 0 then L1 else L0 in
              (k * settle, v))
        in
        (net, waveform))
      inputs
  in
  let horizon = vectors * settle in
  let r = simulate c ~stimuli ~horizon in
  let out_events =
    List.concat_map (fun o -> List.map fst r.traces.(o)) outputs |> List.sort Int.compare
  in
  let settle_of k =
    (* last output event within this vector's window, relative to its start *)
    let start = k * settle and stop = (k + 1) * settle in
    List.fold_left
      (fun acc t -> if t >= start && t < stop then max acc (t - start) else acc)
      0 out_events
  in
  let settles = List.init vectors settle_of in
  {
    vectors_simulated = vectors;
    total_events = r.events;
    settle_min = List.fold_left min max_int settles;
    settle_max = List.fold_left max 0 settles;
  }
