lib/cells/circuits.mli: Netlist Scald_core Verifier
