lib/cells/cells.ml: Delay List Netlist Primitive Printf Scald_core Timebase
