lib/cells/ecl10k.ml: Cells Delay Netlist Primitive Printf Scald_core Timebase
