lib/cells/ecl10k.mli: Netlist Scald_core
