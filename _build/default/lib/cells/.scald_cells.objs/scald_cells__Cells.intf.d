lib/cells/cells.mli: Delay Netlist Scald_core
