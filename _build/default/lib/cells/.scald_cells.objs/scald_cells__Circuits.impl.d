lib/cells/circuits.ml: Cells Delay Directive Eval List Netlist Primitive Printf Scald_core Timebase Tvalue Verifier Waveform
