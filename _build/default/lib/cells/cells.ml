open Scald_core

let counter = ref 0

let internal nl prefix =
  incr counter;
  let id = Netlist.signal nl (Printf.sprintf "%s$%d /M" prefix !counter) in
  Netlist.set_wire_delay nl id Delay.zero;
  id

(* ---- gates (Figure 3-8) ------------------------------------------------- *)

let gate_delay = Delay.of_ns 1.0 2.9

let gate2 nl ?name fn invert ~a ~b out =
  ignore
    (Netlist.add nl ?name
       (Primitive.Gate { fn; n_inputs = 2; invert; delay = gate_delay })
       ~inputs:[ a; b ] ~output:(Some out))

let or2 nl ?name ~a ~b out = gate2 nl ?name Primitive.Or false ~a ~b out
let nor2 nl ?name ~a ~b out = gate2 nl ?name Primitive.Or true ~a ~b out
let and2 nl ?name ~a ~b out = gate2 nl ?name Primitive.And false ~a ~b out
let nand2 nl ?name ~a ~b out = gate2 nl ?name Primitive.And true ~a ~b out

let xor2 nl ?name ~a ~b out =
  ignore
    (Netlist.add nl ?name
       (Primitive.Gate
          { fn = Primitive.Xor; n_inputs = 2; invert = false; delay = Delay.of_ns 1.5 3.5 })
       ~inputs:[ a; b ] ~output:(Some out))

let inv nl ?name ~a out =
  ignore
    (Netlist.add nl ?name
       (Primitive.Buf { invert = true; delay = gate_delay })
       ~inputs:[ a ] ~output:(Some out))

let buf nl ?name ?(delay = gate_delay) ~a out =
  ignore
    (Netlist.add nl ?name
       (Primitive.Buf { invert = false; delay })
       ~inputs:[ a ] ~output:(Some out))

(* ---- multiplexer (Figure 3-6) --------------------------------------------- *)

let mux2 nl ?name ~a ~b ~sel out =
  ignore
    (Netlist.add nl ?name
       (Primitive.Mux2 { delay = Delay.of_ns 1.2 3.3; select_extra = Delay.of_ns 0.3 1.2 })
       ~inputs:[ a; b; sel ] ~output:(Some out))

(* ---- registers (Figures 2-1, 3-7) ------------------------------------------ *)

let reg_delay = Delay.of_ns 1.5 4.5

let register nl ?name ~data ~clock out =
  let name = match name with Some n -> n | None -> "REG" in
  ignore
    (Netlist.add nl ~name
       (Primitive.Reg { delay = reg_delay; has_set_reset = false })
       ~inputs:[ data; clock ] ~output:(Some out));
  ignore
    (Netlist.add nl
       ~name:(name ^ " SETUP HOLD CHK")
       (Primitive.Setup_hold_check
          { setup = Timebase.ps_of_ns 2.5; hold = Timebase.ps_of_ns 1.5 })
       ~inputs:[ data; clock ] ~output:None)

let register_sr nl ?name ~data ~clock ~set ~reset out =
  let name = match name with Some n -> n | None -> "REG RS" in
  ignore
    (Netlist.add nl ~name
       (Primitive.Reg { delay = reg_delay; has_set_reset = true })
       ~inputs:[ data; clock; set; reset ] ~output:(Some out));
  ignore
    (Netlist.add nl
       ~name:(name ^ " SETUP HOLD CHK")
       (Primitive.Setup_hold_check
          { setup = Timebase.ps_of_ns 2.5; hold = Timebase.ps_of_ns 1.5 })
       ~inputs:[ data; clock ] ~output:None)

(* ---- latch (Figure 2-2) ------------------------------------------------------ *)

let latch nl ?name ~data ~enable out =
  let name = match name with Some n -> n | None -> "LATCH" in
  ignore
    (Netlist.add nl ~name
       (Primitive.Latch { delay = Delay.of_ns 1.0 3.5; has_set_reset = false })
       ~inputs:[ data; enable ] ~output:(Some out));
  (* The data must be stable around the latch's closing (falling enable)
     edge: check against the complement of the enable. *)
  let closing = { enable with Netlist.c_invert = not enable.Netlist.c_invert } in
  ignore
    (Netlist.add nl
       ~name:(name ^ " SETUP HOLD CHK")
       (Primitive.Setup_hold_check
          { setup = Timebase.ps_of_ns 2.5; hold = Timebase.ps_of_ns 1.5 })
       ~inputs:[ data; closing ] ~output:None)

(* ---- register file (Figure 3-5) ------------------------------------------------ *)

let chg n_inputs delay = Primitive.Gate { fn = Primitive.Chg; n_inputs; invert = false; delay }

let ram16 nl ?name ~size ~data ~adr ~cs ~we out =
  let name = match name with Some n -> n | None -> "16W RAM 10145A" in
  (* The output changes whenever the address, chip select or write
     enable do; the data inputs do not reach the output (DO is forced
     LOW during writes), they are only constrained by the checkers.  The
     two CHG gates of Figure 3-5 are in series, giving the 4.5/9.0 ns
     read-access range of the data sheet (7 ns typical). *)
  let read_path = internal nl (name ^ " READ") in
  Netlist.set_width nl read_path size;
  ignore
    (Netlist.add nl ~name:(name ^ " 3 CHG")
       (chg 3 (Delay.of_ns 3.0 6.0))
       ~inputs:[ adr; cs; we ] ~output:(Some read_path));
  ignore
    (Netlist.add nl ~name:(name ^ " CHG")
       (chg 1 (Delay.of_ns 1.5 3.0))
       ~inputs:[ Netlist.conn read_path ]
       ~output:(Some out));
  (* Constraints from the data sheet (Figures 3-2, 3-5). *)
  let not_we = { we with Netlist.c_invert = not we.Netlist.c_invert } in
  ignore
    (Netlist.add nl ~name:(name ^ " I SETUP HOLD CHK")
       (Primitive.Setup_hold_check
          { setup = Timebase.ps_of_ns 4.5; hold = Timebase.ps_of_ns (-1.0) })
       ~inputs:[ data; not_we ] ~output:None);
  ignore
    (Netlist.add nl ~name:(name ^ " CS SETUP HOLD CHK")
       (Primitive.Setup_hold_check
          { setup = Timebase.ps_of_ns 3.5; hold = Timebase.ps_of_ns 1.0 })
       ~inputs:[ cs; not_we ] ~output:None);
  ignore
    (Netlist.add nl ~name:(name ^ " A SETUP RISE HOLD FALL CHK")
       (Primitive.Setup_rise_hold_fall_check
          { setup = Timebase.ps_of_ns 3.5; hold = Timebase.ps_of_ns 1.0 })
       ~inputs:[ adr; we ] ~output:None);
  ignore
    (Netlist.add nl ~name:(name ^ " MIN PULSE WIDTH")
       (Primitive.Min_pulse_width { high = Timebase.ps_of_ns 4.0; low = 0 })
       ~inputs:[ we ] ~output:None)

(* ---- ALU with output latch (Figure 3-9) ------------------------------------------- *)

let alu_latch nl ?name ~size ~a ~b ~carry_in ~fn_select ~enable out =
  let name = match name with Some n -> n | None -> "ALU 10181" in
  let comb = internal nl (name ^ " F") in
  Netlist.set_width nl comb size;
  ignore
    (Netlist.add nl ~name:(name ^ " CHG")
       (chg 4 (Delay.of_ns 4.0 8.0))
       ~inputs:[ a; b; carry_in; fn_select ]
       ~output:(Some comb));
  ignore
    (Netlist.add nl ~name:(name ^ " LATCH")
       (Primitive.Latch { delay = Delay.of_ns 1.0 3.5; has_set_reset = false })
       ~inputs:[ Netlist.conn comb; enable ]
       ~output:(Some out));
  let closing = { enable with Netlist.c_invert = not enable.Netlist.c_invert } in
  ignore
    (Netlist.add nl ~name:(name ^ " SETUP HOLD CHK")
       (Primitive.Setup_hold_check
          { setup = Timebase.ps_of_ns 2.5; hold = Timebase.ps_of_ns 1.5 })
       ~inputs:[ Netlist.conn comb; closing ]
       ~output:None)

(* ---- larger structures -------------------------------------------------------- *)

let parity_tree nl ?name ~inputs out =
  let name = match name with Some n -> n | None -> "PARITY TREE" in
  let xor_delay = Delay.of_ns 1.5 3.5 in
  let rec reduce level = function
    | [] -> invalid_arg "Cells.parity_tree: no inputs"
    | [ last ] ->
      (* final buffer onto the named output, zero extra delay *)
      ignore
        (Netlist.add nl ~name:(name ^ " OUT")
           (Primitive.Buf { invert = false; delay = Delay.zero })
           ~inputs:[ last ] ~output:(Some out))
    | conns ->
      let rec pair acc = function
        | a :: b :: rest ->
          let t = internal nl (Printf.sprintf "%s L%d" name level) in
          ignore
            (Netlist.add nl
               ~name:(Printf.sprintf "%s XOR L%d.%d" name level (List.length acc))
               (Primitive.Gate
                  { fn = Primitive.Xor; n_inputs = 2; invert = false; delay = xor_delay })
               ~inputs:[ a; b ] ~output:(Some t));
          pair (Netlist.conn t :: acc) rest
        | [ a ] -> List.rev (a :: acc)
        | [] -> List.rev acc
      in
      reduce (level + 1) (pair [] conns)
  in
  reduce 0 inputs

let adder nl ?name ~size ~a ~b ~carry_in ~sum ~carry_out () =
  let name = match name with Some n -> n | None -> "ADDER" in
  Netlist.set_width nl sum size;
  ignore
    (Netlist.add nl ~name:(name ^ " SUM CHG")
       (chg 3 (Delay.of_ns 5.0 11.0))
       ~inputs:[ a; b; carry_in ] ~output:(Some sum));
  ignore
    (Netlist.add nl ~name:(name ^ " CARRY CHG")
       (chg 3 (Delay.of_ns 3.0 7.0))
       ~inputs:[ a; b; carry_in ] ~output:(Some carry_out))

let decoder nl ?name ~select out =
  let name = match name with Some n -> n | None -> "DECODER" in
  ignore
    (Netlist.add nl ~name:(name ^ " CHG")
       (chg 1 (Delay.of_ns 2.0 4.5))
       ~inputs:[ select ] ~output:(Some out))

let counter nl ?name ?(corr_ns = 4.0) ~clock ~enable out =
  let name = match name with Some n -> n | None -> "COUNTER" in
  (* increment logic from the counter output *)
  let corr = internal nl (name ^ " CORR") in
  buf nl ~name:(name ^ " CORR")
    ~delay:(Delay.of_ns corr_ns corr_ns)
    ~a:(Netlist.conn out) corr;
  let next = internal nl (name ^ " NEXT") in
  ignore
    (Netlist.add nl ~name:(name ^ " INC CHG")
       (chg 2 (Delay.of_ns 2.0 5.0))
       ~inputs:[ Netlist.conn corr; enable ]
       ~output:(Some next));
  register nl ~name:(name ^ " REG") ~data:(Netlist.conn next) ~clock out

let shift_register nl ?name ?(corr_ns = 4.0) ~stages ~data ~clock out =
  if stages < 1 then invalid_arg "Cells.shift_register: need at least one stage";
  let name = match name with Some n -> n | None -> "SHIFT REG" in
  let rec go i current =
    if i = stages - 1 then
      register nl ~name:(Printf.sprintf "%s STAGE %d" name i) ~data:current ~clock out
    else begin
      let q = internal nl (Printf.sprintf "%s Q%d" name i) in
      register nl ~name:(Printf.sprintf "%s STAGE %d" name i) ~data:current ~clock q;
      let d = internal nl (Printf.sprintf "%s D%d" name i) in
      buf nl
        ~name:(Printf.sprintf "%s CORR %d" name i)
        ~delay:(Delay.of_ns corr_ns corr_ns)
        ~a:(Netlist.conn q) d;
      go (i + 1) (Netlist.conn d)
    end
  in
  go 0 data
