open Scald_core

(* ---- Figure 2-5 / §3.2 ---------------------------------------------------- *)

type register_file = {
  rf_netlist : Netlist.t;
  rf_adr : int;
  rf_ram_out : int;
  rf_reg_out : int;
  rf_write_en : int;
}

let register_file_example ?(size = 32) () =
  let tb = Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25 in
  let nl = Netlist.create tb in
  (* Interface signals, with the assertions of §3.2. *)
  let w_data = Netlist.signal nl "W DATA .S0-6" in
  Netlist.set_width nl w_data size;
  let read_adr = Netlist.signal nl "READ ADR .S4-9" in
  Netlist.set_width nl read_adr 4;
  let write_adr = Netlist.signal nl "WRITE ADR .S0-6" in
  Netlist.set_width nl write_adr 4;
  let write = Netlist.signal nl "WRITE .S0-6 L" in
  let ck_we = Netlist.signal nl "CK .P2-3 L" in
  let ck_main = Netlist.signal nl "CK .P0-4" in
  (* Clock runs are hand-adjusted to the asserted skew; their listed
     interconnection delay is zero (the skew represents it). *)
  Netlist.set_wire_delay nl ck_we Delay.zero;
  Netlist.set_wire_delay nl ck_main Delay.zero;
  (* Multiplexed register-file address: read address in the second half
     of the cycle (clock low), write address in the first (clock high);
     the designer specified a 0.0/6.0 ns wire delay for these lines. *)
  let adr = Netlist.signal nl "ADR<0:3>" in
  Netlist.set_width nl adr 4;
  Netlist.set_wire_delay nl adr (Delay.of_ns 0.0 6.0);
  Cells.mux2 nl ~name:"ADR MUX"
    ~a:(Netlist.conn read_adr)
    ~b:(Netlist.conn write_adr)
    ~sel:(Netlist.conn ck_main)
    adr;
  (* Write-enable pulse: the clock gated by the WRITE control.  The &H
     directive checks WRITE is stable while the clock is asserted,
     assumes it enables the gate, and refers the clock timing to the
     gate output (§2.6). *)
  let write_en = Netlist.signal nl "WRITE EN" in
  Cells.and2 nl ~name:"WRITE EN GATE"
    ~a:(Netlist.conn ~invert:true ~directive:[ Directive.H ] ck_we)
    ~b:(Netlist.conn ~invert:true write)
    write_en;
  (* The register file itself. *)
  let ram_out = Netlist.signal nl "RAM OUT" in
  Netlist.set_width nl ram_out size;
  let cs = Netlist.signal nl "CS" in
  Cells.ram16 nl ~size
    ~data:(Netlist.conn w_data)
    ~adr:(Netlist.conn adr)
    ~cs:(Netlist.conn cs)
    ~we:(Netlist.conn write_en)
    ram_out;
  (* Output register, clocked at the start of the next cycle. *)
  let reg_out = Netlist.signal nl "REG OUT" in
  Netlist.set_width nl reg_out size;
  Cells.register nl ~name:"OUTPUT REG"
    ~data:(Netlist.conn ram_out)
    ~clock:(Netlist.conn ck_main)
    reg_out;
  { rf_netlist = nl; rf_adr = adr; rf_ram_out = ram_out; rf_reg_out = reg_out;
    rf_write_en = write_en }

(* ---- Figure 1-5 ------------------------------------------------------------ *)

type gated_clock = {
  gc_netlist : Netlist.t;
  gc_reg_clock : int;
  gc_reg_out : int;
}

let gated_clock_hazard ?(enable_stable_at = 2.5) () =
  let tb = Timebase.make ~period_ns:50.0 ~clock_unit_ns:10.0 in
  let nl = Netlist.create tb in
  let clock = Netlist.signal nl "CLOCK .P2-3" in
  Netlist.set_wire_delay nl clock Delay.zero;
  let enable =
    Netlist.signal nl (Printf.sprintf "ENABLE .S%g-3.5 L" enable_stable_at)
  in
  let reg_clock = Netlist.signal nl "REG CLOCK" in
  Cells.and2 nl ~name:"CLOCK GATE"
    ~a:(Netlist.conn ~directive:[ Directive.A ] clock)
    ~b:(Netlist.conn enable)
    reg_clock;
  let data = Netlist.signal nl "D .S0-2" in
  let reg_out = Netlist.signal nl "Q" in
  Cells.register nl ~name:"FIG 1-5 REG" ~data:(Netlist.conn data)
    ~clock:(Netlist.conn reg_clock) reg_out;
  { gc_netlist = nl; gc_reg_clock = reg_clock; gc_reg_out = reg_out }

(* ---- Figure 2-6 --------------------------------------------------------------- *)

type bypass = {
  bp_netlist : Netlist.t;
  bp_input : int;
  bp_output : int;
  bp_control : string;
}

(* Exact-delay elements so that the path arithmetic is exact: 10 ns input
   buffer, two 10 ns delay elements, two 5 ns multiplexers; every case
   path is 30 ns, the no-case worst path 40 ns. *)
let bypass_example () =
  let tb = Timebase.make ~period_ns:100.0 ~clock_unit_ns:10.0 in
  let nl = Netlist.create tb ~default_wire_delay:Delay.zero in
  let input = Netlist.signal nl "INPUT .S1-9" in
  let control = Netlist.signal nl "CONTROL SIGNAL .S0-10" in
  let exact ns = Delay.of_ns ns ns in
  let mux ~name ~a ~b ~sel out =
    ignore
      (Netlist.add nl ~name
         (Primitive.Mux2 { delay = exact 5.0; select_extra = Delay.zero })
         ~inputs:[ a; b; sel ] ~output:(Some out))
  in
  let n0 = Netlist.signal nl "N0" in
  Cells.buf nl ~name:"IN BUF" ~delay:(exact 10.0) ~a:(Netlist.conn input) n0;
  let d1 = Netlist.signal nl "D1" in
  Cells.buf nl ~name:"DELAY 1" ~delay:(exact 10.0) ~a:(Netlist.conn n0) d1;
  let m1 = Netlist.signal nl "M1" in
  mux ~name:"MUX 1" ~a:(Netlist.conn n0) ~b:(Netlist.conn d1)
    ~sel:(Netlist.conn control) m1;
  let d2 = Netlist.signal nl "D2" in
  Cells.buf nl ~name:"DELAY 2" ~delay:(exact 10.0) ~a:(Netlist.conn m1) d2;
  let output = Netlist.signal nl "OUTPUT" in
  (* The selects are complementary: when MUX 1 takes the delayed input
     (control = 1), MUX 2 must take the direct one, and vice versa. *)
  mux ~name:"MUX 2" ~a:(Netlist.conn m1) ~b:(Netlist.conn d2)
    ~sel:(Netlist.conn ~invert:true control) output;
  { bp_netlist = nl; bp_input = input; bp_output = output;
    bp_control = "CONTROL SIGNAL .S0-10" }

let path_ns ~netlist ~report ~input ~output =
  let period = Timebase.period (Netlist.timebase netlist) in
  let input_wf = Eval.value report.Verifier.r_eval input in
  let output_wf = Eval.value report.Verifier.r_eval output in
  let change_end wf =
    (* Latest end of a changing interval, as an absolute cycle time. *)
    Waveform.intervals_where (fun v -> not (Tvalue.is_stable v)) wf
    |> List.fold_left (fun acc (s, w) -> max acc ((s + w) mod (2 * period))) 0
  in
  let input_end = change_end input_wf in
  let output_end = change_end output_wf in
  let d = output_end - input_end in
  let d = if d < 0 then d + period else d in
  Timebase.ns_of_ps d

let bypass_path_ns report bp =
  path_ns ~netlist:bp.bp_netlist ~report ~input:bp.bp_input ~output:bp.bp_output

type chain = {
  ch_netlist : Netlist.t;
  ch_input : int;
  ch_output : int;
  ch_controls : string list;
}

let bypass_chain ~stages =
  if stages < 1 then invalid_arg "Circuits.bypass_chain: need at least one stage";
  (* Period scaled so that even the pessimistic 40 ns-per-stage path
     fits in one cycle. *)
  let period_ns = float_of_int (stages * 50) +. 50. in
  let tb = Timebase.make ~period_ns ~clock_unit_ns:10.0 in
  let nl = Netlist.create tb ~default_wire_delay:Delay.zero in
  let exact ns = Delay.of_ns ns ns in
  let mux ~name ~a ~b ~sel out =
    ignore
      (Netlist.add nl ~name
         (Primitive.Mux2 { delay = exact 5.0; select_extra = Delay.zero })
         ~inputs:[ a; b; sel ] ~output:(Some out))
  in
  let input =
    Netlist.signal nl (Printf.sprintf "INPUT .S1-%g" (period_ns /. 10. -. 1.))
  in
  let rec stage i current controls =
    if i >= stages then (current, List.rev controls)
    else begin
      let control_name = Printf.sprintf "CONTROL %d .S0-%g" i (period_ns /. 10.) in
      let control = Netlist.signal nl control_name in
      let n0 = Netlist.signal nl (Printf.sprintf "S%d N0" i) in
      Cells.buf nl ~name:(Printf.sprintf "S%d IN BUF" i) ~delay:(exact 10.0)
        ~a:(Netlist.conn current) n0;
      let d1 = Netlist.signal nl (Printf.sprintf "S%d D1" i) in
      Cells.buf nl ~name:(Printf.sprintf "S%d DELAY 1" i) ~delay:(exact 10.0)
        ~a:(Netlist.conn n0) d1;
      let m1 = Netlist.signal nl (Printf.sprintf "S%d M1" i) in
      mux ~name:(Printf.sprintf "S%d MUX 1" i) ~a:(Netlist.conn n0) ~b:(Netlist.conn d1)
        ~sel:(Netlist.conn control) m1;
      let d2 = Netlist.signal nl (Printf.sprintf "S%d D2" i) in
      Cells.buf nl ~name:(Printf.sprintf "S%d DELAY 2" i) ~delay:(exact 10.0)
        ~a:(Netlist.conn m1) d2;
      let out = Netlist.signal nl (Printf.sprintf "S%d OUT" i) in
      mux ~name:(Printf.sprintf "S%d MUX 2" i) ~a:(Netlist.conn m1) ~b:(Netlist.conn d2)
        ~sel:(Netlist.conn ~invert:true control) out;
      stage (i + 1) out (control_name :: controls)
    end
  in
  let output, controls = stage 0 input [] in
  { ch_netlist = nl; ch_input = input; ch_output = output; ch_controls = controls }

let chain_path_ns report ch =
  path_ns ~netlist:ch.ch_netlist ~report ~input:ch.ch_input ~output:ch.ch_output

(* ---- Figure 3-12 ----------------------------------------------------------------- *)

type arith = {
  ar_netlist : Netlist.t;
  ar_alu_out : int;
  ar_status_reg : int;
}

let arithmetic_example ?(size = 36) () =
  let tb = Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25 in
  let nl = Netlist.create tb in
  let a_bus = Netlist.signal nl "A BUS .S0-6" in
  Netlist.set_width nl a_bus size;
  let b_bus = Netlist.signal nl "B BUS .S0-6" in
  Netlist.set_width nl b_bus size;
  let carry_in = Netlist.signal nl "CARRY IN .S0-6" in
  let opcode = Netlist.signal nl "OPCODE .S0-5" in
  Netlist.set_width nl opcode 8;
  (* Function decoder: timing-only model of the opcode decode. *)
  let alu_fn = Netlist.signal nl "ALU FN" in
  Netlist.set_width nl alu_fn 4;
  ignore
    (Netlist.add nl ~name:"FN DECODER"
       (Primitive.Gate
          { fn = Primitive.Chg; n_inputs = 1; invert = false; delay = Delay.of_ns 2.0 4.0 })
       ~inputs:[ Netlist.conn opcode ]
       ~output:(Some alu_fn));
  let latch_en = Netlist.signal nl "LATCH EN .P3-5" in
  Netlist.set_wire_delay nl latch_en Delay.zero;
  let alu_out = Netlist.signal nl "ALU OUT" in
  Netlist.set_width nl alu_out size;
  Cells.alu_latch nl ~size ~a:(Netlist.conn a_bus) ~b:(Netlist.conn b_bus)
    ~carry_in:(Netlist.conn carry_in)
    ~fn_select:(Netlist.conn alu_fn)
    ~enable:(Netlist.conn latch_en)
    alu_out;
  (* Debugging/status register with load-enable gating of its clock. *)
  let ck = Netlist.signal nl "CK .P0-1 L" in
  Netlist.set_wire_delay nl ck Delay.zero;
  let load_en = Netlist.signal nl "LOAD STATUS .S7.5-1.5 L" in
  let status_ck = Netlist.signal nl "STATUS CK" in
  Cells.and2 nl ~name:"STATUS CK GATE"
    ~a:(Netlist.conn ~invert:true ~directive:[ Directive.H ] ck)
    ~b:(Netlist.conn ~invert:true load_en)
    status_ck;
  let status = Netlist.signal nl "STATUS REG" in
  Netlist.set_width nl status size;
  Cells.register nl ~name:"STATUS REG"
    ~data:(Netlist.conn alu_out)
    ~clock:(Netlist.conn status_ck)
    status;
  { ar_netlist = nl; ar_alu_out = alu_out; ar_status_reg = status }

(* ---- Figures 4-1 / 4-2 ---------------------------------------------------------------- *)

type feedback = {
  fb_netlist : Netlist.t;
  fb_reg_out : int;
}

let correlation_example ~corr_delay_ns =
  let tb = Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25 in
  let nl = Netlist.create tb ~default_wire_delay:Delay.zero in
  let ck = Netlist.signal nl "CK .P(0,0)0-1" in
  (* The clock buffer inserts a relatively large skew (1.0/5.0 ns). *)
  let reg_ck = Netlist.signal nl "REG CK" in
  Cells.buf nl ~name:"CK BUF" ~delay:(Delay.of_ns 1.0 5.0) ~a:(Netlist.conn ck) reg_ck;
  (* NEW DATA changes mid-cycle, well clear of the early clock edge: the
     only questionable path is the feedback one. *)
  let new_data = Netlist.signal nl "NEW DATA .S5-2" in
  let sel = Netlist.signal nl "SEL .S0-8" in
  let reg_out = Netlist.signal nl "Q" in
  let reg_data = Netlist.signal nl "REG DATA" in
  (* Optional CORR fictitious delay in the feedback path (§4.2.3). *)
  let feedback =
    if corr_delay_ns <= 0. then reg_out
    else begin
      let corr = Netlist.signal nl "CORR OUT" in
      Cells.buf nl ~name:"CORR"
        ~delay:(Delay.of_ns corr_delay_ns corr_delay_ns)
        ~a:(Netlist.conn reg_out) corr;
      corr
    end
  in
  Cells.mux2 nl ~name:"RELOAD MUX"
    ~a:(Netlist.conn feedback)
    ~b:(Netlist.conn new_data)
    ~sel:(Netlist.conn sel)
    reg_data;
  Cells.register nl ~name:"FEEDBACK REG"
    ~data:(Netlist.conn reg_data)
    ~clock:(Netlist.conn reg_ck)
    reg_out;
  { fb_netlist = nl; fb_reg_out = reg_out }
