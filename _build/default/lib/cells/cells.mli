(** ECL-10K component models from Chapter III of the thesis.

    Each function expands one chip macro into Timing Verifier primitives
    on a netlist, exactly as the SCALD macro definitions of Figures 3-5
    to 3-9 do: the timing path through the chip is modelled with CHG
    gates of the data-sheet delays, and the data-sheet constraints with
    set-up/hold and minimum-pulse-width checkers.  Timing values follow
    the figures; the few entries that are illegible in the published
    scan use the typical ECL-10K values from the same data-sheet family
    (they are all single constants, easy to adjust).

    Internal macro nets ("/M" signals) are created with zero
    interconnection delay — the default wire delay models board-level
    runs between chips, not paths inside a package. *)

open Scald_core

val internal : Netlist.t -> string -> int
(** A fresh chip-internal net with zero wire delay.  The given prefix is
    made unique. *)

(** {1 Gates (Figure 3-8)} *)

val or2 :
  Netlist.t -> ?name:string -> a:Netlist.conn -> b:Netlist.conn -> int -> unit
(** 2-input OR, 1.0/2.9 ns. *)

val nor2 :
  Netlist.t -> ?name:string -> a:Netlist.conn -> b:Netlist.conn -> int -> unit

val and2 :
  Netlist.t -> ?name:string -> a:Netlist.conn -> b:Netlist.conn -> int -> unit
(** 2-input AND, 1.0/2.9 ns. *)

val nand2 :
  Netlist.t -> ?name:string -> a:Netlist.conn -> b:Netlist.conn -> int -> unit

val xor2 :
  Netlist.t -> ?name:string -> a:Netlist.conn -> b:Netlist.conn -> int -> unit
(** 2-input XOR, 1.5/3.5 ns. *)

val inv : Netlist.t -> ?name:string -> a:Netlist.conn -> int -> unit
(** Inverter, 1.0/2.9 ns. *)

val buf : Netlist.t -> ?name:string -> ?delay:Delay.t -> a:Netlist.conn -> int -> unit
(** Buffer; default 1.0/2.9 ns.  With an explicit delay this also serves
    as a clock buffer or the [CORR] fictitious delay of §4.2.3. *)

(** {1 2-input multiplexer chip (Figure 3-6)} *)

val mux2 :
  Netlist.t ->
  ?name:string ->
  a:Netlist.conn ->
  b:Netlist.conn ->
  sel:Netlist.conn ->
  int ->
  unit
(** 1.2/3.3 ns from any input; the select input sees an additional
    0.3/1.2 ns. *)

(** {1 Edge-triggered register chip (Figure 3-7)} *)

val register :
  Netlist.t ->
  ?name:string ->
  data:Netlist.conn ->
  clock:Netlist.conn ->
  int ->
  unit
(** Delay 1.5/4.5 ns; checks set-up 2.5 ns and hold 1.5 ns of the data
    input against the clock's rising edge. *)

val register_sr :
  Netlist.t ->
  ?name:string ->
  data:Netlist.conn ->
  clock:Netlist.conn ->
  set:Netlist.conn ->
  reset:Netlist.conn ->
  int ->
  unit
(** Register with asynchronous SET/RESET (Figure 2-1, second model). *)

(** {1 Transparent latch (Figure 2-2)} *)

val latch :
  Netlist.t ->
  ?name:string ->
  data:Netlist.conn ->
  enable:Netlist.conn ->
  int ->
  unit
(** Delay 1.0/3.5 ns; checks set-up 2.5 ns before and hold 1.5 ns after
    the falling (closing) edge of the enable. *)

(** {1 16-word register file chip, "16W RAM 10145A" (Figures 3-1 … 3-5)} *)

val ram16 :
  Netlist.t ->
  ?name:string ->
  size:int ->
  data:Netlist.conn ->
  adr:Netlist.conn ->
  cs:Netlist.conn ->
  we:Netlist.conn ->
  int ->
  unit
(** The Figure 3-5 macro: the output changes 3.0/6.0 ns after the
    address, chip-select or data inputs change and 1.5/3.0 ns after the
    write-enable changes; the data inputs must be stable 4.5 ns before
    the falling edge of [WE] with a -1.0 ns hold; the address lines must
    be stable 3.5 ns before the rising edge of [WE], while it is high,
    and 1.0 ns after its falling edge; [CS] is checked like the data
    inputs; [WE] must be high at least 4.0 ns. *)

(** {1 Arithmetic/logic chip with output latch (Figure 3-9)} *)

val alu_latch :
  Netlist.t ->
  ?name:string ->
  size:int ->
  a:Netlist.conn ->
  b:Netlist.conn ->
  carry_in:Netlist.conn ->
  fn_select:Netlist.conn ->
  enable:Netlist.conn ->
  int ->
  unit
(** 16-function ALU on [A], [B] and [C1] selected by [S], with a
    transparent output latch enabled by [E]: the combinational delay is
    modelled by CHG gates (4.0/8.0 ns), the latch adds 1.0/3.5 ns, and
    the data inputs are checked for set-up/hold around the latch closing
    (set-up 2.5 ns, hold 1.5 ns). *)

(** {1 Larger structures}

    Built from the same primitives, the way S-1 designers composed
    SCALD macros (§3.1).  All timing-only: data-path logic is modelled
    with CHG gates, whose outputs change when any input does. *)

val parity_tree :
  Netlist.t -> ?name:string -> inputs:Netlist.conn list -> int -> unit
(** A tree of XOR gates reduced pairwise (1.5/3.5 ns per level) — the
    thesis's canonical example of logic whose function is irrelevant to
    timing (§2.4.2). *)

val adder :
  Netlist.t ->
  ?name:string ->
  size:int ->
  a:Netlist.conn ->
  b:Netlist.conn ->
  carry_in:Netlist.conn ->
  sum:int ->
  carry_out:int ->
  unit ->
  unit
(** A carry-lookahead-class adder: the sum settles 5.0/11.0 ns after the
    operands, the carry output faster (3.0/7.0 ns). *)

val decoder :
  Netlist.t -> ?name:string -> select:Netlist.conn -> int -> unit
(** An n-to-2^n decoder line bundle, 2.0/4.5 ns. *)

val counter :
  Netlist.t ->
  ?name:string ->
  ?corr_ns:float ->
  clock:Netlist.conn ->
  enable:Netlist.conn ->
  int ->
  unit
(** A synchronous counter: register + increment logic fed back into the
    register.  Feedback counters are the thesis's prime example of the
    clock-skew correlation problem (§4.2.3), so a [CORR] fictitious
    delay (default 4.0 ns) is built into the feedback path, exactly as
    the S-1 designers did. *)

val shift_register :
  Netlist.t ->
  ?name:string ->
  ?corr_ns:float ->
  stages:int ->
  data:Netlist.conn ->
  clock:Netlist.conn ->
  int ->
  unit
(** [stages] registers in series; each stage's feedback-free hop still
    races the clock skew, so each stage includes a [CORR] delay
    (§4.2.3 names shift registers alongside counters). *)
