(** A broader ECL-10K component library.

    {!Cells} holds exactly the chips whose SCALD definitions the thesis
    prints (Figures 3-5 … 3-9).  This module extends the library across
    the rest of the 10K family the S-1 drew from, following the same
    modelling pattern: data paths as CHG gates with data-sheet
    propagation ranges, constraints as set-up/hold and pulse-width
    checkers, chip-internal nets with zero wire delay.  Timing values
    are the typical commercial 10K numbers (min = 0.5×typ, max =
    1.5×typ, the data-sheet guard-banding convention of the era).

    All outputs are the final positional argument, as in {!Cells}. *)

open Scald_core

val dff_10131 :
  Netlist.t ->
  ?name:string ->
  data:Netlist.conn ->
  clock:Netlist.conn ->
  set:Netlist.conn ->
  reset:Netlist.conn ->
  int ->
  unit
(** Dual D master/slave flip-flop with asynchronous set/reset: delay
    1.7/4.4 ns, set-up 2.5 ns, hold 1.5 ns, clock pulse at least
    3.3 ns high. *)

val latch_10133 :
  Netlist.t -> ?name:string -> data:Netlist.conn -> enable:Netlist.conn -> int -> unit
(** Quad latch: delay 1.5/4.0 ns, set-up 2.0 ns / hold 1.5 ns around the
    closing edge. *)

val mux8_10164 :
  Netlist.t ->
  ?name:string ->
  data:Netlist.conn ->
  select:Netlist.conn ->
  enable:Netlist.conn ->
  int ->
  unit
(** 8-line multiplexer: 2.5/5.0 ns from the data inputs, 3.0/6.5 ns from
    the select lines, 2.0/4.5 ns from the enable. *)

val decoder_10162 :
  Netlist.t ->
  ?name:string ->
  select:Netlist.conn ->
  enable:Netlist.conn ->
  int ->
  unit
(** Binary-to-1-of-8 decoder (low outputs): 2.0/4.8 ns. *)

val parity_10160 :
  Netlist.t -> ?name:string -> data:Netlist.conn -> int -> unit
(** 12-bit parity generator/checker: 2.9/6.8 ns through the tree. *)

val carry_10179 :
  Netlist.t ->
  ?name:string ->
  g:Netlist.conn ->
  p:Netlist.conn ->
  carry_in:Netlist.conn ->
  int ->
  unit
(** Look-ahead carry block: 1.0/2.9 ns — the fast path that makes
    carry-select adders work. *)

val shift_10141 :
  Netlist.t ->
  ?name:string ->
  data:Netlist.conn ->
  clock:Netlist.conn ->
  int ->
  unit
(** 4-bit universal shift register, modelled as its serial path: four
    internal master/slave stages with per-stage checkers and a clock
    pulse-width requirement; the given data enters stage 0 and the
    output is stage 3. *)

val counter_10136 :
  Netlist.t ->
  ?name:string ->
  clock:Netlist.conn ->
  enable:Netlist.conn ->
  int ->
  unit
(** Universal hexadecimal counter: the count-feedback loop of §4.2.3
    with its protective CORR delay built in, plus the clock pulse-width
    checker. *)
