(** The worked circuits of the thesis, reconstructed from its figures.

    Each builder returns the netlist plus the net ids a caller needs to
    inspect.  These circuits drive the unit tests, the examples and the
    benchmark harness that regenerates the corresponding figures. *)

open Scald_core

(** {1 Figure 2-5 / §3.2: the register-file verification example}

    A 16-word by [size]-bit register file, an output register, a 2-input
    multiplexer selecting between the read and write addresses, and the
    write-enable gating.  Cycle time 50 ns, clock unit 6.25 ns (8 units
    per cycle), default wire delay 0.0/2.0 ns, address wire delay
    0.0/6.0 ns, precision clock skew ±1.0 ns. *)

type register_file = {
  rf_netlist : Netlist.t;
  rf_adr : int;       (** the multiplexed address lines "ADR<0:3>" *)
  rf_ram_out : int;   (** register-file output *)
  rf_reg_out : int;   (** output register *)
  rf_write_en : int;  (** gated write-enable pulse *)
}

val register_file_example : ?size:int -> unit -> register_file

(** {1 Figure 1-5: hazard on a gated register clock}

    CLOCK is high 20–30 ns into the cycle; ENABLE wants to inhibit the
    register but only reaches zero 25 ns into the cycle, so a runt pulse
    can reach the register clock.  With the [&A] directive on the clock
    input the verifier reports the hazard. *)

type gated_clock = {
  gc_netlist : Netlist.t;
  gc_reg_clock : int;
  gc_reg_out : int;
}

val gated_clock_hazard : ?enable_stable_at:float -> unit -> gated_clock
(** [enable_stable_at] is the clock-unit time at which ENABLE becomes
    stable; the thesis's error case corresponds to 2.5 (25 ns), a fixed
    circuit to 1.5 (before the clock pulse). *)

(** {1 Figure 2-6: the case-analysis circuit}

    Two multiplexers whose select lines are driven by complementary
    values of CONTROL SIGNAL; without case analysis the verifier sees a
    40 ns worst-case INPUT-to-OUTPUT path through both 20 ns delay
    elements, with case analysis only 30 ns. *)

type bypass = {
  bp_netlist : Netlist.t;
  bp_input : int;
  bp_output : int;
  bp_control : string;  (** the control signal name, for case specs *)
}

val bypass_example : unit -> bypass

val bypass_path_ns : Verifier.report -> bypass -> float
(** The measured worst INPUT-to-OUTPUT delay: the latest time (relative
    to the moment INPUT stops changing) at which OUTPUT is still
    changing. *)

type chain = {
  ch_netlist : Netlist.t;
  ch_input : int;
  ch_output : int;
  ch_controls : string list;  (** one control signal name per stage *)
}

val bypass_chain : stages:int -> chain
(** [stages] Figure 2-6 stages in series: the true worst path is 30 ns
    per stage for {e every} setting of the controls, but value-blind
    path analysis sees 40 ns per stage.  Used for the spurious-error
    comparison against {!Path_analysis}. *)

val chain_path_ns : Verifier.report -> chain -> float
(** Worst INPUT-to-OUTPUT delay of the chain, as {!bypass_path_ns}. *)

(** {1 Figure 3-12: the S-1 Mark IIA arithmetic circuit}

    A [size]-bit ALU with output latch, a debugging/status register with
    load-enable gating, and the function decoder feeding the ALU select
    inputs; all interface signals carry assertions. *)

type arith = {
  ar_netlist : Netlist.t;
  ar_alu_out : int;
  ar_status_reg : int;
}

val arithmetic_example : ?size:int -> unit -> arith

(** {1 Figures 4-1 / 4-2: the correlation problem}

    A register reloaded from its own output through a multiplexer, with
    a skew-heavy buffer on its clock.  The minimum register + mux delay
    exceeds the hold time, but because the verifier reasons in absolute
    times it thinks the feedback data changes during the hold window and
    emits a false error (Figure 4-1).  Inserting the [CORR] fictitious
    delay — at least as long as the clock skew — into the feedback path
    suppresses it (Figure 4-2). *)

type feedback = {
  fb_netlist : Netlist.t;
  fb_reg_out : int;
}

val correlation_example : corr_delay_ns:float -> feedback
(** [corr_delay_ns = 0.] reproduces the false error; a value at least
    the clock skew (e.g. 4.0 ns) suppresses it. *)
