open Scald_core

let chg n delay = Primitive.Gate { fn = Primitive.Chg; n_inputs = n; invert = false; delay }

let setup_hold ~setup_ns ~hold_ns =
  Primitive.Setup_hold_check
    { setup = Timebase.ps_of_ns setup_ns; hold = Timebase.ps_of_ns hold_ns }

let min_high width_ns =
  Primitive.Min_pulse_width { high = Timebase.ps_of_ns width_ns; low = 0 }

let dff_10131 nl ?name ~data ~clock ~set ~reset out =
  let name = match name with Some n -> n | None -> "DFF 10131" in
  ignore
    (Netlist.add nl ~name
       (Primitive.Reg { delay = Delay.of_ns 1.7 4.4; has_set_reset = true })
       ~inputs:[ data; clock; set; reset ]
       ~output:(Some out));
  ignore
    (Netlist.add nl ~name:(name ^ " SETUP HOLD CHK")
       (setup_hold ~setup_ns:2.5 ~hold_ns:1.5)
       ~inputs:[ data; clock ] ~output:None);
  ignore
    (Netlist.add nl ~name:(name ^ " MIN PULSE WIDTH") (min_high 3.3) ~inputs:[ clock ]
       ~output:None)

let latch_10133 nl ?name ~data ~enable out =
  let name = match name with Some n -> n | None -> "LATCH 10133" in
  ignore
    (Netlist.add nl ~name
       (Primitive.Latch { delay = Delay.of_ns 1.5 4.0; has_set_reset = false })
       ~inputs:[ data; enable ] ~output:(Some out));
  let closing = { enable with Netlist.c_invert = not enable.Netlist.c_invert } in
  ignore
    (Netlist.add nl ~name:(name ^ " SETUP HOLD CHK")
       (setup_hold ~setup_ns:2.0 ~hold_ns:1.5)
       ~inputs:[ data; closing ] ~output:None)

let mux8_10164 nl ?name ~data ~select ~enable out =
  let name = match name with Some n -> n | None -> "8 MUX 10164" in
  (* three paths with their own ranges, combined at the output pin *)
  let dp = Cells.internal nl (name ^ " D") in
  ignore (Netlist.add nl ~name:(name ^ " D CHG") (chg 1 (Delay.of_ns 2.5 5.0))
            ~inputs:[ data ] ~output:(Some dp));
  let sp = Cells.internal nl (name ^ " S") in
  ignore (Netlist.add nl ~name:(name ^ " S CHG") (chg 1 (Delay.of_ns 3.0 6.5))
            ~inputs:[ select ] ~output:(Some sp));
  let ep = Cells.internal nl (name ^ " E") in
  ignore (Netlist.add nl ~name:(name ^ " E CHG") (chg 1 (Delay.of_ns 2.0 4.5))
            ~inputs:[ enable ] ~output:(Some ep));
  ignore
    (Netlist.add nl ~name:(name ^ " OUT CHG")
       (chg 3 Delay.zero)
       ~inputs:[ Netlist.conn dp; Netlist.conn sp; Netlist.conn ep ]
       ~output:(Some out))

let decoder_10162 nl ?name ~select ~enable out =
  let name = match name with Some n -> n | None -> "DECODER 10162" in
  ignore
    (Netlist.add nl ~name:(name ^ " CHG")
       (chg 2 (Delay.of_ns 2.0 4.8))
       ~inputs:[ select; enable ] ~output:(Some out))

let parity_10160 nl ?name ~data out =
  let name = match name with Some n -> n | None -> "PARITY 10160" in
  ignore
    (Netlist.add nl ~name:(name ^ " CHG")
       (chg 1 (Delay.of_ns 2.9 6.8))
       ~inputs:[ data ] ~output:(Some out))

let carry_10179 nl ?name ~g ~p ~carry_in out =
  let name = match name with Some n -> n | None -> "CARRY 10179" in
  ignore
    (Netlist.add nl ~name:(name ^ " CHG")
       (chg 3 (Delay.of_ns 1.0 2.9))
       ~inputs:[ g; p; carry_in ] ~output:(Some out))

let shift_10141 nl ?name ~data ~clock out =
  let name = match name with Some n -> n | None -> "SHIFT 10141" in
  let stage i current last =
    let q = if last then out else Cells.internal nl (Printf.sprintf "%s Q%d" name i) in
    ignore
      (Netlist.add nl
         ~name:(Printf.sprintf "%s STAGE %d" name i)
         (Primitive.Reg { delay = Delay.of_ns 1.7 4.4; has_set_reset = false })
         ~inputs:[ current; clock ] ~output:(Some q));
    ignore
      (Netlist.add nl
         ~name:(Printf.sprintf "%s CHK %d" name i)
         (setup_hold ~setup_ns:2.5 ~hold_ns:1.5)
         ~inputs:[ current; clock ] ~output:None);
    q
  in
  (* Master/slave stages: within one chip the stage-to-stage hold race
     is guaranteed by construction, which the verifier cannot see from
     the outside (§4.2.3) — so the internal hops carry the equivalent of
     a CORR delay, exactly as the S-1 methodology required. *)
  let corr q i =
    let d = Cells.internal nl (Printf.sprintf "%s D%d" name i) in
    Cells.buf nl
      ~name:(Printf.sprintf "%s CORR %d" name i)
      ~delay:(Delay.of_ns 4.0 4.0) ~a:(Netlist.conn q) d;
    Netlist.conn d
  in
  let q0 = stage 0 data false in
  let q1 = stage 1 (corr q0 0) false in
  let q2 = stage 2 (corr q1 1) false in
  ignore (stage 3 (corr q2 2) true);
  ignore
    (Netlist.add nl ~name:(name ^ " MIN PULSE WIDTH") (min_high 3.5) ~inputs:[ clock ]
       ~output:None)

let counter_10136 nl ?name ~clock ~enable out =
  let name = match name with Some n -> n | None -> "COUNTER 10136" in
  Cells.counter nl ~name ~corr_ns:4.0 ~clock ~enable out;
  ignore
    (Netlist.add nl ~name:(name ^ " MIN PULSE WIDTH") (min_high 4.0) ~inputs:[ clock ]
       ~output:None)
