(** A simplified SCALD Physical Design Subsystem.

    The thesis consumes interconnection delays from two sources: a
    designer default rule while the design is on paper, and — once the
    design is far enough along — delays "calculated from detailed
    simulation of the transmission line properties of the
    interconnections in the circuit-as-packaged" (§2.5.3), computed by
    the SCALD Physical Design Subsystem.  That subsystem also flags
    signal runs with voltage-wave reflections large enough to cause
    extra clock transitions, "allowing the timing verification process
    to flag them if they affect edge-sensitive inputs" (§1.3.2).

    This module is a compact version of that flow:

    - {b placement}: chips on a board grid, in instance order;
    - {b routing estimate}: half-perimeter wirelength of each net's
      pins, with a detour factor bounding the maximum route;
    - {b delay}: intrinsic driver/receiver delay plus propagation at the
      configured velocity — the computed delays then {e replace} the
      default rule on every net without a designer override;
    - {b transmission-line screen}: runs whose propagation time exceeds
      a quarter of the signal rise time need full line analysis
      (§1.3.2's criterion); their worst reflection coefficient is
      estimated from the line and termination impedances (receivers in
      parallel), and runs with significant reflections feeding
      edge-sensitive inputs (register and latch clocks, checker clock
      pins) are flagged. *)

open Scald_core

type placement =
  | By_id  (** instances in creation order — a deliberately naive layout *)
  | By_connectivity
      (** breadth-first over the driver-to-consumer graph, so connected
          logic lands in nearby grid slots *)

type config = {
  placement : placement;
  pitch_cm : float;         (** chip pitch on the board grid *)
  board_cols : int;         (** chips per board row *)
  velocity_cm_per_ns : float;  (** propagation velocity (~15 cm/ns on PCB) *)
  intrinsic : Delay.t;      (** fixed driver/receiver delay *)
  detour : float;           (** max routing detour factor, >= 1 *)
  z0_ohm : float;           (** characteristic line impedance *)
  z_load_ohm : float;       (** input impedance of one receiver *)
  rise_time_ns : float;     (** signal edge rate *)
  reflection_limit : float; (** |rho| above which a run is significant *)
}

val default_config : config
(** ECL-10K-flavoured values: connectivity placement, 2 cm pitch, 32
    chips per row, 15 cm/ns, 0.2/0.5 ns intrinsic, 1.8x detour, 50 ohm
    line into 100 ohm receivers, 2 ns edges, 0.25 reflection limit. *)

type route = {
  r_net : string;
  r_length_cm : float;      (** estimated run length *)
  r_fanout : int;
  r_delay : Delay.t;        (** computed interconnection delay *)
  r_needs_line_analysis : bool;
      (** propagation time exceeds a quarter of the rise time *)
  r_reflection : float;     (** worst reflection coefficient magnitude *)
  r_edge_sensitive : bool;  (** feeds a clock or enable pin *)
  r_flagged : bool;         (** significant reflections on an
                                edge-sensitive input (§1.3.2) *)
}

type report = {
  p_routes : route list;
  p_flagged : route list;
  p_total_wire_cm : float;
  p_applied : int;  (** nets whose wire delay was set from the routes *)
}

val place_and_route : ?config:config -> Netlist.t -> report
(** Compute routes and delays without touching the netlist. *)

val apply : ?config:config -> Netlist.t -> report
(** [place_and_route], then install the computed delay on every net that
    carries no explicit designer wire delay — the "circuit-as-packaged"
    verification mode of §2.5.3. *)

val violations : report -> Check.t list
(** The flagged runs as verifier violations, so packaged-design
    verification reports them alongside the timing errors (§1.3.2:
    "allowing the timing verification process to flag them if they
    affect edge-sensitive inputs"). *)

val pp : Format.formatter -> report -> unit
