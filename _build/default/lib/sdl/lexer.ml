type token =
  | Word of string
  | Lparen
  | Rparen
  | Comma
  | Semi
  | Arrow
  | Equals
  | Minus
  | Scope_p
  | Scope_m
  | Amp of string
  | Eof

type lexeme = { tok : token; line : int }

let pp_token ppf = function
  | Word w -> Format.fprintf ppf "%S" w
  | Lparen -> Format.pp_print_string ppf "("
  | Rparen -> Format.pp_print_string ppf ")"
  | Comma -> Format.pp_print_string ppf ","
  | Semi -> Format.pp_print_string ppf ";"
  | Arrow -> Format.pp_print_string ppf "->"
  | Equals -> Format.pp_print_string ppf "="
  | Minus -> Format.pp_print_string ppf "-"
  | Scope_p -> Format.pp_print_string ppf "/P"
  | Scope_m -> Format.pp_print_string ppf "/M"
  | Amp d -> Format.fprintf ppf "&%s" d
  | Eof -> Format.pp_print_string ppf "<eof>"

let is_word_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '<' | '>' | ':' | '+' | '_' | '$' | '#' ->
    true
  | _ -> false

let is_letter c = match c with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let out = ref [] in
  let emit tok = out := { tok; line = !line } :: !out in
  let rec word_end i =
    if i >= n then i
    else
      let c = src.[i] in
      if is_word_char c then word_end (i + 1)
      else if
        (* '-' continues a word when glued between word characters:
           "P2-3", "SIZE-1", "-1.0" after the leading digit context. *)
        c = '-' && i + 1 < n && is_word_char src.[i + 1] && src.[i + 1] <> '>'
      then word_end (i + 1)
      else if
        (* '/' continues a word when it separates two numbers:
           "1.0/3.8"; "/P" and "/M" are scope tokens instead. *)
        c = '/' && i + 1 < n
        && (match src.[i + 1] with '0' .. '9' | '-' | '.' -> true | _ -> false)
      then word_end (i + 1)
      else i
  in
  let rec go i =
    if i >= n then begin
      emit Eof;
      Ok (List.rev !out)
    end
    else
      let c = src.[i] in
      match c with
      | '\n' ->
        incr line;
        go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
        (* comment to end of line *)
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '-' when i + 1 < n && src.[i + 1] = '>' ->
        emit Arrow;
        go (i + 2)
      | '-' when i + 1 < n && is_word_char src.[i + 1] ->
        (* a glued "-1.0" negative number or "-WE" complement-as-word;
           lex as one word, the parser splits complements. *)
        let j = word_end (i + 1) in
        emit (Word (String.sub src i (j - i)));
        go j
      | '-' ->
        emit Minus;
        go (i + 1)
      | '(' ->
        emit Lparen;
        go (i + 1)
      | ')' ->
        emit Rparen;
        go (i + 1)
      | ',' ->
        emit Comma;
        go (i + 1)
      | ';' ->
        emit Semi;
        go (i + 1)
      | '=' ->
        emit Equals;
        go (i + 1)
      | '/' when i + 1 < n && (src.[i + 1] = 'P' || src.[i + 1] = 'p') ->
        emit Scope_p;
        go (i + 2)
      | '/' when i + 1 < n && (src.[i + 1] = 'M' || src.[i + 1] = 'm') ->
        emit Scope_m;
        go (i + 2)
      | '&' ->
        let rec dend j = if j < n && is_letter src.[j] then dend (j + 1) else j in
        let j = dend (i + 1) in
        if j = i + 1 then Error (Printf.sprintf "line %d: '&' with no directive letters" !line)
        else begin
          emit (Amp (String.sub src (i + 1) (j - i - 1)));
          go j
        end
      | c when is_word_char c ->
        let j = word_end i in
        emit (Word (String.sub src i (j - i)));
        go j
      | c -> Error (Printf.sprintf "line %d: unexpected character %C" !line c)
  in
  go 0
