lib/sdl/lexer.mli: Format
