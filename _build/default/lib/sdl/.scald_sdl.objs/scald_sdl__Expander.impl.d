lib/sdl/expander.ml: Ast Buffer Delay Directive Float Format Hashtbl List Netlist Parser Primitive Printf Scald_core String Sys Timebase Tvalue Wire_rule
