lib/sdl/expander.mli: Ast Format Scald_core
