lib/sdl/lexer.ml: Format List Printf String
