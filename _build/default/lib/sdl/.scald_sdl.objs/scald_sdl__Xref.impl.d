lib/sdl/xref.ml: Array Assertion Format List Netlist Option Scald_core String
