lib/sdl/parser.ml: Array Ast Buffer Char Format Lexer List Printf String
