lib/sdl/xref.mli: Format Scald_core
