lib/sdl/ast.ml: Format List Printf String
