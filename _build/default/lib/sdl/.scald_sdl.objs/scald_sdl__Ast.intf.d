lib/sdl/ast.mli: Format
