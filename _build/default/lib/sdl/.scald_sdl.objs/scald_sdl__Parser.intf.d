lib/sdl/parser.mli: Ast
