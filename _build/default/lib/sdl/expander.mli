(** The SCALD Macro Expander (§3.3.2, Table 3-1).

    Processing happens in the thesis's three phases:

    + reading the input and building data structures ({!Parser});
    + {b Pass 1}: an expansion of the design that builds the summary and
      a synonym structure resolving the different names of each signal
      (a macro's formal parameter and the caller's actual signal are two
      names for one net);
    + {b Pass 2}: a second expansion that outputs the fully elaborated
      design — here, a {!Scald_core.Netlist.t} ready for the Timing
      Verifier.

    Macros take numeric properties (e.g. [SIZE=32]) that parameterize
    vector subscripts: a parameter declared [I<0:SIZE-1>] expands to
    [I<0:31>].  One expanded primitive stands for the whole vector —
    vector symmetry is exploited, not bit-blasted (§3.3.2). *)

type summary = {
  s_macros_expanded : int;  (** macro call sites expanded *)
  s_primitives : int;       (** primitive instances emitted *)
  s_signals : int;          (** distinct signals after synonym resolution *)
  s_synonyms : int;         (** formal/actual name pairs resolved *)
}

type expansion = {
  e_netlist : Scald_core.Netlist.t;
  e_summary : summary;
  e_pass1_s : float;  (** CPU seconds spent in Pass 1 *)
  e_pass2_s : float;  (** CPU seconds spent in Pass 2 (netlist output) *)
}

val expand :
  ?defaults:Scald_core.Assertion.defaults ->
  Ast.design ->
  (expansion, string) result
(** Run both passes over a parsed design.  The design must contain a
    [PERIOD] statement; [CLOCK UNIT] defaults to one eighth of the
    period, the default wire delay to 0.0/2.0 ns. *)

val expand_exn : ?defaults:Scald_core.Assertion.defaults -> Ast.design -> expansion

val load : ?defaults:Scald_core.Assertion.defaults -> string -> (expansion, string) result
(** Parse and expand a source text. *)

val pp_summary : Format.formatter -> summary -> unit
