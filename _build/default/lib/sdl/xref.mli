(** Cross-reference listings (§2.9, Table 3-1 "Generating cross
    reference listings").

    The Timing Verifier generates listings that aid the designer in
    finding where signals are defined and used within the design, plus
    the special listing of signals that have neither an assertion nor a
    driver (§2.5). *)

type entry = {
  x_signal : string;
  x_width : int;
  x_defined_by : string option;  (** driving instance *)
  x_used_by : string list;       (** consuming instances *)
  x_assertion : string option;
}

val build : Scald_core.Netlist.t -> entry list
(** One entry per net, sorted by signal name. *)

val unasserted : Scald_core.Netlist.t -> entry list
(** The special cross-reference of undriven, unasserted signals. *)

val pp : Format.formatter -> entry list -> unit
