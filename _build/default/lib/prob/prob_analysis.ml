open Scald_core

module Dist = struct
  type t = { mean : float; variance : float }

  let of_delay (d : Delay.t) =
    let min_f = float_of_int d.Delay.dmin and max_f = float_of_int d.Delay.dmax in
    let sigma = (max_f -. min_f) /. 6. in
    { mean = (min_f +. max_f) /. 2.; variance = sigma *. sigma }

  let add ?(correlation = 0.) a b =
    {
      mean = a.mean +. b.mean;
      variance =
        a.variance +. b.variance
        +. (2. *. correlation *. sqrt (a.variance *. b.variance));
    }

  let quantile t ~z = t.mean +. (z *. sqrt t.variance)

  let pp ppf t =
    Format.fprintf ppf "%.2f ns +- %.2f ns" (t.mean /. 1000.) (sqrt t.variance /. 1000.)
end

type path = {
  p_from : string;
  p_to : string;
  p_dist : Dist.t;
  p_minmax : Timebase.ps * Timebase.ps;
  p_through : string list;
}

type report = { r_paths : path list; r_correlation : float }

let path_of_full correlation (fp : Path_analysis.full_path) =
  let dist =
    List.fold_left
      (fun acc d -> Dist.add ~correlation acc (Dist.of_delay d))
      { Dist.mean = 0.; variance = 0. }
      fp.Path_analysis.f_delays
  in
  let dmin = List.fold_left (fun acc d -> acc + d.Delay.dmin) 0 fp.Path_analysis.f_delays in
  let dmax = List.fold_left (fun acc d -> acc + d.Delay.dmax) 0 fp.Path_analysis.f_delays in
  {
    p_from = fp.Path_analysis.f_from;
    p_to = fp.Path_analysis.f_to;
    p_dist = dist;
    p_minmax = (dmin, dmax);
    p_through = fp.Path_analysis.f_through;
  }

let analyze ?sources ?sinks ?(correlation = 0.) nl =
  if correlation < 0. || correlation > 1. then
    invalid_arg "Prob_analysis.analyze: correlation must be in [0, 1]";
  let full = Path_analysis.enumerate ?sources ?sinks nl in
  { r_paths = List.map (path_of_full correlation) full; r_correlation = correlation }

let worst_quantile r ~z =
  List.fold_left
    (fun acc p ->
      let q = Dist.quantile p.p_dist ~z in
      match acc with
      | Some (_, best) when best >= q -> acc
      | _ -> Some (p, q))
    None r.r_paths

let predicted_cycle_ns r ~z =
  match worst_quantile r ~z with Some (_, q) -> q /. 1000. | None -> 0.

let minmax_cycle_ns r =
  List.fold_left (fun acc p -> max acc (snd p.p_minmax)) 0 r.r_paths
  |> fun ps -> float_of_int ps /. 1000.

let pp ppf r =
  Format.fprintf ppf "@[<v>PROBABILITY-BASED PATH ANALYSIS (correlation %.2f)@,"
    r.r_correlation;
  List.iter
    (fun p ->
      Format.fprintf ppf "  %s -> %s: %a  [min/max %a/%a ns]@," p.p_from p.p_to Dist.pp
        p.p_dist Timebase.pp_ns (fst p.p_minmax) Timebase.pp_ns (snd p.p_minmax))
    (List.sort
       (fun a b -> compare (Dist.quantile b.p_dist ~z:3.) (Dist.quantile a.p_dist ~z:3.))
       r.r_paths);
  Format.fprintf ppf "@]"
