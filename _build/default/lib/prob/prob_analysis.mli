(** Probability-based timing analysis (§1.4.1.2, §4.2.4).

    The DIGSIM-class alternative to min/max analysis: each component
    delay is a normal distribution, path delays combine by summing means
    and variances, and a design is checked to meet its limits at a
    designer-chosen confidence level.  The thesis argues both sides:

    - a real design usually runs faster than the min/max prediction,
      because the probability that {e every} component along a path has
      its extreme delay is tiny — the uncorrelated analysis shows the
      gain;
    - but component delays may be highly correlated (one production run,
      vendor speed-sorting), in which case the probabilistic prediction
      can be wrong and min/max "may be the best approach".  The
      [correlation] parameter interpolates between the two regimes;
      with full correlation the prediction converges to min/max.

    Component distributions are derived from the min/max data the
    manufacturer actually guarantees: mean at the range midpoint,
    standard deviation at one sixth of the range (the range spans
    ±3 sigma). *)

open Scald_core

module Dist : sig
  type t = { mean : float; variance : float }
  (** Normally distributed value; units are picoseconds (variance ps²). *)

  val of_delay : Delay.t -> t
  (** Midpoint mean, [(max - min) / 6] standard deviation. *)

  val add : ?correlation:float -> t -> t -> t
  (** Sum of two delays.  [correlation] (default 0) is the correlation
      coefficient between them: variance combines as
      [va + vb + 2 rho sqrt(va vb)]. *)

  val quantile : t -> z:float -> float
  (** [mean + z * sigma] — the delay not exceeded with the confidence
      that [z] standard deviations give (z = 3 is 99.87 %). *)

  val pp : Format.formatter -> t -> unit
end

type path = {
  p_from : string;
  p_to : string;
  p_dist : Dist.t;
  p_minmax : Timebase.ps * Timebase.ps;  (** the min/max analysis of the
                                             same path, for comparison *)
  p_through : string list;
}

type report = {
  r_paths : path list;
  r_correlation : float;
}

val analyze :
  ?sources:int list ->
  ?sinks:int list ->
  ?correlation:float ->
  Netlist.t ->
  report
(** Distributional delay of every combinational path (via
    {!Path_analysis.enumerate}).  [correlation] applies between every
    pair of successive component delays along a path. *)

val worst_quantile : report -> z:float -> (path * float) option
(** The path with the largest [z]-quantile delay, and that delay (ps). *)

val predicted_cycle_ns : report -> z:float -> float
(** The cycle time the probabilistic analysis would sign off at the
    given confidence: the largest path quantile, in ns. *)

val minmax_cycle_ns : report -> float
(** The min/max analysis of the same paths: the largest path maximum. *)

val pp : Format.formatter -> report -> unit
