(* Clock-gating hazards (Figure 1-5, §1.3.2).

   CLOCK is high from 20 to 30 ns into the cycle.  ENABLE wants to be
   zero to inhibit the register, but doesn't reach zero until 25 ns — so
   a 5 ns runt pulse can reach the register clock.  The &A evaluation
   directive on the gate's clock input makes the Timing Verifier check
   that every other input is stable while the clock is asserted, which
   catches exactly this class of intermittent error. *)

open Scald_core
open Scald_cells

let run_case ~label ~enable_stable_at =
  let gc = Circuits.gated_clock_hazard ~enable_stable_at () in
  let report = Verifier.verify gc.Circuits.gc_netlist in
  let hazards = Verifier.violations_of_kind Check.Hazard report in
  Format.printf "%s (ENABLE stable from %.0f ns):@." label (enable_stable_at *. 10.);
  (match hazards with
  | [] -> Format.printf "  no hazard: the enable settles before the clock pulse@."
  | vs ->
    List.iter
      (fun v ->
        Format.printf "  HAZARD: %s may change while %s is asserted@."
          v.Check.v_signal
          (match v.Check.v_clock with Some c -> c | None -> "?"))
      vs);
  Format.printf "@."

let () =
  run_case ~label:"broken circuit (the thesis's Figure 1-5)" ~enable_stable_at:2.5;
  run_case ~label:"fixed circuit" ~enable_stable_at:1.5
