(* Case analysis (Figure 2-6, §2.7).

   Two multiplexers are driven by complementary values of one control
   signal, so the path through both delay elements can never be
   exercised.  Without case analysis the verifier assumes the worst and
   computes a 40 ns INPUT-to-OUTPUT delay; specifying the two cases

       CONTROL SIGNAL = 0;
       CONTROL SIGNAL = 1;

   makes it evaluate each operation separately (re-evaluating only the
   affected cone), and both cases show the true 30 ns path. *)

open Scald_core
open Scald_cells

let () =
  let bp = Circuits.bypass_example () in
  let nl = bp.Circuits.bp_netlist in

  (* Without case analysis: CONTROL SIGNAL stays symbolic (STABLE). *)
  let report0 = Verifier.verify nl in
  Format.printf "without case analysis: INPUT -> OUTPUT delay = %.1f ns@."
    (Circuits.bypass_path_ns report0 bp);

  (* With case analysis: the designer's case specification text. *)
  let spec =
    Printf.sprintf "%s = 0;\n%s = 1;\n" bp.Circuits.bp_control bp.Circuits.bp_control
  in
  let cases = Case_analysis.parse_exn spec in
  let report1 = Verifier.verify ~cases nl in
  List.iteri
    (fun i c ->
      Format.printf "case %d [%a]: %d events re-evaluated@." (i + 1) Case_analysis.pp
        c.Verifier.cr_case c.Verifier.cr_events)
    report1.Verifier.r_cases;
  Format.printf "with case analysis:    INPUT -> OUTPUT delay = %.1f ns@."
    (Circuits.bypass_path_ns report1 bp);
  Format.printf
    "@.The 40 ns path through both delay elements is never exercised:@.\
     the two select lines are complementary, so each case sees 30 ns.@."
