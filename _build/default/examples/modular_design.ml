(* Modular, section-by-section verification (§2.5.2).

   Stable assertions on interface signals are the key to verifying a
   design in sections: each section assumes its inputs' assertions and
   must prove the assertions on the signals it generates.  If no section
   has a timing error and all interface assertions are consistent (they
   are by construction — the assertion is part of the signal name), the
   entire design is free of timing errors.

   Here a two-designer scenario: designer A owns the address pipeline
   and exports "PIPE ADR .S2-7"; designer B owns the register-file stage
   and imports it.  Each section verifies alone; then the joined design
   verifies whole, with identical results. *)

open Scald_core
open Scald_cells

let tb () = Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25

(* Designer A: generates the pipelined address and must meet the
   interface assertion "PIPE ADR .S2-7". *)
let build_section_a nl =
  let raw = Netlist.signal nl "RAW ADR .S0-6" in
  Netlist.set_width nl raw 4;
  let ck = Netlist.signal nl "CK A .P1-2" in
  Netlist.set_wire_delay nl ck Delay.zero;
  let pipe = Netlist.signal nl "PIPE ADR .S2-7" in
  Netlist.set_width nl pipe 4;
  Cells.register nl ~name:"ADR PIPE REG" ~data:(Netlist.conn raw) ~clock:(Netlist.conn ck)
    pipe

(* Designer B: consumes "PIPE ADR .S2-7" (not yet generated in his
   section — the assertion stands in for the hardware) and produces the
   register-file read data. *)
let build_section_b nl =
  let pipe = Netlist.signal nl "PIPE ADR .S2-7" in
  Netlist.set_width nl pipe 4;
  let cs = Netlist.signal nl "RF CS .S0-8 L" in
  let we = Netlist.signal nl "RF WE .P3.5-4.5" in
  Netlist.set_wire_delay nl we Delay.zero;
  let wdata = Netlist.signal nl "RF W DATA .S0-6" in
  Netlist.set_width nl wdata 16;
  let dout = Netlist.signal nl "RF DOUT" in
  Netlist.set_width nl dout 16;
  Cells.ram16 nl ~size:16 ~data:(Netlist.conn wdata) ~adr:(Netlist.conn pipe)
    ~cs:(Netlist.conn cs) ~we:(Netlist.conn we) dout

let verify_and_show label build =
  let nl = Netlist.create (tb ()) in
  build nl;
  let report = Verifier.verify nl in
  Format.printf "%-22s %d primitives, %d events, %d violation(s)@." label
    (Netlist.n_insts nl) report.Verifier.r_events
    (List.length report.Verifier.r_violations);
  List.iter (fun v -> Format.printf "    %a@." Check.pp v) report.Verifier.r_violations;
  report

let () =
  Format.printf "Each designer verifies his own section independently:@.@.";
  let a = verify_and_show "section A (pipeline):" build_section_a in
  let b = verify_and_show "section B (reg file):" build_section_b in
  Format.printf "@.The joined design (both sections, shared interface net):@.@.";
  let whole =
    verify_and_show "whole design:" (fun nl ->
        build_section_a nl;
        build_section_b nl)
  in
  Format.printf "@.interface signal PIPE ADR carries the same assertion in both sections,@.";
  Format.printf "so section results compose: clean(A) && clean(B) => clean(whole) = %b@."
    (Verifier.clean a && Verifier.clean b && Verifier.clean whole);

  (* The same workflow through the Modular driver (§2.5.2): per-section
     verification plus the SCALD interface-consistency check. *)
  let make name build =
    let nl = Netlist.create (tb ()) in
    build nl;
    { Modular.s_name = name; s_netlist = nl }
  in
  let result =
    Modular.verify [ make "pipeline" build_section_a; make "reg file" build_section_b ]
  in
  Format.printf "@.%a@." Modular.pp result
