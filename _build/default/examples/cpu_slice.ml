(* A pipelined CPU slice in the S-1 style (§3.3.1).

   One pipeline stage of a small processor, built from the chip macros:
   an instruction register, a function decoder, a register-file read
   captured into an operand register, an ALU with output latch, a parity
   check on the operand bus, a program counter (a feedback counter with
   its CORR delay, §4.2.3) and a diagnostic shift register.  Every
   interface signal carries its assertion, so this slice verifies by
   itself — and the example finishes by asking the CORR advisor and the
   worst-case path analysis what they think of it. *)

open Scald_core
open Scald_cells

let build () =
  let tb = Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25 in
  let nl = Netlist.create tb in
  let clock name =
    let id = Netlist.signal nl name in
    Netlist.set_wire_delay nl id Delay.zero;
    id
  in
  (* clocks: pipeline registers at unit 7, the register-file write pulse
     early in the cycle, the ALU latch mid-cycle, the result register at
     the cycle boundary *)
  let ck_pipe = clock "CK PIPE .P7-8" in
  let ck_we = clock "CK WE .P2-3" in
  let alu_le = clock "ALU LE .P4-5" in
  let ck_result = clock "CK RESULT .P0-1" in

  (* instruction fetch: the instruction bus is stable except at the very
     end of the cycle *)
  let instr_bus = Netlist.signal nl "INSTR BUS .S0-7.6" in
  Netlist.set_width nl instr_bus 32;
  let ir_q = Netlist.signal nl "IR Q" in
  Netlist.set_width nl ir_q 32;
  Cells.register nl ~name:"IR" ~data:(Netlist.conn instr_bus) ~clock:(Netlist.conn ck_pipe)
    ir_q;
  let ir = Netlist.signal nl "IR" in
  Netlist.set_width nl ir 32;
  Cells.buf nl ~name:"IR CORR" ~delay:(Delay.of_ns 4.0 4.0) ~a:(Netlist.conn ir_q) ir;

  (* decode *)
  let fn_sel = Netlist.signal nl "FN SEL" in
  Netlist.set_width nl fn_sel 4;
  Cells.decoder nl ~name:"FN DECODER" ~select:(Netlist.conn ir) fn_sel;

  (* register-file read, write-enable gated with &H on the clock *)
  let wctl = Netlist.signal nl "WRITE CTL .S0-8 L" in
  let we = Netlist.signal nl "RF WE" in
  Cells.and2 nl ~name:"RF WE GATE"
    ~a:(Netlist.conn ~directive:[ Directive.H ] ck_we)
    ~b:(Netlist.conn ~invert:true wctl)
    we;
  let wdata = Netlist.signal nl "RF W DATA .S0-4" in
  Netlist.set_width nl wdata 32;
  let cs = Netlist.signal nl "RF CS .S0-8 L" in
  let rf_out = Netlist.signal nl "RF OUT" in
  Netlist.set_width nl rf_out 32;
  Cells.ram16 nl ~size:32 ~data:(Netlist.conn wdata) ~adr:(Netlist.conn ir)
    ~cs:(Netlist.conn cs) ~we:(Netlist.conn we) rf_out;

  (* the register-file read is captured into the operand register at the
     end of the cycle; the next stage computes on it *)
  let opb_q = Netlist.signal nl "OPB Q" in
  Netlist.set_width nl opb_q 32;
  Cells.register nl ~name:"OPB REG" ~data:(Netlist.conn rf_out)
    ~clock:(Netlist.conn ck_pipe) opb_q;
  let opb = Netlist.signal nl "OPB" in
  Netlist.set_width nl opb 32;
  Cells.buf nl ~name:"OPB CORR" ~delay:(Delay.of_ns 4.0 4.0) ~a:(Netlist.conn opb_q) opb;

  (* bypass network: operand B can come from the register file or from
     the forwarded result — complementary selects, a case-analysis
     circuit by construction *)
  let bypass = Netlist.signal nl "BYPASS .S0-8" in
  let fwd = Netlist.signal nl "FWD RESULT .S1.5-7.5" in
  Netlist.set_width nl fwd 32;
  let alu_b = Netlist.signal nl "ALU B" in
  Netlist.set_width nl alu_b 32;
  Cells.mux2 nl ~name:"BYPASS MUX" ~a:(Netlist.conn opb) ~b:(Netlist.conn fwd)
    ~sel:(Netlist.conn bypass) alu_b;

  (* ALU with output latch (Figure 3-9) *)
  let carry_in = Netlist.signal nl "CARRY IN .S0-5.5" in
  let alu_out = Netlist.signal nl "ALU OUT" in
  Netlist.set_width nl alu_out 32;
  Cells.alu_latch nl ~size:32 ~a:(Netlist.conn ir) ~b:(Netlist.conn alu_b)
    ~carry_in:(Netlist.conn carry_in) ~fn_select:(Netlist.conn fn_sel)
    ~enable:(Netlist.conn alu_le) alu_out;

  (* result register at the cycle boundary *)
  let result = Netlist.signal nl "RESULT" in
  Netlist.set_width nl result 32;
  Cells.register nl ~name:"RESULT REG" ~data:(Netlist.conn alu_out)
    ~clock:(Netlist.conn ck_result) result;

  (* parity check over the operand bus *)
  let par = Netlist.signal nl "OPB PARITY" in
  Cells.parity_tree nl ~name:"OPB PARITY"
    ~inputs:(List.init 8 (fun _ -> Netlist.conn opb))
    par;
  let par_q = Netlist.signal nl "OPB PARITY Q" in
  Cells.register nl ~name:"PARITY REG" ~data:(Netlist.conn par)
    ~clock:(Netlist.conn ck_pipe) par_q;

  (* program counter: the thesis's canonical feedback circuit, with its
     built-in CORR delay *)
  let pc = Netlist.signal nl "PC" in
  Netlist.set_width nl pc 16;
  let pc_en = Netlist.signal nl "PC EN .S0-8" in
  Cells.counter nl ~name:"PC" ~clock:(Netlist.conn ck_pipe) ~enable:(Netlist.conn pc_en)
    pc;

  (* diagnostic shift register on the instruction stream *)
  let diag = Netlist.signal nl "DIAG TAP" in
  Cells.shift_register nl ~name:"DIAG" ~stages:3 ~data:(Netlist.conn ir)
    ~clock:(Netlist.conn ck_pipe) diag;
  nl

let () =
  let nl = build () in
  let cases = Case_analysis.parse_exn "BYPASS .S0-8 = 0;\nBYPASS .S0-8 = 1;\n" in
  let report = Verifier.verify ~cases nl in
  Format.printf "%a@.@." Report.pp_summary report.Verifier.r_eval;
  Format.printf "%a@." Report.pp_violations report.Verifier.r_violations;
  Format.printf "@.%d primitives, %d events over %d cases@." (Netlist.n_insts nl)
    report.Verifier.r_events
    (List.length report.Verifier.r_cases);
  (* what does the CORR advisor think? all feedback is already protected *)
  let advice = Path_analysis.Corr.advise nl in
  Format.printf "@.CORR advisor: %d recommendation(s)@." (List.length advice);
  List.iter (fun a -> Format.printf "  %a@." Path_analysis.Corr.pp_advice a) advice;
  (* and the worst path, for curiosity *)
  (match Path_analysis.worst (Path_analysis.analyze nl) with
  | Some p -> Format.printf "@.worst combinational path: %a@." Path_analysis.pp_path p
  | None -> ());
  if Verifier.clean report then print_endline "\nRESULT: the slice meets all timing constraints"
  else print_endline "\nRESULT: timing errors above"
