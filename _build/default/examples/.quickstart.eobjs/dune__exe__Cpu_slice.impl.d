examples/cpu_slice.ml: Case_analysis Cells Delay Directive Format List Netlist Path_analysis Report Scald_cells Scald_core Timebase Verifier
