examples/modular_design.ml: Cells Check Delay Format List Modular Netlist Scald_cells Scald_core Timebase Verifier
