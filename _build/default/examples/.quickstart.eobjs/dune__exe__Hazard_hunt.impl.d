examples/hazard_hunt.ml: Check Circuits Format List Scald_cells Scald_core Verifier
