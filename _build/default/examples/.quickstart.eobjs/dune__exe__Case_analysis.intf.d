examples/case_analysis.mli:
