examples/s1_datapath.ml: Circuits Format List Report Scald_cells Scald_core Verifier
