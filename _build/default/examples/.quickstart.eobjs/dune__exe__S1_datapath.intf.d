examples/s1_datapath.mli:
