examples/hazard_hunt.mli:
