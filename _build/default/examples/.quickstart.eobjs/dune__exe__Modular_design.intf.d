examples/modular_design.mli:
