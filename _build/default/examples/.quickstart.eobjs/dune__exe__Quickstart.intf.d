examples/quickstart.mli:
