examples/cpu_slice.mli:
