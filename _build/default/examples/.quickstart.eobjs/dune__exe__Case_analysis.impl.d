examples/case_analysis.ml: Case_analysis Circuits Format List Printf Scald_cells Scald_core Verifier
