(* Quickstart: verify the register-file circuit of Figure 2-5 / §3.2.

   Builds the thesis's worked example — a 16x32 register file with a
   multiplexed address, gated write enable, and an output register — and
   runs the Timing Verifier on it, printing the signal-value summary
   (Figure 3-10) and the error listing (Figure 3-11). *)

open Scald_core
open Scald_cells

let () =
  let circuit = Circuits.register_file_example () in
  let nl = circuit.Circuits.rf_netlist in
  let report = Verifier.verify nl in
  let ev = report.Verifier.r_eval in
  Format.printf "%a@.@." Report.pp_summary ev;
  Format.printf "%a@." Report.pp_violations report.Verifier.r_violations;
  List.iter
    (fun v -> Format.printf "@.%a@." (fun ppf -> Report.pp_violation_with_values ppf ev) v)
    report.Verifier.r_violations;
  Format.printf "@.%a@." Report.pp_cross_reference nl;
  Format.printf "@.events processed: %d   evaluations: %d@." report.Verifier.r_events
    report.Verifier.r_evaluations;
  if Verifier.clean report then print_endline "RESULT: no timing errors"
  else
    Format.printf "RESULT: %d timing error(s) found@."
      (List.length report.Verifier.r_violations)
