(* A typical S-1 Mark IIA arithmetic circuit (Figure 3-12, §3.3.1).

   A 36-bit ALU with output latch, a debugging/status register with a
   load-enable-gated clock, and the function decoder feeding the ALU
   select inputs.  All interface signals carry assertions, so this
   section of the processor can be verified by itself — the workflow the
   S-1 designers used daily. *)

open Scald_core
open Scald_cells

let () =
  let ar = Circuits.arithmetic_example () in
  let nl = ar.Circuits.ar_netlist in
  let report = Verifier.verify nl in
  let ev = report.Verifier.r_eval in
  Format.printf "%a@.@." Report.pp_summary ev;
  Format.printf "%a@." Report.pp_violations report.Verifier.r_violations;
  Format.printf "@.events processed: %d@." report.Verifier.r_events;
  if Verifier.clean report then
    print_endline "RESULT: the arithmetic section meets all timing constraints"
  else
    Format.printf "RESULT: %d violation(s) -- see listing above@."
      (List.length report.Verifier.r_violations)
