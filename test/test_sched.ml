(* Levelized scheduler: the schedule must reflect the circuit's
   structure (levels, components, feedback regions), and — the contract
   that makes it safe to ship as the default — the levelized evaluator
   must reach exactly the verdicts of the historical FIFO relaxation on
   every circuit, including ones that diverge. *)

open Scald_core

let prop = Test_par.prop

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---- builders ---------------------------------------------------------------- *)

let fresh_netlist () =
  Netlist.create
    (Timebase.make ~period_ns:50.0 ~clock_unit_ns:5.0)
    ~default_wire_delay:Delay.zero

let buf = Primitive.Buf { invert = false; delay = Delay.of_ns 1.0 2.0 }

(* IN -> B0 -> B1 -> ... -> B(n-1), one buffer per stage *)
let chain n =
  let nl = fresh_netlist () in
  let input = Netlist.signal nl "IN .S0-8" in
  let rec go i current insts =
    if i = n then (nl, List.rev insts)
    else begin
      let next = Netlist.signal nl (Printf.sprintf "N%d" i) in
      let inst =
        Netlist.add nl ~name:(Printf.sprintf "B%d" i) buf
          ~inputs:[ Netlist.conn current ] ~output:(Some next)
      in
      go (i + 1) next (inst :: insts)
    end
  in
  go 0 input []

let test_chain_levels () =
  let nl, insts = chain 5 in
  let s = Sched.compute nl in
  Alcotest.(check int) "acyclic: one component per instance" 5 (Sched.n_sccs s);
  Alcotest.(check int) "largest component is a single instance" 1
    (Sched.max_scc_size s);
  Alcotest.(check int) "no cyclic components" 0 (Sched.n_cyclic s);
  Alcotest.(check int) "five levels" 5 (Sched.n_levels s);
  List.iteri
    (fun i (inst : Netlist.inst) ->
      Alcotest.(check int)
        (Printf.sprintf "stage %d sits at level %d" i i)
        i
        (Sched.level s inst.Netlist.i_id);
      Alcotest.(check int) "acyclic instances have no slot" (-1)
        (Sched.cyclic_slot s inst.Netlist.i_id))
    insts

let test_feedback_scc () =
  (* the slow_loop feedback region: XD -> AND -> OR -> X -> XD *)
  let nl = Test_par.slow_loop () in
  let s = Sched.compute nl in
  Alcotest.(check int) "one cyclic component" 1 (Sched.n_cyclic s);
  Alcotest.(check int) "all three loop instances in it" 3 (Sched.max_scc_size s);
  Alcotest.(check int) "its size by slot" 3 (Sched.cyclic_size s 0);
  let members = ref [] in
  Netlist.iter_insts nl (fun inst ->
      if Sched.cyclic_slot s inst.Netlist.i_id = 0 then
        members := inst.Netlist.i_name :: !members);
  Alcotest.(check int) "three members carry the slot" 3 (List.length !members);
  let region = Sched.cyclic_region s 0 nl in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "region names %s" name)
        true
        (contains ~sub:name region))
    !members;
  (* members share one component, hence one level *)
  let levels =
    List.sort_uniq compare
      (List.concat_map
         (fun name ->
           let l = ref [] in
           Netlist.iter_insts nl (fun inst ->
               if inst.Netlist.i_name = name then
                 l := Sched.level s inst.Netlist.i_id :: !l);
           !l)
         !members)
  in
  Alcotest.(check int) "members share one level" 1 (List.length levels)

let test_self_loop () =
  let nl = fresh_netlist () in
  let p = Netlist.signal nl "P .P(0,0)0-2" in
  let x = Netlist.signal nl "X" in
  ignore
    (Netlist.add nl ~name:"SELF"
       (Primitive.Gate
          { fn = Primitive.Or; n_inputs = 2; invert = false; delay = Delay.zero })
       ~inputs:[ Netlist.conn x; Netlist.conn p ]
       ~output:(Some x));
  let s = Sched.compute nl in
  Alcotest.(check int) "self-loop is a cyclic component of size 1" 1
    (Sched.cyclic_size s 0);
  Alcotest.(check bool) "self-loop instance carries a slot" true
    (let slot = ref (-1) in
     Netlist.iter_insts nl (fun inst ->
         if inst.Netlist.i_name = "SELF" then
           slot := Sched.cyclic_slot s inst.Netlist.i_id);
     !slot = 0)

(* ---- level vs fifo equivalence ------------------------------------------------ *)

(* Cross-discipline equality is verdict-based: the violation listing
   (contents and order), per-case verdicts, convergence flags and the
   unasserted listing must match; counters and event totals legitimately
   differ — fewer evaluations is the point.  The one field that differs
   on purpose is the [No_convergence] detail: the levelized verdict
   names the feedback region, the historical one cannot. *)
let normalize (v : Check.t) =
  if v.Check.v_kind = Check.No_convergence then { v with Check.v_detail = "" }
  else v

let verdicts_equal (a : Verifier.report) (b : Verifier.report) =
  let vs r = List.map normalize r in
  let case_equal (x : Verifier.case_result) (y : Verifier.case_result) =
    x.Verifier.cr_case = y.Verifier.cr_case
    && vs x.Verifier.cr_violations = vs y.Verifier.cr_violations
    && x.Verifier.cr_converged = y.Verifier.cr_converged
  in
  vs a.Verifier.r_violations = vs b.Verifier.r_violations
  && a.Verifier.r_converged = b.Verifier.r_converged
  && a.Verifier.r_unasserted = b.Verifier.r_unasserted
  && List.length a.Verifier.r_cases = List.length b.Verifier.r_cases
  && List.for_all2 case_equal a.Verifier.r_cases b.Verifier.r_cases

let test_modes_agree_on_feedback () =
  let run sched = Verifier.verify ~sched (Test_par.slow_loop ()) in
  Alcotest.(check bool) "verdicts agree on the feedback circuit" true
    (verdicts_equal (run Eval.Fifo) (run Eval.Level))

let test_modes_agree_on_divergence () =
  (* the slow-relaxation regression: case 1 diverges under both
     disciplines, and the level verdict now names the feedback region *)
  let run sched =
    Verifier.verify ~sched ~cases:Test_par.slow_loop_cases (Test_par.slow_loop ())
  in
  let rf = run Eval.Fifo and rl = run Eval.Level in
  Alcotest.(check bool) "fifo diverges on case 1" false rf.Verifier.r_converged;
  Alcotest.(check bool) "level diverges on case 1" false rl.Verifier.r_converged;
  let flags r =
    List.map (fun (c : Verifier.case_result) -> c.Verifier.cr_converged)
      r.Verifier.r_cases
  in
  Alcotest.(check (list bool)) "same per-case convergence" (flags rf) (flags rl);
  (match Verifier.violations_of_kind Check.No_convergence rl with
  | v :: _ ->
    Alcotest.(check bool) "level verdict names the feedback region" true
      (contains ~sub:"feedback region" v.Check.v_detail)
  | [] -> Alcotest.fail "level run reported no No_convergence violation")

let test_waveforms_agree () =
  (* the converging case (CTL = 0 cuts the loop): both disciplines must
     settle every net to the same waveform.  Diverged cases make no such
     promise — their truncated waveforms depend on the visit order. *)
  let case = Case_analysis.parse_exn "CTL .S0-9 = 0;\n" in
  let nl_f = Test_par.slow_loop () and nl_l = Test_par.slow_loop () in
  let ef = Eval.create ~mode:Eval.Fifo nl_f in
  let el = Eval.create ~mode:Eval.Level nl_l in
  Eval.run ~case:(Case_analysis.resolve nl_f (List.hd case)) ef;
  Eval.run ~case:(Case_analysis.resolve nl_l (List.hd case)) el;
  Alcotest.(check bool) "fifo converged" true (Eval.converged ef);
  Alcotest.(check bool) "level converged" true (Eval.converged el);
  Netlist.iter_nets nl_f (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "same waveform on %s" n.Netlist.n_name)
        true
        (Waveform.equal (Eval.value ef n.Netlist.n_id) (Eval.value el n.Netlist.n_id)))

(* ---- counters ------------------------------------------------------------------ *)

let test_structural_counters () =
  let nl, _ = chain 4 in
  let r = Verifier.verify nl in
  Alcotest.(check int) "level mode surfaces the level count" 4
    r.Verifier.r_obs.Verifier.os_sched_levels;
  Alcotest.(check int) "and the component count" 4 r.Verifier.r_obs.Verifier.os_sccs;
  Alcotest.(check int) "largest component" 1 r.Verifier.r_obs.Verifier.os_max_scc_size;
  Alcotest.(check bool) "cache was exercised" true
    (r.Verifier.r_obs.Verifier.os_cache_misses > 0);
  let nl2, _ = chain 4 in
  let rf = Verifier.verify ~sched:Eval.Fifo nl2 in
  Alcotest.(check int) "fifo mode never computes a schedule" 0
    rf.Verifier.r_obs.Verifier.os_sched_levels;
  Alcotest.(check int) "fifo component count is zero" 0
    rf.Verifier.r_obs.Verifier.os_sccs

let test_cache_hits_during_relaxation () =
  (* inside the feedback region the loop signal changes every pass while
     CTL never does — re-evaluating the AND must hit the cache on the
     CTL connection instead of recomputing its waveform *)
  let nl = Test_par.slow_loop () in
  let case = Case_analysis.parse_exn "CTL .S0-9 = 0;\n" in
  let ev = Eval.create nl in
  Eval.run ~case:(Case_analysis.resolve nl (List.hd case)) ev;
  let c = Eval.counters ev in
  Alcotest.(check bool) "relaxation hits the input cache" true
    (c.Eval.c_cache_hits > 0)

(* ---- properties ----------------------------------------------------------------- *)

let properties =
  [
    prop "level and fifo verdicts agree on random netlists" Test_par.gen_recipe
      (fun r ->
        let cases = Test_par.recipe_cases r in
        verdicts_equal
          (Verifier.verify ~cases ~sched:Eval.Fifo (Test_par.build_recipe r))
          (Verifier.verify ~cases ~sched:Eval.Level (Test_par.build_recipe r)));
    prop "level and fifo waveforms agree on random netlists" Test_par.gen_recipe
      (fun r ->
        let nl_f = Test_par.build_recipe r and nl_l = Test_par.build_recipe r in
        let ef = Eval.create ~mode:Eval.Fifo nl_f in
        let el = Eval.create ~mode:Eval.Level nl_l in
        Eval.run ef;
        Eval.run el;
        List.for_all2 Waveform.equal
          (Test_par.waveforms nl_f ef)
          (Test_par.waveforms nl_l el));
  ]

let suite =
  [
    Alcotest.test_case "chain levels" `Quick test_chain_levels;
    Alcotest.test_case "feedback scc" `Quick test_feedback_scc;
    Alcotest.test_case "self loop" `Quick test_self_loop;
    Alcotest.test_case "modes agree on feedback" `Quick test_modes_agree_on_feedback;
    Alcotest.test_case "modes agree on divergence" `Quick
      test_modes_agree_on_divergence;
    Alcotest.test_case "waveforms agree" `Quick test_waveforms_agree;
    Alcotest.test_case "structural counters" `Quick test_structural_counters;
    Alcotest.test_case "cache hits during relaxation" `Quick
      test_cache_hits_during_relaxation;
  ]
  @ properties
