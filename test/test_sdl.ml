open Scald_core
module Lexer = Scald_sdl.Lexer
module Parser = Scald_sdl.Parser
module Expander = Scald_sdl.Expander
module Ast = Scald_sdl.Ast

(* ---- lexer -------------------------------------------------------------- *)

let toks src =
  match Lexer.tokenize src with
  | Ok l -> List.map (fun x -> x.Lexer.tok) l
  | Error e -> Alcotest.fail e

let test_lexer_basic () =
  match toks "REG (DELAY=1.5/4.5) (I, CK) -> Q;" with
  | [ Lexer.Word "REG"; Lexer.Lparen; Lexer.Word "DELAY"; Lexer.Equals;
      Lexer.Word "1.5/4.5"; Lexer.Rparen; Lexer.Lparen; Lexer.Word "I"; Lexer.Comma;
      Lexer.Word "CK"; Lexer.Rparen; Lexer.Arrow; Lexer.Word "Q"; Lexer.Semi; Lexer.Eof ]
    -> ()
  | l -> Alcotest.failf "unexpected tokens (%d)" (List.length l)

let test_lexer_assertion_words () =
  (* ".P2-3" lexes as one word: the '-' is glued *)
  match toks "CK .P2-3 L" with
  | [ Lexer.Word "CK"; Lexer.Word ".P2-3"; Lexer.Word "L"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "assertion should stay in word form"

let test_lexer_complement_and_directive () =
  match toks "- WE &HZ" with
  | [ Lexer.Minus; Lexer.Word "WE"; Lexer.Amp "HZ"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "complement / directive tokens"

let test_lexer_scopes () =
  match toks "I /P, L /M" with
  | [ Lexer.Word "I"; Lexer.Scope_p; Lexer.Comma; Lexer.Word "L"; Lexer.Scope_m; Lexer.Eof ]
    -> ()
  | _ -> Alcotest.fail "scope tokens"

let test_lexer_comment () =
  match toks "A -- a comment\nB" with
  | [ Lexer.Word "A"; Lexer.Word "B"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "comments stripped"

let test_lexer_negative_number () =
  match toks "HOLD=-1.0" with
  | [ Lexer.Word "HOLD"; Lexer.Equals; Lexer.Word "-1.0"; Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "negative number glued"

(* ---- parser ---------------------------------------------------------------- *)

let parse_ok src =
  match Parser.parse src with Ok d -> d | Error e -> Alcotest.failf "parse: %s" e

let test_parse_settings () =
  match parse_ok "PERIOD 50.0;\nCLOCK UNIT 6.25;\nDEFAULT WIRE DELAY 0.0/2.0;" with
  | [ Ast.Period p; Ast.Clock_unit u; Ast.Default_wire (a, b) ] ->
    Alcotest.(check (float 1e-9)) "period" 50.0 p;
    Alcotest.(check (float 1e-9)) "unit" 6.25 u;
    Alcotest.(check (pair (float 1e-9) (float 1e-9))) "wire" (0.0, 2.0) (a, b)
  | _ -> Alcotest.fail "settings"

let test_parse_instance () =
  match parse_ok "PERIOD 50.0;\n2 AND (DELAY=1.0/2.9) (- CK .P2-3 L &H, - WRITE .S0-6 L) -> WRITE EN;" with
  | [ Ast.Period _; Ast.Top_instance i ] ->
    Alcotest.(check string) "head" "2 AND" i.Ast.i_head;
    Alcotest.(check int) "two args" 2 (List.length i.Ast.i_args);
    let a = List.hd i.Ast.i_args in
    Alcotest.(check bool) "complement" true a.Ast.complement;
    Alcotest.(check string) "name keeps assertion" "CK .P2-3 L" a.Ast.name;
    Alcotest.(check (option string)) "directive" (Some "H") a.Ast.directive;
    (match i.Ast.i_outs with
    | [ o ] -> Alcotest.(check string) "output" "WRITE EN" o.Ast.name
    | _ -> Alcotest.fail "one output")
  | _ -> Alcotest.fail "instance"

let test_parse_multirange_comma () =
  (* a comma inside ".C2-3,5-6" does not split the argument list *)
  match parse_ok "PERIOD 50.0;\n1 CHG (DELAY=1/1) (X .C2-3,5-6) -> Y;" with
  | [ Ast.Period _; Ast.Top_instance i ] ->
    Alcotest.(check int) "one arg" 1 (List.length i.Ast.i_args);
    Alcotest.(check string) "full assertion" "X .C2-3,5-6" (List.hd i.Ast.i_args).Ast.name
  | _ -> Alcotest.fail "multirange"

let test_parse_macro () =
  let src =
    "MACRO REG 10176;\nPARAMETER I /P, CK /P, Q /P;\nBODY\n\
     REG (DELAY=1.5/4.5) (I /P, CK /P) -> Q /P;\nEND;"
  in
  match parse_ok src with
  | [ Ast.Macro m ] ->
    Alcotest.(check string) "name" "REG 10176" m.Ast.m_name;
    Alcotest.(check int) "params" 3 (List.length m.Ast.m_params);
    Alcotest.(check int) "body" 1 (List.length m.Ast.m_body)
  | _ -> Alcotest.fail "macro"

let test_parse_wire_and_width () =
  match parse_ok "PERIOD 50.0;\nWIRE DELAY (ADR<0:3>) = 0.0/6.0;\nWIDTH (RAM OUT) = 32;" with
  | [ Ast.Period _; Ast.Wire_delay (s, (a, b)); Ast.Width_decl (w, n) ] ->
    Alcotest.(check string) "signal" "ADR<0:3>" s.Ast.name;
    Alcotest.(check (pair (float 1e-9) (float 1e-9))) "range" (0.0, 6.0) (a, b);
    Alcotest.(check string) "width signal" "RAM OUT" w.Ast.name;
    Alcotest.(check int) "width" 32 n
  | _ -> Alcotest.fail "wire/width"

let test_parse_errors () =
  let fails src =
    match Parser.parse src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %S to fail" src
  in
  fails "PERIOD;";
  fails "MACRO X; BODY";  (* unterminated *)
  fails "2 AND (A, B) Q;" (* missing arrow and semi *)

(* ---- expander ------------------------------------------------------------------ *)

let expand_ok src =
  match Expander.load src with
  | Ok e -> e
  | Error e -> Alcotest.failf "expand: %s" e

let test_expand_simple () =
  let e =
    expand_ok
      "PERIOD 50.0;\n2 OR (DELAY=1.0/2.9) (A .S0-6, B .S0-6) -> Q;"
  in
  let nl = e.Expander.e_netlist in
  Alcotest.(check int) "one primitive" 1 (Netlist.n_insts nl);
  Alcotest.(check int) "three signals" 3 (Netlist.n_nets nl);
  Alcotest.(check int) "summary primitives" 1 e.Expander.e_summary.Expander.s_primitives

let test_expand_macro_binding () =
  let src =
    "PERIOD 50.0;\n\
     MACRO BUF CHIP;\nPARAMETER I /P, Q /P;\nBODY\n\
     BUF (DELAY=1.0/2.0) (I /P) -> Q /P;\nEND;\n\
     BUF CHIP (X .S0-6) -> Y;\n"
  in
  let e = expand_ok src in
  let nl = e.Expander.e_netlist in
  (* the formal parameters resolve to the caller's signals: no extra nets *)
  Alcotest.(check bool) "X exists" true (Netlist.find nl "X .S0-6" <> None);
  Alcotest.(check bool) "Y exists" true (Netlist.find nl "Y" <> None);
  Alcotest.(check int) "exactly the caller's nets" 2 (Netlist.n_nets nl);
  Alcotest.(check int) "one macro expanded" 1 e.Expander.e_summary.Expander.s_macros_expanded;
  Alcotest.(check bool) "synonyms recorded" true
    (e.Expander.e_summary.Expander.s_synonyms >= 2)

let test_expand_size_parameter () =
  let src =
    "PERIOD 50.0;\n\
     MACRO W CHIP;\nPARAMETER I<0:SIZE-1> /P, Q<0:SIZE-1> /P;\nBODY\n\
     BUF (DELAY=1.0/2.0) (I<0:SIZE-1> /P) -> Q<0:SIZE-1> /P;\nEND;\n\
     W CHIP (SIZE=32) (DATA<0:31>) -> OUT<0:31>;\n"
  in
  let e = expand_ok src in
  let nl = e.Expander.e_netlist in
  match Netlist.find nl "OUT<0:31>" with
  | Some id -> Alcotest.(check int) "width 32" 32 (Netlist.net nl id).Netlist.n_width
  | None -> Alcotest.fail "vector output missing"

let test_expand_locals_unique () =
  let src =
    "PERIOD 50.0;\n\
     MACRO D CHIP;\nPARAMETER I /P, Q /P;\nBODY\n\
     BUF (DELAY=1.0/1.0) (I /P) -> T /M;\n\
     BUF (DELAY=1.0/1.0) (T /M) -> Q /P;\nEND;\n\
     D CHIP (A .S0-6) -> B;\nD CHIP (B) -> C;\n"
  in
  let e = expand_ok src in
  let nl = e.Expander.e_netlist in
  (* two expansions, each with its own local T: 4 buffers, and the two
     T's are distinct nets *)
  Alcotest.(check int) "four primitives" 4 (Netlist.n_insts nl);
  Alcotest.(check int) "A B C + two locals" 5 (Netlist.n_nets nl)

let test_expand_complement_composition () =
  let src =
    "PERIOD 50.0;\n\
     MACRO N CHIP;\nPARAMETER I /P, Q /P;\nBODY\n\
     BUF (DELAY=0.0/0.0) (- I /P) -> Q /P;\nEND;\n\
     N CHIP (- X .C2-3) -> Y;\nWIRE DELAY (X .C2-3) = 0.0/0.0;\n"
  in
  let e = expand_ok src in
  let nl = e.Expander.e_netlist in
  let ev = Eval.create nl in
  Eval.run ev;
  (* double complement: Y follows X *)
  match Netlist.find nl "Y" with
  | Some y ->
    let v = Waveform.value_at (Eval.value ev y) (Timebase.ps_of_ns 15.) in
    Alcotest.(check char) "double complement cancels" '1' (Tvalue.to_char v)
  | None -> Alcotest.fail "Y missing"

let test_expand_nested_macros () =
  let src =
    "PERIOD 50.0;\n\
     MACRO INNER;\nPARAMETER I /P, Q /P;\nBODY\n\
     BUF (DELAY=1.0/1.0) (I /P) -> Q /P;\nEND;\n\
     MACRO OUTER;\nPARAMETER I /P, Q /P;\nBODY\n\
     INNER (I /P) -> M /M;\nINNER (M /M) -> Q /P;\nEND;\n\
     OUTER (A .S0-6) -> B;\n"
  in
  let e = expand_ok src in
  Alcotest.(check int) "two primitives" 2 (Netlist.n_insts e.Expander.e_netlist);
  Alcotest.(check int) "three macro expansions" 3
    e.Expander.e_summary.Expander.s_macros_expanded

let test_expand_recursive_macro_rejected () =
  let src =
    "PERIOD 50.0;\n\
     MACRO LOOP;\nPARAMETER I /P, Q /P;\nBODY\nLOOP (I /P) -> Q /P;\nEND;\n\
     LOOP (A .S0-6) -> B;\n"
  in
  match Expander.load src with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "recursive macro should be rejected"

let test_expand_errors () =
  let fails src =
    match Expander.load src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected failure"
  in
  fails "2 OR (DELAY=1/1) (A, B) -> Q;" (* no PERIOD *);
  fails "PERIOD 50.0;\nFROB (A) -> B;" (* unknown head *);
  fails "PERIOD 50.0;\n2 OR (A, B) -> Q;" (* missing DELAY *);
  fails "PERIOD 50.0;\nMACRO M;\nPARAMETER I /P, Q /P;\nBODY\nBUF (DELAY=1/1) (I /P) -> Q /P;\nEND;\nM (A) -> B -> C;"

let test_expand_zero_one () =
  let e = expand_ok "PERIOD 50.0;\nZERO () -> GND;\nONE () -> VCC;" in
  let nl = e.Expander.e_netlist in
  let ev = Eval.create nl in
  Eval.run ev;
  let v net = Waveform.value_at (Eval.value ev net) 0 in
  Alcotest.(check char) "gnd" '0'
    (Tvalue.to_char (v (Option.get (Netlist.find nl "GND"))));
  Alcotest.(check char) "vcc" '1'
    (Tvalue.to_char (v (Option.get (Netlist.find nl "VCC"))))

(* ---- end-to-end: the SDL register-file example matches the API one ------------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_register_file_sdl_matches_api () =
  let src = read_file "../examples/register_file.sdl" in
  let e = expand_ok src in
  let report = Verifier.verify e.Expander.e_netlist in
  let api = Scald_cells.Circuits.register_file_example () in
  let api_report = Verifier.verify api.Scald_cells.Circuits.rf_netlist in
  let summarize r =
    List.map
      (fun (v : Check.t) ->
        (Check.kind_name v.Check.v_kind, v.Check.v_signal, v.Check.v_required,
         v.Check.v_actual, v.Check.v_at))
      r.Verifier.r_violations
    |> List.sort compare
  in
  Alcotest.(check int) "same violation count"
    (List.length api_report.Verifier.r_violations)
    (List.length report.Verifier.r_violations);
  Alcotest.(check bool) "identical violations" true
    (summarize report = summarize api_report)

let test_wire_rule_statement () =
  let src =
    "PERIOD 50.0;\nWIRE RULE 0.0/1.0 PER LOAD 0.0/0.5;\n\
     2 OR (DELAY=1.0/2.0) (A .S0-6, B .S0-6) -> Q;\n\
     2 OR (DELAY=1.0/2.0) (A .S0-6, Q) -> Q2;\n"
  in
  let e = expand_ok src in
  let nl = e.Expander.e_netlist in
  (* A has two loads: base plus one increment *)
  (match (Netlist.net nl (Option.get (Netlist.find nl "A .S0-6"))).Netlist.n_wire_delay with
  | Some d ->
    Alcotest.(check bool) "A loaded" true (Delay.equal d (Delay.of_ns 0.0 1.5))
  | None -> Alcotest.fail "rule not applied to A");
  match (Netlist.net nl (Option.get (Netlist.find nl "Q"))).Netlist.n_wire_delay with
  | Some d -> Alcotest.(check bool) "Q one load" true (Delay.equal d (Delay.of_ns 0.0 1.0))
  | None -> Alcotest.fail "rule not applied to Q"

let test_s1_subset_clean () =
  (* the full three-stage pipeline design: nested macros, directives,
     vectors, CORR elements — expands and verifies clean under both
     bypass cases *)
  let src = read_file "../examples/s1_subset.sdl" in
  let e = expand_ok src in
  let cases = Case_analysis.parse_exn (read_file "../examples/s1_subset.cases") in
  let report = Verifier.verify ~cases e.Expander.e_netlist in
  Alcotest.(check bool) "converged" true report.Verifier.r_converged;
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun (v : Check.t) -> Format.asprintf "%a" Check.pp v)
       report.Verifier.r_violations);
  Alcotest.(check int) "two cases" 2 (List.length report.Verifier.r_cases);
  (* nested PIPE REG macros: REG CHIP inside PIPE REG resolved two
     levels of parameters *)
  Alcotest.(check bool) "nested expansion produced registers" true
    (let regs = ref 0 in
     Netlist.iter_insts e.Expander.e_netlist (fun i ->
         match i.Netlist.i_prim with
         | Primitive.Reg _ -> incr regs
         | _ -> ());
     !regs >= 6);
  (* the advisor is satisfied: every feedback path carries its CORR *)
  Alcotest.(check int) "no corr advice" 0
    (List.length (Path_analysis.Corr.advise e.Expander.e_netlist))

(* ---- streaming expansion ----------------------------------------------------------- *)

let test_stream_matches_materialized () =
  (* the single-pass streaming expander must produce a netlist (and hence
     a verification report) bit-identical to the two-pass materialized
     expander on every design both accept *)
  let check_src name src =
    let streamed =
      match Expander.expand_stream src with
      | Ok e -> e
      | Error e -> Alcotest.failf "%s: stream: %s" name e
    in
    let materialized =
      match Parser.parse src with
      | Error e -> Alcotest.failf "%s: parse: %s" name e
      | Ok d -> (
        match Expander.expand d with
        | Ok e -> e
        | Error e -> Alcotest.failf "%s: expand: %s" name e)
    in
    Alcotest.(check bool) (name ^ ": streamed flag") true
      streamed.Expander.e_streamed;
    Alcotest.(check bool) (name ^ ": materialized flag") false
      materialized.Expander.e_streamed;
    let s = streamed.Expander.e_summary and m = materialized.Expander.e_summary in
    Alcotest.(check int) (name ^ ": macros expanded")
      m.Expander.s_macros_expanded s.Expander.s_macros_expanded;
    Alcotest.(check int) (name ^ ": primitives") m.Expander.s_primitives s.Expander.s_primitives;
    Alcotest.(check int) (name ^ ": signals") m.Expander.s_signals s.Expander.s_signals;
    let snl = streamed.Expander.e_netlist and mnl = materialized.Expander.e_netlist in
    Alcotest.(check int) (name ^ ": n_insts") (Netlist.n_insts mnl) (Netlist.n_insts snl);
    Alcotest.(check int) (name ^ ": n_nets") (Netlist.n_nets mnl) (Netlist.n_nets snl);
    let render nl = Format.asprintf "%a" Verifier.pp (Verifier.verify nl) in
    Alcotest.(check string) (name ^ ": identical report") (render mnl) (render snl)
  in
  check_src "register_file" (read_file "../examples/register_file.sdl");
  check_src "s1_subset" (read_file "../examples/s1_subset.sdl");
  check_src "netgen" (Netgen.to_sdl (Netgen.generate (Netgen.scaled ~chips:400 ())))

(* ---- xref ------------------------------------------------------------------------- *)

let test_xref () =
  let e =
    expand_ok "PERIOD 50.0;\n2 OR (DELAY=1.0/2.9) (A .S0-6, B) -> Q;"
  in
  let nl = e.Expander.e_netlist in
  let entries = Scald_sdl.Xref.build nl in
  Alcotest.(check int) "three entries" 3 (List.length entries);
  let q = List.find (fun x -> x.Scald_sdl.Xref.x_signal = "Q") entries in
  Alcotest.(check bool) "Q has a driver" true (q.Scald_sdl.Xref.x_defined_by <> None);
  let unass = Scald_sdl.Xref.unasserted nl in
  Alcotest.(check (list string)) "B unasserted" [ "B" ]
    (List.map (fun x -> x.Scald_sdl.Xref.x_signal) unass)

let suite =
  [
    Alcotest.test_case "lexer basic" `Quick test_lexer_basic;
    Alcotest.test_case "lexer assertion words" `Quick test_lexer_assertion_words;
    Alcotest.test_case "lexer complement/directive" `Quick test_lexer_complement_and_directive;
    Alcotest.test_case "lexer scopes" `Quick test_lexer_scopes;
    Alcotest.test_case "lexer comment" `Quick test_lexer_comment;
    Alcotest.test_case "lexer negative number" `Quick test_lexer_negative_number;
    Alcotest.test_case "parse settings" `Quick test_parse_settings;
    Alcotest.test_case "parse instance" `Quick test_parse_instance;
    Alcotest.test_case "parse multirange comma" `Quick test_parse_multirange_comma;
    Alcotest.test_case "parse macro" `Quick test_parse_macro;
    Alcotest.test_case "parse wire and width" `Quick test_parse_wire_and_width;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "expand simple" `Quick test_expand_simple;
    Alcotest.test_case "expand macro binding" `Quick test_expand_macro_binding;
    Alcotest.test_case "expand size parameter" `Quick test_expand_size_parameter;
    Alcotest.test_case "expand locals unique" `Quick test_expand_locals_unique;
    Alcotest.test_case "expand complement composition" `Quick test_expand_complement_composition;
    Alcotest.test_case "expand nested macros" `Quick test_expand_nested_macros;
    Alcotest.test_case "expand recursive rejected" `Quick test_expand_recursive_macro_rejected;
    Alcotest.test_case "expand errors" `Quick test_expand_errors;
    Alcotest.test_case "expand zero/one" `Quick test_expand_zero_one;
    Alcotest.test_case "register_file.sdl matches API" `Quick test_register_file_sdl_matches_api;
    Alcotest.test_case "wire rule statement" `Quick test_wire_rule_statement;
    Alcotest.test_case "s1_subset.sdl clean" `Quick test_s1_subset_clean;
    Alcotest.test_case "stream matches materialized" `Quick test_stream_matches_materialized;
    Alcotest.test_case "xref" `Quick test_xref;
  ]
