let () =
  Alcotest.run "scald"
    [
      ("timebase", Test_timebase.suite);
      ("tvalue", Test_tvalue.suite);
      ("waveform", Test_waveform.suite);
      ("assertion", Test_assertion.suite);
      ("signal-name", Test_signal_name.suite);
      ("directive", Test_directive.suite);
      ("delay", Test_delay.suite);
      ("netlist", Test_netlist.suite);
      ("eval", Test_eval.suite);
      ("check", Test_check.suite);
      ("case-analysis", Test_case_analysis.suite);
      ("circuits", Test_circuits.suite);
      ("cells", Test_cells.suite);
      ("ecl10k", Test_ecl10k.suite);
      ("sdl", Test_sdl.suite);
      ("report", Test_report.suite);
      ("stats", Test_stats.suite);
      ("logic-sim", Test_logic_sim.suite);
      ("path-analysis", Test_path_analysis.suite);
      ("netgen", Test_netgen.suite);
      ("rise-fall", Test_rise_fall.suite);
      ("prob-analysis", Test_prob.suite);
      ("modular", Test_modular.suite);
      ("properties", Test_properties.suite);
      ("par", Test_par.suite);
      ("sched", Test_sched.suite);
      ("flow", Test_flow.suite);
      ("reporting", Test_reporting.suite);
      ("wire-rule", Test_wire_rule.suite);
      ("physical", Test_physical.suite);
      ("lint", Test_lint.suite);
      ("obs", Test_obs.suite);
      ("golden", Test_golden.suite);
      ("misc", Test_misc.suite);
    ]
