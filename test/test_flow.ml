(* Signal-class dataflow analysis (doc/FLOW.md): class inference on
   small designs, the case-net demotion, pruning soundness — identical
   verdicts with pruning on vs off across both scheduling disciplines
   and job counts — and Netlist.copy preserving the inferred classes. *)

open Scald_core

let prop ?(count = 10) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let load src =
  match Scald_sdl.Expander.load src with
  | Ok e -> e.Scald_sdl.Expander.e_netlist
  | Error msg -> Alcotest.failf "expander: %s" msg

let preamble = "PERIOD 50.0;\nCLOCK UNIT 6.25;\nDEFAULT WIRE DELAY 0.0/2.0;\n"

let flow_of src =
  let nl = load (preamble ^ src) in
  (nl, Flow.analyse nl)

let net_id nl name =
  match Netlist.find nl name with
  | Some id -> id
  | None -> Alcotest.failf "no net %s" name

let cls (nl, f) name = Flow.cls f (net_id nl name)

(* ---- class inference --------------------------------------------------------- *)

let test_clock_classes () =
  let d =
    flow_of
      "2 AND (DELAY=1.0/2.0) (CK .P2-3 &H, EN .S0-8) -> G;\n\
       2 AND (DELAY=1.0/2.0) (G &H, EN .S0-8) -> G2;\n\
       SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (G2, CK .P2-3);\n"
  in
  let nl, f = d in
  let ck = net_id nl "CK .P2-3" in
  (match cls d "CK .P2-3" with
  | Flow.Clock { domains; gated } ->
    Alcotest.(check bool) "root is ungated" false gated;
    Alcotest.(check (list int)) "root is its own domain" [ ck ] domains
  | _ -> Alcotest.fail "CK not a clock");
  (match cls d "G" with
  | Flow.Clock { domains; gated } ->
    Alcotest.(check bool) "derived clock is gated" true gated;
    Alcotest.(check (list int)) "domain survives gating" [ ck ] domains
  | _ -> Alcotest.fail "G not a clock");
  (match cls d "G2" with
  | Flow.Clock { gated = true; _ } -> ()
  | _ -> Alcotest.fail "G2 not a gated clock");
  Alcotest.(check bool) "clock cone reaches the checker input" true
    (Flow.reaches_clock f (net_id nl "G2"))

let test_data_and_stable_classes () =
  let d =
    flow_of
      "REG (DELAY=1.5/4.5) (D .S0-4, CK .P2-3) -> Q;\n\
       SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S0-4, CK .P2-3);\n\
       1 CHG (DELAY=1.0/2.0) (EN .S0-8) -> X;\n\
       SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (X, CK .P2-3);\n\
       SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (Q, CK .P2-3);\n"
  in
  let nl, _ = d in
  let ck = net_id nl "CK .P2-3" in
  (match cls d "Q" with
  | Flow.Data domains ->
    Alcotest.(check (list int)) "register output tagged with its clock" [ ck ]
      domains
  | _ -> Alcotest.fail "Q not data");
  (* a full-period .S assertion is stable; a partial window is data *)
  Alcotest.(check bool) "EN .S0-8 is stable" true (cls d "EN .S0-8" = Flow.Stable);
  Alcotest.(check bool) "D .S0-4 changes inside the period" true
    (cls d "D .S0-4" = Flow.Data []);
  (* logic computed only from stable signals stays stable *)
  Alcotest.(check bool) "gate of stable inputs is stable" true
    (cls d "X" = Flow.Stable)

let test_cyclic_not_pruned () =
  let d =
    flow_of
      "2 OR (DELAY=1.0/2.0) (LOOP, D .S0-4) -> LOOP;\n\
       SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (LOOP, CK .P2-3);\n"
  in
  let nl, f = d in
  (* the feedback component settles to a non-stable class and its
     member instance must never be frozen *)
  (match cls d "LOOP" with
  | Flow.Const _ | Flow.Stable -> Alcotest.fail "cycle classified stable"
  | Flow.Data _ | Flow.Unknown | Flow.Clock _ -> ());
  let loop_driver =
    match (Netlist.net nl (net_id nl "LOOP")).Netlist.n_driver with
    | Some i -> i
    | None -> Alcotest.fail "LOOP undriven"
  in
  Alcotest.(check bool) "cyclic instance not prunable" false
    (Flow.prunable f loop_driver)

let test_prunable_and_demotion () =
  let src =
    "1 CHG (DELAY=1.0/2.0) (EN .S0-8) -> X;\n\
     SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (X, CK .P2-3);\n"
  in
  let nl = load (preamble ^ src) in
  let f = Flow.analyse nl in
  let chg =
    match (Netlist.net nl (net_id nl "X")).Netlist.n_driver with
    | Some i -> i
    | None -> Alcotest.fail "X undriven"
  in
  Alcotest.(check bool) "stable-cone gate prunable" true (Flow.prunable f chg);
  (* checkers are always prunable: their evaluation computes nothing *)
  Netlist.iter_insts nl (fun i ->
      if not (Primitive.has_output i.Netlist.i_prim) then
        Alcotest.(check bool) "checker prunable" true
          (Flow.prunable f i.Netlist.i_id));
  (* a case mapping on EN un-freezes its entire cone *)
  let f' = Flow.analyse ~case_nets:[ net_id nl "EN .S0-8" ] nl in
  Alcotest.(check bool) "case-mapped net demoted" true
    (Flow.cls f' (net_id nl "EN .S0-8") = Flow.Data []);
  Alcotest.(check bool) "its consumer no longer prunable" false
    (Flow.prunable f' chg);
  Alcotest.(check bool) "fewer instances prunable under the demotion" true
    (Flow.n_prunable f' < Flow.n_prunable f)

let test_copy_preserves_classes () =
  let nl =
    (Netgen.to_netlist (Netgen.generate (Netgen.scaled ~chips:120 ())))
      .Scald_sdl.Expander.e_netlist
  in
  let f = Flow.analyse nl in
  let f2 = Flow.analyse (Netlist.copy nl) in
  Netlist.iter_nets nl (fun n ->
      let id = n.Netlist.n_id in
      if Flow.cls f id <> Flow.cls f2 id then
        Alcotest.failf "class of %s differs on the copy" n.Netlist.n_name);
  Alcotest.(check int) "same prunable count" (Flow.n_prunable f)
    (Flow.n_prunable f2)

(* ---- pruning soundness --------------------------------------------------------- *)

(* Pruning must not change the verdict: violations, per-case events and
   convergence flags are bit-identical with pruning on vs off; only the
   work counters (evaluations, queue traffic) may differ. *)
let verdicts_equal (a : Verifier.report) (b : Verifier.report) =
  let case_equal (x : Verifier.case_result) (y : Verifier.case_result) =
    x.Verifier.cr_case = y.Verifier.cr_case
    && x.Verifier.cr_violations = y.Verifier.cr_violations
    && x.Verifier.cr_events = y.Verifier.cr_events
    && x.Verifier.cr_converged = y.Verifier.cr_converged
  in
  a.Verifier.r_events = b.Verifier.r_events
  && a.Verifier.r_violations = b.Verifier.r_violations
  && a.Verifier.r_converged = b.Verifier.r_converged
  && a.Verifier.r_unasserted = b.Verifier.r_unasserted
  && List.length a.Verifier.r_cases = List.length b.Verifier.r_cases
  && List.for_all2 case_equal a.Verifier.r_cases b.Verifier.r_cases

let netgen_nl seed =
  (Netgen.to_netlist (Netgen.generate (Netgen.scaled ~seed ~chips:120 ())))
    .Scald_sdl.Expander.e_netlist

let netgen_cases nl =
  let inputs = ref [] in
  Netlist.iter_nets nl (fun n ->
      if List.length !inputs < 2
         && String.length n.Netlist.n_name >= 3
         && String.sub n.Netlist.n_name 0 3 = "IN "
      then inputs := n.Netlist.n_name :: !inputs);
  Case_analysis.complete_exn (List.rev !inputs)

let test_prune_counters_surface () =
  let nl = netgen_nl 1 in
  let cases = netgen_cases nl in
  (* window pruning off: this test isolates the flow-pruning counters
     (window-frozen checkers would otherwise absorb the skipped enqueues
     into os_window_evals — see test_window.ml) *)
  let r = Verifier.verify ~cases ~window_prune:false nl in
  Alcotest.(check bool) "instances were frozen" true
    (r.Verifier.r_obs.Verifier.os_pruned_insts > 0);
  Alcotest.(check bool) "evaluations were skipped" true
    (r.Verifier.r_obs.Verifier.os_pruned_evals > 0);
  let total_nets =
    r.Verifier.r_obs.Verifier.os_nets_const
    + r.Verifier.r_obs.Verifier.os_nets_stable
    + r.Verifier.r_obs.Verifier.os_nets_clock
    + r.Verifier.r_obs.Verifier.os_nets_data
    + r.Verifier.r_obs.Verifier.os_nets_unknown
  in
  Alcotest.(check int) "every net classified" (Netlist.n_nets nl) total_nets;
  let off = Verifier.verify ~cases ~prune:false ~window_prune:false nl in
  Alcotest.(check int) "prune:false freezes nothing" 0
    (off.Verifier.r_obs.Verifier.os_pruned_insts
    + off.Verifier.r_obs.Verifier.os_pruned_evals);
  Alcotest.(check bool) "pruning skips real work" true
    (r.Verifier.r_evaluations < off.Verifier.r_evaluations)

let properties =
  [
    prop "pruning preserves verdicts across sched x jobs"
      QCheck.(int_range 1 1000)
      (fun seed ->
        let nl = netgen_nl seed in
        let cases = netgen_cases nl in
        List.for_all
          (fun sched ->
            let off = Verifier.verify ~cases ~sched ~prune:false nl in
            List.for_all
              (fun jobs ->
                verdicts_equal off (Verifier.verify ~cases ~sched ~jobs nl))
              [ 1; 4 ])
          [ Eval.Level; Eval.Fifo ]);
  ]

let suite =
  [
    Alcotest.test_case "clock classes and gating" `Quick test_clock_classes;
    Alcotest.test_case "data and stable classes" `Quick test_data_and_stable_classes;
    Alcotest.test_case "cycles never pruned" `Quick test_cyclic_not_pruned;
    Alcotest.test_case "prunable set and case-net demotion" `Quick
      test_prunable_and_demotion;
    Alcotest.test_case "Netlist.copy preserves classes" `Quick
      test_copy_preserves_classes;
    Alcotest.test_case "pruning counters surface in r_obs" `Quick
      test_prune_counters_surface;
  ]
  @ properties
