open Scald_core

let test_deterministic () =
  let cfg = Netgen.scaled ~chips:300 () in
  let a = Netgen.generate cfg and b = Netgen.generate cfg in
  Alcotest.(check string) "same seed, same design" (Netgen.to_sdl a) (Netgen.to_sdl b);
  let c = Netgen.generate { cfg with Netgen.seed = 2 } in
  Alcotest.(check bool) "different seed, different design" true
    (Netgen.to_sdl a <> Netgen.to_sdl c)

let test_clean_by_construction () =
  let d = Netgen.generate (Netgen.scaled ~chips:400 ()) in
  let e = Netgen.to_netlist d in
  let report = Verifier.verify e.Scald_sdl.Expander.e_netlist in
  Alcotest.(check bool) "converged" true report.Verifier.r_converged;
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun (v : Check.t) -> Format.asprintf "%a" Check.pp v)
       report.Verifier.r_violations)

let test_broken_registers_inject_violations () =
  let d = Netgen.generate (Netgen.scaled ~chips:800 ~broken_registers:2 ()) in
  let e = Netgen.to_netlist d in
  let report = Verifier.verify e.Scald_sdl.Expander.e_netlist in
  let setups = Verifier.violations_of_kind Check.Setup_violation report in
  Alcotest.(check bool) "at least two set-up violations" true (List.length setups >= 2)

let test_shape_matches_thesis () =
  let d = Netgen.generate (Netgen.scaled ~chips:2000 ()) in
  let e = Netgen.to_netlist d in
  let nl = e.Scald_sdl.Expander.e_netlist in
  let census = Stats.primitive_census nl in
  let prims = Stats.total_primitives census in
  let ratio = float_of_int prims /. float_of_int (Netgen.n_chips d) in
  Alcotest.(check bool)
    (Printf.sprintf "primitives per chip %.2f in [1.1, 1.6]" ratio)
    true
    (ratio >= 1.1 && ratio <= 1.6);
  Alcotest.(check bool)
    (Printf.sprintf "%d primitive types in [18, 26]" (List.length census))
    true
    (List.length census >= 18 && List.length census <= 26);
  let mean_width = float_of_int (Stats.unvectored_count nl) /. float_of_int prims in
  Alcotest.(check bool)
    (Printf.sprintf "mean width %.1f in [4, 10]" mean_width)
    true
    (mean_width >= 4. && mean_width <= 10.)

let test_chip_count_near_target () =
  List.iter
    (fun chips ->
      let d = Netgen.generate (Netgen.scaled ~chips ()) in
      let got = Netgen.n_chips d in
      Alcotest.(check bool)
        (Printf.sprintf "%d chips within 20%% of %d" got chips)
        true
        (abs (got - chips) < max 40 (chips / 5)))
    [ 200; 1000; 3000 ]

(* Randomized determinism sweep across the scheduler matrix: within one
   work-list discipline the full report — violations, r_obs counters,
   case results, everything pp prints — must be bit-identical no matter
   the domain count; across disciplines the evaluator counters may
   legitimately differ, but violations and the convergence verdict may
   not (verifier.mli's contract). *)
let prop_report_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:12 ~name:"report deterministic across sched x jobs"
       QCheck.(pair (int_range 1 1000) (int_range 60 200))
       (fun (seed, chips) ->
         let d = Netgen.generate { (Netgen.scaled ~chips ()) with Netgen.seed } in
         let e = Netgen.to_netlist d in
         let nl = e.Scald_sdl.Expander.e_netlist in
         let render ~sched ~jobs =
           Format.asprintf "%a" Verifier.pp (Verifier.verify ~sched ~jobs nl)
         in
         let violations r =
           List.map (fun (v : Check.t) -> Format.asprintf "%a" Check.pp v)
             r.Verifier.r_violations
         in
         let fifo1 = render ~sched:Eval.Fifo ~jobs:1 in
         let fifo3 = render ~sched:Eval.Fifo ~jobs:3 in
         let level1 = render ~sched:Eval.Level ~jobs:1 in
         let level3 = render ~sched:Eval.Level ~jobs:3 in
         let rf = Verifier.verify ~sched:Eval.Fifo nl
         and rl = Verifier.verify ~sched:Eval.Level nl in
         String.equal fifo1 fifo3 && String.equal level1 level3
         && violations rf = violations rl
         && rf.Verifier.r_converged = rl.Verifier.r_converged))

let test_events_scale_linearly () =
  let events chips =
    let d = Netgen.generate (Netgen.scaled ~chips ()) in
    let e = Netgen.to_netlist d in
    let ev = Eval.create e.Scald_sdl.Expander.e_netlist in
    Eval.run ev;
    Eval.events ev
  in
  let e1 = events 500 and e2 = events 2000 in
  let ratio = float_of_int e2 /. float_of_int e1 in
  Alcotest.(check bool)
    (Printf.sprintf "4x design -> %.1fx events (linear-ish)" ratio)
    true
    (ratio > 2.5 && ratio < 6.)

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "clean by construction" `Quick test_clean_by_construction;
    Alcotest.test_case "broken registers inject violations" `Quick
      test_broken_registers_inject_violations;
    Alcotest.test_case "shape matches thesis" `Quick test_shape_matches_thesis;
    Alcotest.test_case "chip count near target" `Quick test_chip_count_near_target;
    prop_report_deterministic;
    Alcotest.test_case "events scale linearly" `Quick test_events_scale_linearly;
  ]
