(* Cross-module property tests: invariants of the evaluator and the
   waveform algebra under randomly generated circuits and signals. *)

open Scald_core

let period = Timebase.ps_of_ns 50.0

let prop ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* ---- zero-skew waveform generator ------------------------------------------ *)

let gen_zero_skew_waveform =
  let open QCheck.Gen in
  let gen_segs =
    sized_size (int_range 1 5) (fun n ->
        let* cuts = list_repeat n (int_range 1 (period - 1)) in
        let cuts = List.sort_uniq Int.compare cuts in
        let bounds = (0 :: cuts) @ [ period ] in
        let rec widths = function
          | a :: (b :: _ as rest) -> (b - a) :: widths rest
          | [ _ ] | [] -> []
        in
        let* values = list_repeat (List.length (widths bounds)) (oneofl Tvalue.all) in
        return (List.combine values (widths bounds)))
  in
  QCheck.make
    ~print:(Format.asprintf "%a" Waveform.pp)
    (QCheck.Gen.map (Waveform.create ~period) gen_segs)

(* With zero skew, binary combination is exactly pointwise. *)
let pointwise_prop f (a, b) =
  let c = Waveform.map2 f a b in
  List.for_all
    (fun t ->
      Tvalue.equal (Waveform.value_at c t) (f (Waveform.value_at a t) (Waveform.value_at b t)))
    (List.init 50 (fun i -> i * (period / 50)))

(* ---- random combinational netlists ------------------------------------------- *)

type recipe = {
  rc_seed : int;
  rc_n_inputs : int;
  rc_gates : (int * int * int) list;  (* fn selector, input a, input b *)
}

let gen_recipe =
  let open QCheck.Gen in
  let gen =
    let* rc_seed = int_range 0 10_000 in
    let* rc_n_inputs = int_range 1 4 in
    let* n_gates = int_range 1 12 in
    let* raw = list_repeat n_gates (triple (int_range 0 4) (int_range 0 1000) (int_range 0 1000)) in
    return { rc_seed; rc_n_inputs; rc_gates = raw }
  in
  QCheck.make
    ~print:(fun r ->
      Printf.sprintf "seed %d, %d inputs, %d gates" r.rc_seed r.rc_n_inputs
        (List.length r.rc_gates))
    gen

let assertion_pool =
  [| ".S0-6"; ".S2-7"; ".S4-9"; ".P2-3"; ".C1-2"; ".P0-4 L"; ".S1-5" |]

let build_recipe r =
  let nl =
    Netlist.create
      (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
      ~default_wire_delay:(Delay.of_ns 0.0 2.0)
  in
  let inputs =
    List.init r.rc_n_inputs (fun i ->
        Netlist.signal nl
          (Printf.sprintf "IN%d %s" i
             assertion_pool.((r.rc_seed + i) mod Array.length assertion_pool)))
  in
  let nodes = ref (Array.of_list inputs) in
  List.iteri
    (fun i (fn_sel, a, b) ->
      let pool = !nodes in
      let pick x = pool.(x mod Array.length pool) in
      let fn =
        match fn_sel with
        | 0 -> Primitive.And
        | 1 -> Primitive.Or
        | 2 -> Primitive.Xor
        | _ -> Primitive.Chg
      in
      let out = Netlist.signal nl (Printf.sprintf "G%d" i) in
      ignore
        (Netlist.add nl
           (Primitive.Gate
              { fn; n_inputs = 2; invert = fn_sel = 4; delay = Delay.of_ns 1.0 3.0 })
           ~inputs:[ Netlist.conn (pick a); Netlist.conn (pick b) ]
           ~output:(Some out));
      nodes := Array.append pool [| out |])
    r.rc_gates;
  nl

let waveforms nl ev =
  Array.to_list (Netlist.nets nl)
  |> List.map (fun (n : Netlist.net) -> Eval.value ev n.Netlist.n_id)

(* ---- multi-corner packing (doc/CORNERS.md) ----------------------------------- *)

(* Random netgen design + random corner table + scheduler/sharding
   choice: the reference lane of a packed k-corner run must reproduce a
   dedicated single-corner run of corner 0 exactly — violations, per-case
   results, convergence and the final reference waveforms. *)
type corner_recipe = {
  co_seed : int;
  co_chips : int;
  co_broken : int;
  co_spec : string;
  co_fifo : bool;
  co_jobs : int;
}

let gen_corner_recipe =
  let open QCheck.Gen in
  let gen =
    let* co_seed = int_range 1 500 in
    let* co_chips = int_range 5 40 in
    let* co_broken = int_range 0 2 in
    let* k = int_range 1 3 in
    let scale = map (fun s -> float_of_int s /. 100.) (int_range 50 200) in
    let* ref_scales = pair scale scale in
    let* lane_scales = list_repeat k (pair scale scale) in
    let spec =
      (ref_scales :: lane_scales)
      |> List.mapi (fun i (d, w) -> Printf.sprintf "c%d=%.2f/%.2f" i d w)
      |> String.concat ","
    in
    let* co_fifo = bool in
    let* co_jobs = oneofl [ 1; 3 ] in
    return { co_seed; co_chips; co_broken; co_spec = spec; co_fifo; co_jobs }
  in
  QCheck.make
    ~print:(fun c ->
      Printf.sprintf "seed %d, %d chips, %d broken, corners %s, %s, -j %d"
        c.co_seed c.co_chips c.co_broken c.co_spec
        (if c.co_fifo then "fifo" else "level")
        c.co_jobs)
    gen

let corner_lane0_matches_scalar c =
  let d =
    Netgen.generate
      (Netgen.scaled ~seed:c.co_seed ~broken_registers:c.co_broken
         ~chips:c.co_chips ())
  in
  let nl = (Netgen.to_netlist d).Scald_sdl.Expander.e_netlist in
  let cases =
    let found = ref [] in
    Netlist.iter_nets nl (fun n ->
        if
          List.length !found < 2
          && String.length n.Netlist.n_name >= 3
          && String.sub n.Netlist.n_name 0 3 = "IN "
        then found := n.Netlist.n_name :: !found);
    Case_analysis.complete_exn (List.rev !found)
  in
  let sched = if c.co_fifo then Eval.Fifo else Eval.Level in
  let corners = Corner.of_spec c.co_spec in
  let render vs = List.map (Format.asprintf "%a" Check.pp) vs in
  let snapshot (r : Verifier.report) =
    (* captured before the next verify mutates the shared netlist *)
    ( render r.Verifier.r_violations,
      List.map
        (fun (cr : Verifier.case_result) ->
          (render cr.Verifier.cr_violations, cr.Verifier.cr_converged))
        r.Verifier.r_cases,
      r.Verifier.r_converged,
      waveforms nl r.Verifier.r_eval )
  in
  let packed =
    snapshot (Verifier.verify ~cases ~jobs:c.co_jobs ~sched ~corners nl)
  in
  let scalar =
    snapshot
      (Verifier.verify ~cases ~jobs:c.co_jobs ~sched
         ~corners:(Array.sub corners 0 1) nl)
  in
  let pv, pc, pok, pw = packed and sv, sc, sok, sw = scalar in
  pv = sv && pc = sc && pok = sok && List.for_all2 Waveform.equal pw sw

(* ---- the properties ------------------------------------------------------------ *)

let properties =
  [
    prop "map2 or is pointwise at zero skew"
      QCheck.(pair gen_zero_skew_waveform gen_zero_skew_waveform)
      (pointwise_prop Tvalue.lor_);
    prop "map2 and is pointwise at zero skew"
      QCheck.(pair gen_zero_skew_waveform gen_zero_skew_waveform)
      (pointwise_prop Tvalue.land_);
    prop "map2 chg is pointwise at zero skew"
      QCheck.(pair gen_zero_skew_waveform gen_zero_skew_waveform)
      (pointwise_prop Tvalue.chg);
    prop "pulse intervals fit in the period" gen_zero_skew_waveform (fun w ->
        let total =
          Waveform.pulse_intervals Tvalue.V1 w
          |> List.fold_left (fun acc (_, width) -> acc + width) 0
        in
        total <= period);
    prop "stable + unstable intervals cover the period" gen_zero_skew_waveform (fun w ->
        let sum pred =
          Waveform.intervals_where pred w
          |> List.fold_left (fun acc (_, width) -> acc + width) 0
        in
        sum Tvalue.is_stable + sum (fun v -> not (Tvalue.is_stable v)) = period);
    prop ~count:100 "evaluation converges on random combinational nets" gen_recipe
      (fun r ->
        let nl = build_recipe r in
        let ev = Eval.create nl in
        Eval.run ev;
        Eval.converged ev);
    prop ~count:100 "evaluation is deterministic" gen_recipe (fun r ->
        let run () =
          let nl = build_recipe r in
          let ev = Eval.create nl in
          Eval.run ev;
          waveforms nl ev
        in
        List.for_all2 Waveform.equal (run ()) (run ()));
    prop ~count:100 "re-running adds no events" gen_recipe (fun r ->
        let nl = build_recipe r in
        let ev = Eval.create nl in
        Eval.run ev;
        let before = Eval.events ev in
        Eval.run ev;
        Eval.events ev = before);
    prop ~count:100 "case set then cleared restores the base state" gen_recipe (fun r ->
        let nl = build_recipe r in
        let ev = Eval.create nl in
        Eval.run ev;
        let base = waveforms nl ev in
        (match Netlist.find nl "IN0 .S0-6" with
        | Some id ->
          Eval.run ~case:[ (id, Tvalue.V1) ] ev;
          Eval.run ev
        | None -> Eval.run ev);
        List.for_all2 Waveform.equal base (waveforms nl ev));
    prop ~count:100 "widths sum to the period after evaluation" gen_recipe (fun r ->
        let nl = build_recipe r in
        let ev = Eval.create nl in
        Eval.run ev;
        List.for_all
          (fun w ->
            List.fold_left (fun acc (_, width) -> acc + width) 0 (Waveform.segments w)
            = period)
          (waveforms nl ev));
    prop ~count:100 "checks are reproducible" gen_recipe (fun r ->
        let nl = build_recipe r in
        let ev = Eval.create nl in
        Eval.run ev;
        let render vs = List.map (Format.asprintf "%a" Check.pp) vs in
        render (Eval.check ev) = render (Eval.check ev));
    prop ~count:20 "packed lane 0 equals a scalar single-corner run"
      gen_corner_recipe corner_lane0_matches_scalar;
    prop ~count:1000 "per-edge delay stays within the envelope" gen_zero_skew_waveform
      (fun w ->
        (* wherever the envelope-delayed waveform claims stability, the
           per-edge result must not be changing *)
        match
          Waveform.delay_rise_fall ~rise:(1_000, 2_000) ~fall:(3_000, 4_000) w
        with
        | None -> true
        | Some exact ->
          let envelope =
            Waveform.materialize (Waveform.delay ~dmin:1_000 ~dmax:4_000 w)
          in
          List.for_all
            (fun t ->
              let e = Waveform.value_at envelope t in
              let x = Waveform.value_at exact t in
              (* envelope says a definite constant -> exact agrees *)
              match e with
              | Tvalue.V0 | Tvalue.V1 -> Tvalue.equal x e
              | _ -> true)
            (List.init 100 (fun i -> i * (period / 100))));
  ]

let suite = properties
