open Scald_core
module Circuits = Scald_cells.Circuits

let evaluated_register_file () =
  let c = Circuits.register_file_example () in
  let report = Verifier.verify c.Circuits.rf_netlist in
  ignore report;
  c.Circuits.rf_netlist

let test_census () =
  let nl = evaluated_register_file () in
  let census = Stats.primitive_census nl in
  let count name =
    match List.find_opt (fun (n, _, _) -> n = name) census with
    | Some (_, c, _) -> c
    | None -> 0
  in
  Alcotest.(check int) "one mux" 1 (count "2 MUX");
  Alcotest.(check int) "one reg" 1 (count "REG");
  Alcotest.(check int) "setup/hold checkers" 3 (count "SETUP HOLD CHK");
  Alcotest.(check int) "rise/fall checker" 1 (count "SETUP RISE HOLD FALL CHK");
  Alcotest.(check int) "pulse checker" 1 (count "MIN PULSE WIDTH");
  Alcotest.(check int) "total" (Netlist.n_insts nl) (Stats.total_primitives census)

let test_unvectored () =
  let nl = evaluated_register_file () in
  (* without vector symmetry the 32-bit paths would need one primitive
     per bit *)
  Alcotest.(check bool) "unvectored larger" true
    (Stats.unvectored_count nl > Netlist.n_insts nl)

let test_storage_consistency () =
  let nl = evaluated_register_file () in
  let s = Stats.storage_of nl in
  Alcotest.(check bool) "total positive" true (Stats.total s > 0);
  Alcotest.(check int) "total is the sum" (Stats.total s)
    (s.Stats.circuit_description + s.Stats.signal_values + s.Stats.signal_names
    + s.Stats.string_space + s.Stats.call_list + s.Stats.miscellaneous);
  Alcotest.(check bool) "value lists = total bits" true
    (Stats.n_value_lists nl
    = Array.fold_left (fun acc (n : Netlist.net) -> acc + n.Netlist.n_width) 0
        (Netlist.nets nl))

let test_value_records () =
  let nl = evaluated_register_file () in
  let mean = Stats.value_records_per_signal nl in
  Alcotest.(check bool)
    (Printf.sprintf "mean records %.2f reasonable" mean)
    true (mean >= 1. && mean <= 10.);
  let bytes = Stats.bytes_per_signal_value nl in
  (* 5-field base + 3 fields per record, 4 bytes per field *)
  Alcotest.(check (float 0.01)) "bytes formula" ((5. +. (3. *. mean)) *. 4.) bytes

(* [storage_of] must also work before any evaluation: every net still
   holds its initial one-segment Unknown waveform, so the accounting
   sees exactly one value record per signal value list. *)
let test_storage_unevaluated () =
  let c = Circuits.register_file_example () in
  let nl = c.Circuits.rf_netlist in
  let s = Stats.storage_of nl in
  Alcotest.(check bool) "total positive" true (Stats.total s > 0);
  Alcotest.(check bool) "signal values accounted" true (s.Stats.signal_values > 0);
  Alcotest.(check (float 0.0001)) "one record per unevaluated signal" 1.0
    (Stats.value_records_per_signal nl);
  Alcotest.(check (float 0.01)) "bytes formula holds unevaluated"
    ((5. +. 3.) *. 4.)
    (Stats.bytes_per_signal_value nl);
  (* evaluation only grows the waveform storage *)
  ignore (Verifier.verify nl);
  let s' = Stats.storage_of nl in
  Alcotest.(check bool) "evaluation grows signal values" true
    (s'.Stats.signal_values >= s.Stats.signal_values);
  Alcotest.(check int) "static sections unchanged" s.Stats.circuit_description
    s'.Stats.circuit_description

(* Every storage count on the s1 subset, pinned against the
   pointer-heavy pre-arena layout (doc/CAPACITY.md): the representation
   change — packed waveform buffers, packed fanout arrays, the
   once-per-net length accounting inside [storage_of] itself — must not
   move a single figure. *)
let test_storage_s1_pinned () =
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let e =
    match Scald_sdl.Expander.load (read_file "../examples/s1_subset.sdl") with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let nl = e.Scald_sdl.Expander.e_netlist in
  let s = Stats.storage_of nl in
  Alcotest.(check int) "circuit description" 8996 s.Stats.circuit_description;
  Alcotest.(check int) "signal values" 11360 s.Stats.signal_values;
  Alcotest.(check int) "signal names" 2128 s.Stats.signal_names;
  Alcotest.(check int) "string space" 982 s.Stats.string_space;
  Alcotest.(check int) "call list" 2488 s.Stats.call_list;
  Alcotest.(check int) "miscellaneous" 259 s.Stats.miscellaneous;
  Alcotest.(check int) "total" 26213 (Stats.total s);
  Alcotest.(check int) "value lists" 355 (Stats.n_value_lists nl);
  ignore (Verifier.verify nl);
  let s' = Stats.storage_of nl in
  Alcotest.(check int) "signal values after verify" 20540 s'.Stats.signal_values;
  Alcotest.(check int) "miscellaneous after verify" 351 s'.Stats.miscellaneous;
  Alcotest.(check int) "total after verify" 35485 (Stats.total s')

let suite =
  [
    Alcotest.test_case "census" `Quick test_census;
    Alcotest.test_case "storage s1 pinned" `Quick test_storage_s1_pinned;
    Alcotest.test_case "storage unevaluated" `Quick test_storage_unevaluated;
    Alcotest.test_case "unvectored" `Quick test_unvectored;
    Alcotest.test_case "storage consistency" `Quick test_storage_consistency;
    Alcotest.test_case "value records" `Quick test_value_records;
  ]
