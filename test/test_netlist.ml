open Scald_core

let tb () = Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25

let gate2 = Primitive.Gate { fn = Primitive.And; n_inputs = 2; invert = false; delay = Delay.of_ns 1.0 2.0 }

let test_signal_dedup () =
  let nl = Netlist.create (tb ()) in
  let a = Netlist.signal nl "FOO" in
  let b = Netlist.signal nl "FOO" in
  Alcotest.(check int) "same net" a b;
  let c = Netlist.signal nl "- FOO" in
  Alcotest.(check int) "complement shares net" a c;
  Alcotest.(check int) "one net" 1 (Netlist.n_nets nl)

let test_assertion_distinguishes () =
  let nl = Netlist.create (tb ()) in
  let a = Netlist.signal nl "CK .P2-3 L" in
  let b = Netlist.signal nl "CK .P0-4" in
  Alcotest.(check bool) "different nets" true (a <> b)

let test_assertion_recorded () =
  let nl = Netlist.create (tb ()) in
  let a = Netlist.signal nl "X .S0-6" in
  match (Netlist.net nl a).Netlist.n_assertion with
  | Some _ -> ()
  | None -> Alcotest.fail "assertion not recorded"

let test_signal_conn_complement () =
  let nl = Netlist.create (tb ()) in
  let c = Netlist.signal_conn nl "- WE" in
  Alcotest.(check bool) "inverted" true c.Netlist.c_invert

let test_width () =
  let nl = Netlist.create (tb ()) in
  let a = Netlist.signal nl "BUS<0:15>" in
  Alcotest.(check int) "vector width" 16 (Netlist.net nl a).Netlist.n_width;
  Netlist.set_width nl a 32;
  Alcotest.(check int) "explicit width" 32 (Netlist.net nl a).Netlist.n_width

let test_add_and_fanout () =
  let nl = Netlist.create (tb ()) in
  let a = Netlist.signal nl "A" and b = Netlist.signal nl "B" and q = Netlist.signal nl "Q" in
  let inst =
    Netlist.add nl gate2 ~inputs:[ Netlist.conn a; Netlist.conn b ] ~output:(Some q)
  in
  Alcotest.(check (option int)) "driver" (Some inst.Netlist.i_id)
    (Netlist.net nl q).Netlist.n_driver;
  Alcotest.(check (list int)) "fanout a" [ inst.Netlist.i_id ]
    (Netlist.fanout (Netlist.net nl a));
  Alcotest.(check int) "one inst" 1 (Netlist.n_insts nl)

let test_wide_fanout () =
  (* fanout recording used a linear membership scan per connection,
     making N instances on one net quadratic; this must stay linear *)
  let nl = Netlist.create (tb ()) in
  let a = Netlist.signal nl "A" in
  let n = 10_000 in
  for i = 0 to n - 1 do
    let q = Netlist.signal nl (Printf.sprintf "Q%d" i) in
    ignore
      (Netlist.add nl
         (Primitive.Buf { invert = false; delay = Delay.of_ns 1.0 2.0 })
         ~inputs:[ Netlist.conn a ] ~output:(Some q))
  done;
  Alcotest.(check int) "every load recorded once" n
    (Netlist.fanout_count (Netlist.net nl a));
  (* both inputs of one gate on the same net: still recorded once *)
  let q = Netlist.signal nl "QQ" in
  let inst =
    Netlist.add nl gate2 ~inputs:[ Netlist.conn a; Netlist.conn a ] ~output:(Some q)
  in
  let fanout = Netlist.fanout (Netlist.net nl a) in
  Alcotest.(check int) "same-instance duplicate coalesced" (n + 1)
    (List.length fanout);
  Alcotest.(check int) "newest load at the head" inst.Netlist.i_id
    (List.hd fanout)

(* Random instances over a small net pool, with inputs repeated both
   within one instance and across instances: every net's fanout list
   must stay duplicate-free no matter the add order. *)
let prop_fanout_no_dup =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"fanout lists are duplicate-free"
       QCheck.(list_of_size Gen.(int_range 1 40) (pair (int_range 0 5) (int_range 0 5)))
       (fun conn_specs ->
         let nl = Netlist.create (tb ()) in
         let nets = Array.init 6 (fun i -> Netlist.signal nl (Printf.sprintf "N%d" i)) in
         List.iteri
           (fun k (a, b) ->
             let q = Netlist.signal nl (Printf.sprintf "Q%d" k) in
             ignore
               (Netlist.add nl gate2
                  ~inputs:[ Netlist.conn nets.(a); Netlist.conn nets.(b) ]
                  ~output:(Some q)))
           conn_specs;
         Array.for_all
           (fun id ->
             let f = Netlist.fanout (Netlist.net nl id) in
             List.length f = List.length (List.sort_uniq Int.compare f)
             && List.length f = Netlist.fanout_count (Netlist.net nl id))
           nets))

let test_add_arity_error () =
  let nl = Netlist.create (tb ()) in
  let a = Netlist.signal nl "A" and q = Netlist.signal nl "Q" in
  match Netlist.add nl gate2 ~inputs:[ Netlist.conn a ] ~output:(Some q) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch should be rejected"

let test_double_drive_error () =
  let nl = Netlist.create (tb ()) in
  let a = Netlist.signal nl "A" and b = Netlist.signal nl "B" and q = Netlist.signal nl "Q" in
  ignore (Netlist.add nl gate2 ~inputs:[ Netlist.conn a; Netlist.conn b ] ~output:(Some q));
  match Netlist.add nl gate2 ~inputs:[ Netlist.conn a; Netlist.conn b ] ~output:(Some q) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double drive should be rejected"

let test_checker_no_output () =
  let nl = Netlist.create (tb ()) in
  let a = Netlist.signal nl "A" and ck = Netlist.signal nl "CK" in
  let chk = Primitive.Setup_hold_check { setup = 2500; hold = 1500 } in
  (match
     Netlist.add nl chk ~inputs:[ Netlist.conn a; Netlist.conn ck ]
       ~output:(Some (Netlist.signal nl "Q"))
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "checker with output should be rejected");
  ignore (Netlist.add nl chk ~inputs:[ Netlist.conn a; Netlist.conn ck ] ~output:None)

let test_gate_needs_output () =
  let nl = Netlist.create (tb ()) in
  let a = Netlist.signal nl "A" and b = Netlist.signal nl "B" in
  match Netlist.add nl gate2 ~inputs:[ Netlist.conn a; Netlist.conn b ] ~output:None with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "gate without output should be rejected"

let test_undriven_unasserted () =
  let nl = Netlist.create (tb ()) in
  let a = Netlist.signal nl "A" and b = Netlist.signal nl "B .S0-6" in
  let q = Netlist.signal nl "Q" in
  ignore (Netlist.add nl gate2 ~inputs:[ Netlist.conn a; Netlist.conn b ] ~output:(Some q));
  let names = List.map (fun (n : Netlist.net) -> n.Netlist.n_name) (Netlist.undriven_unasserted nl) in
  Alcotest.(check (list string)) "only A" [ "A" ] names

let test_wire_delay () =
  let nl = Netlist.create (tb ()) in
  Alcotest.(check bool) "default 0/2" true
    (Delay.equal (Netlist.default_wire_delay nl) (Delay.of_ns 0.0 2.0));
  let a = Netlist.signal nl "A" in
  Netlist.set_wire_delay nl a (Delay.of_ns 0.0 6.0);
  match (Netlist.net nl a).Netlist.n_wire_delay with
  | Some d -> Alcotest.(check bool) "override" true (Delay.equal d (Delay.of_ns 0.0 6.0))
  | None -> Alcotest.fail "wire delay not set"

let suite =
  [
    Alcotest.test_case "signal dedup" `Quick test_signal_dedup;
    Alcotest.test_case "assertion distinguishes" `Quick test_assertion_distinguishes;
    Alcotest.test_case "assertion recorded" `Quick test_assertion_recorded;
    Alcotest.test_case "signal_conn complement" `Quick test_signal_conn_complement;
    Alcotest.test_case "width" `Quick test_width;
    Alcotest.test_case "add and fanout" `Quick test_add_and_fanout;
    Alcotest.test_case "wide fanout" `Quick test_wide_fanout;
    prop_fanout_no_dup;
    Alcotest.test_case "add arity error" `Quick test_add_arity_error;
    Alcotest.test_case "double drive error" `Quick test_double_drive_error;
    Alcotest.test_case "checker no output" `Quick test_checker_no_output;
    Alcotest.test_case "gate needs output" `Quick test_gate_needs_output;
    Alcotest.test_case "undriven unasserted" `Quick test_undriven_unasserted;
    Alcotest.test_case "wire delay" `Quick test_wire_delay;
  ]
