(* The observability subsystem: span profiler, evaluator counters and
   event hook, causal ring buffer and violation traces, and the two
   JSON exporters (Chrome trace events, flat metrics). *)

open Scald_core
open Scald_obs

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + nn) (acc + 1)
    else go (i + 1) acc
  in
  if nn = 0 then 0 else go 0 0

(* ---- a minimal JSON syntax checker --------------------------------------

   The exporters hand-roll their JSON, so validity is worth an actual
   parse rather than substring checks.  Accepts the RFC 8259 grammar
   (sans \u surrogate pairing) and nothing trailing. *)

let json_ok s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let fail = ref false in
  let expect c =
    if peek () = Some c then advance () else fail := true
  in
  let literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then pos := !pos + l
    else fail := true
  in
  let string_lit () =
    expect '"';
    let fin = ref false in
    while (not !fin) && not !fail do
      match peek () with
      | None -> fail := true
      | Some '"' ->
        advance ();
        fin := true
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            (match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> ()
            | _ -> fail := true);
            if not !fail then advance ()
          done
        | _ -> fail := true)
      | Some c when Char.code c < 0x20 -> fail := true
      | Some _ -> advance ()
    done
  in
  let number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let any = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        any := true;
        advance ()
      done;
      if not !any then fail := true
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let more = ref true in
        while !more && not !fail do
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' -> advance ()
          | Some '}' ->
            advance ();
            more := false
          | _ ->
            fail := true;
            more := false
        done
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let more = ref true in
        while !more && not !fail do
          value ();
          skip_ws ();
          match peek () with
          | Some ',' -> advance ()
          | Some ']' ->
            advance ();
            more := false
          | _ ->
            fail := true;
            more := false
        done
      end
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail := true);
    skip_ws ()
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

let test_json_checker_sanity () =
  Alcotest.(check bool) "object" true (json_ok {|{"a": 1, "b": [true, null, "x\n"]}|});
  Alcotest.(check bool) "trailing junk" false (json_ok "{} x");
  Alcotest.(check bool) "bare comma" false (json_ok "[1,]");
  Alcotest.(check bool) "unterminated" false (json_ok {|{"a": "b|})

(* ---- span profiler ------------------------------------------------------- *)

let fake_clock () =
  let t = ref 0.0 in
  ( (fun () -> !t),
    fun dt -> t := !t +. dt )

let test_span_nesting () =
  let clock, tick = fake_clock () in
  let prof = Span.create ~clock () in
  let r =
    Span.with_span prof "outer" (fun () ->
        tick 0.001;
        Span.with_span prof "inner" (fun () ->
            tick 0.002;
            17))
  in
  Alcotest.(check int) "value through" 17 r;
  match Span.spans prof with
  | [ inner; outer ] ->
    Alcotest.(check string) "inner name" "inner" inner.Span.s_name;
    Alcotest.(check string) "outer name" "outer" outer.Span.s_name;
    Alcotest.(check int) "inner depth" 1 inner.Span.s_depth;
    Alcotest.(check int) "outer depth" 0 outer.Span.s_depth;
    Alcotest.(check (float 1.0)) "inner dur" 2000. inner.Span.s_dur_us;
    Alcotest.(check (float 1.0)) "outer dur" 3000. outer.Span.s_dur_us;
    Alcotest.(check (float 1.0)) "inner starts after outer" 1000. inner.Span.s_ts_us;
    Alcotest.(check (float 1.0)) "total" 3000. (Span.total_us prof "outer")
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_span_records_on_raise () =
  let clock, tick = fake_clock () in
  let prof = Span.create ~clock () in
  (try
     Span.with_span prof "boom" (fun () ->
         tick 0.004;
         failwith "x")
   with Failure _ -> ());
  match Span.spans prof with
  | [ s ] ->
    Alcotest.(check string) "name" "boom" s.Span.s_name;
    Alcotest.(check (float 1.0)) "dur" 4000. s.Span.s_dur_us;
    Alcotest.(check int) "depth restored" 0 s.Span.s_depth
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

(* ---- evaluator counters and hook ------------------------------------------ *)

let two_buf_circuit () =
  let tb = Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25 in
  let nl = Netlist.create tb ~default_wire_delay:Delay.zero in
  let a = Netlist.signal nl "A .S0-4" in
  let n1 = Netlist.signal nl "N1" in
  let q = Netlist.signal nl "Q" in
  let ck = Netlist.signal nl "CK .P7-8" in
  ignore
    (Netlist.add nl ~name:"B1"
       (Primitive.Buf { invert = false; delay = Delay.of_ns 1.0 2.0 })
       ~inputs:[ Netlist.conn a ] ~output:(Some n1));
  ignore
    (Netlist.add nl ~name:"B2"
       (Primitive.Buf { invert = false; delay = Delay.of_ns 1.0 2.0 })
       ~inputs:[ Netlist.conn n1 ] ~output:(Some q));
  ignore
    (Netlist.add nl ~name:"CHK"
       (Primitive.Setup_hold_check
          { setup = Timebase.ps_of_ns 30.0; hold = Timebase.ps_of_ns 1.0 })
       ~inputs:[ Netlist.conn q; Netlist.conn ck ]
       ~output:None);
  nl

let test_counters () =
  let nl = two_buf_circuit () in
  let ev = Eval.create nl in
  Eval.run ev;
  let c = Eval.counters ev in
  Alcotest.(check int) "events match accessor" (Eval.events ev) c.Eval.c_events;
  Alcotest.(check int) "evals match accessor" (Eval.evaluations ev)
    c.Eval.c_evaluations;
  Alcotest.(check bool) "queued >= events" true (c.Eval.c_queued >= c.Eval.c_events);
  Alcotest.(check bool) "hwm positive" true (c.Eval.c_queue_hwm >= 1);
  Alcotest.(check bool) "coalesced non-negative" true (c.Eval.c_coalesced >= 0);
  Alcotest.(check int) "per-kind sums to total" c.Eval.c_evaluations
    (List.fold_left (fun acc (_, n) -> acc + n) 0 c.Eval.c_evals_by_kind);
  Alcotest.(check bool) "BUF kind counted" true
    (match List.assoc_opt "BUF" c.Eval.c_evals_by_kind with
    | Some n -> n >= 2
    | None -> false);
  Eval.reset_counters ev;
  let c = Eval.counters ev in
  Alcotest.(check int) "reset events" 0 c.Eval.c_events;
  Alcotest.(check int) "reset hwm" 0 c.Eval.c_queue_hwm;
  Alcotest.(check (list (pair string int))) "reset kinds" [] c.Eval.c_evals_by_kind

let test_event_hook () =
  let nl = two_buf_circuit () in
  let ev = Eval.create nl in
  let calls = ref 0 in
  Alcotest.(check bool) "hook off by default" true (Eval.event_hook ev = None);
  Eval.set_event_hook ev (Some (fun ~inst_id:_ ~net_id:_ -> incr calls));
  Eval.run ev;
  Alcotest.(check int) "one call per event" (Eval.events ev) !calls;
  Alcotest.(check bool) "events happened" true (!calls > 0);
  Eval.set_event_hook ev None;
  Alcotest.(check bool) "hook cleared" true (Eval.event_hook ev = None)

(* ---- causal ring ---------------------------------------------------------- *)

let test_ring_bounds () =
  let r = Causal.create ~capacity:3 in
  for i = 0 to 9 do
    Causal.record r ~inst_id:i ~net_id:(100 + i)
  done;
  Alcotest.(check int) "total recorded" 10 (Causal.recorded r);
  let evs = Causal.events r in
  Alcotest.(check int) "bounded" 3 (List.length evs);
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 7; 8; 9 ]
    (List.map (fun e -> e.Causal.e_seq) evs);
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Causal.create: capacity must be >= 1") (fun () ->
      ignore (Causal.create ~capacity:0))

let test_causal_chain () =
  let nl = two_buf_circuit () in
  let ev = Eval.create nl in
  let ring = Causal.create ~capacity:64 in
  Eval.set_event_hook ev (Some (Causal.hook ring));
  Eval.run ev;
  Alcotest.(check int) "ring saw every event" (Eval.events ev)
    (Causal.recorded ring);
  let steps = Causal.explain_signal ring nl "Q" in
  Alcotest.(check bool) "chain found" true (List.length steps >= 2);
  let last = List.nth steps (List.length steps - 1) in
  Alcotest.(check string) "chain ends at Q" "Q" last.Causal.st_net;
  Alcotest.(check string) "driven by B2" "B2" last.Causal.st_inst;
  Alcotest.(check string) "primitive named" "BUF" last.Causal.st_prim;
  let first = List.hd steps in
  Alcotest.(check string) "root cause is N1" "N1" first.Causal.st_net;
  Alcotest.(check bool) "root precedes final" true
    (first.Causal.st_seq < last.Causal.st_seq);
  Alcotest.(check bool) "edge time attached" true (last.Causal.st_at_ns <> None)

let test_explain_violation () =
  let nl = two_buf_circuit () in
  let obs = Obs.create ~trace_buffer:64 () in
  let report = Verifier.verify ~probe:(Obs.probe obs) nl in
  Alcotest.(check bool) "setup violation present" true
    (report.Verifier.r_violations <> []);
  let v = List.hd report.Verifier.r_violations in
  let ring = match Obs.ring obs with Some r -> r | None -> assert false in
  let steps = Causal.explain ring nl v in
  Alcotest.(check bool) "violation explained" true (steps <> []);
  let listing = Obs.explain_all obs nl report.Verifier.r_violations in
  Alcotest.(check int) "one block per violation"
    (List.length report.Verifier.r_violations)
    (count_substring listing "EXPLAIN ");
  Alcotest.(check bool) "names the driving primitive" true (contains listing "B2")

let test_explain_without_tracing () =
  let nl = two_buf_circuit () in
  let obs = Obs.create () in
  let report = Verifier.verify ~probe:(Obs.probe obs) nl in
  Alcotest.(check bool) "no ring allocated" true (Obs.ring obs = None);
  Alcotest.(check bool) "evaluator hook stayed off" true
    (Eval.event_hook report.Verifier.r_eval = None);
  let listing = Obs.explain_all obs nl report.Verifier.r_violations in
  Alcotest.(check int) "blocks still printed"
    (List.length report.Verifier.r_violations)
    (count_substring listing "EXPLAIN ");
  Alcotest.(check bool) "degrades to the note" true
    (contains listing "no recorded events")

(* ---- verifier probe and r_obs --------------------------------------------- *)

let test_probe_spans_and_r_obs () =
  let nl = two_buf_circuit () in
  let clock, _ = fake_clock () in
  let obs = Obs.create ~clock ~trace_buffer:16 () in
  let report =
    Verifier.verify ~probe:(Obs.probe obs)
      ~lint:(fun _ ->
        { Verifier.ls_errors = 0; ls_warnings = 0; ls_infos = 0; ls_listing = "" })
      nl
  in
  let names = List.map (fun s -> s.Span.s_name) (Span.spans (Obs.profiler obs)) in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " span present") true
        (List.mem expected names))
    [ "lint"; "evaluate:case1"; "check:case1" ];
  Alcotest.(check int) "r_obs queued matches counters"
    (Eval.counters report.Verifier.r_eval).Eval.c_queued
    report.Verifier.r_obs.Verifier.os_queued;
  Alcotest.(check bool) "r_obs hwm positive" true
    (report.Verifier.r_obs.Verifier.os_queue_hwm >= 1);
  Alcotest.(check bool) "r_obs kinds populated" true
    (report.Verifier.r_obs.Verifier.os_evals_by_kind <> [])

let test_r_obs_without_probe () =
  let nl = two_buf_circuit () in
  let report = Verifier.verify nl in
  Alcotest.(check bool) "counters carried with no probe" true
    (report.Verifier.r_obs.Verifier.os_queued > 0);
  Alcotest.(check bool) "hook never installed" true
    (Eval.event_hook report.Verifier.r_eval = None)

(* ---- exporters ------------------------------------------------------------- *)

let test_metrics_json () =
  let nl = two_buf_circuit () in
  let obs = Obs.create ~trace_buffer:16 () in
  let report = Verifier.verify ~probe:(Obs.probe obs) nl in
  let m = Obs.metrics obs ~report in
  Alcotest.(check int) "events counter" report.Verifier.r_events
    (Counters.counter m "events");
  Alcotest.(check int) "hwm counter"
    report.Verifier.r_obs.Verifier.os_queue_hwm
    (Counters.counter m "queue_hwm");
  Alcotest.(check bool) "phases captured" true
    (List.mem_assoc "evaluate:case1" m.Counters.m_phases);
  let json = Counters.to_json m in
  Alcotest.(check bool) "valid json" true (json_ok json);
  List.iter
    (fun key -> Alcotest.(check bool) (key ^ " present") true (contains json key))
    [
      "\"schema\"";
      "\"events\"";
      "\"evaluations\"";
      "\"queue_hwm\"";
      "\"sched_levels\"";
      "\"sccs\"";
      "\"max_scc_size\"";
      "\"cache_hits\"";
      "\"cache_misses\"";
      "\"events_coalesced\"";
      "\"converged\"";
      "\"evals_by_kind\"";
      "\"phases_s\"";
    ]

let test_trace_json () =
  let clock, tick = fake_clock () in
  let prof = Span.create ~clock () in
  Span.with_span prof "expand \"quoted\"" (fun () ->
      tick 0.001;
      Span.with_span prof "evaluate" (fun () -> tick 0.002));
  let json = Trace_export.to_json ~counters:[ ("events", 42) ] prof in
  Alcotest.(check bool) "valid json" true (json_ok json);
  Alcotest.(check bool) "array shape" true (String.length json > 0 && json.[0] = '[');
  List.iter
    (fun key -> Alcotest.(check bool) (key ^ " present") true (contains json key))
    [ "\"ph\": \"X\""; "\"ph\": \"C\""; "\"ts\":"; "\"dur\":"; "\"name\":" ];
  Alcotest.(check bool) "escapes names" true (contains json "expand \\\"quoted\\\"");
  Alcotest.(check bool) "counter value" true (contains json "{\"events\": 42}")

let test_json_string_escaping () =
  Alcotest.(check string) "plain" "\"abc\"" (Counters.json_string "abc");
  Alcotest.(check string) "specials" "\"a\\\"b\\\\c\\nd\""
    (Counters.json_string "a\"b\\c\nd");
  Alcotest.(check string) "control" "\"\\u0001\"" (Counters.json_string "\x01");
  Alcotest.(check bool) "result parses" true (json_ok (Counters.json_string "a\"b\\c\nd\x01"))

(* ---- latency histograms ---------------------------------------------------- *)

let test_hist_buckets () =
  Alcotest.(check int) "<=1 lands in bucket 0" 0 (Hist.index 0.5);
  Alcotest.(check int) "1.0 lands in bucket 0" 0 (Hist.index 1.0);
  Alcotest.(check (float 1e-9)) "bound 0" 1.0 (Hist.bound 0);
  Alcotest.(check (float 1e-9)) "bound 4 is an octave" 2.0 (Hist.bound 4);
  (* the bucket invariant: every value is at most its bucket's upper
     bound, and above the previous bucket's *)
  List.iter
    (fun v ->
      let i = Hist.index v in
      Alcotest.(check bool)
        (Printf.sprintf "%g <= bound %d" v i)
        true
        (v <= Hist.bound i +. 1e-9);
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "%g > bound %d" v (i - 1))
          true
          (v > Hist.bound (i - 1) -. 1e-9))
    [ 1.5; 2.0; 3.0; 10.0; 1000.0; 12345.678; 1.0e9 ];
  (* index is monotone over a sweep *)
  let last = ref (-1) in
  for k = 1 to 400 do
    let i = Hist.index (float_of_int k *. 7.3) in
    Alcotest.(check bool) "monotone" true (i >= !last);
    last := i
  done

let test_hist_exact_stats () =
  let h = Hist.create () in
  Alcotest.(check int) "empty count" 0 (Hist.count h);
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Hist.quantile h 0.5);
  List.iter (Hist.add h) [ 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 ];
  Alcotest.(check int) "count" 8 (Hist.count h);
  Alcotest.(check (float 1e-9)) "sum exact" 31.0 (Hist.sum h);
  Alcotest.(check (float 1e-9)) "min exact" 1.0 (Hist.min_value h);
  Alcotest.(check (float 1e-9)) "max exact" 9.0 (Hist.max_value h);
  Alcotest.(check (float 1e-9)) "mean" (31.0 /. 8.0) (Hist.mean h);
  Hist.clear h;
  Alcotest.(check int) "cleared" 0 (Hist.count h);
  Alcotest.(check (float 0.0)) "cleared sum" 0.0 (Hist.sum h)

let test_hist_quantiles () =
  (* insertion order never changes a quantile *)
  let values = List.init 100 (fun i -> float_of_int (i + 1) *. 37.0) in
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.add a) values;
  List.iter (Hist.add b) (List.rev values);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "q=%g order-independent" q)
        (Hist.quantile a q) (Hist.quantile b q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ];
  (* bounded relative error: the estimate is the bucket's upper bound,
     so it sits within [true, true * 2^(1/4)] *)
  let true_p50 = 50.0 *. 37.0 in
  let est = Hist.quantile a 0.5 in
  Alcotest.(check bool) "p50 >= true" true (est >= true_p50 -. 1e-9);
  Alcotest.(check bool) "p50 within one bucket" true
    (est <= true_p50 *. Float.pow 2.0 0.25 +. 1e-9);
  Alcotest.(check (float 1e-9)) "p100 is the max exactly" (100.0 *. 37.0)
    (Hist.quantile a 1.0);
  (* a one-element histogram reports the element at every quantile *)
  let one = Hist.create () in
  Hist.add one 1234.5;
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "single element q=%g" q)
        1234.5 (Hist.quantile one q))
    [ 0.0; 0.5; 0.99; 1.0 ]

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () and whole = Hist.create () in
  let va = [ 10.0; 20.0; 30.0 ] and vb = [ 5.0; 40.0; 80.0; 160.0 ] in
  List.iter (Hist.add a) va;
  List.iter (Hist.add b) vb;
  List.iter (Hist.add whole) (va @ vb);
  let m = Hist.merge a b in
  Alcotest.(check int) "count adds" 7 (Hist.count m);
  Alcotest.(check (float 1e-9)) "sum adds" (Hist.sum whole) (Hist.sum m);
  Alcotest.(check (float 1e-9)) "min combines" 5.0 (Hist.min_value m);
  Alcotest.(check (float 1e-9)) "max combines" 160.0 (Hist.max_value m);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "merged quantile q=%g" q)
        (Hist.quantile whole q) (Hist.quantile m q))
    [ 0.25; 0.5; 0.75; 1.0 ];
  Alcotest.(check int) "arguments untouched" 3 (Hist.count a);
  let e = Hist.merge (Hist.create ()) b in
  Alcotest.(check (float 1e-9)) "empty merge keeps min" 5.0 (Hist.min_value e)

(* ---- resource accounting --------------------------------------------------- *)

let test_mem_sample () =
  let s = Mem.sample () in
  Alcotest.(check bool) "heap words positive" true (s.Mem.mem_heap_words > 0);
  Alcotest.(check bool) "minor words non-negative" true
    (s.Mem.mem_minor_words >= 0.0);
  Alcotest.(check bool) "compactions non-negative" true
    (s.Mem.mem_compactions >= 0);
  Alcotest.(check bool) "rss non-negative" true (s.Mem.mem_peak_rss_kb >= 0);
  let carried = Mem.sample ~peak_rss_kb:4321 () in
  Alcotest.(check int) "rss carried forward" 4321 carried.Mem.mem_peak_rss_kb;
  Alcotest.(check int) "zero placeholder" 0 Mem.zero.Mem.mem_heap_words

(* ---- trace lanes ----------------------------------------------------------- *)

let test_span_lanes () =
  let clock, tick = fake_clock () in
  let prof = Span.create ~clock () in
  Alcotest.(check int) "lane starts at 0" 0 (Span.lane prof);
  Span.with_span prof "boot" (fun () -> tick 0.001);
  Span.set_lane prof 3;
  Span.with_span prof "outer" (fun () ->
      tick 0.001;
      Span.with_span prof "inner" (fun () -> tick 0.001));
  Span.set_lane prof 0;
  Alcotest.(check int) "three spans complete" 3 (Span.n_completed prof);
  (match Span.recent prof 2 with
  | [ newest; older ] ->
    Alcotest.(check string) "newest last-completed" "outer" newest.Span.s_name;
    Alcotest.(check string) "then inner" "inner" older.Span.s_name;
    Alcotest.(check int) "request spans stamped" 3 newest.Span.s_lane;
    Alcotest.(check int) "nested span inherits lane" 3 older.Span.s_lane
  | l -> Alcotest.failf "expected 2 recent spans, got %d" (List.length l));
  (match Span.spans prof with
  | boot :: _ -> Alcotest.(check int) "pre-request span on lane 0" 0 boot.Span.s_lane
  | [] -> Alcotest.fail "no spans");
  let json = Trace_export.to_json ~lanes:[ (3, "r3:verify") ] prof in
  Alcotest.(check bool) "valid json" true (json_ok json);
  Alcotest.(check bool) "lane becomes tid" true (contains json "\"tid\": 3");
  Alcotest.(check bool) "thread_name metadata" true
    (contains json "\"thread_name\"");
  Alcotest.(check bool) "lane named" true (contains json "\"r3:verify\"")

(* ---- metrics/3: requests counter and duplicate-key rejection ---------------- *)

let test_metrics_requests_and_dups () =
  Alcotest.(check string) "schema id" "scald-metrics/5" Counters.schema_version;
  let nl = two_buf_circuit () in
  let report = Verifier.verify nl in
  let m = Counters.of_report report in
  Alcotest.(check int) "one-shot run reports 0 requests" 0
    (Counters.counter m "requests");
  Alcotest.(check bool) "requests serialized" true
    (contains (Counters.to_json m) "\"requests\"");
  Alcotest.(check bool) "schema id serialized" true
    (contains (Counters.to_json m) "scald-metrics/5");
  let m = Counters.of_report ~extra:[ ("incr_requests", 7) ] report in
  Alcotest.(check int) "extra appended" 7 (Counters.counter m "incr_requests");
  Alcotest.check_raises "extra colliding with a builtin"
    (Invalid_argument "Counters.of_report: duplicate key \"events\"") (fun () ->
      ignore (Counters.of_report ~extra:[ ("events", 1) ] report));
  Alcotest.check_raises "extra colliding with itself"
    (Invalid_argument "Counters.of_report: duplicate key \"svc_x\"") (fun () ->
      ignore (Counters.of_report ~extra:[ ("svc_x", 1); ("svc_x", 2) ] report))

(* ---- the underconstrained example (acceptance shape) ----------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_underconstrained_explain () =
  match Scald_sdl.Expander.load (read_file "../examples/underconstrained.sdl") with
  | Error e -> Alcotest.failf "expander: %s" e
  | Ok { Scald_sdl.Expander.e_netlist = nl; _ } ->
    let obs = Obs.create ~trace_buffer:4096 () in
    let report = Verifier.verify ~probe:(Obs.probe obs) nl in
    Alcotest.(check bool) "violations exist" true
      (report.Verifier.r_violations <> []);
    let listing = Obs.explain_all obs nl report.Verifier.r_violations in
    Alcotest.(check int) "a causal block for every violation"
      (List.length report.Verifier.r_violations)
      (count_substring listing "EXPLAIN ")

let suite =
  [
    Alcotest.test_case "json-checker-sanity" `Quick test_json_checker_sanity;
    Alcotest.test_case "span-nesting" `Quick test_span_nesting;
    Alcotest.test_case "span-records-on-raise" `Quick test_span_records_on_raise;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "event-hook" `Quick test_event_hook;
    Alcotest.test_case "ring-bounds" `Quick test_ring_bounds;
    Alcotest.test_case "causal-chain" `Quick test_causal_chain;
    Alcotest.test_case "explain-violation" `Quick test_explain_violation;
    Alcotest.test_case "explain-without-tracing" `Quick test_explain_without_tracing;
    Alcotest.test_case "probe-spans-and-r-obs" `Quick test_probe_spans_and_r_obs;
    Alcotest.test_case "r-obs-without-probe" `Quick test_r_obs_without_probe;
    Alcotest.test_case "metrics-json" `Quick test_metrics_json;
    Alcotest.test_case "trace-json" `Quick test_trace_json;
    Alcotest.test_case "json-string-escaping" `Quick test_json_string_escaping;
    Alcotest.test_case "hist-buckets" `Quick test_hist_buckets;
    Alcotest.test_case "hist-exact-stats" `Quick test_hist_exact_stats;
    Alcotest.test_case "hist-quantiles" `Quick test_hist_quantiles;
    Alcotest.test_case "hist-merge" `Quick test_hist_merge;
    Alcotest.test_case "mem-sample" `Quick test_mem_sample;
    Alcotest.test_case "span-lanes" `Quick test_span_lanes;
    Alcotest.test_case "metrics-requests-and-dups" `Quick
      test_metrics_requests_and_dups;
    Alcotest.test_case "underconstrained-explain" `Quick test_underconstrained_explain;
  ]
