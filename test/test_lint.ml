(* Constraint-lint tests: every rule both firing and passing on minimal
   designs, the JSON round-trip, the Verifier ?lint hook, the dedup fix,
   and a golden snapshot of the s1_subset lint listing. *)

open Scald_core
module Lint = Scald_lint.Lint
module Rules = Scald_lint.Rules
module LR = Scald_lint.Lint_report

let load src =
  match Scald_sdl.Expander.load src with
  | Ok e -> e.Scald_sdl.Expander.e_netlist
  | Error msg -> Alcotest.failf "expander: %s" msg

let preamble = "PERIOD 50.0;\nCLOCK UNIT 6.25;\nDEFAULT WIRE DELAY 0.0/2.0;\n"

let audit_src src = Lint.audit (load (preamble ^ src))

let fires id r = LR.by_rule id r <> []

let check_fires id src =
  Alcotest.(check bool) (id ^ " fires") true (fires id (audit_src src))

let check_passes id src =
  Alcotest.(check bool) (id ^ " passes") false (fires id (audit_src src))

(* ---- completeness rules --------------------------------------------------- *)

let test_c1 () =
  check_fires "C1" "SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S0-4, CK FREE);\n";
  check_passes "C1" "SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S0-4, CK .P2-3);\n";
  (* a clock derived through a gate still traces back to the assertion *)
  check_passes "C1"
    "2 AND (DELAY=1.0/2.0) (CK .P2-3 &H, EN .S0-8) -> CKG;\n\
     SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S0-4, CKG);\n"

let test_c2 () =
  check_fires "C2" "SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D RAW, CK .P2-3);\n";
  check_passes "C2" "SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S0-4, CK .P2-3);\n"

let test_c3 () =
  check_fires "C3" "REG (DELAY=1.5/4.5) (D .S0-4, CK .P2-3) -> Q;\n";
  check_passes "C3"
    "REG (DELAY=1.5/4.5) (D .S0-4, CK .P2-3) -> Q;\n\
     SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S0-4, CK .P2-3);\n"

let test_c4 () =
  check_fires "C4" "2 AND (DELAY=1.0/2.0) (CK .P2-3, EN .S0-8) -> G;\n";
  check_passes "C4" "2 AND (DELAY=1.0/2.0) (CK .P2-3 &H, EN .S0-8) -> G;\n";
  (* an explicit non-hazard directive is a waiver: noted, not warned *)
  let r = audit_src "2 AND (DELAY=1.0/2.0) (CK .P2-3 &Z, EN .S0-8) -> G;\n" in
  let c4 = LR.by_rule "C4" r in
  Alcotest.(check int) "waiver noted once" 1 (List.length c4);
  Alcotest.(check bool) "waiver is Info" true
    (List.for_all (fun f -> f.LR.f_severity = LR.Info) c4)

let test_c5 () =
  check_fires "C5" "SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S0-4, CK .P2-3);\n";
  (* skew specs are part of the assertion language, not the textual HDL:
     build the explicit-skew clock through the netlist API *)
  let nl =
    Netlist.create
      (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
      ~default_wire_delay:(Delay.of_ns 0.0 2.0)
  in
  ignore (Netlist.signal nl "CK .P(-1.0,1.0)2-3");
  Alcotest.(check bool) "C5 passes" false (fires "C5" (Lint.audit nl))

(* ---- consistency rules ----------------------------------------------------- *)

let test_k1 () =
  check_fires "K1"
    "WIRE DELAY (D .S0-4) = 0.0/60.0;\n\
     SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S0-4, CK .P2-3);\n";
  check_passes "K1"
    "WIRE DELAY (D .S0-4) = 0.0/6.0;\n\
     SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S0-4, CK .P2-3);\n"

let test_k2 () =
  (* infeasible set-up + hold *)
  check_fires "K2" "SETUP HOLD CHK (SETUP=30.0, HOLD=25.0) (D .S0-4, CK .P2-3);\n";
  (* infeasible minimum pulse widths *)
  check_fires "K2" "MIN PULSE WIDTH (WIDTH=30.0/30.0) (CK .P2-3);\n";
  (* one-level data path that eats the whole period before set-up *)
  check_fires "K2"
    "1 CHG (DELAY=10.0/48.0) (D .S0-4) -> X;\n\
     SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (X, CK .P2-3);\n";
  check_passes "K2" "SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S0-4, CK .P2-3);\n"

let test_k3 () =
  check_fires "K3" "2 AND (DELAY=1.0/2.0) (CK .P2-3 &HZZW, EN .S0-8) -> G;\n";
  check_passes "K3" "2 AND (DELAY=1.0/2.0) (CK .P2-3 &H, EN .S0-8) -> G;\n";
  (* two letters are fine when a second level of gating consumes them *)
  check_passes "K3"
    "2 AND (DELAY=1.0/2.0) (CK .P2-3 &HZ, EN .S0-8) -> G1;\n\
     2 AND (DELAY=1.0/2.0) (G1, EN2 .S0-8) -> G2;\n"

let test_k4 () =
  check_fires "K4" "2 OR (DELAY=1.0/2.0) (LOOP, D .S0-4) -> LOOP;\n";
  (* feedback through a register is legitimate *)
  check_passes "K4"
    "REG (DELAY=1.5/4.5) (LOOP, CK .P2-3) -> Q;\n\
     2 OR (DELAY=1.0/2.0) (Q, D .S0-4) -> LOOP;\n\
     SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (LOOP, CK .P2-3);\n"

let test_k5 () =
  (* (a) conflicting spellings split one signal into two nets *)
  check_fires "K5"
    "1 CHG (DELAY=1.0/2.0) (D) -> X;\n\
     SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S0-4, CK .P2-3);\n";
  (* (b) a .S signal used as an edge-sensitive clock *)
  check_fires "K5" "REG (DELAY=1.5/4.5) (D .S0-4, EN .S0-8) -> Q;\n";
  (* (c) a low-active clock entering the clock input uncomplemented *)
  check_fires "K5" "REG (DELAY=1.5/4.5) (D .S0-4, CKL .P2-3 L) -> Q;\n";
  check_passes "K5" "REG (DELAY=1.5/4.5) (D .S0-4, - CKL .P2-3 L) -> Q;\n"

let test_k6 () =
  check_fires "K6" "1 CHG (DELAY=1.0/2.0) (D .S0-4) -> X;\n";
  check_passes "K6"
    "1 CHG (DELAY=1.0/2.0) (D .S0-4) -> X;\n\
     SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (X, CK .P2-3);\n"

(* ---- signal-class (Flow-backed) rules -------------------------------------- *)

let test_c6 () =
  (* data launched by CK A, captured by CK B: an unconstrained crossing *)
  check_fires "C6"
    "REG (DELAY=1.5/4.5) (D .S0-4, CK A .P5-6) -> QA;\n\
     REG (DELAY=1.5/4.5) (QA, CK B .P2-3) -> QX;\n";
  (* same clock on both registers: no crossing *)
  check_passes "C6"
    "REG (DELAY=1.5/4.5) (D .S0-4, CK A .P5-6) -> QA;\n\
     REG (DELAY=1.5/4.5) (QA, CK A .P5-6) -> QX;\n";
  (* primary data (empty domain set) is the ordinary synchronous case *)
  check_passes "C6" "REG (DELAY=1.5/4.5) (D .S0-4, CK A .P5-6) -> QA;\n"

let test_c7 () =
  check_fires "C7"
    "REG (DELAY=1.5/4.5) (D .S0-4, CK A .P5-6) -> QA;\n\
     REG (DELAY=1.5/4.5) (E .S0-4, CK B .P2-3) -> QB;\n\
     2 AND (DELAY=1.0/2.0) (QA, QB) -> MIX;\n";
  (* inputs sharing a domain (one clock) converge legitimately *)
  check_passes "C7"
    "REG (DELAY=1.5/4.5) (D .S0-4, CK A .P5-6) -> QA;\n\
     REG (DELAY=1.5/4.5) (E .S0-4, CK A .P5-6) -> QB;\n\
     2 AND (DELAY=1.0/2.0) (QA, QB) -> MIX;\n"

let test_k7 () =
  (* the gate control is launched by the very clock it gates; the &H
     directive waives C4 but the race itself remains K7's business *)
  check_fires "K7"
    "REG (DELAY=1.5/4.5) (D .S0-4, CK .P2-3) -> Q;\n\
     2 AND (DELAY=1.0/2.0) (CK .P2-3 &H, Q) -> G;\n";
  (* gating by an unrelated stable enable is the sanctioned shape *)
  check_passes "K7" "2 AND (DELAY=1.0/2.0) (CK .P2-3 &H, EN .S0-8) -> G;\n";
  (* data from another domain is a crossing (C6/C7), not this race *)
  check_passes "K7"
    "REG (DELAY=1.5/4.5) (D .S0-4, CK B .P5-6) -> Q;\n\
     2 AND (DELAY=1.0/2.0) (CK .P2-3 &H, Q) -> G;\n"

(* ---- arrival-window (Window-backed) rules ----------------------------------- *)

let test_w1 () =
  (* a stable cone can never violate its assertion: vacuous *)
  check_fires "W1" "1 CHG (DELAY=1.0/2.0) (EN .S0-8) -> X .S0-8;\n";
  (* transitions land inside the asserted window: not proven (W5's case) *)
  check_passes "W1" "1 CHG (DELAY=1.0/2.0) (D .S0-4) -> X .S0-8;\n"

let test_w2 () =
  (* both inputs asserted and the windows clear the check at every corner *)
  check_fires "W2" "SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S0-4, CK .P2-3);\n";
  (* proven only via the stable assumption on RAW: W4's business, not W2's *)
  check_passes "W2" "SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D RAW, CK .P2-3);\n"

let test_w3 () =
  (* the asserted data window straddles the clock pulse: always violated *)
  check_fires "W3" "SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S2-3, CK .P2-3);\n";
  check_passes "W3" "SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S0-4, CK .P2-3);\n"

let test_w4 () =
  (* no assertion anywhere in the checker input's cone *)
  check_fires "W4" "SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D RAW, CK .P2-3);\n";
  (* combinational feedback widens the window to unbounded *)
  check_fires "W4"
    "2 OR (DELAY=1.0/2.0) (LOOP, D .S0-4) -> LOOP;\n\
     SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (LOOP, CK .P2-3);\n";
  check_passes "W4" "SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S0-4, CK .P2-3);\n"

let test_w5 () =
  (* every possible transition of X falls inside its asserted-stable span *)
  check_fires "W5" "1 CHG (DELAY=1.0/2.0) (D .S0-4) -> X .S0-8;\n";
  check_passes "W5" "1 CHG (DELAY=1.0/2.0) (EN .S0-8) -> X .S0-8;\n"

(* ---- catalogue ------------------------------------------------------------- *)

let test_catalogue () =
  Alcotest.(check int) "nineteen rules" 19 (List.length Rules.all);
  let ids = List.map (fun (r : Rules.rule) -> r.Rules.id) Rules.all in
  Alcotest.(check (list string)) "ids"
    [ "C1"; "C2"; "C3"; "C4"; "C5"; "C6"; "C7";
      "K1"; "K2"; "K3"; "K4"; "K5"; "K6"; "K7";
      "W1"; "W2"; "W3"; "W4"; "W5" ]
    ids;
  (match Rules.find "k4" with
  | Some r -> Alcotest.(check string) "find is case-insensitive" "K4" r.Rules.id
  | None -> Alcotest.fail "Rules.find k4 = None");
  Alcotest.(check bool) "unknown id" true (Rules.find "Z9" = None)

(* ---- the shipped examples -------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_underconstrained_example () =
  let r = Lint.audit (load (read_file "../examples/underconstrained.sdl")) in
  let ids = LR.rule_ids r in
  (* every structural rule fires; the CDC rules C6/C7/K7 need a second
     clock domain and are exercised by examples/cdc.sdl instead, and the
     remaining window rules W1/W2/W5 by examples/vacuous.sdl *)
  Alcotest.(check (list string)) "structural rules fire"
    [ "C1"; "C2"; "C3"; "C4"; "C5"; "K1"; "K2"; "K3"; "K4"; "K5"; "K6";
      "W3"; "W4" ]
    ids;
  Alcotest.(check bool) "has lint errors" false (LR.clean r)

let test_cdc_example () =
  let r = Lint.audit (load (read_file "../examples/cdc.sdl")) in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " fires on cdc.sdl") true (fires id r))
    [ "C6"; "C7"; "K7" ];
  Alcotest.(check int) "no lint errors" 0 (LR.count LR.Error r)

let test_cdc_golden () =
  let r = Lint.audit (load (read_file "../examples/cdc.sdl")) in
  let actual = Format.asprintf "%a" LR.pp r in
  let golden = read_file "golden/cdc_lint.txt" in
  Alcotest.(check string) "cdc lint listing snapshot" golden actual

let test_s1_subset_clean () =
  let r = Lint.audit (load (read_file "../examples/s1_subset.sdl")) in
  Alcotest.(check int) "no lint errors" 0 (LR.count LR.Error r);
  Alcotest.(check bool) "clean" true (LR.clean r)

let test_s1_subset_golden () =
  let r = Lint.audit (load (read_file "../examples/s1_subset.sdl")) in
  let actual = Format.asprintf "%a" LR.pp r in
  let golden = read_file "golden/s1_subset_lint.txt" in
  Alcotest.(check string) "lint listing snapshot" golden actual

let test_vacuous_each_w_once () =
  let r = Lint.audit (load (read_file "../examples/vacuous.sdl")) in
  List.iter
    (fun id ->
      Alcotest.(check int) (id ^ " fires exactly once") 1
        (List.length (LR.by_rule id r)))
    [ "W1"; "W2"; "W3"; "W4"; "W5" ]

let test_vacuous_golden () =
  let r = Lint.audit (load (read_file "../examples/vacuous.sdl")) in
  let actual = Format.asprintf "%a" LR.pp r in
  let golden = read_file "golden/vacuous_lint.txt" in
  Alcotest.(check string) "vacuous lint listing snapshot" golden actual

(* ---- JSON round-trip -------------------------------------------------------- *)

let finding_eq : LR.finding Alcotest.testable =
  Alcotest.testable
    (fun ppf f -> Format.pp_print_string ppf (LR.finding_to_json f))
    ( = )

let test_json_roundtrip () =
  let r = Lint.audit (load (read_file "../examples/underconstrained.sdl")) in
  Alcotest.(check bool) "findings present" true (r.LR.findings <> []);
  List.iter
    (fun f ->
      let line = LR.finding_to_json f in
      match LR.finding_of_json line with
      | Ok f' -> Alcotest.check finding_eq "round-trip" f f'
      | Error e -> Alcotest.failf "parse failed on %s: %s" line e)
    r.LR.findings

let test_json_escaping () =
  let f =
    { LR.f_rule = "K9";
      f_severity = LR.Warning;
      f_locus = LR.Inst "A \"B\"\\C";
      f_message = "line1\nline2\ttab";
      f_hint = "ctrl\001char" }
  in
  let line = LR.finding_to_json f in
  Alcotest.(check bool) "single line" false (String.contains line '\n');
  match LR.finding_of_json line with
  | Ok f' -> Alcotest.check finding_eq "escaped round-trip" f f'
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_rejects () =
  Alcotest.(check bool) "not an object" true
    (Result.is_error (LR.finding_of_json "[1,2]"));
  Alcotest.(check bool) "missing fields" true
    (Result.is_error (LR.finding_of_json "{\"rule\":\"C1\"}"));
  Alcotest.(check bool) "bad severity" true
    (Result.is_error
       (LR.finding_of_json
          "{\"rule\":\"C1\",\"severity\":\"fatal\",\"locus_kind\":\"net\",\"locus\":\"X\",\"message\":\"m\",\"hint\":\"h\"}"))

(* ---- the Verifier hook ------------------------------------------------------ *)

let test_verifier_hook () =
  let nl = load (read_file "../examples/s1_subset.sdl") in
  let report = Verifier.verify ~lint:Lint.summary nl in
  match report.Verifier.r_lint with
  | None -> Alcotest.fail "r_lint = None despite ?lint hook"
  | Some l ->
    let r = Lint.audit nl in
    Alcotest.(check int) "errors" (LR.count LR.Error r) l.Verifier.ls_errors;
    Alcotest.(check int) "warnings" (LR.count LR.Warning r) l.Verifier.ls_warnings;
    Alcotest.(check int) "infos" (LR.count LR.Info r) l.Verifier.ls_infos;
    Alcotest.(check bool) "listing rendered" true
      (String.length l.Verifier.ls_listing > 0);
    (* without the hook the field stays empty *)
    let plain = Verifier.verify nl in
    Alcotest.(check bool) "no hook, no lint" true (plain.Verifier.r_lint = None)

(* ---- dedup regression -------------------------------------------------------- *)

let violation ?(detail = "") ?(actual = None) () =
  { Check.v_kind = Check.Setup_violation;
    v_inst = "CHK.1";
    v_signal = "D";
    v_clock = Some "CK";
    v_required = 2_500;
    v_actual = actual;
    v_at = Some 10_000;
    v_detail = detail }

let test_dedup () =
  (* exact duplicates collapse, first occurrence kept *)
  let v = violation ~detail:"d" () in
  Alcotest.(check int) "duplicates collapse" 1
    (List.length (Verifier.dedup_violations [ v; v; v ]));
  (* violations differing only in v_detail are distinct findings *)
  let a = violation ~detail:"case 1" () in
  let b = violation ~detail:"case 2" () in
  Alcotest.(check int) "distinct details survive" 2
    (List.length (Verifier.dedup_violations [ a; b ]));
  (* ... and so are ones differing only in the measured margin *)
  let c = violation ~actual:(Some 1_000) () in
  let d = violation ~actual:(Some 2_000) () in
  Alcotest.(check int) "distinct margins survive" 2
    (List.length (Verifier.dedup_violations [ c; d ]));
  Alcotest.(check int) "mixed" 3
    (List.length (Verifier.dedup_violations [ a; b; a; c; c ]))

let suite =
  [
    Alcotest.test_case "C1 clock reaches edge inputs" `Quick test_c1;
    Alcotest.test_case "C2 primary inputs asserted" `Quick test_c2;
    Alcotest.test_case "C3 data inputs checked" `Quick test_c3;
    Alcotest.test_case "C4 gated clocks carry directives" `Quick test_c4;
    Alcotest.test_case "C5 default skew noted" `Quick test_c5;
    Alcotest.test_case "K1 delay sanity" `Quick test_k1;
    Alcotest.test_case "K2 constraint feasibility" `Quick test_k2;
    Alcotest.test_case "K3 directive length" `Quick test_k3;
    Alcotest.test_case "K4 combinational cycles" `Quick test_k4;
    Alcotest.test_case "K5 assertion consistency" `Quick test_k5;
    Alcotest.test_case "K6 dead logic" `Quick test_k6;
    Alcotest.test_case "C6 clock-domain crossings" `Quick test_c6;
    Alcotest.test_case "C7 domain convergence" `Quick test_c7;
    Alcotest.test_case "K7 same-domain clock gating" `Quick test_k7;
    Alcotest.test_case "W1 vacuous stable assertions" `Quick test_w1;
    Alcotest.test_case "W2 provably satisfied checkers" `Quick test_w2;
    Alcotest.test_case "W3 guaranteed violations" `Quick test_w3;
    Alcotest.test_case "W4 unbounded or unconstrained windows" `Quick test_w4;
    Alcotest.test_case "W5 window/assertion contradictions" `Quick test_w5;
    Alcotest.test_case "rule catalogue" `Quick test_catalogue;
    Alcotest.test_case "underconstrained example fires all rules" `Quick
      test_underconstrained_example;
    Alcotest.test_case "cdc example fires the CDC rules" `Quick test_cdc_example;
    Alcotest.test_case "cdc lint listing snapshot" `Quick test_cdc_golden;
    Alcotest.test_case "s1_subset has no lint errors" `Quick test_s1_subset_clean;
    Alcotest.test_case "s1_subset lint listing snapshot" `Quick test_s1_subset_golden;
    Alcotest.test_case "vacuous example fires each W rule once" `Quick
      test_vacuous_each_w_once;
    Alcotest.test_case "vacuous lint listing snapshot" `Quick test_vacuous_golden;
    Alcotest.test_case "JSON round-trip on real findings" `Quick test_json_roundtrip;
    Alcotest.test_case "JSON escaping" `Quick test_json_escaping;
    Alcotest.test_case "JSON rejects malformed lines" `Quick test_json_rejects;
    Alcotest.test_case "Verifier ?lint hook" `Quick test_verifier_hook;
    Alcotest.test_case "dedup keeps distinct violations" `Quick test_dedup;
  ]
