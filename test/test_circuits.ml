open Scald_core
module Circuits = Scald_cells.Circuits

(* Regression tests pinning the thesis's published results. *)

let test_fig_2_5_adr_line () =
  (* Figure 3-10: ADR<0:3> stable at 0, changing 0.5, stable 5.5-25.5,
     changing 25.5-30.5, stable for the rest of the cycle. *)
  let c = Circuits.register_file_example () in
  let report = Verifier.verify c.Circuits.rf_netlist in
  let wf = Eval.value report.Verifier.r_eval c.Circuits.rf_adr in
  let expected =
    Waveform.of_intervals ~period:50_000 ~inside:Tvalue.Change ~outside:Tvalue.Stable
      [ (500, 5_500); (25_500, 30_500) ]
  in
  Alcotest.(check bool) "exact Figure 3-10 line" true (Waveform.equal wf expected)

let test_fig_3_11_errors () =
  (* Figure 3-11: exactly two set-up violations with the published
     numbers. *)
  let c = Circuits.register_file_example () in
  let report = Verifier.verify c.Circuits.rf_netlist in
  let setups = Verifier.violations_of_kind Check.Setup_violation report in
  Alcotest.(check int) "two violations total" 2 (List.length report.Verifier.r_violations);
  Alcotest.(check int) "both are set-up" 2 (List.length setups);
  let find_at t = List.find_opt (fun (v : Check.t) -> v.Check.v_at = Some t) setups in
  (match find_at 11_500 with
  | Some v ->
    Alcotest.(check int) "required 3.5" 3_500 v.Check.v_required;
    Alcotest.(check (option int)) "missed by the full 3.5" (Some 0) v.Check.v_actual
  | None -> Alcotest.fail "no violation at 11.5 ns");
  match find_at 49_000 with
  | Some v ->
    Alcotest.(check int) "required 2.5" 2_500 v.Check.v_required;
    Alcotest.(check (option int)) "margin 1.5 (missed by 1.0)" (Some 1_500) v.Check.v_actual
  | None -> Alcotest.fail "no violation at 49.0 ns"

let test_fig_2_5_write_enable_hazard_free () =
  (* The &H directive on the write-enable gate checks WRITE is stable
     while the clock is asserted: the example design satisfies it. *)
  let c = Circuits.register_file_example () in
  let report = Verifier.verify c.Circuits.rf_netlist in
  Alcotest.(check int) "no hazards" 0
    (List.length (Verifier.violations_of_kind Check.Hazard report))

let test_fig_2_5_size_parameter () =
  let c = Circuits.register_file_example ~size:16 () in
  let nl = c.Circuits.rf_netlist in
  Alcotest.(check int) "ram out width" 16 (Netlist.net nl c.Circuits.rf_ram_out).Netlist.n_width

let test_fig_1_5 () =
  let hazard_count at =
    let gc = Circuits.gated_clock_hazard ~enable_stable_at:at () in
    List.length
      (Verifier.violations_of_kind Check.Hazard (Verifier.verify gc.Circuits.gc_netlist))
  in
  Alcotest.(check int) "broken has the hazard" 1 (hazard_count 2.5);
  Alcotest.(check int) "fixed is clean" 0 (hazard_count 1.5)

let test_fig_3_12_clean () =
  let ar = Circuits.arithmetic_example () in
  let report = Verifier.verify ar.Circuits.ar_netlist in
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun (v : Check.t) -> Format.asprintf "%a" Check.pp v)
       report.Verifier.r_violations)

let test_fig_4_1_false_error_and_corr () =
  let holds corr =
    let fb = Circuits.correlation_example ~corr_delay_ns:corr in
    List.length
      (Verifier.violations_of_kind Check.Hold_violation
         (Verifier.verify fb.Circuits.fb_netlist))
  in
  Alcotest.(check int) "false hold error without CORR" 1 (holds 0.);
  Alcotest.(check int) "suppressed with CORR = skew" 0 (holds 4.);
  Alcotest.(check int) "larger CORR also fine" 0 (holds 6.)

let test_bypass_chain () =
  let ch = Circuits.bypass_chain ~stages:3 in
  Alcotest.(check int) "three controls" 3 (List.length ch.Circuits.ch_controls);
  let cases = Case_analysis.complete_exn ch.Circuits.ch_controls in
  let report = Verifier.verify ~cases ch.Circuits.ch_netlist in
  Alcotest.(check (float 0.01)) "true delay 90 ns" 90.0
    (Circuits.chain_path_ns report ch);
  Alcotest.(check int) "8 cases evaluated" 8 (List.length report.Verifier.r_cases)

let test_verifier_report_shape () =
  let c = Circuits.register_file_example () in
  let report = Verifier.verify c.Circuits.rf_netlist in
  Alcotest.(check bool) "converged" true report.Verifier.r_converged;
  Alcotest.(check bool) "not clean" false (Verifier.clean report);
  Alcotest.(check (list string)) "CS on the cross reference" [ "CS" ]
    report.Verifier.r_unasserted;
  Alcotest.(check bool) "events counted" true (report.Verifier.r_events > 0)

let test_verifier_dedups_across_cases () =
  (* The same violation found in two cases is reported once. *)
  let c = Circuits.register_file_example () in
  let cases = [ [ ("CS", Tvalue.V0) ]; [ ("CS", Tvalue.V1) ] ] in
  let report = Verifier.verify ~cases c.Circuits.rf_netlist in
  Alcotest.(check int) "still two violations" 2 (List.length report.Verifier.r_violations)

let test_multi_rate_lcm_period () =
  (* §2.2: a 30 ns instruction unit and a 15 ns execution unit verify at
     the 30 ns least common multiple; the faster clock simply has two
     pulses per verified cycle. *)
  let tb = Timebase.make ~period_ns:30.0 ~clock_unit_ns:2.5 in
  let nl = Netlist.create tb ~default_wire_delay:Delay.zero in
  (* instruction-unit clock: one pulse; execution-unit clock: two *)
  let ck_slow = Netlist.signal nl "ICK .P(0,0)10-11" in
  let ck_fast = Netlist.signal nl "ECK .P(0,0)4-5,10-11" in
  let d_slow = Netlist.signal nl "ID .S2-10.8" in
  let d_fast = Netlist.signal nl "ED .S0-3" in
  let q1 = Netlist.signal nl "IQ" and q2 = Netlist.signal nl "EQ" in
  Scald_cells.Cells.register nl ~name:"I REG" ~data:(Netlist.conn d_slow)
    ~clock:(Netlist.conn ck_slow) q1;
  Scald_cells.Cells.register nl ~name:"E REG" ~data:(Netlist.conn d_fast)
    ~clock:(Netlist.conn ck_fast) q2;
  let report = Verifier.verify nl in
  (* the fast register is clocked twice per verified cycle *)
  let fast_windows =
    Waveform.rising_windows (Eval.value report.Verifier.r_eval ck_fast)
  in
  Alcotest.(check int) "two rising edges in the LCM period" 2 (List.length fast_windows);
  (* ED .S0-3 is stable only 0..7.5 ns: the fast edges at 10 and 25 ns
     both see changing data, the slow register's window is covered *)
  let fast_violations =
    List.filter
      (fun (v : Check.t) -> v.Check.v_signal = "ED .S0-3")
      report.Verifier.r_violations
  in
  Alcotest.(check bool) "second fast edge catches unstable data" true
    (fast_violations <> []);
  let slow_violations =
    List.filter
      (fun (v : Check.t) -> v.Check.v_signal = "ID .S2-10.8")
      report.Verifier.r_violations
  in
  Alcotest.(check (list string)) "slow register clean" []
    (List.map (fun (v : Check.t) -> Format.asprintf "%a" Check.pp v) slow_violations)

let suite =
  [
    Alcotest.test_case "fig 2-5 ADR line (Figure 3-10)" `Quick test_fig_2_5_adr_line;
    Alcotest.test_case "fig 3-11 errors" `Quick test_fig_3_11_errors;
    Alcotest.test_case "fig 2-5 write enable hazard free" `Quick
      test_fig_2_5_write_enable_hazard_free;
    Alcotest.test_case "fig 2-5 size parameter" `Quick test_fig_2_5_size_parameter;
    Alcotest.test_case "fig 1-5 gated clock" `Quick test_fig_1_5;
    Alcotest.test_case "fig 3-12 arithmetic clean" `Quick test_fig_3_12_clean;
    Alcotest.test_case "fig 4-1 correlation + CORR" `Quick test_fig_4_1_false_error_and_corr;
    Alcotest.test_case "bypass chain" `Quick test_bypass_chain;
    Alcotest.test_case "verifier report shape" `Quick test_verifier_report_shape;
    Alcotest.test_case "verifier dedups across cases" `Quick test_verifier_dedups_across_cases;
    Alcotest.test_case "multi-rate LCM period" `Quick test_multi_rate_lcm_period;
  ]
