open Scald_core

let tv = Alcotest.testable Tvalue.pp Tvalue.equal

let test_parse_two_cases () =
  (* the thesis's §2.7.1 specification *)
  let cases = Case_analysis.parse_exn "CONTROL SIGNAL = 0;\nCONTROL SIGNAL = 1;\n" in
  match cases with
  | [ [ (n1, v1) ]; [ (n2, v2) ] ] ->
    Alcotest.(check string) "name" "CONTROL SIGNAL" n1;
    Alcotest.(check string) "name" "CONTROL SIGNAL" n2;
    Alcotest.check tv "case 1" Tvalue.V0 v1;
    Alcotest.check tv "case 2" Tvalue.V1 v2
  | _ -> Alcotest.fail "expected two one-signal cases"

let test_parse_multi_assignment_case () =
  let cases = Case_analysis.parse_exn "A = 0, B = 1;\nA = 1, B = 0;" in
  Alcotest.(check int) "two cases" 2 (List.length cases);
  Alcotest.(check int) "two assignments each" 2 (List.length (List.hd cases))

let test_parse_empty_and_whitespace () =
  Alcotest.(check int) "empty" 0 (List.length (Case_analysis.parse_exn ""));
  Alcotest.(check int) "blank groups" 1 (List.length (Case_analysis.parse_exn ";;A = 1;;"))

let test_parse_errors () =
  let fails s =
    match Case_analysis.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %S to fail" s
  in
  fails "A = 2;";
  fails "A;";
  fails "= 0;"

let test_parse_duplicate_assignment () =
  (* "A = 0, A = 1" within one group: last write would silently win in
     Eval.run, so the parser must reject it with the signal name. *)
  (match Case_analysis.parse "A = 0, A = 1;" with
  | Error e ->
    Alcotest.(check bool) "message names the signal" true
      (let contains hay needle =
         let nh = String.length hay and nn = String.length needle in
         let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
         go 0
       in
       contains e "duplicate" && contains e "A")
  | Ok _ -> Alcotest.fail "duplicate assignment within a case must be rejected");
  (* even with the same value twice *)
  (match Case_analysis.parse "B = 1, B = 1;" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "repeated assignment within a case must be rejected");
  (* but the same signal across two cases is the normal §2.7 idiom *)
  match Case_analysis.parse "A = 0;\nA = 1;" with
  | Ok cs -> Alcotest.(check int) "two cases" 2 (List.length cs)
  | Error e -> Alcotest.failf "cross-case reuse must parse: %s" e

let test_resolve_reports_all_unknowns () =
  let nl = Netlist.create (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25) in
  ignore (Netlist.signal nl "KNOWN .S0-8");
  match
    Case_analysis.resolve nl
      [ ("MISSING ONE", Tvalue.V0); ("KNOWN .S0-8", Tvalue.V1); ("MISSING TWO", Tvalue.V1) ]
  with
  | exception Invalid_argument msg ->
    let contains needle =
      let nh = String.length msg and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub msg i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "first unknown named" true (contains "MISSING ONE");
    Alcotest.(check bool) "second unknown named" true (contains "MISSING TWO")
  | _ -> Alcotest.fail "unknown signals should fail"

let test_complete_dedupes_names () =
  (* complete ["A"; "A"] must not emit the contradictory A=0,A=1 case *)
  let cases = Case_analysis.complete_exn [ "A"; "A" ] in
  Alcotest.(check int) "2^1 cases after dedupe" 2 (List.length cases);
  List.iter
    (fun case -> Alcotest.(check int) "one assignment per case" 1 (List.length case))
    cases

let test_complete_limit () =
  let names n = List.init n (Printf.sprintf "C%d") in
  (match Case_analysis.complete (names (Case_analysis.max_controls + 1)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "17 controls must be rejected");
  (* duplicates don't count against the limit *)
  (match Case_analysis.complete (names Case_analysis.max_controls @ [ "C0"; "C1" ]) with
  | Ok cs ->
    Alcotest.(check int) "2^16 cases" (1 lsl Case_analysis.max_controls) (List.length cs)
  | Error e -> Alcotest.failf "16 distinct controls must be accepted: %s" e);
  match Case_analysis.complete_exn (names 17) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "complete_exn must raise past the limit"

let test_complete () =
  let cases = Case_analysis.complete_exn [ "A"; "B" ] in
  Alcotest.(check int) "2^2 cases" 4 (List.length cases);
  let distinct = List.sort_uniq compare cases in
  Alcotest.(check int) "all distinct" 4 (List.length distinct)

let test_resolve () =
  let nl = Netlist.create (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25) in
  let id = Netlist.signal nl "CTL .S0-8" in
  let resolved = Case_analysis.resolve nl [ ("CTL .S0-8", Tvalue.V1) ] in
  Alcotest.(check (list (pair int (Alcotest.testable Tvalue.pp Tvalue.equal))))
    "resolved" [ (id, Tvalue.V1) ] resolved;
  match Case_analysis.resolve nl [ ("MISSING", Tvalue.V0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown signal should fail"

(* End-to-end: the Figure 2-6 circuit. *)
let test_bypass_delays () =
  let bp = Scald_cells.Circuits.bypass_example () in
  let nl = bp.Scald_cells.Circuits.bp_netlist in
  let r0 = Verifier.verify nl in
  Alcotest.(check (float 0.01)) "40 ns without cases" 40.0
    (Scald_cells.Circuits.bypass_path_ns r0 bp);
  let cases =
    Case_analysis.parse_exn
      (Printf.sprintf "%s = 0;%s = 1;" bp.Scald_cells.Circuits.bp_control
         bp.Scald_cells.Circuits.bp_control)
  in
  let r1 = Verifier.verify ~cases nl in
  Alcotest.(check (float 0.01)) "30 ns with cases" 30.0
    (Scald_cells.Circuits.bypass_path_ns r1 bp)

let suite =
  [
    Alcotest.test_case "parse two cases" `Quick test_parse_two_cases;
    Alcotest.test_case "parse multi assignment" `Quick test_parse_multi_assignment_case;
    Alcotest.test_case "parse empty" `Quick test_parse_empty_and_whitespace;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse duplicate assignment" `Quick test_parse_duplicate_assignment;
    Alcotest.test_case "resolve reports all unknowns" `Quick test_resolve_reports_all_unknowns;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "complete dedupes names" `Quick test_complete_dedupes_names;
    Alcotest.test_case "complete control limit" `Quick test_complete_limit;
    Alcotest.test_case "resolve" `Quick test_resolve;
    Alcotest.test_case "bypass delays 40 vs 30" `Quick test_bypass_delays;
  ]
