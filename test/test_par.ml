(* Domain-parallel case evaluation: the jobs:N report must be
   bit-identical to the sequential one, per-case convergence must not
   mask a diverging case, and the §2.7 warm-start must match a fresh
   evaluation of every case. *)

open Scald_core

let prop ?(count = 50) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

(* ---- Par primitives -------------------------------------------------------- *)

let test_shards () =
  let check_cover ~jobs n =
    let s = Par.shards ~jobs n in
    let covered = Array.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 s in
    Alcotest.(check int) (Printf.sprintf "covers %d items" n) n covered;
    Array.iteri
      (fun k (lo, hi) ->
        Alcotest.(check bool) "contiguous" true
          (lo <= hi && (k = 0 || snd s.(k - 1) = lo)))
      s;
    Array.iter
      (fun (lo, hi) ->
        Alcotest.(check bool) "balanced within one" true
          (hi - lo >= n / Array.length s && hi - lo <= (n / Array.length s) + 1))
      s
  in
  check_cover ~jobs:4 16;
  check_cover ~jobs:4 17;
  check_cover ~jobs:3 2;
  check_cover ~jobs:1 5;
  Alcotest.(check int) "never more shards than items" 2
    (Array.length (Par.shards ~jobs:8 2));
  Alcotest.(check int) "n = 0 still yields one block" 1
    (Array.length (Par.shards ~jobs:4 0))

let test_run () =
  Alcotest.(check (array int)) "results in index order" [| 0; 10; 20; 30 |]
    (Par.run ~jobs:4 (fun k -> k * 10));
  Alcotest.check_raises "worker exception propagates" (Failure "shard 2")
    (fun () -> ignore (Par.run ~jobs:3 (fun k ->
         if k = 2 then failwith "shard 2" else k)))

(* ---- Netlist.copy ------------------------------------------------------------ *)

let test_copy_independent () =
  let tb = Timebase.make ~period_ns:50.0 ~clock_unit_ns:5.0 in
  let nl = Netlist.create tb ~default_wire_delay:Delay.zero in
  let i = Netlist.signal nl "IN .S0-8" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl (Primitive.Buf { invert = true; delay = Delay.of_ns 1.0 2.0 })
       ~inputs:[ Netlist.conn i ] ~output:(Some q));
  let before = (Netlist.net nl q).Netlist.n_value in
  let nl2 = Netlist.copy nl in
  Alcotest.(check int) "same net count" (Netlist.n_nets nl) (Netlist.n_nets nl2);
  Alcotest.(check (option int)) "same lookup" (Netlist.find nl "Q") (Netlist.find nl2 "Q");
  let ev2 = Eval.create nl2 in
  Eval.run ev2;
  Alcotest.(check bool) "evaluating the copy leaves the original untouched" true
    (Waveform.equal before (Netlist.net nl q).Netlist.n_value);
  Alcotest.(check bool) "the copy itself was evaluated" false
    (Waveform.equal before (Netlist.net nl2 q).Netlist.n_value)

(* ---- a circuit that diverges under one case only ------------------------------- *)

(* x = OR(AND(x delayed by 0.01 ns, CTL), PULSE): with CTL = 1 the V1
   region grows 10 ps per relaxation pass, so the evaluator exceeds its
   per-run budget long before the waveform fills the 50 ns period (a
   legitimate "diverges" verdict); with CTL = 0 the AND cuts the loop
   and it settles immediately. *)
let slow_loop () =
  let tb = Timebase.make ~period_ns:50.0 ~clock_unit_ns:5.0 in
  let nl = Netlist.create tb ~default_wire_delay:Delay.zero in
  let p = Netlist.signal nl "P .P(0,0)0-2" in
  let ctl = Netlist.signal nl "CTL .S0-9" in
  let x = Netlist.signal nl "X" in
  let xd = Netlist.signal nl "XD" in
  let a = Netlist.signal nl "A" in
  ignore
    (Netlist.add nl (Primitive.Buf { invert = false; delay = Delay.of_ns 0.01 0.01 })
       ~inputs:[ Netlist.conn x ] ~output:(Some xd));
  ignore
    (Netlist.add nl
       (Primitive.Gate { fn = Primitive.And; n_inputs = 2; invert = false; delay = Delay.zero })
       ~inputs:[ Netlist.conn xd; Netlist.conn ctl ]
       ~output:(Some a));
  ignore
    (Netlist.add nl
       (Primitive.Gate { fn = Primitive.Or; n_inputs = 2; invert = false; delay = Delay.zero })
       ~inputs:[ Netlist.conn a; Netlist.conn p ]
       ~output:(Some x));
  nl

let slow_loop_cases = Case_analysis.parse_exn "CTL .S0-9 = 1;\nCTL .S0-9 = 0;\n"

let test_divergence_not_masked () =
  (* case 1 diverges, case 2 converges: before cr_converged existed the
     report took the evaluator's flag after the LAST case and reported
     the whole run as converged. *)
  let r = Verifier.verify ~cases:slow_loop_cases (slow_loop ()) in
  (match r.Verifier.r_cases with
  | [ c1; c2 ] ->
    Alcotest.(check bool) "case 1 diverged" false c1.Verifier.cr_converged;
    Alcotest.(check bool) "case 2 converged" true c2.Verifier.cr_converged
  | _ -> Alcotest.fail "expected two case results");
  Alcotest.(check bool) "divergence not masked by the later case" false
    r.Verifier.r_converged;
  Alcotest.(check bool) "No_convergence violation reported" true
    (Verifier.violations_of_kind Check.No_convergence r <> [])

let test_divergence_shown_in_pp () =
  let r = Verifier.verify ~cases:slow_loop_cases (slow_loop ()) in
  let out = Format.asprintf "%a" Verifier.pp r in
  let count_marker s =
    (* parenthesized: the header/per-case flag, not the violation
       listing's "EVALUATION DID NOT CONVERGE" line *)
    let marker = "(DID NOT CONVERGE)" in
    let rec go i acc =
      if i + String.length marker > String.length s then acc
      else if String.sub s i (String.length marker) = marker then
        go (i + String.length marker) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  (* once on the header line, once on the case 1 line, not on case 2 *)
  Alcotest.(check int) "marked on header and diverging case only" 2 (count_marker out)

(* ---- sequential/parallel report equality ----------------------------------------- *)

let case_results_equal (a : Verifier.case_result) (b : Verifier.case_result) =
  a.Verifier.cr_case = b.Verifier.cr_case
  && a.Verifier.cr_violations = b.Verifier.cr_violations
  && a.Verifier.cr_events = b.Verifier.cr_events
  && a.Verifier.cr_evaluations = b.Verifier.cr_evaluations
  && a.Verifier.cr_converged = b.Verifier.cr_converged

let reports_equal (a : Verifier.report) (b : Verifier.report) =
  a.Verifier.r_events = b.Verifier.r_events
  && a.Verifier.r_evaluations = b.Verifier.r_evaluations
  && a.Verifier.r_violations = b.Verifier.r_violations
  && a.Verifier.r_converged = b.Verifier.r_converged
  && a.Verifier.r_unasserted = b.Verifier.r_unasserted
  && a.Verifier.r_obs = b.Verifier.r_obs
  && List.length a.Verifier.r_cases = List.length b.Verifier.r_cases
  && List.for_all2 case_results_equal a.Verifier.r_cases b.Verifier.r_cases

let test_jobs_equal_on_diverging_circuit () =
  let r1 = Verifier.verify ~cases:slow_loop_cases (slow_loop ()) in
  List.iter
    (fun jobs ->
      let rn = Verifier.verify ~cases:slow_loop_cases ~jobs (slow_loop ()) in
      Alcotest.(check bool)
        (Printf.sprintf "jobs:%d report equals jobs:1 (diverging case included)" jobs)
        true (reports_equal r1 rn))
    [ 2; 4 ]

let test_jobs_clamped_and_validated () =
  let r = Verifier.verify ~cases:slow_loop_cases ~jobs:16 (slow_loop ()) in
  Alcotest.(check int) "jobs clamped to the case count" 2 r.Verifier.r_jobs;
  let r0 = Verifier.verify ~cases:slow_loop_cases ~jobs:0 (slow_loop ()) in
  Alcotest.(check bool) "jobs:0 resolves to at least one domain" true
    (r0.Verifier.r_jobs >= 1 && reports_equal r r0);
  Alcotest.check_raises "negative jobs rejected"
    (Invalid_argument "Verifier.verify: jobs must be >= 0") (fun () ->
      ignore (Verifier.verify ~jobs:(-1) (slow_loop ())))

let test_event_stream_replayed_in_case_order () =
  let stream jobs =
    let log = ref [] in
    let probe =
      {
        Verifier.pr_span = (fun _ f -> f ());
        pr_event = Some (fun ~inst_id ~net_id -> log := (inst_id, net_id) :: !log);
      }
    in
    ignore (Verifier.verify ~probe ~cases:slow_loop_cases ~jobs (slow_loop ()));
    List.rev !log
  in
  let seq = stream 1 in
  Alcotest.(check bool) "events were recorded" true (seq <> []);
  Alcotest.(check bool) "jobs:2 replays the sequential event stream" true
    (stream 2 = seq)

(* ---- random circuits ---------------------------------------------------------------- *)

type recipe = {
  rc_seed : int;
  rc_n_inputs : int;
  rc_gates : (int * int * int) list;
}

let gen_recipe =
  let open QCheck.Gen in
  let gen =
    let* rc_seed = int_range 0 10_000 in
    let* rc_n_inputs = int_range 2 4 in
    let* n_gates = int_range 2 14 in
    let* raw =
      list_repeat n_gates (triple (int_range 0 4) (int_range 0 1000) (int_range 0 1000))
    in
    return { rc_seed; rc_n_inputs; rc_gates = raw }
  in
  QCheck.make
    ~print:(fun r ->
      Printf.sprintf "seed %d, %d inputs, %d gates" r.rc_seed r.rc_n_inputs
        (List.length r.rc_gates))
    gen

let input_name i = Printf.sprintf "IN%d .S0-6" i

let build_recipe r =
  let nl =
    Netlist.create
      (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
      ~default_wire_delay:(Delay.of_ns 0.0 2.0)
  in
  let inputs = List.init r.rc_n_inputs (fun i -> Netlist.signal nl (input_name i)) in
  let nodes = ref (Array.of_list inputs) in
  List.iteri
    (fun i (fn_sel, a, b) ->
      let pool = !nodes in
      let pick x = pool.(x mod Array.length pool) in
      let fn =
        match fn_sel with
        | 0 -> Primitive.And
        | 1 -> Primitive.Or
        | 2 -> Primitive.Xor
        | _ -> Primitive.Chg
      in
      let out = Netlist.signal nl (Printf.sprintf "G%d" i) in
      ignore
        (Netlist.add nl
           (Primitive.Gate
              { fn; n_inputs = 2; invert = fn_sel = 4; delay = Delay.of_ns 1.0 3.0 })
           ~inputs:[ Netlist.conn (pick a); Netlist.conn (pick b) ]
           ~output:(Some out));
      nodes := Array.append pool [| out |])
    r.rc_gates;
  nl

(* Complete case analysis over the first two inputs: four cases, enough
   to give every shard of a jobs:2 / jobs:4 run distinct work. *)
let recipe_cases r =
  Case_analysis.complete_exn
    (List.init (min 2 r.rc_n_inputs) input_name)

let waveforms nl ev =
  Array.to_list (Netlist.nets nl)
  |> List.map (fun (n : Netlist.net) -> Eval.value ev n.Netlist.n_id)

let properties =
  [
    prop "warm-start equals a fresh evaluation of every case" gen_recipe (fun r ->
        let cases = recipe_cases r in
        let warm_nl = build_recipe r in
        let warm = Eval.create warm_nl in
        List.for_all
          (fun case ->
            Eval.run ~case:(Case_analysis.resolve warm_nl case) warm;
            let fresh_nl = build_recipe r in
            let fresh = Eval.create fresh_nl in
            Eval.run ~case:(Case_analysis.resolve fresh_nl case) fresh;
            List.for_all2 Waveform.equal (waveforms warm_nl warm)
              (waveforms fresh_nl fresh)
            && Eval.check warm = Eval.check fresh)
          cases);
    prop "verify ~jobs:N equals ~jobs:1 on random netlists" gen_recipe (fun r ->
        let cases = recipe_cases r in
        let r1 = Verifier.verify ~cases (build_recipe r) in
        List.for_all
          (fun jobs ->
            reports_equal r1 (Verifier.verify ~cases ~jobs (build_recipe r)))
          [ 2; 4 ]);
  ]

let suite =
  [
    Alcotest.test_case "shards" `Quick test_shards;
    Alcotest.test_case "run" `Quick test_run;
    Alcotest.test_case "netlist copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "divergence not masked" `Quick test_divergence_not_masked;
    Alcotest.test_case "divergence shown in pp" `Quick test_divergence_shown_in_pp;
    Alcotest.test_case "jobs equal on diverging circuit" `Quick
      test_jobs_equal_on_diverging_circuit;
    Alcotest.test_case "jobs clamped and validated" `Quick test_jobs_clamped_and_validated;
    Alcotest.test_case "event stream replayed in case order" `Quick
      test_event_stream_replayed_in_case_order;
  ]
  @ properties
