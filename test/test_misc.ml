(* Smoke and edge-case coverage for the remaining public surfaces. *)

open Scald_core

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_verifier_pp () =
  let c = Scald_cells.Circuits.register_file_example () in
  let report = Verifier.verify c.Scald_cells.Circuits.rf_netlist in
  let s = Format.asprintf "%a" Verifier.pp report in
  Alcotest.(check bool) "header" true (contains s "TIMING VERIFICATION REPORT");
  Alcotest.(check bool) "case line" true (contains s "case 1");
  Alcotest.(check bool) "cross reference" true (contains s "ASSUMED STABLE")

(* Regression: when a lint summary is attached to the report, [pp] must
   render its counts and listing, plus the evaluator queue statistics. *)
let test_verifier_pp_lint_and_obs () =
  let c = Scald_cells.Circuits.register_file_example () in
  let report =
    Verifier.verify
      ~lint:(fun _ ->
        {
          Verifier.ls_errors = 2;
          ls_warnings = 1;
          ls_infos = 0;
          ls_listing = "LINT LISTING SENTINEL";
        })
      c.Scald_cells.Circuits.rf_netlist
  in
  let s = Format.asprintf "%a" Verifier.pp report in
  Alcotest.(check bool) "lint counts rendered" true
    (contains s "lint: 2 errors, 1 warnings, 0 infos");
  Alcotest.(check bool) "lint listing rendered" true
    (contains s "LINT LISTING SENTINEL");
  Alcotest.(check bool) "queue stats rendered" true
    (contains s "queue high-water mark:")

let test_prob_pp () =
  let nl =
    Netlist.create
      (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
      ~default_wire_delay:Delay.zero
  in
  let a = Netlist.signal nl "A .S0-6" in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl
       (Primitive.Buf { invert = false; delay = Delay.of_ns 1.0 4.0 })
       ~inputs:[ Netlist.conn a ] ~output:(Some q));
  ignore
    (Netlist.add nl
       (Primitive.Setup_hold_check { setup = 0; hold = 0 })
       ~inputs:[ Netlist.conn q; Netlist.conn a ]
       ~output:None);
  let r = Prob_analysis.analyze nl in
  let s = Format.asprintf "%a" Prob_analysis.pp r in
  Alcotest.(check bool) "header with rho" true (contains s "correlation 0.00");
  Alcotest.(check bool) "mean +- sigma" true (contains s "+-")

let test_modular_pp () =
  let section name =
    let nl = Netlist.create (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25) in
    ignore (Netlist.signal nl "IFACE .S0-6");
    { Modular.s_name = name; s_netlist = nl }
  in
  let r = Modular.verify [ section "a"; section "b" ] in
  let s = Format.asprintf "%a" Modular.pp r in
  Alcotest.(check bool) "sections listed" true (contains s "section a");
  Alcotest.(check bool) "verdict" true (contains s "free of timing errors")

let test_wire_rule_pp () =
  let r = Wire_rule.loaded ~base:(Delay.of_ns 0.0 1.0) ~per_load:(Delay.of_ns 0.1 0.5) in
  Alcotest.(check string) "render" "0.0/1.0 + 0.1/0.5 per extra load"
    (Format.asprintf "%a" Wire_rule.pp r)

let test_corr_advice_pp () =
  let fb = Scald_cells.Circuits.correlation_example ~corr_delay_ns:0. in
  match Path_analysis.Corr.advise fb.Scald_cells.Circuits.fb_netlist with
  | [ a ] ->
    let s = Format.asprintf "%a" Path_analysis.Corr.pp_advice a in
    Alcotest.(check bool) "mentions CORR" true (contains s "CORR");
    Alcotest.(check bool) "mentions the amount" true (contains s "2.8")
  | _ -> Alcotest.fail "expected one advice"

let test_vcd_idents_unique () =
  (* identifier codes must stay distinct past the 94-character base *)
  let nl =
    Netlist.create (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
  in
  for i = 0 to 199 do
    ignore (Netlist.signal nl (Printf.sprintf "N%d .S0-6" i))
  done;
  let ev = Eval.create nl in
  Eval.run ev;
  let s = Vcd.to_string ev in
  (* every declaration line is distinct *)
  let decls =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.length l > 4 && String.sub l 0 4 = "$var")
  in
  Alcotest.(check int) "200 declarations" 200 (List.length decls);
  Alcotest.(check int) "all distinct" 200 (List.length (List.sort_uniq compare decls))

let test_diagram_ruler () =
  let c = Scald_cells.Circuits.register_file_example () in
  let report = Verifier.verify c.Scald_cells.Circuits.rf_netlist in
  let s = Format.asprintf "%a" (fun ppf -> Timing_diagram.pp ~columns:64 ppf)
      report.Verifier.r_eval in
  (* the ruler row carries ns labels *)
  Alcotest.(check bool) "zero label" true (contains s "0");
  Alcotest.(check bool) "a mid-cycle label" true (contains s "25")

let test_slack_critical_filter () =
  let c = Scald_cells.Circuits.register_file_example () in
  let report = Verifier.verify c.Scald_cells.Circuits.rf_netlist in
  let ev = report.Verifier.r_eval in
  let negative = Slack.critical ev ~below_ns:0.0 in
  Alcotest.(check int) "only the violations" 2 (List.length negative);
  let all = Slack.compute ev in
  let everything = Slack.critical ev ~below_ns:1000.0 in
  Alcotest.(check int) "wide bound keeps all" (List.length all) (List.length everything)

let test_netgen_cli_shape () =
  (* the generator's SDL is what the CLI writes: sanity-check its head *)
  let d = Netgen.generate (Netgen.scaled ~chips:120 ()) in
  let sdl = Netgen.to_sdl d in
  Alcotest.(check bool) "period statement" true (contains sdl "PERIOD 50.0;");
  Alcotest.(check bool) "macro library" true (contains sdl "MACRO REG CHIP;");
  Alcotest.(check bool) "ground source" true (contains sdl "ZERO () -> GND;")

let test_eval_input_waveform_exposed () =
  (* the reporting hook sees the same post-wire post-complement data the
     checker used *)
  let nl =
    Netlist.create
      (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
      ~default_wire_delay:(Delay.of_ns 0.0 2.0)
  in
  let d = Netlist.signal nl "D .S0-6" in
  let ck = Netlist.signal nl "CK .P2-3" in
  let chk =
    Netlist.add nl
      (Primitive.Setup_hold_check { setup = 2_500; hold = 1_500 })
      ~inputs:[ Netlist.conn d; Netlist.conn ck ]
      ~output:None
  in
  let ev = Eval.create nl in
  Eval.run ev;
  let seen = Eval.input_waveform ev chk 0 in
  Alcotest.(check (pair int int)) "wire skew included" (0, 2_000) (Waveform.skew seen)

let suite =
  [
    Alcotest.test_case "verifier pp" `Quick test_verifier_pp;
    Alcotest.test_case "verifier pp lint+obs" `Quick test_verifier_pp_lint_and_obs;
    Alcotest.test_case "prob pp" `Quick test_prob_pp;
    Alcotest.test_case "modular pp" `Quick test_modular_pp;
    Alcotest.test_case "wire rule pp" `Quick test_wire_rule_pp;
    Alcotest.test_case "corr advice pp" `Quick test_corr_advice_pp;
    Alcotest.test_case "vcd idents unique" `Quick test_vcd_idents_unique;
    Alcotest.test_case "diagram ruler" `Quick test_diagram_ruler;
    Alcotest.test_case "slack critical filter" `Quick test_slack_critical_filter;
    Alcotest.test_case "netgen cli shape" `Quick test_netgen_cli_shape;
    Alcotest.test_case "eval input waveform" `Quick test_eval_input_waveform_exposed;
  ]
