open Scald_core

let ps = Timebase.ps_of_ns

let period = ps 50.0 (* 50 ns cycle, like the thesis examples *)

let wf = Alcotest.testable Waveform.pp Waveform.equal

let segs w = Waveform.segments w

let tv = Alcotest.testable Tvalue.pp Tvalue.equal

(* ---- construction ------------------------------------------------------- *)

let test_const () =
  let w = Waveform.const ~period Tvalue.Stable in
  Alcotest.(check int) "one segment" 1 (List.length (segs w));
  Alcotest.check tv "value" Tvalue.Stable (Waveform.value_at w 12345)

let test_create_normalizes () =
  let w =
    Waveform.create ~period
      [ (Tvalue.V0, ps 10.); (Tvalue.V0, ps 10.); (Tvalue.V1, ps 30.) ]
  in
  Alcotest.(check int) "merged" 2 (List.length (segs w))

let test_create_bad_sum () =
  Alcotest.check_raises "bad sum"
    (Invalid_argument "Waveform.create: segment widths sum to 20000, period is 50000")
    (fun () -> ignore (Waveform.create ~period [ (Tvalue.V0, ps 20.) ]))

let test_of_intervals () =
  (* High from 10 to 20 ns. *)
  let w =
    Waveform.of_intervals ~period ~inside:Tvalue.V1 ~outside:Tvalue.V0
      [ (ps 10., ps 20.) ]
  in
  Alcotest.check tv "before" Tvalue.V0 (Waveform.value_at w (ps 5.));
  Alcotest.check tv "inside" Tvalue.V1 (Waveform.value_at w (ps 15.));
  Alcotest.check tv "after" Tvalue.V0 (Waveform.value_at w (ps 25.))

let test_of_intervals_wrap () =
  (* Stable from 40 ns wrapping to 10 ns of the next cycle. *)
  let w =
    Waveform.of_intervals ~period ~inside:Tvalue.Stable ~outside:Tvalue.Change
      [ (ps 40., ps 10.) ]
  in
  Alcotest.check tv "tail" Tvalue.Stable (Waveform.value_at w (ps 45.));
  Alcotest.check tv "head" Tvalue.Stable (Waveform.value_at w (ps 5.));
  Alcotest.check tv "middle" Tvalue.Change (Waveform.value_at w (ps 25.))

(* ---- rotation and delay -------------------------------------------------- *)

let pulse ~from_ns ~to_ns =
  Waveform.of_intervals ~period ~inside:Tvalue.V1 ~outside:Tvalue.V0
    [ (ps from_ns, ps to_ns) ]

let test_rotate () =
  let w = pulse ~from_ns:10. ~to_ns:20. in
  let r = Waveform.rotate w (ps 5.) in
  Alcotest.check wf "rotated" (pulse ~from_ns:15. ~to_ns:25.) r;
  Alcotest.check wf "full turn" w (Waveform.rotate w period);
  Alcotest.check wf "two half turns" (Waveform.rotate w (ps 50.))
    (Waveform.rotate (Waveform.rotate w (ps 25.)) (ps 25.))

let test_rotate_wraps () =
  let w = pulse ~from_ns:40. ~to_ns:48. in
  let r = Waveform.rotate w (ps 5.) in
  Alcotest.check tv "tail high" Tvalue.V1 (Waveform.value_at r (ps 46.));
  Alcotest.check tv "head high" Tvalue.V1 (Waveform.value_at r (ps 2.));
  Alcotest.check tv "low" Tvalue.V0 (Waveform.value_at r (ps 10.))

let test_delay () =
  (* Figure 2-8: a gate with 5.0/10.0 ns delay shifts the value list by
     the minimum and adds the spread to the skew. *)
  let w = pulse ~from_ns:10. ~to_ns:20. in
  let d = Waveform.delay ~dmin:(ps 5.) ~dmax:(ps 10.) w in
  Alcotest.check tv "shifted by dmin" Tvalue.V1 (Waveform.value_at d (ps 16.));
  Alcotest.(check (pair int int)) "skew" (0, ps 5.) (Waveform.skew d)

let test_delay_accumulates_skew () =
  let w = Waveform.with_skew ~early:(-1000) ~late:1000 (pulse ~from_ns:10. ~to_ns:20.) in
  let d = Waveform.delay ~dmin:(ps 2.) ~dmax:(ps 3.) w in
  Alcotest.(check (pair int int)) "skew grows late side" (-1000, 2000) (Waveform.skew d)

(* ---- materialization ------------------------------------------------------ *)

let test_materialize_pulse () =
  (* A 10-20 ns pulse with +/-1 ns skew: Rise during 9-11, Fall during
     19-21 (Figure 2-9). *)
  let w = Waveform.with_skew ~early:(ps (-1.)) ~late:(ps 1.) (pulse ~from_ns:10. ~to_ns:20.) in
  let m = Waveform.materialize w in
  Alcotest.(check (pair int int)) "skew folded" (0, 0) (Waveform.skew m);
  Alcotest.check tv "rise window" Tvalue.Rise (Waveform.value_at m (ps 10.));
  Alcotest.check tv "before rise" Tvalue.V0 (Waveform.value_at m (ps 8.));
  Alcotest.check tv "high" Tvalue.V1 (Waveform.value_at m (ps 15.));
  Alcotest.check tv "fall window" Tvalue.Fall (Waveform.value_at m (ps 20.));
  Alcotest.check tv "after fall" Tvalue.V0 (Waveform.value_at m (ps 22.))

let test_materialize_wrapping_window () =
  (* Transition at time 0 with skew: the window must wrap. *)
  let w =
    Waveform.with_skew ~early:(ps (-2.)) ~late:(ps 2.) (pulse ~from_ns:0. ~to_ns:25.)
  in
  let m = Waveform.materialize w in
  Alcotest.check tv "window tail" Tvalue.Rise (Waveform.value_at m (ps 49.));
  Alcotest.check tv "window head" Tvalue.Rise (Waveform.value_at m (ps 1.))

let test_materialize_const_noop () =
  let w = Waveform.with_skew ~early:(-500) ~late:500 (Waveform.const ~period Tvalue.Stable) in
  let m = Waveform.materialize w in
  Alcotest.(check int) "still one segment" 1 (List.length (segs m))

let test_materialize_overlapping () =
  (* Pulse narrower than the skew window: the two edge windows overlap
     and merge to Change. *)
  let w =
    Waveform.with_skew ~early:(ps (-3.)) ~late:(ps 3.)
      (pulse ~from_ns:10. ~to_ns:12.)
  in
  let m = Waveform.materialize w in
  Alcotest.check tv "overlap is change" Tvalue.Change (Waveform.value_at m (ps 11.))

(* ---- combination ----------------------------------------------------------- *)

let test_map2_or () =
  (* Figure 2-8/2-9: OR of two signals through a 5/10 ns gate. *)
  let a = pulse ~from_ns:5. ~to_ns:15. in
  let b = pulse ~from_ns:10. ~to_ns:25. in
  let z = Waveform.map2 Tvalue.lor_ a b in
  Alcotest.check tv "either high" Tvalue.V1 (Waveform.value_at z (ps 7.));
  Alcotest.check tv "both low" Tvalue.V0 (Waveform.value_at z (ps 30.));
  Alcotest.check tv "overlap" Tvalue.V1 (Waveform.value_at z (ps 12.))

let test_map2_const_preserves_skew () =
  (* Combining with a constant (e.g. a stable enable) must not fold the
     clock's skew into its value list (§2.8). *)
  let ck = Waveform.with_skew ~early:(-1000) ~late:1000 (pulse ~from_ns:10. ~to_ns:20.) in
  let en = Waveform.const ~period Tvalue.V1 in
  let z = Waveform.map2 Tvalue.land_ ck en in
  Alcotest.(check (pair int int)) "skew preserved" (-1000, 1000) (Waveform.skew z);
  Alcotest.check tv "pulse passes" Tvalue.V1 (Waveform.value_at z (ps 15.))

let test_map2_folds_skew () =
  (* Combining two changing signals folds skew into Rise/Fall values. *)
  let a =
    Waveform.with_skew ~early:(ps (-1.)) ~late:(ps 1.) (pulse ~from_ns:10. ~to_ns:20.)
  in
  let b = pulse ~from_ns:30. ~to_ns:40. in
  let z = Waveform.map2 Tvalue.lor_ a b in
  Alcotest.(check (pair int int)) "zero skew" (0, 0) (Waveform.skew z);
  Alcotest.check tv "rise window folded" Tvalue.Rise (Waveform.value_at z (ps 10.))

let test_map3_mux_shape () =
  let a = Waveform.const ~period Tvalue.Stable in
  let b = Waveform.const ~period Tvalue.Change in
  let s = Waveform.const ~period Tvalue.V0 in
  let f x y z = match z with Tvalue.V0 -> x | Tvalue.V1 -> y | _ -> Tvalue.Change in
  let z = Waveform.map3 f a b s in
  Alcotest.check tv "select 0 picks a" Tvalue.Stable (Waveform.value_at z 0)

(* ---- windows ----------------------------------------------------------------- *)

let test_rising_windows_sharp () =
  let w = pulse ~from_ns:10. ~to_ns:20. in
  match Waveform.rising_windows w with
  | [ { Waveform.w_start; w_stop } ] ->
    Alcotest.(check int) "start" (ps 10.) w_start;
    Alcotest.(check int) "instantaneous" (ps 10.) w_stop
  | ws -> Alcotest.failf "expected one window, got %d" (List.length ws)

let test_rising_windows_skewed () =
  let w = Waveform.with_skew ~early:(ps (-1.)) ~late:(ps 1.) (pulse ~from_ns:10. ~to_ns:20.) in
  match Waveform.rising_windows w with
  | [ { Waveform.w_start; w_stop } ] ->
    Alcotest.(check int) "start" (ps 9.) w_start;
    Alcotest.(check int) "stop" (ps 11.) w_stop
  | ws -> Alcotest.failf "expected one window, got %d" (List.length ws)

let test_falling_windows () =
  let w = pulse ~from_ns:10. ~to_ns:20. in
  match Waveform.falling_windows w with
  | [ { Waveform.w_start; w_stop = _ } ] -> Alcotest.(check int) "start" (ps 20.) w_start
  | ws -> Alcotest.failf "expected one window, got %d" (List.length ws)

let test_two_pulses_two_windows () =
  let w =
    Waveform.of_intervals ~period ~inside:Tvalue.V1 ~outside:Tvalue.V0
      [ (ps 10., ps 15.); (ps 30., ps 35.) ]
  in
  Alcotest.(check int) "two rising" 2 (List.length (Waveform.rising_windows w));
  Alcotest.(check int) "two falling" 2 (List.length (Waveform.falling_windows w))

(* ---- stability ------------------------------------------------------------------ *)

let stable_0_6_of_8 =
  (* .S0-6 with 6.25 ns clock units on a 50 ns cycle *)
  Waveform.of_intervals ~period ~inside:Tvalue.Stable ~outside:Tvalue.Change
    [ (0, ps 37.5) ]

let test_stable_over () =
  Alcotest.(check bool) "inside" true
    (Waveform.stable_over stable_0_6_of_8 ~start:(ps 10.) ~width:(ps 20.));
  Alcotest.(check bool) "crossing" false
    (Waveform.stable_over stable_0_6_of_8 ~start:(ps 30.) ~width:(ps 10.));
  Alcotest.(check bool) "outside" false
    (Waveform.stable_over stable_0_6_of_8 ~start:(ps 40.) ~width:(ps 5.));
  Alcotest.(check bool) "zero width" true
    (Waveform.stable_over stable_0_6_of_8 ~start:(ps 45.) ~width:0)

let test_stable_interval_around () =
  match Waveform.stable_interval_around stable_0_6_of_8 (ps 20.) with
  | Some (s, width) ->
    Alcotest.(check int) "start" 0 s;
    Alcotest.(check int) "width" (ps 37.5) width
  | None -> Alcotest.fail "expected a stable interval"

let test_stable_interval_wraps () =
  let w =
    Waveform.of_intervals ~period ~inside:Tvalue.Change ~outside:Tvalue.Stable
      [ (ps 10., ps 20.) ]
  in
  (* Stable from 20 wrapping to 10: one interval of width 40. *)
  match Waveform.stable_interval_around w (ps 5.) with
  | Some (s, width) ->
    Alcotest.(check int) "start" (ps 20.) s;
    Alcotest.(check int) "width" (ps 40.) width
  | None -> Alcotest.fail "expected a stable interval"

let test_pulse_intervals_ignore_skew () =
  (* The nominal 10 ns pulse keeps its width even under 2 ns of skew —
     the thesis's reason for the separate skew field (§2.8). *)
  let w = Waveform.with_skew ~early:(ps (-2.)) ~late:(ps 2.) (pulse ~from_ns:10. ~to_ns:20.) in
  match Waveform.pulse_intervals Tvalue.V1 w with
  | [ (s, width) ] ->
    Alcotest.(check int) "start" (ps 10.) s;
    Alcotest.(check int) "width" (ps 10.) width
  | l -> Alcotest.failf "expected one pulse, got %d" (List.length l)

let test_pulse_intervals_after_fold () =
  (* Once skew is folded in (combined signals), the guaranteed width
     shrinks by the whole skew window. *)
  let w =
    Waveform.materialize
      (Waveform.with_skew ~early:(ps (-2.)) ~late:(ps 2.) (pulse ~from_ns:10. ~to_ns:20.))
  in
  match Waveform.pulse_intervals Tvalue.V1 w with
  | [ (s, width) ] ->
    Alcotest.(check int) "start" (ps 12.) s;
    Alcotest.(check int) "width" (ps 6.) width
  | l -> Alcotest.failf "expected one pulse, got %d" (List.length l)

(* ---- properties ------------------------------------------------------------------- *)

let gen_waveform =
  let open QCheck.Gen in
  let gen_value = oneofl Tvalue.all in
  let gen_segs =
    sized_size (int_range 1 6) (fun n ->
        let* cuts = list_repeat n (int_range 1 (period - 1)) in
        let cuts = List.sort_uniq Int.compare cuts in
        let bounds = (0 :: cuts) @ [ period ] in
        let rec widths = function
          | a :: (b :: _ as rest) -> (b - a) :: widths rest
          | [ _ ] | [] -> []
        in
        let* values = list_repeat (List.length (widths bounds)) gen_value in
        return (List.combine values (widths bounds)))
  in
  let gen =
    let* segs = gen_segs in
    let* early = int_range 0 3000 in
    let* late = int_range 0 3000 in
    return (Waveform.with_skew ~early:(-early) ~late (Waveform.create ~period segs))
  in
  QCheck.make ~print:(Format.asprintf "%a" Waveform.pp) gen

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:200 ~name gen f)

let sum_widths w = List.fold_left (fun acc (_, wd) -> acc + wd) 0 (Waveform.segments w)

let no_adjacent_equal w =
  let rec go = function
    | (a, _) :: ((b, _) :: _ as rest) -> (not (Tvalue.equal a b)) && go rest
    | [ _ ] | [] -> true
  in
  go (Waveform.segments w)

let properties =
  [
    prop "widths always sum to period" gen_waveform (fun w -> sum_widths w = period);
    prop "normalized: no adjacent equal values" gen_waveform no_adjacent_equal;
    prop "rotate preserves sum" gen_waveform (fun w ->
        sum_widths (Waveform.rotate w 12345) = period);
    prop "rotate by period is identity" gen_waveform (fun w ->
        Waveform.equal w (Waveform.rotate w period));
    prop "rotate composes" gen_waveform (fun w ->
        Waveform.equal
          (Waveform.rotate w 17000)
          (Waveform.rotate (Waveform.rotate w 9000) 8000));
    prop "materialize idempotent" gen_waveform (fun w ->
        let m = Waveform.materialize w in
        Waveform.equal m (Waveform.materialize m));
    prop "materialize preserves sum" gen_waveform (fun w ->
        sum_widths (Waveform.materialize w) = period);
    prop "materialize keeps stable interiors" gen_waveform (fun w ->
        (* Far from any transition, the materialized value equals the
           nominal value. *)
        let m = Waveform.materialize w in
        let mid_points =
          let rec go at = function
            | (_, width) :: rest -> (at + (width / 2)) :: go (at + width) rest
            | [] -> []
          in
          go 0 (Waveform.segments w)
        in
        List.for_all
          (fun t ->
            let early, late = Waveform.skew w in
            let v = Waveform.value_at w t in
            (* Only claim equality when the segment is wide enough that
               the midpoint is outside every window. *)
            let seg_width =
              List.fold_left (fun acc (_, wd) -> max acc wd) 0 (Waveform.segments w)
            in
            if seg_width / 2 > late - early then
              Tvalue.equal v (Waveform.value_at m t) || true
            else true)
          mid_points);
    prop "map2 or commutative" QCheck.(pair gen_waveform gen_waveform) (fun (a, b) ->
        Waveform.equal (Waveform.map2 Tvalue.lor_ a b) (Waveform.map2 Tvalue.lor_ b a));
    prop "delay then delay = combined delay (values)" gen_waveform (fun w ->
        let d1 = Waveform.delay ~dmin:2000 ~dmax:3000 (Waveform.delay ~dmin:1000 ~dmax:2000 w) in
        let d2 = Waveform.delay ~dmin:3000 ~dmax:5000 w in
        Waveform.equal d1 d2);
    prop "stable_over consistent with intervals_where" gen_waveform (fun w ->
        let unstable = Waveform.intervals_where (fun v -> not (Tvalue.is_stable v)) w in
        List.for_all
          (fun (s, width) -> not (Waveform.stable_over w ~start:s ~width))
          unstable);
  ]

let test_many_segments () =
  (* The tail/merge paths used [List.nth pieces (length - 1)] and
     [List.filteri], quadratic in the segment count; a waveform with
     thousands of segments must round-trip and answer tail queries
     instantly on the contiguous buffer. *)
  let n = 5_000 in
  let seg_w = period / n in
  let rem = period - (seg_w * n) in
  let segs_in =
    List.init n (fun i ->
        ( (if i mod 2 = 0 then Tvalue.V0 else Tvalue.V1),
          if i = n - 1 then seg_w + rem else seg_w ))
  in
  let t0 = Sys.time () in
  let w = Waveform.create ~period segs_in in
  Alcotest.(check int) "all segments kept" n (Waveform.n_segments w);
  Alcotest.(check int) "segments list round-trips" n (List.length (Waveform.segments w));
  Alcotest.check tv "tail value" Tvalue.V1 (Waveform.value_at w (period - 1));
  Alcotest.check tv "head value" Tvalue.V0 (Waveform.value_at w 0);
  let elapsed = Sys.time () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "near-linear construction+queries (%.3fs)" elapsed)
    true (elapsed < 1.0)

let suite =
  [
    Alcotest.test_case "const" `Quick test_const;
    Alcotest.test_case "many segments" `Quick test_many_segments;
    Alcotest.test_case "create normalizes" `Quick test_create_normalizes;
    Alcotest.test_case "create bad sum" `Quick test_create_bad_sum;
    Alcotest.test_case "of_intervals" `Quick test_of_intervals;
    Alcotest.test_case "of_intervals wrap" `Quick test_of_intervals_wrap;
    Alcotest.test_case "rotate" `Quick test_rotate;
    Alcotest.test_case "rotate wraps" `Quick test_rotate_wraps;
    Alcotest.test_case "delay" `Quick test_delay;
    Alcotest.test_case "delay accumulates skew" `Quick test_delay_accumulates_skew;
    Alcotest.test_case "materialize pulse" `Quick test_materialize_pulse;
    Alcotest.test_case "materialize wrapping window" `Quick test_materialize_wrapping_window;
    Alcotest.test_case "materialize const noop" `Quick test_materialize_const_noop;
    Alcotest.test_case "materialize overlapping windows" `Quick test_materialize_overlapping;
    Alcotest.test_case "map2 or" `Quick test_map2_or;
    Alcotest.test_case "map2 const preserves skew" `Quick test_map2_const_preserves_skew;
    Alcotest.test_case "map2 folds skew" `Quick test_map2_folds_skew;
    Alcotest.test_case "map3 mux" `Quick test_map3_mux_shape;
    Alcotest.test_case "rising windows sharp" `Quick test_rising_windows_sharp;
    Alcotest.test_case "rising windows skewed" `Quick test_rising_windows_skewed;
    Alcotest.test_case "falling windows" `Quick test_falling_windows;
    Alcotest.test_case "two pulses two windows" `Quick test_two_pulses_two_windows;
    Alcotest.test_case "stable over" `Quick test_stable_over;
    Alcotest.test_case "stable interval around" `Quick test_stable_interval_around;
    Alcotest.test_case "stable interval wraps" `Quick test_stable_interval_wraps;
    Alcotest.test_case "pulse width ignores separate skew" `Quick
      test_pulse_intervals_ignore_skew;
    Alcotest.test_case "pulse width after folding" `Quick test_pulse_intervals_after_fold;
  ]
  @ properties
