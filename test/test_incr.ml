(* The incremental verification service (doc/SERVICE.md): the JSON
   codec, the content-addressed fingerprints, the edit vocabulary, the
   session delta engine — whose re-verify must be bit-identical in
   verdicts to a cold run of the edited design — the session store's
   warm/adopt/cold decisions, and the serve protocol loop. *)

open Scald_core
open Scald_incr

let prop ?(count = 50) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let assertion spec =
  match Assertion.parse spec with Ok a -> a | Error e -> Alcotest.fail e

(* ---- Json ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd\tz");
        ("n", Json.Num 3.5);
        ("i", Json.of_int 42);
        ("neg", Json.Num (-0.25));
        ("t", Json.Bool true);
        ("z", Json.Null);
        ("l", Json.List [ Json.Num 1.0; Json.Str ""; Json.Obj [] ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error e -> Alcotest.fail e

let test_json_parse () =
  (match Json.parse {| {"a": [1, 2.5, -3e1], "b": "\u0041\n", "c": null} |} with
  | Error e -> Alcotest.fail e
  | Ok v ->
    Alcotest.(check (option string)) "unicode escape" (Some "A\n")
      (Option.bind (Json.member "b" v) Json.str);
    (match Option.bind (Json.member "a" v) Json.list with
    | Some [ Json.Num a; Json.Num b; Json.Num c ] ->
      Alcotest.(check bool) "numbers" true (a = 1.0 && b = 2.5 && c = -30.0)
    | _ -> Alcotest.fail "expected a 3-number array");
    Alcotest.(check (option int)) "int accessor" (Some 1)
      (Option.bind (Json.member "a" v) (fun l ->
           Option.bind (Json.list l) (fun l -> Json.int (List.hd l)))));
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Json.parse "not json"));
  Alcotest.(check bool) "trailing junk rejected" true
    (Result.is_error (Json.parse "{} x"));
  Alcotest.(check bool) "unterminated string rejected" true
    (Result.is_error (Json.parse "\"abc"))

let test_json_int_printing () =
  Alcotest.(check string) "integral floats print as integers" "{\"n\":7}"
    (Json.to_string (Json.Obj [ ("n", Json.Num 7.0) ]));
  Alcotest.(check string) "fractional floats keep their fraction" "{\"n\":7.25}"
    (Json.to_string (Json.Obj [ ("n", Json.Num 7.25) ]))

let test_json_edge_cases () =
  (match Json.parse {| "a\"b\\c\/d" |} with
  | Ok (Json.Str s) -> Alcotest.(check string) "escape soup" "a\"b\\c/d" s
  | _ -> Alcotest.fail "escaped string");
  List.iter
    (fun (src, expect) ->
      match Json.parse src with
      | Ok (Json.Num n) -> Alcotest.(check (float 1e-12)) src expect n
      | _ -> Alcotest.failf "number %s" src)
    [ ("1e3", 1000.0); ("1.5e-2", 0.015); ("-3E+2", -300.0); ("0.0625", 0.0625) ];
  (* deep nesting parses and round-trips without blowing the stack *)
  let depth = 200 in
  let deep =
    String.concat "" (List.init depth (fun _ -> "["))
    ^ "7"
    ^ String.concat "" (List.init depth (fun _ -> "]"))
  in
  (match Json.parse deep with
  | Ok v -> Alcotest.(check string) "deep round-trip" deep (Json.to_string v)
  | Error e -> Alcotest.failf "deep nesting rejected: %s" e);
  (* truncation anywhere is an error, never an exception *)
  List.iter
    (fun src ->
      Alcotest.(check bool)
        (Printf.sprintf "truncated %S rejected" src)
        true
        (Result.is_error (Json.parse src)))
    [ "{\"a\":"; "[1,"; "\"ab"; "{\"a\""; "tru"; "nul"; "1e"; "-"; "[\"x\", "; "{" ]

let gen_json =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        (* integral Num only: to_string prints integral floats as
           integers, so fractional values would round-trip through a
           different (equal-value) representation *)
        map (fun i -> Json.Num (float_of_int i)) (int_range (-1000000) 1000000);
        map (fun s -> Json.Str s) (string_size ~gen:printable (int_range 0 8));
      ]
  in
  let rec node depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          ( 1,
            map (fun l -> Json.List l) (list_size (int_range 0 4) (node (depth - 1)))
          );
          ( 1,
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_range 0 4)
                 (pair (string_size ~gen:printable (int_range 0 6)) (node (depth - 1))))
          );
        ]
  in
  QCheck.make ~print:Json.to_string (node 3)

let json_roundtrip_property =
  prop ~count:200 "printed JSON parses back to the same value" gen_json (fun j ->
      Json.parse (Json.to_string j) = Ok j)

(* ---- a small deterministic circuit ----------------------------------------- *)

(* IN0/IN1 -> U0 (AND) -> U1 (BUF) -> DATA, registered by U2 on CK with
   a setup/hold checker U3: upstream delay edits move DATA's settling
   time and flip the setup verdict, exercising violation (un)caching. *)
let build_circuit ?(u0_max = 3.0) ?(data_wire = None) () =
  let nl =
    Netlist.create
      (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
      ~default_wire_delay:(Delay.of_ns 0.0 1.0)
  in
  let in0 = Netlist.signal nl "IN0 .S0-6" in
  let in1 = Netlist.signal nl "IN1 .S0-6" in
  let ck = Netlist.signal nl "CK .P2-3" in
  let g0 = Netlist.signal nl "G0" in
  let data = Netlist.signal nl "DATA" in
  let q = Netlist.signal nl "Q" in
  (match data_wire with
  | None -> ()
  | Some d -> Netlist.set_wire_delay_opt nl data (Some d));
  ignore
    (Netlist.add nl ~name:"U0"
       (Primitive.Gate
          { fn = Primitive.And; n_inputs = 2; invert = false; delay = Delay.of_ns 1.0 u0_max })
       ~inputs:[ Netlist.conn in0; Netlist.conn in1 ]
       ~output:(Some g0));
  ignore
    (Netlist.add nl ~name:"U1"
       (Primitive.Buf { invert = false; delay = Delay.of_ns 1.0 2.0 })
       ~inputs:[ Netlist.conn g0 ] ~output:(Some data));
  ignore
    (Netlist.add nl ~name:"U2"
       (Primitive.Reg { delay = Delay.of_ns 1.5 4.5; has_set_reset = false })
       ~inputs:[ Netlist.conn data; Netlist.conn ck ]
       ~output:(Some q));
  ignore
    (Netlist.add nl ~name:"U3"
       (Primitive.Setup_hold_check
          { setup = Timebase.ps_of_ns 8.0; hold = Timebase.ps_of_ns 1.0 })
       ~inputs:[ Netlist.conn data; Netlist.conn ck ]
       ~output:None);
  nl

let verdicts_equal (a : Verifier.report) (b : Verifier.report) =
  a.Verifier.r_violations = b.Verifier.r_violations
  && a.Verifier.r_converged = b.Verifier.r_converged
  && a.Verifier.r_unasserted = b.Verifier.r_unasserted
  && List.length a.Verifier.r_cases = List.length b.Verifier.r_cases
  && List.for_all2
       (fun (x : Verifier.case_result) (y : Verifier.case_result) ->
         x.Verifier.cr_case = y.Verifier.cr_case
         && x.Verifier.cr_violations = y.Verifier.cr_violations
         && x.Verifier.cr_converged = y.Verifier.cr_converged)
       a.Verifier.r_cases b.Verifier.r_cases

let cold_listing (r : Verifier.report) =
  Format.asprintf "@.%a@." Report.pp_violations r.Verifier.r_violations

(* ---- Fingerprint ------------------------------------------------------------ *)

let test_fingerprint_digest () =
  let a = build_circuit () and b = build_circuit () in
  Alcotest.(check string) "digest is deterministic" (Fingerprint.digest a)
    (Fingerprint.digest b);
  let c = build_circuit ~u0_max:3.5 () in
  Alcotest.(check bool) "parameter change moves the digest" true
    (Fingerprint.digest a <> Fingerprint.digest c);
  Alcotest.(check string) "but not the skeleton" (Fingerprint.skeleton a)
    (Fingerprint.skeleton c)

let test_fingerprint_cones () =
  let a = build_circuit () in
  let b = build_circuit ~data_wire:(Some (Delay.of_ns 0.5 9.0)) () in
  let fa = Fingerprint.cones a and fb = Fingerprint.cones b in
  let net name nl = Option.get (Netlist.find nl name) in
  Alcotest.(check int) "one fingerprint per net" (Netlist.n_nets a) (Array.length fa);
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " upstream of the edit: cone unchanged") true
        (fa.(net s a) = fb.(net s b)))
    [ "IN0 .S0-6"; "IN1 .S0-6"; "CK .P2-3"; "G0" ];
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " at/below the edit: cone changed") true
        (fa.(net s a) <> fb.(net s b)))
    [ "DATA"; "Q" ];
  Alcotest.(check int) "diff_count sees exactly the changed cones" 2
    (Fingerprint.diff_count fa fb)

(* ---- Edit ------------------------------------------------------------------- *)

let test_edit_apply_and_diff () =
  let base = build_circuit () in
  let edited = build_circuit ~u0_max:3.5 ~data_wire:(Some (Delay.of_ns 0.5 9.0)) () in
  Netlist.set_assertion edited
    (Option.get (Netlist.find edited "DATA"))
    (Some (assertion "S2-6"));
  let edits = Edit.diff base edited in
  Alcotest.(check int) "diff finds the three edits" 3 (List.length edits);
  List.iter (fun e -> ignore (Edit.apply base e)) edits;
  Alcotest.(check string) "replaying the diff reaches the edited digest"
    (Fingerprint.digest edited) (Fingerprint.digest base)

let test_edit_check () =
  let nl = build_circuit () in
  let bad e msg =
    match Edit.check nl e with
    | Ok () -> Alcotest.fail ("accepted: " ^ msg)
    | Error _ -> ()
  in
  Alcotest.(check bool) "valid edit accepted" true
    (Edit.check nl (Edit.Wire_delay { signal = "DATA"; delay = None }) = Ok ());
  bad (Edit.Wire_delay { signal = "NOPE"; delay = None }) "unknown signal";
  bad (Edit.Element_delay { inst = "U9"; delay = Delay.zero }) "unknown instance";
  bad (Edit.Element_delay { inst = "U3"; delay = Delay.zero }) "delay on a checker";
  bad (Edit.Directive { inst = "U1"; input = 5; directive = [] }) "input out of range";
  Alcotest.(check bool) "nothing was mutated" true
    (Fingerprint.digest nl = Fingerprint.digest (build_circuit ()))

let test_edit_of_json () =
  let decode s =
    match Json.parse s with
    | Error e -> Alcotest.fail e
    | Ok j -> Edit.of_json j
  in
  (match decode {| {"edit":"wire_delay","signal":"A","min_ns":0.5,"max_ns":3} |} with
  | Ok (Edit.Wire_delay { signal = "A"; delay = Some d }) ->
    Alcotest.(check bool) "delay decoded" true (Delay.equal d (Delay.of_ns 0.5 3.0))
  | _ -> Alcotest.fail "wire_delay decode");
  (match decode {| {"edit":"wire_delay","signal":"A","delay":null} |} with
  | Ok (Edit.Wire_delay { delay = None; _ }) -> ()
  | _ -> Alcotest.fail "wire_delay null decode");
  (match decode {| {"edit":"assertion","signal":"CK","assertion":"P2-3"} |} with
  | Ok (Edit.Assertion { assertion = Some _; _ }) -> ()
  | _ -> Alcotest.fail "assertion decode");
  (match decode {| {"edit":"directive","inst":"U1","input":0,"directive":"H"} |} with
  | Ok (Edit.Directive { input = 0; directive = _ :: _; _ }) -> ()
  | _ -> Alcotest.fail "directive decode");
  (match decode {| {"edit":"cases","text":"IN0 .S0-6 = 0;\nIN0 .S0-6 = 1;\n"} |} with
  | Ok (Edit.Cases [ _; _ ]) -> ()
  | _ -> Alcotest.fail "cases decode");
  Alcotest.(check bool) "unknown kind rejected" true
    (Result.is_error (decode {| {"edit":"rename","signal":"A"} |}));
  Alcotest.(check bool) "missing field rejected" true
    (Result.is_error (decode {| {"edit":"wire_delay"} |}))

(* ---- Session ----------------------------------------------------------------- *)

let edited_cold ?(cases = []) ?(mode = Eval.Level) ?(jobs = 1) edits =
  let nl = build_circuit () in
  List.iter (fun e -> ignore (Edit.apply nl e)) edits;
  Verifier.verify ~cases ~jobs ~sched:mode nl

let test_session_reverify_equals_cold () =
  let edits =
    [
      Edit.Wire_delay { signal = "DATA"; delay = Some (Delay.of_ns 0.5 9.0) };
      Edit.Element_delay { inst = "U0"; delay = Delay.of_ns 1.0 3.5 };
    ]
  in
  let s = Session.load (build_circuit ()) in
  Alcotest.(check bool) "the edit flips the verdict" true
    ((Session.report s).Verifier.r_violations <> (edited_cold edits).Verifier.r_violations);
  List.iter (Session.stage s) edits;
  Alcotest.(check int) "both edits staged" 2 (Session.pending s);
  let report, st = Session.reverify s in
  let cold = edited_cold edits in
  Alcotest.(check bool) "verdicts equal the cold run" true (verdicts_equal report cold);
  Alcotest.(check string) "listing byte-identical" (cold_listing cold) (Session.listing s);
  Alcotest.(check string) "digest tracks the edits"
    (Fingerprint.digest
       (let nl = build_circuit () in
        List.iter (fun e -> ignore (Edit.apply nl e)) edits;
        nl))
    (Session.digest s);
  Alcotest.(check int) "nothing pending afterwards" 0 (Session.pending s);
  Alcotest.(check bool) "clock's cone was reused" true (st.Session.st_reused_nets > 0);
  Alcotest.(check bool) "some verdicts were reused" true (st.Session.st_warm_hits > 0);
  Alcotest.(check bool) "the dirty cone was re-verified" true
    (st.Session.st_dirtied_nets > 0 && st.Session.st_evaluations > 0)

let test_session_assertion_and_revert () =
  let s = Session.load (build_circuit ()) in
  let original = Session.listing s in
  (* retarget the clock assertion, then put it back: the session must
     land exactly where it started, through the reassert path both ways *)
  Session.stage s
    (Edit.Assertion { signal = "CK .P2-3"; assertion = Some (assertion "P4-5") });
  let report, _ = Session.reverify s in
  let cold =
    edited_cold
      [ Edit.Assertion { signal = "CK .P2-3"; assertion = Some (assertion "P4-5") } ]
  in
  Alcotest.(check bool) "retargeted assertion equals cold" true
    (verdicts_equal report cold);
  Session.stage s
    (Edit.Assertion { signal = "CK .P2-3"; assertion = Some (assertion "P2-3") });
  let report', _ = Session.reverify s in
  Alcotest.(check bool) "revert restores the original verdicts" true
    (verdicts_equal report' (Session.report (Session.load (build_circuit ()))));
  Alcotest.(check string) "and the original listing" original (Session.listing s);
  Alcotest.(check string) "and the original digest" (Session.id s) (Session.digest s)

let test_session_noop_reverify () =
  let s = Session.load (build_circuit ()) in
  let before = Session.listing s in
  let report, st = Session.reverify s in
  Alcotest.(check string) "verdicts unchanged" before (cold_listing report);
  Alcotest.(check int) "no net dirtied" 0 st.Session.st_dirtied_nets;
  Alcotest.(check int) "no evaluation ran" 0 st.Session.st_evaluations;
  Alcotest.(check bool) "every verdict reused" true (st.Session.st_warm_hits > 0)

let test_session_cases_swap () =
  let cases0 = Case_analysis.complete_exn [ "IN0 .S0-6" ] in
  let cases1 = Case_analysis.complete_exn [ "IN0 .S0-6"; "IN1 .S0-6" ] in
  let s = Session.load ~cases:cases0 (build_circuit ()) in
  Session.stage s (Edit.Cases cases1);
  let report, _ = Session.reverify s in
  let cold = Verifier.verify ~cases:cases1 (build_circuit ()) in
  Alcotest.(check bool) "case-group swap equals cold" true (verdicts_equal report cold);
  Alcotest.(check int) "four cases ran" 4 (List.length report.Verifier.r_cases);
  (* swap back down: the old case nets must be re-swept too *)
  Session.stage s (Edit.Cases cases0);
  let report', _ = Session.reverify s in
  Alcotest.(check bool) "swap back equals cold" true
    (verdicts_equal report' (Verifier.verify ~cases:cases0 (build_circuit ())))

let test_session_corners_edit () =
  let corners = Corner.of_spec "typ,slow,hot=1.4/1.2" in
  let s = Session.load (build_circuit ()) in
  let base_digest = Session.digest s in
  Session.stage s (Edit.Corners corners);
  let report, _ = Session.reverify s in
  let cold = edited_cold [ Edit.Corners corners ] in
  Alcotest.(check bool) "corners edit equals cold" true (verdicts_equal report cold);
  Alcotest.(check int) "three corner verdicts" 3
    (List.length report.Verifier.r_corners);
  List.iter2
    (fun (a : Verifier.corner_result) (b : Verifier.corner_result) ->
      Alcotest.(check string) "corner order preserved"
        b.Verifier.co_corner.Corner.name a.Verifier.co_corner.Corner.name;
      Alcotest.(check bool)
        (a.Verifier.co_corner.Corner.name ^ " lane verdicts equal cold") true
        (a.Verifier.co_violations = b.Verifier.co_violations))
    report.Verifier.r_corners cold.Verifier.r_corners;
  (* the table is a replayable parameter (doc/CORNERS.md): the digest
     moves with it, the skeleton doesn't *)
  let edited = build_circuit () in
  ignore (Edit.apply edited (Edit.Corners corners));
  Alcotest.(check bool) "corner table moves the digest" true
    (Session.digest s <> base_digest);
  Alcotest.(check string) "digest tracks the edit" (Fingerprint.digest edited)
    (Session.digest s);
  Alcotest.(check string) "but not the skeleton"
    (Fingerprint.skeleton (build_circuit ()))
    (Fingerprint.skeleton edited);
  (* shrinking back to the single-corner default re-creates the lanes
     and lands exactly where the session started *)
  Session.stage s (Edit.Corners Corner.default);
  let report', _ = Session.reverify s in
  Alcotest.(check bool) "revert equals a fresh single-corner load" true
    (verdicts_equal report' (Session.report (Session.load (build_circuit ()))));
  (match report'.Verifier.r_corners with
  | [ c ] ->
    Alcotest.(check string) "only the reference corner left" "typ"
      c.Verifier.co_corner.Corner.name
  | cs ->
    Alcotest.failf "expected a single corner entry, got %d" (List.length cs));
  Alcotest.(check string) "and the original digest" base_digest (Session.digest s)

(* IN .S0-4 -> BUF -> D ; SETUP HOLD CHK (D, CK .P2-3).  At the default
   delays the checker is statically proven clean by the arrival-window
   analysis (doc/WINDOWS.md) and window-frozen from load. *)
let build_window_circuit ?(d_wire = None) () =
  let nl =
    Netlist.create
      (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
      ~default_wire_delay:(Delay.of_ns 0.0 2.0)
  in
  let inp = Netlist.signal nl "IN .S0-4" in
  let ck = Netlist.signal nl "CK .P2-3" in
  let d = Netlist.signal nl "D" in
  (match d_wire with None -> () | Some w -> Netlist.set_wire_delay_opt nl d (Some w));
  ignore
    (Netlist.add nl ~name:"U0"
       (Primitive.Buf { invert = false; delay = Delay.of_ns 1.0 2.0 })
       ~inputs:[ Netlist.conn inp ] ~output:(Some d));
  ignore
    (Netlist.add nl ~name:"CHK"
       (Primitive.Setup_hold_check
          { setup = Timebase.ps_of_ns 2.5; hold = Timebase.ps_of_ns 1.5 })
       ~inputs:[ Netlist.conn d; Netlist.conn ck ]
       ~output:None);
  nl

let test_session_window_prune_tracks_edits () =
  let s = Session.load (build_window_circuit ()) in
  let r0 = Session.report s in
  Alcotest.(check int) "checker statically proven at load" 1
    r0.Verifier.r_obs.Verifier.os_window_insts;
  Alcotest.(check int) "no violations while proven" 0
    (List.length r0.Verifier.r_violations);
  (* a wire-delay edit inside the pruned cone withdraws the proof: the
     checker thaws, re-checks dynamically, and reports exactly what a
     cold run on the edited netlist reports *)
  let slow = Delay.of_ns 0.0 12.0 in
  Session.stage s (Edit.Wire_delay { signal = "D"; delay = Some slow });
  let report, _ = Session.reverify s in
  let cold =
    Verifier.verify ~jobs:1 (build_window_circuit ~d_wire:(Some slow) ())
  in
  Alcotest.(check bool) "the edit surfaces real violations" true
    (cold.Verifier.r_violations <> []);
  Alcotest.(check bool) "un-frozen checker equals the cold run" true
    (verdicts_equal report cold);
  (* reverting the delay restores the proof and the clean verdict *)
  Session.stage s (Edit.Wire_delay { signal = "D"; delay = None });
  let report', _ = Session.reverify s in
  Alcotest.(check bool) "revert restores the proven-clean verdict" true
    (verdicts_equal report'
       (Session.report (Session.load (build_window_circuit ()))))

let test_session_counters_carry () =
  let s = Session.load (build_circuit ()) in
  Session.stage s (Edit.Wire_delay { signal = "DATA"; delay = Some (Delay.of_ns 0.5 9.0) });
  let r1, st1 = Session.reverify s in
  Alcotest.(check bool) "carried r_obs equals the cumulative counters" true
    (r1.Verifier.r_obs = Verifier.obs_of_counters (Session.cumulative s));
  let cum1 = (Session.cumulative s).Eval.c_evaluations in
  Alcotest.(check bool) "cumulative includes the cold run" true
    (cum1 > st1.Session.st_evaluations);
  Session.stage s (Edit.Wire_delay { signal = "DATA"; delay = None });
  let r2, st2 = Session.reverify ~carry_counters:false s in
  Alcotest.(check bool) "carry_counters:false reports this request alone" true
    (r2.Verifier.r_obs.Verifier.os_queued
    < (Verifier.obs_of_counters (Session.cumulative s)).Verifier.os_queued);
  Alcotest.(check int) "r_events is always per-request" st2.Session.st_events
    r2.Verifier.r_events;
  Alcotest.(check bool) "cumulative keeps growing regardless" true
    ((Session.cumulative s).Eval.c_evaluations
    = cum1 + st2.Session.st_evaluations)

(* ---- Store -------------------------------------------------------------------- *)

let test_store_warm_adopt_cold () =
  let st = Store.create () in
  let s0 =
    match Store.load st (build_circuit ()) with
    | Store.Cold s -> s
    | _ -> Alcotest.fail "first load must be cold"
  in
  (match Store.load st (build_circuit ()) with
  | Store.Warm s -> Alcotest.(check string) "warm hit on the same design" (Session.id s0) (Session.id s)
  | _ -> Alcotest.fail "identical design must load warm");
  (match Store.load st (build_circuit ~u0_max:3.5 ()) with
  | Store.Adopted (s, staged) ->
    Alcotest.(check string) "adopted the structural twin" (Session.id s0) (Session.id s);
    Alcotest.(check int) "the parameter diff was staged" 1 staged;
    let report, _ = Session.reverify s in
    Alcotest.(check bool) "adopted re-verify equals cold" true
      (verdicts_equal report (edited_cold [ Edit.Element_delay { inst = "U0"; delay = Delay.of_ns 1.0 3.5 } ]));
    (* the session now IS the tweaked design: re-submitting it is warm *)
    (match Store.load st (build_circuit ~u0_max:3.5 ()) with
    | Store.Warm _ -> ()
    | _ -> Alcotest.fail "edited-into design must load warm")
  | _ -> Alcotest.fail "structural twin must be adopted");
  (match Store.load st (Netlist.create (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25) ~default_wire_delay:Delay.zero) with
  | Store.Cold _ -> ()
  | _ -> Alcotest.fail "a different structure must load cold");
  Alcotest.(check int) "two sessions live" 2 (Store.n_sessions st);
  Alcotest.(check int) "five loads" 5 (Store.loads st);
  Alcotest.(check int) "two warm" 2 (Store.warm_loads st);
  Alcotest.(check int) "one adopted" 1 (Store.adopted_loads st);
  Alcotest.(check bool) "find by handle" true
    (Store.find st (Session.id s0) <> None);
  Alcotest.(check bool) "find by unknown handle" true (Store.find st "xyz" = None)

(* ---- Serve -------------------------------------------------------------------- *)

let inline_source =
  "PERIOD 50.0;\nCLOCK UNIT 6.25;\nDEFAULT WIRE DELAY 0.0/1.0;\n\
   1 CHG (DELAY=1.0/3.0) (A .S0-6) -> B;\n\
   REG (DELAY=1.5/4.5) (B, CK .P2-3) -> Q;\n\
   SETUP HOLD CHK (SETUP=8.0, HOLD=1.0) (B, CK .P2-3);\n"

let serve_req t line =
  let resp, cont = Serve.handle_line t line in
  match Json.parse resp with
  | Ok j -> (j, cont)
  | Error e -> Alcotest.fail (Printf.sprintf "unparseable response %s: %s" resp e)

let jbool key j = Option.bind (Json.member key j) Json.bool
let jint key j = Option.bind (Json.member key j) Json.int
let jstr key j = Option.bind (Json.member key j) Json.str

let test_serve_protocol () =
  let t = Serve.create () in
  (match Json.parse (Json.to_string (Serve.hello ())) with
  | Ok h ->
    Alcotest.(check (option string)) "hello names the protocol" (Some Version.protocol)
      (jstr "protocol" h)
  | Error e -> Alcotest.fail e);
  let bad, cont = serve_req t "this is not json" in
  Alcotest.(check (option bool)) "bad JSON answered, not fatal" (Some false)
    (jbool "ok" bad);
  Alcotest.(check bool) "loop continues" true cont;
  let unknown, _ = serve_req t {| {"op":"frobnicate"} |} in
  Alcotest.(check (option bool)) "unknown op rejected" (Some false) (jbool "ok" unknown);
  let noload, _ = serve_req t {| {"op":"verify"} |} in
  Alcotest.(check (option bool)) "verify before load rejected" (Some false)
    (jbool "ok" noload);
  let load, _ =
    serve_req t
      (Json.to_string
         (Json.Obj [ ("op", Json.Str "load"); ("source", Json.Str inline_source) ]))
  in
  Alcotest.(check (option bool)) "load ok" (Some true) (jbool "ok" load);
  Alcotest.(check (option string)) "cold" (Some "cold") (jstr "mode" load);
  let session = Option.get (jstr "session" load) in
  (* atomicity: a delta with one bad edit stages nothing *)
  let bad_delta, _ =
    serve_req t
      {| {"op":"delta","edits":[{"edit":"wire_delay","signal":"B","min_ns":0,"max_ns":9},{"edit":"wire_delay","signal":"NOPE","min_ns":0,"max_ns":1}]} |}
  in
  Alcotest.(check (option bool)) "bad delta rejected" (Some false) (jbool "ok" bad_delta);
  let v0, _ = serve_req t {| {"op":"verify"} |} in
  Alcotest.(check (option bool)) "nothing staged by the rejected delta" (Some false)
    (jbool "fresh" v0);
  let delta, _ =
    serve_req t {| {"op":"delta","edits":[{"edit":"wire_delay","signal":"B","min_ns":0,"max_ns":9}]} |}
  in
  Alcotest.(check (option int)) "edit staged" (Some 1) (jint "staged" delta);
  let v1, _ = serve_req t (Printf.sprintf {| {"op":"verify","session":"%s"} |} session) in
  Alcotest.(check (option bool)) "fresh re-verify ran" (Some true) (jbool "fresh" v1);
  Alcotest.(check bool) "some nets reused" true (Option.get (jint "reused_nets" v1) > 0);
  Alcotest.(check bool) "some nets dirtied" true (Option.get (jint "dirtied_nets" v1) > 0);
  let stats, _ = serve_req t {| {"op":"stats"} |} in
  Alcotest.(check (option int)) "one session" (Some 1) (jint "sessions" stats);
  Alcotest.(check (option int)) "requests counted" (Some 9) (jint "requests" stats);
  let bye, cont = serve_req t {| {"op":"shutdown"} |} in
  Alcotest.(check (option bool)) "shutdown ok" (Some true) (jbool "ok" bye);
  Alcotest.(check bool) "loop ends" false cont

let test_serve_matches_cli_listing () =
  (* the serve-mode listing file must be byte-identical to what the CLI
     prints for the equivalent cold design *)
  let t = Serve.create () in
  ignore
    (serve_req t
       (Json.to_string
          (Json.Obj [ ("op", Json.Str "load"); ("source", Json.Str inline_source) ])));
  ignore
    (serve_req t {| {"op":"delta","edits":[{"edit":"wire_delay","signal":"B","min_ns":0.0,"max_ns":9.0}]} |});
  let path = Filename.temp_file "scald_serve" ".txt" in
  let v, _ =
    serve_req t
      (Json.to_string
         (Json.Obj [ ("op", Json.Str "verify"); ("listing", Json.Str path) ]))
  in
  Alcotest.(check (option bool)) "verify ok" (Some true) (jbool "ok" v);
  let ic = open_in_bin path in
  let listing = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let cold =
    match Scald_sdl.Parser.parse inline_source with
    | Error e -> Alcotest.fail e
    | Ok ast -> (
      match Scald_sdl.Expander.expand ast with
      | Error e -> Alcotest.fail e
      | Ok { Scald_sdl.Expander.e_netlist = nl; _ } ->
        Netlist.set_wire_delay_opt nl
          (Option.get (Netlist.find nl "B"))
          (Some (Delay.of_ns 0.0 9.0));
        Verifier.verify nl)
  in
  Alcotest.(check bool) "the edit produced violations" true
    (cold.Verifier.r_violations <> []);
  Alcotest.(check string) "serve listing equals the cold CLI listing"
    (cold_listing cold) listing

(* ---- serve telemetry ----------------------------------------------------------- *)

(* each reading advances the clock by [step] seconds, so every span and
   request duration is a pure function of the request sequence *)
let ticking_clock step =
  let t = ref 0.0 in
  fun () ->
    let v = !t in
    t := !t +. step;
    v

let telemetry_script =
  [
    Json.to_string
      (Json.Obj [ ("op", Json.Str "load"); ("source", Json.Str inline_source) ]);
    {| {"op":"delta","edits":[{"edit":"wire_delay","signal":"B","min_ns":0,"max_ns":9}]} |};
    {| {"op":"verify"} |};
    {| {"op":"verify"} |};
  ]

let test_serve_health () =
  let t = Serve.create () in
  List.iter (fun line -> ignore (serve_req t line)) telemetry_script;
  let h, cont = serve_req t {| {"op":"health"} |} in
  Alcotest.(check bool) "loop continues" true cont;
  Alcotest.(check (option bool)) "ok" (Some true) (jbool "ok" h);
  Alcotest.(check (option string)) "op" (Some "health") (jstr "op" h);
  Alcotest.(check (option int)) "requests" (Some 5) (jint "requests" h);
  Alcotest.(check (option int)) "errors" (Some 0) (jint "errors" h);
  Alcotest.(check (option int)) "sessions" (Some 1) (jint "sessions" h);
  Alcotest.(check bool) "uptime present" true (jint "uptime_us" h <> None);
  Alcotest.(check bool) "slow counter present" true (jint "slow_requests" h <> None);
  Alcotest.(check bool) "hit rate present" true
    (Option.bind (Json.member "cache_hit_rate" h) Json.num <> None);
  Alcotest.(check bool) "bytes per primitive present" true
    (Option.bind (Json.member "bytes_per_primitive" h) Json.num <> None);
  (match Json.member "mem" h with
  | Some mem ->
    Alcotest.(check bool) "live heap words" true (Option.get (jint "heap_words" mem) > 0);
    Alcotest.(check bool) "rss non-negative" true (Option.get (jint "peak_rss_kb" mem) >= 0);
    List.iter
      (fun k ->
        Alcotest.(check bool) (k ^ " present") true (Json.member k mem <> None))
      [ "minor_words"; "promoted_words"; "major_words"; "compactions" ]
  | None -> Alcotest.fail "no mem object");
  match Json.member "latency_us" h with
  | Some lat ->
    (* the script ran 1 load, 1 delta, 2 verifies; health itself is
       timed after its response is built *)
    Alcotest.(check (option int)) "load count" (Some 1)
      (Option.bind (Json.member "load" lat) (jint "count"));
    Alcotest.(check (option int)) "verify count" (Some 2)
      (Option.bind (Json.member "verify" lat) (jint "count"));
    Alcotest.(check bool) "health not yet timed" true (Json.member "health" lat = None);
    List.iter
      (fun q ->
        Alcotest.(check bool) (q ^ " present") true
          (Option.bind (Json.member "verify" lat) (fun v -> Json.member q v) <> None))
      [ "p50_us"; "p90_us"; "p99_us"; "max_us" ]
  | None -> Alcotest.fail "no latency_us object"

let test_serve_deterministic_quantiles () =
  let run_script () =
    let t =
      Serve.create ~obs:(Scald_obs.Obs.create ~clock:(ticking_clock 1e-4) ()) ()
    in
    List.iter (fun line -> ignore (serve_req t line)) telemetry_script;
    let stats, _ = serve_req t {| {"op":"stats"} |} in
    stats
  in
  let a = run_script () and b = run_script () in
  let lat j = Option.get (Json.member "latency_us" j) in
  Alcotest.(check bool) "identical runs, identical quantiles" true (lat a = lat b);
  Alcotest.(check string) "identical serialization" (Json.to_string (lat a))
    (Json.to_string (lat b));
  (* a single observation reports itself at every quantile *)
  match Json.member "load" (lat a) with
  | Some load ->
    let f q = Option.bind (Json.member q load) Json.num in
    Alcotest.(check bool) "one load" true (jint "count" load = Some 1);
    Alcotest.(check bool) "p50 = p99 = max for a single sample" true
      (f "p50_us" = f "p99_us" && f "p99_us" = f "max_us" && f "max_us" <> None)
  | None -> Alcotest.fail "no load latency"

let test_serve_lanes_and_slow () =
  let t =
    Serve.create
      ~obs:(Scald_obs.Obs.create ~clock:(ticking_clock 1e-4) ())
      ~slow_ms:0.0 ()
  in
  List.iter (fun line -> ignore (serve_req t line)) telemetry_script;
  ignore (serve_req t {| {"op":"stats"} |});
  (* load/delta/verify produce spans, so each got a named trace lane;
     stats does not *)
  Alcotest.(check (list (pair int string))) "one lane per span-producing request"
    [ (1, "r1:load"); (2, "r2:delta"); (3, "r3:verify"); (4, "r4:verify") ]
    (Serve.lanes t);
  let stats, _ = serve_req t {| {"op":"stats"} |} in
  (* with a 0ms threshold and a strictly ticking clock, every finished
     request is slow (the latest stats request is not yet counted) *)
  Alcotest.(check (option int)) "all requests slow" (Some 5) (jint "slow_requests" stats);
  let no_telem = Serve.create ~telemetry:false ~slow_ms:0.0 () in
  List.iter (fun line -> ignore (serve_req no_telem line)) telemetry_script;
  Alcotest.(check (list (pair int string))) "telemetry off: no lanes" []
    (Serve.lanes no_telem);
  let stats, _ = serve_req no_telem {| {"op":"stats"} |} in
  Alcotest.(check (option int)) "telemetry off: nothing timed" (Some 0)
    (jint "slow_requests" stats);
  match Json.member "latency_us" stats with
  | Some (Json.Obj []) -> ()
  | _ -> Alcotest.fail "telemetry off: latency_us must be empty"

(* ---- the bit-identity property ------------------------------------------------ *)

(* Random acyclic gate networks (always convergent) feeding the
   registered/checked output stage, plus one random edit: staging the
   edit on a live session and re-verifying must give the same verdicts
   and listing as a cold verify of an identically edited fresh build —
   across both scheduling disciplines and sequential/parallel case
   evaluation. *)

type recipe = {
  rc_n_inputs : int;
  rc_gates : (int * int * int) list;
  rc_edit : int * int * int;  (* kind selector, operand selectors *)
}

let gen_recipe =
  let open QCheck.Gen in
  let gen =
    let* rc_n_inputs = int_range 2 4 in
    let* n_gates = int_range 2 10 in
    let* rc_gates =
      list_repeat n_gates (triple (int_range 0 4) (int_range 0 1000) (int_range 0 1000))
    in
    let* rc_edit = triple (int_range 0 5) (int_range 0 1000) (int_range 0 40) in
    return { rc_n_inputs; rc_gates; rc_edit }
  in
  QCheck.make
    ~print:(fun r ->
      let k, a, b = r.rc_edit in
      Printf.sprintf "%d inputs, %d gates, edit (%d,%d,%d)" r.rc_n_inputs
        (List.length r.rc_gates) k a b)
    gen

let input_name i = Printf.sprintf "IN%d .S0-6" i

let build_recipe r =
  let nl =
    Netlist.create
      (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
      ~default_wire_delay:(Delay.of_ns 0.0 2.0)
  in
  let inputs = List.init r.rc_n_inputs (fun i -> Netlist.signal nl (input_name i)) in
  let ck = Netlist.signal nl "CK .P2-3" in
  let nodes = ref (Array.of_list inputs) in
  List.iteri
    (fun i (fn_sel, a, b) ->
      let pool = !nodes in
      let pick x = pool.(x mod Array.length pool) in
      let fn =
        match fn_sel with
        | 0 -> Primitive.And
        | 1 -> Primitive.Or
        | 2 -> Primitive.Xor
        | _ -> Primitive.Chg
      in
      let out = Netlist.signal nl (Printf.sprintf "G%d" i) in
      ignore
        (Netlist.add nl ~name:(Printf.sprintf "U%d" i)
           (Primitive.Gate
              { fn; n_inputs = 2; invert = fn_sel = 4; delay = Delay.of_ns 1.0 3.0 })
           ~inputs:[ Netlist.conn (pick a); Netlist.conn (pick b) ]
           ~output:(Some out));
      nodes := Array.append pool [| out |])
    r.rc_gates;
  let last = !nodes.(Array.length !nodes - 1) in
  let q = Netlist.signal nl "Q" in
  ignore
    (Netlist.add nl ~name:"UREG"
       (Primitive.Reg { delay = Delay.of_ns 1.5 4.5; has_set_reset = false })
       ~inputs:[ Netlist.conn last; Netlist.conn ck ]
       ~output:(Some q));
  ignore
    (Netlist.add nl ~name:"UCHK"
       (Primitive.Setup_hold_check
          { setup = Timebase.ps_of_ns 6.0; hold = Timebase.ps_of_ns 1.0 })
       ~inputs:[ Netlist.conn last; Netlist.conn ck ]
       ~output:None);
  nl

let recipe_edit r =
  let kind, a, b = r.rc_edit in
  let n_gates = List.length r.rc_gates in
  let gate_net = Printf.sprintf "G%d" (a mod n_gates) in
  match kind with
  | 0 -> Edit.Wire_delay { signal = gate_net; delay = Some (Delay.of_ns 0.5 (1.0 +. float_of_int b)) }
  | 1 -> Edit.Wire_delay { signal = gate_net; delay = None }
  | 2 -> Edit.Element_delay { inst = Printf.sprintf "U%d" (a mod n_gates); delay = Delay.of_ns 1.0 (2.0 +. float_of_int (b mod 9)) }
  | 3 -> Edit.Assertion { signal = input_name (a mod r.rc_n_inputs); assertion = Some (assertion "S1-7") }
  | 4 -> Edit.Assertion { signal = input_name (a mod r.rc_n_inputs); assertion = None }
  | _ -> Edit.Cases (Case_analysis.complete_exn [ input_name (a mod r.rc_n_inputs) ])

let recipe_cases () = Case_analysis.complete_exn [ input_name 0 ]

let bit_identity_property =
  prop ~count:40 "incremental re-verify is bit-identical to a cold run" gen_recipe
    (fun r ->
      let edit = recipe_edit r in
      let cases = recipe_cases () in
      List.for_all
        (fun mode ->
          let s = Session.load ~mode ~cases (build_recipe r) in
          Session.stage s edit;
          let report, _ = Session.reverify s in
          let incr_listing = Session.listing s in
          List.for_all
            (fun jobs ->
              let nl = build_recipe r in
              ignore (Edit.apply nl edit);
              let cases =
                match edit with Edit.Cases cs -> cs | _ -> cases
              in
              let cold = Verifier.verify ~cases ~jobs ~sched:mode nl in
              verdicts_equal report cold && incr_listing = cold_listing cold)
            [ 1; 4 ])
        [ Eval.Level; Eval.Fifo ])

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse" `Quick test_json_parse;
    Alcotest.test_case "json int printing" `Quick test_json_int_printing;
    Alcotest.test_case "json edge cases" `Quick test_json_edge_cases;
    json_roundtrip_property;
    Alcotest.test_case "fingerprint digest/skeleton" `Quick test_fingerprint_digest;
    Alcotest.test_case "fingerprint cones localize edits" `Quick test_fingerprint_cones;
    Alcotest.test_case "edit apply and diff" `Quick test_edit_apply_and_diff;
    Alcotest.test_case "edit check rejects without mutating" `Quick test_edit_check;
    Alcotest.test_case "edit of_json" `Quick test_edit_of_json;
    Alcotest.test_case "session re-verify equals cold" `Quick
      test_session_reverify_equals_cold;
    Alcotest.test_case "session assertion edit and revert" `Quick
      test_session_assertion_and_revert;
    Alcotest.test_case "session no-op re-verify" `Quick test_session_noop_reverify;
    Alcotest.test_case "session case-group swap" `Quick test_session_cases_swap;
    Alcotest.test_case "session corners edit and revert" `Quick
      test_session_corners_edit;
    Alcotest.test_case "session window pruning tracks edits" `Quick
      test_session_window_prune_tracks_edits;
    Alcotest.test_case "session counters carry" `Quick test_session_counters_carry;
    Alcotest.test_case "store warm/adopt/cold" `Quick test_store_warm_adopt_cold;
    Alcotest.test_case "serve protocol" `Quick test_serve_protocol;
    Alcotest.test_case "serve listing equals CLI" `Quick test_serve_matches_cli_listing;
    Alcotest.test_case "serve health" `Quick test_serve_health;
    Alcotest.test_case "serve deterministic quantiles" `Quick
      test_serve_deterministic_quantiles;
    Alcotest.test_case "serve lanes and slow requests" `Quick
      test_serve_lanes_and_slow;
    bit_identity_property;
  ]
