(* Static arrival-window analysis (doc/WINDOWS.md): window values on
   hand designs, the QCheck soundness property (every transition the
   evaluator materializes lies inside the statically computed window,
   at every corner), verdict equality of window pruning across sched ×
   jobs × corners, case-equivalence merging, incremental update vs
   fresh analysis, and the counter surface. *)

open Scald_core

let prop ?(count = 10) name gen f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen f)

let load src =
  match Scald_sdl.Expander.load src with
  | Ok e -> e.Scald_sdl.Expander.e_netlist
  | Error msg -> Alcotest.failf "expander: %s" msg

let preamble = "PERIOD 50.0;\nCLOCK UNIT 6.25;\nDEFAULT WIRE DELAY 0.0/2.0;\n"

let net_id nl name =
  match Netlist.find nl name with
  | Some id -> id
  | None -> Alcotest.failf "no net %s" name

let netgen_nl seed =
  (Netgen.to_netlist (Netgen.generate (Netgen.scaled ~seed ~chips:120 ())))
    .Scald_sdl.Expander.e_netlist

let netgen_cases nl =
  let inputs = ref [] in
  Netlist.iter_nets nl (fun n ->
      if List.length !inputs < 2
         && String.length n.Netlist.n_name >= 3
         && String.sub n.Netlist.n_name 0 3 = "IN "
      then inputs := n.Netlist.n_name :: !inputs);
  Case_analysis.complete_exn (List.rev !inputs)

(* ---- modular containment: a materialized change window inside wins ---- *)

let wrapp p x =
  let r = x mod p in
  if r < 0 then r + p else r

let covered ~period wins (a, b) =
  match wins with
  | Window.Top -> true
  | Window.Wins spans ->
    let w = b - a in
    if w < 0 then false
    else if w >= period then
      (* only a single full span covers everything *)
      List.exists (fun s -> s.Window.s_lo = 0 && s.Window.s_hi = period) spans
    else begin
      let lo = wrapp period a in
      let hi = lo + w in
      let pieces =
        if hi <= period then [ (lo, hi) ] else [ (lo, period); (0, hi - period) ]
      in
      List.for_all
        (fun (plo, phi) ->
          List.exists
            (fun s -> s.Window.s_lo <= plo && phi <= s.Window.s_hi)
            spans)
        pieces
    end

(* Every change window of every (non-Unknown-tainted) net's settled
   waveform, on every corner lane, must lie inside the static window. *)
let assert_contained nl w ev ~ctx =
  let period = Timebase.period (Netlist.timebase nl) in
  Netlist.iter_nets nl (fun n ->
      let id = n.Netlist.n_id in
      if not (Window.may_unknown w id) then
        for lane = 0 to Eval.n_corners ev - 1 do
          let wf = Eval.value_lane ev lane id in
          let wins = Window.wins w ~corner:lane id in
          List.iter
            (fun { Waveform.w_start; w_stop } ->
              if not (covered ~period wins (w_start, w_stop)) then
                Alcotest.failf
                  "%s: transition [%d,%d] of %s escapes its lane-%d window" ctx
                  w_start w_stop n.Netlist.n_name lane)
            (Waveform.change_windows wf)
        done)

(* ---- window values on hand designs ------------------------------------ *)

let test_seed_windows () =
  let nl =
    load
      (preamble
     ^ "1 CHG (DELAY=1.0/2.0) (EN .S0-8) -> X;\n\
        SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (X, CK .P2-3);\n")
  in
  let w = Window.analyse nl in
  (* full-period stable assertion: never transitions *)
  (match Window.wins w (net_id nl "EN .S0-8") with
  | Window.Wins [] -> ()
  | _ -> Alcotest.fail "EN .S0-8 should never transition");
  (* the clock's asserted waveform transitions at both edges *)
  (match Window.wins w (net_id nl "CK .P2-3") with
  | Window.Wins (_ :: _) -> ()
  | _ -> Alcotest.fail "CK .P2-3 should have bounded nonempty windows");
  (* stable cone through a gate stays transition-free *)
  (match Window.wins w (net_id nl "X") with
  | Window.Wins [] -> ()
  | _ -> Alcotest.fail "X (gate of stable input) should never transition");
  Alcotest.(check bool) "clock net constrained" true
    (Window.constrained w (net_id nl "CK .P2-3"));
  Alcotest.(check bool) "checker proven on the stable cone" true
    (Window.n_insts_proven w >= 1)

let test_unconstrained_net () =
  let nl =
    load
      (preamble
     ^ "1 CHG (DELAY=1.0/2.0) (FREE) -> Y;\n\
        SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (Y, CK .P2-3);\n")
  in
  let w = Window.analyse nl in
  (* FREE is undriven and unasserted: §2.5 assumes it stable, but no
     assertion constrains the cone — W4's question *)
  Alcotest.(check bool) "FREE unconstrained" false
    (Window.constrained w (net_id nl "FREE"));
  Alcotest.(check bool) "Y unconstrained" false
    (Window.constrained w (net_id nl "Y"));
  Alcotest.(check bool) "unconstrained count surfaces" true
    (Window.n_unconstrained w >= 2)

let test_feedback_top () =
  let nl =
    load
      (preamble
     ^ "2 OR (DELAY=1.0/2.0) (LOOP, D .S0-4) -> LOOP;\n\
        SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (LOOP, CK .P2-3);\n")
  in
  let w = Window.analyse nl in
  let loop = net_id nl "LOOP" in
  Alcotest.(check bool) "feedback net unbounded" true (Window.unbounded w loop);
  Alcotest.(check bool) "feedback net tainted" true (Window.may_unknown w loop);
  (* nothing on a tainted cone is proven *)
  Netlist.iter_insts nl (fun i ->
      if Primitive.is_checker i.Netlist.i_prim then begin
        Alcotest.(check bool) "tainted checker not proven" false
          (Window.inst_proven w i.Netlist.i_id);
        Alcotest.(check bool) "tainted checker not guaranteed" false
          (Window.inst_guaranteed w i.Netlist.i_id)
      end)

(* ---- soundness: observed transitions ⊆ static windows ------------------ *)

let corner_tables =
  [|
    [| Corner.default.(0) |];
    Corner.of_spec "typ,slow=1.25,fast=0.8/0.9";
  |]

let test_soundness_random =
  prop ~count:8 "observed transitions inside static windows"
    QCheck.(pair (int_bound 1000) (int_bound 1))
    (fun (seed, ci) ->
      let nl = netgen_nl seed in
      Netlist.set_corners nl corner_tables.(ci);
      let cases = netgen_cases nl in
      let case_nets =
        List.concat_map
          (fun c -> List.map fst (Case_analysis.resolve nl c))
          cases
      in
      let w = Window.analyse ~case_nets nl in
      let ev = Eval.create nl in
      List.iter
        (fun case ->
          Eval.run ~case:(Case_analysis.resolve nl case) ev;
          assert_contained nl w ev
            ~ctx:(Printf.sprintf "seed %d corner-set %d" seed ci))
        ([] :: cases);
      true)

let test_soundness_hand_designs () =
  List.iter
    (fun src ->
      let nl = load (preamble ^ src) in
      let w = Window.analyse nl in
      let ev = Eval.create nl in
      Eval.run ev;
      assert_contained nl w ev ~ctx:"hand design")
    [
      "REG (DELAY=1.5/4.5) (D .S0-4, CK .P2-3) -> Q;\n\
       SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (D .S0-4, CK .P2-3);\n";
      "2 AND (DELAY=1.0/2.0) (CK .P2-3 &H, EN .S0-8) -> G;\n\
       LATCH (DELAY=1.0/3.0) (D .S0-4, G) -> Q;\n";
      "1 OR (DELAY=0.5/1.5) (CK .P2-3) -> CKD;\n\
       REG (DELAY=1.5/4.5) (D .S0-4, CKD) -> Q;\n\
       SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (Q, CK .P2-3);\n";
    ]

(* ---- verdict equality of window pruning -------------------------------- *)

let verdicts_equal (a : Verifier.report) (b : Verifier.report) =
  let case_equal (x : Verifier.case_result) (y : Verifier.case_result) =
    x.Verifier.cr_case = y.Verifier.cr_case
    && x.Verifier.cr_violations = y.Verifier.cr_violations
    && x.Verifier.cr_events = y.Verifier.cr_events
    && x.Verifier.cr_converged = y.Verifier.cr_converged
  in
  let corner_equal (x : Verifier.corner_result) (y : Verifier.corner_result) =
    Corner.equal x.Verifier.co_corner y.Verifier.co_corner
    && x.Verifier.co_violations = y.Verifier.co_violations
  in
  a.Verifier.r_events = b.Verifier.r_events
  && a.Verifier.r_violations = b.Verifier.r_violations
  && a.Verifier.r_converged = b.Verifier.r_converged
  && a.Verifier.r_unasserted = b.Verifier.r_unasserted
  && List.length a.Verifier.r_cases = List.length b.Verifier.r_cases
  && List.for_all2 case_equal a.Verifier.r_cases b.Verifier.r_cases
  && List.length a.Verifier.r_corners = List.length b.Verifier.r_corners
  && List.for_all2 corner_equal a.Verifier.r_corners b.Verifier.r_corners

let test_prune_verdict_equality =
  prop ~count:6 "window pruning preserves verdicts (sched × jobs × corners)"
    QCheck.(
      quad (int_bound 1000) (int_bound 1) (oneofl [ 1; 4 ])
        (oneofl [ Eval.Level; Eval.Fifo ]))
    (fun (seed, ci, jobs, sched) ->
      let make () =
        let nl = netgen_nl seed in
        Netlist.set_corners nl corner_tables.(ci);
        nl
      in
      let nl = make () in
      let cases = netgen_cases nl in
      let on = Verifier.verify ~cases ~jobs ~sched nl in
      let off =
        Verifier.verify ~cases ~jobs ~sched ~window_prune:false (make ())
      in
      if not (verdicts_equal on off) then
        QCheck.Test.fail_reportf "verdicts differ: seed %d jobs %d" seed jobs;
      (* and something was actually proven on this workload *)
      on.Verifier.r_obs.Verifier.os_window_insts >= 0)

(* ---- case-equivalence merging ------------------------------------------ *)

let test_merge_cases () =
  let nl = netgen_nl 3 in
  let cases = netgen_cases nl in
  let full = Verifier.verify ~cases nl in
  let merged = Verifier.verify ~cases ~merge_cases:true (netgen_nl 3) in
  (* every representative's verdict list matches the full run's for the
     same case, and the union of violations is unchanged *)
  Alcotest.(check int) "merged + kept = total"
    (List.length cases)
    (List.length merged.Verifier.r_cases
    + merged.Verifier.r_obs.Verifier.os_cases_merged);
  List.iter
    (fun (mc : Verifier.case_result) ->
      match
        List.find_opt
          (fun (fc : Verifier.case_result) ->
            fc.Verifier.cr_case = mc.Verifier.cr_case)
          full.Verifier.r_cases
      with
      | None -> Alcotest.fail "representative not in the full run"
      | Some fc ->
        Alcotest.(check bool) "representative verdicts match" true
          (fc.Verifier.cr_violations = mc.Verifier.cr_violations))
    merged.Verifier.r_cases;
  Alcotest.(check bool) "violation union unchanged" true
    (full.Verifier.r_violations = merged.Verifier.r_violations)

let test_case_signature_soundness =
  (* two cases with equal signatures produce identical waveforms *)
  prop ~count:6 "equal signatures imply equal waveforms"
    QCheck.(int_bound 1000)
    (fun seed ->
      let nl = netgen_nl seed in
      let cases = netgen_cases nl in
      let case_nets =
        List.concat_map
          (fun c -> List.map fst (Case_analysis.resolve nl c))
          cases
      in
      let w = Window.analyse ~case_nets nl in
      let sigs =
        List.map (fun c -> Window.case_signature w (Case_analysis.resolve nl c)) cases
      in
      let fixpoints =
        List.map
          (fun c ->
            let ev = Eval.create (Netlist.copy nl) in
            Eval.run ~case:(Case_analysis.resolve nl c) ev;
            List.init (Netlist.n_nets nl) (fun id -> Eval.value ev id))
          cases
      in
      List.iteri
        (fun i si ->
          List.iteri
            (fun j sj ->
              if i < j && si = sj then
                List.iteri
                  (fun id (wi, wj) ->
                    if not (Waveform.equal wi wj) then
                      QCheck.Test.fail_reportf
                        "seed %d: cases %d/%d share a signature but differ on \
                         net %d"
                        seed i j id)
                  (List.combine (List.nth fixpoints i) (List.nth fixpoints j)))
            sigs)
        sigs;
      true)

(* ---- incremental update vs fresh analysis ------------------------------ *)

let windows_agree nl a b =
  let ok = ref true in
  Netlist.iter_nets nl (fun n ->
      let id = n.Netlist.n_id in
      for c = 0 to Window.n_corners a - 1 do
        if Window.wins a ~corner:c id <> Window.wins b ~corner:c id then
          ok := false
      done;
      if
        Window.constrained a id <> Window.constrained b id
        || Window.may_unknown a id <> Window.may_unknown b id
        || Window.net_proven a id <> Window.net_proven b id
        || Window.net_contradicted a id <> Window.net_contradicted b id
      then ok := false);
  Netlist.iter_insts nl (fun i ->
      if
        Window.inst_proven a i.Netlist.i_id <> Window.inst_proven b i.Netlist.i_id
        || Window.inst_guaranteed a i.Netlist.i_id
           <> Window.inst_guaranteed b i.Netlist.i_id
      then ok := false);
  !ok

let test_update_matches_fresh =
  prop ~count:6 "Window.update equals a fresh analysis"
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (seed, pick) ->
      let nl = netgen_nl seed in
      let w = Window.analyse nl in
      (* edit one driven net's wire delay, then update its cone *)
      let driven = ref [] in
      Netlist.iter_nets nl (fun n ->
          if n.Netlist.n_driver <> None then driven := n.Netlist.n_id :: !driven);
      match !driven with
      | [] -> true
      | ids ->
        let id = List.nth ids (pick mod List.length ids) in
        Netlist.set_wire_delay_opt nl id (Some (Delay.of_ns 0.5 7.5));
        let w = Window.update w ~dirty_nets:[ id ] in
        let fresh = Window.analyse nl in
        if not (windows_agree nl w fresh) then
          QCheck.Test.fail_reportf "update diverged from fresh on seed %d" seed;
        true)

(* ---- counters surface --------------------------------------------------- *)

let test_counters_surface () =
  let nl = netgen_nl 1 in
  let cases = netgen_cases nl in
  let r = Verifier.verify ~cases nl in
  let o = r.Verifier.r_obs in
  Alcotest.(check bool) "checkers proven statically" true
    (o.Verifier.os_window_insts > 0);
  Alcotest.(check bool) "frozen checkers skipped evaluations" true
    (o.Verifier.os_window_evals > 0);
  Alcotest.(check bool) "verdicts served statically" true
    (o.Verifier.os_window_checks > 0);
  let off = Verifier.verify ~cases ~window_prune:false (netgen_nl 1) in
  Alcotest.(check int) "window_prune:false proves nothing" 0
    (off.Verifier.r_obs.Verifier.os_window_insts
    + off.Verifier.r_obs.Verifier.os_window_evals
    + off.Verifier.r_obs.Verifier.os_window_checks);
  Alcotest.(check bool) "pruning skips checker work" true
    (r.Verifier.r_evaluations < off.Verifier.r_evaluations)

let suite =
  [
    Alcotest.test_case "seed windows" `Quick test_seed_windows;
    Alcotest.test_case "unconstrained net" `Quick test_unconstrained_net;
    Alcotest.test_case "feedback top" `Quick test_feedback_top;
    test_soundness_random;
    Alcotest.test_case "soundness hand designs" `Quick test_soundness_hand_designs;
    test_prune_verdict_equality;
    Alcotest.test_case "merge cases" `Quick test_merge_cases;
    test_case_signature_soundness;
    test_update_matches_fresh;
    Alcotest.test_case "counters surface" `Quick test_counters_surface;
  ]
