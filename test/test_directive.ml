open Scald_core

let test_parse () =
  (match Directive.of_string "HZZW" with
  | Ok [ Directive.H; Directive.Z; Directive.Z; Directive.W ] -> ()
  | Ok _ -> Alcotest.fail "wrong letters"
  | Error e -> Alcotest.fail e);
  match Directive.of_string "&H" with
  | Ok [ Directive.H ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "leading & should be accepted"

let test_empty () =
  match Directive.of_string "" with
  | Ok [] -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty directive string"

let test_bad () =
  match Directive.of_string "HQ" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Q is not a directive letter"

let test_roundtrip () =
  let d = Directive.of_string_exn "HZZW" in
  Alcotest.(check string) "to_string" "HZZW" (Directive.to_string d)

let test_long_directive () =
  (* to_string walked the list with List.nth per character, quadratic in
     the directive length; a pathological 100k-letter directive must
     round-trip instantly. *)
  let n = 100_000 in
  let s = String.init n (fun i -> "HZWAE".[i mod 5]) in
  let d = Directive.of_string_exn s in
  let t0 = Sys.time () in
  let s' = Directive.to_string d in
  let elapsed = Sys.time () -. t0 in
  Alcotest.(check string) "round-trips" s s';
  Alcotest.(check bool)
    (Printf.sprintf "linear-time to_string (%.3fs)" elapsed)
    true (elapsed < 1.0)

let test_semantics () =
  (* §2.6: E no action; W zero wire; Z zero gate+wire; A hazard check;
     H = Z + A. *)
  let check l (zw, zg, hz) =
    Alcotest.(check bool) "zero wire" zw (Directive.zero_wire l);
    Alcotest.(check bool) "zero gate" zg (Directive.zero_gate l);
    Alcotest.(check bool) "hazard" hz (Directive.check_hazard l)
  in
  check Directive.E (false, false, false);
  check Directive.W (true, false, false);
  check Directive.Z (true, true, false);
  check Directive.A (false, false, true);
  check Directive.H (true, true, true)

let suite =
  [
    Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "bad letter" `Quick test_bad;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "long directive" `Quick test_long_directive;
    Alcotest.test_case "semantics" `Quick test_semantics;
  ]
