#!/usr/bin/env python3
"""Lint a Prometheus text-format (0.0.4) exposition file.

Usage: check_prom.py METRICS.txt

Checks what `scald_tv serve --prom FILE` promises to emit — and what a
scrape would actually reject — with no third-party dependencies, so it
runs on a bare CI python3:

  - metric and label names match the Prometheus grammar
  - every sample line parses: name, optional {labels}, float value
  - label values use only the defined escapes (\\\\, \\", \\n)
  - every family has a # HELP and a # TYPE (counter or gauge) before
    its first sample, each at most once
  - no duplicate samples (same name and label set)
  - no stray text outside comments and samples

Exits 0 on success, 1 with a line-qualified message per failure.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_labels(text, lineno, errors):
    """Parse the inside of {...}; returns a sorted tuple of (k, v) pairs."""
    pairs = []
    i = 0
    n = len(text)
    while i < n:
        m = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', text[i:])
        if not m:
            errors.append(f"line {lineno}: bad label syntax at ...{text[i:]!r}")
            return tuple(pairs)
        name = m.group(1)
        i += m.end()
        value = []
        closed = False
        while i < n:
            c = text[i]
            if c == "\\":
                if i + 1 < n and text[i + 1] in ('\\', '"', 'n'):
                    value.append(text[i:i + 2])
                    i += 2
                else:
                    errors.append(f"line {lineno}: bad escape in label {name!r}")
                    i += 1
            elif c == '"':
                closed = True
                i += 1
                break
            else:
                value.append(c)
                i += 1
        if not closed:
            errors.append(f"line {lineno}: unterminated label value for {name!r}")
            return tuple(pairs)
        pairs.append((name, "".join(value)))
        if i < n:
            if text[i] == ",":
                i += 1
            else:
                errors.append(f"line {lineno}: expected ',' between labels, got {text[i]!r}")
                return tuple(pairs)
    return tuple(sorted(pairs))


def family_of(name):
    """The family a sample belongs to (strips histogram/summary suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__.strip())
    path = sys.argv[1]
    errors = []
    helped = set()
    typed = set()
    seen_samples = set()
    sampled = []  # (family, lineno) in order, to check HELP/TYPE precede
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("# HELP "):
                rest = line[len("# HELP "):]
                name = rest.split(" ", 1)[0]
                if not METRIC_NAME.match(name):
                    errors.append(f"line {lineno}: bad metric name in HELP: {name!r}")
                if name in helped:
                    errors.append(f"line {lineno}: duplicate HELP for {name!r}")
                helped.add(name)
                continue
            if line.startswith("# TYPE "):
                rest = line[len("# TYPE "):]
                parts = rest.split(" ")
                if len(parts) != 2:
                    errors.append(f"line {lineno}: malformed TYPE line")
                    continue
                name, typ = parts
                if not METRIC_NAME.match(name):
                    errors.append(f"line {lineno}: bad metric name in TYPE: {name!r}")
                if typ not in TYPES:
                    errors.append(f"line {lineno}: unknown type {typ!r} for {name!r}")
                if name in typed:
                    errors.append(f"line {lineno}: duplicate TYPE for {name!r}")
                typed.add(name)
                continue
            if line.startswith("#"):
                continue  # other comments are legal and ignored
            m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})? (\S+)( \d+)?$", line)
            if not m:
                errors.append(f"line {lineno}: not a valid sample line: {line!r}")
                continue
            name, _, labels_text, value = m.group(1), m.group(2), m.group(3), m.group(4)
            labels = parse_labels(labels_text, lineno, errors) if labels_text else ()
            for lname, _ in labels:
                if not LABEL_NAME.match(lname):
                    errors.append(f"line {lineno}: bad label name {lname!r}")
            if value not in ("+Inf", "-Inf", "NaN"):
                try:
                    float(value)
                except ValueError:
                    errors.append(f"line {lineno}: bad sample value {value!r}")
            key = (name, labels)
            if key in seen_samples:
                errors.append(f"line {lineno}: duplicate sample {name}{dict(labels)!r}")
            seen_samples.add(key)
            sampled.append((family_of(name), lineno))
    for family, lineno in sampled:
        if family not in helped:
            errors.append(f"line {lineno}: sample of {family!r} has no # HELP")
        if family not in typed:
            errors.append(f"line {lineno}: sample of {family!r} has no # TYPE")
    if not sampled:
        errors.append("no samples found")
    if errors:
        for e in errors:
            print(f"{path}: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"{path}: valid Prometheus exposition, "
          f"{len(seen_samples)} samples in {len(helped)} families")


if __name__ == "__main__":
    main()
