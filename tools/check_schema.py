#!/usr/bin/env python3
"""Validate a JSON document against a small JSON-Schema subset.

Usage: check_schema.py [--lines] SCHEMA.json DOCUMENT.json

With --lines the document is JSON Lines (one object per line, as
written by scald_tv --lint-json) and every line is validated against
the schema independently; blank lines are ignored.

Supports the keywords the checked-in schemas under doc/ actually use
— type, enum, required, properties, additionalProperties, items,
minItems, minimum, oneOf — with no third-party dependencies, so it
runs on a bare CI python3.  Exits 0 on success, 1 with a
path-qualified message per failure otherwise.
"""

import json
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
    "number": (int, float),
    "null": type(None),
}


def type_ok(value, name):
    if name in ("integer", "number") and isinstance(value, bool):
        return False  # bool is an int subclass in python; JSON disagrees
    return isinstance(value, TYPES[name])


def validate(schema, value, path, errors):
    if "oneOf" in schema:
        # accept when at least one alternative validates (the serve
        # response schema dispatches on shape, so "exactly one" would
        # be needlessly strict here)
        attempts = []
        for i, sub in enumerate(schema["oneOf"]):
            sub_errors = []
            validate(sub, value, f"{path}<oneOf[{i}]>", sub_errors)
            if not sub_errors:
                break
            attempts.extend(sub_errors)
        else:
            errors.append(f"{path}: matches none of the {len(schema['oneOf'])} oneOf alternatives")
            errors.extend(attempts)
            return

    t = schema.get("type")
    if t is not None:
        names = t if isinstance(t, list) else [t]
        if not any(type_ok(value, n) for n in names):
            errors.append(f"{path}: expected {'/'.join(names)}, got {type(value).__name__}")
            return  # the structural keywords below assume the type matched

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in enum {schema['enum']!r}")

    if "minimum" in schema and isinstance(value, (int, float)) and not isinstance(value, bool):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required property {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, sub in value.items():
            if key in props:
                validate(props[key], sub, f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected property {key!r}")
            elif isinstance(extra, dict):
                validate(extra, sub, f"{path}.{key}", errors)

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: {len(value)} items < minItems {schema['minItems']}")
        items = schema.get("items")
        if isinstance(items, dict):
            for i, sub in enumerate(value):
                validate(items, sub, f"{path}[{i}]", errors)


def main():
    args = sys.argv[1:]
    lines_mode = "--lines" in args
    args = [a for a in args if a != "--lines"]
    if len(args) != 2:
        sys.exit(__doc__.strip())
    schema_path, doc_path = args
    with open(schema_path) as f:
        schema = json.load(f)
    errors = []
    if lines_mode:
        with open(doc_path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    document = json.loads(line)
                except json.JSONDecodeError as e:
                    errors.append(f"line {lineno}: not valid JSON: {e}")
                    continue
                validate(schema, document, f"line {lineno}: $", errors)
    else:
        try:
            with open(doc_path) as f:
                document = json.load(f)
        except json.JSONDecodeError as e:
            sys.exit(f"{doc_path}: not valid JSON: {e}")
        validate(schema, document, "$", errors)
    if errors:
        for e in errors:
            print(f"{doc_path}: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"{doc_path}: valid against {schema_path}")


if __name__ == "__main__":
    main()
