(* Benchmark harness: regenerates every table and figure of the thesis's
   evaluation (Tables 3-1, 3-2, 3-3; Figures 1-5, 2-6, 2-8/2-9, 3-10,
   3-11, 4-1/4-2) plus the comparisons against the two prior approaches
   (gate-level min/max logic simulation, §1.4.1; worst-case path
   searching, §1.4.2) and a scaling study.

   Run with no arguments for everything, with experiment ids (e.g.
   "table-3-1 fig-2-6") for a subset, or with --bechamel to add the
   Bechamel micro-benchmarks. *)

open Scald_core
module Circuits = Scald_cells.Circuits

let section title =
  Printf.printf "\n==================== %s ====================\n\n" title

let timed f =
  let t0 = Sys.time () in
  let x = f () in
  (x, Sys.time () -. t0)

(* With --metrics-dir DIR, experiments that verify a design also write
   their evaluator counters (plus any hand-timed phases) to
   DIR/BENCH_<id>.json in the scald-metrics/5 shape, so runs can be
   compared column-by-column across commits. *)
let metrics_dir : string option ref = ref None

let emit_bench_metrics id ?(phases = []) ?(extra = []) report =
  match !metrics_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" id) in
    Scald_obs.Counters.write_file
      (Scald_obs.Counters.of_report ~phases ~extra report)
      path;
    Printf.printf "\n  wrote counters to %s\n" path

(* ---- Table 3-1: execution statistics ----------------------------------------- *)

(* The paper's numbers are minutes on the S-1 Mark I (~ IBM 370/168);
   absolute times on this machine differ by the hardware ratio, but the
   structure — where the time goes, events processed, time per event
   proportional to events — is the reproducible part. *)
let table_3_1 () =
  section "TABLE 3-1: execution statistics, 6357-chip design";
  let design = Netgen.generate Netgen.default_config in
  let sdl = Netgen.to_sdl design in
  Printf.printf "synthetic design: %d chips, %d bytes of SCALD HDL\n\n"
    (Netgen.n_chips design) (String.length sdl);
  let ast, t_read = timed (fun () -> Scald_sdl.Parser.parse_exn sdl) in
  let e, _ = timed (fun () -> Scald_sdl.Expander.expand_exn ast) in
  let nl = e.Scald_sdl.Expander.e_netlist in
  let xref, t_xref = timed (fun () -> Scald_sdl.Xref.build nl) in
  let report, t_verify = timed (fun () -> Verifier.verify nl) in
  let _, t_summary =
    timed (fun () ->
        let buf = Buffer.create 65536 in
        let ppf = Format.formatter_of_buffer buf in
        Report.pp_summary ppf report.Verifier.r_eval;
        Format.pp_print_flush ppf ())
  in
  let row activity paper_min measured_s =
    Printf.printf "  %-46s %10s %12.3f s\n" activity paper_min measured_s
  in
  Printf.printf "  %-46s %10s %12s\n" "ACTIVITY" "paper(min)" "measured";
  Printf.printf "  MACRO EXPANSION\n";
  row "reading input files and building data structures" "1.92" t_read;
  row "pass 1 of macro expansion" "8.42" e.Scald_sdl.Expander.e_pass1_s;
  row "pass 2 of macro expansion" "6.18" e.Scald_sdl.Expander.e_pass2_s;
  Printf.printf "  TIMING VERIFIER\n";
  row "generating cross reference listings" "0.72" t_xref;
  row "verifying circuit" "6.75" t_verify;
  row "generating timing summary listing" "0.22" t_summary;
  let prims = Netlist.n_insts nl in
  let events = report.Verifier.r_events in
  Printf.printf "\n  %-40s %10s %12s\n" "" "paper" "measured";
  Printf.printf "  %-40s %10d %12d\n" "primitives" 8282 prims;
  Printf.printf "  %-40s %10d %12d\n" "events processed" 20052 events;
  Printf.printf "  %-40s %10.2f %12.2f\n" "events per primitive" (20052. /. 8282.)
    (float_of_int events /. float_of_int prims);
  Printf.printf "  %-40s %10s %12.4f\n" "verify ms per primitive" "49"
    (1000. *. t_verify /. float_of_int prims);
  Printf.printf "  %-40s %10s %12.4f\n" "verify ms per event" "20"
    (1000. *. t_verify /. float_of_int events);
  Printf.printf "  %-40s %10s %12d\n" "cross-reference entries" "-" (List.length xref);
  Printf.printf "\n  violations in the clean design: %d (expected 0)\n"
    (List.length report.Verifier.r_violations);
  emit_bench_metrics "table-3-1"
    ~phases:
      [
        ("read", t_read);
        ("pass1", e.Scald_sdl.Expander.e_pass1_s);
        ("pass2", e.Scald_sdl.Expander.e_pass2_s);
        ("xref", t_xref);
        ("verify", t_verify);
        ("summary", t_summary);
      ]
    report

(* ---- Table 3-2: primitive definitions generated -------------------------------- *)

let table_3_2 () =
  section "TABLE 3-2: primitive definitions generated";
  let design = Netgen.generate Netgen.default_config in
  let e = Netgen.to_netlist design in
  let nl = e.Scald_sdl.Expander.e_netlist in
  let census = Stats.primitive_census nl in
  Format.printf "%a@." Stats.pp_census census;
  let prims = Stats.total_primitives census in
  let chips = Netgen.n_chips design in
  Printf.printf "\n  %-40s %10s %12s\n" "" "paper" "measured";
  Printf.printf "  %-40s %10d %12d\n" "primitive types" 22 (List.length census);
  Printf.printf "  %-40s %10d %12d\n" "total primitives" 8282 prims;
  Printf.printf "  %-40s %10d %12d\n" "chips" 6357 chips;
  Printf.printf "  %-40s %10.1f %12.2f\n" "primitives per chip" 1.3
    (float_of_int prims /. float_of_int chips);
  Printf.printf "  %-40s %10.1f %12.2f\n" "mean primitive width (bits)" 6.5
    (float_of_int (Stats.unvectored_count nl) /. float_of_int prims);
  Printf.printf "  %-40s %10d %12d\n" "primitives without vector symmetry" 53833
    (Stats.unvectored_count nl)

(* ---- Table 3-3: storage --------------------------------------------------------- *)

let table_3_3 () =
  section "TABLE 3-3: storage required for the data structures";
  let design = Netgen.generate Netgen.default_config in
  let e = Netgen.to_netlist design in
  let nl = e.Scald_sdl.Expander.e_netlist in
  (* Evaluate first: value-record counts come from real waveforms. *)
  let report = Verifier.verify nl in
  ignore report;
  let st = Stats.storage_of nl in
  Format.printf "%a@." Stats.pp_storage st;
  Printf.printf "\n  %-40s %10s %12s\n" "" "paper" "measured";
  Printf.printf "  %-40s %10s %12.1f%%\n" "circuit description share" "37.8%"
    (100. *. float_of_int st.Stats.circuit_description /. float_of_int (Stats.total st));
  Printf.printf "  %-40s %10d %12d\n" "signal value lists" 33152 (Stats.n_value_lists nl);
  Printf.printf "  %-40s %10.2f %12.2f\n" "value records per list" 2.97
    (Stats.value_records_per_signal nl);
  Printf.printf "  %-40s %10d %12.1f\n" "bytes per signal value" 56
    (Stats.bytes_per_signal_value nl);
  Printf.printf "  %-40s %10d %12.1f\n" "bytes per primitive (circuit desc)" 260
    (Stats.bytes_per_primitive st ~n_primitives:(Netlist.n_insts nl))

(* ---- Figure 3-10: timing summary listing ------------------------------------------ *)

let fig_3_10 () =
  section "FIGURE 3-10: Timing Verifier output, register-file example";
  let circuit = Circuits.register_file_example () in
  let report = Verifier.verify circuit.Circuits.rf_netlist in
  Format.printf "%a@." Report.pp_summary report.Verifier.r_eval;
  let adr =
    Format.asprintf "%a" (fun ppf ev -> Report.pp_signal ppf ev "ADR<0:3>")
      report.Verifier.r_eval
  in
  let expected = "S 0.0  C 0.5  S 5.5  C 25.5  S 30.5" in
  Printf.printf
    "\n  paper: ADR<0:3> stable at 0, changing 0.5-5.5 ns, stable to 25.5,\n\
    \         changing 25.5-30.5 ns, stable for the rest of the cycle\n";
  Printf.printf "  measured line: %s\n" (String.trim adr);
  Printf.printf "  match: %b\n"
    (String.length adr >= String.length expected
    &&
    let rec contains i =
      i + String.length expected <= String.length adr
      && (String.sub adr i (String.length expected) = expected || contains (i + 1))
    in
    contains 0)

(* ---- Figure 3-11: error listing ----------------------------------------------------- *)

let fig_3_11 () =
  section "FIGURE 3-11: set-up and hold time errors";
  let circuit = Circuits.register_file_example () in
  let report = Verifier.verify circuit.Circuits.rf_netlist in
  let ev = report.Verifier.r_eval in
  List.iter
    (fun v -> Format.printf "%a@." (fun ppf -> Report.pp_violation_with_values ppf ev) v)
    report.Verifier.r_violations;
  Printf.printf
    "\n  paper: (1) set-up interval of 3.5 ns missed by the full 3.5 ns;\n\
    \         data stable at 11.5 ns, clock starting to rise at 11.5 ns.\n\
    \         (2) output register set-up of 2.5 ns missed by 1.0 ns; data\n\
    \         stable at 47.5 ns, clock starting to rise at 49.0 ns.\n";
  let setups = Verifier.violations_of_kind Check.Setup_violation report in
  Printf.printf "  measured: %d violations, %d set-up violations\n"
    (List.length report.Verifier.r_violations)
    (List.length setups);
  List.iter
    (fun (v : Check.t) ->
      Printf.printf "    set-up required %.1f ns, margin %s, at %.1f ns\n"
        (Timebase.ns_of_ps v.Check.v_required)
        (match v.Check.v_actual with
        | Some a -> Printf.sprintf "%.1f ns (missed by %.1f)" (Timebase.ns_of_ps a)
                      (Timebase.ns_of_ps (v.Check.v_required - a))
        | None -> "none")
        (match v.Check.v_at with Some t -> Timebase.ns_of_ps t | None -> nan))
    setups

(* ---- Figure 1-5: clock-gating hazard -------------------------------------------------- *)

let fig_1_5 () =
  section "FIGURE 1-5: hazard on a gated register clock";
  (* Symbolic detection by the Timing Verifier. *)
  let broken = Circuits.gated_clock_hazard ~enable_stable_at:2.5 () in
  let fixed = Circuits.gated_clock_hazard ~enable_stable_at:1.5 () in
  let hazards gc =
    Verifier.violations_of_kind Check.Hazard (Verifier.verify gc.Circuits.gc_netlist)
  in
  Printf.printf "  Timing Verifier (&A directive):\n";
  Printf.printf "    broken circuit (ENABLE settles at 25 ns): %d hazard(s) [paper: 1]\n"
    (List.length (hazards broken));
  Printf.printf "    fixed circuit  (ENABLE settles at 15 ns): %d hazard(s) [paper: 0]\n"
    (List.length (hazards fixed));
  (* Concrete demonstration with the min/max logic simulator: the 5 ns
     runt pulse of the figure actually appears on REG CLOCK. *)
  let c = Logic_sim.create () in
  let clock = Logic_sim.add_net c "CLOCK" in
  let enable = Logic_sim.add_net c "ENABLE" in
  let reg_clock = Logic_sim.add_net c "REG CLOCK" in
  Logic_sim.add_gate c ~name:"GATE" Logic_sim.And ~dmin:0 ~dmax:0
    ~inputs:[ clock; enable ] ~output:reg_clock;
  (* times in tenths of ns: CLOCK high 20-30 ns, ENABLE reaches 0 at 25 ns *)
  let r =
    Logic_sim.simulate c
      ~stimuli:
        [
          (clock, [ (0, Logic_sim.L0); (200, Logic_sim.L1); (300, Logic_sim.L0) ]);
          (enable, [ (0, Logic_sim.L1); (250, Logic_sim.L0) ]);
        ]
      ~horizon:500
  in
  let pulse = Logic_sim.pulses r.Logic_sim.traces.(reg_clock) ~at_least:Logic_sim.L1 in
  List.iter
    (fun (s, w) ->
      Printf.printf
        "  logic simulation: REG CLOCK pulses high at %.1f ns for %.1f ns [paper: 5 ns runt pulse at 25 ns]\n"
        (float_of_int s /. 10.) (float_of_int w /. 10.))
    pulse;
  let runts =
    Logic_sim.min_pulse_violations r.Logic_sim.traces.(reg_clock) ~level:Logic_sim.L1
      ~min_width:60 ~horizon:500
  in
  Printf.printf "  runt pulses below the 6 ns minimum width: %d\n" runts

(* ---- Figure 2-6: case analysis ----------------------------------------------------------- *)

let fig_2_6 () =
  section "FIGURE 2-6: case analysis removes the false 40 ns path";
  let bp = Circuits.bypass_example () in
  let nl = bp.Circuits.bp_netlist in
  let report0 = Verifier.verify nl in
  let d0 = Circuits.bypass_path_ns report0 bp in
  let cases =
    Case_analysis.parse_exn
      (Printf.sprintf "%s = 0;\n%s = 1;\n" bp.Circuits.bp_control bp.Circuits.bp_control)
  in
  let report1 = Verifier.verify ~cases nl in
  let d1 = Circuits.bypass_path_ns report1 bp in
  Printf.printf "  %-44s %8s %10s\n" "" "paper" "measured";
  Printf.printf "  %-44s %6.0f ns %7.1f ns\n" "INPUT->OUTPUT delay without case analysis"
    40. d0;
  Printf.printf "  %-44s %6.0f ns %7.1f ns\n" "INPUT->OUTPUT delay with case analysis" 30.
    d1;
  List.iteri
    (fun i (c : Verifier.case_result) ->
      Printf.printf "  case %d re-evaluation: %d events (incremental, affected cone only)\n"
        (i + 1) c.Verifier.cr_events)
    report1.Verifier.r_cases;
  emit_bench_metrics "fig-2-6" report1

(* ---- Figure 2-8 / 2-9: separate skew preserves pulse widths ------------------------------- *)

let fig_2_8 () =
  section "FIGURE 2-8/2-9: skew kept separate preserves pulse widths";
  let period = Timebase.ps_of_ns 50.0 in
  let pulse =
    Waveform.of_intervals ~period ~inside:Tvalue.V1 ~outside:Tvalue.V0
      [ (Timebase.ps_of_ns 10., Timebase.ps_of_ns 20.) ]
  in
  (* A 10 ns pulse through a gate with 5.0/10.0 ns delay. *)
  let delayed =
    Waveform.delay ~dmin:(Timebase.ps_of_ns 5.) ~dmax:(Timebase.ps_of_ns 10.) pulse
  in
  let folded = Waveform.materialize delayed in
  let width wf =
    match Waveform.pulse_intervals Tvalue.V1 wf with
    | [ (_, w) ] -> Timebase.ns_of_ps w
    | _ -> nan
  in
  Printf.printf "  input pulse width:                        10.0 ns\n";
  Printf.printf "  skew kept separate (Figure 2-8):          %4.1f ns guaranteed width\n"
    (width delayed);
  Printf.printf "  skew folded into Rise/Fall (Figure 2-9):   %4.1f ns guaranteed width\n"
    (width folded);
  let check wf =
    Check.check_min_pulse_width ~inst:"MPW" ~signal:"Z" ~high:(Timebase.ps_of_ns 8.)
      ~low:0 wf
  in
  Printf.printf
    "  8 ns minimum-width check: %d violation(s) with separate skew [paper: 0],\n\
    \                            %d violation(s) after folding (pessimism avoided)\n"
    (List.length (check delayed))
    (List.length (check folded))

(* ---- Figures 4-1 / 4-2: the correlation problem --------------------------------------------- *)

let fig_4_1 () =
  section "FIGURE 4-1/4-2: clock-skew correlation and the CORR delay";
  let check corr =
    let fb = Circuits.correlation_example ~corr_delay_ns:corr in
    let report = Verifier.verify fb.Circuits.fb_netlist in
    List.length (Verifier.violations_of_kind Check.Hold_violation report)
  in
  Printf.printf
    "  feedback register, 4 ns of clock-buffer skew, min reg+mux delay > hold time:\n";
  Printf.printf
    "    without CORR delay: %d hold violation(s)  [paper: 1, a FALSE error]\n"
    (check 0.);
  Printf.printf
    "    with 4 ns CORR delay in the feedback path: %d  [paper: 0, error suppressed]\n"
    (check 4.)

(* ---- comparison: logic simulation ------------------------------------------------------------ *)

(* A random combinational cone built in both representations. *)
let build_cone ~seed ~n_inputs ~n_gates =
  let rng = Netgen.Rng.create seed in
  (* the shared shape: gate i has kind k and two source node indices *)
  let nodes = n_inputs + n_gates in
  let shape =
    Array.init n_gates (fun i ->
        let n = n_inputs + i in
        let a = Netgen.Rng.int rng n in
        let b = Netgen.Rng.int rng n in
        let kind = Netgen.Rng.int rng 3 in
        (kind, a, b))
  in
  ignore nodes;
  shape

let cone_logic_sim shape ~n_inputs =
  let c = Logic_sim.create () in
  let nets =
    Array.init (n_inputs + Array.length shape) (fun i ->
        Logic_sim.add_net c (Printf.sprintf "n%d" i))
  in
  Array.iteri
    (fun i (kind, a, b) ->
      let k =
        match kind with 0 -> Logic_sim.And | 1 -> Logic_sim.Or | _ -> Logic_sim.Xor
      in
      Logic_sim.add_gate c k ~dmin:10 ~dmax:20 ~inputs:[ nets.(a); nets.(b) ]
        ~output:nets.(n_inputs + i))
    shape;
  (c, nets)

let cone_scald shape ~n_inputs =
  let tb = Timebase.make ~period_ns:200.0 ~clock_unit_ns:10.0 in
  let nl = Netlist.create tb ~default_wire_delay:Delay.zero in
  let nets =
    Array.init
      (n_inputs + Array.length shape)
      (fun i ->
        if i < n_inputs then Netlist.signal nl (Printf.sprintf "n%d .S1-19" i)
        else Netlist.signal nl (Printf.sprintf "n%d" i))
  in
  Array.iteri
    (fun i (kind, a, b) ->
      let fn =
        match kind with 0 -> Primitive.And | 1 -> Primitive.Or | _ -> Primitive.Xor
      in
      ignore
        (Netlist.add nl
           (Primitive.Gate { fn; n_inputs = 2; invert = false; delay = Delay.of_ns 1.0 2.0 })
           ~inputs:[ Netlist.conn nets.(a); Netlist.conn nets.(b) ]
           ~output:(Some nets.(n_inputs + i))))
    shape;
  (nl, nets)

let compare_logicsim () =
  section "COMPARISON: symbolic verification vs exhaustive logic simulation";
  Printf.printf
    "  Complete timing verification by simulation must exercise every input\n\
    \  pattern with a distinct timing path (2^n vectors); the Timing Verifier\n\
    \  covers them in one symbolic cycle (§2.1: savings of exponential order).\n\n";
  Printf.printf "  %6s %10s %12s %12s %10s %12s %10s\n" "inputs" "vectors" "sim events"
    "sim time" "tv events" "tv time" "ratio";
  List.iter
    (fun n ->
      let n_gates = 4 * n in
      let shape = build_cone ~seed:(100 + n) ~n_inputs:n ~n_gates in
      let c, nets = cone_logic_sim shape ~n_inputs:n in
      let inputs = List.init n (fun i -> nets.(i)) in
      let outputs = [ nets.(n + n_gates - 1) ] in
      let ex, sim_t =
        timed (fun () -> Logic_sim.verify_exhaustive c ~inputs ~outputs ~settle:200)
      in
      let nl, _ = cone_scald shape ~n_inputs:n in
      let report, tv_t = timed (fun () -> Verifier.verify nl) in
      Printf.printf "  %6d %10d %12d %10.4f s %10d %10.4f s %9.1fx\n" n
        ex.Logic_sim.vectors_simulated ex.Logic_sim.total_events sim_t
        report.Verifier.r_events tv_t
        (sim_t /. max 1e-9 tv_t))
    [ 4; 6; 8; 10; 12; 14 ]

(* ---- comparison: path analysis ------------------------------------------------------------------ *)

let compare_path () =
  section "COMPARISON: Timing Verifier vs worst-case path searching";
  Printf.printf
    "  Path searching cannot use control-signal values (§1.4.2), so chains of\n\
    \  complementary-select multiplexers produce spurious long paths; the\n\
    \  Timing Verifier with case analysis reports the true delay.\n\n";
  Printf.printf "  %7s %12s %14s %14s %18s\n" "stages" "true delay" "path analysis"
    "tv (cases)" "spurious reports";
  List.iter
    (fun k ->
      let ch = Circuits.bypass_chain ~stages:k in
      let nl = ch.Circuits.ch_netlist in
      (* Path analysis from INPUT to the chain output only. *)
      let pa =
        Path_analysis.analyze ~sources:[ ch.Circuits.ch_input ]
          ~sinks:[ ch.Circuits.ch_output ] nl
      in
      let pa_max =
        match Path_analysis.worst pa with
        | Some p -> Timebase.ns_of_ps p.Path_analysis.p_max
        | None -> nan
      in
      let true_delay = float_of_int (30 * k) in
      (* The designer's limit: anything beyond the true worst case is
         spurious. *)
      let spurious =
        Path_analysis.violations pa ~max_delay:(Timebase.ps_of_ns (true_delay +. 0.5))
      in
      let cases =
        if k <= 4 then Case_analysis.complete_exn ch.Circuits.ch_controls
        else
          [
            List.map (fun c -> (c, Tvalue.V0)) ch.Circuits.ch_controls;
            List.map (fun c -> (c, Tvalue.V1)) ch.Circuits.ch_controls;
          ]
      in
      let report = Verifier.verify ~cases nl in
      let tv = Circuits.chain_path_ns report ch in
      Printf.printf "  %7d %9.0f ns %11.1f ns %11.1f ns %18d\n" k true_delay pa_max tv
        (List.length spurious))
    [ 1; 2; 3; 4; 6 ]

(* ---- extension: rise/fall delays (§4.2.2) ------------------------------------ *)

let ext_rise_fall () =
  section "EXTENSION (§4.2.2): different rising and falling delays";
  Printf.printf
    "  Two nMOS-style inverters (rise 1.0 ns, fall 3.0 ns) in series.  The
    \  envelope model (thesis baseline: use the longer delay) accumulates 2 ns
    \  of false skew per stage; tracking the delays per output edge keeps the
    \  clock pulse exact through any number of inverting levels.

";
  let build delay =
    let nl =
      Netlist.create
        (Timebase.make ~period_ns:50.0 ~clock_unit_ns:6.25)
        ~default_wire_delay:Delay.zero
    in
    let ck = Netlist.signal nl "CK .P(0,0)2-3" in
    let n1 = Netlist.signal nl "N1" in
    let n2 = Netlist.signal nl "N2" in
    ignore
      (Netlist.add nl (Primitive.Buf { invert = true; delay })
         ~inputs:[ Netlist.conn ck ] ~output:(Some n1));
    ignore
      (Netlist.add nl (Primitive.Buf { invert = true; delay })
         ~inputs:[ Netlist.conn n1 ] ~output:(Some n2));
    let ev = Eval.create nl in
    Eval.run ev;
    let wf = Waveform.materialize (Eval.value ev n2) in
    match Waveform.pulse_intervals Tvalue.V1 wf with
    | (_, w) :: _ -> Timebase.ns_of_ps w
    | [] -> nan
  in
  let envelope = build (Delay.of_ns 1.0 3.0) in
  let exact = build (Delay.of_rise_fall_ns ~rise:(1.0, 1.0) ~fall:(3.0, 3.0)) in
  Printf.printf "  input clock pulse width:                    6.25 ns
";
  Printf.printf "  guaranteed width, envelope model:           %.2f ns (false shrink)
"
    envelope;
  Printf.printf "  guaranteed width, per-edge delays:          %.2f ns (exact)
" exact

(* ---- extension: probability-based analysis (§4.2.4) ------------------------------ *)

let ext_prob () =
  section "EXTENSION (§4.2.4): probability-based analysis vs min/max";
  Printf.printf
    "  A chain of n gates, each 1.0/4.0 ns.  The min/max analysis signs off at
    \  the sum of maxima; the DIGSIM-style probabilistic analysis at mean +
    \  3 sigma.  Uncorrelated components run much faster than min/max predicts
    \  (§1.4.1.1); fully correlated components (one production run, §4.2.4)
    \  converge back to the min/max bound -- both thesis claims.

";
  Printf.printf "  %6s %12s %16s %18s
" "n" "min/max" "3-sigma rho=0" "3-sigma rho=1";
  List.iter
    (fun n ->
      let nl =
        Netlist.create
          (Timebase.make ~period_ns:200.0 ~clock_unit_ns:10.0)
          ~default_wire_delay:Delay.zero
      in
      let input = Netlist.signal nl "IN .S0-20" in
      let rec go i current =
        if i = n then current
        else begin
          let next = Netlist.signal nl (Printf.sprintf "N%d" i) in
          ignore
            (Netlist.add nl
               (Primitive.Buf { invert = false; delay = Delay.of_ns 1.0 4.0 })
               ~inputs:[ Netlist.conn current ] ~output:(Some next));
          go (i + 1) next
        end
      in
      let out = go 0 input in
      ignore
        (Netlist.add nl
           (Primitive.Setup_hold_check { setup = 0; hold = 0 })
           ~inputs:[ Netlist.conn out; Netlist.conn input ]
           ~output:None);
      let r0 = Prob_analysis.analyze nl in
      let r1 = Prob_analysis.analyze ~correlation:1.0 nl in
      Printf.printf "  %6d %9.1f ns %13.1f ns %15.1f ns
" n
        (Prob_analysis.minmax_cycle_ns r0)
        (Prob_analysis.predicted_cycle_ns r0 ~z:3.0)
        (Prob_analysis.predicted_cycle_ns r1 ~z:3.0))
    [ 2; 5; 10; 20; 40 ]

(* ---- extension: automatic CORR advisor (§4.2.3) ------------------------------------ *)

let ext_corr () =
  section "EXTENSION (§4.2.3): automatic CORR advisor";
  Printf.printf
    "  The thesis's correlation workaround puts the burden on the designer and
    \  notes an automatic method would be preferable.  The advisor finds every
    \  same-clock feedback path whose minimum delay loses the race against the
    \  clock uncertainty and computes the CORR delay that fixes it.

";
  let fb = Circuits.correlation_example ~corr_delay_ns:0. in
  let advice = Path_analysis.Corr.advise fb.Circuits.fb_netlist in
  List.iter (fun a -> Format.printf "  %a@." Path_analysis.Corr.pp_advice a) advice;
  (match advice with
  | [ a ] ->
    let ns = Timebase.ns_of_ps a.Path_analysis.Corr.a_required_delay in
    let fixed = Circuits.correlation_example ~corr_delay_ns:ns in
    let report = Verifier.verify fixed.Circuits.fb_netlist in
    Printf.printf
      "
  applying the recommended %.1f ns: %d hold violation(s) remain (false
      \  error suppressed without over-delaying, vs the hand-chosen 4.0 ns)
"
      ns
      (List.length (Verifier.violations_of_kind Check.Hold_violation report))
  | _ -> Printf.printf "  unexpected advice count
");
  let clean = Circuits.correlation_example ~corr_delay_ns:4.0 in
  Printf.printf "  on the already-fixed circuit: %d advice(s) [expected 0]
"
    (List.length (Path_analysis.Corr.advise clean.Circuits.fb_netlist))

(* ---- extension: refined interconnection rules (§3.3) ---------------------------- *)

let ext_wire_rule () =
  section "EXTENSION (§3.3): load-dependent interconnection rules";
  Printf.printf
    "  The S-1 used a flat 0.0/2.0 ns default wire delay; the thesis suggests\n\
    \  refined rules charging each load on a run.  On the synthetic design the\n\
    \  per-load rule lengthens heavy fan-out runs and surfaces marginal paths\n\
    \  that the flat rule hides.\n\n";
  let verify_with rule =
    let d = Netgen.generate (Netgen.scaled ~chips:1500 ()) in
    let e = Netgen.to_netlist d in
    let nl = e.Scald_sdl.Expander.e_netlist in
    ignore (Wire_rule.apply nl rule);
    let report = Verifier.verify nl in
    let ev = report.Verifier.r_eval in
    let worst =
      match Slack.worst ev with
      | Some w -> Timebase.ns_of_ps w.Slack.e_slack
      | None -> nan
    in
    (List.length report.Verifier.r_violations, worst)
  in
  let flat_v, flat_s = verify_with Wire_rule.s1_default in
  let loaded_v, loaded_s =
    verify_with
      (Wire_rule.loaded ~base:(Delay.of_ns 0.0 1.0) ~per_load:(Delay.of_ns 0.0 0.7))
  in
  Printf.printf "  %-44s %10s %14s\n" "rule" "violations" "worst slack";
  Printf.printf "  %-44s %10d %11.2f ns\n" "flat 0.0/2.0 ns (the S-1 rule)" flat_v flat_s;
  Printf.printf "  %-44s %10d %11.2f ns\n" "0.0/1.0 ns + 0.0/0.7 ns per load" loaded_v
    loaded_s

(* ---- extension: physical-design delays (§2.5.3, §1.3.2) --------------------------- *)

let ext_physical () =
  section "SUBSTRATE (§2.5.3): computed interconnection delays and reflections";
  Printf.printf
    "  Once the design is packaged, the SCALD Physical Design Subsystem\n\
    \  replaces the default wire rule with delays computed from the actual\n\
    \  runs, and flags reflection-prone runs feeding edge-sensitive inputs\n\
    \  (1.3.2) for the verifier's attention.\n\n";
  let run placement label =
    let d = Netgen.generate (Netgen.scaled ~chips:1500 ()) in
    let e = Netgen.to_netlist d in
    let nl = e.Scald_sdl.Expander.e_netlist in
    let config = { Physical.default_config with Physical.placement } in
    let pr = Physical.apply ~config nl in
    let after = Verifier.verify nl in
    Printf.printf
      "  %-24s %8.0f cm wire %6d t-line runs %4d flagged %6d violations\n" label
      pr.Physical.p_total_wire_cm
      (List.length
         (List.filter (fun r -> r.Physical.r_needs_line_analysis) pr.Physical.p_routes))
      (List.length pr.Physical.p_flagged)
      (List.length after.Verifier.r_violations)
  in
  Printf.printf "  (violations with the designer default rule: 0)\n";
  run Physical.By_id "naive placement:";
  run Physical.By_connectivity "connectivity placement:" 

(* ---- scaling --------------------------------------------------------------------------------------- *)

let scaling () =
  section "SCALING: verify time proportional to events; incremental cases";
  Printf.printf "  %8s %8s %8s %10s %10s %12s %14s\n" "chips" "prims" "events" "verify"
    "ev/prim" "case2 evals" "case2 fraction";
  List.iter
    (fun chips ->
      let d = Netgen.generate (Netgen.scaled ~chips ()) in
      let e = Netgen.to_netlist d in
      let nl = e.Scald_sdl.Expander.e_netlist in
      let ev = Eval.create nl in
      let _, t1 = timed (fun () -> Eval.run ev) in
      let base_events = Eval.events ev in
      let base_evals = Eval.evaluations ev in
      (* Re-evaluate with one primary input forced to 0: only its
         affected cone is recomputed (§2.7). *)
      let case =
        let found = ref [] in
        Netlist.iter_nets nl (fun n ->
            if !found = [] && String.length n.Netlist.n_name >= 3
               && String.sub n.Netlist.n_name 0 3 = "IN "
            then found := [ (n.Netlist.n_id, Tvalue.V0) ]);
        !found
      in
      let _, _ = timed (fun () -> Eval.run ~case ev) in
      let case_evals = Eval.evaluations ev - base_evals in
      Printf.printf "  %8d %8d %8d %8.3f s %10.2f %12d %13.1f%%\n" (Netgen.n_chips d)
        (Netlist.n_insts nl) base_events t1
        (float_of_int base_events /. float_of_int (Netlist.n_insts nl))
        case_evals
        (100. *. float_of_int case_evals /. float_of_int (max 1 base_evals)))
    [ 500; 1000; 2000; 4000; 8000 ]

(* ---- lint throughput --------------------------------------------------------------------------------- *)

let lint_throughput () =
  section "LINT THROUGHPUT: static audit cost vs design size";
  Printf.printf
    "  The constraint lint audits the expanded netlist without evaluating it,\n\
    \  so it must stay cheap relative to verification even on full-size\n\
    \  designs -- the audit is meant to run on every incomplete revision.\n\n";
  Printf.printf "  %8s %8s %8s %10s %12s %10s %12s\n" "chips" "prims" "findings"
    "lint" "nets/s" "verify" "lint/verify";
  List.iter
    (fun chips ->
      let d = Netgen.generate (Netgen.scaled ~chips ()) in
      let e = Netgen.to_netlist d in
      let nl = e.Scald_sdl.Expander.e_netlist in
      let report, lint_t = timed (fun () -> Scald_lint.Lint.audit nl) in
      let _, verify_t = timed (fun () -> Verifier.verify nl) in
      Printf.printf "  %8d %8d %8d %8.3f s %12.0f %8.3f s %11.1f%%\n"
        (Netgen.n_chips d) (Netlist.n_insts nl)
        (List.length report.Scald_lint.Lint_report.findings)
        lint_t
        (float_of_int report.Scald_lint.Lint_report.nets_audited
        /. max 1e-9 lint_t)
        verify_t
        (100. *. lint_t /. max 1e-9 verify_t))
    [ 500; 1000; 2000; 4000 ]

(* ---- instrumentation overhead ------------------------------------------------------------------------- *)

(* The observability contract: the always-on counters plus an installed
   probe (spans + causal ring) must not change the verifier's complexity
   class — the bench holds the full instrumented run to < 5% over the
   bare run on the netgen workload.  Both variants are repeated and the
   best time kept, which cancels most scheduler noise. *)
let obs_overhead () =
  section "INSTRUMENTATION OVERHEAD: counters + probe vs bare verify";
  let d = Netgen.generate (Netgen.scaled ~chips:2000 ()) in
  let e = Netgen.to_netlist d in
  let nl = e.Scald_sdl.Expander.e_netlist in
  let best f =
    let rec go n acc =
      if n = 0 then acc
      else
        let _, t = timed f in
        go (n - 1) (Float.min acc t)
    in
    go 5 infinity
  in
  (* warm up allocators and caches on a run that is not measured *)
  ignore (Verifier.verify nl);
  let t_bare = best (fun () -> ignore (Verifier.verify nl)) in
  let obs = Scald_obs.Obs.create ~trace_buffer:4096 () in
  let t_obs =
    best (fun () -> ignore (Verifier.verify ~probe:(Scald_obs.Obs.probe obs) nl))
  in
  let overhead = 100. *. ((t_obs /. Float.max 1e-9 t_bare) -. 1.) in
  let report = Verifier.verify ~probe:(Scald_obs.Obs.probe obs) nl in
  Printf.printf "  %-44s %10.4f s\n" "bare verify (no probe, counters only)" t_bare;
  Printf.printf "  %-44s %10.4f s\n" "instrumented verify (spans + event ring)" t_obs;
  Printf.printf "  %-44s %+9.1f %%\n" "overhead" overhead;
  Printf.printf "  %-44s %10d\n" "events recorded in ring"
    (match Scald_obs.Obs.ring obs with
    | Some r -> Scald_obs.Causal.recorded r
    | None -> 0);
  let budget = 5.0 in
  Printf.printf "\n  overhead budget %.1f%%: %s\n" budget
    (if overhead < budget then "PASS" else "FAIL");
  emit_bench_metrics "obs-overhead"
    ~phases:[ ("verify_bare", t_bare); ("verify_instrumented", t_obs) ]
    report;
  if overhead >= budget then exit 1

(* ---- parallel case evaluation ------------------------------------------------------------------------- *)

(* Wall-clock timing: [Sys.time] sums CPU time over every domain, which
   would report a parallel run as *slower* by construction. *)
let wall_timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* Reports must agree field-for-field before any speedup is worth
   reporting — a fast wrong answer is not an optimisation. *)
let reports_equal (a : Verifier.report) (b : Verifier.report) =
  let case_equal (x : Verifier.case_result) (y : Verifier.case_result) =
    x.Verifier.cr_case = y.Verifier.cr_case
    && x.Verifier.cr_violations = y.Verifier.cr_violations
    && x.Verifier.cr_events = y.Verifier.cr_events
    && x.Verifier.cr_evaluations = y.Verifier.cr_evaluations
    && x.Verifier.cr_converged = y.Verifier.cr_converged
  in
  a.Verifier.r_events = b.Verifier.r_events
  && a.Verifier.r_evaluations = b.Verifier.r_evaluations
  && a.Verifier.r_violations = b.Verifier.r_violations
  && a.Verifier.r_converged = b.Verifier.r_converged
  && a.Verifier.r_unasserted = b.Verifier.r_unasserted
  && a.Verifier.r_obs = b.Verifier.r_obs
  && List.length a.Verifier.r_cases = List.length b.Verifier.r_cases
  && List.for_all2 case_equal a.Verifier.r_cases b.Verifier.r_cases

let par_speedup () =
  section "PARALLEL CASE EVALUATION: -j 4 vs sequential, 16-case workload";
  let d = Netgen.generate (Netgen.scaled ~chips:2000 ()) in
  let e = Netgen.to_netlist d in
  let nl = e.Scald_sdl.Expander.e_netlist in
  (* 16 cases: complete case analysis over four of the design's primary
     inputs (the fig-2-6 workload shape, at netgen scale). *)
  let inputs =
    let found = ref [] in
    Netlist.iter_nets nl (fun n ->
        if List.length !found < 4
           && String.length n.Netlist.n_name >= 3
           && String.sub n.Netlist.n_name 0 3 = "IN "
        then found := n.Netlist.n_name :: !found);
    List.rev !found
  in
  let cases = Case_analysis.complete_exn inputs in
  Printf.printf "  workload: %d chips, %d cases over %s\n"
    (Netgen.n_chips d) (List.length cases) (String.concat ", " inputs);
  let best jobs =
    let rec go n acc =
      if n = 0 then acc
      else
        let _, t = wall_timed (fun () -> ignore (Verifier.verify ~cases ~jobs nl)) in
        go (n - 1) (Float.min acc t)
    in
    go 3 infinity
  in
  (* reports compared once, un-timed; timing runs are then pure *)
  let r1 = Verifier.verify ~cases ~jobs:1 nl in
  let r4 = Verifier.verify ~cases ~jobs:4 nl in
  let equal = reports_equal r1 r4 in
  Printf.printf "  report identical to sequential at -j 4: %s\n"
    (if equal then "PASS" else "FAIL");
  let t1 = best 1 in
  let t4 = best 4 in
  let speedup = t1 /. Float.max 1e-9 t4 in
  Printf.printf "  %-44s %10.4f s\n" "sequential (-j 1), best of 3" t1;
  Printf.printf "  %-44s %10.4f s\n" "parallel (-j 4), best of 3" t4;
  Printf.printf "  %-44s %9.2fx\n" "speedup" speedup;
  emit_bench_metrics "par-speedup"
    ~phases:[ ("verify_j1", t1); ("verify_j4", t4) ]
    r4;
  if not equal then exit 1;
  (* The speedup gate only binds where 4 domains can actually run at
     once; the equality gate above binds everywhere. *)
  let cores = Par.available () in
  if cores >= 4 then begin
    Printf.printf "\n  speedup budget > 1.00x on %d cores: %s\n" cores
      (if speedup > 1.0 then "PASS" else "FAIL");
    if speedup <= 1.0 then exit 1
  end
  else
    Printf.printf "\n  speedup gate skipped: only %d core(s) available\n" cores

(* ---- scheduler speedup -------------------------------------------------------------------------------- *)

(* Levelized scheduling cannot change the verdicts, only how much work
   it takes to reach them: the two disciplines must agree on every
   violation (and its position in the listing), every per-case verdict
   and the convergence flags, while the evaluation count — the thing the
   level order exists to cut — must drop by at least 30% on the largest
   scaling circuit.  Counters and event totals differ between modes by
   design, so the cross-mode comparison is verdict-based; the
   within-mode -j 1 / -j 4 comparison stays bit-exact. *)
let verdicts_equal (a : Verifier.report) (b : Verifier.report) =
  let case_equal (x : Verifier.case_result) (y : Verifier.case_result) =
    x.Verifier.cr_case = y.Verifier.cr_case
    && x.Verifier.cr_violations = y.Verifier.cr_violations
    && x.Verifier.cr_converged = y.Verifier.cr_converged
  in
  a.Verifier.r_violations = b.Verifier.r_violations
  && a.Verifier.r_converged = b.Verifier.r_converged
  && a.Verifier.r_unasserted = b.Verifier.r_unasserted
  && List.length a.Verifier.r_cases = List.length b.Verifier.r_cases
  && List.for_all2 case_equal a.Verifier.r_cases b.Verifier.r_cases

let sched_speedup () =
  section "SCHEDULER: levelized evaluation vs FIFO relaxation, 8000-chip design";
  let d = Netgen.generate (Netgen.scaled ~chips:8000 ()) in
  let e = Netgen.to_netlist d in
  let nl = e.Scald_sdl.Expander.e_netlist in
  let inputs =
    let found = ref [] in
    Netlist.iter_nets nl (fun n ->
        if List.length !found < 4
           && String.length n.Netlist.n_name >= 3
           && String.sub n.Netlist.n_name 0 3 = "IN "
        then found := n.Netlist.n_name :: !found);
    List.rev !found
  in
  let cases = Case_analysis.complete_exn inputs in
  Printf.printf "  workload: %d chips, %d primitives, %d cases over %s\n"
    (Netgen.n_chips d) (Netlist.n_insts nl) (List.length cases)
    (String.concat ", " inputs);
  let r_fifo, t_fifo =
    wall_timed (fun () -> Verifier.verify ~cases ~jobs:1 ~sched:Eval.Fifo nl)
  in
  let r_level, t_level =
    wall_timed (fun () -> Verifier.verify ~cases ~jobs:1 ~sched:Eval.Level nl)
  in
  let ev_fifo = r_fifo.Verifier.r_evaluations in
  let ev_level = r_level.Verifier.r_evaluations in
  let reduction =
    100. *. (1. -. (float_of_int ev_level /. float_of_int (max 1 ev_fifo)))
  in
  Printf.printf "  %-44s %12d %10.4f s\n" "evaluations, FIFO relaxation" ev_fifo t_fifo;
  Printf.printf "  %-44s %12d %10.4f s\n" "evaluations, levelized" ev_level t_level;
  Printf.printf "  %-44s %11.1f %%\n" "evaluation reduction" reduction;
  Printf.printf "  %-44s %12d\n" "schedule levels"
    r_level.Verifier.r_obs.Verifier.os_sched_levels;
  Printf.printf "  %-44s %12d\n" "strongly connected components"
    r_level.Verifier.r_obs.Verifier.os_sccs;
  Printf.printf "  %-44s %12d / %d\n" "input-cache hits / misses"
    r_level.Verifier.r_obs.Verifier.os_cache_hits
    r_level.Verifier.r_obs.Verifier.os_cache_misses;
  let agree = verdicts_equal r_fifo r_level in
  Printf.printf "  verdicts identical across disciplines: %s\n"
    (if agree then "PASS" else "FAIL");
  (* Each discipline must stay deterministic across domain counts. *)
  let r_level4 = Verifier.verify ~cases ~jobs:4 ~sched:Eval.Level nl in
  let r_fifo4 = Verifier.verify ~cases ~jobs:4 ~sched:Eval.Fifo nl in
  let det_level = reports_equal r_level r_level4 in
  let det_fifo = reports_equal r_fifo r_fifo4 in
  Printf.printf "  level report bit-identical at -j 4: %s\n"
    (if det_level then "PASS" else "FAIL");
  Printf.printf "  fifo report bit-identical at -j 4: %s\n"
    (if det_fifo then "PASS" else "FAIL");
  emit_bench_metrics "sched-speedup"
    ~phases:[ ("verify_fifo", t_fifo); ("verify_level", t_level) ]
    r_level;
  let budget = 30.0 in
  Printf.printf "\n  evaluation-reduction budget >= %.0f%%: %s\n" budget
    (if reduction >= budget then "PASS" else "FAIL");
  if (not agree) || (not det_level) || (not det_fifo) || reduction < budget then
    exit 1

(* ---- flow pruning ------------------------------------------------------------------------------------- *)

(* Stable-cone pruning (doc/FLOW.md) freezes the instances whose entire
   input support the static signal-class analysis proved Const/Stable —
   checkers above all, which the incremental evaluator otherwise
   re-evaluates on every case.  The savings must be real (>= 15% fewer
   evaluations on the multi-case workload) and free (identical
   verdicts, and still bit-identical across job counts). *)
let flow_prune () =
  section "FLOW PRUNING: stable-cone freezing vs full evaluation, 8000-chip design";
  let d = Netgen.generate (Netgen.scaled ~chips:8000 ()) in
  let e = Netgen.to_netlist d in
  let nl = e.Scald_sdl.Expander.e_netlist in
  (* 256 cases (complete over 8 inputs): the first run evaluates every
     instance once by design, so the freezing only pays off across the
     case sweep — a deep sweep is exactly the thesis's workload (§2.7). *)
  let inputs =
    let found = ref [] in
    Netlist.iter_nets nl (fun n ->
        if List.length !found < 8
           && String.length n.Netlist.n_name >= 3
           && String.sub n.Netlist.n_name 0 3 = "IN "
        then found := n.Netlist.n_name :: !found);
    List.rev !found
  in
  let cases = Case_analysis.complete_exn inputs in
  Printf.printf "  workload: %d chips, %d primitives, %d cases over %s\n"
    (Netgen.n_chips d) (Netlist.n_insts nl) (List.length cases)
    (String.concat ", " inputs);
  let r_off, t_off =
    wall_timed (fun () -> Verifier.verify ~cases ~jobs:1 ~prune:false nl)
  in
  let r_on, t_on = wall_timed (fun () -> Verifier.verify ~cases ~jobs:1 nl) in
  let ev_off = r_off.Verifier.r_evaluations in
  let ev_on = r_on.Verifier.r_evaluations in
  let reduction =
    100. *. (1. -. (float_of_int ev_on /. float_of_int (max 1 ev_off)))
  in
  let o = r_on.Verifier.r_obs in
  Printf.printf "  %-44s %12d %10.4f s\n" "evaluations, pruning off" ev_off t_off;
  Printf.printf "  %-44s %12d %10.4f s\n" "evaluations, pruning on" ev_on t_on;
  Printf.printf "  %-44s %11.1f %%\n" "evaluation reduction" reduction;
  Printf.printf "  %-44s %12d of %d\n" "instances frozen after the first run"
    o.Verifier.os_pruned_insts (Netlist.n_insts nl);
  Printf.printf "  %-44s %12d\n" "evaluations skipped on frozen instances"
    o.Verifier.os_pruned_evals;
  Printf.printf "  net classes: %d const, %d stable, %d clock, %d data, %d unknown\n"
    o.Verifier.os_nets_const o.Verifier.os_nets_stable o.Verifier.os_nets_clock
    o.Verifier.os_nets_data o.Verifier.os_nets_unknown;
  let agree = verdicts_equal r_off r_on in
  Printf.printf "  verdicts identical with pruning on vs off: %s\n"
    (if agree then "PASS" else "FAIL");
  let det = reports_equal r_on (Verifier.verify ~cases ~jobs:4 nl) in
  Printf.printf "  pruned report bit-identical at -j 4: %s\n"
    (if det then "PASS" else "FAIL");
  emit_bench_metrics "flow-prune"
    ~phases:[ ("verify_noprune", t_off); ("verify_prune", t_on) ]
    r_on;
  let budget = 15.0 in
  Printf.printf "\n  evaluation-reduction budget >= %.0f%%: %s\n" budget
    (if reduction >= budget then "PASS" else "FAIL");
  if (not agree) || (not det) || reduction < budget then exit 1

(* ---- window pruning ----------------------------------------------------------------------------------- *)

(* Window pruning (doc/WINDOWS.md) proves checkers clean from static
   arrival windows and serves their verdicts without evaluating them —
   before the first run, where flow pruning cannot reach.  The gate is
   on checker-kind evaluations (the work the proofs replace): at least
   20% fewer with window pruning on, for free (identical verdicts, and
   still bit-identical across job counts). *)
let window_prune_bench () =
  section "WINDOW PRUNING: static checker proofs vs dynamic checking, 8000-chip design";
  let d = Netgen.generate (Netgen.scaled ~chips:8000 ()) in
  let e = Netgen.to_netlist d in
  let nl = e.Scald_sdl.Expander.e_netlist in
  let inputs =
    let found = ref [] in
    Netlist.iter_nets nl (fun n ->
        if List.length !found < 8
           && String.length n.Netlist.n_name >= 3
           && String.sub n.Netlist.n_name 0 3 = "IN "
        then found := n.Netlist.n_name :: !found);
    List.rev !found
  in
  let cases = Case_analysis.complete_exn inputs in
  let n_checkers =
    let c = ref 0 in
    Netlist.iter_insts nl (fun i ->
        if Primitive.is_checker i.Netlist.i_prim then incr c);
    !c
  in
  Printf.printf "  workload: %d chips, %d primitives (%d checkers), %d cases over %s\n"
    (Netgen.n_chips d) (Netlist.n_insts nl) n_checkers (List.length cases)
    (String.concat ", " inputs);
  let checker_evals (r : Verifier.report) =
    List.fold_left
      (fun acc (k, n) ->
        if
          List.mem k
            [ "SETUP HOLD CHK"; "SETUP RISE HOLD FALL CHK"; "MIN PULSE WIDTH" ]
        then acc + n
        else acc)
      0 r.Verifier.r_obs.Verifier.os_evals_by_kind
  in
  let r_off, t_off =
    wall_timed (fun () -> Verifier.verify ~cases ~jobs:1 ~window_prune:false nl)
  in
  let r_on, t_on = wall_timed (fun () -> Verifier.verify ~cases ~jobs:1 nl) in
  let ck_off = checker_evals r_off in
  let ck_on = checker_evals r_on in
  let reduction =
    100. *. (1. -. (float_of_int ck_on /. float_of_int (max 1 ck_off)))
  in
  let o = r_on.Verifier.r_obs in
  Printf.printf "  %-44s %12d %10.4f s\n" "checker evaluations, window pruning off"
    ck_off t_off;
  Printf.printf "  %-44s %12d %10.4f s\n" "checker evaluations, window pruning on"
    ck_on t_on;
  Printf.printf "  %-44s %11.1f %%\n" "checker-evaluation reduction" reduction;
  Printf.printf "  %-44s %12d of %d\n" "checkers statically proven clean"
    o.Verifier.os_window_insts n_checkers;
  Printf.printf "  %-44s %12d\n" "evaluations skipped on window-frozen checkers"
    o.Verifier.os_window_evals;
  Printf.printf "  %-44s %12d\n" "verdicts served statically"
    o.Verifier.os_window_checks;
  let agree = verdicts_equal r_off r_on in
  Printf.printf "  verdicts identical with window pruning on vs off: %s\n"
    (if agree then "PASS" else "FAIL");
  let det = reports_equal r_on (Verifier.verify ~cases ~jobs:4 nl) in
  Printf.printf "  pruned report bit-identical at -j 4: %s\n"
    (if det then "PASS" else "FAIL");
  emit_bench_metrics "window-prune"
    ~phases:[ ("verify_nowindow", t_off); ("verify_window", t_on) ]
    ~extra:
      [ ("win_checker_evals_off", ck_off);
        ("win_checker_evals_on", ck_on);
        ("win_reduction_pct", int_of_float reduction) ]
    r_on;
  let budget = 20.0 in
  Printf.printf "\n  checker-evaluation-reduction budget >= %.0f%%: %s\n" budget
    (if reduction >= budget then "PASS" else "FAIL");
  if (not agree) || (not det) || reduction < budget then exit 1

(* ---- incremental re-verify ---------------------------------------------------------------------------- *)

(* The incremental service (doc/SERVICE.md) answers a 1-net delay edit
   by re-verifying only the edit's forward cone with everything outside
   frozen.  On the S-1-scale generated design the cone of a typical
   internal net is a few dozen nets out of thousands, so the re-verify
   must be at least 10x cheaper than the cold run in BOTH evaluations
   and wall-clock — while producing the identical error listing. *)
let incr_reverify () =
  section "INCREMENTAL RE-VERIFY: 1-net delay edit vs cold run, S-1-scale design";
  let module Session = Scald_incr.Session in
  let module Edit = Scald_incr.Edit in
  let fresh () =
    (Netgen.to_netlist (Netgen.generate Netgen.default_config))
      .Scald_sdl.Expander.e_netlist
  in
  let nl = fresh () in
  (* pick, deterministically, the sampled driven net with the smallest
     forward cone — the shape of a real designer edit: local rework,
     not a clock-tree change *)
  let cone_size nl seed =
    let inst_seen = Array.make (max 1 (Netlist.n_insts nl)) false in
    let net_seen = Array.make (max 1 (Netlist.n_nets nl)) false in
    let q = Queue.create () in
    let add id =
      if not inst_seen.(id) then begin
        inst_seen.(id) <- true;
        Queue.add id q
      end
    in
    net_seen.(seed) <- true;
    Netlist.iter_fanout (Netlist.net nl seed) add;
    while not (Queue.is_empty q) do
      match (Netlist.inst nl (Queue.take q)).Netlist.i_output with
      | None -> ()
      | Some o ->
        if not net_seen.(o) then begin
          net_seen.(o) <- true;
          Netlist.iter_fanout (Netlist.net nl o) add
        end
    done;
    Array.fold_left (fun a b -> if b then a + 1 else a) 0 net_seen
  in
  let candidates =
    let all = ref [] in
    Netlist.iter_nets nl (fun n ->
        if n.Netlist.n_driver <> None && Netlist.fanout_count n > 0 then
          all := n.Netlist.n_id :: !all);
    let all = Array.of_list (List.rev !all) in
    let step = max 1 (Array.length all / 64) in
    List.init (Array.length all / step) (fun i -> all.(i * step))
  in
  let victim =
    List.fold_left
      (fun best id ->
        let sz = cone_size nl id in
        match best with
        | Some (_, best_sz) when best_sz <= sz -> best
        | _ -> Some (id, sz))
      None candidates
    |> Option.get |> fst
  in
  let signal = (Netlist.net nl victim).Netlist.n_name in
  let edit = Edit.Wire_delay { signal; delay = Some (Delay.of_ns 0.3 2.7) } in
  Printf.printf "  workload: %d primitives, %d nets; edit: %s\n"
    (Netlist.n_insts nl) (Netlist.n_nets nl)
    (Format.asprintf "%a" Edit.pp edit);
  (* cold baseline: a fresh build with the same edit applied up front *)
  let cold_nl = fresh () in
  ignore (Edit.apply cold_nl edit);
  let r_cold, t_cold = wall_timed (fun () -> Verifier.verify ~jobs:1 cold_nl) in
  (* incremental: load once (not timed — it IS a cold verify), then
     stage the edit and time only the re-verify *)
  let s = Session.load nl in
  Session.stage s edit;
  let (r_incr, st), t_incr = wall_timed (fun () -> Session.reverify s) in
  let ev_cold = r_cold.Verifier.r_evaluations in
  let ev_incr = st.Session.st_evaluations in
  let ev_x = float_of_int ev_cold /. float_of_int (max 1 ev_incr) in
  let wall_x = t_cold /. (t_incr +. epsilon_float) in
  Printf.printf "  %-44s %12d %10.4f s\n" "cold verify: evaluations, wall" ev_cold t_cold;
  Printf.printf "  %-44s %12d %10.4f s\n" "incremental re-verify: evaluations, wall"
    ev_incr t_incr;
  Printf.printf "  %-44s %12d of %d (%d reused)\n" "nets dirtied"
    st.Session.st_dirtied_nets (Netlist.n_nets nl) st.Session.st_reused_nets;
  Printf.printf "  %-44s %12d\n" "violation-cache verdicts reused"
    st.Session.st_warm_hits;
  Printf.printf "  %-44s %11.1fx\n" "evaluation reduction" ev_x;
  Printf.printf "  %-44s %11.1fx\n" "wall-clock reduction" wall_x;
  let agree = verdicts_equal r_cold r_incr in
  let listing r =
    Format.asprintf "@.%a@." Report.pp_violations r.Verifier.r_violations
  in
  let bytes_equal = listing r_cold = listing r_incr in
  Printf.printf "  verdicts identical to the cold run: %s\n"
    (if agree then "PASS" else "FAIL");
  Printf.printf "  listing byte-identical to the cold run: %s\n"
    (if bytes_equal then "PASS" else "FAIL");
  emit_bench_metrics "incr-reverify"
    ~phases:[ ("verify_cold", t_cold); ("reverify_incr", t_incr) ]
    r_incr;
  let budget = 10.0 in
  Printf.printf "\n  evaluation speedup >= %.0fx: %s\n" budget
    (if ev_x >= budget then "PASS" else "FAIL");
  Printf.printf "  wall-clock speedup >= %.0fx: %s\n" budget
    (if wall_x >= budget then "PASS" else "FAIL");
  if (not agree) || (not bytes_equal) || ev_x < budget || wall_x < budget then
    exit 1

(* ---- multi-corner packed evaluation ------------------------------------------------------------------- *)

(* Corner-vectorized evaluation (doc/CORNERS.md) must beat re-running
   the verifier once per corner by a wide margin — the shared traversal,
   memo caches and lane canonicalization are the whole point.  Gates:
   the packed k=4 run stays under 2x ONE single-corner run (so the
   marginal corner costs well under a full run), the reference corner's
   verdicts are identical to a plain run, every other corner's verdicts
   match a dedicated single-corner run at that corner, and the packed
   report stays bit-identical across job counts.  Events and counters
   legitimately differ between packed and sequential (lane changes are
   events), so cross-shape comparisons are verdict-based. *)
let corner_speedup () =
  section "MULTI-CORNER: 4 corners packed in one traversal vs 4 sequential runs";
  let d = Netgen.generate (Netgen.scaled ~chips:2000 ()) in
  let e = Netgen.to_netlist d in
  let nl = e.Scald_sdl.Expander.e_netlist in
  (* A full case analysis (32 cases) over five mode-style inputs: §2.7
     case signals are select/mode bits that reconfigure a slice of the
     design per case, so pick the IN nets with the smallest transitive
     fanout cones.  Per-case lane work hits the generation-keyed memos
     (dirty cones only), and the one-time k-lane first pass amortizes
     across the sweep exactly as in a production case sweep. *)
  let cone_size start =
    let seen_i = Hashtbl.create 64 and seen_n = Hashtbl.create 64 in
    let rec visit_net id =
      if not (Hashtbl.mem seen_n id) then begin
        Hashtbl.add seen_n id ();
        Netlist.iter_fanout (Netlist.net nl id) visit_inst
      end
    and visit_inst iid =
      if not (Hashtbl.mem seen_i iid) then begin
        Hashtbl.add seen_i iid ();
        match (Netlist.inst nl iid).Netlist.i_output with
        | Some o -> visit_net o
        | None -> ()
      end
    in
    visit_net start;
    Hashtbl.length seen_i
  in
  let inputs =
    let found = ref [] in
    Netlist.iter_nets nl (fun n ->
        if
          String.length n.Netlist.n_name >= 3
          && String.sub n.Netlist.n_name 0 3 = "IN "
        then found := (cone_size n.Netlist.n_id, n.Netlist.n_name) :: !found);
    List.sort compare !found |> List.filteri (fun i _ -> i < 5)
    |> List.map snd
  in
  let cases = Case_analysis.complete_exn inputs in
  let corners = Corner.of_spec "typ,slow,fast,hot=1.4/1.2" in
  let single c = Array.sub corners c 1 in
  Printf.printf "  workload: %d chips, %d primitives, %d cases; corners %s\n"
    (Netgen.n_chips d) (Netlist.n_insts nl) (List.length cases)
    (Corner.table_to_string corners);
  (* Timing first, on a pristine heap: the correctness verifies below
     retain whole reports (each holding an evaluator), and a packed run
     timed behind megabytes of live state pays their GC bill.  Each
     series starts from a compacted heap so single, sequential and
     packed face the same allocator. *)
  let best f =
    Gc.compact ();
    let rec go n acc =
      if n = 0 then acc
      else
        let _, t = wall_timed f in
        go (n - 1) (Float.min acc t)
    in
    go 3 infinity
  in
  let t_single =
    best (fun () -> ignore (Verifier.verify ~cases ~jobs:1 ~corners:(single 0) nl))
  in
  let t_seq4 =
    best (fun () ->
        for c = 0 to 3 do
          ignore (Verifier.verify ~cases ~jobs:1 ~corners:(single c) nl)
        done)
  in
  let t_packed = best (fun () -> ignore (Verifier.verify ~cases ~jobs:1 ~corners nl)) in
  (* verdicts compared un-timed; every verify names its corner table
     explicitly because the table travels on the (shared) netlist *)
  let r_plain = Verifier.verify ~cases ~jobs:1 ~corners:(single 0) nl in
  let r_packed = Verifier.verify ~cases ~jobs:1 ~corners nl in
  let ref_ok = verdicts_equal r_plain r_packed in
  Printf.printf "  reference-corner verdicts identical to plain run: %s\n"
    (if ref_ok then "PASS" else "FAIL");
  let per_corner_ok =
    List.for_all
      (fun c ->
        let r_c = Verifier.verify ~cases ~jobs:1 ~corners:(single c) nl in
        let packed_c = List.nth r_packed.Verifier.r_corners c in
        packed_c.Verifier.co_violations = r_c.Verifier.r_violations)
      [ 1; 2; 3 ]
  in
  Printf.printf "  per-corner verdicts match dedicated runs: %s\n"
    (if per_corner_ok then "PASS" else "FAIL");
  let det =
    reports_equal r_packed (Verifier.verify ~cases ~jobs:4 ~corners nl)
  in
  Printf.printf "  packed report bit-identical at -j 4: %s\n"
    (if det then "PASS" else "FAIL");
  let o = r_packed.Verifier.r_obs in
  Printf.printf "  %-44s %10.4f s\n" "single corner (typ), best of 3" t_single;
  Printf.printf "  %-44s %10.4f s\n" "4 sequential single-corner runs" t_seq4;
  Printf.printf "  %-44s %10.4f s\n" "packed 4-corner run" t_packed;
  Printf.printf "  %-44s %9.2fx\n" "speedup vs sequential"
    (t_seq4 /. Float.max 1e-9 t_packed);
  Printf.printf "  %-44s %9.2fx\n" "cost vs one corner"
    (t_packed /. Float.max 1e-9 t_single);
  Printf.printf "  %-44s %12d\n" "lane outputs shared with the reference"
    o.Verifier.os_corner_lanes_shared;
  Printf.printf "  %-44s %12d\n" "lane evaluations skipped"
    o.Verifier.os_corner_evals_saved;
  emit_bench_metrics "corner-speedup"
    ~phases:
      [ ("verify_single", t_single); ("verify_seq4", t_seq4);
        ("verify_packed", t_packed) ]
    r_packed;
  let budget = 2.0 in
  Printf.printf "\n  packed cost budget < %.1fx one single-corner run: %s\n" budget
    (if t_packed < budget *. t_single then "PASS" else "FAIL");
  if (not ref_ok) || (not per_corner_ok) || (not det)
     || t_packed >= budget *. t_single
  then exit 1

(* ---- service telemetry overhead ----------------------------------------------------------------------- *)

(* Same contract as [obs_overhead], one layer up: the serve loop's
   per-request telemetry (latency histograms, trace lanes, span
   consumption, GC snapshots) must stay under 5% against an identical
   scripted session with telemetry off.  The script is the CI smoke's
   shape — one cold load of the s1 subset, then a re-verify churn —
   driven through [handle_line] so the measured path is exactly the
   daemon's.  The opt-in exporters (--prom, --log) are file-I/O sinks
   a deployment chooses deliberately; the gate covers the measurement
   machinery every serve run pays. *)
let telemetry_overhead () =
  section "SERVICE TELEMETRY OVERHEAD: default vs --no-telemetry serve session";
  (* Three wide-bus edits per delta dirty most of the pipeline, so
     each re-verify does an honest slab of evaluation work — the
     telemetry cost under test is per-request and fixed. *)
  let edit =
    {|{"op":"delta","edits":[{"edit":"wire_delay","signal":"PC NEXT<0:15>","min_ns":0.5,"max_ns":48.0},{"edit":"wire_delay","signal":"IR<0:31>","min_ns":0.3,"max_ns":3.0},{"edit":"wire_delay","signal":"ALU B<0:31>","min_ns":0.3,"max_ns":3.0}]}|}
  in
  let revert =
    {|{"op":"delta","edits":[{"edit":"wire_delay","signal":"PC NEXT<0:15>","delay":null},{"edit":"wire_delay","signal":"IR<0:31>","delay":null},{"edit":"wire_delay","signal":"ALU B<0:31>","delay":null}]}|}
  in
  let verify = {|{"op":"verify"}|} in
  let churn_requests =
    List.concat (List.init 100 (fun _ -> [ edit; verify; revert; verify ]))
  in
  let feed t line =
    let resp, _ = Scald_incr.Serve.handle_line t line in
    if not (String.length resp > 11 && String.sub resp 0 11 = {|{"ok":true,|})
    then failwith ("telemetry-overhead: request failed: " ^ resp)
  in
  (* The cold load is identical under both variants and an order of
     magnitude noisier than the steady state (parse + expand GC
     churn), so it runs untimed; the timed region is the re-verify
     churn — the path a long-lived daemon actually spends its life
     on.  On/off batches alternate so clock drift and cache warmth hit
     both sides alike. *)
  let session ~telemetry =
    let t = Scald_incr.Serve.create ~telemetry () in
    feed t
      {|{"op":"load","file":"examples/s1_subset.sdl","cases_file":"examples/s1_subset.cases"}|};
    t
  in
  let churn t () = List.iter (feed t) churn_requests in
  let s_on = session ~telemetry:true and s_off = session ~telemetry:false in
  churn s_on ();
  churn s_off ();
  let t_on = ref infinity and t_off = ref infinity in
  for rep = 1 to 15 do
    (* alternate which variant goes first so neither always pays the
       just-interrupted caches *)
    let order =
      if rep mod 2 = 0 then [ (s_on, t_on); (s_off, t_off) ]
      else [ (s_off, t_off); (s_on, t_on) ]
    in
    List.iter
      (fun (s, best) ->
        let _, b = wall_timed (churn s) in
        best := Float.min !best b)
      order
  done;
  let t_on = !t_on and t_off = !t_off in
  let overhead = 100. *. ((t_on /. Float.max 1e-9 t_off) -. 1.) in
  Printf.printf "  %-44s %10.4f s\n" "re-verify churn (400 reqs), telemetry off"
    t_off;
  Printf.printf "  %-44s %10.4f s\n" "re-verify churn (400 reqs), telemetry on"
    t_on;
  Printf.printf "  %-44s %+9.1f %%\n" "overhead" overhead;
  feed s_on {|{"op":"stats"}|};
  (match Scald_incr.Store.latest (Scald_incr.Serve.store s_on) with
  | Some s ->
    emit_bench_metrics "telemetry-overhead"
      ~phases:[ ("serve_off", t_off); ("serve_on", t_on) ]
      (Scald_incr.Session.report s)
  | None -> ());
  let budget = 5.0 in
  Printf.printf "\n  overhead budget %.1f%%: %s\n" budget
    (if overhead < budget then "PASS" else "FAIL");
  if overhead >= budget then exit 1

(* ---- capacity: arena netlist at 100k/1M primitives ---------------------------------- *)

(* Measures the representation itself — generate, stream-expand into the
   arena netlist, relax to a fixpoint — and gates bytes-per-primitive
   and evals/sec against the pre-arena pointer-heavy layout (measured at
   the same smoke scale with the identical flow, commit 36945d4).  The
   memory figures are snapshotted after the eval phase and before the
   checker pass on purpose: checker bookkeeping is identical under both
   layouts and would only dilute the ratio under test.  Peak RSS is the
   honest number here — OCaml 5 never returns pool memory to the OS, so
   any load-phase transient is carried to the end of the process.

   Scale comes from CAPACITY_CHIPS (default 77_000 chips, ~100k
   primitives — the CI smoke).  The manual 1M gate documented in
   doc/CAPACITY.md is CAPACITY_CHIPS=790000: the gates below switch to
   report-only, and the run must load, converge and verify clean. *)
let capacity () =
  section "CAPACITY: arena netlist + contiguous waveforms at scale";
  let smoke_chips = 77_000 in
  let chips =
    try int_of_string (Sys.getenv "CAPACITY_CHIPS") with _ -> smoke_chips
  in
  (* pre-refactor baselines at the smoke scale (97527 primitives),
     measured with this same flow as peak-RSS growth over the process's
     starting high-water mark — so the harness binary's own footprint
     cancels out of both sides *)
  let pre_peak_bpp = 1737.8
  and pre_live_bpp = 562.7
  and pre_evals_per_sec = 260_567. in
  let live_words () =
    Gc.full_major ();
    (Gc.stat ()).Gc.live_words
  in
  let peak0_kb = Scald_obs.Mem.peak_rss_kb () in
  let m0 = live_words () in
  let design, t_gen =
    wall_timed (fun () -> Netgen.generate (Netgen.scaled ~chips ()))
  in
  let e, t_load = wall_timed (fun () -> Netgen.to_netlist design) in
  let nl = e.Scald_sdl.Expander.e_netlist in
  let prims = Netlist.n_insts nl in
  let fp = float_of_int prims in
  let live_load = float_of_int ((live_words () - m0) * 8) /. fp in
  Printf.printf "  %-44s %10d\n" "chips" (Netgen.n_chips design);
  Printf.printf "  %-44s %10d\n" "primitives" prims;
  Printf.printf "  %-44s %10d\n" "nets" (Netlist.n_nets nl);
  Printf.printf "  %-44s %10.2f s%s\n" "generate" t_gen
    (if e.Scald_sdl.Expander.e_streamed then "" else "  (NOT streamed!)");
  Printf.printf "  %-44s %10.2f s\n" "load (streaming expansion)" t_load;
  Printf.printf "  %-44s %10.1f\n" "netlist live bytes/primitive" live_load;
  let ev = Eval.create nl in
  let (), t_eval = wall_timed (fun () -> Eval.run ev) in
  let evals_per_sec = float_of_int (Eval.evaluations ev) /. t_eval in
  let live_bpp = float_of_int ((live_words () - m0) * 8) /. fp in
  let peak_kb = Scald_obs.Mem.peak_rss_kb () in
  let peak_bpp = float_of_int (peak_kb - peak0_kb) *. 1024. /. fp in
  Printf.printf "  %-44s %10.2f s  (%.0f evals/s)\n" "eval to fixpoint" t_eval
    evals_per_sec;
  Printf.printf "  %-44s %10.1f\n" "live bytes/primitive (incl eval caches)"
    live_bpp;
  Printf.printf "  %-44s %10.1f  (%d kB)\n" "peak RSS bytes/primitive" peak_bpp
    peak_kb;
  let report, t_verify = wall_timed (fun () -> Verifier.verify nl) in
  Printf.printf "  %-44s %10.2f s\n" "full verify (checks included)" t_verify;
  Printf.printf "  %-44s %10d\n" "violations (expected 0)"
    (List.length report.Verifier.r_violations);
  emit_bench_metrics "capacity"
    ~phases:
      [ ("generate", t_gen); ("load", t_load); ("eval", t_eval);
        ("verify", t_verify) ]
    ~extra:
      [ ("mem_peak_rss_kb", peak_kb);
        ("cap_primitives", prims);
        ("cap_nets", Netlist.n_nets nl);
        ("cap_peak_bytes_per_primitive", int_of_float peak_bpp);
        ("cap_live_bytes_per_primitive", int_of_float live_bpp);
        ("cap_evals_per_sec", int_of_float evals_per_sec) ]
    report;
  let failed = ref false in
  let gate name ok detail =
    Printf.printf "  gate: %-39s %10s  %s\n" name
      (if ok then "PASS" else "FAIL")
      detail;
    if not ok then failed := true
  in
  print_newline ();
  gate "clean design converges, no violations"
    (report.Verifier.r_converged && report.Verifier.r_violations = [])
    "";
  if chips = smoke_chips then begin
    gate "peak RSS <= 50% of pre-arena layout"
      (peak_bpp <= 0.5 *. pre_peak_bpp)
      (Printf.sprintf "%.1f vs %.1f B/prim" peak_bpp (0.5 *. pre_peak_bpp));
    gate "live bytes/prim no worse than pre-arena"
      (live_bpp <= pre_live_bpp)
      (Printf.sprintf "%.1f vs %.1f B/prim" live_bpp pre_live_bpp);
    (* 0.75x absorbs shared-runner timing variance; the representation
       change itself measured ~1.3x faster *)
    gate "evals/sec no worse than pre-arena"
      (evals_per_sec >= 0.75 *. pre_evals_per_sec)
      (Printf.sprintf "%.0f vs floor %.0f" evals_per_sec
         (0.75 *. pre_evals_per_sec))
  end
  else
    Printf.printf
      "  (memory/throughput gates apply at the %d-chip smoke scale only)\n"
      smoke_chips;
  if !failed then exit 1

(* ---- bechamel micro-benchmarks ------------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let rf = Circuits.register_file_example () in
  let bp = Circuits.bypass_example () in
  let fb = Circuits.correlation_example ~corr_delay_ns:4.0 in
  let small = Netgen.generate (Netgen.scaled ~chips:500 ()) in
  let small_sdl = Netgen.to_sdl small in
  let small_nl = (Netgen.to_netlist small).Scald_sdl.Expander.e_netlist in
  let shape = build_cone ~seed:42 ~n_inputs:8 ~n_gates:32 in
  let cone_c, cone_nets = cone_logic_sim shape ~n_inputs:8 in
  let cone_inputs = List.init 8 (fun i -> cone_nets.(i)) in
  let cases =
    Case_analysis.parse_exn
      (Printf.sprintf "%s = 0;\n%s = 1;\n" bp.Circuits.bp_control bp.Circuits.bp_control)
  in
  let period = Timebase.ps_of_ns 50.0 in
  let skewed =
    Waveform.with_skew ~early:(-1000) ~late:1000
      (Waveform.of_intervals ~period ~inside:Tvalue.V1 ~outside:Tvalue.V0
         [ (Timebase.ps_of_ns 10., Timebase.ps_of_ns 20.) ])
  in
  [
    Test.make ~name:"table-3-1/expand-500-chips"
      (Staged.stage (fun () -> Scald_sdl.Expander.load small_sdl));
    Test.make ~name:"table-3-1/verify-500-chips"
      (Staged.stage (fun () -> Verifier.verify small_nl));
    Test.make ~name:"table-3-2/primitive-census"
      (Staged.stage (fun () -> Stats.primitive_census small_nl));
    Test.make ~name:"table-3-3/storage-accounting"
      (Staged.stage (fun () -> Stats.storage_of small_nl));
    Test.make ~name:"fig-3-10/verify-register-file"
      (Staged.stage (fun () -> Verifier.verify rf.Circuits.rf_netlist));
    Test.make ~name:"fig-3-11/error-listing"
      (Staged.stage (fun () ->
           let report = Verifier.verify rf.Circuits.rf_netlist in
           Format.asprintf "%a" Report.pp_violations report.Verifier.r_violations));
    Test.make ~name:"fig-1-5/hazard-check"
      (Staged.stage (fun () ->
           Verifier.verify
             (Circuits.gated_clock_hazard ~enable_stable_at:2.5 ()).Circuits.gc_netlist));
    Test.make ~name:"fig-2-6/two-case-analysis"
      (Staged.stage (fun () -> Verifier.verify ~cases bp.Circuits.bp_netlist));
    Test.make ~name:"fig-2-8/materialize-skew"
      (Staged.stage (fun () -> Waveform.materialize skewed));
    Test.make ~name:"fig-4-1/correlation-circuit"
      (Staged.stage (fun () -> Verifier.verify fb.Circuits.fb_netlist));
    Test.make ~name:"compare/logic-sim-cone-8-inputs"
      (Staged.stage (fun () ->
           Logic_sim.verify_exhaustive cone_c ~inputs:cone_inputs
             ~outputs:[ cone_nets.(39) ] ~settle:200));
    Test.make ~name:"compare/path-analysis-chain-3"
      (Staged.stage (fun () ->
           let ch = Circuits.bypass_chain ~stages:3 in
           Path_analysis.analyze ch.Circuits.ch_netlist));
    Test.make ~name:"ext/rise-fall-delay"
      (Staged.stage
         (let pulse =
            Waveform.of_intervals ~period ~inside:Tvalue.V1 ~outside:Tvalue.V0
              [ (Timebase.ps_of_ns 10., Timebase.ps_of_ns 20.) ]
          in
          fun () ->
            Waveform.delay_rise_fall ~rise:(1_000, 1_000) ~fall:(3_000, 3_000) pulse));
    Test.make ~name:"ext/prob-analysis"
      (Staged.stage (fun () -> Prob_analysis.analyze fb.Circuits.fb_netlist));
    Test.make ~name:"ext/corr-advisor"
      (Staged.stage (fun () -> Path_analysis.Corr.advise fb.Circuits.fb_netlist));
  ]

let run_bechamel () =
  section "BECHAMEL MICRO-BENCHMARKS (one per table/figure)";
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let tests = Test.make_grouped ~name:"scald" ~fmt:"%s %s" (bechamel_tests ()) in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some [ t ] ->
        if t > 1e6 then Printf.printf "  %-44s %12.3f ms/run\n" name (t /. 1e6)
        else Printf.printf "  %-44s %12.1f ns/run\n" name t
      | Some _ | None -> Printf.printf "  %-44s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows)

(* ---- driver ------------------------------------------------------------------------------------------------ *)

let experiments =
  [
    ("table-3-1", table_3_1);
    ("table-3-2", table_3_2);
    ("table-3-3", table_3_3);
    ("fig-3-10", fig_3_10);
    ("fig-3-11", fig_3_11);
    ("fig-1-5", fig_1_5);
    ("fig-2-6", fig_2_6);
    ("fig-2-8", fig_2_8);
    ("fig-4-1", fig_4_1);
    ("compare-logicsim", compare_logicsim);
    ("compare-path", compare_path);
    ("ext-rise-fall", ext_rise_fall);
    ("ext-prob", ext_prob);
    ("ext-corr", ext_corr);
    ("ext-wire-rule", ext_wire_rule);
    ("ext-physical", ext_physical);
    ("scaling", scaling);
    ("lint-throughput", lint_throughput);
    ("obs-overhead", obs_overhead);
    ("par-speedup", par_speedup);
    ("sched-speedup", sched_speedup);
    ("corner-speedup", corner_speedup);
    ("flow-prune", flow_prune);
    ("window-prune", window_prune_bench);
    ("incr-reverify", incr_reverify);
    ("telemetry-overhead", telemetry_overhead);
    ("capacity", capacity);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let bechamel = List.mem "--bechamel" args in
  let rec strip_metrics_dir = function
    | "--metrics-dir" :: dir :: rest ->
      metrics_dir := Some dir;
      strip_metrics_dir rest
    | a :: rest -> a :: strip_metrics_dir rest
    | [] -> []
  in
  let args = strip_metrics_dir args in
  let ids = List.filter (fun a -> a <> "--bechamel") args in
  let to_run =
    match ids with
    | [] -> experiments
    | ids ->
      List.map
        (fun id ->
          match List.assoc_opt id experiments with
          | Some f -> (id, f)
          | None ->
            Printf.eprintf "unknown experiment %S; known: %s\n" id
              (String.concat ", " (List.map fst experiments));
            exit 1)
        ids
  in
  List.iter (fun (_, f) -> f ()) to_run;
  if bechamel then run_bechamel ();
  print_newline ()
