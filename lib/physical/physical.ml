open Scald_core

type placement = By_id | By_connectivity

type config = {
  placement : placement;
  pitch_cm : float;
  board_cols : int;
  velocity_cm_per_ns : float;
  intrinsic : Delay.t;
  detour : float;
  z0_ohm : float;
  z_load_ohm : float;
  rise_time_ns : float;
  reflection_limit : float;
}

let default_config =
  {
    placement = By_connectivity;
    pitch_cm = 2.0;
    board_cols = 32;
    velocity_cm_per_ns = 15.0;
    intrinsic = Delay.of_ns 0.2 0.5;
    detour = 1.8;
    z0_ohm = 50.0;
    z_load_ohm = 100.0;
    rise_time_ns = 2.0;
    reflection_limit = 0.25;
  }

type route = {
  r_net : string;
  r_length_cm : float;
  r_fanout : int;
  r_delay : Delay.t;
  r_needs_line_analysis : bool;
  r_reflection : float;
  r_edge_sensitive : bool;
  r_flagged : bool;
}

type report = {
  p_routes : route list;
  p_flagged : route list;
  p_total_wire_cm : float;
  p_applied : int;
}

(* Slot assignment: either creation order, or a breadth-first walk of
   the driver-to-consumer graph so that connected logic clusters. *)
let slots cfg nl =
  let n = Netlist.n_insts nl in
  let slot = Array.make (max 1 n) (-1) in
  (match cfg.placement with
  | By_id -> Array.iteri (fun i _ -> slot.(i) <- i) slot
  | By_connectivity ->
    let next = ref 0 in
    let q = Queue.create () in
    let place i =
      if i < n && slot.(i) < 0 then begin
        slot.(i) <- !next;
        incr next;
        Queue.add i q
      end
    in
    for seed = 0 to n - 1 do
      place seed;
      while not (Queue.is_empty q) do
        let i = Queue.pop q in
        let inst = Netlist.inst nl i in
        (* neighbours: consumers of my output, drivers of my inputs *)
        (match inst.Netlist.i_output with
        | Some o -> Netlist.iter_fanout (Netlist.net nl o) place
        | None -> ());
        Array.iter
          (fun (c : Netlist.conn) ->
            match (Netlist.net nl c.Netlist.c_net).Netlist.n_driver with
            | Some d -> place d
            | None -> ())
          inst.Netlist.i_inputs
      done
    done);
  slot

let position cfg slot_id =
  let col = slot_id mod cfg.board_cols and row = slot_id / cfg.board_cols in
  (float_of_int col *. cfg.pitch_cm, float_of_int row *. cfg.pitch_cm)

(* A pin of a net feeds an edge-sensitive input when it is the clock of
   a register, the enable of a latch, or the CK input of a checker. *)
let edge_sensitive_pin (inst : Netlist.inst) input_index =
  match inst.Netlist.i_prim with
  | Primitive.Reg _ | Primitive.Latch _ -> input_index = 1
  | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _ ->
    input_index = 1
  | Primitive.Min_pulse_width _ -> true
  | Primitive.Gate _ | Primitive.Buf _ | Primitive.Mux2 _ | Primitive.Const _ -> false

let route_of_net cfg nl slot (n : Netlist.net) =
  (* pins: the driver instance and each consumer *)
  let pin_insts =
    (match n.Netlist.n_driver with Some d -> [ d ] | None -> []) @ Netlist.fanout n
  in
  let positions = List.map (fun i -> position cfg slot.(i)) pin_insts in
  let length =
    match positions with
    | [] | [ _ ] -> 0.
    | (x0, y0) :: rest ->
      (* half-perimeter wirelength of the pin bounding box *)
      let xmin, xmax, ymin, ymax =
        List.fold_left
          (fun (a, b, c, d) (x, y) -> (min a x, max b x, min c y, max d y))
          (x0, x0, y0, y0) rest
      in
      xmax -. xmin +. (ymax -. ymin)
  in
  let fanout = Netlist.fanout_count n in
  let prop_min_ns = length /. cfg.velocity_cm_per_ns in
  let prop_max_ns = cfg.detour *. prop_min_ns in
  let delay =
    Delay.add cfg.intrinsic
      (Delay.of_ns prop_min_ns prop_max_ns)
  in
  let needs_line = prop_max_ns > cfg.rise_time_ns /. 4. in
  (* receivers in parallel pull the termination impedance down *)
  let z_load = cfg.z_load_ohm /. float_of_int (max 1 fanout) in
  let reflection = Float.abs ((z_load -. cfg.z0_ohm) /. (z_load +. cfg.z0_ohm)) in
  let edge_sensitive =
    List.exists
      (fun inst_id ->
        let inst = Netlist.inst nl inst_id in
        let found = ref false in
        Array.iteri
          (fun i (c : Netlist.conn) ->
            if c.Netlist.c_net = n.Netlist.n_id && edge_sensitive_pin inst i then
              found := true)
          inst.Netlist.i_inputs;
        !found)
      (Netlist.fanout n)
  in
  {
    r_net = n.Netlist.n_name;
    r_length_cm = length;
    r_fanout = fanout;
    r_delay = delay;
    r_needs_line_analysis = needs_line;
    r_reflection = reflection;
    r_edge_sensitive = edge_sensitive;
    r_flagged = needs_line && edge_sensitive && reflection > cfg.reflection_limit;
  }

let place_and_route ?(config = default_config) nl =
  let slot = slots config nl in
  let routes = ref [] in
  Netlist.iter_nets nl (fun n -> routes := route_of_net config nl slot n :: !routes);
  let routes = List.rev !routes in
  {
    p_routes = routes;
    p_flagged = List.filter (fun r -> r.r_flagged) routes;
    p_total_wire_cm = List.fold_left (fun acc r -> acc +. r.r_length_cm) 0. routes;
    p_applied = 0;
  }

let apply ?(config = default_config) nl =
  let report = place_and_route ~config nl in
  let applied = ref 0 in
  let by_name = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace by_name r.r_net r) report.p_routes;
  Netlist.iter_nets nl (fun n ->
      match n.Netlist.n_wire_delay with
      | Some _ -> ()
      | None -> (
        match Hashtbl.find_opt by_name n.Netlist.n_name with
        | Some r ->
          Netlist.set_wire_delay nl n.Netlist.n_id r.r_delay;
          incr applied
        | None -> ()));
  { report with p_applied = !applied }

let violations report =
  List.map
    (fun r ->
      {
        Check.v_kind = Check.Reflection_hazard;
        v_inst = "PHYSICAL DESIGN";
        v_signal = r.r_net;
        v_clock = None;
        v_required = 0;
        v_actual = None;
        v_at = None;
        v_detail =
          Printf.sprintf
            "%.1f cm run, %d loads, reflection coefficient %.2f on an edge-sensitive input"
            r.r_length_cm r.r_fanout r.r_reflection;
      })
    report.p_flagged

let pp ppf report =
  Format.fprintf ppf "@[<v>PHYSICAL DESIGN: %d runs, %.1f cm of wire, %d computed delays applied@,"
    (List.length report.p_routes) report.p_total_wire_cm report.p_applied;
  let long =
    List.filter (fun r -> r.r_needs_line_analysis) report.p_routes |> List.length
  in
  Format.fprintf ppf "runs needing transmission-line analysis: %d@," long;
  Format.fprintf ppf "flagged (reflections on edge-sensitive inputs): %d@,"
    (List.length report.p_flagged);
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  %-28s %5.1f cm, %d loads, delay %a ns, reflection %.2f  ** FLAGGED **@,"
        r.r_net r.r_length_cm r.r_fanout Delay.pp r.r_delay r.r_reflection)
    report.p_flagged;
  Format.fprintf ppf "@]"
