open Scald_core

let audit ?(rules = Rules.all) nl =
  let findings = List.concat_map (fun (r : Rules.rule) -> r.Rules.check nl) rules in
  {
    Lint_report.findings = List.stable_sort Lint_report.compare_finding findings;
    nets_audited = Netlist.n_nets nl;
    insts_audited = Netlist.n_insts nl;
  }

let summary nl =
  let r = audit nl in
  {
    Verifier.ls_errors = Lint_report.count Lint_report.Error r;
    ls_warnings = Lint_report.count Lint_report.Warning r;
    ls_infos = Lint_report.count Lint_report.Info r;
    ls_listing = Format.asprintf "%a" Lint_report.pp r;
  }
