(** Constraint lint: a static design-rule audit of an expanded netlist
    and its assertions, run {e before} any evaluation.

    The dynamic verifier only reports what its checkers execute — a
    design whose constraints are incomplete (an unchecked flip-flop, an
    interface input with no assertion, a gated clock with no [&A]/[&H]
    directive) verifies "clean" silently.  The lint pass audits the
    constraints themselves for completeness and consistency (see
    {!Rules} for the catalogue), so incomplete designs can be worked on
    lint-only, without an evaluation (the modular-verification workload
    of thesis 2.5). *)

val audit : ?rules:Rules.rule list -> Scald_core.Netlist.t -> Lint_report.t
(** Run the given rules (default: the full {!Rules.all} catalogue) over
    a netlist.  Purely structural: the netlist is not evaluated and not
    modified.  Findings come back sorted by rule id then locus name
    (see {!Lint_report.compare_finding}). *)

val summary : Scald_core.Netlist.t -> Scald_core.Verifier.lint_summary
(** Adapter for {!Scald_core.Verifier.verify}'s [?lint] argument:
    [Verifier.verify ~lint:Lint.summary nl] runs the audit before the
    evaluation and carries the totals and rendered listing in the
    report. *)
