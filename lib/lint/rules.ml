open Scald_core
module R = Lint_report

type rule = {
  id : string;
  title : string;
  section : string;
  severity : R.severity;
  check : Netlist.t -> R.finding list;
}

let finding rule severity locus message hint =
  { R.f_rule = rule; f_severity = severity; f_locus = locus; f_message = message;
    f_hint = hint }

let ns = Timebase.ns_of_ps

(* ---- shared structural helpers ------------------------------------------- *)

let is_clock_assertion (a : Assertion.t) =
  match a.Assertion.kind with
  | Assertion.Precision_clock | Assertion.Nonprecision_clock -> true
  | Assertion.Stable -> false

let net_name nl id = (Netlist.net nl id).Netlist.n_name

(* The edge-sensitive clock/enable input of an instance, if it has one,
   with its diagnostic port label. *)
let edge_input (i : Netlist.inst) =
  match i.Netlist.i_prim with
  | Primitive.Reg _ | Primitive.Latch _ | Primitive.Setup_hold_check _
  | Primitive.Setup_rise_hold_fall_check _ ->
    Some (i.Netlist.i_inputs.(1), Primitive.input_label i.Netlist.i_prim 1)
  | _ -> None

let is_data_checker = function
  | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _ -> true
  | _ -> false

(* Gates, buffers and muxes are "levels of gating": they consume one
   evaluation-directive letter each and propagate the rest (2.8). *)
let is_gating = function
  | Primitive.Gate _ | Primitive.Buf _ | Primitive.Mux2 _ -> true
  | _ -> false

(* The signal-class analysis (Flow) answers every cone question the
   rules ask — clock reachability (C1), derived clocks (C4, K7), clock
   domains (C6, C7).  One analysis per netlist, memoized on physical
   equality: the driver runs each rule over the same netlist value. *)
let flow_cache : (Netlist.t * Flow.t) option ref = ref None

let flow_for nl =
  match !flow_cache with
  | Some (nl', f) when nl' == nl -> f
  | _ ->
    let f = Flow.analyse nl in
    flow_cache := Some (nl, f);
    f

let domain_names nl ds = String.concat ", " (List.map (net_name nl) ds)

(* Maximum number of gating levels strictly below an instance's output.
   Combinational cycles count as unbounded depth (their letters are
   always consumed); K4 reports the cycle itself. *)
let gating_depth nl =
  let n = Netlist.n_insts nl in
  let memo = Array.make n (-1) in
  let rec depth i =
    if memo.(i) >= 0 then memo.(i)
    else if memo.(i) = -2 then max_int / 2
    else begin
      memo.(i) <- -2;
      let inst = Netlist.inst nl i in
      let d =
        match inst.Netlist.i_output with
        | None -> 0
        | Some o ->
          List.fold_left
            (fun acc j ->
              if is_gating (Netlist.inst nl j).Netlist.i_prim then
                max acc (1 + depth j)
              else acc)
            0
            (Netlist.fanout (Netlist.net nl o))
      in
      memo.(i) <- min d (max_int / 2);
      d
    end
  in
  depth

(* The base signal name with the assertion suffix stripped: the SCALD
   system keys nets by the full spelling, so "D IN" and "D IN .S0-4"
   are silently two different nets — exactly what K5 hunts for. *)
let base_name name =
  match Signal_name.parse name with
  | Ok sn -> sn.Signal_name.base
  | Error _ -> name

let delay_dmax (prim : Primitive.t) =
  match prim with
  | Primitive.Gate { delay; _ }
  | Primitive.Buf { delay; _ }
  | Primitive.Mux2 { delay; _ }
  | Primitive.Reg { delay; _ }
  | Primitive.Latch { delay; _ } ->
    delay.Delay.dmax
  | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _
  | Primitive.Min_pulse_width _ | Primitive.Const _ ->
    0

let wire_dmax nl id =
  let n = Netlist.net nl id in
  let d =
    match n.Netlist.n_wire_delay with
    | Some d -> d
    | None -> Netlist.default_wire_delay nl
  in
  d.Delay.dmax

(* ---- completeness rules --------------------------------------------------- *)

(* C1: every edge-sensitive input traces back to a clock assertion.
   [Flow.reaches_clock] is the shared cone analysis' answer to exactly
   the question the old private DFS asked. *)
let check_c1 nl =
  let flow = flow_for nl in
  let acc = ref [] in
  Netlist.iter_insts nl (fun i ->
      match edge_input i with
      | Some (c, label) when not (Flow.reaches_clock flow c.Netlist.c_net) ->
        acc :=
          finding "C1" R.Error (R.Inst i.Netlist.i_name)
            (Printf.sprintf
               "%s input %s is never driven from a clock-asserted signal — the checker can never see a defined edge"
               label (net_name nl c.Netlist.c_net))
            "assert the clock with .P or .C (thesis 2.5), or derive it from an asserted clock"
          :: !acc
      | _ -> ());
  List.rev !acc

(* C2: every primary (undriven) input carries an assertion.  Subsumes
   Netlist.undriven_unasserted: the verifier would silently assume
   these signals always stable (2.5). *)
let check_c2 nl =
  List.map
    (fun (n : Netlist.net) ->
      finding "C2" R.Error (R.Net n.Netlist.n_name)
        "primary input has neither a driver nor an assertion — the verifier assumes it always stable"
        "add a .P/.C clock assertion or a .S stability assertion to the signal name (thesis 2.5)")
    (Netlist.undriven_unasserted nl)

(* C3: every register/latch data input is covered by a checker. *)
let check_c3 nl =
  let acc = ref [] in
  Netlist.iter_insts nl (fun i ->
      match i.Netlist.i_prim with
      | Primitive.Reg _ | Primitive.Latch _ ->
        let data = i.Netlist.i_inputs.(0).Netlist.c_net in
        let covered =
          List.exists
            (fun j ->
              let chk = Netlist.inst nl j in
              is_data_checker chk.Netlist.i_prim
              && chk.Netlist.i_inputs.(0).Netlist.c_net = data)
            (Netlist.fanout (Netlist.net nl data))
        in
        if not covered then
          acc :=
            finding "C3" R.Warning (R.Inst i.Netlist.i_name)
              (Printf.sprintf
                 "data input %s has no SETUP/HOLD checker — its timing is never verified"
                 (net_name nl data))
              "instantiate SETUP HOLD CHK on the data/clock pair (thesis Figure 2-3)"
            :: !acc
      | _ -> ());
  List.rev !acc

(* C4: gated clocks carry an &A/&H hazard directive (2.6).  An explicit
   non-hazard directive counts as a designer waiver and is only noted.
   Keyed on the inferred class, not the assertion, so a clock derived
   through buffers or prior gating is still recognized as a clock. *)
let check_c4 nl =
  let flow = flow_for nl in
  let acc = ref [] in
  Netlist.iter_insts nl (fun i ->
      match i.Netlist.i_prim with
      | Primitive.Gate _ | Primitive.Mux2 _ ->
        Array.iter
          (fun (c : Netlist.conn) ->
            match Flow.cls flow c.Netlist.c_net with
            | Flow.Const _ | Flow.Stable | Flow.Data _ | Flow.Unknown -> ()
            | Flow.Clock _ ->
              if List.exists Directive.check_hazard c.Netlist.c_directive then ()
              else if c.Netlist.c_directive <> [] then
                acc :=
                  finding "C4" R.Info (R.Inst i.Netlist.i_name)
                    (Printf.sprintf
                       "clock %s is gated under an explicit &%s directive — hazard check waived"
                       (net_name nl c.Netlist.c_net)
                       (Directive.to_string c.Netlist.c_directive))
                    "make sure the waiver is intentional; &A/&H would check the gating inputs"
                  :: !acc
              else
                acc :=
                  finding "C4" R.Warning (R.Inst i.Netlist.i_name)
                    (Printf.sprintf
                       "clock %s is gated without an &A/&H directive — a control input changing while the clock is asserted would go undetected"
                       (net_name nl c.Netlist.c_net))
                    "add &A (check) or &H (check and re-time) to the clock connection (thesis 2.6)"
                  :: !acc)
          i.Netlist.i_inputs
      | _ -> ());
  List.rev !acc

(* C5: clocks state their skew explicitly where the design rules give a
   non-zero default. *)
let check_c5 nl =
  let defaults = Netlist.defaults nl in
  let acc = ref [] in
  Netlist.iter_nets nl (fun n ->
      match n.Netlist.n_assertion with
      | Some a when is_clock_assertion a && a.Assertion.skew_ns = None ->
        let minus, plus =
          match a.Assertion.kind with
          | Assertion.Precision_clock -> defaults.Assertion.precision_skew
          | _ -> defaults.Assertion.nonprecision_skew
        in
        if minus <> 0 || plus <> 0 then
          acc :=
            finding "C5" R.Info (R.Net n.Netlist.n_name)
              (Printf.sprintf
                 "clock relies on the default skew %.1f/%.1f ns of the design rules"
                 (ns minus) (ns plus))
              "state the skew explicitly with a (minus,plus) skew spec, e.g. .P(-1.0,1.0)2-3 (thesis 2.5)"
            :: !acc
      | _ -> ());
  List.rev !acc

(* C6: a register's data must move in (a subset of) the domains of the
   clock that captures it.  Data tagged with domains the capturing
   clock is not part of crossed over from another clock domain with no
   constraint relating the two — the classic unconstrained CDC.  Empty
   data domains (changing primary inputs) are the ordinary synchronous
   case and say nothing about crossing. *)
let check_c6 nl =
  let flow = flow_for nl in
  let acc = ref [] in
  Netlist.iter_insts nl (fun i ->
      match i.Netlist.i_prim with
      | Primitive.Reg _ ->
        let data = i.Netlist.i_inputs.(0).Netlist.c_net in
        let clk = i.Netlist.i_inputs.(1).Netlist.c_net in
        let dd = Flow.domains flow data in
        let dc = Flow.domains flow clk in
        if
          dd <> [] && dc <> []
          && not (List.for_all (fun d -> List.mem d dd) dc)
        then
          acc :=
            finding "C6" R.Warning (R.Inst i.Netlist.i_name)
              (Printf.sprintf
                 "data input %s moves in clock domain(s) {%s} but is captured by %s of domain {%s} — an unconstrained clock-domain crossing"
                 (net_name nl data) (domain_names nl dd) (net_name nl clk)
                 (domain_names nl dc))
              "the two clocks share no timing relation the verifier can use; synchronize the crossing or relate the clocks with skew specs (thesis 2.5)"
            :: !acc
      | _ -> ());
  List.rev !acc

(* C7: convergent logic mixing two clock domains.  Two inputs of one
   gate whose domain sets are non-empty and disjoint carry values timed
   by unrelated clocks; their combination has no single-cycle meaning.
   Inputs sharing any domain (a parity tree, an ALU) are fine, as are
   clock-class inputs — gating is C4/K7's business, not convergence. *)
let check_c7 nl =
  let flow = flow_for nl in
  let acc = ref [] in
  Netlist.iter_insts nl (fun i ->
      if is_gating i.Netlist.i_prim then begin
        let data_inputs =
          Array.to_list i.Netlist.i_inputs
          |> List.filter_map (fun (c : Netlist.conn) ->
                 match Flow.cls flow c.Netlist.c_net with
                 | Flow.Data (_ :: _ as ds) -> Some (c.Netlist.c_net, ds)
                 | _ -> None)
        in
        let disjoint a b = not (List.exists (fun d -> List.mem d b) a) in
        let rec first_pair = function
          | [] -> None
          | (n, ds) :: rest -> (
            match List.find_opt (fun (_, ds') -> disjoint ds ds') rest with
            | Some (n', ds') -> Some ((n, ds), (n', ds'))
            | None -> first_pair rest)
        in
        match first_pair data_inputs with
        | Some ((n1, d1), (n2, d2)) ->
          acc :=
            finding "C7" R.Warning (R.Inst i.Netlist.i_name)
              (Printf.sprintf
                 "inputs %s {%s} and %s {%s} converge from disjoint clock domains — their relative timing is unconstrained"
                 (net_name nl n1) (domain_names nl d1) (net_name nl n2)
                 (domain_names nl d2))
              "split the function per domain, synchronize one side, or resolve the ambiguity with case analysis (thesis 2.7)"
            :: !acc
        | None -> ()
      end);
  List.rev !acc

(* ---- consistency rules ----------------------------------------------------- *)

(* K1: delay ranges are sane and fit within the clock period. *)
let check_k1 nl =
  let period = Timebase.period (Netlist.timebase nl) in
  let check_delay locus what (d : Delay.t) =
    if d.Delay.dmin < 0 || d.Delay.dmin > d.Delay.dmax then
      [ finding "K1" R.Error locus
          (Printf.sprintf "%s has an inverted range %.1f/%.1f ns (min > max)" what
             (ns d.Delay.dmin) (ns d.Delay.dmax))
          "delays are min/max pairs with 0 <= min <= max (thesis 1.4.1.1)" ]
    else if d.Delay.dmax > period then
      [ finding "K1" R.Error locus
          (Printf.sprintf "%s max %.1f ns exceeds the %.1f ns clock period" what
             (ns d.Delay.dmax) (ns period))
          "a path longer than the cycle cannot settle within the single verified period; split it or raise PERIOD" ]
    else []
  in
  let acc = ref [] in
  Netlist.iter_insts nl (fun i ->
      let locus = R.Inst i.Netlist.i_name in
      match i.Netlist.i_prim with
      | Primitive.Gate { delay; _ } | Primitive.Buf { delay; _ }
      | Primitive.Reg { delay; _ } | Primitive.Latch { delay; _ } ->
        acc := check_delay locus "component delay" delay @ !acc
      | Primitive.Mux2 { delay; select_extra } ->
        acc :=
          check_delay locus "component delay" delay
          @ check_delay locus "select-path delay" (Delay.add delay select_extra)
          @ !acc
      | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _
      | Primitive.Min_pulse_width _ | Primitive.Const _ ->
        ());
  Netlist.iter_nets nl (fun n ->
      match n.Netlist.n_wire_delay with
      | Some d ->
        acc := check_delay (R.Net n.Netlist.n_name) "wire-delay override" d @ !acc
      | None -> ());
  let default_findings =
    check_delay R.Design "default wire delay" (Netlist.default_wire_delay nl)
  in
  default_findings @ List.rev !acc

(* K2: checker constraints are feasible within the period (the
   exemplar's K5-style basic feasibility). *)
let check_k2 nl =
  let period = Timebase.period (Netlist.timebase nl) in
  let acc = ref [] in
  Netlist.iter_insts nl (fun i ->
      let locus = R.Inst i.Netlist.i_name in
      match i.Netlist.i_prim with
      | Primitive.Setup_hold_check { setup; hold }
      | Primitive.Setup_rise_hold_fall_check { setup; hold } ->
        if setup + hold > period || setup > period || hold > period then
          acc :=
            finding "K2" R.Error locus
              (Printf.sprintf
                 "set-up %.1f ns + hold %.1f ns cannot be met within the %.1f ns period"
                 (ns setup) (ns hold) (ns period))
              "the data input would never be allowed to change; reduce the constraint or raise PERIOD"
            :: !acc
        else begin
          (* one-level data-path margin: launch, propagate, settle
             set-up before the next edge *)
          let data = i.Netlist.i_inputs.(0).Netlist.c_net in
          match (Netlist.net nl data).Netlist.n_driver with
          | Some d ->
            let path =
              delay_dmax (Netlist.inst nl d).Netlist.i_prim + wire_dmax nl data
            in
            if path + setup > period then
              acc :=
                finding "K2" R.Warning locus
                  (Printf.sprintf
                     "data path into the checker (%.1f ns max) leaves no set-up margin (%.1f ns needed, %.1f ns period)"
                     (ns path) (ns setup) (ns period))
                  "shorten the path feeding the checked signal or reduce the set-up requirement"
                :: !acc
          | None -> ()
        end
      | Primitive.Min_pulse_width { high; low } ->
        if high + low > period then
          acc :=
            finding "K2" R.Error locus
              (Printf.sprintf
                 "minimum widths %.1f ns high + %.1f ns low exceed the %.1f ns period"
                 (ns high) (ns low) (ns period))
              "one high and one low pulse must fit in a cycle; reduce the widths or raise PERIOD"
            :: !acc
      | _ -> ());
  List.rev !acc

(* K3: directive strings no longer than the gating depth that consumes
   them (2.8). *)
let check_k3 nl =
  let depth = gating_depth nl in
  let acc = ref [] in
  Netlist.iter_insts nl (fun i ->
      Array.iter
        (fun (c : Netlist.conn) ->
          let len = List.length c.Netlist.c_directive in
          if len > 0 then begin
            let usable =
              if is_gating i.Netlist.i_prim then 1 + depth i.Netlist.i_id else 1
            in
            if len > usable then
              acc :=
                finding "K3" R.Warning (R.Inst i.Netlist.i_name)
                  (Printf.sprintf
                     "directive &%s on %s carries %d letters but only %d level(s) of gating consume them — the rest silently do nothing"
                     (Directive.to_string c.Netlist.c_directive)
                     (net_name nl c.Netlist.c_net) len usable)
                  "one letter is consumed per level of gating (thesis 2.8); shorten the string or add the intended gating levels"
                :: !acc
          end)
        i.Netlist.i_inputs);
  List.rev !acc

(* K4: combinational cycles, by DFS over driver/fanout — no evaluation.
   Registers and latches legitimately close feedback loops; gates,
   buffers and muxes must not. *)
let check_k4 nl =
  let n = Netlist.n_insts nl in
  let color = Array.make n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let acc = ref [] in
  let rec dfs path i =
    color.(i) <- 1;
    let inst = Netlist.inst nl i in
    (match inst.Netlist.i_output with
    | None -> ()
    | Some o ->
      List.iter
        (fun j ->
          if is_gating (Netlist.inst nl j).Netlist.i_prim then begin
            if color.(j) = 0 then dfs (j :: path) j
            else if color.(j) = 1 then begin
              (* back edge: the cycle is the path segment back to j *)
              let rec take = function
                | [] -> []
                | k :: rest -> if k = j then [ k ] else k :: take rest
              in
              let cycle = List.rev (take (i :: path)) in
              let names =
                List.map (fun k -> (Netlist.inst nl k).Netlist.i_name) cycle
              in
              acc :=
                finding "K4" R.Error (R.Net (net_name nl o))
                  (Printf.sprintf "combinational cycle: %s"
                     (String.concat " -> " (names @ [ List.hd names ])))
                  "unregistered feedback never settles; break the loop with a register or latch (thesis 2.4)"
                :: !acc
            end
          end)
        (Netlist.fanout (Netlist.net nl o)));
    color.(i) <- 2
  in
  Netlist.iter_insts nl (fun i ->
      if color.(i.Netlist.i_id) = 0 && is_gating i.Netlist.i_prim then
        dfs [ i.Netlist.i_id ] i.Netlist.i_id);
  List.rev !acc

(* K5: assertion spellings and polarities are consistent. *)
let check_k5 nl =
  let acc = ref [] in
  (* (a) one spelling per signal: the assertion is part of the net key
     (2.5.1), so conflicting spellings silently split one signal into
     several independent nets. *)
  let by_base = Hashtbl.create 64 in
  Netlist.iter_nets nl (fun n ->
      let base = base_name n.Netlist.n_name in
      Hashtbl.replace by_base base
        (n.Netlist.n_name
        :: (match Hashtbl.find_opt by_base base with Some l -> l | None -> [])));
  Hashtbl.iter
    (fun base spellings ->
      match spellings with
      | _ :: _ :: _ ->
        acc :=
          finding "K5" R.Error (R.Net base)
            (Printf.sprintf
               "signal spelled with conflicting assertions (%s) — each spelling is silently a distinct net"
               (String.concat " vs " (List.sort String.compare spellings)))
            "use one spelling everywhere: the assertion is part of the signal name (thesis 2.5.1)"
          :: !acc
      | _ -> ())
    by_base;
  (* (b) a stable-asserted signal used as a clock, and (c) a low-active
     clock entering an edge-sensitive input uncomplemented. *)
  Netlist.iter_insts nl (fun i ->
      match edge_input i with
      | None -> ()
      | Some (c, label) -> (
        match (Netlist.net nl c.Netlist.c_net).Netlist.n_assertion with
        | Some a when not (is_clock_assertion a) ->
          acc :=
            finding "K5" R.Error (R.Inst i.Netlist.i_name)
              (Printf.sprintf
                 "%s input %s carries a .S stability assertion, not a clock assertion"
                 label (net_name nl c.Netlist.c_net))
              "edge-sensitive inputs need a .P/.C clock; a stable window defines no edge (thesis 2.5)"
            :: !acc
        | Some a when a.Assertion.low_active && not c.Netlist.c_invert ->
          acc :=
            finding "K5" R.Warning (R.Inst i.Netlist.i_name)
              (Printf.sprintf
                 "low-active clock %s drives the %s input uncomplemented — the edge checked is the wrong one"
                 (net_name nl c.Netlist.c_net) label)
              "connect the complement (a leading \"-\") or drop the L polarity from the assertion"
            :: !acc
        | _ -> ()));
  List.sort R.compare_finding !acc

(* K6: dead logic — a driven net that feeds nothing is either wasted
   hardware or a missing checker connection. *)
let check_k6 nl =
  let acc = ref [] in
  Netlist.iter_nets nl (fun n ->
      if n.Netlist.n_driver <> None && Netlist.fanout_count n = 0 then
        acc :=
          finding "K6" R.Warning (R.Net n.Netlist.n_name)
            "driven but feeds no primitive and no checker — dead logic, or a missing connection"
            "connect the signal, check it, or delete its driver"
          :: !acc);
  List.rev !acc

(* K7: a clock gated by data of its own domain — the §2.6 hazard shape.
   The gating signal is launched by the very clock it gates, so it is
   guaranteed to change in the window where the clock's edges live;
   whether a runt pulse escapes depends only on the delay race.  The
   inferred domain is the evidence: Flow tagged the data input with the
   same domain root the clock-class input carries. *)
let check_k7 nl =
  let flow = flow_for nl in
  let acc = ref [] in
  Netlist.iter_insts nl (fun i ->
      if is_gating i.Netlist.i_prim then begin
        let inputs = Array.to_list i.Netlist.i_inputs in
        let clocks =
          List.filter_map
            (fun (c : Netlist.conn) ->
              match Flow.cls flow c.Netlist.c_net with
              | Flow.Clock { domains; _ } -> Some (c.Netlist.c_net, domains)
              | _ -> None)
            inputs
        in
        let datas =
          List.filter_map
            (fun (c : Netlist.conn) ->
              match Flow.cls flow c.Netlist.c_net with
              | Flow.Data (_ :: _ as ds) -> Some (c.Netlist.c_net, ds)
              | _ -> None)
            inputs
        in
        let hit =
          List.find_map
            (fun (cn, cd) ->
              List.find_map
                (fun (dn, dd) ->
                  match List.filter (fun d -> List.mem d cd) dd with
                  | [] -> None
                  | shared -> Some (cn, dn, shared))
                datas)
            clocks
        in
        match hit with
        | Some (cn, dn, shared) ->
          acc :=
            finding "K7" R.Warning (R.Inst i.Netlist.i_name)
              (Printf.sprintf
                 "clock %s is gated by %s, data launched by its own domain {%s} — the gate control races the clock edge it qualifies"
                 (net_name nl cn) (net_name nl dn) (domain_names nl shared))
              "re-time the gating term off the opposite edge or qualify with an unrelated stable signal; &A/&H only detects the hazard, it does not remove it (thesis 2.6)"
            :: !acc
        | None -> ()
      end);
  List.rev !acc

(* ---- W rules: static arrival-window analysis (doc/WINDOWS.md) ------------- *)

(* One window analysis per netlist, memoized like [flow_for]: the driver
   runs each W rule over the same netlist value. *)
let window_cache : (Netlist.t * Window.t) option ref = ref None

let window_for nl =
  match !window_cache with
  | Some (nl', w) when nl' == nl -> w
  | _ ->
    let w = Window.analyse nl in
    window_cache := Some (nl, w);
    w

(* W1: a stable assertion the computed windows already satisfy — the
   check can never fire, so the constraint documents nothing the
   structure does not prove.  Informational: harmless, but worth knowing
   when auditing what the assertion set actually pins down. *)
let check_w1 nl =
  let w = window_for nl in
  let acc = ref [] in
  Netlist.iter_nets nl (fun n ->
      if Window.net_proven w n.Netlist.n_id then
        acc :=
          finding "W1" R.Info (R.Net n.Netlist.n_name)
            "stable assertion statically satisfied at every corner — the check can never fire (vacuous constraint)"
            "the windows prove it: tighten the assertion if it should bind, or drop it if it only restates the structure"
          :: !acc);
  List.rev !acc

(* W2: a checker whose fan-in windows prove it clean at every corner —
   provably always-satisfied.  Gated on every input cone actually being
   constrained by an assertion, so a proof resting only on the §2.5
   stable assumption (which W4 questions) does not also fire here. *)
let check_w2 nl =
  let w = window_for nl in
  let acc = ref [] in
  Netlist.iter_insts nl (fun i ->
      if
        Window.inst_proven w i.Netlist.i_id
        && Array.for_all
             (fun (c : Netlist.conn) -> Window.constrained w c.Netlist.c_net)
             i.Netlist.i_inputs
      then
        acc :=
          finding "W2" R.Info (R.Inst i.Netlist.i_name)
            "checker statically proven satisfied at every corner — evaluation is skipped (window pruning)"
            "no action needed; --no-window-prune re-checks it dynamically"
          :: !acc);
  List.rev !acc

(* W3: the dual — both checker inputs reconstruct exactly and the real
   check fails at every corner.  The violation is guaranteed before any
   evaluation; reported as an error so a lint-only pass already catches
   it. *)
let check_w3 nl =
  let w = window_for nl in
  let acc = ref [] in
  Netlist.iter_insts nl (fun i ->
      if Window.inst_guaranteed w i.Netlist.i_id then
        acc :=
          finding "W3" R.Error (R.Inst i.Netlist.i_name)
            "timing violation guaranteed at every corner: the asserted input waveforms already violate the constraint"
            "fix the assertion windows or the checker margins — no delay assignment can satisfy this check"
          :: !acc);
  List.rev !acc

(* W4: a checker input whose window rests on nothing — no assertion
   anywhere in its cone (only the §2.5 stable assumption), or an
   unbounded (feedback-widened) window.  Either way the checker's
   verdict hangs on defaults rather than stated constraints. *)
let check_w4 nl =
  let w = window_for nl in
  let seen = Array.make (max 1 (Netlist.n_nets nl)) false in
  let acc = ref [] in
  Netlist.iter_insts nl (fun i ->
      if Primitive.is_checker i.Netlist.i_prim then
        Array.iter
          (fun (c : Netlist.conn) ->
            let id = c.Netlist.c_net in
            if not seen.(id) then begin
              let unconstrained = not (Window.constrained w id) in
              let unbounded = Window.unbounded w id in
              if unconstrained || unbounded then begin
                seen.(id) <- true;
                let msg =
                  if unbounded then
                    "checker input has an unbounded arrival window (feedback widening) — the verdict is not pinned by any stated constraint"
                  else
                    "checker input cone carries no assertion — its window rests solely on the §2.5 stable assumption"
                in
                acc :=
                  finding "W4" R.Warning (R.Net (net_name nl id)) msg
                    "assert the cone's primary inputs (or the signal itself) so the window is grounded in stated constraints"
                  :: !acc
              end
            end)
          i.Netlist.i_inputs);
  List.rev !acc

(* W5: a declared stable interval the computed windows contradict — every
   possible transition of the net lands inside an asserted-stable span,
   so whenever the signal moves at all, the assertion is violated. *)
let check_w5 nl =
  let w = window_for nl in
  let acc = ref [] in
  Netlist.iter_nets nl (fun n ->
      if Window.net_contradicted w n.Netlist.n_id then
        acc :=
          finding "W5" R.Warning (R.Net n.Netlist.n_name)
            "stable assertion contradicts the computed arrival windows: every possible transition falls inside a declared stable interval"
            "the declared window and the structure disagree — move the stable interval or re-time the driving path"
          :: !acc);
  List.rev !acc

(* ---- catalogue ------------------------------------------------------------- *)

let all =
  [
    { id = "C1"; title = "edge-sensitive inputs trace to a clock assertion";
      section = "2.5, Figure 2-3"; severity = R.Error; check = check_c1 };
    { id = "C2"; title = "primary inputs carry assertions"; section = "2.5";
      severity = R.Error; check = check_c2 };
    { id = "C3"; title = "register and latch data inputs are checked";
      section = "Figures 2-1 to 2-3"; severity = R.Warning; check = check_c3 };
    { id = "C4"; title = "gated clocks carry &A/&H directives"; section = "2.6";
      severity = R.Warning; check = check_c4 };
    { id = "C5"; title = "clock skew stated where design rules default it";
      section = "2.5, 3.3"; severity = R.Info; check = check_c5 };
    { id = "C6"; title = "register data and clock agree on the clock domain";
      section = "2.1, 2.5"; severity = R.Warning; check = check_c6 };
    { id = "C7"; title = "no convergence of disjoint clock domains";
      section = "2.7"; severity = R.Warning; check = check_c7 };
    { id = "K1"; title = "delay ranges sane and within the period";
      section = "1.4.1.1"; severity = R.Error; check = check_k1 };
    { id = "K2"; title = "checker constraints feasible within the period";
      section = "2.9"; severity = R.Error; check = check_k2 };
    { id = "K3"; title = "directive length matches the gating depth";
      section = "2.8"; severity = R.Warning; check = check_k3 };
    { id = "K4"; title = "no combinational cycles"; section = "2.4";
      severity = R.Error; check = check_k4 };
    { id = "K5"; title = "assertion spellings and polarities consistent";
      section = "2.5.1"; severity = R.Error; check = check_k5 };
    { id = "K6"; title = "no dead logic"; section = "2.5";
      severity = R.Warning; check = check_k6 };
    { id = "K7"; title = "clocks not gated by data of their own domain";
      section = "2.6"; severity = R.Warning; check = check_k7 };
    { id = "W1"; title = "no vacuous stable assertions";
      section = "doc/WINDOWS.md"; severity = R.Info; check = check_w1 };
    { id = "W2"; title = "checkers not provably always-satisfied";
      section = "doc/WINDOWS.md"; severity = R.Info; check = check_w2 };
    { id = "W3"; title = "no statically guaranteed violations";
      section = "doc/WINDOWS.md"; severity = R.Error; check = check_w3 };
    { id = "W4"; title = "checker input windows bounded and constrained";
      section = "doc/WINDOWS.md"; severity = R.Warning; check = check_w4 };
    { id = "W5"; title = "stable assertions consistent with arrival windows";
      section = "doc/WINDOWS.md"; severity = R.Warning; check = check_w5 };
  ]

let find id =
  let id = String.uppercase_ascii id in
  List.find_opt (fun r -> r.id = id) all
