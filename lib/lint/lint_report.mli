(** Findings of the static design-rule audit (lint).

    Each finding carries the rule id that produced it, a severity, the
    net or instance it is anchored to, a message saying what is wrong
    and a hint saying how to fix it.  Findings render both as a
    Figure-3-11-style text listing and as JSON lines for tooling. *)

type severity = Error | Warning | Info

type locus =
  | Net of string   (** a signal, by its full net name *)
  | Inst of string  (** a primitive instance, e.g. ["REG.22"] *)
  | Design          (** a whole-design property *)

type finding = {
  f_rule : string;  (** rule id, e.g. ["C1"] or ["K4"] — see {!Rules.all} *)
  f_severity : severity;
  f_locus : locus;
  f_message : string;  (** what is wrong *)
  f_hint : string;     (** how to fix it *)
}

type t = {
  findings : finding list;
      (** sorted by rule id then locus name (see {!compare_finding}) *)
  nets_audited : int;
  insts_audited : int;
}

val severity_name : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val severity_of_name : string -> severity option

val locus_name : locus -> string
(** The net or instance name; ["(design)"] for {!Design}. *)

val count : severity -> t -> int

val clean : t -> bool
(** No [Error]-severity findings. *)

val rule_ids : t -> string list
(** The distinct rule ids that fired, sorted. *)

val by_rule : string -> t -> finding list

val compare_finding : finding -> finding -> int
(** Rule id first, then locus name, then severity and message.  Keyed on
    stable identifiers only, so golden listings survive changes to how
    individual rules enumerate the netlist (memoized analyses, iteration
    order). *)

val pp_finding : Format.formatter -> finding -> unit
(** One finding as two lines: the message line and the fix hint. *)

val pp : Format.formatter -> t -> unit
(** The full listing, in the style of the thesis's error listings
    (Figure 3-11): a header with severity totals, then every finding. *)

val finding_to_json : finding -> string
(** One finding as a single-line JSON object with keys [rule],
    [severity], [locus_kind], [locus], [message], [hint]. *)

val finding_of_json : string -> (finding, string) result
(** Parse a line produced by {!finding_to_json} (round-trip for
    tooling; accepts any flat JSON object with string values). *)

val pp_jsonl : Format.formatter -> t -> unit
(** Every finding as one JSON line (JSONL). *)
