(** The design-rule catalogue of the constraint lint.

    The rules audit an expanded {!Scald_core.Netlist.t} and its
    assertions {e statically} — no evaluation happens — mirroring the
    completeness (C) / consistency (K) split of SDC checkers.  A design
    whose constraints are incomplete can verify "clean" silently: the
    dynamic verifier only reports what its checkers execute (§2.9), so
    an unchecked flip-flop or an unasserted interface input produces no
    violation at all.  These rules close that gap.

    Completeness (is every constraint the designer should have written
    actually present?):
    - [C1] every edge-sensitive input (checker CK, register CLOCK,
      latch ENABLE) is driven — possibly through gating — from a signal
      carrying a [.P]/[.C] clock assertion (§2.5).
    - [C2] every primary (undriven) input carries an assertion (§2.5);
      subsumes {!Scald_core.Netlist.undriven_unasserted}.
    - [C3] every register/latch data input is covered by a SETUP/HOLD
      checker (Figures 2-1 to 2-3).
    - [C4] every gated clock — a clock-asserted signal entering a gate —
      carries an [&A]/[&H] hazard directive, or an explicit non-hazard
      directive as a waiver (§2.6).
    - [C5] clocks state their skew explicitly where the design rules
      supply a non-zero default skew (§2.5, §3.3).

    Consistency (are the constraints that {e are} present mutually
    satisfiable?):
    - [K1] every delay range has [0 <= min <= max] and fits within the
      clock period (§1.4.1.1) — component delays, wire overrides and
      the default wire rule.
    - [K2] checker constraints are feasible within the period: set-up +
      hold must fit, minimum pulse widths must fit, and the data path
      into a checker must leave set-up margin.
    - [K3] evaluation-directive strings are no longer than the levels
      of gating that can consume them (§2.8).
    - [K4] no combinational cycles (DFS over driver/fanout, no
      evaluation); unregistered feedback never converges (§2.4).
    - [K5] assertion spellings and polarities are consistent: one
      spelling per signal (§2.5.1), no stable-asserted signal used as a
      clock, no low-active clock entering an edge-sensitive input
      uncomplemented.
    - [K6] no dead logic: every driven net feeds a primitive or a
      checker. *)

type rule = {
  id : string;  (** ["C1"]..""["K6"] *)
  title : string;
  section : string;  (** thesis cross-reference, e.g. ["2.5.1"] *)
  severity : Lint_report.severity;  (** severity of the primary finding *)
  check : Scald_core.Netlist.t -> Lint_report.finding list;
}

val all : rule list
(** The full catalogue, completeness rules first. *)

val find : string -> rule option
(** Look up a rule by id (case-insensitive). *)
