type severity = Error | Warning | Info

type locus = Net of string | Inst of string | Design

type finding = {
  f_rule : string;
  f_severity : severity;
  f_locus : locus;
  f_message : string;
  f_hint : string;
}

type t = { findings : finding list; nets_audited : int; insts_audited : int }

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_of_name s =
  match String.lowercase_ascii s with
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let locus_name = function Net n -> n | Inst i -> i | Design -> "(design)"

let locus_kind = function Net _ -> "net" | Inst _ -> "inst" | Design -> "design"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let count sev t =
  List.length (List.filter (fun f -> f.f_severity = sev) t.findings)

let clean t = not (List.exists (fun f -> f.f_severity = Error) t.findings)

let rule_ids t =
  List.sort_uniq String.compare (List.map (fun f -> f.f_rule) t.findings)

let by_rule id t = List.filter (fun f -> f.f_rule = id) t.findings

let compare_finding a b =
  let c = String.compare a.f_rule b.f_rule in
  if c <> 0 then c
  else
    let c = String.compare (locus_name a.f_locus) (locus_name b.f_locus) in
    if c <> 0 then c
    else
      let c = compare (severity_rank a.f_severity) (severity_rank b.f_severity) in
      if c <> 0 then c else String.compare a.f_message b.f_message

let severity_tag = function
  | Error -> "**ERROR**"
  | Warning -> "*WARNING*"
  | Info -> "   INFO  "

let pp_finding ppf f =
  Format.fprintf ppf "@[<v>%s [%s] %s: %s@,           fix: %s@]"
    (severity_tag f.f_severity) f.f_rule (locus_name f.f_locus) f.f_message f.f_hint

let pp ppf t =
  Format.fprintf ppf "@[<v>CONSTRAINT LINT LISTING@,";
  Format.fprintf ppf "%d ERRORS   %d WARNINGS   %d INFOS   (%d nets, %d instances audited)@,"
    (count Error t) (count Warning t) (count Info t) t.nets_audited t.insts_audited;
  List.iter (fun f -> Format.fprintf ppf "%a@," pp_finding f) t.findings;
  if t.findings = [] then Format.fprintf ppf "(no findings)@,";
  Format.fprintf ppf "@]"

(* ---- JSON lines ---------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json f =
  Printf.sprintf
    "{\"rule\":\"%s\",\"severity\":\"%s\",\"locus_kind\":\"%s\",\"locus\":\"%s\",\"message\":\"%s\",\"hint\":\"%s\"}"
    (json_escape f.f_rule)
    (severity_name f.f_severity)
    (locus_kind f.f_locus)
    (json_escape (locus_name f.f_locus))
    (json_escape f.f_message) (json_escape f.f_hint)

(* A minimal parser for the flat string-valued JSON objects produced
   above — enough for tooling round-trips without a JSON dependency. *)
let parse_flat_object line =
  let n = String.length line in
  let pos = ref 0 in
  let error msg = Stdlib.Error (Printf.sprintf "%s at offset %d" msg !pos) in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false) do
      incr pos
    done
  in
  let parse_string () =
    if !pos >= n || line.[!pos] <> '"' then error "expected '\"'"
    else begin
      incr pos;
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then error "unterminated string"
        else
          match line.[!pos] with
          | '"' ->
            incr pos;
            Stdlib.Ok (Buffer.contents buf)
          | '\\' ->
            if !pos + 1 >= n then error "dangling escape"
            else begin
              (match line.[!pos + 1] with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | 'u' ->
                (* decode \uXXXX, ASCII range only *)
                if !pos + 5 < n then begin
                  let code = int_of_string ("0x" ^ String.sub line (!pos + 2) 4) in
                  if code < 128 then Buffer.add_char buf (Char.chr code)
                  else Buffer.add_char buf '?';
                  pos := !pos + 4
                end
              | c -> Buffer.add_char buf c);
              pos := !pos + 2;
              go ()
            end
          | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
      in
      go ()
    end
  in
  skip_ws ();
  if !pos >= n || line.[!pos] <> '{' then error "expected '{'"
  else begin
    incr pos;
    let rec members acc =
      skip_ws ();
      if !pos < n && line.[!pos] = '}' then begin
        incr pos;
        Stdlib.Ok (List.rev acc)
      end
      else
        match parse_string () with
        | Stdlib.Error e -> Stdlib.Error e
        | Stdlib.Ok key -> (
          skip_ws ();
          if !pos >= n || line.[!pos] <> ':' then error "expected ':'"
          else begin
            incr pos;
            skip_ws ();
            match parse_string () with
            | Stdlib.Error e -> Stdlib.Error e
            | Stdlib.Ok value -> (
              skip_ws ();
              if !pos < n && line.[!pos] = ',' then begin
                incr pos;
                members ((key, value) :: acc)
              end
              else if !pos < n && line.[!pos] = '}' then begin
                incr pos;
                Stdlib.Ok (List.rev ((key, value) :: acc))
              end
              else error "expected ',' or '}'")
          end)
    in
    members []
  end

let finding_of_json line =
  match parse_flat_object line with
  | Stdlib.Error e -> Stdlib.Error e
  | Stdlib.Ok fields ->
    let get k =
      match List.assoc_opt k fields with
      | Some v -> Stdlib.Ok v
      | None -> Stdlib.Error (Printf.sprintf "missing field %S" k)
    in
    let ( let* ) = Result.bind in
    let* rule = get "rule" in
    let* sev = get "severity" in
    let* kind = get "locus_kind" in
    let* locus = get "locus" in
    let* message = get "message" in
    let* hint = get "hint" in
    let* f_severity =
      match severity_of_name sev with
      | Some s -> Stdlib.Ok s
      | None -> Stdlib.Error (Printf.sprintf "unknown severity %S" sev)
    in
    let* f_locus =
      match kind with
      | "net" -> Stdlib.Ok (Net locus)
      | "inst" -> Stdlib.Ok (Inst locus)
      | "design" -> Stdlib.Ok Design
      | k -> Stdlib.Error (Printf.sprintf "unknown locus kind %S" k)
    in
    Stdlib.Ok { f_rule = rule; f_severity; f_locus; f_message = message; f_hint = hint }

let pp_jsonl ppf t =
  List.iter (fun f -> Format.fprintf ppf "%s@." (finding_to_json f)) t.findings
