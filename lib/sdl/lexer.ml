type token =
  | Word of string
  | Lparen
  | Rparen
  | Comma
  | Semi
  | Arrow
  | Equals
  | Minus
  | Scope_p
  | Scope_m
  | Amp of string
  | Eof

type lexeme = { tok : token; line : int }

let pp_token ppf = function
  | Word w -> Format.fprintf ppf "%S" w
  | Lparen -> Format.pp_print_string ppf "("
  | Rparen -> Format.pp_print_string ppf ")"
  | Comma -> Format.pp_print_string ppf ","
  | Semi -> Format.pp_print_string ppf ";"
  | Arrow -> Format.pp_print_string ppf "->"
  | Equals -> Format.pp_print_string ppf "="
  | Minus -> Format.pp_print_string ppf "-"
  | Scope_p -> Format.pp_print_string ppf "/P"
  | Scope_m -> Format.pp_print_string ppf "/M"
  | Amp d -> Format.fprintf ppf "&%s" d
  | Eof -> Format.pp_print_string ppf "<eof>"

let is_word_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '<' | '>' | ':' | '+' | '_' | '$' | '#' ->
    true
  | _ -> false

let is_letter c = match c with 'a' .. 'z' | 'A' .. 'Z' -> true | _ -> false

(* ---- incremental cursor ------------------------------------------------ *)

(* One token at a time over the source string: nothing but the source
   itself is retained, so a streaming consumer never materializes the
   token sequence (a million-primitive design has tens of millions of
   tokens — the old list-then-array pipeline dominated peak RSS). *)

type cursor = { src : string; len : int; mutable pos : int; mutable line : int }

let cursor src = { src; len = String.length src; pos = 0; line = 1 }

exception Lex_error of string

let word_end cu i =
  let src = cu.src and n = cu.len in
  let rec go i =
    if i >= n then i
    else
      let c = src.[i] in
      if is_word_char c then go (i + 1)
      else if
        (* '-' continues a word when glued between word characters:
           "P2-3", "SIZE-1", "-1.0" after the leading digit context. *)
        c = '-' && i + 1 < n && is_word_char src.[i + 1] && src.[i + 1] <> '>'
      then go (i + 1)
      else if
        (* '/' continues a word when it separates two numbers:
           "1.0/3.8"; "/P" and "/M" are scope tokens instead. *)
        c = '/' && i + 1 < n
        && (match src.[i + 1] with '0' .. '9' | '-' | '.' -> true | _ -> false)
      then go (i + 1)
      else i
  in
  go i

(* Raises [Lex_error]; returns [Eof] lexemes forever once exhausted. *)
let next cu =
  let src = cu.src and n = cu.len in
  let rec go i =
    if i >= n then begin
      cu.pos <- i;
      { tok = Eof; line = cu.line }
    end
    else
      let emit tok j =
        cu.pos <- j;
        { tok; line = cu.line }
      in
      let c = src.[i] in
      match c with
      | '\n' ->
        cu.line <- cu.line + 1;
        go (i + 1)
      | ' ' | '\t' | '\r' -> go (i + 1)
      | '-' when i + 1 < n && src.[i + 1] = '-' ->
        (* comment to end of line *)
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        go (skip (i + 2))
      | '-' when i + 1 < n && src.[i + 1] = '>' -> emit Arrow (i + 2)
      | '-' when i + 1 < n && is_word_char src.[i + 1] ->
        (* a glued "-1.0" negative number or "-WE" complement-as-word;
           lex as one word, the parser splits complements. *)
        let j = word_end cu (i + 1) in
        emit (Word (String.sub src i (j - i))) j
      | '-' -> emit Minus (i + 1)
      | '(' -> emit Lparen (i + 1)
      | ')' -> emit Rparen (i + 1)
      | ',' -> emit Comma (i + 1)
      | ';' -> emit Semi (i + 1)
      | '=' -> emit Equals (i + 1)
      | '/' when i + 1 < n && (src.[i + 1] = 'P' || src.[i + 1] = 'p') ->
        emit Scope_p (i + 2)
      | '/' when i + 1 < n && (src.[i + 1] = 'M' || src.[i + 1] = 'm') ->
        emit Scope_m (i + 2)
      | '&' ->
        let rec dend j = if j < n && is_letter src.[j] then dend (j + 1) else j in
        let j = dend (i + 1) in
        if j = i + 1 then
          raise (Lex_error (Printf.sprintf "line %d: '&' with no directive letters" cu.line))
        else emit (Amp (String.sub src (i + 1) (j - i - 1))) j
      | c when is_word_char c ->
        let j = word_end cu i in
        emit (Word (String.sub src i (j - i))) j
      | c ->
        raise (Lex_error (Printf.sprintf "line %d: unexpected character %C" cu.line c))
  in
  go cu.pos

let tokenize src =
  let cu = cursor src in
  let out = ref [] in
  try
    let rec go () =
      let lx = next cu in
      out := lx :: !out;
      match lx.tok with Eof -> Ok (List.rev !out) | _ -> go ()
    in
    go ()
  with Lex_error msg -> Error msg
