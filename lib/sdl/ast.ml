type scope = Param | Local | Global

type sigref = {
  complement : bool;
  name : string;
  scope : scope;
  directive : string option;
}

type prop = { p_name : string; p_values : float list }

type instance = {
  i_head : string;
  i_props : prop list;
  i_args : sigref list;
  i_outs : sigref list;
  i_line : int;
}

type macro_def = {
  m_name : string;
  m_params : sigref list;
  m_body : instance list;
  m_line : int;
}

type top_stmt =
  | Period of float
  | Clock_unit of float
  | Default_wire of float * float
  | Wire_rule of (float * float) * (float * float)
  | Wire_delay of sigref * (float * float)
  | Width_decl of sigref * int
  | Corners of (string * float list) list
      (* CORNERS slow, typ, hot = 1.4/1.2; — each entry a name with
         optional delay[/wire] scales; a bare name must be a preset *)
  | Macro of macro_def
  | Top_instance of instance

type design = top_stmt list

let pp_sigref ppf s =
  if s.complement then Format.pp_print_string ppf "- ";
  Format.pp_print_string ppf s.name;
  (match s.scope with
  | Param -> Format.pp_print_string ppf " /P"
  | Local -> Format.pp_print_string ppf " /M"
  | Global -> ());
  match s.directive with
  | Some d -> Format.fprintf ppf " &%s" d
  | None -> ()

let pp_instance ppf i =
  Format.fprintf ppf "%s" i.i_head;
  if i.i_props <> [] then begin
    Format.fprintf ppf " (";
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      (fun ppf p ->
        Format.fprintf ppf "%s=%s" p.p_name
          (String.concat "/" (List.map (Printf.sprintf "%g") p.p_values)))
      ppf i.i_props;
    Format.fprintf ppf ")"
  end;
  Format.fprintf ppf " (";
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_sigref ppf i.i_args;
  Format.fprintf ppf ")";
  if i.i_outs <> [] then begin
    Format.fprintf ppf " -> ";
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      pp_sigref ppf i.i_outs
  end
