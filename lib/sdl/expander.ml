open Scald_core

type summary = {
  s_macros_expanded : int;
  s_primitives : int;
  s_signals : int;
  s_synonyms : int;
}

type expansion = {
  e_netlist : Netlist.t;
  e_summary : summary;
  e_pass1_s : float;
  e_pass2_s : float;
  e_streamed : bool;
}

exception Expand_error of string

let fail fmt = Format.kasprintf (fun msg -> raise (Expand_error msg)) fmt

(* ---- size expressions in vector subscripts --------------------------------- *)

(* Evaluate an integer expression such as "SIZE-1" or "2*SIZE+1" under an
   environment of macro properties. *)
let eval_size_expr env line expr =
  let n = String.length expr in
  let pos = ref 0 in
  let peek () = if !pos < n then Some expr.[!pos] else None in
  let rec skip () =
    match peek () with
    | Some ' ' ->
      incr pos;
      skip ()
    | Some _ | None -> ()
  in
  let atom () =
    skip ();
    let start = !pos in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | 'a' .. 'z' | 'A' .. 'Z' | '_') ->
        incr pos;
        go ()
      | Some _ | None -> ()
    in
    go ();
    if !pos = start then fail "line %d: bad subscript expression %S" line expr;
    let word = String.sub expr start (!pos - start) in
    match int_of_string_opt word with
    | Some i -> i
    | None -> (
      match List.assoc_opt (String.uppercase_ascii word) env with
      | Some v -> v
      | None -> fail "line %d: unbound size variable %S in %S" line word expr)
  in
  let rec term acc =
    skip ();
    match peek () with
    | Some '*' ->
      incr pos;
      term (acc * atom ())
    | Some _ | None -> acc
  in
  let rec sum acc =
    skip ();
    match peek () with
    | Some '+' ->
      incr pos;
      sum (acc + term (atom ()))
    | Some '-' ->
      incr pos;
      sum (acc - term (atom ()))
    | Some _ | None -> acc
  in
  let result = sum (term (atom ())) in
  skip ();
  if !pos <> n then fail "line %d: trailing garbage in subscript %S" line expr;
  result

(* Rewrite every <...> group in a name, evaluating its expressions. *)
let substitute_subscripts env line name =
  let buf = Buffer.create (String.length name) in
  let n = String.length name in
  let rec go i =
    if i >= n then Buffer.contents buf
    else if name.[i] = '<' then (
      match String.index_from_opt name i '>' with
      | None -> fail "line %d: unclosed '<' in signal name %S" line name
      | Some j ->
        let inside = String.sub name (i + 1) (j - i - 1) in
        (match String.index_opt inside ':' with
        | None ->
          Buffer.add_string buf
            (Printf.sprintf "<%d>" (eval_size_expr env line inside))
        | Some c ->
          let lo = String.sub inside 0 c in
          let hi = String.sub inside (c + 1) (String.length inside - c - 1) in
          Buffer.add_string buf
            (Printf.sprintf "<%d:%d>" (eval_size_expr env line lo)
               (eval_size_expr env line hi)));
        go (j + 1))
    else begin
      Buffer.add_char buf name.[i];
      go (i + 1)
    end
  in
  go 0

(* Base of a formal parameter name: the words before any subscript or
   assertion, e.g. "I" for "I<0:SIZE-1>". *)
let param_base name =
  let stop =
    let lt = String.index_opt name '<' in
    let dot =
      (* assertion marker " ." *)
      let rec find i =
        if i + 1 >= String.length name then None
        else if name.[i] = ' ' && name.[i + 1] = '.' then Some i
        else find (i + 1)
      in
      find 0
    in
    match lt, dot with
    | None, None -> String.length name
    | Some a, None -> a
    | None, Some b -> b
    | Some a, Some b -> min a b
  in
  String.trim (String.sub name 0 stop)

(* ---- settings --------------------------------------------------------------- *)

type settings = {
  mutable period_ns : float option;
  mutable clock_unit_ns : float option;
  mutable default_wire : float * float;
  mutable wire_rule : ((float * float) * (float * float)) option;
  mutable corners : (string * float list) list option;
  macros : (string, Ast.macro_def) Hashtbl.t;
}

(* A CORNERS entry list into a validated table, reusing the CLI codec so
   SDL and [--corners] accept the same names and presets. *)
let corner_table_of entries =
  let part (name, scales) =
    match scales with
    | [] -> name
    | [ d ] -> Printf.sprintf "%s=%g" name d
    | [ d; w ] -> Printf.sprintf "%s=%g/%g" name d w
    | _ -> fail "CORNERS %s: expected dscale[/wscale]" name
  in
  match Corner.of_spec (String.concat "," (List.map part entries)) with
  | tbl -> tbl
  | exception Invalid_argument m -> fail "CORNERS: %s" m

let apply_corners settings nl =
  match settings.corners with
  | None -> ()
  | Some entries -> Netlist.set_corners nl (corner_table_of entries)

let collect_settings design =
  let s =
    { period_ns = None; clock_unit_ns = None; default_wire = (0.0, 2.0);
      wire_rule = None; corners = None; macros = Hashtbl.create 16 }
  in
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Period p -> s.period_ns <- Some p
      | Ast.Clock_unit u -> s.clock_unit_ns <- Some u
      | Ast.Default_wire (a, b) -> s.default_wire <- (a, b)
      | Ast.Wire_rule (base, per_load) -> s.wire_rule <- Some (base, per_load)
      | Ast.Corners cs -> s.corners <- Some cs
      | Ast.Macro m ->
        if Hashtbl.mem s.macros m.Ast.m_name then
          fail "line %d: macro %S defined twice" m.Ast.m_line m.Ast.m_name;
        Hashtbl.add s.macros m.Ast.m_name m
      | Ast.Wire_delay _ | Ast.Width_decl _ | Ast.Top_instance _ -> ())
    design;
  s

(* ---- resolved signal references ------------------------------------------------ *)

type binding = {
  b_name : string;
  b_complement : bool;
  b_directive : string option;
  b_local : bool;  (* a /M macro-local: chip-internal, zero wire delay *)
}

type frame = {
  f_env : (string * int) list;  (** size variables *)
  f_bindings : (string * binding) list;  (** formal base -> actual *)
  f_path : string;  (** unique prefix for /M locals *)
}

let top_frame = { f_env = []; f_bindings = []; f_path = "" }

let resolve_sigref frame line (s : Ast.sigref) =
  let name = substitute_subscripts frame.f_env line s.Ast.name in
  match s.Ast.scope with
  | Ast.Param -> (
    let base = param_base name in
    match List.assoc_opt base frame.f_bindings with
    | None ->
      if frame.f_path = "" then
        (* A /P reference outside any macro is just a global. *)
        { b_name = name; b_complement = s.Ast.complement; b_directive = s.Ast.directive;
          b_local = false }
      else fail "line %d: %S is not a parameter of this macro" line base
    | Some b ->
      {
        b_name = b.b_name;
        b_complement = s.Ast.complement <> b.b_complement;
        b_directive =
          (match s.Ast.directive with Some d -> Some d | None -> b.b_directive);
        b_local = b.b_local;
      })
  | Ast.Local ->
    {
      b_name = (if frame.f_path = "" then name else frame.f_path ^ "$" ^ name);
      b_complement = s.Ast.complement;
      b_directive = s.Ast.directive;
      b_local = frame.f_path <> "";
    }
  | Ast.Global ->
    { b_name = name; b_complement = s.Ast.complement; b_directive = s.Ast.directive;
      b_local = false }

(* ---- primitive heads --------------------------------------------------------------- *)

type head =
  | P of Primitive.t
  | Macro_call of Ast.macro_def

let prop_pair props name =
  List.find_map
    (fun (p : Ast.prop) ->
      if p.Ast.p_name = name then
        match p.Ast.p_values with
        | [ a; b ] -> Some (a, b)
        | [ a ] -> Some (a, a)
        | _ -> None
      else None)
    props

let prop_delay props line =
  match prop_pair props "RISE", prop_pair props "FALL" with
  | Some rise, Some fall -> Delay.of_rise_fall_ns ~rise ~fall
  | Some _, None | None, Some _ ->
    fail "line %d: RISE and FALL must be given together" line
  | None, None -> (
    match prop_pair props "DELAY" with
    | Some (a, b) -> Delay.of_ns a b
    | None -> fail "line %d: primitive needs a DELAY=min/max property" line)

let prop_time props name default =
  match prop_pair props name with Some (a, _) -> Timebase.ps_of_ns a | None -> default

let gate_fn_of_string = function
  | "OR" -> Some (Primitive.Or, false)
  | "NOR" -> Some (Primitive.Or, true)
  | "AND" -> Some (Primitive.And, false)
  | "NAND" -> Some (Primitive.And, true)
  | "XOR" -> Some (Primitive.Xor, false)
  | "XNOR" -> Some (Primitive.Xor, true)
  | "CHG" -> Some (Primitive.Chg, false)
  | _ -> None

let classify_head settings line head props =
  let upper = String.uppercase_ascii head in
  let words = String.split_on_char ' ' upper in
  match words with
  | [ "REG" ] -> P (Primitive.Reg { delay = prop_delay props line; has_set_reset = false })
  | [ "REG"; "RS" ] ->
    P (Primitive.Reg { delay = prop_delay props line; has_set_reset = true })
  | [ "LATCH" ] ->
    P (Primitive.Latch { delay = prop_delay props line; has_set_reset = false })
  | [ "LATCH"; "RS" ] ->
    P (Primitive.Latch { delay = prop_delay props line; has_set_reset = true })
  | [ "ZERO" ] -> P (Primitive.Const Tvalue.V0)
  | [ "ONE" ] -> P (Primitive.Const Tvalue.V1)
  | [ "BUF" ] -> P (Primitive.Buf { invert = false; delay = prop_delay props line })
  | [ "NOT" ] -> P (Primitive.Buf { invert = true; delay = prop_delay props line })
  | [ "2"; "MUX" ] ->
    let select_extra =
      match prop_pair props "SELDELAY" with
      | Some (a, b) -> Delay.of_ns a b
      | None -> Delay.zero
    in
    P (Primitive.Mux2 { delay = prop_delay props line; select_extra })
  | [ "SETUP"; "HOLD"; "CHK" ] ->
    P
      (Primitive.Setup_hold_check
         { setup = prop_time props "SETUP" 0; hold = prop_time props "HOLD" 0 })
  | [ "SETUP"; "RISE"; "HOLD"; "FALL"; "CHK" ] ->
    P
      (Primitive.Setup_rise_hold_fall_check
         { setup = prop_time props "SETUP" 0; hold = prop_time props "HOLD" 0 })
  | [ "MIN"; "PULSE"; "WIDTH" ] ->
    let high, low =
      match prop_pair props "WIDTH" with
      | Some (a, b) -> (Timebase.ps_of_ns a, Timebase.ps_of_ns b)
      | None -> (0, 0)
    in
    P (Primitive.Min_pulse_width { high; low })
  | [ n; g ] when gate_fn_of_string g <> None && int_of_string_opt n <> None -> (
    match gate_fn_of_string g, int_of_string_opt n with
    | Some (fn, invert), Some n_inputs ->
      P (Primitive.Gate { fn; n_inputs; invert; delay = prop_delay props line })
    | _, _ -> assert false)
  | _ -> (
    match Hashtbl.find_opt settings.macros head with
    | Some m -> Macro_call m
    | None -> fail "line %d: unknown primitive or macro %S" line head)

(* ---- pass 1: summary and synonym resolution ------------------------------------------ *)

(* Union-find over signal names. *)
module Synonyms = struct
  type t = (string, string) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let rec find t name =
    match Hashtbl.find_opt t name with
    | None -> name
    | Some parent ->
      let root = find t parent in
      if root <> parent then Hashtbl.replace t name root;
      root

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then Hashtbl.replace t ra rb
end

type pass1 = {
  mutable p1_macros : int;
  mutable p1_primitives : int;
  mutable p1_synonyms : int;
  (* [None] in streaming mode: the distinct-signal count is read off the
     netlist instead, and the synonym structure (whose path-qualified
     keys dominate the walker's live allocation) reduces to the counter
     above. *)
  p1_signals : (string, unit) Hashtbl.t option;
  p1_syn : Synonyms.t option;
}

let max_depth = 64

(* Walk the hierarchy once; [emit] is called for every fully resolved
   primitive instance.  Shared by both passes. *)
let rec walk_instance settings frame depth stats emit (inst : Ast.instance) =
  if depth > max_depth then
    fail "line %d: macro expansion deeper than %d (recursive macro?)" inst.Ast.i_line
      max_depth;
  let line = inst.Ast.i_line in
  let args = List.map (resolve_sigref frame line) inst.Ast.i_args in
  let outs = List.map (resolve_sigref frame line) inst.Ast.i_outs in
  match classify_head settings line inst.Ast.i_head inst.Ast.i_props with
  | P prim ->
    stats.p1_primitives <- stats.p1_primitives + 1;
    (match stats.p1_signals with
    | None -> ()
    | Some tbl -> List.iter (fun b -> Hashtbl.replace tbl b.b_name ()) (args @ outs));
    emit line inst.Ast.i_head prim args outs
  | Macro_call m ->
    stats.p1_macros <- stats.p1_macros + 1;
    let env =
      List.filter_map
        (fun (p : Ast.prop) ->
          match p.Ast.p_values with
          | [ v ] when Float.is_integer v -> Some (p.Ast.p_name, int_of_float v)
          | _ -> None)
        inst.Ast.i_props
    in
    let actuals = args @ outs in
    if List.length actuals <> List.length m.Ast.m_params then
      fail "line %d: macro %S expects %d connections, got %d" line m.Ast.m_name
        (List.length m.Ast.m_params) (List.length actuals);
    let bindings =
      List.map2
        (fun (formal : Ast.sigref) actual ->
          let fname = substitute_subscripts env m.Ast.m_line formal.Ast.name in
          let base = param_base fname in
          (* Record the synonym between the formal (path-qualified) and
             the actual signal name. *)
          (match stats.p1_syn with
          | None -> ()
          | Some syn ->
            let qualified = frame.f_path ^ "$" ^ m.Ast.m_name ^ "$" ^ fname in
            Synonyms.union syn qualified actual.b_name);
          stats.p1_synonyms <- stats.p1_synonyms + 1;
          (base, actual))
        m.Ast.m_params actuals
    in
    let frame' =
      {
        f_env = env;
        f_bindings = bindings;
        f_path = Printf.sprintf "%s$%s.%d" frame.f_path m.Ast.m_name line;
      }
    in
    List.iter (walk_instance settings frame' (depth + 1) stats emit) m.Ast.m_body

(* ---- pass 2: netlist construction ------------------------------------------------------- *)

let conn_of_binding nl b =
  let directive =
    match b.b_directive with
    | None -> []
    | Some d -> Directive.of_string_exn d
  in
  let id = Netlist.signal nl b.b_name in
  if b.b_local then Netlist.set_wire_delay nl id Delay.zero;
  Netlist.conn ~invert:b.b_complement ~directive id

let expand ?defaults design =
  try
    let settings = collect_settings design in
    let period_ns =
      match settings.period_ns with
      | Some p -> p
      | None -> fail "design has no PERIOD statement"
    in
    let clock_unit_ns =
      match settings.clock_unit_ns with Some u -> u | None -> period_ns /. 8.
    in
    let tb = Timebase.make ~period_ns ~clock_unit_ns in
    let wmin, wmax = settings.default_wire in
    let run_pass emit =
      let stats =
        {
          p1_macros = 0;
          p1_primitives = 0;
          p1_synonyms = 0;
          p1_signals = Some (Hashtbl.create 64);
          p1_syn = Some (Synonyms.create ());
        }
      in
      List.iter
        (fun stmt ->
          match stmt with
          | Ast.Top_instance i -> walk_instance settings top_frame 0 stats emit i
          | Ast.Period _ | Ast.Clock_unit _ | Ast.Default_wire _ | Ast.Wire_rule _
          | Ast.Wire_delay _ | Ast.Width_decl _ | Ast.Corners _ | Ast.Macro _ ->
            ())
        design;
      stats
    in
    (* Pass 1: summary listing and synonym structure only. *)
    let t0 = Sys.time () in
    let stats1 = run_pass (fun _ _ _ _ _ -> ()) in
    let pass1_s = Sys.time () -. t0 in
    (* Pass 2: output the fully expanded design. *)
    let nl =
      Netlist.create tb ?defaults ~default_wire_delay:(Delay.of_ns wmin wmax)
    in
    let emit line head prim args outs =
      let inputs = List.map (conn_of_binding nl) args in
      let output =
        match outs with
        | [] -> None
        | [ o ] ->
          if o.b_complement then
            fail "line %d: complemented output is not supported" line
          else Some (Netlist.signal nl o.b_name)
        | _ -> fail "line %d: primitives have at most one output" line
      in
      ignore
        (Netlist.add nl ~name:(Printf.sprintf "%s.%d" head line) prim ~inputs ~output)
    in
    let t0 = Sys.time () in
    let _stats2 = run_pass emit in
    let pass2_s = Sys.time () -. t0 in
    (* Apply wire-delay and width declarations to the built netlist. *)
    List.iter
      (fun stmt ->
        match stmt with
        | Ast.Wire_delay (s, (a, b)) ->
          let id = Netlist.signal nl s.Ast.name in
          Netlist.set_wire_delay nl id (Delay.of_ns a b)
        | Ast.Width_decl (s, w) ->
          let id = Netlist.signal nl s.Ast.name in
          Netlist.set_width nl id w
        | Ast.Period _ | Ast.Clock_unit _ | Ast.Default_wire _ | Ast.Wire_rule _
        | Ast.Corners _ | Ast.Macro _ | Ast.Top_instance _ ->
          ())
      design;
    (* The refined interconnection rule fills every remaining net from
       its fanout count (explicit WIRE DELAYs, /M locals and de-skewed
       clock runs keep their settings). *)
    (match settings.wire_rule with
    | None -> ()
    | Some ((b1, b2), (p1, p2)) ->
      ignore
        (Wire_rule.apply nl
           (Wire_rule.loaded ~base:(Delay.of_ns b1 b2) ~per_load:(Delay.of_ns p1 p2))));
    apply_corners settings nl;
    Netlist.trim nl;
    Ok
      {
        e_netlist = nl;
        e_pass1_s = pass1_s;
        e_pass2_s = pass2_s;
        e_streamed = false;
        e_summary =
          {
            s_macros_expanded = stats1.p1_macros;
            s_primitives = stats1.p1_primitives;
            s_signals =
              (match stats1.p1_signals with Some tbl -> Hashtbl.length tbl | None -> 0);
            s_synonyms = stats1.p1_synonyms;
          };
      }
  with
  | Expand_error msg -> Error msg
  | Invalid_argument msg -> Error msg

let expand_exn ?defaults design =
  match expand ?defaults design with
  | Ok e -> e
  | Error msg -> invalid_arg ("Sdl expand: " ^ msg)

(* ---- streaming expansion ------------------------------------------------------------------ *)

(* Single pass over the statement stream: statistics and netlist output
   are produced together, and no design AST is ever materialized, so
   peak RSS tracks the expanded design rather than the source's token
   sequence or macro tree.

   Equivalence with the two-pass [expand] requires care on ordering:

   - The netlist is created lazily at the first top-level instance; a
     PERIOD statement must precede it.  If any timing setting (PERIOD,
     CLOCK UNIT, DEFAULT WIRE DELAY) changes *after* that point the
     materialized path would have used the later value, so we bail out
     with [Error] and let {!load} fall back.
   - Macros must be defined before use; a forward reference fails with
     the usual "unknown primitive or macro" error, and {!load} falls
     back to the materialized path, which accepts it.
   - WIRE DELAY and WIDTH declarations are deferred and applied after
     the stream in textual order — exactly where the two-pass expander
     applies them — so net-id assignment and final delays are
     bit-identical. *)
let expand_stream ?defaults src =
  try
    let settings =
      { period_ns = None; clock_unit_ns = None; default_wire = (0.0, 2.0);
        wire_rule = None; corners = None; macros = Hashtbl.create 16 }
    in
    let stats =
      (* No signal table or synonym structure: the distinct-signal
         count equals the net count of the netlist being built (every
         primitive arg/out becomes a net, and nothing else does until
         the deferred declarations run). *)
      { p1_macros = 0; p1_primitives = 0; p1_synonyms = 0;
        p1_signals = None; p1_syn = None }
    in
    let nl_ref = ref None in
    let snapshot = ref None in
    let deferred = ref [] in
    let t0 = Sys.time () in
    let ensure_nl () =
      match !nl_ref with
      | Some nl -> nl
      | None ->
        let period_ns =
          match settings.period_ns with
          | Some p -> p
          | None -> fail "design has no PERIOD statement before the first instance"
        in
        let clock_unit_ns =
          match settings.clock_unit_ns with Some u -> u | None -> period_ns /. 8.
        in
        let tb = Timebase.make ~period_ns ~clock_unit_ns in
        let wmin, wmax = settings.default_wire in
        let nl =
          Netlist.create tb ?defaults ~default_wire_delay:(Delay.of_ns wmin wmax)
        in
        nl_ref := Some nl;
        snapshot := Some (settings.period_ns, settings.clock_unit_ns, settings.default_wire);
        nl
    in
    let emit line head prim args outs =
      let nl = ensure_nl () in
      let inputs = List.map (conn_of_binding nl) args in
      let output =
        match outs with
        | [] -> None
        | [ o ] ->
          if o.b_complement then
            fail "line %d: complemented output is not supported" line
          else Some (Netlist.signal nl o.b_name)
        | _ -> fail "line %d: primitives have at most one output" line
      in
      ignore
        (Netlist.add nl ~name:(Printf.sprintf "%s.%d" head line) prim ~inputs ~output)
    in
    let stream_result =
      Parser.iter_stream src (fun stmt ->
          match stmt with
          | Ast.Period p -> settings.period_ns <- Some p
          | Ast.Clock_unit u -> settings.clock_unit_ns <- Some u
          | Ast.Default_wire (a, b) -> settings.default_wire <- (a, b)
          | Ast.Wire_rule (base, per_load) -> settings.wire_rule <- Some (base, per_load)
          (* corners never affect expansion (no snapshot guard needed):
             the table is installed once, after the stream *)
          | Ast.Corners cs -> settings.corners <- Some cs
          | Ast.Macro m ->
            if Hashtbl.mem settings.macros m.Ast.m_name then
              fail "line %d: macro %S defined twice" m.Ast.m_line m.Ast.m_name;
            Hashtbl.add settings.macros m.Ast.m_name m
          | Ast.Wire_delay _ | Ast.Width_decl _ -> deferred := stmt :: !deferred
          | Ast.Top_instance i -> walk_instance settings top_frame 0 stats emit i)
    in
    match stream_result with
    | Error e -> Error e
    | Ok () -> (
      match !snapshot with
      | Some (p, cu, dw)
        when p <> settings.period_ns || cu <> settings.clock_unit_ns
             || dw <> settings.default_wire ->
        (* A late setting would have applied retroactively under the
           two-pass expander; defer to it. *)
        Error "timing settings changed after the first instance"
      | _ ->
        let nl = ensure_nl () in
        let n_signals = Netlist.n_nets nl in
        List.iter
          (fun stmt ->
            match stmt with
            | Ast.Wire_delay (s, (a, b)) ->
              let id = Netlist.signal nl s.Ast.name in
              Netlist.set_wire_delay nl id (Delay.of_ns a b)
            | Ast.Width_decl (s, w) ->
              let id = Netlist.signal nl s.Ast.name in
              Netlist.set_width nl id w
            | _ -> ())
          (List.rev !deferred);
        (match settings.wire_rule with
        | None -> ()
        | Some ((b1, b2), (p1, p2)) ->
          ignore
            (Wire_rule.apply nl
               (Wire_rule.loaded ~base:(Delay.of_ns b1 b2) ~per_load:(Delay.of_ns p1 p2))));
        apply_corners settings nl;
        Netlist.trim nl;
        Ok
          {
            e_netlist = nl;
            e_pass1_s = 0.;
            e_pass2_s = Sys.time () -. t0;
            e_streamed = true;
            e_summary =
              {
                s_macros_expanded = stats.p1_macros;
                s_primitives = stats.p1_primitives;
                s_signals = n_signals;
                s_synonyms = stats.p1_synonyms;
              };
          })
  with
  | Expand_error msg -> Error msg
  | Invalid_argument msg -> Error msg

let load ?defaults src =
  match expand_stream ?defaults src with
  | Ok e -> Ok e
  | Error _ ->
    (* The streaming pass is strictly stricter (macros before use,
       PERIOD before the first instance, no late setting changes), so
       on any error re-run the permissive materialized path: behaviour
       and error messages match the pre-streaming expander exactly. *)
    (match Parser.parse src with Error e -> Error e | Ok d -> expand ?defaults d)

let pp_summary ppf s =
  Format.fprintf ppf
    "macro expansions: %d  primitives: %d  signals: %d  synonyms resolved: %d"
    s.s_macros_expanded s.s_primitives s.s_signals s.s_synonyms
