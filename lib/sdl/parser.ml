(* The parser runs over the incremental lexer with a two-lexeme
   lookahead window — the grammar never needs more — so no token
   sequence is ever materialized. *)
type state = { cu : Lexer.cursor; mutable t0 : Lexer.lexeme; mutable t1 : Lexer.lexeme }

exception Parse_error of string

let make_state src =
  let cu = Lexer.cursor src in
  let t0 = Lexer.next cu in
  let t1 = match t0.Lexer.tok with Lexer.Eof -> t0 | _ -> Lexer.next cu in
  { cu; t0; t1 }

let fail st fmt =
  let line = st.t0.Lexer.line in
  Format.kasprintf (fun msg -> raise (Parse_error (Printf.sprintf "line %d: %s" line msg))) fmt

let peek st = st.t0.Lexer.tok

let peek2 st = st.t1.Lexer.tok

let line st = st.t0.Lexer.line

let advance st =
  st.t0 <- st.t1;
  match st.t1.Lexer.tok with
  | Lexer.Eof -> ()
  | _ -> st.t1 <- Lexer.next st.cu

let expect st tok what =
  if peek st = tok then advance st
  else fail st "expected %s, found %a" what Lexer.pp_token (peek st)

let keyword_is w kw = String.uppercase_ascii w = kw

let starts_with_digit w = String.length w > 0 && match w.[0] with '0' .. '9' -> true | _ -> false

let has_assertion name =
  (* a " .P", " .C" or " .S" marker somewhere in the collected name *)
  let n = String.length name in
  let rec go i =
    if i + 2 >= n then false
    else if
      name.[i] = ' ' && name.[i + 1] = '.'
      && (match Char.uppercase_ascii name.[i + 2] with 'P' | 'C' | 'S' -> true | _ -> false)
    then true
    else go (i + 1)
  in
  go 0

(* ---- numbers ------------------------------------------------------------- *)

let parse_floats st w =
  let parts = String.split_on_char '/' w in
  List.map
    (fun p ->
      match float_of_string_opt p with
      | Some f -> f
      | None -> fail st "expected a number, found %S" p)
    parts

let parse_number st =
  match peek st with
  | Lexer.Word w ->
    advance st;
    (match parse_floats st w with
    | [ f ] -> f
    | _ -> fail st "expected a single number, found %S" w)
  | t -> fail st "expected a number, found %a" Lexer.pp_token t

let parse_pair st =
  match peek st with
  | Lexer.Word w ->
    advance st;
    (match parse_floats st w with
    | [ a; b ] -> (a, b)
    | [ a ] -> (a, a)
    | _ -> fail st "expected min/max pair, found %S" w)
  | t -> fail st "expected min/max pair, found %a" Lexer.pp_token t

(* ---- signal references ------------------------------------------------------ *)

let parse_sigref st =
  let complement =
    match peek st with
    | Lexer.Minus ->
      advance st;
      true
    | _ -> false
  in
  let buf = Buffer.create 32 in
  let rec words () =
    match peek st with
    | Lexer.Word w ->
      advance st;
      if Buffer.length buf > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf w;
      words ()
    | Lexer.Comma -> (
      (* A comma directly followed by a digit-initial word continues a
         multi-range assertion such as ".C2-3,5-6". *)
      match peek2 st with
      | Lexer.Word w when starts_with_digit w && has_assertion (Buffer.contents buf) ->
        advance st;
        advance st;
        Buffer.add_char buf ',';
        Buffer.add_string buf w;
        words ()
      | _ -> ())
    | _ -> ()
  in
  words ();
  if Buffer.length buf = 0 then fail st "expected a signal name, found %a" Lexer.pp_token (peek st);
  let scope =
    match peek st with
    | Lexer.Scope_p ->
      advance st;
      Ast.Param
    | Lexer.Scope_m ->
      advance st;
      Ast.Local
    | _ -> Ast.Global
  in
  let directive =
    match peek st with
    | Lexer.Amp d ->
      advance st;
      Some d
    | _ -> None
  in
  { Ast.complement; name = Buffer.contents buf; scope; directive }

let rec parse_sigref_list st acc =
  let s = parse_sigref st in
  match peek st with
  | Lexer.Comma ->
    advance st;
    parse_sigref_list st (s :: acc)
  | _ -> List.rev (s :: acc)

(* ---- properties ---------------------------------------------------------------- *)

let rec parse_props st acc =
  match peek st with
  | Lexer.Word name when peek2 st = Lexer.Equals ->
    advance st;
    advance st;
    let values =
      match peek st with
      | Lexer.Word w ->
        advance st;
        parse_floats st w
      | t -> fail st "expected property value, found %a" Lexer.pp_token t
    in
    let prop = { Ast.p_name = String.uppercase_ascii name; p_values = values } in
    (match peek st with
    | Lexer.Comma ->
      advance st;
      parse_props st (prop :: acc)
    | _ -> List.rev (prop :: acc))
  | t -> fail st "expected NAME=value property, found %a" Lexer.pp_token t

(* ---- instances -------------------------------------------------------------------- *)

let parse_head st =
  let buf = Buffer.create 16 in
  let rec words () =
    match peek st with
    | Lexer.Word w ->
      advance st;
      if Buffer.length buf > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf w;
      words ()
    | _ -> ()
  in
  words ();
  if Buffer.length buf = 0 then
    fail st "expected a primitive or macro name, found %a" Lexer.pp_token (peek st);
  Buffer.contents buf

let parse_instance st =
  let i_line = line st in
  let head = parse_head st in
  expect st Lexer.Lparen "'('";
  (* Disambiguate a property group from the argument list: properties
     always start with NAME= . *)
  let props =
    match peek st, peek2 st with
    | Lexer.Word _, Lexer.Equals ->
      let props = parse_props st [] in
      expect st Lexer.Rparen "')' after properties";
      expect st Lexer.Lparen "'(' before arguments";
      props
    | _, _ -> []
  in
  let args = if peek st = Lexer.Rparen then [] else parse_sigref_list st [] in
  expect st Lexer.Rparen "')' after arguments";
  let outs =
    match peek st with
    | Lexer.Arrow ->
      advance st;
      parse_sigref_list st []
    | _ -> []
  in
  expect st Lexer.Semi "';'";
  { Ast.i_head = head; i_props = props; i_args = args; i_outs = outs; i_line }

(* ---- macro definitions --------------------------------------------------------------- *)

let parse_macro st =
  let m_line = line st in
  advance st;
  (* MACRO *)
  let name = parse_head st in
  expect st Lexer.Semi "';' after macro name";
  let params =
    match peek st with
    | Lexer.Word w when keyword_is w "PARAMETER" ->
      advance st;
      let ps = parse_sigref_list st [] in
      expect st Lexer.Semi "';' after parameters";
      ps
    | _ -> []
  in
  (match peek st with
  | Lexer.Word w when keyword_is w "BODY" -> advance st
  | t -> fail st "expected BODY, found %a" Lexer.pp_token t);
  let rec body acc =
    match peek st with
    | Lexer.Word w when keyword_is w "END" ->
      advance st;
      expect st Lexer.Semi "';' after END";
      List.rev acc
    | Lexer.Eof -> fail st "unterminated macro %s (missing END)" name
    | _ -> body (parse_instance st :: acc)
  in
  let m_body = body [] in
  { Ast.m_name = name; m_params = params; m_body; m_line }

(* ---- top level --------------------------------------------------------------------------- *)

let parse_paren_sigref st =
  expect st Lexer.Lparen "'('";
  let s = parse_sigref st in
  expect st Lexer.Rparen "')'";
  s

let parse_top st =
  match peek st with
  | Lexer.Word w when keyword_is w "MACRO" -> Ast.Macro (parse_macro st)
  | Lexer.Word w when keyword_is w "PERIOD" ->
    advance st;
    let f = parse_number st in
    expect st Lexer.Semi "';'";
    Ast.Period f
  | Lexer.Word w
    when keyword_is w "CLOCK"
         && match peek2 st with Lexer.Word u -> keyword_is u "UNIT" | _ -> false ->
    advance st;
    advance st;
    let f = parse_number st in
    expect st Lexer.Semi "';'";
    Ast.Clock_unit f
  | Lexer.Word w
    when keyword_is w "DEFAULT"
         && match peek2 st with Lexer.Word u -> keyword_is u "WIRE" | _ -> false ->
    advance st;
    advance st;
    (match peek st with
    | Lexer.Word d when keyword_is d "DELAY" -> advance st
    | t -> fail st "expected DELAY, found %a" Lexer.pp_token t);
    let a, b = parse_pair st in
    expect st Lexer.Semi "';'";
    Ast.Default_wire (a, b)
  | Lexer.Word w
    when keyword_is w "WIRE"
         && match peek2 st with Lexer.Word u -> keyword_is u "DELAY" | _ -> false ->
    advance st;
    advance st;
    let s = parse_paren_sigref st in
    expect st Lexer.Equals "'='";
    let a, b = parse_pair st in
    expect st Lexer.Semi "';'";
    Ast.Wire_delay (s, (a, b))
  | Lexer.Word w
    when keyword_is w "WIRE"
         && match peek2 st with Lexer.Word u -> keyword_is u "RULE" | _ -> false ->
    advance st;
    advance st;
    let base = parse_pair st in
    (match peek st, peek2 st with
    | Lexer.Word p1, Lexer.Word p2 when keyword_is p1 "PER" && keyword_is p2 "LOAD" ->
      advance st;
      advance st
    | _, _ -> fail st "expected PER LOAD after the base range");
    let per_load = parse_pair st in
    expect st Lexer.Semi "';'";
    Ast.Wire_rule (base, per_load)
  | Lexer.Word w when keyword_is w "CORNERS" ->
    advance st;
    let rec entries acc =
      match peek st with
      | Lexer.Word name ->
        advance st;
        let scales =
          match peek st with
          | Lexer.Equals -> (
            advance st;
            match peek st with
            | Lexer.Word v ->
              advance st;
              parse_floats st v
            | t -> fail st "expected corner scales, found %a" Lexer.pp_token t)
          | _ -> []
        in
        let e = (name, scales) in
        (match peek st with
        | Lexer.Comma ->
          advance st;
          entries (e :: acc)
        | _ -> List.rev (e :: acc))
      | t -> fail st "expected a corner name, found %a" Lexer.pp_token t
    in
    let es = entries [] in
    expect st Lexer.Semi "';'";
    Ast.Corners es
  | Lexer.Word w
    when keyword_is w "WIDTH" && peek2 st = Lexer.Lparen ->
    advance st;
    let s = parse_paren_sigref st in
    expect st Lexer.Equals "'='";
    let n = parse_number st in
    expect st Lexer.Semi "';'";
    Ast.Width_decl (s, int_of_float n)
  | _ -> Ast.Top_instance (parse_instance st)

let iter_stream src f =
  try
    let st = make_state src in
    let rec go () =
      match peek st with
      | Lexer.Eof -> Ok ()
      | _ ->
        f (parse_top st);
        go ()
    in
    go ()
  with
  | Parse_error msg -> Error msg
  | Lexer.Lex_error msg -> Error msg

let parse src =
  let acc = ref [] in
  match iter_stream src (fun stmt -> acc := stmt :: !acc) with
  | Ok () -> Ok (List.rev !acc)
  | Error e -> Error e

let parse_exn src =
  match parse src with Ok d -> d | Error e -> invalid_arg ("Sdl parse: " ^ e)
