(** The SCALD Macro Expander (§3.3.2, Table 3-1).

    Processing happens in the thesis's three phases:

    + reading the input and building data structures ({!Parser});
    + {b Pass 1}: an expansion of the design that builds the summary and
      a synonym structure resolving the different names of each signal
      (a macro's formal parameter and the caller's actual signal are two
      names for one net);
    + {b Pass 2}: a second expansion that outputs the fully elaborated
      design — here, a {!Scald_core.Netlist.t} ready for the Timing
      Verifier.

    Macros take numeric properties (e.g. [SIZE=32]) that parameterize
    vector subscripts: a parameter declared [I<0:SIZE-1>] expands to
    [I<0:31>].  One expanded primitive stands for the whole vector —
    vector symmetry is exploited, not bit-blasted (§3.3.2). *)

type summary = {
  s_macros_expanded : int;  (** macro call sites expanded *)
  s_primitives : int;       (** primitive instances emitted *)
  s_signals : int;          (** distinct signals after synonym resolution *)
  s_synonyms : int;         (** formal/actual name pairs resolved *)
}

type expansion = {
  e_netlist : Scald_core.Netlist.t;
  e_summary : summary;
  e_pass1_s : float;  (** CPU seconds spent in Pass 1 (0 when streamed) *)
  e_pass2_s : float;  (** CPU seconds spent in Pass 2 (netlist output) *)
  e_streamed : bool;  (** built by the single-pass streaming expander *)
}

val expand :
  ?defaults:Scald_core.Assertion.defaults ->
  Ast.design ->
  (expansion, string) result
(** Run both passes over a parsed design.  The design must contain a
    [PERIOD] statement; [CLOCK UNIT] defaults to one eighth of the
    period, the default wire delay to 0.0/2.0 ns. *)

val expand_exn : ?defaults:Scald_core.Assertion.defaults -> Ast.design -> expansion

val expand_stream :
  ?defaults:Scald_core.Assertion.defaults -> string -> (expansion, string) result
(** Single-pass streaming expansion: statements are parsed one at a
    time ({!Parser.iter_stream}) and primitives are emitted into the
    netlist as they are reached, so peak memory tracks the expanded
    design rather than the source's token sequence or macro tree.

    Stricter than {!expand}: macros must be defined before use,
    [PERIOD] must precede the first instance, and the timing settings
    ([PERIOD], [CLOCK UNIT], [DEFAULT WIRE DELAY]) must not change
    after the first instance.  On designs both accept, the resulting
    netlist is bit-identical to the two-pass expander's. *)

val load : ?defaults:Scald_core.Assertion.defaults -> string -> (expansion, string) result
(** Expand a source text: tries {!expand_stream} first and transparently
    falls back to parse + {!expand} if the streaming pass rejects the
    design, so all designs the two-pass expander accepts still load —
    only the peak memory differs. *)

val pp_summary : Format.formatter -> summary -> unit
