(** Recursive-descent parser for the textual SCALD HDL.

    See {!Ast} for the grammar by example.  Keywords are
    case-insensitive; signal names keep their case.  Assertions with
    multiple ranges ([.C2-3,5-6]) are supported — a comma directly
    followed by a digit-initial range continues the assertion rather
    than starting a new argument.  Parenthesized explicit skew
    specifications are not accepted in HDL names (use the library API
    for those). *)

val parse : string -> (Ast.design, string) result
(** Parse a whole source text. *)

val iter_stream : string -> (Ast.top_stmt -> unit) -> (unit, string) result
(** Parse statement-at-a-time, invoking the callback on each top-level
    statement as soon as it is complete.  Nothing but the source string
    and the statement in flight is retained — the backbone of streaming
    macro expansion ({!Expander.expand_stream}).  A lex or parse error
    stops the iteration; statements already delivered stay delivered. *)

val parse_exn : string -> Ast.design
(** @raise Invalid_argument with the parse error. *)
