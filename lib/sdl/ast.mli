(** Abstract syntax of the SCALD-like hardware description language.

    The original SCALD Hardware Description Language is graphics-based
    (drawings captured with the Stanford University Drawing System); this
    is a textual rendering with the same structure: hierarchical macro
    definitions with width parameters, signal names that carry timing
    assertions, complement prefixes, scope suffixes ([/P] parameter,
    [/M] macro-local) and evaluation directives ([&H...]).

    Example:
    {v
    MACRO REG 10176;
    PARAMETER I<0:SIZE-1> /P, CK /P, Q<0:SIZE-1> /P;
    BODY
      REG (DELAY=1.5/4.5) (I<0:SIZE-1> /P, CK /P) -> Q<0:SIZE-1> /P;
      SETUP HOLD CHK (SETUP=2.5, HOLD=1.5) (I<0:SIZE-1> /P, CK /P);
    END;

    PERIOD 50.0;
    CLOCK UNIT 6.25;
    REG 10176 (SIZE=32) (RAM OUT, CK .P0-4) -> REG OUT;
    v} *)

type scope =
  | Param   (** [/P]: a parameter of the enclosing macro *)
  | Local   (** [/M]: local to the macro; renamed uniquely per expansion *)
  | Global  (** no suffix: a design-wide signal *)

type sigref = {
  complement : bool;  (** leading ["-"] *)
  name : string;      (** full signal name text, including any vector
                          subscript (possibly with size expressions) and
                          assertion suffix *)
  scope : scope;
  directive : string option;  (** trailing ["&..."] evaluation string *)
}

type prop = {
  p_name : string;
  p_values : float list;  (** slash-separated numbers, e.g. [DELAY=1.0/3.8] *)
}

type instance = {
  i_head : string;      (** primitive or macro name, e.g. ["3 CHG"] *)
  i_props : prop list;
  i_args : sigref list;
  i_outs : sigref list; (** after ["->"]; empty for checkers *)
  i_line : int;
}

type macro_def = {
  m_name : string;
  m_params : sigref list;
  m_body : instance list;
  m_line : int;
}

type top_stmt =
  | Period of float             (** [PERIOD 50.0;] in ns *)
  | Clock_unit of float         (** [CLOCK UNIT 6.25;] in ns *)
  | Default_wire of float * float  (** [DEFAULT WIRE DELAY 0.0/2.0;] *)
  | Wire_rule of (float * float) * (float * float)
      (** [WIRE RULE 0.0/1.0 PER LOAD 0.0/0.5;] — the §3.3 refined
          interconnection rule: base range plus an increment per load
          beyond the first, applied to every net without an explicit
          [WIRE DELAY] *)
  | Wire_delay of sigref * (float * float)
      (** [WIRE DELAY (ADR<0:3>) = 0.0/6.0;] *)
  | Width_decl of sigref * int  (** [WIDTH (W DATA .S0-6) = 32;] *)
  | Corners of (string * float list) list
      (** [CORNERS slow, typ, hot = 1.4/1.2;] — each entry names a delay
          corner with optional delay[/wire] scale factors; a bare name
          must be one of the presets ([slow], [typ], [fast]) *)
  | Macro of macro_def
  | Top_instance of instance

type design = top_stmt list

val pp_sigref : Format.formatter -> sigref -> unit
val pp_instance : Format.formatter -> instance -> unit
