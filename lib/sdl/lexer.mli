(** Tokenizer for the textual SCALD HDL.

    Signal names are multi-word and may contain periods, vector
    subscripts and assertion ranges, so the lexer is deliberately
    permissive: anything that is not punctuation becomes a [Word], and
    the parser joins adjacent words into names.  ["--"] starts a comment
    to end of line. *)

type token =
  | Word of string
  | Lparen
  | Rparen
  | Comma
  | Semi
  | Arrow    (** ["->"] *)
  | Equals
  | Minus    (** a standalone ["-"]: the complement prefix *)
  | Scope_p  (** ["/P"] *)
  | Scope_m  (** ["/M"] *)
  | Amp of string  (** ["&HZ"] evaluation directive *)
  | Eof

type lexeme = { tok : token; line : int }

type cursor
(** Incremental tokenizer state: one token at a time over the source,
    retaining nothing but the source string itself.  This is what keeps
    streaming expansion's peak RSS proportional to the expanded design
    rather than the token sequence. *)

val cursor : string -> cursor

exception Lex_error of string

val next : cursor -> lexeme
(** The next lexeme; returns [Eof] lexemes forever once the source is
    exhausted.  @raise Lex_error on a malformed character sequence. *)

val tokenize : string -> (lexeme list, string) result
(** Tokenize a whole source text; the list always ends with [Eof]. *)

val pp_token : Format.formatter -> token -> unit
