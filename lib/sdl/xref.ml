open Scald_core

type entry = {
  x_signal : string;
  x_width : int;
  x_defined_by : string option;
  x_used_by : string list;
  x_assertion : string option;
}

let entry_of_net nl (n : Netlist.net) =
  {
    x_signal = n.Netlist.n_name;
    x_width = n.Netlist.n_width;
    x_defined_by =
      Option.map (fun i -> (Netlist.inst nl i).Netlist.i_name) n.Netlist.n_driver;
    x_used_by =
      List.rev_map (fun i -> (Netlist.inst nl i).Netlist.i_name) (Netlist.fanout n);
    x_assertion = Option.map Assertion.to_string n.Netlist.n_assertion;
  }

let build nl =
  let entries = ref [] in
  Netlist.iter_nets nl (fun n -> entries := entry_of_net nl n :: !entries);
  List.sort (fun a b -> String.compare a.x_signal b.x_signal) !entries

let unasserted nl =
  Netlist.undriven_unasserted nl
  |> List.map (entry_of_net nl)
  |> List.sort (fun a b -> String.compare a.x_signal b.x_signal)

let pp ppf entries =
  Format.fprintf ppf "@[<v>CROSS REFERENCE LISTING@,";
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-28s width %-3d  defined by %-24s  used by %s@," e.x_signal
        e.x_width
        (match e.x_defined_by with Some d -> d | None -> "(none)")
        (match e.x_used_by with [] -> "(none)" | l -> String.concat ", " l))
    entries;
  Format.fprintf ppf "@]"
