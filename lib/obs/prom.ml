(* Prometheus text-format exposition (version 0.0.4), written whole
   and atomically: serialize to a temp file in the target directory,
   then rename over the destination so a scraper never reads a torn
   file.  No client-library dependency — the format is three line
   shapes. *)

type sample = { s_labels : (string * string) list; s_value : float }

type family = {
  f_name : string;
  f_help : string;
  f_type : [ `Counter | `Gauge ];
  f_samples : sample list;
}

let sample ?(labels = []) v = { s_labels = labels; s_value = v }

let family ~name ~help ~typ samples =
  { f_name = name; f_help = help; f_type = typ; f_samples = samples }

(* Label values escape backslash, double-quote and newline
   (exposition-format rules). *)
let escape_label_value s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let value_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let add_family buf f =
  Printf.bprintf buf "# HELP %s %s\n" f.f_name f.f_help;
  Printf.bprintf buf "# TYPE %s %s\n" f.f_name
    (match f.f_type with `Counter -> "counter" | `Gauge -> "gauge");
  List.iter
    (fun s ->
      Buffer.add_string buf f.f_name;
      (match s.s_labels with
      | [] -> ()
      | labels ->
          Buffer.add_char buf '{';
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char buf ',';
              Printf.bprintf buf "%s=\"%s\"" k (escape_label_value v))
            labels;
          Buffer.add_char buf '}');
      Printf.bprintf buf " %s\n" (value_string s.s_value))
    f.f_samples

let to_text families =
  let buf = Buffer.create 1024 in
  List.iter (add_family buf) families;
  Buffer.contents buf

let write_file path families =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try output_string oc (to_text families)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path
