(* Resource accounting: GC counters plus peak RSS.

   The GC side is a cheap [Gc.quick_stat] (no heap walk); the RSS side
   parses VmHWM out of /proc/self/status, which costs a file open per
   sample — callers on a hot path pass [~peak_rss_kb] to carry the
   last reading forward instead (the serve loop reads /proc only at
   load/stats/health boundaries to stay inside the telemetry-overhead
   budget). *)

type snapshot = {
  mem_minor_words : float;
  mem_promoted_words : float;
  mem_major_words : float;
  mem_heap_words : int;
  mem_compactions : int;
  mem_peak_rss_kb : int;
}

(* "VmHWM:    12345 kB" — the peak resident set size.  0 on platforms
   without procfs (macOS, BSD) or when the read fails: absence of the
   metric, not an error. *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> 0
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              let rest = String.trim (String.sub line 6 (String.length line - 6)) in
              let digits =
                match String.index_opt rest ' ' with
                | Some i -> String.sub rest 0 i
                | None -> rest
              in
              match int_of_string_opt digits with Some n -> n | None -> 0
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let sample ?peak_rss_kb:rss () =
  let s = Gc.quick_stat () in
  {
    mem_minor_words = s.Gc.minor_words;
    mem_promoted_words = s.Gc.promoted_words;
    mem_major_words = s.Gc.major_words;
    mem_heap_words = s.Gc.heap_words;
    mem_compactions = s.Gc.compactions;
    mem_peak_rss_kb = (match rss with Some kb -> kb | None -> peak_rss_kb ());
  }

let zero =
  {
    mem_minor_words = 0.0;
    mem_promoted_words = 0.0;
    mem_major_words = 0.0;
    mem_heap_words = 0;
    mem_compactions = 0;
    mem_peak_rss_kb = 0;
  }
