(** Prometheus text-format exposition (version 0.0.4).

    The serve daemon's [--prom FILE] flag rewrites one of these after
    every request (doc/OBSERVABILITY.md, "Service telemetry");
    [tools/check_prom.py] lints the output in CI.  Dependency-free:
    the format is [# HELP] / [# TYPE] comments plus
    [name{label="value"} 42] sample lines. *)

type sample
type family

val sample : ?labels:(string * string) list -> float -> sample
(** One sample line.  Label values are escaped on output; label names
    must already be valid ([[a-zA-Z_][a-zA-Z0-9_]*]). *)

val family :
  name:string ->
  help:string ->
  typ:[ `Counter | `Gauge ] ->
  sample list ->
  family
(** A metric family: HELP + TYPE header and its samples.  Every sample
    in one family must carry a distinct label set (the linter rejects
    duplicates). *)

val to_text : family list -> string
(** Render the exposition document. *)

val write_file : string -> family list -> unit
(** Serialize to [path ^ ".tmp"] then [Sys.rename] over [path], so a
    concurrent reader sees either the old or the new document, never a
    torn one. *)
