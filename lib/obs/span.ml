type span = {
  s_name : string;
  s_ts_us : float;
  s_dur_us : float;
  s_depth : int;
}

type t = {
  clock : unit -> float;
  t0 : float;
  mutable depth : int;
  mutable completed : span list;  (* newest first *)
}

let create ?(clock = Unix.gettimeofday) () =
  { clock; t0 = clock (); depth = 0; completed = [] }

let now_us t = (t.clock () -. t.t0) *. 1e6

let with_span t name f =
  let start = now_us t in
  let depth = t.depth in
  t.depth <- depth + 1;
  let finish () =
    t.depth <- depth;
    t.completed <-
      { s_name = name; s_ts_us = start; s_dur_us = now_us t -. start; s_depth = depth }
      :: t.completed
  in
  Fun.protect ~finally:finish f

let probe_span = with_span

let mark t name =
  let ts = now_us t in
  t.completed <-
    { s_name = name; s_ts_us = ts; s_dur_us = 0.; s_depth = t.depth } :: t.completed

let spans t = List.rev t.completed

let total_us t name =
  List.fold_left
    (fun acc s -> if s.s_name = name then acc +. s.s_dur_us else acc)
    0. t.completed

let pp ppf t =
  Format.fprintf ppf "@[<v>PHASE PROFILE@,";
  (* present parents before children: sort by start time, then by depth *)
  let by_start =
    List.stable_sort
      (fun a b ->
        match compare a.s_ts_us b.s_ts_us with 0 -> compare a.s_depth b.s_depth | c -> c)
      (spans t)
  in
  List.iter
    (fun s ->
      Format.fprintf ppf "  %s%-*s %10.1f us@," (String.make (2 * s.s_depth) ' ')
        (max 1 (28 - (2 * s.s_depth)))
        s.s_name s.s_dur_us)
    by_start;
  Format.fprintf ppf "@]"
