type span = {
  s_name : string;
  s_ts_us : float;
  s_dur_us : float;
  s_depth : int;
  s_lane : int;
}

type t = {
  clock : unit -> float;
  t0 : float;
  mutable depth : int;
  mutable lane : int;
  mutable n_completed : int;
  mutable completed : span list;  (* newest first *)
}

let create ?(clock = Unix.gettimeofday) () =
  { clock; t0 = clock (); depth = 0; lane = 0; n_completed = 0; completed = [] }

let now_us t = (t.clock () -. t.t0) *. 1e6
let set_lane t lane = t.lane <- lane
let lane t = t.lane

let record t s =
  t.completed <- s :: t.completed;
  t.n_completed <- t.n_completed + 1

let with_span t name f =
  let start = now_us t in
  let depth = t.depth in
  t.depth <- depth + 1;
  let finish () =
    t.depth <- depth;
    record t
      {
        s_name = name;
        s_ts_us = start;
        s_dur_us = now_us t -. start;
        s_depth = depth;
        s_lane = t.lane;
      }
  in
  Fun.protect ~finally:finish f

let probe_span = with_span

let mark t name =
  let ts = now_us t in
  record t
    { s_name = name; s_ts_us = ts; s_dur_us = 0.; s_depth = t.depth; s_lane = t.lane }

let spans t = List.rev t.completed
let n_completed t = t.n_completed

(* The newest [k] completed spans, newest first.  O(k): lets a serve
   loop consume exactly the spans one request produced without
   re-reversing the whole (ever-growing) history per request. *)
let recent t k =
  let rec take acc n = function
    | s :: rest when n > 0 -> take (s :: acc) (n - 1) rest
    | _ -> List.rev acc
  in
  take [] k t.completed

let total_us t name =
  List.fold_left
    (fun acc s -> if s.s_name = name then acc +. s.s_dur_us else acc)
    0. t.completed

let pp ppf t =
  Format.fprintf ppf "@[<v>PHASE PROFILE@,";
  (* present parents before children: sort by start time, then by depth *)
  let by_start =
    List.stable_sort
      (fun a b ->
        match compare a.s_ts_us b.s_ts_us with 0 -> compare a.s_depth b.s_depth | c -> c)
      (spans t)
  in
  List.iter
    (fun s ->
      Format.fprintf ppf "  %s%-*s %10.1f us@," (String.make (2 * s.s_depth) ' ')
        (max 1 (28 - (2 * s.s_depth)))
        s.s_name s.s_dur_us)
    by_start;
  Format.fprintf ppf "@]"
