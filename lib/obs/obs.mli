(** Observability facade: one handle bundling the phase profiler
    ({!Span}), the causal event ring ({!Causal}) and the exporters
    ({!Trace_export}, {!Counters}).

    Typical use, mirroring [bin/scald_tv.ml]:
    {[
      let obs = Obs.create ~trace_buffer:4096 () in
      let nl = Obs.span obs "expand" (fun () -> expand src) in
      let report = Verifier.verify ~probe:(Obs.probe obs) nl in
      Obs.write_profile obs "profile.json";
      Obs.write_metrics obs ~report "metrics.json";
      print_string (Obs.explain_all obs nl report.Verifier.r_violations)
    ]}

    Everything here costs nothing unless a handle is created and its
    probe passed in: the evaluator's counters are plain always-on
    integers, and its event hook stays [None]. *)

type t

val create : ?clock:(unit -> float) -> ?trace_buffer:int -> unit -> t
(** [trace_buffer] is the causal ring capacity; [0] (the default)
    disables event tracing entirely — the probe then carries no event
    hook.  [clock] is passed to the profiler (tests inject a fake). *)

val profiler : t -> Span.t
val ring : t -> Causal.t option

val now_us : t -> float
(** The profiler's clock, µs since creation (see {!Span.now_us}) —
    the serve loop times whole requests with it so deterministic test
    clocks drive request latencies and spans together. *)

val set_lane : t -> int -> unit
(** Set the trace lane stamped on subsequent spans ({!Span.set_lane});
    the serve daemon assigns one lane per request. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** Record a top-level phase (parse, expand, report …) around [f]. *)

val probe : t -> Scald_core.Verifier.probe
(** The hook record for {!Scald_core.Verifier.verify}: spans feed the
    profiler, events (when [trace_buffer > 0]) feed the ring. *)

val phase_seconds : t -> (string * float) list
(** Summed wall seconds per distinct span name, in first-seen order. *)

val metrics :
  ?extra:(string * int) list ->
  t ->
  report:Scald_core.Verifier.report ->
  Counters.metrics
(** Counters from the report plus this handle's per-phase times;
    [extra] appends additional flat counters (see
    {!Counters.of_report}). *)

val write_profile :
  ?process_name:string ->
  ?lanes:(int * string) list ->
  ?report:Scald_core.Verifier.report ->
  t ->
  string ->
  unit
(** Write the Chrome trace; when [report] is given its counters are
    appended as counter-track samples, and [lanes] names the per-lane
    tracks (see {!Trace_export.to_json}). *)

val write_metrics :
  ?extra:(string * int) list ->
  t ->
  report:Scald_core.Verifier.report ->
  string ->
  unit

val explain_all :
  t -> Scald_core.Netlist.t -> Scald_core.Check.t list -> string
(** Causal explanation listing, one block per violation.  Violations
    are explained even when tracing was off — each block then carries
    the no-recorded-events note. *)
