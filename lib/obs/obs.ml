open Scald_core

type t = {
  o_prof : Span.t;
  o_ring : Causal.t option;
}

let create ?clock ?(trace_buffer = 0) () =
  if trace_buffer < 0 then invalid_arg "Obs.create: trace_buffer must be >= 0";
  {
    o_prof = Span.create ?clock ();
    o_ring = (if trace_buffer = 0 then None else Some (Causal.create ~capacity:trace_buffer));
  }

let profiler t = t.o_prof
let ring t = t.o_ring
let now_us t = Span.now_us t.o_prof
let set_lane t lane = Span.set_lane t.o_prof lane

let span t name f = Span.with_span t.o_prof name f

let probe t =
  {
    Verifier.pr_span = (fun name f -> Span.with_span t.o_prof name f);
    pr_event = Option.map (fun r -> Causal.hook r) t.o_ring;
  }

let phase_seconds t =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : Span.span) ->
      let name = s.Span.s_name in
      match Hashtbl.find_opt seen name with
      | Some cell -> cell := !cell +. s.Span.s_dur_us
      | None ->
        Hashtbl.add seen name (ref s.Span.s_dur_us);
        order := name :: !order)
    (Span.spans t.o_prof);
  List.rev_map
    (fun name -> (name, !(Hashtbl.find seen name) /. 1e6))
    !order

let metrics ?extra t ~report =
  Counters.of_report ~phases:(phase_seconds t) ?extra report

let write_profile ?process_name ?lanes ?report t path =
  let counters =
    match report with
    | None -> []
    | Some r ->
      let m = Counters.of_report r in
      m.Counters.m_counters
  in
  Trace_export.write_file ?process_name ?lanes ~counters t.o_prof path

let write_metrics ?extra t ~report path =
  Counters.write_file (metrics ?extra t ~report) path

let explain_all t nl violations =
  (* With tracing off, explain against an empty ring: every block then
     degrades to the no-recorded-events note rather than vanishing. *)
  let ring =
    match t.o_ring with Some r -> r | None -> Causal.create ~capacity:1
  in
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "@[<v>CAUSAL VIOLATION TRACES (%d event(s) retained of %d recorded)@,"
    (List.length (Causal.events ring))
    (Causal.recorded ring);
  if violations = [] then Format.fprintf ppf "(no violations to explain)@,";
  List.iter
    (fun v -> Format.fprintf ppf "%a@," (Causal.pp_explanation ring nl) v)
    violations;
  Format.fprintf ppf "@]";
  Format.pp_print_flush ppf ();
  Buffer.contents buf
