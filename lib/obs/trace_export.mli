(** Chrome [trace_event] export.

    Renders a {!Span} profile (plus optional counter samples) as the
    JSON-array flavour of the Chrome trace-event format, loadable in
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}.  Every
    emitted object carries the four keys [name]/[ph]/[ts]/[dur]:
    complete spans use phase ["X"], counter samples phase ["C"] (with a
    zero [dur], which the format permits as an extra key).  Timestamps
    and durations are microseconds, as the format requires.

    Each span's [tid] is its {!Span.span.s_lane}, so a serve daemon
    that assigns one lane per request gets one track per request; the
    [?lanes] argument names those tracks with phase-["M"]
    [thread_name] metadata events. *)

val to_json :
  ?process_name:string ->
  ?lanes:(int * string) list ->
  ?counters:(string * int) list ->
  Span.t ->
  string
(** The whole trace as one JSON array.  [lanes] maps a tid to its
    display name (e.g. [(3, "r3:verify")]); [counters] adds one
    phase-["C"] sample per counter at the end of the profile, so the
    evaluator totals show as counter tracks alongside the phase
    spans. *)

val write_file :
  ?process_name:string ->
  ?lanes:(int * string) list ->
  ?counters:(string * int) list ->
  Span.t ->
  string ->
  unit
