(** Resource accounting: GC counters and peak resident set size.

    One snapshot per sampling point; the serve daemon takes them at
    request boundaries and exposes the latest through [stats]/[health]
    and the metrics file (doc/OBSERVABILITY.md, "Service telemetry").
    Word counts are in OCaml words (8 bytes on 64-bit). *)

type snapshot = {
  mem_minor_words : float;  (** words allocated in the minor heap *)
  mem_promoted_words : float;  (** words promoted minor -> major *)
  mem_major_words : float;  (** words allocated in the major heap *)
  mem_heap_words : int;  (** current major-heap size *)
  mem_compactions : int;  (** heap compactions so far *)
  mem_peak_rss_kb : int;
      (** peak resident set size in kB (VmHWM from /proc/self/status);
          [0] where procfs is unavailable *)
}

val sample : ?peak_rss_kb:int -> unit -> snapshot
(** Take a snapshot.  The GC side is a cheap [Gc.quick_stat]; the RSS
    side opens [/proc/self/status] unless [?peak_rss_kb] carries a
    previous reading forward (hot-path callers sample RSS only at
    coarse boundaries). *)

val peak_rss_kb : unit -> int
(** Just the VmHWM reading, in kB; [0] when unavailable. *)

val zero : snapshot
(** The all-zero snapshot (placeholder before the first sample). *)
