open Scald_core

type event = { e_seq : int; e_inst : int; e_net : int }

type t = {
  buf : event array;
  cap : int;
  mutable total : int;  (* events ever recorded *)
}

let none = { e_seq = -1; e_inst = -1; e_net = -1 }

let create ~capacity =
  if capacity < 1 then invalid_arg "Causal.create: capacity must be >= 1";
  { buf = Array.make capacity none; cap = capacity; total = 0 }

let capacity t = t.cap

let record t ~inst_id ~net_id =
  t.buf.(t.total mod t.cap) <-
    { e_seq = t.total; e_inst = inst_id; e_net = net_id };
  t.total <- t.total + 1

let hook t ~inst_id ~net_id = record t ~inst_id ~net_id

let recorded t = t.total

let events t =
  let n = min t.total t.cap in
  List.init n (fun i -> t.buf.((t.total - n + i) mod t.cap))

(* Latest retained event on [net_id] with a sequence number < [before]. *)
let find_last t ~net_id ~before =
  let best = ref None in
  let n = min t.total t.cap in
  for i = 0 to n - 1 do
    let e = t.buf.(i) in
    if e.e_net = net_id && e.e_seq < before then
      match !best with
      | Some b when b.e_seq >= e.e_seq -> ()
      | _ -> best := Some e
  done;
  !best

type step = {
  st_seq : int;
  st_inst : string;
  st_prim : string;
  st_net : string;
  st_value : string;
  st_at_ns : float option;
}

let step_of t nl (e : event) =
  ignore t;
  let inst = Netlist.inst nl e.e_inst in
  let net = Netlist.net nl e.e_net in
  let at_ns =
    match Waveform.change_windows net.Netlist.n_value with
    | { Waveform.w_start; _ } :: _ -> Some (Timebase.ns_of_ps w_start)
    | [] -> None
  in
  {
    st_seq = e.e_seq;
    st_inst = inst.Netlist.i_name;
    st_prim = Primitive.mnemonic inst.Netlist.i_prim;
    st_net = net.Netlist.n_name;
    st_value = Format.asprintf "%a" Waveform.pp net.Netlist.n_value;
    st_at_ns = at_ns;
  }

let chain ?(depth = 8) t nl ~net_id ~before =
  let rec walk net_id before acc left =
    if left = 0 then acc
    else
      match find_last t ~net_id ~before with
      | None -> acc
      | Some e ->
        let acc = step_of t nl e :: acc in
        (* follow the most recent input event of the driving instance *)
        let inst = Netlist.inst nl e.e_inst in
        let best = ref None in
        Array.iter
          (fun (c : Netlist.conn) ->
            match find_last t ~net_id:c.Netlist.c_net ~before:e.e_seq with
            | None -> ()
            | Some p -> (
              match !best with
              | Some b when b.e_seq >= p.e_seq -> ()
              | _ -> best := Some p))
          inst.Netlist.i_inputs;
        (match !best with
        | None -> acc
        | Some p -> walk p.e_net (p.e_seq + 1) acc (left - 1))
  in
  walk net_id before [] (max 1 depth)

let explain_signal ?depth ?(before = max_int) t nl name =
  match Netlist.find nl name with
  | None -> []
  | Some id -> chain ?depth t nl ~net_id:id ~before

let explain ?depth t nl (v : Check.t) = explain_signal ?depth t nl v.Check.v_signal

let pp_chain ppf steps =
  List.iter
    (fun s ->
      Format.fprintf ppf "    #%-6d %-24s %-16s -> %-24s%s@," s.st_seq s.st_inst
        s.st_prim s.st_net
        (match s.st_at_ns with
        | Some ns -> Printf.sprintf "  first transition at %.1f ns" ns
        | None -> ""))
    steps;
  match List.rev steps with
  | [] -> ()
  | final :: _ -> Format.fprintf ppf "      value %s: %s@," final.st_net final.st_value

let pp_signal_chain t nl ppf label name =
  match Netlist.find nl name with
  | None -> Format.fprintf ppf "  %s %s: (unknown signal)@," label name
  | Some id -> (
    match chain t nl ~net_id:id ~before:max_int with
    | [] ->
      Format.fprintf ppf
        "  %s %s: no recorded events — value from an assertion, the initial \
         state, or outside the trace buffer@,"
        label name
    | steps ->
      Format.fprintf ppf "  %s %s (root cause first):@," label name;
      pp_chain ppf steps)

let pp_explanation t nl ppf (v : Check.t) =
  Format.fprintf ppf "@[<v>EXPLAIN %a@," Check.pp v;
  pp_signal_chain t nl ppf "signal" v.Check.v_signal;
  (match v.Check.v_clock with
  | Some c when c <> v.Check.v_signal -> pp_signal_chain t nl ppf "clock" c
  | Some _ | None -> ());
  Format.fprintf ppf "@]"
