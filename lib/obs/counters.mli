(** Flat run metrics and their JSON rendering.

    Collects the evaluator counters carried in a verification report
    (plus optional per-phase wall times from a {!Span} profiler) into
    one flat record, written as a single JSON object — the
    [metrics.json] consumed by dashboards and the bench harness.  The
    writer is hand-rolled (the repo takes no JSON dependency); the
    emitted shape is pinned by [doc/metrics.schema.json]. *)

type metrics = {
  m_counters : (string * int) list;
      (** flat integer counters: ["events"], ["evaluations"],
          ["events_queued"], ["events_coalesced"], ["queue_hwm"],
          ["cases"], ["violations"], ["unasserted"] *)
  m_flags : (string * bool) list;  (** ["converged"] *)
  m_kinds : (string * int) list;  (** evaluations per primitive kind *)
  m_phases : (string * float) list;  (** per-phase wall seconds *)
}

val schema_version : string
(** The schema identifier written into every metrics document (the
    [doc/metrics.schema.json] enum), e.g. ["scald-metrics/5"].  Exposed
    so service clients can negotiate against it ([scald_tv --metrics]
    prints it; the serve hello banner carries it). *)

val of_report :
  ?phases:(string * float) list ->
  ?extra:(string * int) list ->
  Scald_core.Verifier.report ->
  metrics
(** Extract every counter from a report; [phases] adds per-phase wall
    times (name, seconds) — pass [Obs.phase_seconds] or hand-timed
    figures.  [extra] appends additional flat integer counters (the
    incremental service's [incr_*]/[svc_*]/[mem_*] families — see
    [doc/metrics.schema.json] for the allowed names).

    @raise Invalid_argument if any counter key appears twice (a
    colliding [extra] would otherwise serialize as two identical JSON
    fields — valid to some parsers, last-wins to others). *)

val counter : metrics -> string -> int
(** Value of a flat counter, 0 when absent. *)

val to_json : metrics -> string
(** One flat JSON object, terminated by a newline. *)

val write_file : metrics -> string -> unit

val json_string : string -> string
(** JSON string literal (quoted, escaped) — shared with
    {!Trace_export}. *)
