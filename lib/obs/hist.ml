(* Mergeable log-bucketed histogram for latencies and sizes.

   Buckets are geometric with ratio 2^(1/4) (four buckets per octave,
   ~9% relative width), so the structure is a fixed 169-slot int array:
   no allocation per [add], deterministic quantiles (a quantile depends
   only on the multiset of bucket indices, never on insertion order or
   timing), and [merge] is pointwise addition.  Bucket [i] covers
   values in (2^((i-1)/4), 2^(i/4)]; bucket 0 absorbs everything <= 1,
   the last bucket everything above 2^42 (~51 days in microseconds). *)

let n_buckets = 169
let bound i = Float.pow 2.0 (float_of_int i /. 4.0)

(* 4 / ln 2: buckets per octave over the natural log the libm call
   actually computes *)
let inv_log2_4 = 4.0 /. Float.log 2.0

let index v =
  if v <= 1.0 then 0
  else
    let i = int_of_float (Float.ceil (inv_log2_4 *. Float.log v)) in
    if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create () =
  { buckets = Array.make n_buckets 0; count = 0; sum = 0.0; vmin = 0.0; vmax = 0.0 }

let add t v =
  let v = if v < 0.0 then 0.0 else v in
  let i = index v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  if t.count = 0 then begin
    t.vmin <- v;
    t.vmax <- v
  end
  else begin
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v
  end;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v

let count t = t.count
let sum t = t.sum
let min_value t = t.vmin
let max_value t = t.vmax
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

let quantile t q =
  if t.count = 0 then 0.0
  else
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int t.count)) in
      if r < 1 then 1 else r
    in
    let rec walk i cum =
      if i >= n_buckets then t.vmax
      else
        let cum = cum + t.buckets.(i) in
        if cum >= rank then
          (* Report the bucket's upper bound, clamped to the observed
             range so p0/p100 are exact and a one-element histogram
             returns the element itself. *)
          let b = bound i in
          if b < t.vmin then t.vmin else if b > t.vmax then t.vmax else b
        else walk (i + 1) cum
    in
    walk 0 0

let merge a b =
  let t = create () in
  Array.iteri (fun i n -> t.buckets.(i) <- n + b.buckets.(i)) a.buckets;
  t.count <- a.count + b.count;
  t.sum <- a.sum +. b.sum;
  (if a.count = 0 then begin
     t.vmin <- b.vmin;
     t.vmax <- b.vmax
   end
   else if b.count = 0 then begin
     t.vmin <- a.vmin;
     t.vmax <- a.vmax
   end
   else begin
     t.vmin <- Float.min a.vmin b.vmin;
     t.vmax <- Float.max a.vmax b.vmax
   end);
  t

let clear t =
  Array.fill t.buckets 0 n_buckets 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.vmin <- 0.0;
  t.vmax <- 0.0
