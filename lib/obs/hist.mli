(** Mergeable log-bucketed histogram with deterministic quantiles.

    The service telemetry layer aggregates per-request latencies and
    per-phase span durations into these (doc/OBSERVABILITY.md,
    "Service telemetry").  Buckets are geometric with ratio [2^(1/4)]
    — four per octave, ~9% relative error — over a fixed 169-slot
    array, so [add] allocates nothing and a quantile estimate depends
    only on the multiset of values observed, never on insertion order:
    two runs that observe the same durations report byte-identical
    p50/p90/p99. *)

type t

val create : unit -> t
(** An empty histogram. *)

val add : t -> float -> unit
(** Record one observation.  Negative values clamp to [0]. *)

val count : t -> int
(** Observations recorded. *)

val sum : t -> float
(** Exact sum of all observations (not bucketed). *)

val min_value : t -> float
(** Exact smallest observation; [0] when empty. *)

val max_value : t -> float
(** Exact largest observation; [0] when empty. *)

val mean : t -> float
(** [sum / count]; [0] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] estimates the [q]-quantile (q clamped to [0,1]) as
    the upper bound of the bucket holding the rank-[ceil q*count]
    observation, clamped into [[min_value, max_value]] — so the
    estimate is at most ~9% above the true value, [quantile t 1.0 =
    max_value] exactly, and a single-observation histogram returns
    that observation for every [q].  [0] when empty. *)

val merge : t -> t -> t
(** Pointwise sum into a fresh histogram; neither argument changes.
    [count]/[sum]/[min_value]/[max_value] combine exactly. *)

val clear : t -> unit
(** Reset to empty in place. *)

val index : float -> int
(** The bucket an observation lands in (exposed for tests). *)

val bound : int -> float
(** Upper bound of bucket [i]: [2^(i/4)] (exposed for tests). *)
