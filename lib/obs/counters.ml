open Scald_core

type metrics = {
  m_counters : (string * int) list;
  m_flags : (string * bool) list;
  m_kinds : (string * int) list;
  m_phases : (string * float) list;
}

let schema_version = "scald-metrics/5"

(* A duplicate key — a caller's [extra] colliding with a built-in, or
   with itself — would serialize as two identical JSON fields: valid
   to some parsers, last-wins to others, silently lossy to all. *)
let check_no_dup_keys pairs =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (k, _) ->
      if Hashtbl.mem seen k then
        invalid_arg (Printf.sprintf "Counters.of_report: duplicate key %S" k)
      else Hashtbl.add seen k ())
    pairs

let of_report ?(phases = []) ?(extra = []) (r : Verifier.report) =
  let counters =
      [
        ("requests", r.Verifier.r_obs.Verifier.os_requests);
        ("events", r.Verifier.r_events);
        ("evaluations", r.Verifier.r_evaluations);
        ("events_queued", r.Verifier.r_obs.Verifier.os_queued);
        ("events_coalesced", r.Verifier.r_obs.Verifier.os_coalesced);
        ("queue_hwm", r.Verifier.r_obs.Verifier.os_queue_hwm);
        ("sched_levels", r.Verifier.r_obs.Verifier.os_sched_levels);
        ("sccs", r.Verifier.r_obs.Verifier.os_sccs);
        ("max_scc_size", r.Verifier.r_obs.Verifier.os_max_scc_size);
        ("cache_hits", r.Verifier.r_obs.Verifier.os_cache_hits);
        ("cache_misses", r.Verifier.r_obs.Verifier.os_cache_misses);
        ("pruned_insts", r.Verifier.r_obs.Verifier.os_pruned_insts);
        ("pruned_evals", r.Verifier.r_obs.Verifier.os_pruned_evals);
        ("nets_const", r.Verifier.r_obs.Verifier.os_nets_const);
        ("nets_stable", r.Verifier.r_obs.Verifier.os_nets_stable);
        ("nets_clock", r.Verifier.r_obs.Verifier.os_nets_clock);
        ("nets_data", r.Verifier.r_obs.Verifier.os_nets_data);
        ("nets_unknown", r.Verifier.r_obs.Verifier.os_nets_unknown);
        ("cases", List.length r.Verifier.r_cases);
        ( "cases_diverged",
          List.length
            (List.filter
               (fun (c : Verifier.case_result) -> not c.Verifier.cr_converged)
               r.Verifier.r_cases) );
        ("jobs", r.Verifier.r_jobs);
        ("corners", r.Verifier.r_obs.Verifier.os_corners);
        ("corner_lanes_shared", r.Verifier.r_obs.Verifier.os_corner_lanes_shared);
        ("corner_evals_saved", r.Verifier.r_obs.Verifier.os_corner_evals_saved);
        ("window_insts", r.Verifier.r_obs.Verifier.os_window_insts);
        ("window_nets", r.Verifier.r_obs.Verifier.os_window_nets);
        ("window_unbounded", r.Verifier.r_obs.Verifier.os_window_unbounded);
        ("window_lanes_static", r.Verifier.r_obs.Verifier.os_window_lanes_static);
        ("window_evals", r.Verifier.r_obs.Verifier.os_window_evals);
        ("window_checks", r.Verifier.r_obs.Verifier.os_window_checks);
        ("cases_merged", r.Verifier.r_obs.Verifier.os_cases_merged);
        ("violations", List.length r.Verifier.r_violations);
        ("unasserted", List.length r.Verifier.r_unasserted);
      ]
      @ extra
  in
  check_no_dup_keys counters;
  {
    m_counters = counters;
    m_flags = [ ("converged", r.Verifier.r_converged) ];
    m_kinds = r.Verifier.r_obs.Verifier.os_evals_by_kind;
    m_phases = phases;
  }

let counter m name =
  match List.assoc_opt name m.m_counters with Some v -> v | None -> 0

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* %.6f keeps sub-microsecond resolution and never prints the
   exponent notation JSON forbids in some consumers. *)
let json_float x = Printf.sprintf "%.6f" x

let to_json m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema\": %s" (json_string schema_version));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf ",\n  %s: %d" (json_string k) v))
    m.m_counters;
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf ",\n  %s: %b" (json_string k) v))
    m.m_flags;
  let obj key pairs render =
    Buffer.add_string buf (Printf.sprintf ",\n  %s: {" (json_string key));
    List.iteri
      (fun i (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s: %s"
             (if i = 0 then "" else ", ")
             (json_string k) (render v)))
      pairs;
    Buffer.add_string buf "}"
  in
  obj "evals_by_kind" m.m_kinds string_of_int;
  obj "phases_s" m.m_phases json_float;
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let write_file m path =
  let oc = open_out_bin path in
  output_string oc (to_json m);
  close_out oc
