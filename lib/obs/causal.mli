(** Causal violation traces.

    A bounded ring buffer records the evaluator's recent events (one
    entry per output-change event: sequence number, driving instance,
    driven net).  Recording is O(1) per event and allocation-free after
    creation; with tracing off the evaluator's hook is [None] and the
    hot path is untouched.

    After a run, {!explain} reconstructs — for one violation — the chain
    of events that produced the failing edge: starting from the last
    event on the violated signal, it repeatedly steps to the most recent
    earlier event on one of the driving instance's inputs.  Sequence
    numbers strictly decrease along the chain, so it always terminates,
    cycles included. *)

type event = {
  e_seq : int;  (** global event sequence number, starting at 0 *)
  e_inst : int;  (** instance whose evaluation produced the event *)
  e_net : int;  (** output net that changed *)
}

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int

val record : t -> inst_id:int -> net_id:int -> unit

val hook : t -> inst_id:int -> net_id:int -> unit
(** [record] in the shape expected by {!Scald_core.Eval.set_event_hook}
    and {!Scald_core.Verifier.probe}. *)

val recorded : t -> int
(** Total events ever recorded (may exceed the capacity). *)

val events : t -> event list
(** The retained window, oldest first; at most [capacity] entries. *)

type step = {
  st_seq : int;
  st_inst : string;  (** name of the driving instance *)
  st_prim : string;  (** its primitive mnemonic *)
  st_net : string;  (** the driven signal *)
  st_value : string;  (** the signal's final waveform, rendered *)
  st_at_ns : float option;
      (** start of the signal's first transition window, when it has
          one — the circuit time of the edge the event introduced *)
}

val explain :
  ?depth:int -> t -> Scald_core.Netlist.t -> Scald_core.Check.t -> step list
(** Causal chain for the violation's signal, root cause first, at most
    [depth] (default 8) steps.  Empty when the signal has no recorded
    events — e.g. its value came from an assertion, or the buffer was
    too small to retain them. *)

val explain_signal :
  ?depth:int -> ?before:int -> t -> Scald_core.Netlist.t -> string -> step list
(** Chain for an arbitrary signal name; [before] bounds the sequence
    numbers considered (exclusive). *)

val pp_explanation :
  t -> Scald_core.Netlist.t -> Format.formatter -> Scald_core.Check.t -> unit
(** Render the violation line followed by the causal chains of its
    signal and (when named) its clock, with a graceful note for signals
    without recorded events. *)
