let esc = Counters.json_string

let us x = Printf.sprintf "%.1f" x

(* Complete ("X") events on one thread nest by containment; the span's
   lane is the tid, so each serve request renders on its own track
   (lane 0 is the process-lifetime track for one-shot runs). *)
let span_event ~pid (s : Span.span) =
  Printf.sprintf
    "{\"name\": %s, \"ph\": \"X\", \"ts\": %s, \"dur\": %s, \"pid\": %d, \"tid\": %d, \
     \"cat\": \"phase\"}"
    (esc s.Span.s_name) (us s.Span.s_ts_us) (us s.Span.s_dur_us) pid s.Span.s_lane

let counter_event ~pid ~ts (name, value) =
  Printf.sprintf
    "{\"name\": %s, \"ph\": \"C\", \"ts\": %s, \"dur\": 0, \"pid\": %d, \"args\": \
     {%s: %d}}"
    (esc name) (us ts) pid (esc name) value

let meta_event ~pid name =
  Printf.sprintf
    "{\"name\": \"process_name\", \"ph\": \"M\", \"ts\": 0, \"dur\": 0, \"pid\": %d, \
     \"args\": {\"name\": %s}}"
    pid (esc name)

let thread_name_event ~pid (tid, name) =
  Printf.sprintf
    "{\"name\": \"thread_name\", \"ph\": \"M\", \"ts\": 0, \"dur\": 0, \"pid\": %d, \
     \"tid\": %d, \"args\": {\"name\": %s}}"
    pid tid (esc name)

let to_json ?(process_name = "scald_tv") ?(lanes = []) ?(counters = []) prof =
  let pid = 1 in
  let spans = Span.spans prof in
  let t_end =
    List.fold_left
      (fun acc (s : Span.span) -> Float.max acc (s.Span.s_ts_us +. s.Span.s_dur_us))
      0. spans
  in
  let events =
    meta_event ~pid process_name
    :: List.map (thread_name_event ~pid) lanes
    @ List.map (span_event ~pid) spans
    @ List.map (counter_event ~pid ~ts:t_end) counters
  in
  "[\n  " ^ String.concat ",\n  " events ^ "\n]\n"

let write_file ?process_name ?lanes ?counters prof path =
  let oc = open_out_bin path in
  output_string oc (to_json ?process_name ?lanes ?counters prof);
  close_out oc
