(** Phase profiler: nested wall-clock spans.

    A profiler records a tree of named spans — parse, expand, lint,
    per-case evaluate, check, report — against a monotonically sampled
    clock.  Timestamps are kept relative to the profiler's creation, in
    microseconds, which is exactly what the Chrome [trace_event] format
    wants (see {!Trace_export}).

    The clock is injectable so tests can drive a deterministic one; the
    default is {!Unix.gettimeofday}. *)

type span = {
  s_name : string;
  s_ts_us : float;  (** start, µs since profiler creation *)
  s_dur_us : float;  (** duration in µs *)
  s_depth : int;  (** nesting depth, 0 = top level *)
}

type t

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh profiler.  [clock] returns seconds; it need only be
    monotone non-decreasing. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] inside a span.  The span is recorded
    even when [f] raises; spans nest to any depth. *)

val probe_span : t -> string -> (unit -> 'a) -> 'a
(** Same as {!with_span}; a separate name so it can be used directly as
    the polymorphic [pr_span] field of {!Scald_core.Verifier.probe}. *)

val mark : t -> string -> unit
(** Record an instantaneous (zero-duration) span. *)

val spans : t -> span list
(** All completed spans, in order of completion time. *)

val total_us : t -> string -> float
(** Summed duration of every completed span with the given name. *)

val pp : Format.formatter -> t -> unit
(** Indented text rendering, one line per span. *)
