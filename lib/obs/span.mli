(** Phase profiler: nested wall-clock spans.

    A profiler records a tree of named spans — parse, expand, lint,
    per-case evaluate, check, report — against a monotonically sampled
    clock.  Timestamps are kept relative to the profiler's creation, in
    microseconds, which is exactly what the Chrome [trace_event] format
    wants (see {!Trace_export}).

    The clock is injectable so tests can drive a deterministic one; the
    default is {!Unix.gettimeofday}. *)

type span = {
  s_name : string;
  s_ts_us : float;  (** start, µs since profiler creation *)
  s_dur_us : float;  (** duration in µs *)
  s_depth : int;  (** nesting depth, 0 = top level *)
  s_lane : int;
      (** the profiler's {!lane} when the span completed; the serve
          daemon sets one lane per request so {!Trace_export} renders
          each request on its own track ([0] outside a request) *)
}

type t

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh profiler.  [clock] returns seconds; it need only be
    monotone non-decreasing. *)

val now_us : t -> float
(** Current clock reading, µs since profiler creation.  Exposed so the
    serve loop can time whole requests on the {e same} (injectable)
    clock its spans use — deterministic tests drive both at once. *)

val set_lane : t -> int -> unit
(** Set the lane stamped on subsequently completed spans.  The serve
    daemon calls this at each request boundary; nested spans emitted
    by [Session]/[Eval] during the request inherit it for free. *)

val lane : t -> int
(** The current lane (0 initially). *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] runs [f] inside a span.  The span is recorded
    even when [f] raises; spans nest to any depth. *)

val probe_span : t -> string -> (unit -> 'a) -> 'a
(** Same as {!with_span}; a separate name so it can be used directly as
    the polymorphic [pr_span] field of {!Scald_core.Verifier.probe}. *)

val mark : t -> string -> unit
(** Record an instantaneous (zero-duration) span. *)

val spans : t -> span list
(** All completed spans, in order of completion time.  O(total) — a
    long-lived service consuming spans per request should use
    {!n_completed} + {!recent} instead. *)

val n_completed : t -> int
(** Completed-span count, O(1).  Sample before and after a request;
    the difference is how many spans the request produced. *)

val recent : t -> int -> span list
(** [recent t k] is the newest [k] completed spans, newest first, in
    O(k) — the per-request consumption primitive. *)

val total_us : t -> string -> float
(** Summed duration of every completed span with the given name. *)

val pp : Format.formatter -> t -> unit
(** Indented text rendering, one line per span. *)
