(* A deliberately small JSON codec for the serve protocol.  The repo
   takes no third-party dependencies, and the protocol needs nothing
   beyond flat objects, arrays, strings and numbers — so this is a plain
   recursive-descent parser over a string and a compact printer. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at %d: %s" pos msg))

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st.pos (Printf.sprintf "expected %c" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos (Printf.sprintf "expected %s" word)

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

(* Encode a Unicode scalar as UTF-8; surrogate pairs are not recombined
   (each half is encoded separately) — good enough for the ASCII-heavy
   protocol, and never wrong for the strings we emit ourselves. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail st.pos "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.s then fail st.pos "truncated \\u escape";
          let u = ref 0 in
          for _ = 1 to 4 do
            let d = hex_digit st.s.[st.pos] in
            if d < 0 then fail st.pos "bad \\u escape";
            u := (!u * 16) + d;
            advance st
          done;
          add_utf8 buf !u
        | _ -> fail (st.pos - 1) "bad escape"));
      go ()
    | Some c when Char.code c < 0x20 -> fail st.pos "control character in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let consume_while pred =
    let rec go () =
      match peek st with
      | Some c when pred c ->
        advance st;
        go ()
      | _ -> ()
    in
    go ()
  in
  (match peek st with Some '-' -> advance st | _ -> ());
  consume_while (fun c -> c >= '0' && c <= '9');
  (match peek st with
  | Some '.' ->
    advance st;
    consume_while (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    consume_while (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail start "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((key, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
        | _ -> fail st.pos "expected , or }"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st.pos "expected , or ]"
      in
      List (elements [])
    end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected character %c" c)

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then Error "trailing garbage after JSON value"
    else Ok v
  | exception Parse_error msg -> Error msg

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.0f" f)
    else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Str s -> escape buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  emit buf v;
  Buffer.contents buf

(* ---- accessors ----------------------------------------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
let list = function List vs -> Some vs | _ -> None

let of_int i = Num (float_of_int i)
