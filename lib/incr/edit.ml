open Scald_core

type t =
  | Wire_delay of { signal : string; delay : Delay.t option }
  | Element_delay of { inst : string; delay : Delay.t }
  | Assertion of { signal : string; assertion : Assertion.t option }
  | Directive of { inst : string; input : int; directive : Directive.t }
  | Replace_prim of { inst : string; prim : Primitive.t }
  | Cases of Case_analysis.case list
  | Corners of Corner.table

type applied = {
  a_touched_nets : int list;
  a_reinit_nets : int list;
  a_touched_insts : int list;
  a_cases : Case_analysis.case list option;
}

let no_effect = { a_touched_nets = []; a_reinit_nets = []; a_touched_insts = []; a_cases = None }

let net_id nl signal =
  match Netlist.find nl signal with
  | Some id -> id
  | None -> invalid_arg (Printf.sprintf "Edit.apply: unknown signal %s" signal)

let inst_id nl name =
  match Netlist.find_inst nl name with
  | Some id -> id
  | None -> invalid_arg (Printf.sprintf "Edit.apply: unknown instance %s" name)

let apply nl = function
  | Wire_delay { signal; delay } ->
    let id = net_id nl signal in
    Netlist.set_wire_delay_opt nl id delay;
    { no_effect with a_touched_nets = [ id ] }
  | Element_delay { inst; delay } ->
    let id = inst_id nl inst in
    Netlist.set_element_delay nl id delay;
    { no_effect with a_touched_insts = [ id ] }
  | Assertion { signal; assertion } ->
    let id = net_id nl signal in
    Netlist.set_assertion nl id assertion;
    { no_effect with a_reinit_nets = [ id ] }
  | Directive { inst; input; directive } ->
    let id = inst_id nl inst in
    Netlist.set_input_directive nl ~inst:id ~input directive;
    let i = Netlist.inst nl id in
    (* bump the connection's driving net: the consumer-side input cache
       is keyed on that net's generation stamp *)
    { no_effect with a_touched_nets = [ i.i_inputs.(input).c_net ]; a_touched_insts = [ id ] }
  | Replace_prim { inst; prim } ->
    let id = inst_id nl inst in
    Netlist.replace_prim nl id prim;
    { no_effect with a_touched_insts = [ id ] }
  | Cases cases -> { no_effect with a_cases = Some cases }
  | Corners tbl ->
    Netlist.set_corners nl tbl;
    (* every scaled delay in the design changes: the whole netlist is
       the dirty cone (the session also rebuilds its evaluator — the
       lane count is fixed at Eval.create time) *)
    { no_effect with a_touched_nets = List.init (Netlist.n_nets nl) Fun.id }

(* Validate an edit against a netlist without mutating anything, so a
   [delta] request can be rejected atomically — nothing is staged unless
   every edit of the request checks out. *)
let check nl e =
  let net signal =
    match Netlist.find nl signal with
    | Some id -> Ok id
    | None -> Error (Printf.sprintf "unknown signal %s" signal)
  in
  let inst name =
    match Netlist.find_inst nl name with
    | Some id -> Ok id
    | None -> Error (Printf.sprintf "unknown instance %s" name)
  in
  match e with
  | Wire_delay { signal; _ } | Assertion { signal; _ } ->
    Result.map (fun _ -> ()) (net signal)
  | Element_delay { inst = name; _ } -> (
    match inst name with
    | Error _ as e -> e
    | Ok id -> (
      match (Netlist.inst nl id).i_prim with
      | Primitive.Gate _ | Primitive.Buf _ | Primitive.Mux2 _ | Primitive.Reg _
      | Primitive.Latch _ ->
        Ok ()
      | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _
      | Primitive.Min_pulse_width _ | Primitive.Const _ ->
        Error (Printf.sprintf "%s has no element delay" name)))
  | Directive { inst = name; input; _ } -> (
    match inst name with
    | Error _ as e -> e
    | Ok id ->
      let i = Netlist.inst nl id in
      if input < 0 || input >= Array.length i.i_inputs then
        Error (Printf.sprintf "%s has no input %d" name input)
      else Ok ())
  | Replace_prim { inst = name; prim } -> (
    match inst name with
    | Error _ as e -> e
    | Ok id ->
      let i = Netlist.inst nl id in
      if Primitive.n_inputs prim <> Array.length i.i_inputs then
        Error (Printf.sprintf "%s: input count mismatch" name)
      else if Primitive.has_output prim <> (i.i_output <> None) then
        Error (Printf.sprintf "%s: output presence mismatch" name)
      else Ok ())
  | Cases cases ->
    (* resolve every case group so unknown control signals surface now *)
    let rec go = function
      | [] -> Ok ()
      | c :: rest -> (
        match Case_analysis.resolve nl c with
        | _ -> go rest
        | exception Invalid_argument m -> Error m)
    in
    go cases
  | Corners tbl -> (
    match Corner.validate_table tbl with
    | () -> Ok ()
    | exception Invalid_argument m -> Error m)

(* ---- parameter diff (session adoption) ----------------------------------- *)

let opt_equal eq a b =
  match a, b with
  | None, None -> true
  | Some x, Some y -> eq x y
  | _ -> false

let prim_equal (a : Primitive.t) (b : Primitive.t) = a = b

let diff old_nl new_nl =
  if Netlist.n_nets old_nl <> Netlist.n_nets new_nl
     || Netlist.n_insts old_nl <> Netlist.n_insts new_nl
  then invalid_arg "Edit.diff: netlists differ structurally";
  let acc = ref [] in
  Netlist.iter_nets old_nl (fun o ->
      let n = Netlist.net new_nl o.n_id in
      if not (opt_equal Delay.equal o.n_wire_delay n.n_wire_delay) then
        acc := Wire_delay { signal = o.n_name; delay = n.n_wire_delay } :: !acc;
      if not (opt_equal Assertion.equal o.n_assertion n.n_assertion) then
        acc := Assertion { signal = o.n_name; assertion = n.n_assertion } :: !acc);
  Netlist.iter_insts old_nl (fun o ->
      let i = Netlist.inst new_nl o.i_id in
      if not (prim_equal o.i_prim i.i_prim) then
        acc := Replace_prim { inst = o.i_name; prim = i.i_prim } :: !acc;
      Array.iteri
        (fun k (oc : Netlist.conn) ->
          let nc = i.i_inputs.(k) in
          if oc.c_directive <> nc.c_directive then
            acc := Directive { inst = o.i_name; input = k; directive = nc.c_directive } :: !acc)
        o.i_inputs);
  if not (Corner.table_equal (Netlist.corners old_nl) (Netlist.corners new_nl)) then
    acc := Corners (Netlist.corners new_nl) :: !acc;
  List.rev !acc

(* ---- JSON decoding (serve protocol, doc/SERVICE.md) ----------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let req_str j key =
  match Option.bind (Json.member key j) Json.str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "edit: missing string field %S" key)

let req_int j key =
  match Option.bind (Json.member key j) Json.int with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "edit: missing integer field %S" key)

let delay_of_json j =
  match Json.member "delay" j with
  | Some Json.Null -> Ok None
  | _ -> (
    match
      ( Option.bind (Json.member "min_ns" j) Json.num,
        Option.bind (Json.member "max_ns" j) Json.num )
    with
    | Some mn, Some mx -> (
      match Delay.of_ns mn mx with
      | d -> Ok (Some d)
      | exception Invalid_argument m -> Error m)
    | _ -> Error "edit: expected \"min_ns\"/\"max_ns\" numbers or \"delay\": null")

let of_json j =
  let* kind = req_str j "edit" in
  match kind with
  | "wire_delay" ->
    let* signal = req_str j "signal" in
    let* delay = delay_of_json j in
    Ok (Wire_delay { signal; delay })
  | "element_delay" ->
    let* inst = req_str j "inst" in
    let* delay = delay_of_json j in
    (match delay with
    | Some delay -> Ok (Element_delay { inst; delay })
    | None -> Error "edit: element_delay requires min_ns/max_ns")
  | "assertion" ->
    let* signal = req_str j "signal" in
    (match Json.member "assertion" j with
    | Some Json.Null | None -> Ok (Assertion { signal; assertion = None })
    | Some (Json.Str s) ->
      let* a = Scald_core.Assertion.parse s in
      Ok (Assertion { signal; assertion = Some a })
    | Some _ -> Error "edit: \"assertion\" must be a string or null")
  | "directive" ->
    let* inst = req_str j "inst" in
    let* input = req_int j "input" in
    let* text = req_str j "directive" in
    let* directive = if text = "" then Ok [] else Scald_core.Directive.of_string text in
    Ok (Directive { inst; input; directive })
  | "cases" ->
    let* text = req_str j "text" in
    let* cases = Case_analysis.parse text in
    Ok (Cases cases)
  | "corners" ->
    let* spec = req_str j "spec" in
    (match Corner.of_spec spec with
    | tbl -> Ok (Corners tbl)
    | exception Invalid_argument m -> Error m)
  | k -> Error (Printf.sprintf "edit: unknown kind %S" k)

let pp ppf = function
  | Wire_delay { signal; delay = None } ->
    Format.fprintf ppf "wire_delay %s := default" signal
  | Wire_delay { signal; delay = Some d } ->
    Format.fprintf ppf "wire_delay %s := %a" signal Delay.pp d
  | Element_delay { inst; delay } ->
    Format.fprintf ppf "element_delay %s := %a" inst Delay.pp delay
  | Assertion { signal; assertion = None } -> Format.fprintf ppf "assertion %s := none" signal
  | Assertion { signal; assertion = Some a } ->
    Format.fprintf ppf "assertion %s := .%s" signal (Scald_core.Assertion.to_string a)
  | Directive { inst; input; directive } ->
    Format.fprintf ppf "directive %s/%d := &%s" inst input
      (Scald_core.Directive.to_string directive)
  | Replace_prim { inst; prim } ->
    Format.fprintf ppf "replace_prim %s := %a" inst Primitive.pp prim
  | Cases cases -> Format.fprintf ppf "cases := %d groups" (List.length cases)
  | Corners tbl -> Format.fprintf ppf "corners := %s" (Corner.table_to_string tbl)
