(** Designer edits the incremental service can replay on a live session
    (doc/SERVICE.md).

    Every edit changes {e parameters} of an existing netlist — delays,
    assertions, directives, the case group — never its structure.  An
    edit both mutates the netlist (via the {!Scald_core.Netlist}
    post-construction setters) and reports which nets and instances the
    evaluator must wake, from which {!Session.reverify} computes the
    dirty output cone. *)

open Scald_core

type t =
  | Wire_delay of { signal : string; delay : Delay.t option }
      (** set or clear ([None] = default rule) a net's interconnection
          delay *)
  | Element_delay of { inst : string; delay : Delay.t }
  | Assertion of { signal : string; assertion : Assertion.t option }
      (** add, retarget or remove a timing assertion *)
  | Directive of { inst : string; input : int; directive : Directive.t }
      (** replace the ["&..."] evaluation string on one input ([[]]
          removes it) *)
  | Replace_prim of { inst : string; prim : Primitive.t }
      (** wholesale primitive-parameter change (checker margins, invert,
          a constant's value); used by {!diff} *)
  | Cases of Case_analysis.case list  (** swap the case group *)
  | Corners of Corner.table
      (** install a new delay-corner table (doc/CORNERS.md).  Dirties the
          whole netlist — every scaled delay changes — and makes
          {!Session.reverify} rebuild its evaluator, since the lane
          count is fixed at creation.  JSON form:
          [{"edit":"corners","spec":"slow,typ,fast"}]. *)

type applied = {
  a_touched_nets : int list;
      (** nets whose parameters changed in place: their generation stamp
          must be bumped so consumer caches miss *)
  a_reinit_nets : int list;
      (** nets whose source waveform changed (assertion edits): they
          must be re-initialized / re-driven *)
  a_touched_insts : int list;
      (** instances whose own parameters changed: they must re-evaluate
          even though no input moved *)
  a_cases : Case_analysis.case list option;  (** new case group, if swapped *)
}

val check : Netlist.t -> t -> (unit, string) result
(** Validate an edit against a netlist without mutating anything —
    names resolve, the primitive accepts the edit — so a [delta] request
    can be rejected atomically before anything is staged. *)

val apply : Netlist.t -> t -> applied
(** Mutate the netlist and report the seeds of the dirty cone.
    @raise Invalid_argument on an unknown signal/instance name or an
    ill-typed edit (e.g. an element delay on a checker). *)

val diff : Netlist.t -> Netlist.t -> t list
(** [diff old new] — the parameter edits that turn [old] into [new].
    The two must be structurally identical ({!Fingerprint.skeleton});
    used by the store to adopt an existing session for a re-submitted
    design.
    @raise Invalid_argument when the structures differ. *)

val of_json : Json.t -> (t, string) result
(** Decode one edit object of a [delta] request, e.g.
    [{"edit":"wire_delay","signal":"A","min_ns":0.5,"max_ns":3}]. *)

val pp : Format.formatter -> t -> unit
