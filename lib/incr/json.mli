(** Minimal JSON codec for the serve protocol (doc/SERVICE.md).

    The repo carries no third-party dependencies, so this is a small
    hand-written parser/printer covering exactly what JSONL requests and
    responses need: objects, arrays, strings, numbers, booleans, null.
    Strings decode the standard escapes (including [\uXXXX], emitted as
    UTF-8); the printer is compact (single line, no spaces), which is
    what a line-oriented protocol wants. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one complete JSON value; trailing non-whitespace is an
    error. *)

val to_string : t -> string
(** Compact single-line rendering.  Integral numbers print without a
    decimal point. *)

(** {2 Accessors} — each returns [None] on a shape mismatch. *)

val member : string -> t -> t option
val str : t -> string option
val num : t -> float option

val int : t -> int option
(** Integral {!Num} only. *)

val bool : t -> bool option
val list : t -> t list option

val of_int : int -> t
