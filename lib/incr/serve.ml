open Scald_core

type t = {
  sv_store : Store.t;
  sv_obs : Scald_obs.Obs.t;
  mutable sv_requests : int;
  mutable sv_errors : int;
  mutable sv_reused_nets : int;
  mutable sv_dirtied_nets : int;
  mutable sv_warm_hits : int;
  mutable sv_last_report : Verifier.report option;
}

let create ?obs () =
  {
    sv_store = Store.create ();
    sv_obs = (match obs with Some o -> o | None -> Scald_obs.Obs.create ());
    sv_requests = 0;
    sv_errors = 0;
    sv_reused_nets = 0;
    sv_dirtied_nets = 0;
    sv_warm_hits = 0;
    sv_last_report = None;
  }

let store t = t.sv_store

let hello () =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("op", Json.Str "hello");
      ("service", Json.Str "scald_tv serve");
      ("version", Json.Str Version.version);
      ("protocol", Json.Str Version.protocol);
      ("metrics_schema", Json.Str Scald_obs.Counters.schema_version);
    ]

let error ?op msg =
  Json.Obj
    ((match op with Some o -> [ ("op", Json.Str o) ] | None -> [])
    @ [ ("ok", Json.Bool false); ("error", Json.Str msg) ])

let ok op fields = Json.Obj (("ok", Json.Bool true) :: ("op", Json.Str op) :: fields)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---- request decoding ----------------------------------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let opt_str j key = Option.bind (Json.member key j) Json.str

let target_session t j =
  match opt_str j "session" with
  | Some handle -> (
    match Store.find t.sv_store handle with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "no session %s" handle))
  | None -> (
    match Store.latest t.sv_store with
    | Some s -> Ok s
    | None -> Error "no session loaded")

let sched_of j =
  match opt_str j "sched" with
  | None | Some "level" -> Ok Eval.Level
  | Some "fifo" -> Ok Eval.Fifo
  | Some s -> Error (Printf.sprintf "unknown sched %S (expected \"level\" or \"fifo\")" s)

let cases_of j =
  match Json.member "cases" j, opt_str j "cases_file" with
  | Some (Json.Str text), None -> Case_analysis.parse text
  | None, Some path -> (
    match read_file path with
    | text -> Case_analysis.parse text
    | exception Sys_error m -> Error m)
  | None, None -> Ok []
  | Some _, None -> Error "\"cases\" must be a string of case-file text"
  | Some _, Some _ -> Error "give either \"cases\" or \"cases_file\", not both"

let source_of j =
  match opt_str j "source", opt_str j "file" with
  | Some src, None -> Ok src
  | None, Some path -> (
    match read_file path with
    | src -> Ok src
    | exception Sys_error m -> Error m)
  | None, None -> Error "load needs \"file\" (a path) or \"source\" (inline SCALD HDL)"
  | Some _, Some _ -> Error "give either \"file\" or \"source\", not both"

(* ---- operations ----------------------------------------------------------- *)

let session_fields s =
  [
    ("session", Json.Str (Session.id s));
    ("digest", Json.Str (Session.digest s));
  ]

let do_load t j =
  let* src = source_of j in
  let* cases = cases_of j in
  let* mode = sched_of j in
  let* ast = Scald_sdl.Parser.parse src in
  let* { Scald_sdl.Expander.e_netlist = nl; _ } = Scald_sdl.Expander.expand ast in
  let outcome = Store.load t.sv_store ~mode ~cases nl in
  let s, mode_str, staged =
    match outcome with
    | Store.Cold s -> (s, "cold", 0)
    | Store.Warm s -> (s, "warm", 0)
    | Store.Adopted (s, n) -> (s, "adopted", n)
  in
  Ok
    (ok "load"
       (session_fields s
       @ [
           ("mode", Json.Str mode_str);
           ("staged", Json.of_int staged);
           ("nets", Json.of_int (Netlist.n_nets (Session.netlist s)));
           ("insts", Json.of_int (Netlist.n_insts (Session.netlist s)));
         ]))

let do_delta t j =
  let* s = target_session t j in
  let* edits =
    match Option.bind (Json.member "edits" j) Json.list with
    | None -> Error "delta needs an \"edits\" array"
    | Some js ->
      List.fold_left
        (fun acc ej ->
          let* acc = acc in
          let* e = Edit.of_json ej in
          let* () = Edit.check (Session.netlist s) e in
          Ok (e :: acc))
        (Ok []) js
  in
  let edits = List.rev edits in
  List.iter (Session.stage s) edits;
  Ok (ok "delta" (session_fields s @ [ ("staged", Json.of_int (Session.pending s)) ]))

let stats_fields (st : Session.stats) =
  [
    ("reused_nets", Json.of_int st.Session.st_reused_nets);
    ("dirtied_nets", Json.of_int st.Session.st_dirtied_nets);
    ("warm_hits", Json.of_int st.Session.st_warm_hits);
    ("events", Json.of_int st.Session.st_events);
    ("evaluations", Json.of_int st.Session.st_evaluations);
  ]

let report_fields (r : Verifier.report) =
  [
    ("violations", Json.of_int (List.length r.Verifier.r_violations));
    ("converged", Json.Bool r.Verifier.r_converged);
    ("cases", Json.of_int (List.length r.Verifier.r_cases));
    ("unasserted", Json.of_int (List.length r.Verifier.r_unasserted));
  ]

let do_verify t j =
  let* s = target_session t j in
  let carry =
    match Option.bind (Json.member "carry_counters" j) Json.bool with
    | Some b -> b
    | None -> true
  in
  let report, st, fresh =
    if Session.pending s = 0 then
      (* nothing staged: the session's report already answers this
         request — full reuse, no work *)
      ( Session.report s,
        {
          Session.st_requests = (Session.stats s).Session.st_requests;
          st_reused_nets = Netlist.n_nets (Session.netlist s);
          st_dirtied_nets = 0;
          st_warm_hits = 0;
          st_fp_changed = 0;
          st_events = 0;
          st_evaluations = 0;
        },
        false )
    else
      let report, st = Session.reverify ~carry_counters:carry s in
      (report, st, true)
  in
  t.sv_reused_nets <- t.sv_reused_nets + st.Session.st_reused_nets;
  t.sv_dirtied_nets <- t.sv_dirtied_nets + st.Session.st_dirtied_nets;
  t.sv_warm_hits <- t.sv_warm_hits + st.Session.st_warm_hits;
  t.sv_last_report <- Some report;
  let* listed =
    match opt_str j "listing" with
    | None -> Ok []
    | Some path -> (
      match
        let oc = open_out_bin path in
        output_string oc (Session.listing s);
        close_out oc
      with
      | () -> Ok [ ("listing", Json.Str path) ]
      | exception Sys_error m -> Error m)
  in
  Ok
    (ok "verify"
       (session_fields s
       @ report_fields report
       @ stats_fields st
       @ [ ("fresh", Json.Bool fresh) ]
       @ listed))

let do_stats t =
  let cum =
    List.fold_left
      (fun acc s -> Eval.merge_counters acc (Session.cumulative s))
      Eval.zero_counters
      (Store.sessions t.sv_store)
  in
  Ok
    (ok "stats"
       [
         ("sessions", Json.of_int (Store.n_sessions t.sv_store));
         ("loads", Json.of_int (Store.loads t.sv_store));
         ("warm_loads", Json.of_int (Store.warm_loads t.sv_store));
         ("adopted_loads", Json.of_int (Store.adopted_loads t.sv_store));
         ("requests", Json.of_int t.sv_requests);
         ("errors", Json.of_int t.sv_errors);
         ("reused_nets", Json.of_int t.sv_reused_nets);
         ("dirtied_nets", Json.of_int t.sv_dirtied_nets);
         ("warm_hits", Json.of_int t.sv_warm_hits);
         ("events", Json.of_int cum.Eval.c_events);
         ("evaluations", Json.of_int cum.Eval.c_evaluations);
         ("cache_hits", Json.of_int cum.Eval.c_cache_hits);
         ("cache_misses", Json.of_int cum.Eval.c_cache_misses);
       ])

let extra_counters t =
  [
    ("incr_requests", t.sv_requests);
    ("incr_sessions", Store.n_sessions t.sv_store);
    ("incr_loads", Store.loads t.sv_store);
    ("incr_warm_loads", Store.warm_loads t.sv_store);
    ("incr_adopted_loads", Store.adopted_loads t.sv_store);
    ("incr_reused_nets", t.sv_reused_nets);
    ("incr_dirtied_nets", t.sv_dirtied_nets);
    ("incr_warm_hits", t.sv_warm_hits);
  ]

let write_metrics t path =
  match
    match t.sv_last_report with
    | Some r -> Some r
    | None -> Option.map Session.report (Store.latest t.sv_store)
  with
  | None -> false
  | Some report ->
    Scald_obs.Obs.write_metrics ~extra:(extra_counters t) t.sv_obs ~report path;
    true

let handle t req =
  t.sv_requests <- t.sv_requests + 1;
  let op = match opt_str req "op" with Some o -> o | None -> "" in
  let result =
    match op with
    | "" -> Error "request needs an \"op\" field"
    | "load" -> Scald_obs.Obs.span t.sv_obs "req:load" (fun () -> do_load t req)
    | "delta" -> Scald_obs.Obs.span t.sv_obs "req:delta" (fun () -> do_delta t req)
    | "verify" -> Scald_obs.Obs.span t.sv_obs "req:verify" (fun () -> do_verify t req)
    | "stats" -> do_stats t
    | "shutdown" -> Ok (ok "shutdown" [])
    | o -> Error (Printf.sprintf "unknown op %S" o)
  in
  match result with
  | Ok resp -> (resp, op <> "shutdown")
  | Error msg ->
    t.sv_errors <- t.sv_errors + 1;
    (error ~op:(if op = "" then "?" else op) msg, true)

let handle_line t line =
  match Json.parse line with
  | Error msg ->
    t.sv_requests <- t.sv_requests + 1;
    t.sv_errors <- t.sv_errors + 1;
    (Json.to_string (error (Printf.sprintf "bad JSON: %s" msg)), true)
  | Ok req -> (
    match handle t req with
    | resp, cont -> (Json.to_string resp, cont)
    | exception Invalid_argument msg | exception Failure msg ->
      t.sv_errors <- t.sv_errors + 1;
      (Json.to_string (error msg), true)
    | exception Sys_error msg ->
      t.sv_errors <- t.sv_errors + 1;
      (Json.to_string (error msg), true))

let run ?metrics ic oc =
  let t = create () in
  output_string oc (Json.to_string (hello ()));
  output_char oc '\n';
  flush oc;
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
      if String.trim line = "" then loop ()
      else begin
        let resp, cont = handle_line t line in
        output_string oc resp;
        output_char oc '\n';
        flush oc;
        if cont then loop ()
      end
  in
  loop ();
  (match metrics with
  | Some path -> ignore (write_metrics t path)
  | None -> ());
  0
