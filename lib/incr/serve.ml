open Scald_core

(* The request kinds with their own latency histogram, in the fixed
   order every exposition (stats/health/prom/metrics) lists them. *)
let kinds = [ "load"; "delta"; "verify"; "stats"; "health" ]

type t = {
  sv_store : Store.t;
  sv_obs : Scald_obs.Obs.t;
  sv_telemetry : bool;
  sv_slow_ms : float;
  sv_log : out_channel option;
  sv_prom : string option;
  sv_t0_us : float;
  mutable sv_requests : int;
  mutable sv_errors : int;
  mutable sv_slow : int;
  mutable sv_reused_nets : int;
  mutable sv_dirtied_nets : int;
  mutable sv_warm_hits : int;
  mutable sv_last_report : Verifier.report option;
  sv_kind_hist : (string, Scald_obs.Hist.t) Hashtbl.t;  (* request wall µs *)
  sv_phase_hist : (string, Scald_obs.Hist.t) Hashtbl.t;  (* span µs by name *)
  mutable sv_spans_seen : int;  (* profiler spans consumed so far *)
  mutable sv_lanes : (int * string) list;  (* trace lanes, newest first *)
  mutable sv_mem : Scald_obs.Mem.snapshot;
  mutable sv_bpp : float;  (* bytes per primitive, last sampled *)
}

let create ?obs ?(telemetry = true) ?(slow_ms = infinity) ?log ?prom () =
  let sv_obs = match obs with Some o -> o | None -> Scald_obs.Obs.create () in
  {
    sv_store = Store.create ();
    sv_obs;
    sv_telemetry = telemetry;
    sv_slow_ms = slow_ms;
    sv_log = log;
    sv_prom = prom;
    sv_t0_us = Scald_obs.Obs.now_us sv_obs;
    sv_requests = 0;
    sv_errors = 0;
    sv_slow = 0;
    sv_reused_nets = 0;
    sv_dirtied_nets = 0;
    sv_warm_hits = 0;
    sv_last_report = None;
    sv_kind_hist = Hashtbl.create 8;
    sv_phase_hist = Hashtbl.create 16;
    sv_spans_seen = Scald_obs.Span.n_completed (Scald_obs.Obs.profiler sv_obs);
    sv_lanes = [];
    sv_mem = Scald_obs.Mem.zero;
    sv_bpp = 0.0;
  }

let store t = t.sv_store
let lanes t = List.rev t.sv_lanes

let hello () =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("op", Json.Str "hello");
      ("service", Json.Str "scald_tv serve");
      ("version", Json.Str Version.version);
      ("protocol", Json.Str Version.protocol);
      ("metrics_schema", Json.Str Scald_obs.Counters.schema_version);
    ]

let error ?op msg =
  Json.Obj
    ((match op with Some o -> [ ("op", Json.Str o) ] | None -> [])
    @ [ ("ok", Json.Bool false); ("error", Json.Str msg) ])

let ok op fields = Json.Obj (("ok", Json.Bool true) :: ("op", Json.Str op) :: fields)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---- telemetry ------------------------------------------------------------ *)

let uptime_us t = Scald_obs.Obs.now_us t.sv_obs -. t.sv_t0_us

let hist_for tbl name =
  match Hashtbl.find_opt tbl name with
  | Some h -> h
  | None ->
    let h = Scald_obs.Hist.create () in
    Hashtbl.add tbl name h;
    h

(* Fold the spans the last request produced into the per-phase
   histograms.  O(spans this request), not O(all spans ever): the
   profiler's completed list is newest-first, so [recent] takes just
   the fresh suffix. *)
let consume_spans t =
  let prof = Scald_obs.Obs.profiler t.sv_obs in
  let n = Scald_obs.Span.n_completed prof in
  let fresh = n - t.sv_spans_seen in
  if fresh > 0 then begin
    List.iter
      (fun (s : Scald_obs.Span.span) ->
        Scald_obs.Hist.add
          (hist_for t.sv_phase_hist s.Scald_obs.Span.s_name)
          s.Scald_obs.Span.s_dur_us)
      (Scald_obs.Span.recent prof fresh);
    t.sv_spans_seen <- n
  end;
  fresh

(* Memory + bytes-per-primitive sampling.  [full] reads /proc and
   walks the netlist sizes ([Stats.storage_of] is O(design)), so it
   runs only at load/stats/health boundaries; every other request
   boundary takes the cheap GC-only snapshot, carrying the last RSS
   reading forward — this is what keeps telemetry inside the <5%
   overhead budget on sub-millisecond re-verifies. *)
let refresh_resources ?(full = false) t =
  if t.sv_telemetry then
    if full then begin
      t.sv_mem <- Scald_obs.Mem.sample ();
      match Store.latest t.sv_store with
      | None -> ()
      | Some s ->
        let nl = Session.netlist s in
        let st = Stats.storage_of nl in
        t.sv_bpp <-
          Stats.bytes_per_primitive st ~n_primitives:(max 1 (Netlist.n_insts nl))
    end
    else
      t.sv_mem <-
        Scald_obs.Mem.sample
          ~peak_rss_kb:t.sv_mem.Scald_obs.Mem.mem_peak_rss_kb ()

let cumulative_counters t =
  List.fold_left
    (fun acc s -> Eval.merge_counters acc (Session.cumulative s))
    Eval.zero_counters
    (Store.sessions t.sv_store)

let cache_hit_rate (c : Eval.counters) =
  let total = c.Eval.c_cache_hits + c.Eval.c_cache_misses in
  if total = 0 then 0.0 else float_of_int c.Eval.c_cache_hits /. float_of_int total

(* kind -> {count, p50_us, p90_us, p99_us, max_us}, kinds with traffic
   only, in the fixed [kinds] order. *)
let latency_json t =
  Json.Obj
    (List.filter_map
       (fun k ->
         match Hashtbl.find_opt t.sv_kind_hist k with
         | Some h when Scald_obs.Hist.count h > 0 ->
           Some
             ( k,
               Json.Obj
                 [
                   ("count", Json.of_int (Scald_obs.Hist.count h));
                   ("p50_us", Json.Num (Scald_obs.Hist.quantile h 0.5));
                   ("p90_us", Json.Num (Scald_obs.Hist.quantile h 0.9));
                   ("p99_us", Json.Num (Scald_obs.Hist.quantile h 0.99));
                   ("max_us", Json.Num (Scald_obs.Hist.max_value h));
                 ] )
         | _ -> None)
       kinds)

let log_request t ~reqno ~op ~ok ~dur_us ~slow =
  match t.sv_log with
  | None -> ()
  | Some oc ->
    output_string oc
      (Json.to_string
         (Json.Obj
            [
              ("req", Json.of_int reqno);
              ("trace", Json.Str (Printf.sprintf "r%d" reqno));
              ("op", Json.Str op);
              ("ok", Json.Bool ok);
              ("dur_us", Json.Num dur_us);
              ("slow", Json.Bool slow);
            ]));
    output_char oc '\n';
    flush oc

let prom_families t =
  let open Scald_obs in
  let kind_hists =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt t.sv_kind_hist k with
        | Some h when Hist.count h > 0 -> Some (k, h)
        | _ -> None)
      kinds
  in
  let cum = cumulative_counters t in
  let f = float_of_int in
  [
    Prom.family ~name:"scald_uptime_us"
      ~help:"Microseconds since the service started" ~typ:`Gauge
      [ Prom.sample (uptime_us t) ];
    Prom.family ~name:"scald_requests_total" ~help:"Requests served by operation"
      ~typ:`Counter
      (List.map
         (fun (k, h) -> Prom.sample ~labels:[ ("op", k) ] (f (Hist.count h)))
         kind_hists);
    Prom.family ~name:"scald_errors_total" ~help:"Requests answered with an error"
      ~typ:`Counter
      [ Prom.sample (f t.sv_errors) ];
    Prom.family ~name:"scald_slow_requests_total"
      ~help:"Requests over the --slow-ms threshold" ~typ:`Counter
      [ Prom.sample (f t.sv_slow) ];
    Prom.family ~name:"scald_request_duration_us"
      ~help:"Request wall-clock quantile estimates by operation" ~typ:`Gauge
      (List.concat_map
         (fun (k, h) ->
           [
             Prom.sample
               ~labels:[ ("op", k); ("quantile", "0.5") ]
               (Hist.quantile h 0.5);
             Prom.sample
               ~labels:[ ("op", k); ("quantile", "0.9") ]
               (Hist.quantile h 0.9);
             Prom.sample
               ~labels:[ ("op", k); ("quantile", "0.99") ]
               (Hist.quantile h 0.99);
             Prom.sample ~labels:[ ("op", k); ("quantile", "1") ] (Hist.max_value h);
           ])
         kind_hists);
    Prom.family ~name:"scald_cache_hits_total"
      ~help:"Waveform/register cache hits over all sessions" ~typ:`Counter
      [ Prom.sample (f cum.Eval.c_cache_hits) ];
    Prom.family ~name:"scald_cache_misses_total"
      ~help:"Waveform/register cache fills over all sessions" ~typ:`Counter
      [ Prom.sample (f cum.Eval.c_cache_misses) ];
    Prom.family ~name:"scald_sessions" ~help:"Live sessions in the store"
      ~typ:`Gauge
      [ Prom.sample (f (Store.n_sessions t.sv_store)) ];
    Prom.family ~name:"scald_mem_peak_rss_kb"
      ~help:"Peak resident set size in kB (VmHWM)" ~typ:`Gauge
      [ Prom.sample (f t.sv_mem.Mem.mem_peak_rss_kb) ];
    Prom.family ~name:"scald_mem_heap_words" ~help:"Major heap size in words"
      ~typ:`Gauge
      [ Prom.sample (f t.sv_mem.Mem.mem_heap_words) ];
    Prom.family ~name:"scald_bytes_per_primitive"
      ~help:"Circuit-description bytes per primitive of the latest design"
      ~typ:`Gauge
      [ Prom.sample t.sv_bpp ];
  ]

(* ---- request decoding ----------------------------------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let opt_str j key = Option.bind (Json.member key j) Json.str

let target_session t j =
  match opt_str j "session" with
  | Some handle -> (
    match Store.find t.sv_store handle with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "no session %s" handle))
  | None -> (
    match Store.latest t.sv_store with
    | Some s -> Ok s
    | None -> Error "no session loaded")

let sched_of j =
  match opt_str j "sched" with
  | None | Some "level" -> Ok Eval.Level
  | Some "fifo" -> Ok Eval.Fifo
  | Some s -> Error (Printf.sprintf "unknown sched %S (expected \"level\" or \"fifo\")" s)

let cases_of j =
  match Json.member "cases" j, opt_str j "cases_file" with
  | Some (Json.Str text), None -> Case_analysis.parse text
  | None, Some path -> (
    match read_file path with
    | text -> Case_analysis.parse text
    | exception Sys_error m -> Error m)
  | None, None -> Ok []
  | Some _, None -> Error "\"cases\" must be a string of case-file text"
  | Some _, Some _ -> Error "give either \"cases\" or \"cases_file\", not both"

let source_of j =
  match opt_str j "source", opt_str j "file" with
  | Some src, None -> Ok src
  | None, Some path -> (
    match read_file path with
    | src -> Ok src
    | exception Sys_error m -> Error m)
  | None, None -> Error "load needs \"file\" (a path) or \"source\" (inline SCALD HDL)"
  | Some _, Some _ -> Error "give either \"file\" or \"source\", not both"

(* ---- operations ----------------------------------------------------------- *)

let session_fields s =
  [
    ("session", Json.Str (Session.id s));
    ("digest", Json.Str (Session.digest s));
  ]

let do_load t j =
  let* src = source_of j in
  let* cases = cases_of j in
  let* mode = sched_of j in
  let* ast = Scald_sdl.Parser.parse src in
  let* { Scald_sdl.Expander.e_netlist = nl; _ } = Scald_sdl.Expander.expand ast in
  let probe =
    if t.sv_telemetry then Some (Scald_obs.Obs.probe t.sv_obs) else None
  in
  let outcome = Store.load t.sv_store ~mode ~cases ?probe nl in
  let s, mode_str, staged =
    match outcome with
    | Store.Cold s -> (s, "cold", 0)
    | Store.Warm s -> (s, "warm", 0)
    | Store.Adopted (s, n) -> (s, "adopted", n)
  in
  Ok
    (ok "load"
       (session_fields s
       @ [
           ("mode", Json.Str mode_str);
           ("staged", Json.of_int staged);
           ("nets", Json.of_int (Netlist.n_nets (Session.netlist s)));
           ("insts", Json.of_int (Netlist.n_insts (Session.netlist s)));
         ]))

let do_delta t j =
  let* s = target_session t j in
  let* edits =
    match Option.bind (Json.member "edits" j) Json.list with
    | None -> Error "delta needs an \"edits\" array"
    | Some js ->
      List.fold_left
        (fun acc ej ->
          let* acc = acc in
          let* e = Edit.of_json ej in
          let* () = Edit.check (Session.netlist s) e in
          Ok (e :: acc))
        (Ok []) js
  in
  let edits = List.rev edits in
  List.iter (Session.stage s) edits;
  Ok (ok "delta" (session_fields s @ [ ("staged", Json.of_int (Session.pending s)) ]))

let stats_fields (st : Session.stats) =
  [
    ("reused_nets", Json.of_int st.Session.st_reused_nets);
    ("dirtied_nets", Json.of_int st.Session.st_dirtied_nets);
    ("warm_hits", Json.of_int st.Session.st_warm_hits);
    ("events", Json.of_int st.Session.st_events);
    ("evaluations", Json.of_int st.Session.st_evaluations);
  ]

let report_fields (r : Verifier.report) =
  [
    ("violations", Json.of_int (List.length r.Verifier.r_violations));
    ("converged", Json.Bool r.Verifier.r_converged);
    ("cases", Json.of_int (List.length r.Verifier.r_cases));
    ("unasserted", Json.of_int (List.length r.Verifier.r_unasserted));
  ]

let do_verify t j =
  let* s = target_session t j in
  let carry =
    match Option.bind (Json.member "carry_counters" j) Json.bool with
    | Some b -> b
    | None -> true
  in
  let report, st, fresh =
    if Session.pending s = 0 then
      (* nothing staged: the session's report already answers this
         request — full reuse, no work *)
      ( Session.report s,
        {
          Session.st_requests = (Session.stats s).Session.st_requests;
          st_reused_nets = Netlist.n_nets (Session.netlist s);
          st_dirtied_nets = 0;
          st_warm_hits = 0;
          st_fp_changed = 0;
          st_events = 0;
          st_evaluations = 0;
        },
        false )
    else
      let report, st = Session.reverify ~carry_counters:carry s in
      (report, st, true)
  in
  t.sv_reused_nets <- t.sv_reused_nets + st.Session.st_reused_nets;
  t.sv_dirtied_nets <- t.sv_dirtied_nets + st.Session.st_dirtied_nets;
  t.sv_warm_hits <- t.sv_warm_hits + st.Session.st_warm_hits;
  t.sv_last_report <- Some report;
  let* listed =
    match opt_str j "listing" with
    | None -> Ok []
    | Some path -> (
      match
        let oc = open_out_bin path in
        output_string oc (Session.listing s);
        close_out oc
      with
      | () -> Ok [ ("listing", Json.Str path) ]
      | exception Sys_error m -> Error m)
  in
  Ok
    (ok "verify"
       (session_fields s
       @ report_fields report
       @ stats_fields st
       @ [ ("fresh", Json.Bool fresh) ]
       @ listed))

let do_stats t =
  let cum = cumulative_counters t in
  Ok
    (ok "stats"
       [
         ("sessions", Json.of_int (Store.n_sessions t.sv_store));
         ("loads", Json.of_int (Store.loads t.sv_store));
         ("warm_loads", Json.of_int (Store.warm_loads t.sv_store));
         ("adopted_loads", Json.of_int (Store.adopted_loads t.sv_store));
         ("requests", Json.of_int t.sv_requests);
         ("errors", Json.of_int t.sv_errors);
         ("slow_requests", Json.of_int t.sv_slow);
         ("uptime_us", Json.of_int (int_of_float (uptime_us t)));
         ("reused_nets", Json.of_int t.sv_reused_nets);
         ("dirtied_nets", Json.of_int t.sv_dirtied_nets);
         ("warm_hits", Json.of_int t.sv_warm_hits);
         ("events", Json.of_int cum.Eval.c_events);
         ("evaluations", Json.of_int cum.Eval.c_evaluations);
         ("cache_hits", Json.of_int cum.Eval.c_cache_hits);
         ("cache_misses", Json.of_int cum.Eval.c_cache_misses);
         ("cache_hit_rate", Json.Num (cache_hit_rate cum));
         ("latency_us", latency_json t);
         ("peak_rss_kb", Json.of_int t.sv_mem.Scald_obs.Mem.mem_peak_rss_kb);
         ("bytes_per_primitive", Json.Num t.sv_bpp);
       ])

let do_health t =
  let cum = cumulative_counters t in
  let m = t.sv_mem in
  Ok
    (ok "health"
       [
         ("uptime_us", Json.of_int (int_of_float (uptime_us t)));
         ("requests", Json.of_int t.sv_requests);
         ("errors", Json.of_int t.sv_errors);
         ("slow_requests", Json.of_int t.sv_slow);
         ("sessions", Json.of_int (Store.n_sessions t.sv_store));
         ("latency_us", latency_json t);
         ("cache_hit_rate", Json.Num (cache_hit_rate cum));
         ( "mem",
           Json.Obj
             [
               ("minor_words", Json.Num m.Scald_obs.Mem.mem_minor_words);
               ("promoted_words", Json.Num m.Scald_obs.Mem.mem_promoted_words);
               ("major_words", Json.Num m.Scald_obs.Mem.mem_major_words);
               ("heap_words", Json.of_int m.Scald_obs.Mem.mem_heap_words);
               ("compactions", Json.of_int m.Scald_obs.Mem.mem_compactions);
               ("peak_rss_kb", Json.of_int m.Scald_obs.Mem.mem_peak_rss_kb);
             ] );
         ("bytes_per_primitive", Json.Num t.sv_bpp);
       ])

let extra_counters t =
  let open Scald_obs in
  let svc =
    List.concat_map
      (fun k ->
        match Hashtbl.find_opt t.sv_kind_hist k with
        | Some h when Hist.count h > 0 ->
          [
            (Printf.sprintf "svc_%s_requests" k, Hist.count h);
            (Printf.sprintf "svc_%s_p50_us" k, int_of_float (Hist.quantile h 0.5));
            (Printf.sprintf "svc_%s_p90_us" k, int_of_float (Hist.quantile h 0.9));
            (Printf.sprintf "svc_%s_p99_us" k, int_of_float (Hist.quantile h 0.99));
            (Printf.sprintf "svc_%s_max_us" k, int_of_float (Hist.max_value h));
          ]
        | _ -> [])
      kinds
  in
  [
    ("incr_requests", t.sv_requests);
    ("incr_sessions", Store.n_sessions t.sv_store);
    ("incr_loads", Store.loads t.sv_store);
    ("incr_warm_loads", Store.warm_loads t.sv_store);
    ("incr_adopted_loads", Store.adopted_loads t.sv_store);
    ("incr_reused_nets", t.sv_reused_nets);
    ("incr_dirtied_nets", t.sv_dirtied_nets);
    ("incr_warm_hits", t.sv_warm_hits);
    ("svc_slow_requests", t.sv_slow);
    ("mem_minor_words", int_of_float t.sv_mem.Mem.mem_minor_words);
    ("mem_promoted_words", int_of_float t.sv_mem.Mem.mem_promoted_words);
    ("mem_major_words", int_of_float t.sv_mem.Mem.mem_major_words);
    ("mem_heap_words", t.sv_mem.Mem.mem_heap_words);
    ("mem_compactions", t.sv_mem.Mem.mem_compactions);
    ("mem_peak_rss_kb", t.sv_mem.Mem.mem_peak_rss_kb);
    ("bytes_per_primitive", int_of_float t.sv_bpp);
  ]
  @ svc

let write_metrics t path =
  match
    match t.sv_last_report with
    | Some r -> Some r
    | None -> Option.map Session.report (Store.latest t.sv_store)
  with
  | None -> false
  | Some report ->
    Scald_obs.Obs.write_metrics ~extra:(extra_counters t) t.sv_obs ~report path;
    true

let handle t req =
  t.sv_requests <- t.sv_requests + 1;
  let reqno = t.sv_requests in
  let op = match opt_str req "op" with Some o -> o | None -> "" in
  let t_start = if t.sv_telemetry then Scald_obs.Obs.now_us t.sv_obs else 0.0 in
  (* one lane per request: every span recorded while it runs — the
     req:* wrapper plus the nested Session/Eval phases — lands on the
     request's own trace track *)
  if t.sv_telemetry then Scald_obs.Obs.set_lane t.sv_obs reqno;
  let result =
    match op with
    | "" -> Error "request needs an \"op\" field"
    | "load" -> Scald_obs.Obs.span t.sv_obs "req:load" (fun () -> do_load t req)
    | "delta" -> Scald_obs.Obs.span t.sv_obs "req:delta" (fun () -> do_delta t req)
    | "verify" -> Scald_obs.Obs.span t.sv_obs "req:verify" (fun () -> do_verify t req)
    | "stats" ->
      (* the response carries the memory snapshot: refresh first *)
      refresh_resources ~full:true t;
      do_stats t
    | "health" ->
      refresh_resources ~full:true t;
      do_health t
    | "shutdown" -> Ok (ok "shutdown" [])
    | o -> Error (Printf.sprintf "unknown op %S" o)
  in
  let succeeded = match result with Ok _ -> true | Error _ -> false in
  if not succeeded then t.sv_errors <- t.sv_errors + 1;
  if t.sv_telemetry then begin
    Scald_obs.Obs.set_lane t.sv_obs 0;
    let fresh = consume_spans t in
    if fresh > 0 then
      t.sv_lanes <- (reqno, Printf.sprintf "r%d:%s" reqno op) :: t.sv_lanes;
    let dur_us = Scald_obs.Obs.now_us t.sv_obs -. t_start in
    if List.mem op kinds then
      Scald_obs.Hist.add (hist_for t.sv_kind_hist op) dur_us;
    let slow = dur_us /. 1000.0 > t.sv_slow_ms in
    if slow then t.sv_slow <- t.sv_slow + 1;
    (match op with
    | "load" when succeeded -> refresh_resources ~full:true t
    | "stats" | "health" -> ()  (* refreshed pre-dispatch *)
    | _ ->
      (* between the full sampling points only the prom exporter reads
         the snapshot, so only it pays the per-request GC sample *)
      if t.sv_prom <> None then refresh_resources t);
    log_request t ~reqno
      ~op:(if op = "" then "?" else op)
      ~ok:succeeded ~dur_us ~slow;
    match t.sv_prom with
    | Some path -> Scald_obs.Prom.write_file path (prom_families t)
    | None -> ()
  end;
  match result with
  | Ok resp -> (resp, op <> "shutdown")
  | Error msg -> (error ~op:(if op = "" then "?" else op) msg, true)

let handle_line t line =
  match Json.parse line with
  | Error msg ->
    t.sv_requests <- t.sv_requests + 1;
    t.sv_errors <- t.sv_errors + 1;
    (Json.to_string (error (Printf.sprintf "bad JSON: %s" msg)), true)
  | Ok req -> (
    match handle t req with
    | resp, cont -> (Json.to_string resp, cont)
    | exception Invalid_argument msg | exception Failure msg ->
      t.sv_errors <- t.sv_errors + 1;
      (Json.to_string (error msg), true)
    | exception Sys_error msg ->
      t.sv_errors <- t.sv_errors + 1;
      (Json.to_string (error msg), true))

let write_trace t path =
  Scald_obs.Obs.write_profile ~process_name:"scald_tv serve" ~lanes:(lanes t)
    ?report:t.sv_last_report t.sv_obs path

let run ?metrics ?slow_ms ?log ?prom ?trace ?telemetry ic oc =
  let log_oc = Option.map open_out log in
  let t = create ?telemetry ?slow_ms ?log:log_oc ?prom () in
  output_string oc (Json.to_string (hello ()));
  output_char oc '\n';
  flush oc;
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
      if String.trim line = "" then loop ()
      else begin
        let resp, cont = handle_line t line in
        output_string oc resp;
        output_char oc '\n';
        flush oc;
        if cont then loop ()
      end
  in
  loop ();
  (match metrics with
  | Some path -> ignore (write_metrics t path)
  | None -> ());
  (match trace with Some path -> write_trace t path | None -> ());
  Option.iter close_out log_oc;
  0
