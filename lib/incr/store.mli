(** Content-addressed session store (doc/SERVICE.md).

    Sessions are addressed by the {!Fingerprint.digest} of their design.
    A [load] of a design the store has already verified comes back
    {!Warm} (nothing to do — the cached report stands); a design that is
    structurally identical to a live session but differs in parameters
    comes back {!Adopted}, with the parameter diff staged as edits on
    that session, so the next [verify] re-evaluates only the diff's
    dirty cone instead of the whole design; everything else is a
    {!Cold} load. *)

open Scald_core

type t

type outcome =
  | Cold of Session.t  (** no reusable session: full cold verify ran *)
  | Warm of Session.t
      (** digest, mode and case group all match a live session — full
          reuse, its current report stands *)
  | Adopted of Session.t * int
      (** an existing session was adopted; [int] edits were staged
          (parameter diff, possibly plus a case-group swap) *)

val create : unit -> t

val load :
  t ->
  ?mode:Eval.mode ->
  ?cases:Case_analysis.case list ->
  ?probe:Verifier.probe ->
  Netlist.t ->
  outcome
(** Load a design, reusing or adopting a live session when the content
    address allows it.  On {!Adopted}, the submitted netlist is
    discarded — the session keeps its own and replays the diff.
    [probe] is installed on a {!Cold} load only (see
    {!Session.load}) — reused sessions keep the probe they were
    created with. *)

val find : t -> string -> Session.t option
(** Look up by session handle ({!Session.id}) or current content digest
    ({!Session.digest}). *)

val latest : t -> Session.t option
(** Most recently loaded/used session — the default target of a request
    that omits the session handle. *)

val sessions : t -> Session.t list
val n_sessions : t -> int
val loads : t -> int

val warm_loads : t -> int
(** Loads answered {!Warm}. *)

val adopted_loads : t -> int
(** Loads answered {!Adopted}. *)
