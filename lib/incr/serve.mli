(** The JSONL request loop behind [scald_tv serve] (doc/SERVICE.md).

    One request per line on stdin, one response per line on stdout.
    Requests are JSON objects dispatched on their ["op"] field:
    [load], [delta], [verify], [stats], [health], [shutdown].  The
    service prints a [hello] banner (version, protocol, metrics
    schema) before reading the first request, and answers every
    malformed request with [{"ok": false, "error": ...}] without
    dying.

    The loop is strictly sequential: a request runs to completion
    before the next line is read, which is what lets sessions mutate
    their netlists in place.

    {2 Telemetry}

    With telemetry on (the default), every request is timed on the
    observability handle's clock into a per-kind {!Scald_obs.Hist}
    (so [stats]/[health] report deterministic p50/p90/p99 — inject a
    fake clock and the quantiles are reproducible), every span the
    request produces is folded into per-phase histograms and stamped
    with the request's trace lane (one Chrome-trace track per
    request), and memory / bytes-per-primitive snapshots are taken at
    request boundaries — the expensive parts (procfs, O(design) size
    walk) only at [load]/[stats]/[health].  Optional sinks: a JSONL
    request log with a slow-request threshold, and a Prometheus
    text-format file atomically rewritten after each request
    (doc/OBSERVABILITY.md, "Service telemetry"). *)

type t
(** Service state: the session {!Store.t}, request counters and the
    telemetry sinks. *)

val create :
  ?obs:Scald_obs.Obs.t ->
  ?telemetry:bool ->
  ?slow_ms:float ->
  ?log:out_channel ->
  ?prom:string ->
  unit ->
  t
(** [telemetry] (default [true]) gates all per-request measurement;
    [slow_ms] (default [infinity]) marks requests over the threshold
    slow in the log and counters; [log] receives one JSONL line per
    request; [prom] names a Prometheus text file rewritten after each
    request. *)

val store : t -> Store.t

val lanes : t -> (int * string) list
(** The trace lanes assigned so far, oldest first: request number to
    ["r<N>:<op>"] — pass to {!Scald_obs.Obs.write_profile} as
    [?lanes] to name the per-request tracks. *)

val hello : unit -> Json.t
(** The banner object printed before the first request. *)

val handle : t -> Json.t -> Json.t * bool
(** Dispatch one decoded request.  Returns the response and whether the
    loop should continue ([false] only after a successful [shutdown]). *)

val handle_line : t -> string -> string * bool
(** {!handle} plus JSON decoding and encoding and a catch-all that turns
    stray exceptions into error responses. *)

val extra_counters : t -> (string * int) list
(** The [incr_*], [svc_*] and [mem_*] counters this service
    contributes to the metrics JSON ([scald-metrics/5],
    doc/metrics.schema.json).  The [svc_<kind>_*] latency figures
    appear only for request kinds that saw traffic. *)

val write_metrics : t -> string -> bool
(** Write the metrics JSON for the last verified report, with the
    service counters appended.  Returns [false] (and writes nothing)
    when no report exists yet. *)

val write_trace : t -> string -> unit
(** Write the Chrome trace of everything profiled so far, one named
    track per request (see {!lanes}). *)

val run :
  ?metrics:string ->
  ?slow_ms:float ->
  ?log:string ->
  ?prom:string ->
  ?trace:string ->
  ?telemetry:bool ->
  in_channel ->
  out_channel ->
  int
(** The serve main loop: banner, then read-dispatch-respond until
    [shutdown] or end of input.  [metrics] names a file to write final
    run metrics to on exit; [trace] a Chrome trace written on exit;
    [log]/[prom]/[slow_ms]/[telemetry] as in {!create} ([log] is
    opened and closed by the loop).  Returns the process exit code
    (0). *)
