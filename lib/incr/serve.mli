(** The JSONL request loop behind [scald_tv serve] (doc/SERVICE.md).

    One request per line on stdin, one response per line on stdout.
    Requests are JSON objects dispatched on their ["op"] field:
    [load], [delta], [verify], [stats], [shutdown].  The service prints
    a [hello] banner (version, protocol, metrics schema) before reading
    the first request, and answers every malformed request with
    [{"ok": false, "error": ...}] without dying.

    The loop is strictly sequential: a request runs to completion
    before the next line is read, which is what lets sessions mutate
    their netlists in place. *)

type t
(** Service state: the session {!Store.t} plus request counters. *)

val create : ?obs:Scald_obs.Obs.t -> unit -> t
val store : t -> Store.t

val hello : unit -> Json.t
(** The banner object printed before the first request. *)

val handle : t -> Json.t -> Json.t * bool
(** Dispatch one decoded request.  Returns the response and whether the
    loop should continue ([false] only after a successful [shutdown]). *)

val handle_line : t -> string -> string * bool
(** {!handle} plus JSON decoding and encoding and a catch-all that turns
    stray exceptions into error responses. *)

val extra_counters : t -> (string * int) list
(** The [incr_*] counters this service contributes to the metrics JSON
    ([scald-metrics/2], doc/metrics.schema.json). *)

val write_metrics : t -> string -> bool
(** Write the metrics JSON for the last verified report, with the
    [incr_*] counters appended.  Returns [false] (and writes nothing)
    when no report exists yet. *)

val run : ?metrics:string -> in_channel -> out_channel -> int
(** The serve main loop: banner, then read-dispatch-respond until
    [shutdown] or end of input.  [metrics] names a file to write final
    run metrics to on exit.  Returns the process exit code (0). *)
