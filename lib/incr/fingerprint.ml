open Scald_core

(* ---- canonical serialization --------------------------------------------- *)

(* A netlist's identity for the session store is the canonical dump of
   its structure and parameters, hashed.  Two digests are computed from
   the same walk:

   - [digest]: everything — structure plus every editable parameter
     (wire delays, assertions, primitive parameters, connection
     directives).  Equal digests mean a cold run would produce the very
     same report: full session reuse.
   - [skeleton]: structure only — names, widths, connectivity, primitive
     shape.  Equal skeletons mean the designs differ only in parameters
     every one of which is expressible as an {!Edit.t}, so an existing
     session can be adopted by replaying the parameter diff. *)

let add_int b i =
  Buffer.add_char b 'i';
  Buffer.add_string b (string_of_int i);
  Buffer.add_char b ';'

let add_str b s =
  Buffer.add_char b 's';
  add_int b (String.length s);
  Buffer.add_string b s

let add_bool b v = Buffer.add_char b (if v then 'T' else 'F')

let add_opt f b = function
  | None -> Buffer.add_char b 'N'
  | Some v ->
    Buffer.add_char b 'S';
    f b v

let add_delay b (d : Delay.t) =
  add_int b d.dmin;
  add_int b d.dmax;
  add_opt
    (fun b ((rmin, rmax), (fmin, fmax)) ->
      add_int b rmin;
      add_int b rmax;
      add_int b fmin;
      add_int b fmax)
    b d.rise_fall

let add_assertion b a = add_str b (Assertion.to_string a)
let add_directive b d = add_str b (Directive.to_string d)

let gate_fn_tag = function
  | Primitive.And -> 0
  | Primitive.Or -> 1
  | Primitive.Xor -> 2
  | Primitive.Chg -> 3

(* [params = false] records only the shape of the primitive — the
   constructor and whatever decides its input count.  Note that [invert]
   and checker margins are parameters: a NAND differs from an AND only
   in a parameter, replayable with {!Netlist.replace_prim}. *)
let add_prim ~params b (p : Primitive.t) =
  match p with
  | Primitive.Gate g ->
    Buffer.add_char b 'G';
    add_int b (gate_fn_tag g.fn);
    add_int b g.n_inputs;
    if params then begin
      add_bool b g.invert;
      add_delay b g.delay
    end
  | Primitive.Buf bu ->
    Buffer.add_char b 'B';
    if params then begin
      add_bool b bu.invert;
      add_delay b bu.delay
    end
  | Primitive.Mux2 m ->
    Buffer.add_char b 'M';
    if params then begin
      add_delay b m.delay;
      add_delay b m.select_extra
    end
  | Primitive.Reg r ->
    Buffer.add_char b 'R';
    add_bool b r.has_set_reset;
    if params then add_delay b r.delay
  | Primitive.Latch l ->
    Buffer.add_char b 'L';
    add_bool b l.has_set_reset;
    if params then add_delay b l.delay
  | Primitive.Setup_hold_check c ->
    Buffer.add_char b 'H';
    if params then begin
      add_int b c.setup;
      add_int b c.hold
    end
  | Primitive.Setup_rise_hold_fall_check c ->
    Buffer.add_char b 'W';
    if params then begin
      add_int b c.setup;
      add_int b c.hold
    end
  | Primitive.Min_pulse_width c ->
    Buffer.add_char b 'P';
    if params then begin
      add_int b c.high;
      add_int b c.low
    end
  | Primitive.Const v ->
    Buffer.add_char b 'C';
    if params then Buffer.add_char b (Tvalue.to_char v)

let dump ~params nl =
  let b = Buffer.create 4096 in
  let tb = Netlist.timebase nl in
  add_int b (Timebase.period tb);
  add_int b (Timebase.clock_unit tb);
  add_delay b (Netlist.default_wire_delay nl);
  add_int b (Netlist.n_nets nl);
  Netlist.iter_nets nl (fun n ->
      add_str b n.n_name;
      add_int b n.n_width;
      if params then begin
        add_opt add_assertion b n.n_assertion;
        add_opt add_delay b n.n_wire_delay
      end);
  add_int b (Netlist.n_insts nl);
  Netlist.iter_insts nl (fun i ->
      add_str b i.i_name;
      add_prim ~params b i.i_prim;
      add_int b (Array.length i.i_inputs);
      Array.iter
        (fun (c : Netlist.conn) ->
          add_int b c.c_net;
          add_bool b c.c_invert;
          if params then add_directive b c.c_directive)
        i.i_inputs;
      add_opt add_int b i.i_output);
  (* The corner table is a replayable parameter (Edit.Corners), so it
     belongs to [digest] but not to [skeleton]. *)
  if params then add_str b (Corner.table_to_string (Netlist.corners nl));
  Buffer.contents b

let digest nl = Digest.to_hex (Digest.string (dump ~params:true nl))
let skeleton nl = Digest.to_hex (Digest.string (dump ~params:false nl))

(* ---- per-net cone fingerprints ------------------------------------------- *)

(* FNV-1a over 64 bits: cheap, order-sensitive, good enough dispersion
   for "did this cone change" reporting (collisions only ever cost a
   missed reuse opportunity in diagnostics, never a wrong verdict — the
   dirty-cone computation itself is structural, not hash-based). *)

let fnv_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let mix_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let mix_int h i =
  let rec go h k v = if k = 0 then h else go (mix_byte h (v land 0xff)) (k - 1) (v asr 8) in
  go h 8 i

let mix_i64 h (x : int64) =
  let rec go h k v =
    if k = 0 then h
    else go (mix_byte h (Int64.to_int (Int64.logand v 0xffL))) (k - 1) (Int64.shift_right_logical v 8)
  in
  go h 8 x

let mix_str h s =
  let h = mix_int h (String.length s) in
  let r = ref h in
  String.iter (fun c -> r := mix_byte !r (Char.code c)) s;
  !r

let local_net_hash (n : Netlist.net) =
  let h = mix_str fnv_basis n.n_name in
  let h = mix_int h n.n_width in
  let h =
    match n.n_assertion with
    | None -> mix_int h 0
    | Some a -> mix_str (mix_int h 1) (Assertion.to_string a)
  in
  match n.n_wire_delay with
  | None -> mix_int h 0
  | Some d -> (
    let h = mix_int (mix_int (mix_int h 1) d.dmin) d.dmax in
    match d.rise_fall with
    | None -> mix_int h 0
    | Some ((rmin, rmax), (fmin, fmax)) ->
      mix_int (mix_int (mix_int (mix_int (mix_int h 1) rmin) rmax) fmin) fmax)

let local_inst_hash (i : Netlist.inst) =
  let b = Buffer.create 64 in
  add_str b i.i_name;
  add_prim ~params:true b i.i_prim;
  Array.iter
    (fun (c : Netlist.conn) ->
      add_bool b c.c_invert;
      add_directive b c.c_directive)
    i.i_inputs;
  mix_str fnv_basis (Buffer.contents b)

let cones ?sched ?prev ?dirty nl =
  let s = match sched with Some s -> s | None -> Sched.compute nl in
  let n_nets = Netlist.n_nets nl and n_insts = Netlist.n_insts nl in
  let fp =
    match prev with
    | Some p when Array.length p = max 1 n_nets -> Array.copy p
    | _ -> Array.make (max 1 n_nets) 0L
  in
  let dirty = match dirty with Some f -> f | None -> fun _ -> true in
  (* source fingerprints: undriven nets depend only on themselves *)
  Netlist.iter_nets nl (fun n ->
      if n.n_driver = None && dirty n.n_id then fp.(n.n_id) <- local_net_hash n);
  (* group instances by component of the condensation *)
  let n_sccs = Sched.n_sccs s in
  let members = Array.make (max 1 n_sccs) [] in
  for id = n_insts - 1 downto 0 do
    let c = Sched.scc s id in
    members.(c) <- id :: members.(c)
  done;
  let finish_inst seed_for_intra inst_id =
    let i = Netlist.inst nl inst_id in
    let h = ref (local_inst_hash i) in
    Array.iter
      (fun (c : Netlist.conn) ->
        let h' =
          match seed_for_intra c.c_net with
          | Some seed -> mix_i64 seed (local_net_hash (Netlist.net nl c.c_net))
          | None -> fp.(c.c_net)
        in
        h := mix_i64 !h h')
      i.i_inputs;
    match i.i_output with
    | None -> ()
    | Some o -> fp.(o) <- mix_i64 !h (local_net_hash (Netlist.net nl o))
  in
  (* SCC ids are assigned in reverse topological order, so descending
     ids visit producers before consumers.  With [dirty] given (a
     forward-closed net set over [prev]'s netlist state), components
     whose outputs are all clean keep their [prev] hashes untouched —
     nothing in their driving cone can have changed. *)
  let any_output_dirty insts =
    List.exists
      (fun id ->
        match (Netlist.inst nl id).i_output with
        | Some o -> dirty o
        | None -> false)
      insts
  in
  for c = n_sccs - 1 downto 0 do
    match members.(c) with
    | [] -> ()
    | _ when not (any_output_dirty members.(c)) -> ()
    | [ inst_id ] when Sched.cyclic_slot s inst_id < 0 ->
      finish_inst (fun _ -> None) inst_id
    | insts ->
      (* Feedback component: break the recursion with a two-pass scheme.
         First a component seed from the sorted member-local hashes, then
         every member's cone hash treats intra-component inputs as
         "the component" rather than recursing. *)
      let intra = Hashtbl.create 8 in
      List.iter
        (fun id ->
          match (Netlist.inst nl id).i_output with
          | Some o -> Hashtbl.replace intra o ()
          | None -> ())
        insts;
      let seed =
        List.fold_left
          (fun acc id -> mix_i64 acc (local_inst_hash (Netlist.inst nl id)))
          fnv_basis insts
      in
      List.iter
        (fun id ->
          finish_inst
            (fun net -> if Hashtbl.mem intra net then Some seed else None)
            id)
        insts
  done;
  fp

let diff_count a b =
  let n = min (Array.length a) (Array.length b) in
  let d = ref (abs (Array.length a - Array.length b)) in
  for i = 0 to n - 1 do
    if not (Int64.equal a.(i) b.(i)) then incr d
  done;
  !d
