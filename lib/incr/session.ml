open Scald_core

type stats = {
  st_requests : int;
  st_reused_nets : int;
  st_dirtied_nets : int;
  st_warm_hits : int;
  st_fp_changed : int;
  st_events : int;
  st_evaluations : int;
}

type t = {
  s_nl : Netlist.t;
  s_id : string;
  (* content digest of the netlist as currently edited; [None] after a
     re-verify, recomputed on demand — off the re-verify hot path *)
  mutable s_digest : string option;
  s_skeleton : string;
  s_sched : Sched.t;
  s_mode : Eval.mode;
  (* mutable: kept current across edits with [Window.update]; rebuilt
     wholesale on a [Cases] or [Corners] edit, which change the
     volatile-net set resp. the lane count baked into the table *)
  mutable s_window : Window.t;
  (* mutable: a [Corners] edit changes the lane count, which is fixed at
     [Eval.create] time, so [reverify] swaps in a fresh evaluator *)
  mutable s_ev : Eval.t;
  (* observation hook shared by every request of the session: spans
     emitted here inherit whatever lane the serve loop set, so traces
     attribute each phase to its request *)
  s_probe : Verifier.probe option;
  mutable s_fp : int64 array;
  mutable s_cases : Case_analysis.case list;
  mutable s_case_nets : int list;
  mutable s_pending : Edit.t list;  (* reversed: newest first *)
  mutable s_report : Verifier.report;
  mutable s_cum : Eval.counters;
  mutable s_requests : int;
  mutable s_last : stats;
  (* Cross-run violation caches: without them a re-verify would still
     pay a full check pass over every instance, capping the win well
     below the evaluation savings.  Entries are keyed on the generation
     stamps of the instance's input nets (resp. the net's own stamp) at
     the time the verdict was computed — any evaluation or edit that
     could change the verdict bumps a stamp and misses the cache.
     Instance-parameter edits don't move any stamp, so those entries are
     invalidated explicitly in [reverify]. *)
  v_inst : (Check.t list * int array) option array;
  v_net : (Check.t list * int) option array;
}

let resolved_case_nets nl cases =
  List.sort_uniq compare
    (List.concat_map (fun c -> List.map fst (Case_analysis.resolve nl c)) cases)

let input_gens nl (i : Netlist.inst) =
  Array.map (fun (c : Netlist.conn) -> (Netlist.net nl c.c_net).n_gen) i.i_inputs

(* allocation-free equality against the live stamps, for the hit path *)
let gens_current nl (i : Netlist.inst) g =
  let n = Array.length i.i_inputs in
  Array.length g = n
  &&
  let rec go k =
    k = n
    || (Netlist.net nl i.i_inputs.(k).c_net).n_gen = g.(k) && go (k + 1)
  in
  go 0

(* One checking pass with the exact shape of [Eval.check] — per-instance
   lists in id order, then per-net lists in id order, divergence report
   in front — so the concatenation is bit-identical to a cold run's. *)
let cached_check t =
  let nl = t.s_nl and ev = t.s_ev in
  let hits = ref 0 in
  let acc = ref [] in
  for id = 0 to Netlist.n_insts nl - 1 do
    let i = Netlist.inst nl id in
    let vs =
      match t.v_inst.(id) with
      | Some (vs, g) when gens_current nl i g ->
        incr hits;
        vs
      | _ ->
        let vs = Eval.check_one ev id in
        t.v_inst.(id) <- Some (vs, input_gens nl i);
        vs
    in
    acc := vs :: !acc
  done;
  for id = 0 to Netlist.n_nets nl - 1 do
    let n = Netlist.net nl id in
    let vs =
      match t.v_net.(id) with
      | Some (vs, g) when g = n.n_gen ->
        incr hits;
        vs
      | _ ->
        let vs = Eval.check_net ev id in
        t.v_net.(id) <- Some (vs, n.n_gen);
        vs
    in
    acc := vs :: !acc
  done;
  let base = List.concat (List.rev !acc) in
  (Eval.divergence ev @ base, !hits)

let load ?(mode = Eval.Level) ?(cases = []) ?probe nl =
  let sched = Sched.compute nl in
  let case_nets = resolved_case_nets nl cases in
  let flow = Flow.analyse ~sched ~case_nets nl in
  let window = Window.analyse ~sched ~case_nets nl in
  let report =
    Verifier.verify ~cases ~jobs:1 ?probe ~sched:mode ~analysis:(sched, flow)
      ~window nl
  in
  let ev = report.Verifier.r_eval in
  let t =
    {
      s_nl = nl;
      s_id = Fingerprint.digest nl;
      s_digest = None;
      s_skeleton = Fingerprint.skeleton nl;
      s_sched = sched;
      s_mode = mode;
      s_window = window;
      s_ev = ev;
      s_probe = probe;
      s_fp = Fingerprint.cones ~sched nl;
      s_cases = cases;
      s_case_nets = case_nets;
      s_pending = [];
      s_report = report;
      s_cum = Eval.zero_counters;
      s_requests = 1;
      s_last =
        {
          st_requests = 1;
          st_reused_nets = 0;
          st_dirtied_nets = Netlist.n_nets nl;
          st_warm_hits = 0;
          st_fp_changed = Netlist.n_nets nl;
          st_events = report.Verifier.r_events;
          st_evaluations = report.Verifier.r_evaluations;
        };
      v_inst = Array.make (max 1 (Netlist.n_insts nl)) None;
      v_net = Array.make (max 1 (Netlist.n_nets nl)) None;
    }
  in
  t.s_digest <- Some t.s_id;
  (* Prime the violation caches against the final cold-run state so the
     first re-verify reuses every verdict outside its dirty cone.  This
     replays one check pass; its waveform-cache traffic lands in the
     cumulative counters sampled next. *)
  ignore (cached_check t);
  Eval.count_request ev;
  t.s_cum <- Eval.counters ev;
  t

let id t = t.s_id

let digest t =
  match t.s_digest with
  | Some d -> d
  | None ->
    let d = Fingerprint.digest t.s_nl in
    t.s_digest <- Some d;
    d
let skeleton t = t.s_skeleton
let netlist t = t.s_nl
let mode t = t.s_mode
let report t = t.s_report
let cases t = t.s_cases
let stats t = t.s_last
let cumulative t = t.s_cum
let fingerprints t = t.s_fp
let stage t e = t.s_pending <- e :: t.s_pending
let pending t = List.length t.s_pending

let listing_string (r : Verifier.report) =
  Format.asprintf "@.%a@." Report.pp_violations r.Verifier.r_violations

let listing t = listing_string t.s_report

(* Forward closure over the instance graph: an instance is dirty when a
   seed net reaches one of its inputs (transitively).  This is the
   output cone of the edit over the same structure [Sched] condensed —
   feedback components are handled naturally, since their members reach
   each other through their output nets. *)
let dirty_cone nl ~seed_nets ~seed_insts =
  let n_insts = Netlist.n_insts nl and n_nets = Netlist.n_nets nl in
  let inst_dirty = Array.make (max 1 n_insts) false in
  let net_dirty = Array.make (max 1 n_nets) false in
  let q = Queue.create () in
  let add id =
    if not inst_dirty.(id) then begin
      inst_dirty.(id) <- true;
      Queue.add id q
    end
  in
  List.iter
    (fun nid ->
      net_dirty.(nid) <- true;
      Netlist.iter_fanout (Netlist.net nl nid) add)
    seed_nets;
  List.iter add seed_insts;
  while not (Queue.is_empty q) do
    let id = Queue.take q in
    match (Netlist.inst nl id).i_output with
    | None -> ()
    | Some o ->
      if not net_dirty.(o) then begin
        net_dirty.(o) <- true;
        Netlist.iter_fanout (Netlist.net nl o) add
      end
  done;
  (inst_dirty, net_dirty)

let reverify ?(carry_counters = true) t =
  let nl = t.s_nl in
  (* [span] stays let-bound polymorphic, like the wrapper in
     [Verifier.verify]: it wraps unit-, pair- and list-returning
     phases below. *)
  let span : 'a. string -> (unit -> 'a) -> 'a =
   fun name f ->
    match t.s_probe with None -> f () | Some p -> p.Verifier.pr_span name f
  in
  t.s_requests <- t.s_requests + 1;
  let edits = List.rev t.s_pending in
  t.s_pending <- [];
  (* 1. apply the staged edits, collecting cone seeds *)
  let touched_nets = ref [] and reinit_nets = ref [] and touched_insts = ref [] in
  let new_cases = ref None in
  span "apply" (fun () ->
      List.iter
        (fun e ->
          let a = Edit.apply nl e in
          touched_nets := a.Edit.a_touched_nets @ !touched_nets;
          reinit_nets := a.Edit.a_reinit_nets @ !reinit_nets;
          touched_insts := a.Edit.a_touched_insts @ !touched_insts;
          match a.Edit.a_cases with Some cs -> new_cases := Some cs | None -> ())
        edits);
  let old_case_nets = t.s_case_nets in
  (match !new_cases with
  | Some cs ->
    t.s_cases <- cs;
    t.s_case_nets <- resolved_case_nets nl cs
  | None -> ());
  (* A corners edit changed the lane count, which is fixed at
     [Eval.create] time: swap in a fresh evaluator (cold — its first run
     below re-initializes every net, bumping every generation stamp) and
     drop the cached verdicts wholesale.  The cumulative counters keep
     accumulating across the swap. *)
  let window_rebuilt = ref false in
  let reanalyse_window () =
    t.s_window <- Window.analyse ~sched:t.s_sched ~case_nets:t.s_case_nets nl;
    window_rebuilt := true
  in
  if not (Corner.table_equal (Eval.corners t.s_ev) (Netlist.corners nl)) then begin
    (* the lane count is baked into the window table too *)
    reanalyse_window ();
    let fresh =
      Eval.create ~mode:t.s_mode ~sched:t.s_sched ~window:t.s_window nl
    in
    Eval.set_event_hook fresh (Eval.event_hook t.s_ev);
    t.s_ev <- fresh;
    Array.fill t.v_inst 0 (Array.length t.v_inst) None;
    Array.fill t.v_net 0 (Array.length t.v_net) None
  end
  else if !new_cases <> None then begin
    (* the volatile-net set is baked into the window table *)
    reanalyse_window ();
    Eval.set_window t.s_ev (Some t.s_window)
  end;
  let ev = t.s_ev in
  Eval.reset_counters ev;
  Eval.count_request ev;
  let touched_nets = List.sort_uniq compare !touched_nets in
  let reinit_nets = List.sort_uniq compare !reinit_nets in
  let touched_insts = List.sort_uniq compare !touched_insts in
  (* The case sweep below replays every case group, so the cones of all
     case-mapped nets — old and new — must stay live alongside the
     cones of the edits. *)
  let seed_nets =
    List.sort_uniq compare
      (touched_nets @ reinit_nets @ old_case_nets @ t.s_case_nets)
  in
  (* A re-asserted or case-mapped net that is driven is recomputed by
     re-running its driver ([Eval.reassert_net], the §2.7 path in
     [Eval.run]) — the driver must therefore be live even though it sits
     upstream of the seed, not in its fanout. *)
  let seed_insts =
    List.sort_uniq compare
      (touched_insts
      @ List.filter_map
          (fun nid -> (Netlist.net nl nid).n_driver)
          (reinit_nets @ old_case_nets @ t.s_case_nets))
  in
  (* Absorb parameter edits into the window table (a [Cases]/[Corners]
     edit already rebuilt it above).  An edited instance contributes its
     own nets: the output so a delay edit re-dilates the cone, the
     inputs so [Window.update] re-proves the instance itself (a checker
     whose margins changed has no output net to dirty). *)
  if not !window_rebuilt then begin
    let inst_nets =
      List.concat_map
        (fun id ->
          let i = Netlist.inst nl id in
          let ins =
            Array.to_list
              (Array.map (fun (c : Netlist.conn) -> c.Netlist.c_net) i.i_inputs)
          in
          match i.i_output with Some o -> o :: ins | None -> ins)
        touched_insts
    in
    match touched_nets @ reinit_nets @ inst_nets with
    | [] -> ()
    | ds -> ignore (Window.update t.s_window ~dirty_nets:(List.sort_uniq compare ds))
  end;
  (* 2. thaw exactly the dirty cone, freeze everything else; then
     re-apply the window freeze from the just-updated proofs — checkers
     still proven stay statically served even inside the thawed cone,
     checkers no longer proven thaw and re-check *)
  let net_dirty =
    span "cone" (fun () ->
        let inst_dirty, net_dirty = dirty_cone nl ~seed_nets ~seed_insts in
        Eval.refreeze ev ~active:(fun id -> inst_dirty.(id));
        Eval.rewindow ev;
        net_dirty)
  in
  (* 3. inject the edits into the evaluator: bump stamps, wake cones *)
  List.iter (Eval.touch_net ev) touched_nets;
  List.iter (Eval.reassert_net ev) reinit_nets;
  List.iter (Eval.enqueue_inst ev) touched_insts;
  (* an instance-parameter edit moves no stamp; drop its cached verdict *)
  List.iter (fun id -> t.v_inst.(id) <- None) touched_insts;
  (* 4. replay the case sweep, checking each case through the caches *)
  let warm = ref 0 in
  let case_list = match t.s_cases with [] -> [ [] ] | cs -> cs in
  let run_case i case =
    let before_events = Eval.events ev and before_evals = Eval.evaluations ev in
    span
      (Printf.sprintf "evaluate:case%d" (i + 1))
      (fun () -> Eval.run ~case:(Case_analysis.resolve nl case) ev);
    let violations, hits =
      span (Printf.sprintf "check:case%d" (i + 1)) (fun () -> cached_check t)
    in
    warm := !warm + hits;
    (* the extra corners are checked uncached: the verdict caches key on
       lane-0 stamps only, and lane stamps share them *)
    let corner_violations =
      if Eval.n_corners ev = 1 then []
      else List.init (Eval.n_corners ev - 1) (fun l -> Eval.check_lane ev (l + 1))
    in
    ( {
        Verifier.cr_case = case;
        cr_violations = violations;
        cr_events = Eval.events ev - before_events;
        cr_evaluations = Eval.evaluations ev - before_evals;
        cr_converged = Eval.converged ev;
      },
      corner_violations )
  in
  let paired = List.mapi run_case case_list in
  let results = List.map fst paired in
  (* 5. merge counters and rebuild the report in Verifier.verify's shape *)
  let c = Eval.counters ev in
  t.s_cum <- Eval.merge_counters t.s_cum c;
  let all = List.concat_map (fun r -> r.Verifier.cr_violations) results in
  let r_violations = Verifier.dedup_violations all in
  let corner_tbl = Eval.corners ev in
  let r_corners =
    List.init (Array.length corner_tbl) (fun cidx ->
        let viols =
          if cidx = 0 then r_violations
          else
            Verifier.dedup_violations
              (List.concat_map (fun (_, lanes) -> List.nth lanes (cidx - 1)) paired)
        in
        { Verifier.co_corner = corner_tbl.(cidx); co_violations = viols })
  in
  let report =
    {
      Verifier.r_cases = results;
      r_events = c.Eval.c_events;
      r_evaluations = c.Eval.c_evaluations;
      r_violations;
      r_corners;
      r_converged = List.for_all (fun r -> r.Verifier.cr_converged) results;
      r_unasserted =
        List.map (fun (n : Netlist.net) -> n.n_name) (Netlist.undriven_unasserted nl);
      r_lint = None;
      r_obs = Verifier.obs_of_counters (if carry_counters then t.s_cum else c);
      r_eval = ev;
      r_jobs = 1;
    }
  in
  t.s_report <- report;
  (* 6. invalidate the content address (recomputed on demand, off this
     hot path) and refresh the cone fingerprints incrementally: the
     dirty cone is forward-closed around everything that changed, which
     is exactly what the incremental mode needs *)
  t.s_digest <- None;
  let fp =
    span "fingerprint" (fun () ->
        Fingerprint.cones ~sched:t.s_sched ~prev:t.s_fp
          ~dirty:(fun nid -> net_dirty.(nid))
          nl)
  in
  let fp_changed = Fingerprint.diff_count t.s_fp fp in
  t.s_fp <- fp;
  let dirtied = Array.fold_left (fun a d -> if d then a + 1 else a) 0 net_dirty in
  let st =
    {
      st_requests = t.s_requests;
      st_reused_nets = Netlist.n_nets nl - dirtied;
      st_dirtied_nets = dirtied;
      st_warm_hits = !warm;
      st_fp_changed = fp_changed;
      st_events = c.Eval.c_events;
      st_evaluations = c.Eval.c_evaluations;
    }
  in
  t.s_last <- st;
  (report, st)
