open Scald_core

type outcome =
  | Cold of Session.t
  | Warm of Session.t
  | Adopted of Session.t * int

type t = {
  mutable sessions : Session.t list;  (* newest first *)
  mutable loads : int;
  mutable warm_loads : int;
  mutable adopted_loads : int;
}

let create () = { sessions = []; loads = 0; warm_loads = 0; adopted_loads = 0 }

let sessions t = t.sessions
let n_sessions t = List.length t.sessions
let loads t = t.loads
let warm_loads t = t.warm_loads
let adopted_loads t = t.adopted_loads

let find t handle =
  List.find_opt
    (fun s -> String.equal (Session.id s) handle || String.equal (Session.digest s) handle)
    t.sessions

let latest t = match t.sessions with [] -> None | s :: _ -> Some s

(* Move a session to the front: [latest] is "most recently used", which
   is what a client that omits the session handle means. *)
let promote t s =
  t.sessions <- s :: List.filter (fun s' -> s' != s) t.sessions

let same_cases a b = a = b

let load t ?(mode = Eval.Level) ?(cases = []) ?probe nl =
  t.loads <- t.loads + 1;
  let digest = Fingerprint.digest nl in
  let by_digest =
    List.find_opt
      (fun s -> String.equal (Session.digest s) digest && Session.mode s = mode)
      t.sessions
  in
  match by_digest with
  | Some s when same_cases (Session.cases s) cases && Session.pending s = 0 ->
    t.warm_loads <- t.warm_loads + 1;
    promote t s;
    Warm s
  | Some s when Session.pending s = 0 ->
    (* same parameters, different case group: adopt by swapping cases *)
    t.adopted_loads <- t.adopted_loads + 1;
    Session.stage s (Edit.Cases cases);
    promote t s;
    Adopted (s, 1)
  | _ -> (
    let skeleton = Fingerprint.skeleton nl in
    let by_skeleton =
      List.find_opt
        (fun s ->
          String.equal (Session.skeleton s) skeleton
          && Session.mode s = mode
          && Session.pending s = 0)
        t.sessions
    in
    match by_skeleton with
    | Some s ->
      (* Same structure, different parameters: adopt the live session by
         replaying the parameter diff.  The submitted netlist is only
         read for the diff and then dropped — the session keeps (and
         edits) its own. *)
      let edits = Edit.diff (Session.netlist s) nl in
      List.iter (Session.stage s) edits;
      let n =
        if same_cases (Session.cases s) cases then List.length edits
        else begin
          Session.stage s (Edit.Cases cases);
          List.length edits + 1
        end
      in
      t.adopted_loads <- t.adopted_loads + 1;
      promote t s;
      Adopted (s, n)
    | None ->
      let s = Session.load ~mode ~cases ?probe nl in
      t.sessions <- s :: t.sessions;
      Cold s)
