(** A persistent verification session: the delta engine of the
    incremental service (doc/SERVICE.md).

    A session owns a netlist and the evaluator that verified it, and
    keeps both alive between requests.  Edits ({!Edit.t}) are staged
    with {!stage} and replayed by {!reverify}, which:

    + applies the staged edits to the netlist;
    + computes the {e dirty cone} — the forward closure, over the
      instance graph, of every edited net plus the nets mapped by any
      (old or new) case group;
    + re-freezes the evaluator so only the dirty cone is live (the
      PR-5 freeze path, {!Scald_core.Eval.refreeze}), and bumps
      generation stamps only inside it, so every generation-keyed cache
      outside the cone keeps its value;
    + replays the case sweep and re-checks through per-instance /
      per-net violation caches keyed on those same stamps;
    + merges cached and fresh violations into a report with the exact
      shape, content and order of a cold {!Scald_core.Verifier.verify}
      of the edited design.

    The bit-identity guarantee covers verdicts — the violation list and
    its order, per-case convergence, the unasserted cross-reference, the
    rendered listing — not the work counters ([r_events],
    [r_evaluations], [r_obs]), whose whole point is to be smaller.  It
    assumes convergent evaluation: a design that hits the evaluation
    bound has order-dependent waveforms by nature, and the
    [No_convergence] verdict is reproduced but the accompanying
    waveforms may differ. *)

open Scald_core

type t

type stats = {
  st_requests : int;  (** verify requests served so far, this one included *)
  st_reused_nets : int;  (** nets outside the dirty cone (waveform reused) *)
  st_dirtied_nets : int;  (** nets inside the dirty cone *)
  st_warm_hits : int;  (** violation-cache verdicts reused by the check pass *)
  st_fp_changed : int;
      (** nets whose {!Fingerprint.cones} fingerprint changed — the
          content-addressed view of the same cone, as a cross-check *)
  st_events : int;  (** events processed by this request *)
  st_evaluations : int;  (** evaluations performed by this request *)
}

val load :
  ?mode:Eval.mode ->
  ?cases:Case_analysis.case list ->
  ?probe:Verifier.probe ->
  Netlist.t ->
  t
(** Cold-start a session: verify the netlist sequentially (computing the
    schedule and flow analysis once, to be shared by every later
    request) and prime the violation caches from the final state.

    [probe] is kept for the session's lifetime: the cold verify runs
    under it, and every later {!reverify} wraps its phases ([apply],
    [cone], [evaluate:caseN], [check:caseN], [fingerprint]) in
    [pr_span] — so a serve daemon that sets a trace lane per request
    (see {!Scald_obs.Span.set_lane}) gets correctly attributed
    per-request spans instead of one interleaved stream. *)

val reverify : ?carry_counters:bool -> t -> Verifier.report * stats
(** Apply the staged edits and re-verify the dirty cone.  With no edits
    staged, re-verifies the case-mapped cones only (cheap, and a useful
    self-check).

    [carry_counters] (default [true]) selects what the report's [r_obs]
    block carries: the session's {e cumulative} counters — so a
    multi-run session reports totals, the metrics a service wants — or,
    when [false], this request's counters alone.  {!stats} always holds
    the per-request numbers; {!cumulative} always holds the totals. *)

val stage : t -> Edit.t -> unit
(** Stage an edit for the next {!reverify}.  Edits apply in stage
    order. *)

val pending : t -> int
(** Number of staged, not yet applied edits. *)

val id : t -> string
(** The session's handle: the content digest of the design it was
    loaded with.  Stable for the session's lifetime. *)

val digest : t -> string
(** Content digest of the design {e as currently edited}.  Computed
    lazily — {!reverify} only invalidates it, and the first reader
    after a re-verify (a response, a {!Store} lookup) pays for the
    recompute, keeping the re-verify itself proportional to the dirty
    cone. *)

val skeleton : t -> string
(** Structure-only digest ({!Fingerprint.skeleton}); invariant under
    edits. *)

val netlist : t -> Netlist.t
val mode : t -> Eval.mode
val report : t -> Verifier.report
(** The most recent report (cold-run report right after {!load}). *)

val cases : t -> Case_analysis.case list
val stats : t -> stats
(** Stats of the most recent request. *)

val cumulative : t -> Eval.counters
(** Counters accumulated over every request of this session. *)

val fingerprints : t -> int64 array
(** Current per-net cone fingerprints. *)

val listing : t -> string
(** The violation listing exactly as [scald_tv -q] prints it for the
    current report (leading and trailing newline included), for
    byte-for-byte comparison against a cold run. *)
