(** Content addressing for the session store (doc/SERVICE.md).

    Three views of a netlist's identity, all computed from a canonical
    walk of its structure and parameters:

    - {!digest}: structure {e and} every parameter.  Equal digests mean
      a cold verify would produce the very same report, so a session
      holding this digest can be reused outright.
    - {!skeleton}: structure only — names, widths, connectivity,
      primitive shape.  Equal skeletons mean the two designs differ only
      in parameters, every one of which is expressible as an
      {!Edit.t} — an existing session can be {e adopted} by replaying
      the parameter diff ({!Edit.diff}) instead of reloading cold.
    - {!cones}: one 64-bit fingerprint per net over its input cone,
      computed over the {!Scald_core.Sched} condensation (feedback
      components are hashed with a two-pass component-seed scheme so the
      walk terminates).  A net whose cone fingerprint is unchanged
      between two parameterizations provably carries the same waveform;
      the service reports reuse in these terms ([reused_nets] /
      [dirtied_nets]).  Fingerprints are diagnostic — the dirty-cone
      computation that decides what to re-evaluate is structural, so a
      hash collision can never produce a wrong verdict. *)

open Scald_core

val digest : Netlist.t -> string
(** Hex digest of structure plus all parameters, including the delay
    corner table ({!Scald_core.Netlist.corners}): a corner change is a
    parameter change and must miss the session cache. *)

val skeleton : Netlist.t -> string
(** Hex digest of structure only. *)

val cones :
  ?sched:Sched.t -> ?prev:int64 array -> ?dirty:(int -> bool) -> Netlist.t -> int64 array
(** Per-net input-cone fingerprints, indexed by net id.  [sched] reuses
    a precomputed condensation.  [prev] and [dirty] together select the
    incremental mode: hashes are recomputed only for nets satisfying
    [dirty], everything else is copied from [prev].  Correct only when
    [dirty] is closed under forward reachability from every net or
    instance whose parameters changed since [prev] was computed — which
    is exactly the dirty cone [Session.reverify] already has in hand. *)

val diff_count : int64 array -> int64 array -> int
(** Number of positions where two fingerprint arrays disagree. *)
