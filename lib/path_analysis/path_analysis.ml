open Scald_core

type path = {
  p_from : string;
  p_to : string;
  p_min : Timebase.ps;
  p_max : Timebase.ps;
  p_through : string list;
}

type report = {
  r_paths : path list;
  r_sources : int;
  r_sinks : int;
  r_loops_cut : int;
}

(* An edge of the combinational delay graph: traversing instance [inst]
   from one of its inputs to its output. *)
type edge = {
  e_inst : Netlist.inst;
  e_to : int;  (* output net *)
  e_min : Timebase.ps;
  e_max : Timebase.ps;
}

let is_combinational (p : Primitive.t) =
  match p with
  | Primitive.Gate _ | Primitive.Buf _ | Primitive.Mux2 _ -> true
  | Primitive.Reg _ | Primitive.Latch _ | Primitive.Setup_hold_check _
  | Primitive.Setup_rise_hold_fall_check _ | Primitive.Min_pulse_width _
  | Primitive.Const _ ->
    false

let prim_delay (p : Primitive.t) ~input_index =
  match p with
  | Primitive.Gate { delay; _ } | Primitive.Buf { delay; _ } -> delay
  | Primitive.Mux2 { delay; select_extra } ->
    if input_index = 2 then Delay.add delay select_extra else delay
  | Primitive.Reg { delay; _ } | Primitive.Latch { delay; _ } -> delay
  | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _
  | Primitive.Min_pulse_width _ | Primitive.Const _ ->
    Delay.zero

let wire_delay nl (n : Netlist.net) =
  match n.Netlist.n_wire_delay with
  | Some d -> d
  | None -> Netlist.default_wire_delay nl

(* Outgoing combinational edges from a net. *)
let edges_from nl net_id =
  let n = Netlist.net nl net_id in
  let wire = wire_delay nl n in
  List.filter_map
    (fun inst_id ->
      let inst = Netlist.inst nl inst_id in
      if not (is_combinational inst.Netlist.i_prim) then None
      else
        match inst.Netlist.i_output with
        | None -> None
        | Some out ->
          let input_index =
            let found = ref 0 in
            Array.iteri
              (fun i (c : Netlist.conn) -> if c.Netlist.c_net = net_id then found := i)
              inst.Netlist.i_inputs;
            !found
          in
          let d = Delay.add wire (prim_delay inst.Netlist.i_prim ~input_index) in
          Some
            { e_inst = inst; e_to = out; e_min = d.Delay.dmin; e_max = d.Delay.dmax })
    (Netlist.fanout n)

let default_sources nl =
  let acc = ref [] in
  Netlist.iter_nets nl (fun n ->
      let is_seq_output =
        match n.Netlist.n_driver with
        | None -> true  (* primary input *)
        | Some d -> (
          match (Netlist.inst nl d).Netlist.i_prim with
          | Primitive.Reg _ | Primitive.Latch _ | Primitive.Const _ -> true
          | Primitive.Gate _ | Primitive.Buf _ | Primitive.Mux2 _
          | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _
          | Primitive.Min_pulse_width _ ->
            false)
      in
      if is_seq_output then acc := n.Netlist.n_id :: !acc);
  List.rev !acc

let default_sinks nl =
  let acc = ref [] in
  Netlist.iter_nets nl (fun n ->
      let feeds_seq =
        List.exists
          (fun inst_id ->
            let inst = Netlist.inst nl inst_id in
            match inst.Netlist.i_prim with
            | Primitive.Reg _ | Primitive.Latch _ | Primitive.Setup_hold_check _
            | Primitive.Setup_rise_hold_fall_check _ | Primitive.Min_pulse_width _ ->
              (* only the data input (index 0) terminates a data path *)
              Array.length inst.Netlist.i_inputs > 0
              && inst.Netlist.i_inputs.(0).Netlist.c_net = n.Netlist.n_id
            | Primitive.Gate _ | Primitive.Buf _ | Primitive.Mux2 _
            | Primitive.Const _ ->
              false)
          (Netlist.fanout n)
      in
      if feeds_seq then acc := n.Netlist.n_id :: !acc);
  List.rev !acc

type full_path = {
  f_from : string;
  f_to : string;
  f_delays : Delay.t list;
  f_through : string list;
}

(* Outgoing edges with the full Delay.t retained (wire and element
   combined), for the probabilistic analysis. *)
let full_edges_from nl net_id =
  let n = Netlist.net nl net_id in
  let wire = wire_delay nl n in
  List.filter_map
    (fun inst_id ->
      let inst = Netlist.inst nl inst_id in
      if not (is_combinational inst.Netlist.i_prim) then None
      else
        match inst.Netlist.i_output with
        | None -> None
        | Some out ->
          let input_index =
            let found = ref 0 in
            Array.iteri
              (fun i (c : Netlist.conn) -> if c.Netlist.c_net = net_id then found := i)
              inst.Netlist.i_inputs;
            !found
          in
          Some (inst, out, Delay.add wire (prim_delay inst.Netlist.i_prim ~input_index)))
    (Netlist.fanout n)

let enumerate ?sources ?sinks ?(limit = 10_000) nl =
  let sources = match sources with Some s -> s | None -> default_sources nl in
  let sinks = match sinks with Some s -> s | None -> default_sinks nl in
  let sink_set = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace sink_set s ()) sinks;
  let out = ref [] in
  let count = ref 0 in
  let rec dfs src on_stack net delays through =
    if !count < limit then begin
      if Hashtbl.mem sink_set net && net <> src then begin
        incr count;
        out :=
          {
            f_from = (Netlist.net nl src).Netlist.n_name;
            f_to = (Netlist.net nl net).Netlist.n_name;
            f_delays = List.rev delays;
            f_through = List.rev through;
          }
          :: !out
      end;
      List.iter
        (fun (inst, to_net, d) ->
          if not (List.mem to_net on_stack) then
            dfs src (to_net :: on_stack) to_net (d :: delays)
              (inst.Netlist.i_name :: through))
        (full_edges_from nl net)
    end
  in
  List.iter (fun src -> dfs src [ src ] src [] []) sources;
  List.rev !out

let search_limit = 200_000

let analyze ?sources ?sinks nl =
  let sources = match sources with Some s -> s | None -> default_sources nl in
  let sinks = match sinks with Some s -> s | None -> default_sinks nl in
  let sink_set = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace sink_set s ()) sinks;
  let loops_cut = ref 0 in
  let steps = ref 0 in
  (* per (source, sink): aggregated min/max and a witness for the max *)
  let results : (int * int, path) Hashtbl.t = Hashtbl.create 64 in
  let record ~src ~dst ~dmin ~dmax ~through =
    let key = (src, dst) in
    let from_name = (Netlist.net nl src).Netlist.n_name in
    let to_name = (Netlist.net nl dst).Netlist.n_name in
    match Hashtbl.find_opt results key with
    | None ->
      Hashtbl.replace results key
        { p_from = from_name; p_to = to_name; p_min = dmin; p_max = dmax;
          p_through = List.rev through }
    | Some p ->
      Hashtbl.replace results key
        {
          p with
          p_min = min p.p_min dmin;
          p_max = max p.p_max dmax;
          p_through = (if dmax > p.p_max then List.rev through else p.p_through);
        }
  in
  let rec dfs src on_stack net dmin dmax through =
    incr steps;
    if !steps > search_limit then incr loops_cut
    else begin
      if Hashtbl.mem sink_set net && net <> src then
        record ~src ~dst:net ~dmin ~dmax ~through;
      List.iter
        (fun e ->
          if List.mem e.e_to on_stack then incr loops_cut
          else
            dfs src (e.e_to :: on_stack) e.e_to (dmin + e.e_min) (dmax + e.e_max)
              (e.e_inst.Netlist.i_name :: through))
        (edges_from nl net)
    end
  in
  List.iter (fun src -> dfs src [ src ] src 0 0 []) sources;
  {
    r_paths = Hashtbl.fold (fun _ p acc -> p :: acc) results [];
    r_sources = List.length sources;
    r_sinks = List.length sinks;
    r_loops_cut = !loops_cut;
  }

let worst r =
  List.fold_left
    (fun acc p -> match acc with None -> Some p | Some q -> if p.p_max > q.p_max then Some p else acc)
    None r.r_paths

let violations r ~max_delay = List.filter (fun p -> p.p_max > max_delay) r.r_paths

let pp_path ppf p =
  Format.fprintf ppf "%s -> %s: %a/%a ns via %s" p.p_from p.p_to Timebase.pp_ns p.p_min
    Timebase.pp_ns p.p_max
    (String.concat ", " p.p_through)

let pp ppf r =
  Format.fprintf ppf "@[<v>WORST-CASE PATH ANALYSIS (%d sources, %d sinks%s)@,"
    r.r_sources r.r_sinks
    (if r.r_loops_cut > 0 then Printf.sprintf ", %d loops cut" r.r_loops_cut else "");
  List.iter (fun p -> Format.fprintf ppf "  %a@," pp_path p)
    (List.sort (fun a b -> compare (b.p_max, b.p_from) (a.p_max, a.p_from)) r.r_paths);
  Format.fprintf ppf "@]"

(* ---- §4.2.3: automatic correlation (CORR) advisor ----------------------- *)

module Corr = struct
  type advice = {
    a_register : string;
    a_data_net : string;
    a_source : string;
    a_min_path : Timebase.ps;
    a_clock_spread : Timebase.ps;
    a_hold : Timebase.ps;
    a_required_delay : Timebase.ps;
  }

  (* Walk a clock net back through its buffer/gate chain, accumulating
     delay spreads and the assertion skew at the source. *)
  let clock_spread nl net_id =
    let rec walk visited net_id =
      if List.mem net_id visited then 0
      else
        let n = Netlist.net nl net_id in
        let wire = Delay.spread (wire_delay nl n) in
        match n.Netlist.n_driver with
        | None -> (
          match n.Netlist.n_assertion with
          | Some a ->
            let wf =
              Assertion.to_waveform (Netlist.defaults nl) (Netlist.timebase nl) a
            in
            let early, late = Waveform.skew wf in
            wire + (late - early)
          | None -> wire)
        | Some inst_id -> (
          let inst = Netlist.inst nl inst_id in
          match inst.Netlist.i_prim with
          | Primitive.Buf { delay; _ } | Primitive.Gate { delay; _ } ->
            let upstream =
              Array.fold_left
                (fun acc (c : Netlist.conn) ->
                  max acc (walk (net_id :: visited) c.Netlist.c_net))
                0 inst.Netlist.i_inputs
            in
            wire + Delay.spread delay + upstream
          | Primitive.Mux2 { delay; _ } ->
            let upstream =
              Array.fold_left
                (fun acc (c : Netlist.conn) ->
                  max acc (walk (net_id :: visited) c.Netlist.c_net))
                0 inst.Netlist.i_inputs
            in
            wire + Delay.spread delay + upstream
          | Primitive.Reg _ | Primitive.Latch _ | Primitive.Const _
          | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _
          | Primitive.Min_pulse_width _ ->
            wire)
    in
    walk [] net_id

  (* The clock-assertion source net a clock pin traces back to, if any. *)
  let clock_source nl net_id =
    let rec walk visited net_id =
      if List.mem net_id visited then None
      else
        let n = Netlist.net nl net_id in
        match n.Netlist.n_driver with
        | None -> if n.Netlist.n_assertion <> None then Some net_id else None
        | Some inst_id -> (
          let inst = Netlist.inst nl inst_id in
          match inst.Netlist.i_prim with
          | Primitive.Buf _ | Primitive.Gate _ | Primitive.Mux2 _ ->
            Array.fold_left
              (fun acc (c : Netlist.conn) ->
                match acc with
                | Some _ -> acc
                | None -> walk (net_id :: visited) c.Netlist.c_net)
              None inst.Netlist.i_inputs
          | Primitive.Reg _ | Primitive.Latch _ | Primitive.Const _
          | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _
          | Primitive.Min_pulse_width _ ->
            None)
    in
    walk [] net_id

  (* The hold requirement attached to a data net by a checker. *)
  let hold_of nl data_net =
    let best = ref 0 in
    Netlist.iter_insts nl (fun inst ->
        match inst.Netlist.i_prim with
        | Primitive.Setup_hold_check { hold; _ }
        | Primitive.Setup_rise_hold_fall_check { hold; _ } ->
          if
            Array.length inst.Netlist.i_inputs > 0
            && inst.Netlist.i_inputs.(0).Netlist.c_net = data_net
          then best := max !best hold
        | Primitive.Gate _ | Primitive.Buf _ | Primitive.Mux2 _ | Primitive.Reg _
        | Primitive.Latch _ | Primitive.Min_pulse_width _ | Primitive.Const _ ->
          ());
    !best

  let advise nl =
    let acc = ref [] in
    Netlist.iter_insts nl (fun dst ->
        match dst.Netlist.i_prim with
        | Primitive.Reg _ | Primitive.Latch _ ->
          let data_net = dst.Netlist.i_inputs.(0).Netlist.c_net in
          let clock_net = dst.Netlist.i_inputs.(1).Netlist.c_net in
          let spread = clock_spread nl clock_net in
          let dst_src = clock_source nl clock_net in
          let hold = hold_of nl data_net in
          (* same-clock source registers feeding this data input *)
          Netlist.iter_insts nl (fun src ->
              match src.Netlist.i_prim, src.Netlist.i_output with
              | (Primitive.Reg _ | Primitive.Latch _), Some out ->
                let src_clock = src.Netlist.i_inputs.(1).Netlist.c_net in
                if dst_src <> None && clock_source nl src_clock = dst_src then begin
                  (* the race includes the source's own clock-to-output
                     minimum delay *)
                  let src_dmin =
                    match src.Netlist.i_prim with
                    | Primitive.Reg { delay; _ } | Primitive.Latch { delay; _ } ->
                      delay.Delay.dmin
                    | Primitive.Gate _ | Primitive.Buf _ | Primitive.Mux2 _
                    | Primitive.Setup_hold_check _
                    | Primitive.Setup_rise_hold_fall_check _
                    | Primitive.Min_pulse_width _ | Primitive.Const _ ->
                      0
                  in
                  let r = analyze ~sources:[ out ] ~sinks:[ data_net ] nl in
                  List.iter
                    (fun p ->
                      if p.p_to = (Netlist.net nl data_net).Netlist.n_name then begin
                        let required = spread + hold - (src_dmin + p.p_min) in
                        if required > 0 then
                          acc :=
                            {
                              a_register = dst.Netlist.i_name;
                              a_data_net = (Netlist.net nl data_net).Netlist.n_name;
                              a_source = src.Netlist.i_name;
                              a_min_path = src_dmin + p.p_min;
                              a_clock_spread = spread;
                              a_hold = hold;
                              a_required_delay = required;
                            }
                            :: !acc
                      end)
                    r.r_paths
                end
              | _, _ -> ())
        | Primitive.Gate _ | Primitive.Buf _ | Primitive.Mux2 _
        | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _
        | Primitive.Min_pulse_width _ | Primitive.Const _ ->
          ());
    List.rev !acc

  let pp_advice ppf a =
    Format.fprintf ppf
      "%s: feedback from %s reaches %s in %a ns minimum, but the clock is \
       uncertain over %a ns with a %a ns hold -- insert a CORR delay of at \
       least %a ns"
      a.a_register a.a_source a.a_data_net Timebase.pp_ns a.a_min_path Timebase.pp_ns
      a.a_clock_spread Timebase.pp_ns a.a_hold Timebase.pp_ns a.a_required_delay
end
