type t = { base : Delay.t; per_load : Delay.t }

let flat base = { base; per_load = Delay.zero }

let s1_default = flat (Delay.of_ns 0.0 2.0)

let loaded ~base ~per_load = { base; per_load }

let delay_for rule ~fanout =
  let extra = max 0 (fanout - 1) in
  let rec add n acc = if n = 0 then acc else add (n - 1) (Delay.add acc rule.per_load) in
  add extra rule.base

let apply nl rule =
  let count = ref 0 in
  Netlist.iter_nets nl (fun n ->
      match n.Netlist.n_wire_delay with
      | Some _ -> ()
      | None ->
        Netlist.set_wire_delay nl n.Netlist.n_id
          (delay_for rule ~fanout:(Netlist.fanout_count n));
        incr count);
  !count

let pp ppf rule =
  Format.fprintf ppf "%a + %a per extra load" Delay.pp rule.base Delay.pp rule.per_load
