type constraint_kind = Setup | Hold | Min_high | Min_low

type entry = {
  e_inst : string;
  e_signal : string;
  e_clock : string option;
  e_kind : constraint_kind;
  e_required : Timebase.ps;
  e_slack : Timebase.ps;
  e_at : Timebase.ps;
}

let kind_name = function
  | Setup -> "SETUP"
  | Hold -> "HOLD"
  | Min_high -> "MIN HIGH WIDTH"
  | Min_low -> "MIN LOW WIDTH"

let wrap p x =
  let r = x mod p in
  if r < 0 then r + p else r

(* Margin of stability before an instant: how long the signal has
   already been stable when [t] arrives.  Bottoms out at 0 when the
   signal is not stable at [t]. *)
let margin_before data t =
  match Waveform.stable_interval_around data t with
  | None -> 0
  | Some (s, width) ->
    if width >= Waveform.period data then Waveform.period data
    else wrap (Waveform.period data) (t - s)

let margin_after data t =
  match Waveform.stable_interval_around data t with
  | None -> 0
  | Some (s, width) ->
    if width >= Waveform.period data then Waveform.period data
    else wrap (Waveform.period data) (s + width - t)

(* The data must be stable through the whole edge window as well; when
   it is not, the constraint is missed outright. *)
let window_slack ~required ~margin ~window_ok =
  if window_ok then margin - required else -required

let setup_hold_entries ~inst ~signal ~clock ~setup ~hold ~data ~ck =
  let p = Waveform.period ck in
  Waveform.rising_windows ck
  |> List.concat_map (fun { Waveform.w_start = ws; w_stop = we } ->
         let window_ok = Waveform.stable_over data ~start:ws ~width:(we - ws) in
         let setup_entry =
           {
             e_inst = inst;
             e_signal = signal;
             e_clock = Some clock;
             e_kind = Setup;
             e_required = setup;
             e_slack = window_slack ~required:setup ~margin:(margin_before data ws) ~window_ok;
             e_at = wrap p ws;
           }
         in
         let hold_entry =
           {
             setup_entry with
             e_kind = Hold;
             e_required = hold;
             e_slack = window_slack ~required:hold ~margin:(margin_after data we) ~window_ok;
           }
         in
         [ setup_entry; hold_entry ])

let pulse_entries ~inst ~signal ~required ~kind ~value wf =
  if required <= 0 then []
  else
    let p = Waveform.period wf in
    Waveform.pulse_intervals value wf
    |> List.filter_map (fun (s, width) ->
           if width >= p then None
           else
             Some
               {
                 e_inst = inst;
                 e_signal = signal;
                 e_clock = None;
                 e_kind = kind;
                 e_required = required;
                 e_slack = width - required;
                 e_at = wrap p s;
               })

let entries_of_inst ev lane (inst : Netlist.inst) =
  let nl = Eval.netlist ev in
  let net_name i = (Netlist.net nl inst.Netlist.i_inputs.(i).Netlist.c_net).Netlist.n_name in
  match inst.Netlist.i_prim with
  | Primitive.Setup_hold_check { setup; hold }
  | Primitive.Setup_rise_hold_fall_check { setup; hold } ->
    let data = Eval.input_waveform_lane ev lane inst 0
    and ck = Eval.input_waveform_lane ev lane inst 1 in
    setup_hold_entries ~inst:inst.Netlist.i_name ~signal:(net_name 0) ~clock:(net_name 1)
      ~setup ~hold ~data ~ck
  | Primitive.Min_pulse_width { high; low } ->
    let wf = Eval.input_waveform_lane ev lane inst 0 in
    pulse_entries ~inst:inst.Netlist.i_name ~signal:(net_name 0) ~required:high
      ~kind:Min_high ~value:Tvalue.V1 wf
    @ pulse_entries ~inst:inst.Netlist.i_name ~signal:(net_name 0) ~required:low
        ~kind:Min_low ~value:Tvalue.V0 wf
  | Primitive.Gate _ | Primitive.Buf _ | Primitive.Mux2 _ | Primitive.Reg _
  | Primitive.Latch _ | Primitive.Const _ ->
    []

let compute ?(lane = 0) ev =
  let acc = ref [] in
  Netlist.iter_insts (Eval.netlist ev) (fun inst ->
      acc := entries_of_inst ev lane inst :: !acc);
  List.concat !acc |> List.sort (fun a b -> compare a.e_slack b.e_slack)

let worst ev = match compute ev with [] -> None | e :: _ -> Some e

let critical ev ~below_ns =
  let bound = Timebase.ps_of_ns below_ns in
  List.filter (fun e -> e.e_slack < bound) (compute ev)

let pp ppf entries =
  Format.fprintf ppf "@[<v>SLACK REPORT (most critical first)@,";
  (* Value cells are [%8s ns] = 11 characters, so headers are %11s/%10s:
     multi-digit (or negative multi-digit) slacks stay in column instead
     of shoving everything to their right out of alignment. *)
  Format.fprintf ppf "  %-32s %-24s %-16s %11s %11s %10s@," "CHECK" "SIGNAL" "CONSTRAINT"
    "REQUIRED" "SLACK" "AT";
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-32s %-24s %-16s %8s ns %8s ns %7s ns%s@,"
        e.e_inst e.e_signal (kind_name e.e_kind)
        (Format.asprintf "%a" Timebase.pp_ns e.e_required)
        (Format.asprintf "%a" Timebase.pp_ns e.e_slack)
        (Format.asprintf "%a" Timebase.pp_ns e.e_at)
        (if e.e_slack < 0 then "  ** VIOLATED **" else ""))
    entries;
  Format.fprintf ppf "@]"
