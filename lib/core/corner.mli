(** Named delay corners for multi-corner evaluation (doc/CORNERS.md).

    A corner scales every element delay and every interconnection delay
    of the design by a pair of factors — the classic slow/typ/fast
    process-voltage-temperature signoff points.  A verification run
    carries a {e table} of corners; corner 0 is the reference whose
    verdicts must equal a plain single-corner run (the evaluator treats
    a [1.0] factor as the physical identity, see {!Delay.scale}).

    The table travels on the netlist ({!Netlist.set_corners}), declared
    by an SDL [CORNERS] directive or a [--corners] CLI override, and the
    evaluator propagates all k corners in one traversal (doc/CORNERS.md
    explains the lane-sharing scheme). *)

type t = private {
  name : string;
  delay_scale : float;  (** factor applied to element delays *)
  wire_scale : float;  (** factor applied to interconnection delays *)
}

type table = t array
(** Corner 0 is the reference corner. *)

val typ : t
(** The identity corner: ["typ"], both factors [1.0]. *)

val default : table
(** [[| typ |]] — the single-corner table every netlist starts with. *)

val make : ?wire_scale:float -> name:string -> float -> t
(** [make ~name delay_scale] — [wire_scale] defaults to [delay_scale].
    @raise Invalid_argument on an empty or non-alphanumeric name or a
    non-positive factor. *)

val is_reference : t -> bool
(** Both factors are exactly [1.0]. *)

val equal : t -> t -> bool

val table_equal : table -> table -> bool

val validate_table : table -> unit
(** @raise Invalid_argument on an empty table or duplicate names. *)

val scale_delay : t -> Delay.t -> Delay.t
(** Element-delay scaling; physically the identity for a [1.0] factor. *)

val scale_wire : t -> Delay.t -> Delay.t
(** Interconnection-delay scaling. *)

val of_spec : string -> table
(** Parse a CLI / SDL corner list: comma-separated
    [name[=dscale[/wscale]]] entries, e.g. ["slow,typ,fast"] or
    ["typ,hot=1.4/1.2"].  Bare names must be one of the presets
    [slow=1.25], [typ=1.0], [fast=0.8].
    @raise Invalid_argument on a malformed list. *)

val to_string : t -> string
(** Canonical [name=dscale/wscale] form ([of_spec]-compatible); used by
    the fingerprint and edit codecs. *)

val table_to_string : table -> string

val pp : Format.formatter -> t -> unit

val pp_table : Format.formatter -> table -> unit
