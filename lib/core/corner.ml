type t = { name : string; delay_scale : float; wire_scale : float }

type table = t array

let typ = { name = "typ"; delay_scale = 1.0; wire_scale = 1.0 }

let default : table = [| typ |]

let make ?(wire_scale = nan) ~name delay_scale =
  if name = "" then invalid_arg "Corner.make: empty name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> ()
      | _ -> invalid_arg (Printf.sprintf "Corner.make: bad character in name %S" name))
    name;
  if not (delay_scale > 0.0) then
    invalid_arg (Printf.sprintf "Corner.make: corner %s needs a positive delay scale" name);
  let wire_scale = if Float.is_nan wire_scale then delay_scale else wire_scale in
  if not (wire_scale > 0.0) then
    invalid_arg (Printf.sprintf "Corner.make: corner %s needs a positive wire scale" name);
  { name; delay_scale; wire_scale }

let is_reference c = c.delay_scale = 1.0 && c.wire_scale = 1.0

let equal a b =
  a.name = b.name && a.delay_scale = b.delay_scale && a.wire_scale = b.wire_scale

let table_equal a b = Array.length a = Array.length b && Array.for_all2 equal a b

let validate_table (tbl : table) =
  if Array.length tbl = 0 then invalid_arg "Corner: a corner table cannot be empty";
  let seen = Hashtbl.create 7 in
  Array.iter
    (fun c ->
      if Hashtbl.mem seen c.name then
        invalid_arg (Printf.sprintf "Corner: duplicate corner name %s" c.name);
      Hashtbl.add seen c.name ())
    tbl

let scale_delay c d = Delay.scale c.delay_scale d

let scale_wire c d = Delay.scale c.wire_scale d

(* the presets a bare name on the CLI expands to *)
let presets = [ ("slow", 1.25); ("typ", 1.0); ("fast", 0.8) ]

let of_spec spec =
  let corner_of_part part =
    match String.index_opt part '=' with
    | None -> (
      let name = String.trim part in
      match List.assoc_opt (String.lowercase_ascii name) presets with
      | Some s -> make ~name s
      | None ->
        invalid_arg
          (Printf.sprintf
             "Corner.of_spec: unknown corner %S (known presets: slow, typ, fast; \
              or give scales as name=dscale[/wscale])"
             name))
    | Some i -> (
      let name = String.trim (String.sub part 0 i) in
      let scales = String.sub part (i + 1) (String.length part - i - 1) in
      let parse s =
        match float_of_string_opt (String.trim s) with
        | Some f -> f
        | None -> invalid_arg (Printf.sprintf "Corner.of_spec: bad scale %S in %S" s part)
      in
      match String.split_on_char '/' scales with
      | [ d ] -> make ~name (parse d)
      | [ d; w ] -> make ~name (parse d) ~wire_scale:(parse w)
      | _ -> invalid_arg (Printf.sprintf "Corner.of_spec: expected dscale[/wscale] in %S" part))
  in
  let parts =
    String.split_on_char ',' spec |> List.filter (fun p -> String.trim p <> "")
  in
  if parts = [] then invalid_arg "Corner.of_spec: empty corner list";
  let tbl = Array.of_list (List.map corner_of_part parts) in
  validate_table tbl;
  tbl

let to_string c =
  if is_reference c && c.name = "typ" then c.name
  else Printf.sprintf "%s=%g/%g" c.name c.delay_scale c.wire_scale

let table_to_string tbl = String.concat "," (Array.to_list (Array.map to_string tbl))

let pp ppf c =
  if c.wire_scale = c.delay_scale then
    Format.fprintf ppf "%s (x%g)" c.name c.delay_scale
  else Format.fprintf ppf "%s (x%g, wire x%g)" c.name c.delay_scale c.wire_scale

let pp_table ppf tbl =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp ppf
    (Array.to_list tbl)
