(* Dense primitive-kind tags for the per-kind evaluation counters: an
   array index is the only bookkeeping the hot path can afford. *)
let n_kinds = 12

let kind_tag = function
  | Primitive.Gate { fn = Primitive.And; _ } -> 0
  | Primitive.Gate { fn = Primitive.Or; _ } -> 1
  | Primitive.Gate { fn = Primitive.Xor; _ } -> 2
  | Primitive.Gate { fn = Primitive.Chg; _ } -> 3
  | Primitive.Buf _ -> 4
  | Primitive.Mux2 _ -> 5
  | Primitive.Reg _ -> 6
  | Primitive.Latch _ -> 7
  | Primitive.Setup_hold_check _ -> 8
  | Primitive.Setup_rise_hold_fall_check _ -> 9
  | Primitive.Min_pulse_width _ -> 10
  | Primitive.Const _ -> 11

let kind_name = function
  | 0 -> "AND"
  | 1 -> "OR"
  | 2 -> "XOR"
  | 3 -> "CHG"
  | 4 -> "BUF"
  | 5 -> "MUX2"
  | 6 -> "REG"
  | 7 -> "LATCH"
  | 8 -> "SETUP HOLD CHK"
  | 9 -> "SETUP RISE HOLD FALL CHK"
  | 10 -> "MIN PULSE WIDTH"
  | _ -> "CONST"

type mode = Fifo | Level

(* Per-corner evaluation state for corners 1..k-1 (doc/CORNERS.md).
   Corner 0 — the reference — lives in the netlist itself ([n_value] and
   the evaluator's main caches), so the single-corner path carries no
   lane state at all.  Each extra lane mirrors the lane-0 memo structure
   (per-conn input cache, per-net shared record, register materialize
   memo), keyed on the same [n_gen] stamps: any lane changing a net
   bumps the stamp, so every lane's caches miss together. *)
type lane = {
  l_dscale : float;  (* element-delay scale factor of this corner *)
  l_wscale : float;  (* interconnection-delay scale factor *)
  l_value : Waveform.t array;  (* per-net lane waveform; shares the
                                  lane-0 record whenever equal *)
  l_cache_gen : int array;
  l_cache_wf : Waveform.t array;
  l_net_gen : int array;
  l_net_wf : Waveform.t array;
  l_mat_gen : int array;
  l_mat_wf : Waveform.t array;
  (* Generation-keyed checker-verdict memo: a lane's verdicts for one
     instance are a pure function of its input waveforms, so they are
     re-derived only when some input net's stamp moved — the per-case
     check sweep of a multi-case run recomputes just the dirty cone.
     Lane 0 is deliberately not memoized: the single-corner check pass
     is the historical baseline and stays byte-identical. *)
  l_chk_gen : int array;  (* per-conn input-net stamp at memo time *)
  l_chk : Check.t list array;  (* per-inst memoized verdicts *)
  l_chk_net_gen : int array;
  l_chk_net : Check.t list array;  (* per-net assertion verdicts *)
}

type t = {
  nl : Netlist.t;
  mode : mode;
  mutable sched : Sched.t option;
      (* Level mode: computed at the first run unless passed to create *)
  queue : int Queue.t;  (* Fifo mode work list *)
  mutable buckets : int Queue.t array;
      (* Level mode work list: one FIFO bucket per topological level *)
  mutable cur_level : int;  (* bucket sweep cursor *)
  mutable queue_len : int;  (* items queued across all buckets *)
  mutable scc_evals : int array;  (* per cyclic component: evals this run *)
  mutable diverged_slot : int;  (* cyclic slot that blew its budget, -1 none *)
  in_queue : Bytes.t;  (* packed booleans, one byte per instance *)
  case : Tvalue.t option array;
  (* Generation-stamped input cache: [conn_base.(i) + k] is the flat
     index of input [k] of instance [i]; the cached waveform is valid
     while the driving net's [n_gen] still equals [cache_gen]. *)
  conn_base : int array;
  cache_gen : int array;
  cache_wf : Waveform.t array;
  (* Per-net memo backing the per-conn cache: for the common
     untransformed connection (no inversion, no explicit directive) the
     derived input waveform depends only on the driving net, so every
     such conn of one net shares a single record per generation instead
     of allocating its own. *)
  net_gen : int array;
  net_wf : Waveform.t array;
  (* Register data-materialization memo, same generation key. *)
  mat_gen : int array;
  mat_wf : Waveform.t array;
  (* Multi-corner lanes: corner 0 is evaluated through the fields above;
     [lanes] holds corners 1..k-1 and is empty for a single-corner
     netlist, so the historical path pays nothing. *)
  corners : Corner.table;
  c0_dscale : float;
  c0_wscale : float;
  lanes : lane array;
  mutable lanes_shared : int;
  mutable evals_saved : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  (* Stable-cone pruning (doc/FLOW.md): instances the static analysis
     proved inert are frozen after the first run and skipped at enqueue
     time.  [frozen] stays all-false without a [flow] table. *)
  flow : Flow.t option;
  (* Window pruning (doc/WINDOWS.md): checkers the arrival-window
     analysis proved at every corner are frozen from creation — their
     verdicts are served statically by the check functions below.
     [frozen] is three-valued: '\000' live, '\001' flow-frozen,
     '\002' window-frozen, so the two prunes count separately. *)
  mutable window : Window.t option;
  frozen : Bytes.t;  (* '\000' live / '\001' flow / '\002' window *)
  mutable froze : bool;
  mutable pruned_evals : int;
  mutable window_evals : int;
  mutable window_checks : int;
  mutable requests : int;
  mutable events : int;
  mutable evals : int;
  mutable queued : int;
  mutable coalesced : int;
  mutable queue_hwm : int;
  evals_by_kind : int array;
  mutable on_event : (inst_id:int -> net_id:int -> unit) option;
  mutable converged : bool;
  mutable initialized : bool;
}

let create ?(mode = Level) ?sched ?flow ?window nl =
  let n_insts = Netlist.n_insts nl in
  let conn_base = Array.make (max 1 n_insts) 0 in
  let n_conns = ref 0 in
  Netlist.iter_insts nl (fun i ->
      conn_base.(i.Netlist.i_id) <- !n_conns;
      n_conns := !n_conns + Array.length i.Netlist.i_inputs);
  let dummy_wf =
    Waveform.const ~period:(Timebase.period (Netlist.timebase nl)) Tvalue.Unknown
  in
  let sched = match mode with Level -> sched | Fifo -> None in
  let buckets =
    match sched with
    | None -> [||]
    | Some s -> Array.init (max 1 (Sched.n_levels s)) (fun _ -> Queue.create ())
  in
  let scc_evals =
    match sched with None -> [||] | Some s -> Array.make (Sched.n_cyclic s) 0
  in
  let corners = Netlist.corners nl in
  let n_nets = max 1 (Netlist.n_nets nl) in
  let lanes =
    Array.init
      (Array.length corners - 1)
      (fun i ->
        let c = corners.(i + 1) in
        {
          l_dscale = c.Corner.delay_scale;
          l_wscale = c.Corner.wire_scale;
          l_value = Array.make n_nets dummy_wf;
          l_cache_gen = Array.make (max 1 !n_conns) (-1);
          l_cache_wf = Array.make (max 1 !n_conns) dummy_wf;
          l_net_gen = Array.make n_nets (-1);
          l_net_wf = Array.make n_nets dummy_wf;
          l_mat_gen = Array.make (max 1 n_insts) (-1);
          l_mat_wf = Array.make (max 1 n_insts) dummy_wf;
          l_chk_gen = Array.make (max 1 !n_conns) (-1);
          l_chk = Array.make (max 1 n_insts) [];
          l_chk_net_gen = Array.make n_nets (-1);
          l_chk_net = Array.make n_nets [];
        })
  in
  {
    nl;
    mode;
    sched;
    queue = Queue.create ();
    buckets;
    cur_level = 0;
    queue_len = 0;
    scc_evals;
    diverged_slot = -1;
    in_queue = Bytes.make (max 1 n_insts) '\000';
    case = Array.make (max 1 (Netlist.n_nets nl)) None;
    conn_base;
    cache_gen = Array.make (max 1 !n_conns) (-1);
    cache_wf = Array.make (max 1 !n_conns) dummy_wf;
    net_gen = Array.make (max 1 (Netlist.n_nets nl)) (-1);
    net_wf = Array.make (max 1 (Netlist.n_nets nl)) dummy_wf;
    mat_gen = Array.make (max 1 n_insts) (-1);
    mat_wf = Array.make (max 1 n_insts) dummy_wf;
    corners;
    c0_dscale = corners.(0).Corner.delay_scale;
    c0_wscale = corners.(0).Corner.wire_scale;
    lanes;
    lanes_shared = 0;
    evals_saved = 0;
    cache_hits = 0;
    cache_misses = 0;
    flow;
    window;
    frozen =
      (let b = Bytes.make (max 1 n_insts) '\000' in
       (match window with
       | Some w ->
         (* Statically proven checkers never need evaluating: their
            verdict is served by [check_inst_lane], and evaluating a
            checker computes nothing (no output net).  Frozen before the
            first run — unlike flow pruning, which must see every
            instance evaluated once. *)
         for id = 0 to n_insts - 1 do
           if Window.inst_proven w id then Bytes.unsafe_set b id '\002'
         done
       | None -> ());
       b);
    froze = false;
    pruned_evals = 0;
    window_evals = 0;
    window_checks = 0;
    requests = 0;
    events = 0;
    evals = 0;
    queued = 0;
    coalesced = 0;
    queue_hwm = 0;
    evals_by_kind = Array.make n_kinds 0;
    on_event = None;
    converged = true;
    initialized = false;
  }

let netlist t = t.nl
let mode t = t.mode
let corners t = t.corners
let n_corners t = Array.length t.corners

let events t = t.events
let evaluations t = t.evals
let converged t = t.converged

let count_request t = t.requests <- t.requests + 1

let reset_counters t =
  t.requests <- 0;
  t.events <- 0;
  t.evals <- 0;
  t.queued <- 0;
  t.coalesced <- 0;
  t.queue_hwm <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.pruned_evals <- 0;
  t.window_evals <- 0;
  t.window_checks <- 0;
  t.lanes_shared <- 0;
  t.evals_saved <- 0;
  Array.fill t.evals_by_kind 0 n_kinds 0

type counters = {
  c_requests : int;
  c_events : int;
  c_evaluations : int;
  c_queued : int;
  c_coalesced : int;
  c_queue_hwm : int;
  c_sched_levels : int;
  c_sccs : int;
  c_max_scc_size : int;
  c_cache_hits : int;
  c_cache_misses : int;
  c_pruned_insts : int;
  c_pruned_evals : int;
  c_nets_const : int;
  c_nets_stable : int;
  c_nets_clock : int;
  c_nets_data : int;
  c_nets_unknown : int;
  c_corners : int;
  c_corner_lanes_shared : int;
  c_corner_evals_saved : int;
  c_window_insts : int;
  c_window_nets : int;
  c_window_unbounded : int;
  c_window_lanes_static : int;
  c_window_evals : int;
  c_window_checks : int;
  c_evals_by_kind : (string * int) list;
}

let counters t =
  let by_kind = ref [] in
  for tag = n_kinds - 1 downto 0 do
    if t.evals_by_kind.(tag) > 0 then
      by_kind := (kind_name tag, t.evals_by_kind.(tag)) :: !by_kind
  done;
  let sched_levels, sccs, max_scc =
    match t.sched with
    | Some s -> (Sched.n_levels s, Sched.n_sccs s, Sched.max_scc_size s)
    | None -> (0, 0, 0)
  in
  let pruned_insts, (nc, ns, nck, nd, nu) =
    match t.flow with
    | Some f -> ((if t.froze then Flow.n_prunable f else 0), Flow.class_counts f)
    | None -> (0, (0, 0, 0, 0, 0))
  in
  {
    c_requests = t.requests;
    c_events = t.events;
    c_evaluations = t.evals;
    c_queued = t.queued;
    c_coalesced = t.coalesced;
    c_queue_hwm = t.queue_hwm;
    c_sched_levels = sched_levels;
    c_sccs = sccs;
    c_max_scc_size = max_scc;
    c_cache_hits = t.cache_hits;
    c_cache_misses = t.cache_misses;
    c_pruned_insts = pruned_insts;
    c_pruned_evals = t.pruned_evals;
    c_nets_const = nc;
    c_nets_stable = ns;
    c_nets_clock = nck;
    c_nets_data = nd;
    c_nets_unknown = nu;
    c_corners = Array.length t.corners;
    c_corner_lanes_shared = t.lanes_shared;
    c_corner_evals_saved = t.evals_saved;
    c_window_insts =
      (match t.window with Some w -> Window.n_insts_proven w | None -> 0);
    c_window_nets =
      (match t.window with Some w -> Window.n_nets_proven w | None -> 0);
    c_window_unbounded =
      (match t.window with Some w -> snd (Window.counts w) | None -> 0);
    c_window_lanes_static =
      (match t.window with Some w -> Window.n_lanes_static w | None -> 0);
    c_window_evals = t.window_evals;
    c_window_checks = t.window_checks;
    c_evals_by_kind =
      List.sort (fun (a, _) (b, _) -> String.compare a b) !by_kind;
  }

let zero_counters =
  {
    c_requests = 0;
    c_events = 0;
    c_evaluations = 0;
    c_queued = 0;
    c_coalesced = 0;
    c_queue_hwm = 0;
    c_sched_levels = 0;
    c_sccs = 0;
    c_max_scc_size = 0;
    c_cache_hits = 0;
    c_cache_misses = 0;
    c_pruned_insts = 0;
    c_pruned_evals = 0;
    c_nets_const = 0;
    c_nets_stable = 0;
    c_nets_clock = 0;
    c_nets_data = 0;
    c_nets_unknown = 0;
    c_corners = 0;
    c_corner_lanes_shared = 0;
    c_corner_evals_saved = 0;
    c_window_insts = 0;
    c_window_nets = 0;
    c_window_unbounded = 0;
    c_window_lanes_static = 0;
    c_window_evals = 0;
    c_window_checks = 0;
    c_evals_by_kind = [];
  }

(* Sum two per-kind evaluation-count alists, keeping the alphabetical
   order [counters] guarantees. *)
let merge_by_kind a b =
  let rec go a b =
    match a, b with
    | [], rest | rest, [] -> rest
    | (ka, va) :: ra, (kb, vb) :: rb ->
      let c = String.compare ka kb in
      if c = 0 then (ka, va + vb) :: go ra rb
      else if c < 0 then (ka, va) :: go ra b
      else (kb, vb) :: go a rb
  in
  go a b

(* Accumulators sum; the high-water mark, the schedule shape and the
   pruning shape (identical across runs of one structure, or
   incomparable across structures) take the max. *)
let merge_counters a b =
  {
    c_requests = a.c_requests + b.c_requests;
    c_events = a.c_events + b.c_events;
    c_evaluations = a.c_evaluations + b.c_evaluations;
    c_queued = a.c_queued + b.c_queued;
    c_coalesced = a.c_coalesced + b.c_coalesced;
    c_queue_hwm = max a.c_queue_hwm b.c_queue_hwm;
    c_sched_levels = max a.c_sched_levels b.c_sched_levels;
    c_sccs = max a.c_sccs b.c_sccs;
    c_max_scc_size = max a.c_max_scc_size b.c_max_scc_size;
    c_cache_hits = a.c_cache_hits + b.c_cache_hits;
    c_cache_misses = a.c_cache_misses + b.c_cache_misses;
    c_pruned_insts = max a.c_pruned_insts b.c_pruned_insts;
    c_pruned_evals = a.c_pruned_evals + b.c_pruned_evals;
    c_nets_const = max a.c_nets_const b.c_nets_const;
    c_nets_stable = max a.c_nets_stable b.c_nets_stable;
    c_nets_clock = max a.c_nets_clock b.c_nets_clock;
    c_nets_data = max a.c_nets_data b.c_nets_data;
    c_nets_unknown = max a.c_nets_unknown b.c_nets_unknown;
    c_corners = max a.c_corners b.c_corners;
    c_corner_lanes_shared = a.c_corner_lanes_shared + b.c_corner_lanes_shared;
    c_corner_evals_saved = a.c_corner_evals_saved + b.c_corner_evals_saved;
    (* the proof-shape fields are properties of the analysis: max *)
    c_window_insts = max a.c_window_insts b.c_window_insts;
    c_window_nets = max a.c_window_nets b.c_window_nets;
    c_window_unbounded = max a.c_window_unbounded b.c_window_unbounded;
    c_window_lanes_static = max a.c_window_lanes_static b.c_window_lanes_static;
    c_window_evals = a.c_window_evals + b.c_window_evals;
    c_window_checks = a.c_window_checks + b.c_window_checks;
    c_evals_by_kind = merge_by_kind a.c_evals_by_kind b.c_evals_by_kind;
  }

let set_event_hook t h = t.on_event <- h
let event_hook t = t.on_event

let period t = Timebase.period (Netlist.timebase t.nl)

let apply_case t id wf =
  match t.case.(id) with
  | None -> wf
  | Some v ->
    Waveform.map (fun x -> match x with Tvalue.Stable -> v | _ -> x) wf

(* Initial value of a net before any driver has produced one. *)
let initial_value t (n : Netlist.net) =
  let base =
    match n.n_assertion with
    | Some a -> Assertion.to_waveform (Netlist.defaults t.nl) (Netlist.timebase t.nl) a
    | None ->
      if n.n_driver = None then Waveform.const ~period:(period t) Tvalue.Stable
      else Waveform.const ~period:(period t) Tvalue.Unknown
  in
  apply_case t n.n_id base

(* Every assignment to a net's evaluation state goes through [assign] so
   the generation stamp can never fall behind the value. *)
let assign (n : Netlist.net) wf eval_str =
  n.n_value <- wf;
  n.n_eval_str <- eval_str;
  n.n_gen <- n.n_gen + 1

let ensure_sched t =
  match t.mode with
  | Fifo -> ()
  | Level ->
    if t.sched = None then begin
      let s = Sched.compute t.nl in
      t.sched <- Some s;
      t.buckets <- Array.init (max 1 (Sched.n_levels s)) (fun _ -> Queue.create ());
      t.scc_evals <- Array.make (Sched.n_cyclic s) 0
    end

let enqueue t inst_id =
  let fz = Bytes.unsafe_get t.frozen inst_id in
  if fz <> '\000' then
    (* a frozen instance is never on the work list, so every skipped
       request is exactly one avoided evaluation *)
    if fz = '\002' then t.window_evals <- t.window_evals + 1
    else t.pruned_evals <- t.pruned_evals + 1
  else begin
    t.queued <- t.queued + 1;
    if Bytes.unsafe_get t.in_queue inst_id <> '\000' then t.coalesced <- t.coalesced + 1
    else begin
      Bytes.unsafe_set t.in_queue inst_id '\001';
      (match t.mode with
      | Fifo -> Queue.add inst_id t.queue
      | Level ->
        let l = Sched.level (Option.get t.sched) inst_id in
        Queue.add inst_id t.buckets.(l);
        if l < t.cur_level then t.cur_level <- l);
      t.queue_len <- t.queue_len + 1;
      if t.queue_len > t.queue_hwm then t.queue_hwm <- t.queue_len
    end
  end

let enqueue_fanout t net_id =
  Netlist.iter_fanout (Netlist.net t.nl net_id) (enqueue t)

(* Drop all pending work, resetting the in-queue flags so a later
   (incremental) run starts from a consistent work list. *)
let clear_work t =
  let drop q =
    Queue.iter (fun id -> Bytes.unsafe_set t.in_queue id '\000') q;
    Queue.clear q
  in
  (match t.mode with
  | Fifo -> drop t.queue
  | Level -> Array.iter drop t.buckets);
  t.queue_len <- 0

(* ---- directive resolution --------------------------------------------- *)

(* The evaluation string for an input connection: an explicit "&..."
   directive on the connection wins; otherwise the string carried by the
   signal value (§2.8). *)
let effective_directive t (inst : Netlist.inst) i =
  let c = inst.i_inputs.(i) in
  if c.c_directive <> [] then c.c_directive
  else (Netlist.net t.nl c.c_net).n_eval_str

let head_letter = function [] -> Directive.E | l :: _ -> l

(* ---- input processing --------------------------------------------------- *)

let wire_delay_of t (n : Netlist.net) =
  match n.n_wire_delay with Some d -> d | None -> Netlist.default_wire_delay t.nl

(* Corner scaling with the reference shortcut: a factor of exactly 1.0
   returns the very same delay value, so the single-corner (and
   reference-lane) path is byte-identical to the unscaled evaluator. *)
let scaled f d = if f = 1.0 then d else Delay.scale f d

let lane_dscale t lane = if lane = 0 then t.c0_dscale else t.lanes.(lane - 1).l_dscale

let apply_delay d wf =
  if Delay.equal d Delay.zero then wf
  else
    let envelope () = Waveform.delay ~dmin:d.Delay.dmin ~dmax:d.Delay.dmax wf in
    match Delay.rise_fall d with
    | None -> envelope ()
    | Some (rise, fall) -> (
      (* Exact per-edge delays on value-known (clock) paths; the
         conservative envelope elsewhere (§4.2.2). *)
      match Waveform.delay_rise_fall ~rise ~fall wf with
      | Some w -> w
      | None -> envelope ())

(* The input waveform is a pure function of the driving net's evaluation
   state (value + evaluation string) and of static structure, so it is
   memoized per connection, keyed on the net's generation stamp.  High-
   fanout nets and the checker pass (which re-derives every input) hit
   the cache instead of re-applying inversion and wire delay. *)
let input_waveform t (inst : Netlist.inst) i =
  let c = inst.i_inputs.(i) in
  let n = Netlist.net t.nl c.c_net in
  let idx = t.conn_base.(inst.i_id) + i in
  if t.cache_gen.(idx) = n.n_gen then begin
    t.cache_hits <- t.cache_hits + 1;
    t.cache_wf.(idx)
  end
  else begin
    t.cache_misses <- t.cache_misses + 1;
    let wf =
      if (not c.c_invert) && c.c_directive = [] then begin
        (* Untransformed connection: the result is a function of the
           net alone, so all such conns share one record per
           generation (the per-conn stamps and hit/miss accounting
           are unchanged — only the allocation is shared). *)
        if t.net_gen.(c.c_net) = n.n_gen then t.net_wf.(c.c_net)
        else begin
          let letter = head_letter n.n_eval_str in
          let wf = n.n_value in
          let wf =
            if Directive.zero_wire letter then wf
            else apply_delay (scaled t.c0_wscale (wire_delay_of t n)) wf
          in
          t.net_gen.(c.c_net) <- n.n_gen;
          t.net_wf.(c.c_net) <- wf;
          wf
        end
      end
      else begin
        let letter = head_letter (effective_directive t inst i) in
        let wf = n.n_value in
        let wf = if c.c_invert then Waveform.map Tvalue.lnot wf else wf in
        if Directive.zero_wire letter then wf
        else apply_delay (scaled t.c0_wscale (wire_delay_of t n)) wf
      end
    in
    t.cache_gen.(idx) <- n.n_gen;
    t.cache_wf.(idx) <- wf;
    wf
  end

(* A lane shares lane 0's derived input (and its memo record) when the
   raw lane waveform is the lane-0 record itself and either the wire
   scale matches lane 0's or the waveform is a single segment — skew is
   the only thing a delay can add to a constant, and skew is
   unobservable on one segment (materialization drops it, the pointwise
   maps ignore it). *)
let lane_shares_input t (ln : lane) (n : Netlist.net) =
  ln.l_value.(n.n_id) == n.n_value
  && (ln.l_wscale = t.c0_wscale || Waveform.n_segments n.n_value = 1)

let input_waveform_lane t lane (inst : Netlist.inst) i =
  if lane = 0 then input_waveform t inst i
  else begin
    let ln = t.lanes.(lane - 1) in
    let c = inst.i_inputs.(i) in
    let n = Netlist.net t.nl c.c_net in
    if lane_shares_input t ln n then input_waveform t inst i
    else begin
      let idx = t.conn_base.(inst.i_id) + i in
      if ln.l_cache_gen.(idx) = n.n_gen then begin
        t.cache_hits <- t.cache_hits + 1;
        ln.l_cache_wf.(idx)
      end
      else begin
        t.cache_misses <- t.cache_misses + 1;
        let raw = ln.l_value.(c.c_net) in
        let wf =
          if (not c.c_invert) && c.c_directive = [] then begin
            if ln.l_net_gen.(c.c_net) = n.n_gen then ln.l_net_wf.(c.c_net)
            else begin
              let letter = head_letter n.n_eval_str in
              let wf =
                if Directive.zero_wire letter then raw
                else apply_delay (scaled ln.l_wscale (wire_delay_of t n)) raw
              in
              ln.l_net_gen.(c.c_net) <- n.n_gen;
              ln.l_net_wf.(c.c_net) <- wf;
              wf
            end
          end
          else begin
            let letter = head_letter (effective_directive t inst i) in
            let wf = if c.c_invert then Waveform.map Tvalue.lnot raw else raw in
            if Directive.zero_wire letter then wf
            else apply_delay (scaled ln.l_wscale (wire_delay_of t n)) wf
          end
        in
        ln.l_cache_gen.(idx) <- n.n_gen;
        ln.l_cache_wf.(idx) <- wf;
        wf
      end
    end
  end

(* ---- primitive models --------------------------------------------------- *)

let enabling_value = function
  | Primitive.And -> Tvalue.V1
  | Primitive.Or -> Tvalue.V0
  | Primitive.Xor -> Tvalue.V0
  | Primitive.Chg -> Tvalue.Stable

let gate_fold fn vs =
  match fn with
  | Primitive.And -> List.fold_left Tvalue.land_ Tvalue.V1 vs
  | Primitive.Or -> List.fold_left Tvalue.lor_ Tvalue.V0 vs
  | Primitive.Xor -> List.fold_left Tvalue.lxor_ Tvalue.V0 vs
  | Primitive.Chg -> List.fold_left Tvalue.chg Tvalue.Stable vs

(* Output value of a 2-input multiplexer as a function of the three
   input values at an instant, with a stable-but-unknown or changing
   select treated worst-case. *)
let mux_value a b s =
  match s with
  | Tvalue.V0 -> a
  | Tvalue.V1 -> b
  | Tvalue.Unknown -> Tvalue.Unknown
  | Tvalue.Stable ->
    if Tvalue.equal a b then a
    else (
      match a, b with
      | Tvalue.Unknown, _ | _, Tvalue.Unknown -> Tvalue.Unknown
      | _, _ ->
        if Tvalue.is_stable a && Tvalue.is_stable b then Tvalue.Stable
        else if Tvalue.is_stable a then b
        else if Tvalue.is_stable b then a
        else Tvalue.Change)
  | Tvalue.Rise | Tvalue.Fall | Tvalue.Change -> (
    match a, b with
    | Tvalue.Unknown, _ | _, Tvalue.Unknown -> Tvalue.Unknown
    | _, _ -> Tvalue.Change)

(* Asynchronous SET/RESET overlay applied pointwise over the clocked
   behaviour of a register or latch (§2.4.3). *)
let set_reset_overlay out s r =
  match s, r with
  | Tvalue.V0, Tvalue.V0 -> out
  | Tvalue.V1, Tvalue.V0 -> Tvalue.V1
  | Tvalue.V0, Tvalue.V1 -> Tvalue.V0
  | Tvalue.V1, Tvalue.V1 -> Tvalue.Unknown
  | Tvalue.Unknown, _ | _, Tvalue.Unknown -> Tvalue.Unknown
  | _, _ -> Tvalue.Change

(* The value a register samples over a clock window, or None when the
   data input is not a constant 0/1 throughout it. *)
let sampled_value data_m { Waveform.w_start; w_stop } =
  let v = Waveform.value_at data_m w_start in
  match v with
  | Tvalue.V0 | Tvalue.V1 ->
    let width = w_stop - w_start in
    if width = 0 then Some v
    else
      let ok =
        Waveform.intervals_where (Tvalue.equal v) data_m
        |> List.exists (fun (s, w) ->
               let p = Waveform.period data_m in
               let off = (w_start - s) mod p in
               let off = if off < 0 then off + p else off in
               off + width <= w)
      in
      if ok then Some v else None
  | _ -> None

let reg_output ~period ~delay ~data_m ~clock =
  let windows = Waveform.rising_windows clock in
  if windows = [] then
    if
      List.for_all
        (fun (v, _) -> match v with Tvalue.Unknown -> true | _ -> false)
        (Waveform.segments clock)
    then Waveform.const ~period Tvalue.Unknown
    else Waveform.const ~period Tvalue.Stable
  else
    let data_m = Lazy.force data_m in
    let samples = List.map (sampled_value data_m) windows in
    let base =
      match samples with
      | [] -> Tvalue.Stable
      | first :: rest ->
        if List.for_all (fun s -> s = first) rest then
          match first with Some v -> v | None -> Tvalue.Stable
        else Tvalue.Stable
    in
    let change_ivals =
      List.map
        (fun { Waveform.w_start; w_stop } ->
          (w_start + delay.Delay.dmin, w_stop + delay.Delay.dmax))
        windows
    in
    Waveform.of_intervals ~period ~inside:Tvalue.Change ~outside:base change_ivals

(* Materialized register data input, memoized on the driving net's
   generation: the register is typically re-evaluated for clock events
   while its data is unchanged, and materialization (folding the skew
   windows into the segment list) is the expensive half. *)
let materialized_data t (inst : Netlist.inst) =
  let c = inst.i_inputs.(0) in
  let n = Netlist.net t.nl c.c_net in
  let id = inst.i_id in
  if t.mat_gen.(id) = n.n_gen then begin
    t.cache_hits <- t.cache_hits + 1;
    t.mat_wf.(id)
  end
  else begin
    t.cache_misses <- t.cache_misses + 1;
    let m = Waveform.materialize (input_waveform t inst 0) in
    t.mat_gen.(id) <- n.n_gen;
    t.mat_wf.(id) <- m;
    m
  end

let materialized_data_lane t lane (inst : Netlist.inst) =
  if lane = 0 then materialized_data t inst
  else
    let ln = t.lanes.(lane - 1) in
    let n = Netlist.net t.nl inst.i_inputs.(0).c_net in
    if lane_shares_input t ln n then materialized_data t inst
    else begin
      let id = inst.i_id in
      if ln.l_mat_gen.(id) = n.n_gen then begin
        t.cache_hits <- t.cache_hits + 1;
        ln.l_mat_wf.(id)
      end
      else begin
        t.cache_misses <- t.cache_misses + 1;
        let m = Waveform.materialize (input_waveform_lane t lane inst 0) in
        ln.l_mat_gen.(id) <- n.n_gen;
        ln.l_mat_wf.(id) <- m;
        m
      end
    end

(* Transparent-latch value as a function of the data and enable values
   at an instant; the result is then delayed by the latch delay. *)
let latch_value d e =
  match e with
  | Tvalue.V0 -> Tvalue.Stable
  | Tvalue.Unknown -> Tvalue.Unknown
  | Tvalue.V1 | Tvalue.Stable -> (
    match d with
    | Tvalue.Unknown -> Tvalue.Unknown
    | Tvalue.Change | Tvalue.Rise | Tvalue.Fall -> Tvalue.Change
    | Tvalue.V0 | Tvalue.V1 -> if Tvalue.equal e Tvalue.V1 then d else Tvalue.Stable
    | Tvalue.Stable -> Tvalue.Stable)
  | Tvalue.Rise | Tvalue.Change -> (
    (* The latch may be opening: the output can change to the new data
       value regardless of the data's stability. *)
    match d with Tvalue.Unknown -> Tvalue.Unknown | _ -> Tvalue.Change)
  | Tvalue.Fall -> (
    (* The latch is closing: with stable data the captured value equals
       the transparent value, so the output does not change. *)
    match d with
    | Tvalue.Unknown -> Tvalue.Unknown
    | Tvalue.Change | Tvalue.Rise | Tvalue.Fall -> Tvalue.Change
    | Tvalue.V0 | Tvalue.V1 | Tvalue.Stable -> Tvalue.Stable)

(* Paint Change over the given windows (dilated by a delay range) on a
   waveform -- used for output changes caused by an input transition that
   the pointwise combination cannot see, such as a zero-width select or
   enable edge between two Stable regions. *)
let paint_change_windows ~period ~d windows wf =
  if windows = [] then wf
  else
    let ivals =
      List.map
        (fun { Waveform.w_start; w_stop } -> (w_start + d.Delay.dmin, w_stop + d.Delay.dmax))
        windows
    in
    let overlay =
      Waveform.of_intervals ~period ~inside:Tvalue.Change ~outside:Tvalue.Stable ivals
    in
    let paint v p =
      match p, v with
      | Tvalue.Change, Tvalue.Unknown -> Tvalue.Unknown
      | Tvalue.Change, _ -> Tvalue.Change
      | _, v -> v
    in
    Waveform.map2 paint wf overlay

(* ---- instance evaluation ------------------------------------------------ *)

(* One lane's output: the primitive models are corner-invariant; only
   the element and wire delays differ per lane, so the body is shared
   and the lane selects the input derivation and the delay scale. *)
let eval_output_lane t lane (inst : Netlist.inst) =
  let input i = input_waveform_lane t lane inst i in
  let sc d = scaled (lane_dscale t lane) d in
  match inst.i_prim with
  | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _
  | Primitive.Min_pulse_width _ ->
    None
  | Primitive.Const v -> Some (Waveform.const ~period:(period t) v)
  | Primitive.Buf { invert; delay } ->
    let letter = head_letter (effective_directive t inst 0) in
    let wf = input 0 in
    let wf = if invert then Waveform.map Tvalue.lnot wf else wf in
    let d = if Directive.zero_gate letter then Delay.zero else sc delay in
    Some (apply_delay d wf)
  | Primitive.Gate { fn; n_inputs; invert; delay } ->
    let letters =
      Array.init n_inputs (fun i -> head_letter (effective_directive t inst i))
    in
    let hazard = Array.exists Directive.check_hazard letters in
    let zero_gate = Array.exists Directive.zero_gate letters in
    let wfs =
      List.init n_inputs (fun i ->
          if hazard && not (Directive.check_hazard letters.(i)) then
            (* &A / &H: assume the other (control) inputs enable the
               gate, so the output follows the clock alone (§2.6). *)
            Waveform.const ~period:(period t) (enabling_value fn)
          else input i)
    in
    let combined = Waveform.mapn (gate_fold fn) wfs in
    let combined = if invert then Waveform.map Tvalue.lnot combined else combined in
    let d = if zero_gate then Delay.zero else sc delay in
    Some (apply_delay d combined)
  | Primitive.Mux2 { delay; select_extra } ->
    let a = input 0 and b = input 1 and s = input 2 in
    let s = apply_delay (sc select_extra) s in
    let zero_gate =
      List.exists
        (fun i -> Directive.zero_gate (head_letter (effective_directive t inst i)))
        [ 0; 1; 2 ]
    in
    let combined = Waveform.map3 mux_value a b s in
    let d = if zero_gate then Delay.zero else sc delay in
    let out = apply_delay d combined in
    (* A select transition may change the output even when both data
       inputs are stable (their unknown stable values can differ), so
       paint Change over every select-transition window dilated by the
       mux delay. *)
    Some (paint_change_windows ~period:(period t) ~d (Waveform.change_windows s) out)
  | Primitive.Reg { delay; has_set_reset } ->
    let delay = sc delay in
    let data_m = lazy (materialized_data_lane t lane inst) in
    let clock = input 1 in
    let out = reg_output ~period:(period t) ~delay ~data_m ~clock in
    if not has_set_reset then Some out
    else
      let s = apply_delay delay (input 2) and r = apply_delay delay (input 3) in
      Some (Waveform.map3 set_reset_overlay out s r)
  | Primitive.Latch { delay; has_set_reset } ->
    let delay = sc delay in
    let data = input 0 and enable = input 1 in
    let out = apply_delay delay (Waveform.map2 latch_value data enable) in
    (* The opening (rising-enable) edge may change the output even with
       stable data: the held value from the previous cycle can differ
       from the current data value.  Zero-width edges are invisible to
       the pointwise combination, so paint them explicitly. *)
    let out =
      paint_change_windows ~period:(period t) ~d:delay
        (Waveform.rising_windows enable) out
    in
    if not has_set_reset then Some out
    else
      let s = apply_delay delay (input 2) and r = apply_delay delay (input 3) in
      Some (Waveform.map3 set_reset_overlay out s r)

(* The evaluation string passed along with the output value: the rest of
   the first non-empty input directive (§2.8).  Only levels of gating
   propagate it. *)
let output_eval_str t (inst : Netlist.inst) =
  match inst.i_prim with
  | Primitive.Gate _ | Primitive.Buf _ | Primitive.Mux2 _ ->
    let n = Array.length inst.i_inputs in
    let rec find i =
      if i >= n then []
      else
        match effective_directive t inst i with [] -> find (i + 1) | _ :: rest -> rest
    in
    find 0
  | Primitive.Reg _ | Primitive.Latch _ | Primitive.Setup_hold_check _
  | Primitive.Setup_rise_hold_fall_check _ | Primitive.Min_pulse_width _
  | Primitive.Const _ ->
    []

(* Equality up to skew on a constant: [Waveform.equal] compares the
   early/late skew window, but on a single-segment waveform skew is
   unobservable (materialization drops it, [value_at] and the pointwise
   maps ignore it), so two constants with the same value are the same
   waveform for every downstream purpose.  Canonicalizing through this
   lets a lane share the lane-0 record even when a scaled delay left a
   different (invisible) skew on a constant. *)
let same_modulo_const_skew a b =
  a == b || Waveform.equal a b
  || (Waveform.n_segments a = 1 && Waveform.n_segments b = 1
     && Waveform.period a = Waveform.period b
     && Tvalue.equal (Waveform.value_at a 0) (Waveform.value_at b 0))

(* A lane's evaluation of an instance is skippable when every input is
   pointer-shared with lane 0 *and* constant: delays (however scaled)
   are invisible on constants, so the lane's output equals the lane-0
   output exactly. *)
let lane_eval_skippable t (ln : lane) (inst : Netlist.inst) =
  let n = Array.length inst.i_inputs in
  let rec go i =
    i >= n
    || (let c = inst.i_inputs.(i) in
        let nv = (Netlist.net t.nl c.c_net).n_value in
        ln.l_value.(c.c_net) == nv && Waveform.n_segments nv = 1 && go (i + 1))
  in
  go 0

let eval_inst t inst_id =
  let inst = Netlist.inst t.nl inst_id in
  t.evals <- t.evals + 1;
  t.evals_by_kind.(kind_tag inst.i_prim) <-
    t.evals_by_kind.(kind_tag inst.i_prim) + 1;
  match eval_output_lane t 0 inst with
  | None -> ()
  | Some wf -> (
    match inst.i_output with
    | None -> ()
    | Some out_id ->
      let n = Netlist.net t.nl out_id in
      let wf = apply_case t out_id wf in
      let eval_str = output_eval_str t inst in
      let changed =
        not (Waveform.equal wf n.n_value) || eval_str <> n.n_eval_str
      in
      (* Lane 0 assigns first so the lanes below canonicalize against
         the *new* reference waveform. *)
      if changed then assign n wf eval_str;
      let lane_changed = ref false in
      for c = 1 to Array.length t.lanes do
        let ln = t.lanes.(c - 1) in
        let prev = ln.l_value.(out_id) in
        let next =
          if lane_eval_skippable t ln inst then begin
            t.evals_saved <- t.evals_saved + 1;
            n.n_value
          end
          else begin
            let o =
              apply_case t out_id (Option.get (eval_output_lane t c inst))
            in
            (* Converge storage: a lane output equal to the reference
               (or to its own previous value) keeps the existing record,
               so pointer inequality below is exact change detection. *)
            if same_modulo_const_skew o n.n_value then begin
              if o != n.n_value then t.lanes_shared <- t.lanes_shared + 1;
              n.n_value
            end
            else if same_modulo_const_skew o prev then prev
            else o
          end
        in
        if next != prev then begin
          ln.l_value.(out_id) <- next;
          lane_changed := true
        end
      done;
      if changed || !lane_changed then begin
        (* A lane-only change must still invalidate the generation-keyed
           caches and wake the fanout; lane 0's stamp was already bumped
           by [assign]. *)
        if not changed then n.n_gen <- n.n_gen + 1;
        t.events <- t.events + 1;
        (match t.on_event with
        | None -> ()
        | Some f -> f ~inst_id ~net_id:out_id);
        enqueue_fanout t out_id
      end)

(* Next ready instance in level order: advance the cursor to the first
   non-empty bucket.  Fanout edges never reach below the current level
   (condensation levels are monotone along edges; equal only inside a
   component), so one sweep visits each acyclic instance at most once
   and re-visits exactly the members of still-relaxing feedback
   components. *)
let dequeue_level t =
  let n = Array.length t.buckets in
  let rec find l =
    if l >= n then None
    else
      match Queue.take_opt t.buckets.(l) with
      | Some id ->
        t.cur_level <- l;
        Some id
      | None -> find (l + 1)
  in
  find t.cur_level

let fixpoint t =
  t.converged <- true;
  t.diverged_slot <- -1;
  (* The bound is a per-run budget (counted from this run's start), not
     a lifetime one: every case gets the same headroom regardless of its
     position in the case list, so convergence of a case is independent
     of evaluation order. *)
  let bound = max 10_000 (Netlist.n_insts t.nl * 200) in
  let start = t.evals in
  (match t.mode with
  | Fifo ->
    let rec loop () =
      if t.evals - start > bound then t.converged <- false
      else
        match Queue.take_opt t.queue with
        | None -> ()
        | Some id ->
          t.queue_len <- t.queue_len - 1;
          Bytes.unsafe_set t.in_queue id '\000';
          eval_inst t id;
          loop ()
    in
    loop ()
  | Level ->
    let s = Option.get t.sched in
    t.cur_level <- 0;
    Array.fill t.scc_evals 0 (Array.length t.scc_evals) 0;
    (* In level order every acyclic instance runs at most once per
       wavefront, so the global bound can only trip inside feedback —
       the per-component budget below catches it first and names the
       region; the global bound remains as a backstop. *)
    let rec loop () =
      if t.evals - start > bound then t.converged <- false
      else
        match dequeue_level t with
        | None -> ()
        | Some id ->
          t.queue_len <- t.queue_len - 1;
          Bytes.unsafe_set t.in_queue id '\000';
          let slot = Sched.cyclic_slot s id in
          if slot < 0 then begin
            eval_inst t id;
            loop ()
          end
          else begin
            let c = t.scc_evals.(slot) + 1 in
            t.scc_evals.(slot) <- c;
            if c > max 10_000 (Sched.cyclic_size s slot * 200) then begin
              t.converged <- false;
              t.diverged_slot <- slot
            end
            else begin
              eval_inst t id;
              loop ()
            end
          end
    in
    loop ());
  (* On divergence the pending work is dropped *and* the in-queue flags
     cleared, so a later incremental case starts from a consistent work
     list instead of silently coalescing away its re-evaluations. *)
  if not t.converged then clear_work t

(* (Re-)source a net's lane values from the freshly assigned lane-0
   waveform: initial values are corner-independent (assertions and case
   mappings carry no delay), so every lane starts on the shared record. *)
let reset_lanes t (n : Netlist.net) =
  for c = 1 to Array.length t.lanes do
    t.lanes.(c - 1).l_value.(n.n_id) <- n.n_value
  done

let run ?(case = []) t =
  ensure_sched t;
  if not t.initialized then begin
    t.initialized <- true;
    List.iter (fun (id, v) -> t.case.(id) <- Some v) case;
    Netlist.iter_nets t.nl (fun n ->
        assign n (initial_value t n) [];
        reset_lanes t n);
    Netlist.iter_insts t.nl (fun i -> enqueue t i.i_id)
  end
  else begin
    (* Incremental case change: touch only the nets whose mapping
       changed (§2.7). *)
    let wanted = Array.make (Array.length t.case) None in
    List.iter (fun (id, v) -> wanted.(id) <- Some v) case;
    Array.iteri
      (fun id w ->
        if w <> t.case.(id) then begin
          t.case.(id) <- w;
          let n = Netlist.net t.nl id in
          (match n.n_driver with
          | None ->
            assign n (initial_value t n) n.n_eval_str;
            reset_lanes t n
          | Some d -> enqueue t d);
          enqueue_fanout t id
        end)
      wanted
  end;
  fixpoint t;
  (* Freeze after the first run: every instance has been evaluated at
     least once by now, and a provably inert instance (doc/FLOW.md) can
     only ever recompute what it already holds — the work list need
     never see it again.  The set is static, so every evaluator of the
     same netlist (including the Netlist.copys of parallel case
     evaluation) freezes identically. *)
  match t.flow with
  | Some f when not t.froze ->
    t.froze <- true;
    for id = 0 to Netlist.n_insts t.nl - 1 do
      (* never downgrade a window freeze to a flow freeze *)
      if Flow.prunable f id && Bytes.unsafe_get t.frozen id = '\000' then
        Bytes.unsafe_set t.frozen id '\001'
    done
  | Some _ | None -> ()

let value t id = (Netlist.net t.nl id).n_value

let value_lane t lane id =
  if lane = 0 then (Netlist.net t.nl id).n_value else t.lanes.(lane - 1).l_value.(id)

(* ---- incremental-service hooks (lib/incr, doc/SERVICE.md) ---------------- *)

(* External generation injection: a service that edits a net's
   parameters (wire delay, a consumer's connection directive) bumps the
   stamp so every generation-keyed consumer cache misses, then wakes the
   fanout.  The waveform itself is untouched — only its interpretation
   changed. *)
let touch_net t net_id =
  let n = Netlist.net t.nl net_id in
  n.n_gen <- n.n_gen + 1;
  enqueue_fanout t net_id

(* An assertion edit changes the net's source waveform: undriven nets
   are re-initialized in place (mirroring the §2.7 case-change path in
   [run]); driven nets re-evaluate their driver so the new assertion is
   checked against a fresh value. *)
let reassert_net t net_id =
  let n = Netlist.net t.nl net_id in
  (match n.n_driver with
  | None ->
    assign n (initial_value t n) n.n_eval_str;
    reset_lanes t n
  | Some d ->
    n.n_gen <- n.n_gen + 1;
    enqueue t d);
  enqueue_fanout t net_id

(* Replace the frozen set wholesale: [active id] instances stay live,
   everything else is skipped at enqueue time.  The incremental service
   thaws exactly the dirty cone of an edit and freezes the rest —
   instances outside the cone already hold their fixpoint waveforms, so
   freezing them is the cross-run analogue of Flow pruning. *)
let refreeze t ~active =
  for id = 0 to Netlist.n_insts t.nl - 1 do
    Bytes.unsafe_set t.frozen id (if active id then '\000' else '\001')
  done;
  t.froze <- true

(* Re-apply the window freeze after [refreeze] rebuilt the byte map: a
   checker the (possibly updated) analysis still proves stays statically
   served even inside the thawed cone — its verdict cannot move.  The
   incremental service calls this right after [refreeze], once
   [Window.update] has absorbed the edit. *)
let rewindow t =
  match t.window with
  | None -> ()
  | Some w ->
    for id = 0 to Netlist.n_insts t.nl - 1 do
      if Window.inst_proven w id then Bytes.unsafe_set t.frozen id '\002'
      else if Bytes.unsafe_get t.frozen id = '\002' then
        (* no longer proven: thaw so the next run evaluates it *)
        Bytes.unsafe_set t.frozen id '\000'
    done

(* A [Cases] edit changes the volatile-net set, which is fixed when the
   window table is built: the service swaps in a re-analysed table here
   and the next [rewindow] re-derives the frozen set from it. *)
let set_window t w = t.window <- w

let enqueue_inst t inst_id = enqueue t inst_id

(* ---- checking ------------------------------------------------------------ *)

let net_name t id = (Netlist.net t.nl id).n_name

let check_inst_compute t lane (inst : Netlist.inst) =
  let input i = input_waveform_lane t lane inst i in
  match inst.i_prim with
  | Primitive.Setup_hold_check { setup; hold } ->
    let data = input 0 and ck = input 1 in
    Check.check_setup_hold ~inst:inst.i_name
      ~signal:(net_name t inst.i_inputs.(0).c_net)
      ~clock:(net_name t inst.i_inputs.(1).c_net)
      ~setup ~hold ~data ~ck
  | Primitive.Setup_rise_hold_fall_check { setup; hold } ->
    let data = input 0 and ck = input 1 in
    Check.check_setup_rise_hold_fall ~inst:inst.i_name
      ~signal:(net_name t inst.i_inputs.(0).c_net)
      ~clock:(net_name t inst.i_inputs.(1).c_net)
      ~setup ~hold ~data ~ck
  | Primitive.Min_pulse_width { high; low } ->
    let wf = input 0 in
    Check.check_min_pulse_width ~inst:inst.i_name
      ~signal:(net_name t inst.i_inputs.(0).c_net)
      ~high ~low wf
  | Primitive.Gate _ ->
    let n = Array.length inst.i_inputs in
    let hazard_inputs =
      List.filter
        (fun i -> Directive.check_hazard (head_letter (effective_directive t inst i)))
        (List.init n (fun i -> i))
    in
    List.concat_map
      (fun i ->
        let gate_wf = input i in
        List.concat_map
          (fun j ->
            if j = i || Directive.check_hazard (head_letter (effective_directive t inst j))
            then []
            else
              Check.check_stable_while ~inst:inst.i_name
                ~signal:(net_name t inst.i_inputs.(j).c_net)
                ~clock:(net_name t inst.i_inputs.(i).c_net)
                ~gate_wf (input j))
          (List.init n (fun j -> j)))
      hazard_inputs
  | Primitive.Buf _ | Primitive.Mux2 _ | Primitive.Reg _ | Primitive.Latch _
  | Primitive.Const _ ->
    []

(* Lane verdicts are served from the generation-keyed memo whenever no
   input net's stamp moved since the last derivation — across the cases
   of a multi-case run only the dirty cone is re-checked.  The memo is
   deterministic under case sharding for the same reason the input
   caches are: warm-start priming replays the preceding case's lane
   checks, leaving every stamp exactly where the sequential run's did. *)
let check_inst_lane t lane (inst : Netlist.inst) =
  match t.window with
  | Some w when Window.inst_proven w inst.i_id ->
    (* statically proven clean at every corner: serve the verdict the
       dynamic check would compute (verdict equality argued in
       doc/WINDOWS.md, pinned by the QCheck soundness property) *)
    t.window_checks <- t.window_checks + 1;
    []
  | _ ->
  if lane = 0 then check_inst_compute t 0 inst
  else begin
    let ln = t.lanes.(lane - 1) in
    let n_in = Array.length inst.i_inputs in
    if n_in = 0 then []
    else begin
      let base = t.conn_base.(inst.i_id) in
      let rec fresh i =
        i >= n_in
        || (ln.l_chk_gen.(base + i)
              = (Netlist.net t.nl inst.i_inputs.(i).c_net).n_gen
           && fresh (i + 1))
      in
      if fresh 0 then begin
        t.cache_hits <- t.cache_hits + 1;
        ln.l_chk.(inst.i_id)
      end
      else begin
        t.cache_misses <- t.cache_misses + 1;
        let r = check_inst_compute t lane inst in
        for i = 0 to n_in - 1 do
          ln.l_chk_gen.(base + i) <-
            (Netlist.net t.nl inst.i_inputs.(i).c_net).n_gen
        done;
        ln.l_chk.(inst.i_id) <- r;
        r
      end
    end
  end

let check_inst t inst = check_inst_lane t 0 inst

let check_one t inst_id = check_inst t (Netlist.inst t.nl inst_id)

let check_net_compute t lane net_id =
  let n = Netlist.net t.nl net_id in
  match n.n_assertion, n.n_driver with
  | Some a, Some _ ->
    Check.check_stable_assertion ~signal:n.n_name ~tb:(Netlist.timebase t.nl) a
      (value_lane t lane net_id)
  | (None | Some _), _ -> []

let check_net_lane t lane net_id =
  match t.window with
  | Some w when Window.net_proven w net_id ->
    t.window_checks <- t.window_checks + 1;
    []
  | _ ->
  if lane = 0 then check_net_compute t 0 net_id
  else begin
    let ln = t.lanes.(lane - 1) in
    let n = Netlist.net t.nl net_id in
    if n.n_assertion = None || n.n_driver = None then []
    else if ln.l_chk_net_gen.(net_id) = n.n_gen then begin
      t.cache_hits <- t.cache_hits + 1;
      ln.l_chk_net.(net_id)
    end
    else begin
      t.cache_misses <- t.cache_misses + 1;
      let r = check_net_compute t lane net_id in
      ln.l_chk_net_gen.(net_id) <- n.n_gen;
      ln.l_chk_net.(net_id) <- r;
      r
    end
  end

let check_net t net_id = check_net_lane t 0 net_id

let divergence t =
  if t.converged then []
  else
    let detail =
      match t.diverged_slot, t.sched with
      | slot, Some s when slot >= 0 ->
        Printf.sprintf "evaluation budget exceeded in feedback region: %s"
          (Sched.cyclic_region s slot t.nl)
      | _ -> "evaluation bound exceeded; the circuit may contain unbroken feedback"
    in
    [
      {
        Check.v_kind = Check.No_convergence;
        v_inst = "EVALUATOR";
        v_signal = "";
        v_clock = None;
        v_required = 0;
        v_actual = None;
        v_at = None;
        v_detail = detail;
      };
    ]

let check_lane t lane =
  let acc = ref [] in
  Netlist.iter_insts t.nl (fun inst -> acc := check_inst_lane t lane inst :: !acc);
  Netlist.iter_nets t.nl (fun n -> acc := check_net_lane t lane n.n_id :: !acc);
  let base = List.concat (List.rev !acc) in
  divergence t @ base

let check t = check_lane t 0
