(* Static signal-class inference: one forward sweep over the Sched
   condensation in topological order, relaxing each feedback component
   to a bounded fixpoint and widening to Unknown when it refuses to
   settle.  Purely structural — evaluation state is never read. *)

type cls =
  | Const of Tvalue.t
  | Stable
  | Clock of { domains : int list; gated : bool }
  | Data of int list
  | Unknown

type t = {
  nl : Netlist.t;
  sched : Sched.t;
  classes : cls array;
  rc : bool array;
  prune : bool array;
  n_prunable : int;
}

(* Domain sets are short sorted int lists (one entry per asserted clock
   root); a merge keeps them canonical so classes compare structurally. *)
let union a b =
  let rec go a b =
    match a, b with
    | [], rest | rest, [] -> rest
    | x :: ra, y :: rb ->
      if x = y then x :: go ra rb
      else if x < y then x :: go ra b
      else y :: go a rb
  in
  go a b

let domains_of = function
  | Clock { domains; _ } | Data domains -> domains
  | Const _ | Stable | Unknown -> []

let is_fixed_cls = function Const _ | Stable -> true | _ -> false

let is_clock_kind (a : Assertion.t) =
  match a.Assertion.kind with
  | Assertion.Precision_clock | Assertion.Nonprecision_clock -> true
  | Assertion.Stable -> false

(* Worst-case combination for gates and multiplexers: a changing input
   makes the output data; clocks survive only pure gating (all other
   inputs provably stable), in which case the domains union through. *)
let combine inputs =
  if List.exists (fun c -> c = Some Unknown) inputs then Some Unknown
  else
    match List.filter_map Fun.id inputs with
    | [] -> None
    | known ->
      let doms =
        List.fold_left (fun acc c -> union acc (domains_of c)) [] known
      in
      let has_data = List.exists (function Data _ -> true | _ -> false) known in
      let has_clock = List.exists (function Clock _ -> true | _ -> false) known in
      if has_data then Some (Data doms)
      else if has_clock then Some (Clock { domains = doms; gated = true })
      else Some Stable

let analyse ?sched:sched_opt ?(case_nets = []) nl =
  let sched = match sched_opt with Some s -> s | None -> Sched.compute nl in
  let n_nets = Netlist.n_nets nl in
  let n_insts = Netlist.n_insts nl in
  let volatile = Array.make (max 1 n_nets) false in
  List.iter (fun id -> if id >= 0 && id < n_nets then volatile.(id) <- true) case_nets;
  (* None is bottom; [pinned] nets never take a transfer class. *)
  let work : cls option array = Array.make (max 1 n_nets) None in
  let pinned = Array.make (max 1 n_nets) false in
  let rc = Array.make (max 1 n_nets) false in
  let tb = Netlist.timebase nl in
  let defaults = Netlist.defaults nl in
  (* A net case analysis may substitute is not provably stable for the
     run, whatever the static cone says (§2.7). *)
  let demote id c =
    match c with (Const _ | Stable) when volatile.(id) -> Data [] | c -> c
  in
  Netlist.iter_nets nl (fun n ->
      let id = n.Netlist.n_id in
      match n.Netlist.n_assertion with
      | Some a when is_clock_kind a ->
        (* An asserted clock is a domain root even when it is also
           driven: the assertion, not the driver, defines its edges. *)
        work.(id) <- Some (Clock { domains = [ id ]; gated = false });
        pinned.(id) <- true;
        rc.(id) <- true
      | Some a when n.Netlist.n_driver = None ->
        let wf = Assertion.to_waveform defaults tb a in
        let c = if Waveform.stable_everywhere wf then Stable else Data [] in
        work.(id) <- Some (demote id c);
        pinned.(id) <- true
      | Some _ -> () (* driven .S net: the driver's class is the truth *)
      | None ->
        if n.Netlist.n_driver = None then begin
          (* the verifier assumes undriven unasserted nets stable (§2.5) *)
          work.(id) <- Some (demote id Stable);
          pinned.(id) <- true
        end);
  let transfer (i : Netlist.inst) =
    let inc k =
      let c = i.Netlist.i_inputs.(k) in
      match work.(c.Netlist.c_net) with
      | Some (Const v) when c.Netlist.c_invert -> Some (Const (Tvalue.lnot v))
      | x -> x
    in
    let all_known l = List.for_all (function Some _ -> true | None -> false) l in
    let const_zero_like = function Some (Const _) -> true | _ -> false in
    let doms l =
      List.fold_left
        (fun acc c ->
          match c with Some c -> union acc (domains_of c) | None -> acc)
        [] l
    in
    match i.Netlist.i_prim with
    | Primitive.Setup_hold_check _ | Primitive.Setup_rise_hold_fall_check _
    | Primitive.Min_pulse_width _ ->
      None
    | Primitive.Const v -> Some (Const v)
    | Primitive.Buf { invert; _ } -> (
      match inc 0 with
      | Some (Const v) -> Some (Const (if invert then Tvalue.lnot v else v))
      | x -> x)
    | Primitive.Gate { n_inputs; _ } -> combine (List.init n_inputs inc)
    | Primitive.Mux2 _ -> combine [ inc 0; inc 1; inc 2 ]
    | Primitive.Reg { has_set_reset; _ } ->
      (* The output moves only at clock edges (and on set/reset): its
         domains come from the control inputs, not the sampled data. *)
      let ctrl = inc 1 :: (if has_set_reset then [ inc 2; inc 3 ] else []) in
      let sr = if has_set_reset then [ inc 2; inc 3 ] else [] in
      if List.exists (fun c -> c = Some Unknown) ctrl then Some Unknown
      else if
        (* a stable clock has no edges; set/reset must be tied inactive
           (a mere .S window could still fire the overlay) *)
        (match inc 1 with Some c -> is_fixed_cls c | None -> false)
        && List.for_all const_zero_like sr
      then Some Stable
      else if not (all_known ctrl) then None
      else Some (Data (doms ctrl))
    | Primitive.Latch { has_set_reset; _ } ->
      (* Transparent while enabled: data domains flow through. *)
      let sr = if has_set_reset then [ inc 2; inc 3 ] else [] in
      let all = inc 0 :: inc 1 :: sr in
      if List.exists (fun c -> c = Some Unknown) all then Some Unknown
      else if
        (match inc 0 with Some c -> is_fixed_cls c | None -> false)
        && (match inc 1 with Some c -> is_fixed_cls c | None -> false)
        && List.for_all const_zero_like sr
      then Some Stable
      else if not (all_known all) then None
      else Some (Data (doms all))
  in
  (* One transfer application; returns whether anything moved. *)
  let apply (i : Netlist.inst) =
    match i.Netlist.i_output with
    | None -> false
    | Some o ->
      let changed = ref false in
      if not pinned.(o) then begin
        let c =
          match transfer i with Some c -> Some (demote o c) | None -> None
        in
        if c <> work.(o) then begin
          work.(o) <- c;
          changed := true
        end
      end;
      if
        (not rc.(o))
        && Array.exists
             (fun (c : Netlist.conn) -> rc.(c.Netlist.c_net))
             i.Netlist.i_inputs
      then begin
        rc.(o) <- true;
        changed := true
      end;
      !changed
  in
  (* Component ids are in reverse topological order (Sched), so a sweep
     from the highest id visits producers before consumers; each acyclic
     component needs exactly one application, feedback components relax
     to a fixpoint under a budget and widen to Unknown past it. *)
  let by_scc = Array.make (max 1 (Sched.n_sccs sched)) [] in
  Netlist.iter_insts nl (fun i ->
      let s = Sched.scc sched i.Netlist.i_id in
      by_scc.(s) <- i :: by_scc.(s));
  for sid = Sched.n_sccs sched - 1 downto 0 do
    match by_scc.(sid) with
    | [] -> ()
    | [ i ] when Sched.cyclic_slot sched i.Netlist.i_id < 0 -> ignore (apply i)
    | members ->
      let budget = 8 + (2 * List.length members) in
      let rec relax k =
        let changed =
          List.fold_left (fun acc i -> apply i || acc) false members
        in
        if changed then
          if k >= budget then begin
            (* widening: pin every member output to Unknown, then let
               the (monotone, hence terminating) clock-cone flag finish *)
            List.iter
              (fun (i : Netlist.inst) ->
                match i.Netlist.i_output with
                | Some o when not pinned.(o) ->
                  work.(o) <- Some Unknown;
                  pinned.(o) <- true
                | _ -> ())
              members;
            relax 0
          end
          else relax (k + 1)
      in
      relax 0
  done;
  let classes =
    Array.init (max 1 n_nets) (fun id ->
        if id >= n_nets then Unknown
        else match work.(id) with Some c -> c | None -> Unknown)
  in
  let prune = Array.make (max 1 n_insts) false in
  let n_prunable = ref 0 in
  Netlist.iter_insts nl (fun i ->
      let p =
        if not (Primitive.has_output i.Netlist.i_prim) then
          (* checkers: eval_inst computes nothing for them; the real
             checking pass (Eval.check) never consults the work list *)
          true
        else
          Sched.cyclic_slot sched i.Netlist.i_id < 0
          && Array.for_all
               (fun (c : Netlist.conn) -> is_fixed_cls classes.(c.Netlist.c_net))
               i.Netlist.i_inputs
      in
      if p then incr n_prunable;
      prune.(i.Netlist.i_id) <- p);
  { nl; sched; classes; rc; prune; n_prunable = !n_prunable }

let netlist t = t.nl
let sched t = t.sched
let cls t id = t.classes.(id)
let domains t id = domains_of t.classes.(id)
let reaches_clock t id = t.rc.(id)
let prunable t id = t.prune.(id)
let n_prunable t = t.n_prunable

let class_counts t =
  let c = ref 0 and s = ref 0 and ck = ref 0 and d = ref 0 and u = ref 0 in
  Netlist.iter_nets t.nl (fun n ->
      match t.classes.(n.Netlist.n_id) with
      | Const _ -> incr c
      | Stable -> incr s
      | Clock _ -> incr ck
      | Data _ -> incr d
      | Unknown -> incr u);
  (!c, !s, !ck, !d, !u)

let pp_classes ppf t =
  let name id = (Netlist.net t.nl id).Netlist.n_name in
  let domain_names ds = String.concat ", " (List.map name ds) in
  Format.fprintf ppf "@[<v>SIGNAL CLASS LISTING@,@,";
  Netlist.iter_nets t.nl (fun n ->
      let id = n.Netlist.n_id in
      let cls_str =
        match t.classes.(id) with
        | Const v -> Printf.sprintf "const %c" (Tvalue.to_char v)
        | Stable -> "stable"
        | Clock { domains; gated } ->
          Printf.sprintf "clock%s {%s}"
            (if gated then " (gated)" else "")
            (domain_names domains)
        | Data [] -> "data {}"
        | Data ds -> Printf.sprintf "data {%s}" (domain_names ds)
        | Unknown -> "unknown"
      in
      let witness =
        match n.Netlist.n_assertion with
        | Some a -> Printf.sprintf "asserted %s" (Assertion.to_string a)
        | None -> (
          match n.Netlist.n_driver with
          | None -> "undriven, assumed stable"
          | Some d ->
            Printf.sprintf "from %s"
              (Primitive.mnemonic (Netlist.inst t.nl d).Netlist.i_prim))
      in
      Format.fprintf ppf "%-28s %-28s %s@," n.Netlist.n_name cls_str witness);
  let c, s, ck, d, u = class_counts t in
  Format.fprintf ppf "@,%d CONST %d STABLE %d CLOCK %d DATA %d UNKNOWN (%d nets)@,"
    c s ck d u (Netlist.n_nets t.nl);
  Format.fprintf ppf "%d of %d instances prunable@,@]" t.n_prunable
    (Netlist.n_insts t.nl)
