type letter = E | W | Z | A | H

type t = letter list

let letter_of_char c =
  match Char.uppercase_ascii c with
  | 'E' -> Some E
  | 'W' -> Some W
  | 'Z' -> Some Z
  | 'A' -> Some A
  | 'H' -> Some H
  | _ -> None

let char_of_letter = function E -> 'E' | W -> 'W' | Z -> 'Z' | A -> 'A' | H -> 'H'

let of_string s =
  let s =
    if String.length s > 0 && s.[0] = '&' then String.sub s 1 (String.length s - 1) else s
  in
  let rec go i acc =
    if i >= String.length s then Ok (List.rev acc)
    else
      match letter_of_char s.[i] with
      | Some l -> go (i + 1) (l :: acc)
      | None -> Error (Printf.sprintf "bad directive letter '%c'" s.[i])
  in
  go 0 []

let of_string_exn s =
  match of_string s with Ok t -> t | Error e -> invalid_arg ("Directive.of_string: " ^ e)

let to_string t =
  let b = Bytes.create (List.length t) in
  List.iteri (fun i l -> Bytes.unsafe_set b i (char_of_letter l)) t;
  Bytes.unsafe_to_string b

let zero_wire = function W | Z | H -> true | E | A -> false

let zero_gate = function Z | H -> true | E | W | A -> false

let check_hazard = function A | H -> true | E | W | Z -> false

let pp ppf t = Format.fprintf ppf "&%s" (to_string t)
