(** Fork/join shard scheduling over OCaml 5 domains.

    The verifier's unit of parallelism is a {e shard} — a contiguous
    block of cases owned by one domain — because per-case warm-start
    incrementality (§2.7) only pays off within a sequential run.  This
    module is deliberately tiny: block sharding plus an exception-safe
    spawn/join, nothing long-lived. *)

val available : unit -> int
(** Domains this host can usefully run at once
    ({!Domain.recommended_domain_count}). *)

val shards : jobs:int -> int -> (int * int) array
(** [shards ~jobs n] splits [0..n-1] into at most [jobs] contiguous
    half-open blocks [(lo, hi)], balanced to within one item, in index
    order.  Never returns more blocks than items; at least one block
    (possibly empty) is returned when [n = 0]. *)

val run : jobs:int -> (int -> 'a) -> 'a array
(** [run ~jobs f] evaluates [f 0 .. f (jobs-1)] concurrently — [f 0] on
    the calling domain, the rest on freshly spawned domains — and
    returns the results in index order.  Every domain is joined before
    returning; if any [f k] raised, the first such exception (by index)
    is re-raised with its backtrace after the join.
    @raise Invalid_argument when [jobs < 1]. *)
